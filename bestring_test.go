package bestring_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"bestring"
)

// TestPublicAPIEndToEnd drives the whole public surface the way a
// downstream user would: build images, index, score, search, transform,
// rasterise, persist.
func TestPublicAPIEndToEnd(t *testing.T) {
	// Figure 1 conversion through the facade.
	img := bestring.Figure1Image()
	be, err := bestring.Convert(img)
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	if !be.Equal(bestring.Figure1BEString()) {
		t.Fatalf("Figure 1 mismatch: %v", be)
	}

	// Similarity of an image with itself is exact.
	if s := bestring.Similarity(be, be); s.F != 1 {
		t.Errorf("self similarity = %v, want 1", s.F)
	}
	if !bestring.Identical(be, be) {
		t.Error("Identical(be, be) = false")
	}

	// Partial query: drop B.
	partial, _ := img.WithoutObject("B")
	pbe := bestring.MustConvert(partial)
	s := bestring.Similarity(pbe, be)
	if s.Query != 1 || s.DB >= 1 {
		t.Errorf("partial query score = %+v", s)
	}
	m := bestring.Explain(pbe, be)
	if len(m.X) != m.LX || len(m.Y) != m.LY {
		t.Errorf("Explain reconstruction lengths inconsistent: %+v", m)
	}

	// Transform-invariant similarity finds the rotation.
	inv := bestring.SimilarityInvariant(be.Rotate90CW(), be, nil)
	if inv.F != 1 {
		t.Errorf("invariant score = %v, want 1", inv.F)
	}

	// Database round trip with search.
	db := bestring.NewDB()
	gen := bestring.NewSceneGenerator(bestring.SceneConfig{Seed: 1, Vocabulary: 30})
	scenes := make([]bestring.Image, 12)
	for i := range scenes {
		scenes[i] = gen.Scene()
		if err := db.Insert(bestring.ClassLabel(i), "scene", scenes[i]); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	results, err := db.Search(context.Background(), scenes[4], bestring.SearchOptions{K: 3})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if results[0].ID != bestring.ClassLabel(4) || results[0].Score != 1 {
		t.Errorf("top result = %+v", results[0])
	}

	// Baseline scorer through the facade.
	results, err = db.Search(context.Background(), scenes[4], bestring.SearchOptions{
		K: 1, Scorer: bestring.TypeSimScorer(bestring.Type2),
	})
	if err != nil {
		t.Fatalf("baseline Search: %v", err)
	}
	if results[0].ID != bestring.ClassLabel(4) {
		t.Errorf("baseline top result = %+v", results[0])
	}

	// Persistence.
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := bestring.LoadDB(&buf)
	if err != nil {
		t.Fatalf("LoadDB: %v", err)
	}
	if loaded.Len() != db.Len() {
		t.Errorf("loaded %d entries, want %d", loaded.Len(), db.Len())
	}

	// Raster pipeline.
	p, err := bestring.NewPalette(img.Labels())
	if err != nil {
		t.Fatalf("NewPalette: %v", err)
	}
	raster, err := bestring.Render(img, p)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	var png bytes.Buffer
	if err := bestring.EncodePNG(&png, raster); err != nil {
		t.Fatalf("EncodePNG: %v", err)
	}
	decoded, err := bestring.DecodePNG(&png)
	if err != nil {
		t.Fatalf("DecodePNG: %v", err)
	}
	back, err := bestring.ExtractImage(decoded, p, img.XMax, img.YMax)
	if err != nil {
		t.Fatalf("ExtractImage: %v", err)
	}
	if len(back.Objects) != 3 {
		t.Errorf("extracted %d objects, want 3", len(back.Objects))
	}

	// ASCII art sanity.
	if art := bestring.ASCII(img, 24, 12); !strings.Contains(art, "A") {
		t.Error("ASCII art missing object A")
	}
}

func TestPublicIndexedAndTokens(t *testing.T) {
	ix, err := bestring.NewIndexed(bestring.Figure1Image())
	if err != nil {
		t.Fatalf("NewIndexed: %v", err)
	}
	if err := ix.Insert(bestring.Object{Label: "D", Box: bestring.NewRect(0, 0, 1, 1)}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if ix.Len() != 4 {
		t.Errorf("Len = %d, want 4", ix.Len())
	}
	want := bestring.MustConvert(ix.Image())
	if !ix.BE().Equal(want) {
		t.Error("indexed BE diverged from rebuild")
	}

	// Token constructors and parsing.
	axis := bestring.Axis{
		bestring.DummyToken(), bestring.BeginToken("A"), bestring.EndToken("A"),
	}
	parsed, err := bestring.ParseBEString(axis.String() + " | " + axis.String())
	if err != nil {
		t.Fatalf("ParseBEString: %v", err)
	}
	if bestring.LCSLength(parsed.X, axis) != 3 {
		t.Error("LCSLength through facade broken")
	}
}

func TestPublicSpatialQueryAPI(t *testing.T) {
	db := bestring.NewDB()
	beach := bestring.NewImage(20, 20,
		bestring.Object{Label: "sun", Box: bestring.NewRect(14, 14, 18, 18)},
		bestring.Object{Label: "sea", Box: bestring.NewRect(0, 0, 20, 6)},
	)
	if err := db.Insert("beach", "", beach); err != nil {
		t.Fatal(err)
	}
	q, err := bestring.ParseQuery("sun above sea")
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	results, err := db.SearchDSL(context.Background(), q, 0)
	if err != nil {
		t.Fatalf("SearchDSL: %v", err)
	}
	if len(results) != 1 || !results[0].Full {
		t.Errorf("SearchDSL = %+v", results)
	}
	hits := db.SearchRegion(bestring.NewRect(13, 13, 19, 19), "")
	if len(hits) != 1 || hits[0].Label != "sun" {
		t.Errorf("SearchRegion = %+v", hits)
	}
	if got := db.ImagesWithLabel("sea"); len(got) != 1 || got[0] != "beach" {
		t.Errorf("ImagesWithLabel = %v", got)
	}
	if err := db.BulkInsert(context.Background(), []bestring.BulkItem{
		{ID: "fig1", Image: bestring.Figure1Image()},
	}, 2); err != nil {
		t.Fatalf("BulkInsert: %v", err)
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestPublicTransformsConsistent(t *testing.T) {
	img := bestring.Figure1Image()
	be := bestring.MustConvert(img)
	for _, tr := range bestring.AllTransforms {
		viaString := be.Apply(tr)
		viaImage := bestring.MustConvert(bestring.ApplyToImage(img, tr))
		if !viaString.Equal(viaImage) {
			t.Errorf("transform %v: string and image paths disagree", tr)
		}
	}
}
