package bestring

import (
	"io"
	"iter"

	"bestring/internal/imagedb"
	"bestring/internal/ingest"
)

// Streaming-import surface, re-exported (DESIGN.md section 12). An
// Importer pulls scenes from a SceneReader one at a time, converts and
// signs them in a bounded worker pool, and commits bounded chunks — one
// WAL record, one fsync, one published MVCC version each — so corpora
// far larger than memory import with backpressure, observable progress
// and crash resume (already-durable chunks are skipped by content key).
type (
	// Importer streams scenes into a Store in chunked, resumable batches.
	Importer = imagedb.Importer
	// ImportOptions tune chunk bounds, parallelism, resume and progress.
	ImportOptions = imagedb.ImportOptions
	// ImportStats describe an import run (or the store's cumulative
	// tally, served on /healthz).
	ImportStats = imagedb.ImportStats
	// SceneReader yields one scene at a time; io.EOF ends the stream.
	SceneReader = ingest.Reader
	// Scene is one importable image with its identity.
	Scene = ingest.Scene
)

// Default import chunk bounds: a chunk closes at this many scenes or
// this many estimated encoded bytes, whichever trips first.
const (
	DefaultImportChunkScenes = imagedb.DefaultImportChunkScenes
	DefaultImportChunkBytes  = imagedb.DefaultImportChunkBytes
)

// NDJSONScenes reads newline-delimited JSON scenes — one
// {"id":...,"name":...,"image":{...}} object per line, the wire format
// of POST /api/v1/import.
func NDJSONScenes(r io.Reader) SceneReader { return ingest.NDJSON(r) }

// CSVScenes reads the compact CSV dialect (id,name,xmax,ymax,objects
// with |-separated label:x0:y0:x1:y1 object specs).
func CSVScenes(r io.Reader) SceneReader { return ingest.CSV(r) }

// ScenesFromSlice wraps an in-memory slice as a SceneReader.
func ScenesFromSlice(scenes []Scene) SceneReader { return ingest.FromItems(scenes) }

// ScenesFromSeq adapts a Go iterator to a SceneReader, so generators can
// feed an import without materialising the corpus.
func ScenesFromSeq(seq iter.Seq2[Scene, error]) SceneReader { return ingest.FromSeq(seq) }
