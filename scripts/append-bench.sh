#!/usr/bin/env bash
# append-bench.sh — append one dated entry from a benchtab CSV to a
# tracked perf-trajectory file in the window.BENCHMARK_DATA shape
# (github-action-benchmark's data.js format, minus the JS assignment),
# so benchmark results are diffable across PRs as plain JSON.
#
# usage: scripts/append-bench.sh <bench.csv> <tracked.json> <value-column> <unit> [key-columns]
#
# example:
#   go run ./cmd/benchtab -quick -exp e11b -csv > bench-e11b.csv
#   scripts/append-bench.sh bench-e11b.csv dev/bench/BENCH_e11b.json 'batched rec/s' 'rec/s'
#
# Each data row becomes one bench named "<table-id>/<key>=<value>" with
# the chosen column as its value. The key defaults to the table's first
# column (e.g. "E11b/writers=4"); tables whose rows sweep several
# parameters pass them as a comma-separated [key-columns] list so names
# stay unique (e.g. 'images,selectivity,K' gives
# "E13/images=1000,selectivity=10%,K=10"). The commit block is filled
# from git HEAD; run from anywhere inside the repo.
set -euo pipefail

if [ $# -lt 4 ] || [ $# -gt 5 ]; then
  echo "usage: $0 <bench.csv> <tracked.json> <value-column> <unit> [key-columns]" >&2
  exit 2
fi
csv=$1 json=$2 col=$3 unit=$4 keycols=${5:-}

id=$(sed -n '1s/^# \([^:]*\):.*/\1/p' "$csv")
if [ -z "$id" ]; then
  echo "append-bench: $csv does not start with a '# <id>: <caption>' line" >&2
  exit 1
fi

benches=$(awk -F, -v col="$col" -v id="$id" -v keycols="$keycols" '
  NR == 1 { next }
  NR == 2 {
    for (i = 1; i <= NF; i++) hidx[$i] = i
    vi = hidx[col]
    if (!vi) { printf "append-bench: column %s not in header: %s\n", col, $0 > "/dev/stderr"; exit 1 }
    if (keycols == "") keycols = $1
    nk = split(keycols, kc, ",")
    for (j = 1; j <= nk; j++) {
      ki[j] = hidx[kc[j]]
      if (!ki[j]) { printf "append-bench: key column %s not in header: %s\n", kc[j], $0 > "/dev/stderr"; exit 1 }
    }
    next
  }
  NF > 1 {
    v = $vi
    gsub(/[x,]/, "", v) # FmtInt thousands separators, ratio "x" suffixes
    name = ""
    for (j = 1; j <= nk; j++) name = name (j > 1 ? "," : "") kc[j] "=" $(ki[j])
    printf "{\"name\":\"%s/%s\",\"value\":%s}\n", id, name, v
  }' "$csv" | jq -s --arg unit "$unit" 'map(. + {unit: $unit})')

if [ "$(echo "$benches" | jq length)" -eq 0 ]; then
  echo "append-bench: no data rows in $csv" >&2
  exit 1
fi

entry=$(jq -n \
  --arg id "$(git rev-parse HEAD)" \
  --arg msg "$(git log -1 --pretty=%s)" \
  --arg ts "$(git log -1 --pretty=%cI)" \
  --arg author "$(git log -1 --pretty=%an)" \
  --argjson date "$(date +%s)000" \
  --argjson benches "$benches" \
  '{commit: {id: $id, message: $msg, timestamp: $ts, author: {name: $author}},
    date: $date, tool: "benchtab", benches: $benches}')

if [ ! -f "$json" ]; then
  mkdir -p "$(dirname "$json")"
  printf '{"lastUpdate": 0, "repoUrl": "", "entries": {}}\n' > "$json"
fi
tmp=$(mktemp)
jq --argjson entry "$entry" --argjson now "$(date +%s)000" \
  '.lastUpdate = $now | .entries["benchtab"] = ((.entries["benchtab"] // []) + [$entry])' \
  "$json" > "$tmp"
mv "$tmp" "$json"
echo "append-bench: $json now holds $(jq '.entries["benchtab"] | length' "$json") entries"
