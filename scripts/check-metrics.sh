#!/usr/bin/env bash
# check-metrics.sh — assert a scraped /metrics exposition is sane.
#
# usage: scripts/check-metrics.sh <exposition.txt> <required-series-regex>...
#
# example:
#   curl -sf localhost:8096/metrics > /tmp/metrics.txt
#   scripts/check-metrics.sh /tmp/metrics.txt \
#     '^bestring_query_stage_seconds_count' \
#     '^bestring_wal_fsync_seconds_count' \
#     '^bestring_repl_follower_lag_lsn'
#
# Checks, in order:
#   1. every required regex matches at least one non-comment series line;
#   2. exactly one "# TYPE" line per metric family;
#   3. no duplicate series (same name + label set emitted twice).
# Exits non-zero with a named failure on the first violation.
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 <exposition.txt> <required-series-regex>..." >&2
  exit 2
fi
file=$1
shift

if [ ! -s "$file" ]; then
  echo "check-metrics: $file is missing or empty" >&2
  exit 1
fi

# Series lines: everything that is not a comment or blank.
series=$(grep -v '^#' "$file" | grep -v '^$' || true)
if [ -z "$series" ]; then
  echo "check-metrics: $file has no series lines" >&2
  exit 1
fi

fail=0
for re in "$@"; do
  if ! echo "$series" | grep -Eq "$re"; then
    echo "check-metrics: required series /$re/ not found in $file" >&2
    fail=1
  fi
done

# One TYPE line per family.
dup_types=$(awk '/^# TYPE /{print $3}' "$file" | sort | uniq -d)
if [ -n "$dup_types" ]; then
  echo "check-metrics: duplicate # TYPE lines for: $dup_types" >&2
  fail=1
fi

# No duplicate series: the key is the full name{labels} token before the
# value (first whitespace-separated field).
dup_series=$(echo "$series" | awk '{print $1}' | sort | uniq -d)
if [ -n "$dup_series" ]; then
  echo "check-metrics: duplicate series: $dup_series" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check-metrics: $file ok ($(echo "$series" | wc -l | tr -d ' ') series, $# required patterns present)"
