#!/usr/bin/env bash
# check-bench.sh — flag performance regressions in a perf-trajectory
# file maintained by append-bench.sh.
#
# usage: scripts/check-bench.sh <tracked.json> [threshold-pct] [report.md]
#
# Compares the newest entry against the previous one, bench by bench
# (matched on name). A drop of more than threshold-pct (default 20)
# emits a GitHub Actions "::warning::" annotation per offending bench.
# When [report.md] is given, a per-table markdown section (previous vs
# current value, delta, verdict — including benches that are new in this
# entry) is appended to it, so CI can upload one regression report
# covering every tracked trajectory. Always exits 0: CI-runner noise on
# quick-mode sweeps makes hard failures flaky, so regressions warn
# rather than block (see dev/bench/README.md for the trajectory format).
set -euo pipefail

json=${1:?usage: $0 <tracked.json> [threshold-pct] [report.md]}
threshold=${2:-20}
report=${3:-}

if [ ! -f "$json" ]; then
  echo "check-bench: $json not found, nothing to compare" >&2
  exit 0
fi

n=$(jq '.entries["benchtab"] | length' "$json")
if [ "$n" -lt 2 ]; then
  echo "check-bench: $json has $n entries, need 2 to compare"
  if [ -n "$report" ]; then
    {
      echo "## $(basename "$json")"
      echo
      echo "_${n} entries — need 2 to compare._"
      echo
    } >> "$report"
  fi
  exit 0
fi

jq -r --argjson t "$threshold" '
  .entries["benchtab"] as $e
  | ($e[-2].benches | map({key: .name, value: .value}) | from_entries) as $prev
  | $e[-1].benches[]
  | select($prev[.name] != null and $prev[.name] > 0)
  | (100 * ($prev[.name] - .value) / $prev[.name]) as $drop
  | if $drop > $t then
      "::warning::bench \(.name) dropped \($drop | floor)% (\($prev[.name]) -> \(.value) \(.unit))"
    else
      "check-bench: \(.name) \($prev[.name]) -> \(.value) \(.unit) ok"
    end
' "$json"

if [ -n "$report" ]; then
  {
    echo "## $(basename "$json")"
    echo
    echo "Newest entry ($(jq -r '.entries["benchtab"][-1].commit.id[0:8]' "$json")) vs" \
      "previous ($(jq -r '.entries["benchtab"][-2].commit.id[0:8]' "$json"));" \
      "warning threshold ${threshold}% drop."
    echo
    echo "| bench | previous | current | delta | verdict |"
    echo "|---|---:|---:|---:|---|"
    jq -r --argjson t "$threshold" '
      .entries["benchtab"] as $e
      | ($e[-2].benches | map({key: .name, value: .value}) | from_entries) as $prev
      | $e[-1].benches[]
      | if $prev[.name] == null or $prev[.name] <= 0 then
          "| \(.name) | — | \(.value) \(.unit) | — | new |"
        else
          (100 * ($prev[.name] - .value) / $prev[.name]) as $drop
          | (if $drop > 0 then "-" else "+" end) as $sign
          | "| \(.name) | \($prev[.name]) | \(.value) \(.unit) | \($sign)\(($drop | if . < 0 then -. else . end) * 10 | floor / 10)% | \(if $drop > $t then "**regression**" else "ok" end) |"
        end
    ' "$json"
    echo
  } >> "$report"
  echo "check-bench: report section appended to $report"
fi
exit 0
