#!/usr/bin/env bash
# check-bench.sh — flag performance regressions in a perf-trajectory
# file maintained by append-bench.sh.
#
# usage: scripts/check-bench.sh <tracked.json> [threshold-pct]
#
# Compares the newest entry against the previous one, bench by bench
# (matched on name). A drop of more than threshold-pct (default 20)
# emits a GitHub Actions "::warning::" annotation per offending bench.
# Always exits 0: CI-runner noise on quick-mode sweeps makes hard
# failures flaky, so regressions warn rather than block (see
# dev/bench/README.md for the trajectory format).
set -euo pipefail

json=${1:?usage: $0 <tracked.json> [threshold-pct]}
threshold=${2:-20}

if [ ! -f "$json" ]; then
  echo "check-bench: $json not found, nothing to compare" >&2
  exit 0
fi

n=$(jq '.entries["benchtab"] | length' "$json")
if [ "$n" -lt 2 ]; then
  echo "check-bench: $json has $n entries, need 2 to compare"
  exit 0
fi

jq -r --argjson t "$threshold" '
  .entries["benchtab"] as $e
  | ($e[-2].benches | map({key: .name, value: .value}) | from_entries) as $prev
  | $e[-1].benches[]
  | select($prev[.name] != null and $prev[.name] > 0)
  | (100 * ($prev[.name] - .value) / $prev[.name]) as $drop
  | if $drop > $t then
      "::warning::bench \(.name) dropped \($drop | floor)% (\($prev[.name]) -> \(.value) \(.unit))"
    else
      "check-bench: \(.name) \($prev[.name]) -> \(.value) \(.unit) ok"
    end
' "$json"
exit 0
