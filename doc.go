// Package bestring implements the 2D BE-string spatial-relation model for
// image indexing and similarity retrieval (Ying-Hong Wang, "Image Indexing
// and Similarity Retrieval Based on A New Spatial Relation Model", ICDCS
// 2001).
//
// A symbolic image — a set of labelled icon objects with MBR (minimum
// bounding rectangle) coordinates — is indexed as two 1-D strings of
// begin/end boundary symbols, one per axis. A dummy object 'E' is placed
// between two consecutive boundary symbols whose projections are distinct
// and at the image edges when a gap exists; no spatial operators are
// needed. Similarity between two images is evaluated with a modified
// Longest Common Subsequence over the strings in O(mn) time, which grades
// partial matches (missing icons, perturbed spatial relationships) instead
// of the boolean subgraph matching of the older 2-D string family.
// Rotations by 90/180/270 degrees and axis reflections of a query are
// answered directly on the strings by reversal.
//
// # Quick start
//
//	img := bestring.NewImage(6, 6,
//	    bestring.Object{Label: "A", Box: bestring.NewRect(1, 2, 3, 5)},
//	    bestring.Object{Label: "B", Box: bestring.NewRect(2, 1, 5, 3)},
//	)
//	be, err := bestring.Convert(img)   // the 2D BE-string index
//	score := bestring.Similarity(be, otherBE)
//
// For ranked retrieval over many images use DB — a sharded, concurrency-
// safe store whose top-K search accumulates into per-worker bounded heaps
// (see DESIGN.md section 4 for the engine architecture):
//
//	db := bestring.NewDB()
//	_ = db.Insert("scene-1", "beach", img)
//	results, err := db.Search(ctx, query, bestring.SearchOptions{K: 10})
//
// For a database that survives restarts and crashes, open a durable
// Store instead: the same query surface over a write-ahead log with
// checkpointed snapshots (see DESIGN.md section 5):
//
//	store, err := bestring.OpenStore("./data", bestring.StoreOptions{})
//	defer store.Close()
//	_ = store.Insert("scene-1", "beach", img) // logged+fsynced, then applied
//
// The subpackages under internal/ additionally implement every comparator
// of the paper (2-D string, 2D G-, C- and B-string with clique-based
// type-0/1/2 matching) and the experiment harness that regenerates the
// paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
package bestring
