package bestring

import (
	"io"

	"bestring/internal/baseline/typesim"
	"bestring/internal/imagedb"
)

// Database types, re-exported.
type (
	// DB is a concurrency-safe symbolic-image database with ranked search.
	DB = imagedb.DB
	// Entry is one stored image with its BE-string index.
	Entry = imagedb.Entry
	// Result is one ranked search hit.
	Result = imagedb.Result
	// SearchOptions parameterise DB.Search.
	SearchOptions = imagedb.SearchOptions
	// Scorer ranks a database entry against a query.
	Scorer = imagedb.Scorer
	// DBStats describes shard occupancy of a DB.
	DBStats = imagedb.Stats
	// Snapshot is a pinned, immutable view of a DB (or Store) at one
	// epoch: every read on it — Get, Query, QueryIter, pagination — is
	// lock-free and perfectly repeatable whatever concurrent writers do.
	// Obtain one with DB.Snapshot or Store.Snapshot (one atomic load; the
	// data is shared copy-on-write, not copied).
	Snapshot = imagedb.Snapshot
	// TypeLevel selects the strictness of the baseline type-i similarity.
	TypeLevel = typesim.Level
)

// Baseline similarity levels (the 2-D string family's type-0/1/2).
const (
	Type0 = typesim.Type0
	Type1 = typesim.Type1
	Type2 = typesim.Type2
)

// Database errors.
var (
	ErrNotFound  = imagedb.ErrNotFound
	ErrDuplicate = imagedb.ErrDuplicate
)

// NewDB returns an empty image database with one shard per GOMAXPROCS.
func NewDB() *DB { return imagedb.New() }

// NewDBSharded returns an empty image database with an explicit shard
// count (0 means GOMAXPROCS). More shards reduce write contention; shard
// count does not affect search results.
func NewDBSharded(shards int) *DB { return imagedb.NewSharded(shards) }

// LoadDB reads a database snapshot written by DB.Save.
func LoadDB(r io.Reader) (*DB, error) { return imagedb.Load(r) }

// LoadDBFile reads a database snapshot from a file.
func LoadDBFile(path string) (*DB, error) { return imagedb.LoadFile(path) }

// LoadDBGob reads a gob snapshot written by DB.SaveGob.
func LoadDBGob(r io.Reader) (*DB, error) { return imagedb.LoadGob(r) }

// LoadDBGobFile reads a gob snapshot file written by DB.SaveGobFile.
func LoadDBGobFile(path string) (*DB, error) { return imagedb.LoadGobFile(path) }

// BEScorer ranks by the paper's modified-LCS similarity (the default).
func BEScorer() Scorer { return imagedb.BEScorer() }

// InvariantScorer ranks by the best BE-LCS score across query transforms
// (nil means all eight).
func InvariantScorer(transforms []Transform) Scorer {
	return imagedb.InvariantScorer(transforms)
}

// TypeSimScorer ranks with the clique-based type-i baseline.
func TypeSimScorer(level TypeLevel) Scorer { return imagedb.TypeSimScorer(level) }

// SymbolsOnlyScorer is the dummy-stripped ablation scorer.
func SymbolsOnlyScorer() Scorer { return imagedb.SymbolsOnlyScorer() }
