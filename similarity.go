package bestring

import (
	"bestring/internal/core"
	"bestring/internal/lcs"
	"bestring/internal/similarity"
)

// Similarity scoring types, re-exported.
type (
	// Score grades how similar two images are (see the field docs in
	// internal/similarity).
	Score = similarity.Score
	// Match is a Score plus the reconstructed common subsequences.
	Match = similarity.Match
	// InvariantScore is the best Score over a set of query transforms.
	InvariantScore = similarity.InvariantScore
)

// Similarity scores a database image's BE-string against a query's using
// the paper's modified LCS (Algorithm 2) on both axes. O(mn) time.
func Similarity(query, db BEString) Score { return similarity.Evaluate(query, db) }

// Explain scores like Similarity and also reconstructs the matched common
// subsequence per axis (Algorithm 3).
func Explain(query, db BEString) Match { return similarity.Explain(query, db) }

// SimilarityInvariant returns the best score across the given transforms
// of the query (nil means all eight), answering rotated/reflected queries
// purely on the strings.
func SimilarityInvariant(query, db BEString, transforms []Transform) InvariantScore {
	return similarity.EvaluateInvariant(query, db, transforms)
}

// Identical reports whether two BE-strings fully accord (score 1.0 in both
// directions).
func Identical(a, b BEString) bool { return similarity.Identical(a, b) }

// LCSLength exposes the modified 2D-Be-LCS length of two axes (Algorithm
// 2) for callers composing their own scores.
func LCSLength(q, d Axis) int { return lcs.Length(q, d) }

// SignatureOf computes the compact symbol signature of a converted
// image — the per-axis symbol histogram plus axis lengths that feed the
// engine's filter-and-refine upper bounds. Computed once per image at
// insert time by the database; exposed for callers composing their own
// bounds or inspecting pruning decisions (see LookupBound).
func SignatureOf(be BEString) Signature { return core.SignatureOf(be) }

// SimilarityUpperBound bounds Similarity(q, d).F from the two
// signatures alone: it always dominates the exact score and reaches it
// on full accordance. O(|labels|) versus the O(mn) dynamic program.
func SimilarityUpperBound(q, d Signature) float64 { return similarity.UpperBound(q, d) }
