package bestring_test

import (
	"context"
	"fmt"
	"os"

	"bestring"
)

// ExampleConvert converts the paper's Figure 1 image — objects A, B, C in
// a 6x6 canvas — into its 2D BE-string: one axis of begin ("+") and end
// ("-") boundary symbols per dimension, with the dummy object E filling
// the gaps between distinct projections and at the image edges.
func ExampleConvert() {
	img := bestring.Figure1Image()
	be, err := bestring.Convert(img)
	if err != nil {
		panic(err)
	}
	fmt.Println(be.X)
	fmt.Println(be.Y)
	// Output:
	// E A+ E B+ E A- C+ E C- E B- E
	// E B+ E A+ E B- C+ E C- E A- E
}

// ExampleSimilarity grades two images with the paper's modified LCS over
// their BE-strings. The score is 1.0 for identical images and degrades
// gracefully for partial matches — here a query missing one of Figure 1's
// three objects still scores high against the full image.
func ExampleSimilarity() {
	full := bestring.Figure1Image()
	partial, _ := full.WithoutObject("C")

	fullBE := bestring.MustConvert(full)
	partialBE := bestring.MustConvert(partial)

	fmt.Printf("identical: %.3f\n", bestring.Similarity(fullBE, fullBE).Key())
	fmt.Printf("partial:   %.3f\n", bestring.Similarity(partialBE, fullBE).Key())
	// Output:
	// identical: 1.000
	// partial:   0.857
}

// ExampleDB_Search ranks a small database against a query image. The
// exact image scores 1.0 and ranks first; the two-object variant follows
// with a graded partial-match score.
func ExampleDB_Search() {
	img := bestring.Figure1Image()
	partial, _ := img.WithoutObject("C")

	db := bestring.NewDB()
	_ = db.Insert("fig1", "figure 1", img)
	_ = db.Insert("fig1-partial", "A and B only", partial)
	_ = db.Insert("fig1-rot", "rotated", bestring.ApplyToImage(img, bestring.Rot90))

	results, err := db.Search(context.Background(), img, bestring.SearchOptions{K: 2})
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s %.3f\n", r.ID, r.Score)
	}
	// Output:
	// fig1 1.000
	// fig1-partial 0.857
}

// ExampleDB_Query composes ranked similarity with a spatial-predicate
// filter in one request: rank by BE-LCS among images where C overlaps B.
// The partial image (no C) is filtered out before scoring; the rotated
// variant survives the filter and ranks by its graded similarity.
func ExampleDB_Query() {
	img := bestring.Figure1Image()
	partial, _ := img.WithoutObject("C")

	db := bestring.NewDB()
	_ = db.Insert("fig1", "figure 1", img)
	_ = db.Insert("fig1-partial", "A and B only", partial)
	_ = db.Insert("fig1-rot", "rotated", bestring.ApplyToImage(img, bestring.Rot90))

	page, err := db.Query(context.Background(), bestring.NewQuery(img),
		bestring.WithK(5),
		bestring.Where("C overlaps B"))
	if err != nil {
		panic(err)
	}
	for _, h := range page.Hits {
		fmt.Printf("%s %.3f full=%v\n", h.ID, h.Score, h.Full)
	}
	// Output:
	// fig1 1.000 full=true
	// fig1-rot 0.667 full=true
}

// ExampleOpenStore round-trips a durable store: mutations are framed
// into the write-ahead log before they are acknowledged, so reopening
// the directory — after a clean close or a crash — recovers exactly the
// acknowledged state. The full query surface of DB works on the store.
func ExampleOpenStore() {
	dir, err := os.MkdirTemp("", "bestring-store-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	store, err := bestring.OpenStore(dir, bestring.StoreOptions{
		Fsync: bestring.FsyncAlways, // one fsync per acknowledged write
	})
	if err != nil {
		panic(err)
	}
	if err := store.Insert("fig1", "the worked example", bestring.Figure1Image()); err != nil {
		panic(err)
	}
	if err := store.Close(); err != nil {
		panic(err)
	}

	reopened, err := bestring.OpenStore(dir, bestring.StoreOptions{})
	if err != nil {
		panic(err)
	}
	defer reopened.Close()
	entry, ok := reopened.Get("fig1")
	fmt.Println(reopened.Len(), ok, entry.Name)
	// Output:
	// 1 true the worked example
}

// ExampleDB_Snapshot pins an immutable version of the database: every
// read on the snapshot is lock-free and repeatable bit-for-bit, however
// many writers run concurrently — later mutations are simply another
// version, published under a higher epoch.
func ExampleDB_Snapshot() {
	db := bestring.NewDB()
	if err := db.Insert("fig1", "the worked example", bestring.Figure1Image()); err != nil {
		panic(err)
	}

	snap := db.Snapshot() // one atomic load; data is shared, not copied

	// A writer keeps going; the pinned view does not move.
	if err := db.Delete("fig1"); err != nil {
		panic(err)
	}

	page, err := snap.Query(context.Background(),
		bestring.NewQuery(bestring.Figure1Image()), bestring.WithK(1))
	if err != nil {
		panic(err)
	}
	fmt.Println(snap.Len(), db.Len(), page.Hits[0].ID, db.Epoch() > snap.Epoch())
	// Output:
	// 1 0 fig1 true
}
