package bestring

import (
	"bestring/internal/core"
)

// Core model types, re-exported from the implementation.
type (
	// Point is an integer 2-D coordinate.
	Point = core.Point
	// Rect is a minimum bounding rectangle [X0,X1]x[Y0,Y1].
	Rect = core.Rect
	// Object is a labelled icon object with its MBR.
	Object = core.Object
	// Image is a symbolic image: labelled MBRs in a bounded canvas.
	Image = core.Image
	// Kind distinguishes begin from end boundary symbols.
	Kind = core.Kind
	// Token is one BE-string symbol: a boundary symbol or the dummy 'E'.
	Token = core.Token
	// Axis is one dimension of a 2D BE-string.
	Axis = core.Axis
	// BEString is the 2D BE-string of a symbolic image.
	BEString = core.BEString
	// Transform is one of the eight dihedral transforms (rotations and
	// reflections) supported directly on strings.
	Transform = core.Transform
	// Indexed is a symbolic image with incremental insert/delete support.
	Indexed = core.Indexed
	// Signature is the compact symbol signature of a converted image:
	// sorted label set, per-axis lengths and dummy counts — everything
	// the filter-and-refine upper bounds need (see SignatureOf).
	Signature = core.Signature
)

// Boundary kinds.
const (
	Begin = core.Begin
	End   = core.End
)

// The eight linear transformations of paper section 5.
const (
	Identity     = core.Identity
	Rot90        = core.Rot90
	Rot180       = core.Rot180
	Rot270       = core.Rot270
	FlipX        = core.FlipX
	FlipY        = core.FlipY
	FlipDiag     = core.FlipDiag
	FlipAntiDiag = core.FlipAntiDiag
)

// AllTransforms lists the dihedral group in a stable order.
var AllTransforms = core.AllTransforms

// NewRect returns the MBR spanning two corner points in any order.
func NewRect(x0, y0, x1, y1 int) Rect { return core.NewRect(x0, y0, x1, y1) }

// NewImage returns an image with the given canvas size and objects.
func NewImage(xmax, ymax int, objects ...Object) Image {
	return core.NewImage(xmax, ymax, objects...)
}

// Convert builds the 2D BE-string of a symbolic image (the paper's
// Algorithm 1, Convert-2D-Be-String).
func Convert(img Image) (BEString, error) { return core.Convert(img) }

// MustConvert is Convert for known-valid images; it panics on error.
func MustConvert(img Image) BEString { return core.MustConvert(img) }

// ParseBEString parses the textual "x-axis | y-axis" rendering.
func ParseBEString(s string) (BEString, error) { return core.ParseBEString(s) }

// NewIndexed wraps an image for incremental object insertion/deletion.
func NewIndexed(img Image) (*Indexed, error) { return core.NewIndexed(img) }

// ApplyToImage transforms an image in coordinate space (the counterpart of
// BEString.Apply, mainly useful in tests and examples).
func ApplyToImage(img Image, t Transform) Image { return core.ApplyToImage(img, t) }

// Figure1Image returns the paper's Figure 1 example image.
func Figure1Image() Image { return core.Figure1Image() }

// Figure1BEString returns the 2D BE-string printed under Figure 1.
func Figure1BEString() BEString { return core.Figure1BEString() }

// DummyToken returns the dummy object 'E'.
func DummyToken() Token { return core.DummyToken() }

// BeginToken returns the begin-boundary symbol for a label.
func BeginToken(label string) Token { return core.BeginToken(label) }

// EndToken returns the end-boundary symbol for a label.
func EndToken(label string) Token { return core.EndToken(label) }
