package bestring

import (
	"context"
	"io"
	"time"

	"bestring/internal/obs"
)

// Observability types, re-exported. A MetricsRegistry collects the
// engine's counters, gauges and histograms and renders them in the
// Prometheus text exposition format; enable it on a Store or DB with
// EnableMetrics (both accept the registry directly — Store wires the
// WAL, group committer and query pipeline in one call). Traces ride a
// context.Context through the query pipeline and collect per-stage
// spans. See DESIGN.md section 10.
type (
	// MetricsRegistry is a zero-dependency metrics registry with
	// Prometheus text exposition (Handler serves GET /metrics).
	MetricsRegistry = obs.Registry
	// MetricsSample is one labelled value of a gauge-vec callback.
	MetricsSample = obs.Sample
	// Trace collects the spans of one request; attach it with WithTrace
	// and the query pipeline records its stage timings onto it.
	Trace = obs.Trace
	// TraceSpan is one recorded span of a trace.
	TraceSpan = obs.SpanRecord
	// SlowQueryLog writes one JSON line per query at or above a latency
	// threshold. A nil *SlowQueryLog is a valid disabled logger.
	SlowQueryLog = obs.SlowLog
	// SlowQueryRecord is one slow-query log line.
	SlowQueryRecord = obs.SlowQuery
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsDurationBuckets returns the engine's standard latency
// histogram bounds (1µs doubling to ~16s), for callers registering
// their own duration histograms alongside the engine's.
func MetricsDurationBuckets() []float64 { return obs.DurationBuckets() }

// NewSlowQueryLog returns a logger writing JSON lines to w for queries
// at or above threshold; threshold <= 0 or a nil writer disables it
// (returns nil, which is safe to use).
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	return obs.NewSlowLog(w, threshold)
}

// NewTrace returns a trace with the given id ("" mints one).
func NewTrace(id string) *Trace { return obs.NewTrace(id) }

// WithTrace attaches a trace to a context; the query pipeline records
// stage spans onto it.
func WithTrace(ctx context.Context, t *Trace) context.Context { return obs.WithTrace(ctx, t) }

// TraceFromContext returns the attached trace, or nil.
func TraceFromContext(ctx context.Context) *Trace { return obs.FromContext(ctx) }

// NewRequestID mints a 16-hex-character request id.
func NewRequestID() string { return obs.NewRequestID() }

// ValidRequestID reports whether s is usable as a propagated request
// id: 1–64 characters of [A-Za-z0-9._-].
func ValidRequestID(s string) bool { return obs.ValidRequestID(s) }
