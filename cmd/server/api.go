package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"bestring"
)

// maxBodyBytes bounds JSON request bodies so a misbehaving client cannot
// exhaust memory before the decoder sees the payload.
const maxBodyBytes = 1 << 20

// statusClientClosedRequest reports a request whose client went away
// before the response was computed (nginx's 499 convention).
const statusClientClosedRequest = 499

// maxBatchQueries bounds one POST /api/v1/search batch.
const maxBatchQueries = 64

// minLSNWait bounds how long a read carrying ?min_lsn waits for the
// store to publish that LSN before giving up with a 404.
const minLSNWait = 2 * time.Second

// engine is the database surface the REST API serves — satisfied by both
// the in-memory *bestring.DB and the durable *bestring.Store, so the
// same mux runs volatile or crash-safe depending only on the flags.
type engine interface {
	Insert(id, name string, img bestring.Image) error
	Delete(id string) error
	Get(id string) (bestring.Entry, bool)
	IDs() []string
	Len() int
	Stats() bestring.DBStats
	BulkInsert(ctx context.Context, items []bestring.BulkItem, parallelism int) error
	Search(ctx context.Context, query bestring.Image, opts bestring.SearchOptions) ([]bestring.Result, error)
	SearchDSL(ctx context.Context, q bestring.SpatialQuery, k int) ([]bestring.QueryResult, error)
	SearchRegion(region bestring.Rect, label string) []bestring.RegionHit
	Query(ctx context.Context, q *bestring.Query, opts ...bestring.QueryOption) (*bestring.QueryPage, error)
	Snapshot() *bestring.Snapshot
}

// requestIDHeader propagates one request's identity across roles: a
// client (or proxy) may set it, the server echoes it on the response,
// and a follower's 307 write redirect carries it to the primary, so
// one write's trace id appears in both servers' logs.
const requestIDHeader = "X-Request-Id"

// muxConfig bundles everything the server mux serves: the engine, its
// replication role, and the observability surface (metrics registry
// and slow-query log, both optional).
type muxConfig struct {
	engine      engine
	parallelism int
	primary     *bestring.ReplicationPrimary
	follower    *bestring.ReplicationFollower
	primaryURL  string
	metrics     *bestring.MetricsRegistry
	slowLog     *bestring.SlowQueryLog
}

// newMux wires the REST routes onto a database. Resource routes are
// served under both /api and /api/v1; the composable query endpoint
// POST /api/v1/search supersedes the v0 trio (POST /api/search,
// GET /api/search/dsl, GET /api/region), which stay as aliases of the
// same pipeline.
func newMux(e engine) http.Handler { return newMuxWith(e, 0) }

// newMuxWith additionally sets the server-wide default scoring
// parallelism applied to search requests that set none (0 means
// GOMAXPROCS, the engine default).
func newMuxWith(e engine, defaultParallelism int) http.Handler {
	return newServerMux(muxConfig{engine: e, parallelism: defaultParallelism})
}

// newMuxRepl wires the full server mux including its replication role:
// a primary additionally serves the stream/ack endpoints, a follower
// redirects writes to primaryURL and reports its sync loop on /healthz.
func newMuxRepl(e engine, defaultParallelism int,
	primary *bestring.ReplicationPrimary, follower *bestring.ReplicationFollower,
	primaryURL string) http.Handler {
	return newServerMux(muxConfig{engine: e, parallelism: defaultParallelism,
		primary: primary, follower: follower, primaryURL: primaryURL})
}

// newServerMux builds the complete handler: routes, the request-id /
// trace middleware, per-route HTTP metrics and — when a registry is
// configured — the GET /metrics exposition endpoint.
func newServerMux(cfg muxConfig) http.Handler {
	api := &api{db: cfg.engine, parallelism: cfg.parallelism,
		primary: cfg.primary, follower: cfg.follower,
		primaryURL: strings.TrimRight(cfg.primaryURL, "/"),
		metrics:    cfg.metrics, slow: cfg.slowLog}
	// A durable store additionally reports WAL/checkpoint state on
	// /healthz, the signal an operator watches during recovery.
	api.store, _ = cfg.engine.(*bestring.Store)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", api.health)
	for _, p := range []string{"/api", "/api/v1"} {
		mux.HandleFunc("GET "+p+"/images", api.listImages)
		mux.HandleFunc("POST "+p+"/images", api.insertImage)
		mux.HandleFunc("GET "+p+"/images/{id}", api.getImage)
		mux.HandleFunc("DELETE "+p+"/images/{id}", api.deleteImage)
		mux.HandleFunc("GET "+p+"/search/dsl", api.searchDSL)
		mux.HandleFunc("GET "+p+"/region", api.region)
	}
	mux.HandleFunc("POST /api/search", api.search)
	mux.HandleFunc("POST /api/v1/search", api.searchV1)
	mux.HandleFunc("POST /api/v1/import", api.importScenes)
	if cfg.metrics != nil {
		mux.Handle("GET /metrics", cfg.metrics.Handler())
	}
	if cfg.primary != nil {
		cfg.primary.Register(mux)
	}
	return api.instrument(mux)
}

type api struct {
	db    engine
	store *bestring.Store // nil when serving an in-memory DB
	// parallelism is the default scoring-worker bound for requests that
	// set none (0 means GOMAXPROCS).
	parallelism int

	// Replication role: at most one of primary/follower is set. A
	// follower also carries the primary's base URL so refused writes can
	// redirect there.
	primary    *bestring.ReplicationPrimary
	follower   *bestring.ReplicationFollower
	primaryURL string

	// Observability surface; both nil-safe (nil registry drops the HTTP
	// metrics, nil slow log never records).
	metrics *bestring.MetricsRegistry
	slow    *bestring.SlowQueryLog
}

// statusWriter records the response status for the HTTP metrics. It
// forwards Flush so the replication stream (which requires an
// http.Flusher) works through the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routeLabel maps a request path onto the server's route patterns, so
// the HTTP metrics keep a small fixed label set whatever paths clients
// probe (unmatched paths all share "other").
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/metrics", bestring.ReplStreamPath, bestring.ReplAckPath:
		return path
	}
	p, ok := strings.CutPrefix(path, "/api")
	if !ok {
		return "other"
	}
	p = strings.TrimPrefix(p, "/v1")
	switch {
	case p == "/images":
		return "/api/images"
	case strings.HasPrefix(p, "/images/"):
		return "/api/images/{id}"
	case p == "/search":
		return "/api/search"
	case p == "/import":
		return "/api/import"
	case p == "/search/dsl":
		return "/api/search/dsl"
	case p == "/region":
		return "/api/region"
	}
	return "other"
}

// instrument is the outermost middleware: it assigns (or validates and
// propagates) the request id, attaches a trace to the context so the
// query pipeline records stage spans, echoes the id on the response,
// and — with a registry — counts and times the request per route.
func (a *api) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(requestIDHeader)
		if !bestring.ValidRequestID(rid) {
			rid = bestring.NewRequestID()
		}
		w.Header().Set(requestIDHeader, rid)
		r = r.WithContext(bestring.WithTrace(r.Context(), bestring.NewTrace(rid)))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if a.metrics != nil {
			route := routeLabel(r.URL.Path)
			code := sw.code
			if code == 0 {
				code = http.StatusOK
			}
			a.metrics.Counter("bestring_http_requests_total",
				"HTTP requests by route pattern and status code.",
				"route", route, "code", strconv.Itoa(code)).Inc()
			a.metrics.Histogram("bestring_http_request_seconds",
				"HTTP request wall time by route pattern.",
				bestring.MetricsDurationBuckets(), "route", route).
				Observe(time.Since(start).Seconds())
		}
	})
}

// logSlow records one query on the slow-query log when its duration
// meets the threshold. query is the compiled shape (no image payloads),
// stages the pipeline's counters/timings when available.
func (a *api) logSlow(r *http.Request, route string, start time.Time, query, stages any, err error) {
	d := time.Since(start)
	if !a.slow.Slow(d) {
		return
	}
	rec := bestring.SlowQueryRecord{
		Route:      route,
		DurationMS: float64(d) / float64(time.Millisecond),
		Query:      query,
		Stages:     stages,
	}
	if tr := bestring.TraceFromContext(r.Context()); tr != nil {
		rec.TraceID = tr.ID()
		rec.Spans = tr.Spans()
	}
	if err != nil {
		rec.Err = err.Error()
	}
	a.slow.Record(rec)
}

// writeJSON emits a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after WriteHeader are unrecoverable; ignore.
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr emits a JSON error envelope.
func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeBody reads a JSON body under the maxBodyBytes limit and reports
// the HTTP status a decode failure deserves (413 for an oversized body,
// 400 otherwise). strict rejects unknown fields — used by the v1 route
// so a v0 client still sending "method" instead of "scorer" gets a 400
// instead of silently ranking with the default scorer; the v0 aliases
// keep the lenient decoding they always had.
func decodeBody(w http.ResponseWriter, r *http.Request, strict bool, v any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if strict {
		dec.DisallowUnknownFields()
	}
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", tooBig.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("decode body: %w", err)
	}
	return 0, nil
}

// queryStatus classifies a query-pipeline error: cancellations are the
// client's doing, deadlines are timeouts, anything else the pipeline
// rejects is a bad request — never a 500.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

func (a *api) health(w http.ResponseWriter, _ *http.Request) {
	// Stats reads one published version, so epoch and entry count are
	// mutually consistent; alongside the WAL LSNs below they let an
	// operator watch writer progress versus published read state.
	stats := a.db.Stats()
	body := map[string]any{
		"ok": true, "images": stats.Images, "shards": stats.Shards,
		"epoch":      stats.Epoch,
		"entries":    stats.Images,
		"goroutines": runtime.NumGoroutine(),
		// Cumulative filter-and-refine counters: pruned/evaluated is the
		// fraction of exact LCS work the signature bounds saved.
		"search": stats.Search,
	}
	body["role"] = a.role()
	if a.store != nil {
		ss := a.store.StoreStats()
		body["durable"] = true
		body["wal"] = ss.WAL
		body["checkpoint"] = map[string]any{
			"lsn":       ss.CheckpointLSN,
			"lastLSN":   ss.LastLSN,
			"completed": ss.Checkpoints,
			"lastError": ss.CheckpointErr,
		}
		// Group-commit counters: mutations/groups is the mean coalescing
		// factor — how many concurrent writers shared each fsync.
		body["commit"] = ss.Commit
		// Streaming-import tally: chunks/images/bytes committed, chunks an
		// interrupted run's resume skipped, and imports running right now.
		body["import"] = ss.Import
		// The replication ledger: what is durable (shippable), applied,
		// visible to reads, and how far back the retained WAL reaches. On
		// a follower appliedLSN is the catch-up position.
		body["lsn"] = map[string]any{
			"durable":  ss.WAL.DurableLSN,
			"applied":  ss.AppliedLSN,
			"visible":  ss.VisibleLSN,
			"oldest":   ss.WAL.OldestLSN,
			"segments": ss.WAL.Segments,
		}
		body["storeId"] = ss.StoreID
	}
	switch {
	case a.primary != nil:
		body["replication"] = map[string]any{"followers": a.primary.Followers()}
	case a.follower != nil:
		body["replication"] = a.follower.Status()
	}
	writeJSON(w, http.StatusOK, body)
}

// role classifies the server for /healthz: a replication primary, a
// follower, or a standalone instance (durable or in-memory).
func (a *api) role() string {
	switch {
	case a.primary != nil:
		return "primary"
	case a.follower != nil:
		return "follower"
	default:
		return "standalone"
	}
}

// redirectedWrite handles a mutation refused because this server is a
// read-only follower: a 307 to the primary preserves the method and
// body, so a client that follows redirects lands the write where it
// belongs. Reports whether the response was written.
func (a *api) redirectedWrite(w http.ResponseWriter, r *http.Request, err error) bool {
	if !errors.Is(err, bestring.ErrReadOnlyReplica) {
		return false
	}
	if a.primaryURL == "" {
		writeErr(w, http.StatusForbidden, err)
		return true
	}
	// Log the redirect with the request id: the primary echoes the same
	// id, so one write can be traced across both servers' logs.
	if tr := bestring.TraceFromContext(r.Context()); tr != nil {
		log.Printf("follower: redirecting %s %s to primary (request %s)", r.Method, r.URL.Path, tr.ID())
	}
	http.Redirect(w, r, a.primaryURL+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	return true
}

// writeLSNs annotates a successful mutation response with the store's
// post-write horizons: "lsn" is the read-your-writes token (pass it as
// min_lsn to any replica of this store) and "durable" the fsynced
// horizon — under -fsync always they match; under interval/never
// durable may trail the write briefly.
func (a *api) writeLSNs(body map[string]any) map[string]any {
	if a.store != nil {
		body["lsn"] = a.store.VisibleLSN()
		body["durable"] = a.store.DurableLSN()
	}
	return body
}

func (a *api) listImages(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ids": a.db.IDs()})
}

// insertRequest is the POST /api/images payload.
type insertRequest struct {
	ID    string         `json:"id"`
	Name  string         `json:"name"`
	Image bestring.Image `json:"image"`
}

func (a *api) insertImage(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if status, err := decodeBody(w, r, false, &req); err != nil {
		writeErr(w, status, err)
		return
	}
	if err := a.db.Insert(req.ID, req.Name, req.Image); err != nil {
		if a.redirectedWrite(w, r, err) {
			return
		}
		status := http.StatusBadRequest
		if errors.Is(err, bestring.ErrDuplicate) {
			status = http.StatusConflict
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, a.writeLSNs(map[string]any{"id": req.ID}))
}

func (a *api) getImage(w http.ResponseWriter, r *http.Request) {
	e, ok := a.db.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, bestring.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, e)
}

func (a *api) deleteImage(w http.ResponseWriter, r *http.Request) {
	if err := a.db.Delete(r.PathValue("id")); err != nil {
		if a.redirectedWrite(w, r, err) {
			return
		}
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, a.writeLSNs(map[string]any{"deleted": true}))
}

// searchRequest is the POST /api/search payload (v0). K, minScore,
// parallelism and labelPrefilter map directly onto
// bestring.SearchOptions, so clients can tune the engine per request.
type searchRequest struct {
	Image  bestring.Image `json:"image"`
	K      int            `json:"k"`
	Method string         `json:"method"` // a registered scorer name; see /api/v1/search
	// MinScore drops results scoring below the threshold.
	MinScore float64 `json:"minScore"`
	// Parallelism bounds the scoring workers (0 means GOMAXPROCS).
	Parallelism int `json:"parallelism"`
	// LabelPrefilter prunes images sharing no icon label with the query.
	LabelPrefilter bool `json:"labelPrefilter"`
}

func (a *api) search(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if status, err := decodeBody(w, r, false, &req); err != nil {
		writeErr(w, status, err)
		return
	}
	scorer, ok := bestring.LookupScorer(req.Method)
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown method %q", req.Method))
		return
	}
	if req.K < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %d", req.K))
		return
	}
	if req.Parallelism < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad parallelism %d", req.Parallelism))
		return
	}
	parallelism := req.Parallelism
	if parallelism == 0 {
		parallelism = a.parallelism
	}
	start := time.Now()
	results, err := a.db.Search(r.Context(), req.Image, bestring.SearchOptions{
		K:              req.K,
		Scorer:         scorer,
		MinScore:       req.MinScore,
		Parallelism:    parallelism,
		LabelPrefilter: req.LabelPrefilter,
	})
	a.logSlow(r, "/api/search", start, map[string]any{
		"method": req.Method, "k": req.K, "objects": len(req.Image.Objects),
	}, nil, err)
	if err != nil {
		writeErr(w, queryStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func (a *api) searchDSL(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query().Get("q")
	q, err := bestring.ParseQuery(qs)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		if k, err = strconv.Atoi(ks); err != nil || k < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
			return
		}
	}
	start := time.Now()
	results, err := a.db.SearchDSL(r.Context(), q, k)
	a.logSlow(r, "/api/search/dsl", start, map[string]any{"q": q.String(), "k": k}, nil, err)
	if err != nil {
		// The query parsed, so a failure here is a cancellation, a
		// timeout, or a pipeline rejection — a client condition, not an
		// internal error.
		writeErr(w, queryStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": q.String(), "results": results})
}

func (a *api) region(w http.ResponseWriter, r *http.Request) {
	coord := func(name string) (int, error) {
		v := r.URL.Query().Get(name)
		if v == "" {
			return 0, fmt.Errorf("missing %s", name)
		}
		return strconv.Atoi(v)
	}
	x0, err1 := coord("x0")
	y0, err2 := coord("y0")
	x1, err3 := coord("x1")
	y1, err4 := coord("y1")
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	hits := a.db.SearchRegion(bestring.NewRect(x0, y0, x1, y1), r.URL.Query().Get("label"))
	writeJSON(w, http.StatusOK, map[string]any{"hits": hits})
}

// queryRequest is the POST /api/v1/search payload: any combination of a
// query image (ranked similarity), a spatial-predicate expression and a
// region, plus pagination and engine knobs — or a batch of them under
// "queries", evaluated concurrently.
type queryRequest struct {
	Image       *bestring.Image `json:"image,omitempty"`
	DSL         string          `json:"dsl,omitempty"`
	Region      *bestring.Rect  `json:"region,omitempty"`
	RegionLabel string          `json:"regionLabel,omitempty"`
	// Scorer names a registered scorer ("" means the default BE-LCS).
	Scorer string `json:"scorer,omitempty"`
	K      int    `json:"k,omitempty"`
	Offset int    `json:"offset,omitempty"`
	// Cursor resumes after a previous response's nextCursor.
	Cursor   string  `json:"cursor,omitempty"`
	MinScore float64 `json:"minScore,omitempty"`
	// WhereMin overrides the satisfied fraction the DSL filter requires.
	WhereMin       float64 `json:"whereMin,omitempty"`
	Parallelism    int     `json:"parallelism,omitempty"`
	LabelPrefilter bool    `json:"labelPrefilter,omitempty"`

	// Consistent pins the request (every query of a batch) to one
	// snapshot epoch: all queries read the exact same immutable version
	// of the store, however many writers run concurrently, and the
	// response reports the pinned epoch. Queries carrying a cursor keep
	// the (older) epoch the cursor pinned instead — continuing their
	// exact page walk rather than jumping to the fresh snapshot.
	Consistent bool `json:"consistent,omitempty"`

	// Debug adds the per-stage candidate counts (narrowed, bounded,
	// evaluated, pruned) and the planner's chosen plan (stage order,
	// selectivity estimates, scorer-cache hits) to the response — on a
	// batch, to every sub-response. Results are unaffected.
	Debug bool `json:"debug,omitempty"`

	Queries []queryRequest `json:"queries,omitempty"`
}

// buildQuery compiles one request into a pipeline query.
// defaultParallelism fills in the scoring-worker bound for requests that
// set none.
func buildQuery(req queryRequest, defaultParallelism int) (*bestring.Query, []bestring.QueryOption, error) {
	if req.RegionLabel != "" && req.Region == nil {
		return nil, nil, fmt.Errorf("regionLabel requires region")
	}
	var q *bestring.Query
	if req.Image != nil {
		q = bestring.NewQuery(*req.Image)
	} else {
		q = bestring.NewMatchQuery()
	}
	parallelism := req.Parallelism
	if parallelism == 0 {
		parallelism = defaultParallelism
	}
	opts := []bestring.QueryOption{
		bestring.WithK(req.K),
		bestring.WithOffset(req.Offset),
		bestring.WithCursor(req.Cursor),
		bestring.WithScorer(req.Scorer),
		bestring.WithMinScore(req.MinScore),
		bestring.WithParallelism(parallelism),
		bestring.WithLabelPrefilter(req.LabelPrefilter),
	}
	if req.DSL != "" {
		opts = append(opts, bestring.Where(req.DSL))
	}
	if req.Region != nil {
		opts = append(opts, bestring.InRegionLabel(*req.Region, req.RegionLabel))
	}
	if req.WhereMin != 0 {
		opts = append(opts, bestring.WithWhereMin(req.WhereMin))
	}
	return q, opts, nil
}

// queryShape reduces one v1 request to the fields worth logging on a
// slow query: what kind of query ran, never the image payload itself.
func queryShape(req queryRequest) map[string]any {
	shape := map[string]any{"k": req.K}
	if req.Image != nil {
		shape["objects"] = len(req.Image.Objects)
	}
	if req.DSL != "" {
		shape["dsl"] = req.DSL
	}
	if req.Region != nil {
		shape["region"] = true
	}
	if req.RegionLabel != "" {
		shape["regionLabel"] = req.RegionLabel
	}
	if req.Scorer != "" {
		shape["scorer"] = req.Scorer
	}
	if req.Offset != 0 {
		shape["offset"] = req.Offset
	}
	if req.Cursor != "" {
		shape["cursor"] = true
	}
	if req.Consistent {
		shape["consistent"] = true
	}
	return shape
}

// queryResponse is one evaluated query of a batch (or the whole response
// for a single query): a page on success, an error envelope otherwise.
type queryResponse struct {
	Hits       []bestring.QueryHit `json:"hits"`
	Total      int                 `json:"total"`
	NextCursor string              `json:"nextCursor,omitempty"`
	// Epoch identifies the immutable store version the query read.
	Epoch uint64 `json:"epoch,omitempty"`
	// Stages carries the per-stage candidate counts when the request set
	// "debug": true.
	Stages *bestring.QueryStages `json:"stages,omitempty"`
	// Plan carries the planner's chosen stage order, selectivity
	// estimates and scorer-cache hit/miss counts when the request set
	// "debug": true.
	Plan   *bestring.QueryPlan `json:"plan,omitempty"`
	Error  string              `json:"error,omitempty"`
	Status int                 `json:"status,omitempty"` // set only on per-query batch errors
}

// waitMinLSN implements read-your-writes routing across replication: a
// request carrying ?min_lsn=N (the "lsn" a primary write response
// returned) waits — bounded by minLSNWait — until this store has
// published LSN N, and 404s if it cannot, so the client retries here or
// falls back to the primary rather than silently reading stale state.
// Reports whether the request may proceed.
func (a *api) waitMinLSN(w http.ResponseWriter, r *http.Request) bool {
	s := r.URL.Query().Get("min_lsn")
	if s == "" {
		return true
	}
	lsn, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad min_lsn %q", s))
		return false
	}
	if a.store == nil {
		writeErr(w, http.StatusBadRequest, errors.New("min_lsn requires a durable store"))
		return false
	}
	ctx, cancel := context.WithTimeout(r.Context(), minLSNWait)
	defer cancel()
	if err := a.store.WaitVisible(ctx, lsn); err != nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf(
			"lsn %d not visible here (at %d)", lsn, a.store.VisibleLSN()))
		return false
	}
	return true
}

func (a *api) searchV1(w http.ResponseWriter, r *http.Request) {
	if !a.waitMinLSN(w, r) {
		return
	}
	var req queryRequest
	if status, err := decodeBody(w, r, true, &req); err != nil {
		writeErr(w, status, err)
		return
	}

	// With "consistent" the whole request pins one snapshot epoch up
	// front: every query (of a batch) reads the same immutable version,
	// so a concurrent writer can never make two queries of one request
	// disagree about the store's contents. A query carrying a cursor is
	// the exception — the cursor already pins the epoch its first page
	// ran on, and that older pin must win (routing it onto the fresh
	// snapshot would break the no-skip/no-duplicate pagination
	// guarantee), so it goes through the engine's cursor resolution.
	var snap *bestring.Snapshot
	if req.Consistent {
		snap = a.db.Snapshot()
	}
	runQuery := func(ctx context.Context, sub queryRequest, q *bestring.Query, opts []bestring.QueryOption) (*bestring.QueryPage, error) {
		if snap != nil && sub.Cursor == "" {
			return snap.Query(ctx, q, opts...)
		}
		return a.db.Query(ctx, q, opts...)
	}

	if len(req.Queries) > 0 {
		if req.Image != nil || req.DSL != "" || req.Region != nil {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("queries cannot be combined with a top-level image, dsl or region"))
			return
		}
		if len(req.Queries) > maxBatchQueries {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("batch of %d queries exceeds the limit of %d", len(req.Queries), maxBatchQueries))
			return
		}
		for _, sub := range req.Queries {
			if len(sub.Queries) > 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("queries cannot nest"))
				return
			}
			if sub.Consistent {
				writeErr(w, http.StatusBadRequest,
					fmt.Errorf("consistent applies to the whole batch, not a single query"))
				return
			}
		}
		start := time.Now()
		out := make([]queryResponse, len(req.Queries))
		var wg sync.WaitGroup
		for i, sub := range req.Queries {
			wg.Add(1)
			go func(i int, sub queryRequest) {
				defer wg.Done()
				q, opts, err := buildQuery(sub, a.parallelism)
				if err != nil {
					out[i] = queryResponse{Hits: []bestring.QueryHit{}, Error: err.Error(), Status: http.StatusBadRequest}
					return
				}
				page, err := runQuery(r.Context(), sub, q, opts)
				if err != nil {
					out[i] = queryResponse{Hits: []bestring.QueryHit{}, Error: err.Error(), Status: queryStatus(err)}
					return
				}
				out[i] = queryResponse{Hits: page.Hits, Total: page.Total, NextCursor: page.NextCursor, Epoch: page.Epoch}
				if req.Debug || sub.Debug {
					out[i].Stages = page.Stages
					out[i].Plan = page.Plan
				}
			}(i, sub)
		}
		wg.Wait()
		a.logSlow(r, "/api/v1/search", start,
			map[string]any{"batch": len(req.Queries), "consistent": req.Consistent}, nil, nil)
		resp := map[string]any{"results": out}
		if snap != nil {
			resp["epoch"] = snap.Epoch()
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	q, opts, err := buildQuery(req, a.parallelism)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	page, err := runQuery(r.Context(), req, q, opts)
	var stages any
	if page != nil && page.Stages != nil {
		stages = page.Stages
	}
	a.logSlow(r, "/api/v1/search", start, queryShape(req), stages, err)
	if err != nil {
		writeErr(w, queryStatus(err), err)
		return
	}
	resp := queryResponse{
		Hits: page.Hits, Total: page.Total, NextCursor: page.NextCursor, Epoch: page.Epoch,
	}
	if req.Debug {
		resp.Stages = page.Stages
		resp.Plan = page.Plan
	}
	writeJSON(w, http.StatusOK, resp)
}

// importScenes is POST /api/v1/import: a streaming bulk ingest. The body
// is a scene stream — NDJSON by default, the CSV dialect with
// ?format=csv — consumed incrementally (no maxBodyBytes cap: chunking
// bounds memory, not the request size), converted in a worker pool and
// committed as chunked WAL records, so one request loads a corpus far
// larger than memory. Query knobs: chunk (scenes per chunk),
// chunk_bytes, parallelism, no_resume=1. Interrupted imports resume:
// re-POST the same stream and already-durable chunks are skipped (see
// DESIGN.md section 12).
func (a *api) importScenes(w http.ResponseWriter, r *http.Request) {
	if a.store == nil {
		writeErr(w, http.StatusBadRequest, errors.New("import requires a durable store (run with -data-dir)"))
		return
	}
	var opts bestring.ImportOptions
	q := r.URL.Query()
	intParam := func(name string) (int, error) {
		s := q.Get(name)
		if s == "" {
			return 0, nil
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad %s %q", name, s)
		}
		return n, nil
	}
	var err error
	if opts.ChunkScenes, err = intParam("chunk"); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var cb int
	if cb, err = intParam("chunk_bytes"); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	opts.ChunkBytes = int64(cb)
	if opts.Parallelism, err = intParam("parallelism"); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	opts.NoResume = q.Get("no_resume") == "1" || q.Get("no_resume") == "true"
	var src bestring.SceneReader
	switch format := q.Get("format"); format {
	case "", "ndjson":
		src = bestring.NDJSONScenes(r.Body)
	case "csv":
		src = bestring.CSVScenes(r.Body)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want ndjson or csv)", format))
		return
	}
	start := time.Now()
	stats, err := a.store.Import(r.Context(), src, opts)
	if err != nil {
		if a.redirectedWrite(w, r, err) {
			return
		}
		status := queryStatus(err)
		if errors.Is(err, bestring.ErrDuplicate) {
			status = http.StatusConflict
		}
		// Committed chunks stay durable even when the stream fails midway;
		// report them so the client knows a re-POST will resume, not redo.
		writeJSON(w, status, map[string]any{"error": err.Error(), "import": stats})
		return
	}
	log.Printf("import: %d images in %d chunks (%d resumed) in %s",
		stats.Images, stats.Chunks, stats.ResumedChunks, time.Since(start).Round(time.Millisecond))
	writeJSON(w, http.StatusOK, a.writeLSNs(map[string]any{"import": stats}))
}
