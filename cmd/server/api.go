package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"bestring"
)

// newMux wires the REST routes onto a database.
func newMux(db *bestring.DB) http.Handler {
	api := &api{db: db}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", api.health)
	mux.HandleFunc("GET /api/images", api.listImages)
	mux.HandleFunc("POST /api/images", api.insertImage)
	mux.HandleFunc("GET /api/images/{id}", api.getImage)
	mux.HandleFunc("DELETE /api/images/{id}", api.deleteImage)
	mux.HandleFunc("POST /api/search", api.search)
	mux.HandleFunc("GET /api/search/dsl", api.searchDSL)
	mux.HandleFunc("GET /api/region", api.region)
	return mux
}

type api struct {
	db *bestring.DB
}

// writeJSON emits a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after WriteHeader are unrecoverable; ignore.
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr emits a JSON error envelope.
func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (a *api) health(w http.ResponseWriter, _ *http.Request) {
	stats := a.db.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok": true, "images": stats.Images, "shards": stats.Shards,
	})
}

func (a *api) listImages(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ids": a.db.IDs()})
}

// insertRequest is the POST /api/images payload.
type insertRequest struct {
	ID    string         `json:"id"`
	Name  string         `json:"name"`
	Image bestring.Image `json:"image"`
}

func (a *api) insertImage(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	if err := a.db.Insert(req.ID, req.Name, req.Image); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, bestring.ErrDuplicate) {
			status = http.StatusConflict
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

func (a *api) getImage(w http.ResponseWriter, r *http.Request) {
	e, ok := a.db.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, bestring.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, e)
}

func (a *api) deleteImage(w http.ResponseWriter, r *http.Request) {
	if err := a.db.Delete(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

// searchRequest is the POST /api/search payload. K, minScore, parallelism
// and labelPrefilter map directly onto bestring.SearchOptions, so clients
// can tune the engine per request.
type searchRequest struct {
	Image  bestring.Image `json:"image"`
	K      int            `json:"k"`
	Method string         `json:"method"` // be (default), invariant, type0, type1, type2
	// MinScore drops results scoring below the threshold.
	MinScore float64 `json:"minScore"`
	// Parallelism bounds the scoring workers (0 means GOMAXPROCS).
	Parallelism int `json:"parallelism"`
	// LabelPrefilter prunes images sharing no icon label with the query.
	LabelPrefilter bool `json:"labelPrefilter"`
}

func (a *api) search(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	var scorer bestring.Scorer
	switch req.Method {
	case "", "be":
		scorer = bestring.BEScorer()
	case "invariant":
		scorer = bestring.InvariantScorer(nil)
	case "type0":
		scorer = bestring.TypeSimScorer(bestring.Type0)
	case "type1":
		scorer = bestring.TypeSimScorer(bestring.Type1)
	case "type2":
		scorer = bestring.TypeSimScorer(bestring.Type2)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown method %q", req.Method))
		return
	}
	if req.Parallelism < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad parallelism %d", req.Parallelism))
		return
	}
	results, err := a.db.Search(r.Context(), req.Image, bestring.SearchOptions{
		K:              req.K,
		Scorer:         scorer,
		MinScore:       req.MinScore,
		Parallelism:    req.Parallelism,
		LabelPrefilter: req.LabelPrefilter,
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func (a *api) searchDSL(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query().Get("q")
	q, err := bestring.ParseQuery(qs)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		if k, err = strconv.Atoi(ks); err != nil || k < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
			return
		}
	}
	results, err := a.db.SearchDSL(r.Context(), q, k)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": q.String(), "results": results})
}

func (a *api) region(w http.ResponseWriter, r *http.Request) {
	coord := func(name string) (int, error) {
		v := r.URL.Query().Get(name)
		if v == "" {
			return 0, fmt.Errorf("missing %s", name)
		}
		return strconv.Atoi(v)
	}
	x0, err1 := coord("x0")
	y0, err2 := coord("y0")
	x1, err3 := coord("x1")
	y1, err4 := coord("y1")
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	hits := a.db.SearchRegion(bestring.NewRect(x0, y0, x1, y1), r.URL.Query().Get("label"))
	writeJSON(w, http.StatusOK, map[string]any{"hits": hits})
}
