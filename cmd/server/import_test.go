package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bestring"
)

// ndjsonBody renders n scenes in the import endpoint's wire format.
func ndjsonBody(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b,
			`{"id":"imp%04d","name":"s%d","image":{"xmax":12,"ymax":12,"objects":[{"label":"icon%02d","box":{"x0":%d,"y0":1,"x1":%d,"y1":4}}]}}`+"\n",
			i, i, i%6, i%8, i%8+2)
	}
	return b.String()
}

func postStream(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestImportEndpoint(t *testing.T) {
	s, err := bestring.OpenStore(t.TempDir(), bestring.StoreOptions{Fsync: bestring.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := newMux(s)

	rec := postStream(t, h, "/api/v1/import?chunk=16", ndjsonBody(50))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	var out struct {
		Import bestring.ImportStats `json:"import"`
		LSN    uint64               `json:"lsn"`
	}
	decode(t, rec, &out)
	if out.Import.Images != 50 || out.Import.Chunks != 4 || out.LSN == 0 {
		t.Fatalf("response = %+v", out)
	}
	if s.Len() != 50 {
		t.Fatalf("Len = %d", s.Len())
	}

	// Re-POSTing the identical stream resumes: every chunk is already
	// durable, nothing duplicates.
	rec = postStream(t, h, "/api/v1/import?chunk=16", ndjsonBody(50))
	if rec.Code != http.StatusOK {
		t.Fatalf("re-post status = %d (body %s)", rec.Code, rec.Body)
	}
	decode(t, rec, &out)
	if out.Import.Images != 0 || out.Import.ResumedChunks != 4 {
		t.Fatalf("re-post = %+v, want everything resumed", out.Import)
	}
	if s.Len() != 50 {
		t.Fatalf("Len after re-post = %d", s.Len())
	}

	// The health body carries the cumulative import tally.
	hr := do(t, h, http.MethodGet, "/healthz", nil)
	var health struct {
		Import *bestring.ImportStats `json:"import"`
	}
	decode(t, hr, &health)
	if health.Import == nil || health.Import.Images != 50 || health.Import.ResumedChunks != 4 {
		t.Fatalf("healthz import = %+v", health.Import)
	}

	// CSV format rides the same endpoint.
	rec = postStream(t, h, "/api/v1/import?format=csv",
		"id,name,xmax,ymax,objects\ncsvA,,9,9,icon00:1:1:3:3\ncsvB,,9,9,icon01:2:2:4:4|icon02:0:0:1:1\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("csv status = %d (body %s)", rec.Code, rec.Body)
	}
	if s.Len() != 52 {
		t.Fatalf("Len after csv = %d", s.Len())
	}

	// Bad knobs and formats are rejected before the stream is read.
	if rec := postStream(t, h, "/api/v1/import?format=tsv", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad format status = %d", rec.Code)
	}
	if rec := postStream(t, h, "/api/v1/import?chunk=-1", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad chunk status = %d", rec.Code)
	}

	// A mid-stream collision reports the partial progress it kept.
	rec = postStream(t, h, "/api/v1/import?chunk=4&no_resume=1", ndjsonBody(8))
	if rec.Code != http.StatusConflict {
		t.Fatalf("collision status = %d (body %s)", rec.Code, rec.Body)
	}
}

func TestImportEndpointRequiresStore(t *testing.T) {
	rec := postStream(t, testMux(t), "/api/v1/import", ndjsonBody(1))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
}
