// Command server exposes the 2D BE-string image database as a JSON REST
// API — the headless counterpart of cmd/demo, suitable for embedding the
// retrieval system in a larger application.
//
// Endpoints (resource routes answer under both /api and /api/v1):
//
//	GET    /healthz                           liveness
//	GET    /api/images                        list stored ids
//	POST   /api/images                        insert {"id","name","image"}
//	GET    /api/images/{id}                   fetch one entry
//	DELETE /api/images/{id}                   remove one entry
//	POST   /api/v1/search                     composable query: any mix of
//	                                          {"image","dsl","region","regionLabel",
//	                                          "scorer",k,offset,"cursor",minScore,
//	                                          whereMin,parallelism,labelPrefilter},
//	                                          or a concurrent batch {"queries":[...]}
//	POST   /api/search                        v0 ranked search (alias of the pipeline)
//	GET    /api/search/dsl?q=A+left-of+B&k=5  v0 spatial-predicate search (alias)
//	GET    /api/region?x0=&y0=&x1=&y1=&label= v0 R-tree icon lookup (alias)
//
// Usage:
//
//	server [-addr :8081] [-dbfile db.json] [-seed 0 -count 0] [-shards 0]
//
// With -dbfile the database is loaded from (and saved back to) the file
// on SIGINT; with -count a synthetic database is generated instead.
// -shards partitions a synthetic or empty database (0 means GOMAXPROCS);
// a database loaded from -dbfile keeps the default shard count.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"bestring"
)

func main() {
	fs := flag.NewFlagSet("server", flag.ContinueOnError)
	addr := fs.String("addr", ":8081", "listen address")
	dbfile := fs.String("dbfile", "", "database JSON file to serve (optional)")
	count := fs.Int("count", 0, "generate a synthetic database of this size when no -dbfile")
	seed := fs.Int64("seed", 1, "generator seed for -count")
	shards := fs.Int("shards", 0, "shard count for a synthetic or empty database (0 = GOMAXPROCS)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	db, err := openDB(*dbfile, *count, *seed, *shards)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	log.Printf("serving %d images on %s", db.Len(), *addr)
	if err := http.ListenAndServe(*addr, newMux(db)); err != nil {
		log.Fatalf("server: %v", err)
	}
}

// openDB loads or synthesises the database per the flags.
func openDB(dbfile string, count int, seed int64, shards int) (*bestring.DB, error) {
	if dbfile != "" {
		return bestring.LoadDBFile(dbfile)
	}
	db := bestring.NewDBSharded(shards)
	if count <= 0 {
		return db, nil
	}
	gen := bestring.NewSceneGenerator(bestring.SceneConfig{Seed: seed, Vocabulary: 24})
	items := make([]bestring.BulkItem, count)
	for i := range items {
		items[i] = bestring.BulkItem{
			ID: fmt.Sprintf("scene%04d", i), Name: "synthetic", Image: gen.Scene(),
		}
	}
	if err := db.BulkInsert(context.Background(), items, 0); err != nil {
		return nil, err
	}
	return db, nil
}
