// Command server exposes the 2D BE-string image database as a JSON REST
// API — the headless counterpart of cmd/demo, suitable for embedding the
// retrieval system in a larger application.
//
// Endpoints (resource routes answer under both /api and /api/v1):
//
//	GET    /healthz                           liveness: snapshot epoch, entry and
//	                                          goroutine counts (+ WAL/checkpoint
//	                                          stats with -data-dir)
//	GET    /metrics                           Prometheus text exposition: query
//	                                          stage histograms, WAL/commit/
//	                                          replication instruments, HTTP
//	                                          counters
//	GET    /api/images                        list stored ids
//	POST   /api/images                        insert {"id","name","image"}
//	GET    /api/images/{id}                   fetch one entry
//	DELETE /api/images/{id}                   remove one entry
//	POST   /api/v1/search                     composable query: any mix of
//	                                          {"image","dsl","region","regionLabel",
//	                                          "scorer",k,offset,"cursor",minScore,
//	                                          whereMin,parallelism,labelPrefilter},
//	                                          or a concurrent batch {"queries":[...]};
//	                                          "consistent":true pins the whole
//	                                          request to one snapshot epoch
//	POST   /api/search                        v0 ranked search (alias of the pipeline)
//	GET    /api/search/dsl?q=A+left-of+B&k=5  v0 spatial-predicate search (alias)
//	GET    /api/region?x0=&y0=&x1=&y1=&label= v0 R-tree icon lookup (alias)
//	GET    /repl/v1/stream?after=&follower=   primary: WAL replication stream
//	POST   /repl/v1/ack?follower=&lsn=        primary: follower progress ack
//
// Usage:
//
//	server [-addr :8081] [-data-dir DIR [-fsync always|interval|never]
//	       [-segment-bytes N] [-commit-window 1ms] [-commit-batch 128]
//	       [-replicate-from URL]]
//	       [-dbfile db.json] [-seed 0 -count 0] [-shards 0]
//	       [-parallelism 0] [-slow-query 0] [-pprof-addr ""]
//
// Observability: GET /metrics serves the engine's registry in the
// Prometheus text format on every role (primary, follower,
// standalone). Every request is assigned (or propagates) an
// X-Request-Id — echoed on the response, carried through a follower's
// 307 write redirect, and used as the trace id the query pipeline
// records stage spans under. -slow-query logs any search at or above
// the threshold as one JSON line on stderr (trace id, route, compiled
// query shape, stage timings). -pprof-addr serves net/http/pprof on a
// separate listener, keeping profiling off the public port.
//
// Flags are validated up front: a negative -shards/-parallelism/-count/
// -segment-bytes/-commit-window, a -commit-batch below 1 or an unknown
// -fsync policy exits with a one-line error before anything is opened,
// instead of surfacing as undefined behavior deep in the engine.
//
// With -data-dir the server runs on the durable store: every mutation is
// written to the write-ahead log before it is acknowledged, and a restart
// (or crash) recovers the state from the latest snapshot plus the log
// tail. Concurrent mutations group-commit — they coalesce into one WAL
// append and share one fsync; -commit-window bounds how long a mutation
// may linger for its group (0 commits each drained group immediately)
// and -commit-batch caps the group size (1 disables grouping). /healthz
// reports the coalescing counters under "commit".
//
// A durable server is always a capable replication primary: it serves
// its WAL on /repl/v1/stream and reports connected followers on
// /healthz. With -replicate-from the server instead runs as a read-only
// follower of the named primary — it replays the primary's WAL into its
// own store, serves the full read surface, answers writes with a 307
// redirect to the primary, and exposes its catch-up position
// (appliedLSN) on /healthz. Reads on either role may pass
// ?min_lsn=N on POST /api/v1/search to wait (bounded) until that LSN is
// visible, or receive a 404 — the read-your-writes handshake; primary
// write responses return the "lsn" token to pass. With -dbfile the database is loaded from the file and saved back
// atomically on shutdown; with -count a synthetic database is generated
// (seeded into the store when one is configured and empty). -shards
// partitions a synthetic or empty database (0 means GOMAXPROCS); a
// database recovered from a snapshot keeps the default shard count.
//
// SIGINT/SIGTERM triggers a graceful shutdown: in-flight requests drain,
// the WAL is flushed (or the -dbfile snapshot rewritten) and the process
// exits 0 — the recovery smoke test in CI exercises exactly this path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bestring"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		log.Fatalf("server: %v", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("server", flag.ContinueOnError)
	addr := fs.String("addr", ":8081", "listen address")
	dbfile := fs.String("dbfile", "", "database JSON file to serve (optional)")
	dataDir := fs.String("data-dir", "", "durable store directory (WAL + snapshots); overrides -dbfile")
	fsyncS := fs.String("fsync", "always", "WAL fsync policy with -data-dir: always, interval or never")
	segBytes := fs.Int64("segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = 4 MiB)")
	commitWindow := fs.Duration("commit-window", bestring.DefaultCommitWindow,
		"max time a mutation lingers for its commit group with -data-dir (0 = commit each group as soon as it is drained)")
	commitBatch := fs.Int("commit-batch", bestring.DefaultCommitBatch,
		"max mutations coalesced into one WAL append with -data-dir (1 = disable group commit)")
	count := fs.Int("count", 0, "generate a synthetic database of this size when empty")
	seed := fs.Int64("seed", 1, "generator seed for -count")
	shards := fs.Int("shards", 0, "shard count for a synthetic or empty database (0 = GOMAXPROCS)")
	parallelism := fs.Int("parallelism", 0, "default scoring workers for search requests that set none (0 = GOMAXPROCS)")
	replicateFrom := fs.String("replicate-from", "",
		"primary base URL to follow (e.g. http://127.0.0.1:8081); the store becomes a read-only replica (requires -data-dir)")
	slowQuery := fs.Duration("slow-query", 0,
		"log searches at or above this latency as JSON lines on stderr (0 disables)")
	pprofAddr := fs.String("pprof-addr", "",
		"serve net/http/pprof on this separate address (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate every flag before opening anything: a bad value must be a
	// one-line startup error, not undefined behavior deep in the engine.
	if *dataDir != "" && *dbfile != "" {
		return fmt.Errorf("-data-dir and -dbfile are mutually exclusive")
	}
	if *replicateFrom != "" {
		if *dataDir == "" {
			return fmt.Errorf("-replicate-from requires -data-dir (the follower's own log and snapshots)")
		}
		if *count > 0 {
			return fmt.Errorf("-replicate-from and -count are mutually exclusive: a follower's state comes from its primary")
		}
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", *shards)
	}
	if *parallelism < 0 {
		return fmt.Errorf("-parallelism must be >= 0, got %d", *parallelism)
	}
	if *segBytes < 0 {
		return fmt.Errorf("-segment-bytes must be >= 0, got %d", *segBytes)
	}
	if *commitWindow < 0 {
		return fmt.Errorf("-commit-window must be >= 0, got %v", *commitWindow)
	}
	if *commitBatch < 1 {
		return fmt.Errorf("-commit-batch must be >= 1, got %d", *commitBatch)
	}
	if *count < 0 {
		return fmt.Errorf("-count must be >= 0, got %d", *count)
	}
	if *slowQuery < 0 {
		return fmt.Errorf("-slow-query must be >= 0, got %v", *slowQuery)
	}
	policy, err := bestring.ParseFsyncPolicy(*fsyncS)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Metrics are always on: the instruments are lock-striped atomics
	// whose cost is negligible against a search or an fsync (E15 pins
	// the overhead under 2%), and a scrape endpoint nobody polls costs
	// nothing.
	reg := bestring.NewMetricsRegistry()
	slowLog := bestring.NewSlowQueryLog(os.Stderr, *slowQuery)

	var (
		eng      engine
		store    *bestring.Store
		db       *bestring.DB
		primary  *bestring.ReplicationPrimary
		follower *bestring.ReplicationFollower
	)
	if *dataDir != "" {
		opts := bestring.StoreOptions{
			Shards:       *shards,
			Fsync:        policy,
			SegmentBytes: *segBytes,
			CommitBatch:  *commitBatch,
			CommitWindow: *commitWindow,
			Replica:      *replicateFrom != "",
		}
		if *commitWindow == 0 {
			opts.CommitWindow = -1 // commit each drained group immediately
		}
		if *commitBatch == 1 {
			opts.NoGroupCommit = true // a group of one is just a mutation
		}
		s, err := bestring.OpenStore(*dataDir, opts)
		if err != nil {
			return err
		}
		defer s.Close()
		if *count > 0 && s.Len() == 0 {
			if err := seedSynthetic(s, *count, *seed); err != nil {
				return err
			}
		}
		store, eng = s, s
		s.EnableMetrics(reg)
		if *replicateFrom != "" {
			// Follower: replay the primary's WAL stream in the background;
			// the read surface serves whatever has been applied so far. A
			// permanent sync failure (divergence, pruned backlog) leaves the
			// server up, read-only on its last applied state — /healthz
			// reports the condition under "replication".
			f, err := bestring.NewReplicationFollower(s, *replicateFrom, 0)
			if err != nil {
				return err
			}
			follower = f
			f.EnableMetrics(reg)
			go func() {
				if err := f.Run(ctx); err != nil {
					log.Printf("replication stopped permanently: %v", err)
				}
			}()
			log.Printf("durable store %s: following %s from lsn %d, %d images",
				*dataDir, *replicateFrom, s.AppliedLSN(), s.Len())
		} else {
			// Every durable server is a capable primary: the stream and ack
			// endpoints cost nothing until a follower connects.
			primary = bestring.NewReplicationPrimary(s, 0)
			primary.EnableMetrics(reg)
			log.Printf("durable store %s: %d images, fsync=%s, lsn=%d",
				*dataDir, s.Len(), policy, s.StoreStats().LastLSN)
		}
	} else {
		d, err := openDB(*dbfile, *count, *seed, *shards)
		if err != nil {
			return err
		}
		db, eng = d, d
		d.EnableMetrics(reg)
	}

	if *pprofAddr != "" {
		// pprof runs on its own listener with an explicit mux: the
		// profiling surface never shares a port with the public API, and
		// nothing registers on http.DefaultServeMux.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
		log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
	}

	srv := &http.Server{Addr: *addr, Handler: newServerMux(muxConfig{
		engine: eng, parallelism: *parallelism,
		primary: primary, follower: follower, primaryURL: *replicateFrom,
		metrics: reg, slowLog: slowLog,
	})}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	log.Printf("serving %d images on %s", eng.Len(), *addr)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if store != nil {
		// The deferred Close also runs harmlessly; close now so a flush
		// failure surfaces as a non-zero exit.
		if err := store.Close(); err != nil {
			return err
		}
	}
	if db != nil && *dbfile != "" {
		if err := db.SaveFile(*dbfile); err != nil {
			return err
		}
		log.Printf("saved %d images to %s", db.Len(), *dbfile)
	}
	return nil
}

// openDB loads or synthesises the in-memory database per the flags.
func openDB(dbfile string, count int, seed int64, shards int) (*bestring.DB, error) {
	if dbfile != "" {
		return bestring.LoadDBFile(dbfile)
	}
	db := bestring.NewDBSharded(shards)
	if count <= 0 {
		return db, nil
	}
	if err := seedSynthetic(db, count, seed); err != nil {
		return nil, err
	}
	return db, nil
}

// seedSynthetic fills an empty engine with generated scenes.
func seedSynthetic(eng engine, count int, seed int64) error {
	cfg := bestring.SceneConfig{Seed: seed, Vocabulary: 24}
	return bestring.SeedScenes(context.Background(), eng, cfg, count)
}
