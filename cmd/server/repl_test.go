package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bestring"
)

// TestReplicationFlagValidation pins the follower-mode startup
// contract: -replicate-from without a data directory (or combined with
// synthetic seeding) is a one-line error.
func TestReplicationFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no data dir", []string{"-replicate-from", "http://x"}, "-data-dir"},
		{"with count", []string{"-replicate-from", "http://x", "-data-dir", "d", "-count", "5"}, "-count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want validation error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %q, want mention of %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestReplicatedServers runs a primary and a follower mux end to end:
// writes land on the primary with an LSN token, the follower catches
// up, serves identical reads (honoring min_lsn), redirects writes, and
// both /healthz bodies report their replication role.
func TestReplicatedServers(t *testing.T) {
	// Primary: a durable store behind the full server mux.
	ps, err := bestring.OpenStore(t.TempDir(), bestring.StoreOptions{Fsync: bestring.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	primary := bestring.NewReplicationPrimary(ps, 50*time.Millisecond)
	primarySrv := httptest.NewServer(newMuxRepl(ps, 0, primary, nil, ""))
	defer primarySrv.Close()

	img := map[string]any{
		"xmax": 6, "ymax": 6,
		"objects": []map[string]any{
			{"label": "A", "box": map[string]int{"x0": 0, "y0": 0, "x1": 2, "y1": 2}},
			{"label": "B", "box": map[string]int{"x0": 3, "y0": 3, "x1": 5, "y1": 5}},
		},
	}
	var lastLSN uint64
	for i := 0; i < 8; i++ {
		rec := do(t, primarySrv.Config.Handler, http.MethodPost, "/api/images",
			map[string]any{"id": fmt.Sprintf("img-%d", i), "image": img})
		if rec.Code != http.StatusCreated {
			t.Fatalf("primary insert %d: status %d (%s)", i, rec.Code, rec.Body.String())
		}
		var resp struct {
			ID      string `json:"id"`
			LSN     uint64 `json:"lsn"`
			Durable uint64 `json:"durable"`
		}
		decode(t, rec, &resp)
		if resp.LSN == 0 || resp.Durable < resp.LSN {
			t.Fatalf("insert %d: lsn=%d durable=%d, want durable >= lsn > 0", i, resp.LSN, resp.Durable)
		}
		lastLSN = resp.LSN
	}

	// Follower: a replica store syncing from the primary, behind its own
	// mux that knows the primary's URL.
	fs, err := bestring.OpenStore(t.TempDir(), bestring.StoreOptions{
		Fsync: bestring.FsyncAlways, Replica: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	follower, err := bestring.NewReplicationFollower(fs, primarySrv.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- follower.Run(ctx) }()
	followerMux := newMuxRepl(fs, 0, nil, follower, primarySrv.URL)

	// min_lsn is the read-your-writes handshake: the follower serves the
	// read once (and only once) it has published the write's LSN.
	body := map[string]any{"image": img, "k": 3}
	rec := do(t, followerMux, http.MethodPost, fmt.Sprintf("/api/v1/search?min_lsn=%d", lastLSN), body)
	if rec.Code != http.StatusOK {
		t.Fatalf("follower min_lsn search: status %d (%s)", rec.Code, rec.Body.String())
	}
	var page struct {
		Hits  []bestring.QueryHit `json:"hits"`
		Total int                 `json:"total"`
	}
	decode(t, rec, &page)
	if page.Total != 8 || len(page.Hits) != 3 {
		t.Fatalf("follower search: total=%d hits=%d, want 8/3", page.Total, len(page.Hits))
	}
	// An LSN the primary never wrote is a bounded wait then 404 — never
	// a silently stale answer.
	rec = do(t, followerMux, http.MethodPost, fmt.Sprintf("/api/v1/search?min_lsn=%d", lastLSN+100), body)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unreachable min_lsn: status %d, want 404", rec.Code)
	}

	// Writes on the follower redirect to the primary, method preserved.
	req := httptest.NewRequest(http.MethodDelete, "/api/images/img-0", nil)
	rr := httptest.NewRecorder()
	followerMux.ServeHTTP(rr, req)
	if rr.Code != http.StatusTemporaryRedirect {
		t.Fatalf("follower delete: status %d, want 307", rr.Code)
	}
	if loc := rr.Header().Get("Location"); loc != primarySrv.URL+"/api/images/img-0" {
		t.Fatalf("follower delete redirects to %q", loc)
	}

	// Role and ledger on both health bodies.
	var fh struct {
		Role string `json:"role"`
		LSN  struct {
			Durable uint64 `json:"durable"`
			Applied uint64 `json:"applied"`
			Visible uint64 `json:"visible"`
			Oldest  uint64 `json:"oldest"`
		} `json:"lsn"`
		Replication struct {
			PrimaryURL string `json:"primaryURL"`
			Connected  bool   `json:"connected"`
			AppliedLSN uint64 `json:"appliedLSN"`
		} `json:"replication"`
	}
	decode(t, do(t, followerMux, http.MethodGet, "/healthz", nil), &fh)
	if fh.Role != "follower" || fh.Replication.PrimaryURL != primarySrv.URL {
		t.Fatalf("follower health = %+v", fh)
	}
	if fh.LSN.Applied < lastLSN || fh.LSN.Visible < lastLSN || fh.Replication.AppliedLSN < lastLSN {
		t.Fatalf("follower health lsn = %+v, want >= %d", fh.LSN, lastLSN)
	}

	var ph struct {
		Role string `json:"role"`
		LSN  struct {
			Durable uint64 `json:"durable"`
		} `json:"lsn"`
		Replication struct {
			Followers []struct {
				ID       string `json:"id"`
				AckedLSN uint64 `json:"ackedLSN"`
			} `json:"followers"`
		} `json:"replication"`
	}
	decode(t, do(t, primarySrv.Config.Handler, http.MethodGet, "/healthz", nil), &ph)
	if ph.Role != "primary" || ph.LSN.Durable < lastLSN {
		t.Fatalf("primary health = %+v", ph)
	}
	if len(ph.Replication.Followers) != 1 || ph.Replication.Followers[0].ID != fs.StoreID() {
		t.Fatalf("primary followers = %+v", ph.Replication.Followers)
	}

	// The follower's answer matches the primary's at the same LSN.
	var primaryPage struct {
		Hits []bestring.QueryHit `json:"hits"`
	}
	decode(t, do(t, primarySrv.Config.Handler, http.MethodPost, "/api/v1/search", body), &primaryPage)
	if len(primaryPage.Hits) != len(page.Hits) {
		t.Fatalf("hit count differs: primary %d follower %d", len(primaryPage.Hits), len(page.Hits))
	}
	for i := range page.Hits {
		if page.Hits[i].ID != primaryPage.Hits[i].ID || page.Hits[i].Score != primaryPage.Hits[i].Score {
			t.Fatalf("hit %d differs: primary %+v follower %+v", i, primaryPage.Hits[i], page.Hits[i])
		}
	}

	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("follower run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower run did not stop")
	}
}

// TestMinLSNValidation pins the parameter contract: a malformed value
// is a 400, and min_lsn on an in-memory database (no LSNs) is a 400.
func TestMinLSNValidation(t *testing.T) {
	mux := testMux(t)
	body := map[string]any{"k": 1}
	if rec := do(t, mux, http.MethodPost, "/api/v1/search?min_lsn=nope", body); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad min_lsn: status %d, want 400", rec.Code)
	}
	if rec := do(t, mux, http.MethodPost, "/api/v1/search?min_lsn=3", body); rec.Code != http.StatusBadRequest {
		t.Fatalf("min_lsn on memory db: status %d, want 400", rec.Code)
	}
}
