package main

import (
	"net/http"
	"strings"
	"testing"

	"bestring"
)

// TestFlagValidation pins the startup contract: a nonsensical flag is a
// one-line error before anything is opened, never undefined behavior
// deep in the engine.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative shards", []string{"-shards", "-1"}, "-shards"},
		{"negative parallelism", []string{"-parallelism", "-2"}, "-parallelism"},
		{"negative segment bytes", []string{"-segment-bytes", "-1"}, "-segment-bytes"},
		{"negative count", []string{"-count", "-5"}, "-count"},
		{"negative commit window", []string{"-commit-window", "-1ms"}, "-commit-window"},
		{"zero commit batch", []string{"-commit-batch", "0"}, "-commit-batch"},
		{"negative commit batch", []string{"-commit-batch", "-4"}, "-commit-batch"},
		{"unknown fsync", []string{"-fsync", "sometimes"}, "fsync"},
		{"dbfile and data-dir", []string{"-dbfile", "x.json", "-data-dir", "d"}, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want validation error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %q, want mention of %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestHealthSnapshotFields pins the operator surface: /healthz reports
// the snapshot epoch, the entry count and the goroutine count, so writer
// progress is observable against published read state.
func TestHealthSnapshotFields(t *testing.T) {
	rec := do(t, testMux(t), http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		OK         bool   `json:"ok"`
		Epoch      uint64 `json:"epoch"`
		Entries    int    `json:"entries"`
		Goroutines int    `json:"goroutines"`
	}
	decode(t, rec, &out)
	if !out.OK {
		t.Fatalf("health = %+v", out)
	}
	if out.Epoch == 0 {
		t.Error("healthz reports no snapshot epoch")
	}
	if out.Entries != 10 {
		t.Errorf("entries = %d, want 10", out.Entries)
	}
	if out.Goroutines <= 0 {
		t.Errorf("goroutines = %d", out.Goroutines)
	}
}

// TestV1ConsistentBatch pins the consistent flag: all queries of a batch
// read one pinned epoch, the response reports it, and every per-query
// epoch matches. A sub-query setting consistent itself is rejected.
func TestV1ConsistentBatch(t *testing.T) {
	mux, db := spatialMux(t, 24)

	img, _ := db.Get("img000")
	req := map[string]any{
		"consistent": true,
		"queries": []map[string]any{
			{"image": img.Image, "k": 3},
			{"dsl": "tag left-of anchor", "k": 5},
			{"image": img.Image, "k": 2, "scorer": "symbols"},
		},
	}
	rec := do(t, mux, http.MethodPost, "/api/v1/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body.String())
	}
	var out struct {
		Epoch   uint64 `json:"epoch"`
		Results []struct {
			Epoch uint64              `json:"epoch"`
			Hits  []bestring.QueryHit `json:"hits"`
			Error string              `json:"error"`
		} `json:"results"`
	}
	decode(t, rec, &out)
	if out.Epoch == 0 {
		t.Fatal("consistent batch response reports no epoch")
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	for i, r := range out.Results {
		if r.Error != "" {
			t.Fatalf("query %d failed: %s", i, r.Error)
		}
		if r.Epoch != out.Epoch {
			t.Errorf("query %d ran on epoch %d, batch pinned %d", i, r.Epoch, out.Epoch)
		}
		if len(r.Hits) == 0 {
			t.Errorf("query %d returned no hits", i)
		}
	}

	rec = do(t, mux, http.MethodPost, "/api/v1/search", map[string]any{
		"queries": []map[string]any{{"dsl": "tag left-of anchor", "consistent": true}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("per-query consistent accepted: %d", rec.Code)
	}
}

// TestV1ConsistentCursorKeepsPin pins the precedence rule: a cursor's
// own epoch pin beats the consistent flag's fresh pin, so a paginated
// walk continued with consistent:true still reads the version its
// first page ran on.
func TestV1ConsistentCursorKeepsPin(t *testing.T) {
	mux, db := spatialMux(t, 24)
	img, _ := db.Get("img000")

	rec := do(t, mux, http.MethodPost, "/api/v1/search",
		map[string]any{"image": img.Image, "k": 5, "consistent": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("page 1: %d (%s)", rec.Code, rec.Body.String())
	}
	var p1 struct {
		Epoch      uint64 `json:"epoch"`
		NextCursor string `json:"nextCursor"`
	}
	decode(t, rec, &p1)
	if p1.NextCursor == "" {
		t.Fatal("page 1 has no cursor")
	}

	// Advance the store between pages.
	if err := db.Insert("between-pages", "", img.Image); err != nil {
		t.Fatal(err)
	}

	rec = do(t, mux, http.MethodPost, "/api/v1/search",
		map[string]any{"image": img.Image, "k": 5, "consistent": true, "cursor": p1.NextCursor})
	if rec.Code != http.StatusOK {
		t.Fatalf("page 2: %d (%s)", rec.Code, rec.Body.String())
	}
	var p2 struct {
		Epoch uint64 `json:"epoch"`
	}
	decode(t, rec, &p2)
	if p2.Epoch != p1.Epoch {
		t.Fatalf("page 2 ran on epoch %d, want the cursor's pin %d", p2.Epoch, p1.Epoch)
	}
}

// TestV1SingleQueryEpoch pins that every v1 response identifies the
// version it read, consistent or not.
func TestV1SingleQueryEpoch(t *testing.T) {
	mux, _ := spatialMux(t, 12)
	rec := do(t, mux, http.MethodPost, "/api/v1/search",
		map[string]any{"dsl": "tag left-of anchor", "k": 3, "consistent": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body.String())
	}
	var out struct {
		Epoch uint64 `json:"epoch"`
	}
	decode(t, rec, &out)
	if out.Epoch == 0 {
		t.Fatal("single consistent query reports no epoch")
	}
}
