package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bestring"
)

// sceneBody is a small valid image payload for search requests.
var sceneBody = map[string]any{
	"xmax": 6, "ymax": 6,
	"objects": []map[string]any{
		{"label": "A", "box": map[string]int{"x0": 0, "y0": 0, "x1": 2, "y1": 2}},
		{"label": "B", "box": map[string]int{"x0": 3, "y0": 3, "x1": 5, "y1": 5}},
	},
}

// GET /metrics on a durable server must expose the engine end to end:
// query stage histograms, WAL timings, commit counters and the HTTP
// instruments — in one parseable text exposition.
func TestMetricsEndpoint(t *testing.T) {
	s, err := bestring.OpenStore(t.TempDir(), bestring.StoreOptions{Fsync: bestring.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := bestring.NewMetricsRegistry()
	s.EnableMetrics(reg)
	mux := newServerMux(muxConfig{engine: s, metrics: reg})

	rec := do(t, mux, http.MethodPost, "/api/images", map[string]any{"id": "m1", "image": sceneBody})
	if rec.Code != http.StatusCreated {
		t.Fatalf("insert: %d (%s)", rec.Code, rec.Body.String())
	}
	rec = do(t, mux, http.MethodPost, "/api/v1/search", map[string]any{"image": sceneBody, "k": 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d (%s)", rec.Code, rec.Body.String())
	}

	rec = do(t, mux, http.MethodGet, "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"# TYPE bestring_query_stage_seconds histogram",
		`bestring_query_stage_seconds_count{stage="rank"} 1`,
		"bestring_query_total 1",
		"# TYPE bestring_wal_fsync_seconds histogram",
		"bestring_commit_mutations_total 1",
		`bestring_store_lsn{kind="visible"} 1`,
		`bestring_http_requests_total{code="201",route="/api/images"} 1`,
		`bestring_http_requests_total{code="200",route="/api/search"} 1`,
		"# TYPE bestring_http_request_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Exposition hygiene: one TYPE line per family, no duplicate series.
	types := map[string]int{}
	series := map[string]int{}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types[strings.Fields(line)[2]]++
		} else if line != "" && !strings.HasPrefix(line, "#") {
			series[strings.Fields(line)[0]]++
		}
	}
	for fam, n := range types {
		if n != 1 {
			t.Errorf("family %s has %d TYPE lines", fam, n)
		}
	}
	for key, n := range series {
		if n != 1 {
			t.Errorf("series %s appears %d times", key, n)
		}
	}
}

// Without a registry the mux must not serve /metrics.
func TestMetricsAbsentWithoutRegistry(t *testing.T) {
	if rec := do(t, testMux(t), http.MethodGet, "/metrics", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("/metrics without registry: %d, want 404", rec.Code)
	}
}

// Every response carries X-Request-Id: minted when the client sent
// none (or junk), echoed verbatim when the client sent a valid one.
func TestRequestIDEcho(t *testing.T) {
	mux := testMux(t)

	rec := do(t, mux, http.MethodGet, "/healthz", nil)
	if id := rec.Header().Get(requestIDHeader); !bestring.ValidRequestID(id) {
		t.Fatalf("minted id %q not valid", id)
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(requestIDHeader, "client-id.42")
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if got := rr.Header().Get(requestIDHeader); got != "client-id.42" {
		t.Fatalf("valid client id not echoed: %q", got)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(requestIDHeader, "bad id with spaces\n")
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if got := rr.Header().Get(requestIDHeader); !bestring.ValidRequestID(got) || strings.Contains(got, " ") {
		t.Fatalf("invalid client id not replaced: %q", got)
	}
}

// The slow-query log must record searches at or above the threshold as
// one JSON line each, carrying the trace id and the stage timings.
func TestSlowQueryLog(t *testing.T) {
	db, err := openDB("", 50, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	mux := newServerMux(muxConfig{
		engine:  db,
		slowLog: bestring.NewSlowQueryLog(&logBuf, time.Nanosecond), // everything is slow
	})

	req := httptest.NewRequest(http.MethodPost, "/api/v1/search", bytes.NewReader(mustJSON(t,
		map[string]any{"image": sceneBody, "k": 3, "dsl": "A left-of B"})))
	req.Header.Set(requestIDHeader, "slow-test-1")
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("search: %d (%s)", rr.Code, rr.Body.String())
	}

	line := strings.TrimSpace(logBuf.String())
	if line == "" {
		t.Fatal("no slow-query line written")
	}
	var entry struct {
		TS         string  `json:"ts"`
		TraceID    string  `json:"traceId"`
		Route      string  `json:"route"`
		DurationMS float64 `json:"durationMs"`
		Query      struct {
			K       int    `json:"k"`
			DSL     string `json:"dsl"`
			Objects int    `json:"objects"`
		} `json:"query"`
		Stages struct {
			Evaluated  int   `json:"evaluated"`
			TotalNanos int64 `json:"totalNs"`
		} `json:"stages"`
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("slow-query line is not JSON: %v (%q)", err, line)
	}
	if entry.TS == "" || entry.TraceID != "slow-test-1" || entry.Route != "/api/v1/search" {
		t.Fatalf("entry header = %+v", entry)
	}
	if entry.DurationMS <= 0 || entry.Query.K != 3 || entry.Query.DSL != "A left-of B" || entry.Query.Objects != 2 {
		t.Fatalf("entry shape = %+v", entry)
	}
	if entry.Stages.TotalNanos <= 0 {
		t.Fatalf("entry stages = %+v", entry.Stages)
	}
	found := false
	for _, sp := range entry.Spans {
		if sp.Name == "stage.rank" {
			found = true
		}
	}
	if !found {
		t.Fatalf("entry spans missing stage.rank: %+v", entry.Spans)
	}

	// A fast threshold server logs nothing.
	logBuf.Reset()
	quiet := newServerMux(muxConfig{engine: db,
		slowLog: bestring.NewSlowQueryLog(&logBuf, time.Hour)})
	if rec := do(t, quiet, http.MethodPost, "/api/v1/search",
		map[string]any{"image": sceneBody, "k": 3}); rec.Code != http.StatusOK {
		t.Fatalf("search: %d", rec.Code)
	}
	if logBuf.Len() != 0 {
		t.Fatalf("fast query logged: %q", logBuf.String())
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// A write posted to the follower with a request id must land on the
// primary — through the 307 redirect — still carrying the same id, so
// both servers log the same trace.
func TestRequestIDPropagatesThroughRedirect(t *testing.T) {
	ps, err := bestring.OpenStore(t.TempDir(), bestring.StoreOptions{Fsync: bestring.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	primary := bestring.NewReplicationPrimary(ps, 50*time.Millisecond)
	preg := bestring.NewMetricsRegistry()
	ps.EnableMetrics(preg)
	primary.EnableMetrics(preg)
	primarySrv := httptest.NewServer(newServerMux(muxConfig{
		engine: ps, primary: primary, metrics: preg}))
	defer primarySrv.Close()

	fstore, err := bestring.OpenStore(t.TempDir(), bestring.StoreOptions{
		Fsync: bestring.FsyncAlways, Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fstore.Close()
	follower, err := bestring.NewReplicationFollower(fstore, primarySrv.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	freg := bestring.NewMetricsRegistry()
	fstore.EnableMetrics(freg)
	follower.EnableMetrics(freg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go follower.Run(ctx)
	followerSrv := httptest.NewServer(newServerMux(muxConfig{
		engine: fstore, follower: follower, primaryURL: primarySrv.URL, metrics: freg}))
	defer followerSrv.Close()

	// POST the write to the FOLLOWER with an explicit request id. The
	// default client follows the 307 (method and headers preserved), so
	// the response comes from the primary — and must echo our id.
	body := mustJSON(t, map[string]any{"id": "via-follower", "image": sceneBody})
	req, err := http.NewRequest(http.MethodPost, followerSrv.URL+"/api/images", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(requestIDHeader, "xwrite-7f3a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("redirected write: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(requestIDHeader); got != "xwrite-7f3a" {
		t.Fatalf("primary echoed id %q, want the one sent to the follower", got)
	}
	if !ps.Has("via-follower") {
		t.Fatal("write did not land on the primary")
	}

	// Wait for the follower to replay the write, then scrape both roles:
	// each must expose the replication lag family.
	deadline := time.Now().Add(5 * time.Second)
	for fstore.AppliedLSN() < ps.AppliedLSN() {
		if time.Now().After(deadline) {
			t.Fatal("follower never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, srv := range []*httptest.Server{primarySrv, followerSrv} {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		data := new(bytes.Buffer)
		if _, err := data.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !strings.Contains(data.String(), "bestring_repl_follower_lag_lsn") {
			t.Fatalf("%s lacks bestring_repl_follower_lag_lsn:\n%s", srv.URL, data.String())
		}
	}
}
