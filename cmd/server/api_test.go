package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"bestring"
)

func testMux(t *testing.T) http.Handler {
	t.Helper()
	db, err := openDB("", 10, 3, 0)
	if err != nil {
		t.Fatalf("openDB: %v", err)
	}
	return newMux(db)
}

func do(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encode body: %v", err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decode(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.NewDecoder(rec.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v (body %q)", err, rec.Body.String())
	}
}

func TestHealth(t *testing.T) {
	rec := do(t, testMux(t), http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		OK     bool `json:"ok"`
		Images int  `json:"images"`
	}
	decode(t, rec, &out)
	if !out.OK || out.Images != 10 {
		t.Errorf("health = %+v", out)
	}
}

func TestImageCRUD(t *testing.T) {
	mux := testMux(t)
	img := bestring.Figure1Image()

	rec := do(t, mux, http.MethodPost, "/api/images", map[string]any{
		"id": "fig1", "name": "figure one", "image": img,
	})
	if rec.Code != http.StatusCreated {
		t.Fatalf("insert status = %d: %s", rec.Code, rec.Body.String())
	}
	// Duplicate -> 409.
	rec = do(t, mux, http.MethodPost, "/api/images", map[string]any{
		"id": "fig1", "image": img,
	})
	if rec.Code != http.StatusConflict {
		t.Errorf("duplicate status = %d", rec.Code)
	}
	// Fetch.
	rec = do(t, mux, http.MethodGet, "/api/images/fig1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get status = %d", rec.Code)
	}
	var entry bestring.Entry
	decode(t, rec, &entry)
	if entry.Name != "figure one" || !entry.BE.Equal(bestring.Figure1BEString()) {
		t.Errorf("entry = %+v", entry)
	}
	// List contains it.
	rec = do(t, mux, http.MethodGet, "/api/images", nil)
	var list struct {
		IDs []string `json:"ids"`
	}
	decode(t, rec, &list)
	if len(list.IDs) != 11 {
		t.Errorf("ids = %d, want 11", len(list.IDs))
	}
	// Delete.
	rec = do(t, mux, http.MethodDelete, "/api/images/fig1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete status = %d", rec.Code)
	}
	if rec := do(t, mux, http.MethodGet, "/api/images/fig1", nil); rec.Code != http.StatusNotFound {
		t.Errorf("get after delete = %d", rec.Code)
	}
	if rec := do(t, mux, http.MethodDelete, "/api/images/fig1", nil); rec.Code != http.StatusNotFound {
		t.Errorf("double delete = %d", rec.Code)
	}
}

func TestInsertErrors(t *testing.T) {
	mux := testMux(t)
	rec := do(t, mux, http.MethodPost, "/api/images", map[string]any{
		"id": "bad", "image": bestring.NewImage(5, 5),
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("invalid image status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/images", bytes.NewBufferString("{"))
	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("malformed json status = %d", rec2.Code)
	}
}

func TestSearchEndpoint(t *testing.T) {
	db, err := openDB("", 15, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	mux := newMux(db)
	// Use a stored image as the query: it must rank first at score 1.
	entry, ok := db.Get("scene0006")
	if !ok {
		t.Fatal("scene0006 missing")
	}
	for _, method := range []string{"be", "invariant", "type2"} {
		rec := do(t, mux, http.MethodPost, "/api/search", map[string]any{
			"image": entry.Image, "k": 3, "method": method,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("method %s: status = %d: %s", method, rec.Code, rec.Body.String())
		}
		var out struct {
			Results []bestring.Result `json:"results"`
		}
		decode(t, rec, &out)
		if len(out.Results) != 3 || out.Results[0].ID != "scene0006" || out.Results[0].Score != 1 {
			t.Errorf("method %s: results = %+v", method, out.Results)
		}
	}
	// Unknown method.
	rec := do(t, mux, http.MethodPost, "/api/search", map[string]any{
		"image": entry.Image, "method": "cosine",
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown method status = %d", rec.Code)
	}
}

func TestSearchDSLEndpoint(t *testing.T) {
	db, err := openDB("", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	beach := bestring.NewImage(20, 20,
		bestring.Object{Label: "sun", Box: bestring.NewRect(14, 14, 18, 18)},
		bestring.Object{Label: "sea", Box: bestring.NewRect(0, 0, 20, 6)},
	)
	if err := db.Insert("beach", "", beach); err != nil {
		t.Fatal(err)
	}
	mux := newMux(db)
	rec := do(t, mux, http.MethodGet, "/api/search/dsl?q=sun+above+sea&k=5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Results []bestring.QueryResult `json:"results"`
	}
	decode(t, rec, &out)
	if len(out.Results) != 1 || out.Results[0].ID != "beach" || !out.Results[0].Full {
		t.Errorf("results = %+v", out.Results)
	}
	if rec := do(t, mux, http.MethodGet, "/api/search/dsl?q=bogus", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad query status = %d", rec.Code)
	}
	if rec := do(t, mux, http.MethodGet, "/api/search/dsl?q=sun+above+sea&k=-1", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad k status = %d", rec.Code)
	}
}

func TestRegionEndpoint(t *testing.T) {
	db, err := openDB("", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("fig1", "", bestring.Figure1Image()); err != nil {
		t.Fatal(err)
	}
	mux := newMux(db)
	rec := do(t, mux, http.MethodGet, "/api/region?x0=0&y0=0&x1=6&y1=6", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		Hits []bestring.RegionHit `json:"hits"`
	}
	decode(t, rec, &out)
	if len(out.Hits) != 3 {
		t.Errorf("hits = %+v, want 3 icons", out.Hits)
	}
	rec = do(t, mux, http.MethodGet, "/api/region?x0=0&y0=0&x1=6&y1=6&label=C", nil)
	decode(t, rec, &out)
	if len(out.Hits) != 1 || out.Hits[0].Label != "C" {
		t.Errorf("label-filtered hits = %+v", out.Hits)
	}
	if rec := do(t, mux, http.MethodGet, "/api/region?x0=0", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("missing coords status = %d", rec.Code)
	}
	if rec := do(t, mux, http.MethodGet, "/api/region?x0=a&y0=0&x1=6&y1=6", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad coord status = %d", rec.Code)
	}
}

func TestOpenDBVariants(t *testing.T) {
	db, err := openDB("", 0, 0, 0)
	if err != nil || db.Len() != 0 {
		t.Errorf("empty openDB: %v, len %d", err, db.Len())
	}
	// dbfile round trip.
	path := t.TempDir() + "/db.json"
	gen := bestring.NewSceneGenerator(bestring.SceneConfig{Seed: 4})
	src := bestring.NewDB()
	for i := 0; i < 3; i++ {
		if err := src.Insert(fmt.Sprintf("s%d", i), "", gen.Scene()); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := openDB(path, 0, 0, 0)
	if err != nil || loaded.Len() != 3 {
		t.Errorf("openDB(dbfile): %v, len %d", err, loaded.Len())
	}
	if _, err := openDB(path+".missing", 0, 0, 0); err == nil {
		t.Error("missing dbfile accepted")
	}
}

func TestSearchEndpointEngineKnobs(t *testing.T) {
	db, err := openDB("", 15, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	mux := newMux(db)
	entry, ok := db.Get("scene0006")
	if !ok {
		t.Fatal("scene0006 missing")
	}
	// A high minScore keeps only the exact match.
	rec := do(t, mux, http.MethodPost, "/api/search", map[string]any{
		"image": entry.Image, "k": 10, "minScore": 0.999,
		"parallelism": 2, "labelPrefilter": true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Results []bestring.Result `json:"results"`
	}
	decode(t, rec, &out)
	if len(out.Results) != 1 || out.Results[0].ID != "scene0006" || out.Results[0].Score != 1 {
		t.Errorf("minScore results = %+v, want only scene0006 @ 1.0", out.Results)
	}
	// Negative parallelism is rejected.
	rec = do(t, mux, http.MethodPost, "/api/search", map[string]any{
		"image": entry.Image, "parallelism": -1,
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("negative parallelism status = %d", rec.Code)
	}
}

func TestHealthReportsShards(t *testing.T) {
	db, err := openDB("", 4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, newMux(db), http.MethodGet, "/healthz", nil)
	var out struct {
		OK     bool `json:"ok"`
		Images int  `json:"images"`
		Shards int  `json:"shards"`
	}
	decode(t, rec, &out)
	if !out.OK || out.Images != 4 || out.Shards != 3 {
		t.Errorf("health = %+v, want 4 images over 3 shards", out)
	}
}
