package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"bestring"
)

func testMux(t *testing.T) http.Handler {
	t.Helper()
	db, err := openDB("", 10, 3, 0)
	if err != nil {
		t.Fatalf("openDB: %v", err)
	}
	return newMux(db)
}

func do(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encode body: %v", err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decode(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.NewDecoder(rec.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v (body %q)", err, rec.Body.String())
	}
}

func TestHealth(t *testing.T) {
	rec := do(t, testMux(t), http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		OK     bool `json:"ok"`
		Images int  `json:"images"`
	}
	decode(t, rec, &out)
	if !out.OK || out.Images != 10 {
		t.Errorf("health = %+v", out)
	}
}

func TestImageCRUD(t *testing.T) {
	mux := testMux(t)
	img := bestring.Figure1Image()

	rec := do(t, mux, http.MethodPost, "/api/images", map[string]any{
		"id": "fig1", "name": "figure one", "image": img,
	})
	if rec.Code != http.StatusCreated {
		t.Fatalf("insert status = %d: %s", rec.Code, rec.Body.String())
	}
	// Duplicate -> 409.
	rec = do(t, mux, http.MethodPost, "/api/images", map[string]any{
		"id": "fig1", "image": img,
	})
	if rec.Code != http.StatusConflict {
		t.Errorf("duplicate status = %d", rec.Code)
	}
	// Fetch.
	rec = do(t, mux, http.MethodGet, "/api/images/fig1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get status = %d", rec.Code)
	}
	var entry bestring.Entry
	decode(t, rec, &entry)
	if entry.Name != "figure one" || !entry.BE.Equal(bestring.Figure1BEString()) {
		t.Errorf("entry = %+v", entry)
	}
	// List contains it.
	rec = do(t, mux, http.MethodGet, "/api/images", nil)
	var list struct {
		IDs []string `json:"ids"`
	}
	decode(t, rec, &list)
	if len(list.IDs) != 11 {
		t.Errorf("ids = %d, want 11", len(list.IDs))
	}
	// Delete.
	rec = do(t, mux, http.MethodDelete, "/api/images/fig1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete status = %d", rec.Code)
	}
	if rec := do(t, mux, http.MethodGet, "/api/images/fig1", nil); rec.Code != http.StatusNotFound {
		t.Errorf("get after delete = %d", rec.Code)
	}
	if rec := do(t, mux, http.MethodDelete, "/api/images/fig1", nil); rec.Code != http.StatusNotFound {
		t.Errorf("double delete = %d", rec.Code)
	}
}

func TestInsertErrors(t *testing.T) {
	mux := testMux(t)
	rec := do(t, mux, http.MethodPost, "/api/images", map[string]any{
		"id": "bad", "image": bestring.NewImage(5, 5),
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("invalid image status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/images", bytes.NewBufferString("{"))
	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("malformed json status = %d", rec2.Code)
	}
}

func TestSearchEndpoint(t *testing.T) {
	db, err := openDB("", 15, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	mux := newMux(db)
	// Use a stored image as the query: it must rank first at score 1.
	entry, ok := db.Get("scene0006")
	if !ok {
		t.Fatal("scene0006 missing")
	}
	for _, method := range []string{"be", "invariant", "type2"} {
		rec := do(t, mux, http.MethodPost, "/api/search", map[string]any{
			"image": entry.Image, "k": 3, "method": method,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("method %s: status = %d: %s", method, rec.Code, rec.Body.String())
		}
		var out struct {
			Results []bestring.Result `json:"results"`
		}
		decode(t, rec, &out)
		if len(out.Results) != 3 || out.Results[0].ID != "scene0006" || out.Results[0].Score != 1 {
			t.Errorf("method %s: results = %+v", method, out.Results)
		}
	}
	// Unknown method.
	rec := do(t, mux, http.MethodPost, "/api/search", map[string]any{
		"image": entry.Image, "method": "cosine",
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown method status = %d", rec.Code)
	}
}

func TestSearchDSLEndpoint(t *testing.T) {
	db, err := openDB("", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	beach := bestring.NewImage(20, 20,
		bestring.Object{Label: "sun", Box: bestring.NewRect(14, 14, 18, 18)},
		bestring.Object{Label: "sea", Box: bestring.NewRect(0, 0, 20, 6)},
	)
	if err := db.Insert("beach", "", beach); err != nil {
		t.Fatal(err)
	}
	mux := newMux(db)
	rec := do(t, mux, http.MethodGet, "/api/search/dsl?q=sun+above+sea&k=5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Results []bestring.QueryResult `json:"results"`
	}
	decode(t, rec, &out)
	if len(out.Results) != 1 || out.Results[0].ID != "beach" || !out.Results[0].Full {
		t.Errorf("results = %+v", out.Results)
	}
	if rec := do(t, mux, http.MethodGet, "/api/search/dsl?q=bogus", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad query status = %d", rec.Code)
	}
	if rec := do(t, mux, http.MethodGet, "/api/search/dsl?q=sun+above+sea&k=-1", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad k status = %d", rec.Code)
	}
}

func TestRegionEndpoint(t *testing.T) {
	db, err := openDB("", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("fig1", "", bestring.Figure1Image()); err != nil {
		t.Fatal(err)
	}
	mux := newMux(db)
	rec := do(t, mux, http.MethodGet, "/api/region?x0=0&y0=0&x1=6&y1=6", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		Hits []bestring.RegionHit `json:"hits"`
	}
	decode(t, rec, &out)
	if len(out.Hits) != 3 {
		t.Errorf("hits = %+v, want 3 icons", out.Hits)
	}
	rec = do(t, mux, http.MethodGet, "/api/region?x0=0&y0=0&x1=6&y1=6&label=C", nil)
	decode(t, rec, &out)
	if len(out.Hits) != 1 || out.Hits[0].Label != "C" {
		t.Errorf("label-filtered hits = %+v", out.Hits)
	}
	if rec := do(t, mux, http.MethodGet, "/api/region?x0=0", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("missing coords status = %d", rec.Code)
	}
	if rec := do(t, mux, http.MethodGet, "/api/region?x0=a&y0=0&x1=6&y1=6", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad coord status = %d", rec.Code)
	}
}

func TestOpenDBVariants(t *testing.T) {
	db, err := openDB("", 0, 0, 0)
	if err != nil || db.Len() != 0 {
		t.Errorf("empty openDB: %v, len %d", err, db.Len())
	}
	// dbfile round trip.
	path := t.TempDir() + "/db.json"
	gen := bestring.NewSceneGenerator(bestring.SceneConfig{Seed: 4})
	src := bestring.NewDB()
	for i := 0; i < 3; i++ {
		if err := src.Insert(fmt.Sprintf("s%d", i), "", gen.Scene()); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := openDB(path, 0, 0, 0)
	if err != nil || loaded.Len() != 3 {
		t.Errorf("openDB(dbfile): %v, len %d", err, loaded.Len())
	}
	if _, err := openDB(path+".missing", 0, 0, 0); err == nil {
		t.Error("missing dbfile accepted")
	}
}

func TestSearchEndpointEngineKnobs(t *testing.T) {
	db, err := openDB("", 15, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	mux := newMux(db)
	entry, ok := db.Get("scene0006")
	if !ok {
		t.Fatal("scene0006 missing")
	}
	// A high minScore keeps only the exact match.
	rec := do(t, mux, http.MethodPost, "/api/search", map[string]any{
		"image": entry.Image, "k": 10, "minScore": 0.999,
		"parallelism": 2, "labelPrefilter": true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Results []bestring.Result `json:"results"`
	}
	decode(t, rec, &out)
	if len(out.Results) != 1 || out.Results[0].ID != "scene0006" || out.Results[0].Score != 1 {
		t.Errorf("minScore results = %+v, want only scene0006 @ 1.0", out.Results)
	}
	// Negative parallelism is rejected.
	rec = do(t, mux, http.MethodPost, "/api/search", map[string]any{
		"image": entry.Image, "parallelism": -1,
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("negative parallelism status = %d", rec.Code)
	}
}

func TestHealthReportsShards(t *testing.T) {
	db, err := openDB("", 4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, newMux(db), http.MethodGet, "/healthz", nil)
	var out struct {
		OK     bool `json:"ok"`
		Images int  `json:"images"`
		Shards int  `json:"shards"`
	}
	decode(t, rec, &out)
	if !out.OK || out.Images != 4 || out.Shards != 3 {
		t.Errorf("health = %+v, want 4 images over 3 shards", out)
	}
}

// spatialMux builds a server over a corpus where the composed filters
// have known selectivity: every third image satisfies "tag left-of
// anchor" and every fourth has a "probe" icon inside (48,48)-(60,60).
func spatialMux(t *testing.T, n int) (http.Handler, *bestring.DB) {
	t.Helper()
	db := bestring.NewDB()
	gen := bestring.NewSceneGenerator(bestring.SceneConfig{Seed: 9, Vocabulary: 12})
	for i := 0; i < n; i++ {
		img := gen.Scene()
		if i%3 == 0 {
			img = img.WithObject(bestring.Object{Label: "tag", Box: bestring.NewRect(1, 1, 3, 3)}).
				WithObject(bestring.Object{Label: "anchor", Box: bestring.NewRect(10, 1, 12, 3)})
		}
		if i%4 == 0 {
			img = img.WithObject(bestring.Object{Label: "probe", Box: bestring.NewRect(50, 50, 55, 55)})
		}
		if err := db.Insert(fmt.Sprintf("img%03d", i), "", img); err != nil {
			t.Fatal(err)
		}
	}
	return newMux(db), db
}

type v1Response struct {
	Hits       []bestring.QueryHit `json:"hits"`
	Total      int                 `json:"total"`
	NextCursor string              `json:"nextCursor"`
	Error      string              `json:"error"`
	Status     int                 `json:"status"`
}

// TestSearchNegativeK pins the v0 satellite fix: a negative K used to
// silently mean "all results"; it is now a 400.
func TestSearchNegativeK(t *testing.T) {
	db, err := openDB("", 5, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := db.Get("scene0001")
	rec := do(t, newMux(db), http.MethodPost, "/api/search", map[string]any{
		"image": entry.Image, "k": -1,
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("negative k status = %d, want 400", rec.Code)
	}
}

// TestV1SearchCombined is the acceptance scenario: image + DSL + region
// in one request returns correctly ranked, paginated results.
func TestV1SearchCombined(t *testing.T) {
	mux, db := spatialMux(t, 48)
	entry, ok := db.Get("img012") // satisfies the DSL and the region
	if !ok {
		t.Fatal("img012 missing")
	}
	region := bestring.NewRect(48, 48, 60, 60)
	base := map[string]any{
		"image": entry.Image, "dsl": "tag left-of anchor",
		"region": region, "regionLabel": "probe",
	}

	rec := do(t, mux, http.MethodPost, "/api/v1/search", base)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var full v1Response
	decode(t, rec, &full)
	// Images at i%12 == 0 satisfy both filters: 48/12 = 4 candidates.
	if full.Total != 4 || len(full.Hits) != 4 {
		t.Fatalf("combined total = %d, hits = %d, want 4", full.Total, len(full.Hits))
	}
	if full.Hits[0].ID != "img012" || full.Hits[0].Score != 1 || !full.Hits[0].Full {
		t.Fatalf("top hit = %+v, want img012 @ 1.0 full", full.Hits[0])
	}
	for i := 1; i < len(full.Hits); i++ {
		prev, cur := full.Hits[i-1], full.Hits[i]
		if cur.Score > prev.Score || (cur.Score == prev.Score && cur.ID < prev.ID) {
			t.Fatalf("hits out of rank order: %+v before %+v", prev, cur)
		}
	}

	// Page through the same query with k=3: the concatenation must
	// reproduce the one-shot ranking with no duplicates.
	var walked []bestring.QueryHit
	cursor := ""
	for {
		req := map[string]any{}
		for k, v := range base {
			req[k] = v
		}
		req["k"] = 3
		if cursor != "" {
			req["cursor"] = cursor
		}
		rec := do(t, mux, http.MethodPost, "/api/v1/search", req)
		if rec.Code != http.StatusOK {
			t.Fatalf("page status = %d: %s", rec.Code, rec.Body.String())
		}
		var page v1Response
		decode(t, rec, &page)
		walked = append(walked, page.Hits...)
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(walked) != len(full.Hits) {
		t.Fatalf("walked %d hits, want %d", len(walked), len(full.Hits))
	}
	for i := range walked {
		if walked[i] != full.Hits[i] {
			t.Fatalf("walked[%d] = %+v, want %+v", i, walked[i], full.Hits[i])
		}
	}
}

// TestV1SearchModes covers the non-combined single-query modes: DSL
// only (ranked by satisfied fraction) and region only (id order).
func TestV1SearchModes(t *testing.T) {
	mux, _ := spatialMux(t, 24)
	rec := do(t, mux, http.MethodPost, "/api/v1/search", map[string]any{
		"dsl": "tag left-of anchor",
	})
	var out v1Response
	decode(t, rec, &out)
	if rec.Code != http.StatusOK || out.Total != 8 { // every third of 24
		t.Fatalf("dsl-only status %d total %d, want 200/8: %s", rec.Code, out.Total, rec.Body.String())
	}
	for _, h := range out.Hits {
		if h.Score != 1 || !h.Full || h.Where != 1 {
			t.Fatalf("dsl-only hit = %+v", h)
		}
	}

	rec = do(t, mux, http.MethodPost, "/api/v1/search", map[string]any{
		"region": bestring.NewRect(48, 48, 60, 60), "regionLabel": "probe",
	})
	decode(t, rec, &out)
	if rec.Code != http.StatusOK || out.Total != 6 { // every fourth of 24
		t.Fatalf("region-only status %d total %d, want 200/6: %s", rec.Code, out.Total, rec.Body.String())
	}
	for i := 1; i < len(out.Hits); i++ {
		if out.Hits[i-1].ID >= out.Hits[i].ID {
			t.Fatalf("region-only hits not in id order: %+v", out.Hits)
		}
	}
}

// TestV1Batch checks a batch runs every sub-query and isolates per-query
// failures.
func TestV1Batch(t *testing.T) {
	mux, db := spatialMux(t, 24)
	entry, _ := db.Get("img000")
	rec := do(t, mux, http.MethodPost, "/api/v1/search", map[string]any{
		"queries": []map[string]any{
			{"image": entry.Image, "k": 2},
			{"dsl": "tag left-of anchor", "k": 3},
			{"scorer": "no-such-scorer", "dsl": "tag left-of anchor"},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Results []v1Response `json:"results"`
	}
	decode(t, rec, &out)
	if len(out.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(out.Results))
	}
	if len(out.Results[0].Hits) != 2 || out.Results[0].Hits[0].ID != "img000" {
		t.Errorf("batch[0] = %+v", out.Results[0])
	}
	if len(out.Results[1].Hits) != 3 || out.Results[1].Error != "" {
		t.Errorf("batch[1] = %+v", out.Results[1])
	}
	if out.Results[2].Error == "" || out.Results[2].Status != http.StatusBadRequest {
		t.Errorf("batch[2] = %+v, want per-query 400 error", out.Results[2])
	}
}

// TestV1StatusCodes sweeps the v1 handler's client-error paths.
func TestV1StatusCodes(t *testing.T) {
	mux, db := spatialMux(t, 6)
	entry, _ := db.Get("img000")
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"empty spec", map[string]any{}, http.StatusBadRequest},
		{"unknown scorer", map[string]any{"image": entry.Image, "scorer": "cosine"}, http.StatusBadRequest},
		{"negative k", map[string]any{"image": entry.Image, "k": -2}, http.StatusBadRequest},
		{"negative offset", map[string]any{"image": entry.Image, "offset": -1}, http.StatusBadRequest},
		{"bad cursor", map[string]any{"image": entry.Image, "cursor": "???"}, http.StatusBadRequest},
		{"bad dsl", map[string]any{"dsl": "tag sideways anchor"}, http.StatusBadRequest},
		{"bad wheremin", map[string]any{"dsl": "tag left-of anchor", "whereMin": 7}, http.StatusBadRequest},
		{"v0 field name", map[string]any{"image": entry.Image, "method": "invariant"}, http.StatusBadRequest},
		{"regionLabel without region", map[string]any{"image": entry.Image, "regionLabel": "probe"}, http.StatusBadRequest},
		{"batch plus top-level", map[string]any{
			"dsl": "tag left-of anchor", "queries": []map[string]any{{"dsl": "tag left-of anchor"}},
		}, http.StatusBadRequest},
		{"nested batch", map[string]any{
			"queries": []map[string]any{{"queries": []map[string]any{{"dsl": "x left-of y"}}}},
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if rec := do(t, mux, http.MethodPost, "/api/v1/search", tc.body); rec.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
	}
	// Malformed JSON.
	req := httptest.NewRequest(http.MethodPost, "/api/v1/search", bytes.NewBufferString("{"))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed json status = %d", rec.Code)
	}
}

// TestBodyLimit pins the MaxBytesReader satellite: oversized JSON bodies
// are rejected with 413, on the insert route and both search routes.
func TestBodyLimit(t *testing.T) {
	mux, _ := spatialMux(t, 1)
	huge := bytes.Repeat([]byte("x"), maxBodyBytes+1024)
	for _, path := range []string{"/api/images", "/api/search", "/api/v1/search"} {
		body, _ := json.Marshal(map[string]any{"name": string(huge)})
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body status = %d, want 413", path, rec.Code)
		}
	}
}

// TestDSLCancellationStatus pins the error-class satellite: a request
// whose context is already cancelled surfaces as a client-side 499, not
// a 500.
func TestDSLCancellationStatus(t *testing.T) {
	mux, _ := spatialMux(t, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/api/search/dsl?q=tag+left-of+anchor", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Errorf("cancelled dsl status = %d, want %d (%s)", rec.Code, statusClientClosedRequest, rec.Body.String())
	}

	body, _ := json.Marshal(map[string]any{"dsl": "tag left-of anchor"})
	req = httptest.NewRequest(http.MethodPost, "/api/v1/search", bytes.NewReader(body)).WithContext(ctx)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Errorf("cancelled v1 status = %d, want %d (%s)", rec.Code, statusClientClosedRequest, rec.Body.String())
	}
}

// TestV1Aliases checks the resource routes answer under /api/v1 too.
func TestV1Aliases(t *testing.T) {
	mux, _ := spatialMux(t, 8)
	if rec := do(t, mux, http.MethodGet, "/api/v1/images", nil); rec.Code != http.StatusOK {
		t.Errorf("v1 images status = %d", rec.Code)
	}
	if rec := do(t, mux, http.MethodGet, "/api/v1/images/img000", nil); rec.Code != http.StatusOK {
		t.Errorf("v1 image get status = %d", rec.Code)
	}
	if rec := do(t, mux, http.MethodGet, "/api/v1/search/dsl?q=tag+left-of+anchor", nil); rec.Code != http.StatusOK {
		t.Errorf("v1 dsl status = %d", rec.Code)
	}
	if rec := do(t, mux, http.MethodGet, "/api/v1/region?x0=48&y0=48&x1=60&y1=60", nil); rec.Code != http.StatusOK {
		t.Errorf("v1 region status = %d", rec.Code)
	}
}

// TestStoreBackedAPI runs the same mux over a durable store: mutations
// travel through the WAL, /healthz exposes the durable stats, and a
// reopened store serves what the API acknowledged.
func TestStoreBackedAPI(t *testing.T) {
	dir := t.TempDir()
	s, err := bestring.OpenStore(dir, bestring.StoreOptions{Fsync: bestring.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mux := newMux(s)
	img := map[string]any{
		"xmax": 6, "ymax": 6,
		"objects": []map[string]any{
			{"label": "A", "box": map[string]int{"x0": 0, "y0": 0, "x1": 2, "y1": 2}},
			{"label": "B", "box": map[string]int{"x0": 3, "y0": 3, "x1": 5, "y1": 5}},
		},
	}
	if rec := do(t, mux, http.MethodPost, "/api/images", map[string]any{"id": "durable1", "image": img}); rec.Code != http.StatusCreated {
		t.Fatalf("insert status = %d (%s)", rec.Code, rec.Body.String())
	}
	// Duplicate still maps to 409 through the store.
	if rec := do(t, mux, http.MethodPost, "/api/images", map[string]any{"id": "durable1", "image": img}); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate status = %d", rec.Code)
	}
	rec := do(t, mux, http.MethodGet, "/healthz", nil)
	var health struct {
		OK      bool `json:"ok"`
		Images  int  `json:"images"`
		Durable bool `json:"durable"`
		WAL     struct {
			Segments int    `json:"segments"`
			LastLSN  uint64 `json:"lastLSN"`
			Fsync    string `json:"fsync"`
		} `json:"wal"`
		Commit struct {
			Enabled   bool   `json:"enabled"`
			Window    string `json:"window"`
			Groups    uint64 `json:"groups"`
			Mutations uint64 `json:"mutations"`
		} `json:"commit"`
	}
	decode(t, rec, &health)
	if !health.OK || !health.Durable || health.Images != 1 ||
		health.WAL.LastLSN != 1 || health.WAL.Fsync != "always" {
		t.Fatalf("health = %+v", health)
	}
	// The group-commit counters are on the operator surface: one accepted
	// insert means one group of one mutation so far.
	if !health.Commit.Enabled || health.Commit.Window == "" ||
		health.Commit.Groups != 1 || health.Commit.Mutations != 1 {
		t.Fatalf("health commit = %+v", health.Commit)
	}
	// The composable query endpoint works over the store.
	if rec := do(t, mux, http.MethodPost, "/api/v1/search", map[string]any{"image": img, "k": 5}); rec.Code != http.StatusOK {
		t.Fatalf("v1 search status = %d (%s)", rec.Code, rec.Body.String())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := bestring.OpenStore(dir, bestring.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec = do(t, newMux(s2), http.MethodGet, "/api/images/durable1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("recovered get status = %d", rec.Code)
	}
}

// TestV1SearchDebugStages pins the pruning-observability surface:
// "debug": true adds the per-stage candidate counts to the response
// (and to every sub-response of a batch), plain requests omit them, and
// /healthz reports the cumulative filter-and-refine counters.
func TestV1SearchDebugStages(t *testing.T) {
	db, err := openDB("", 30, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	mux := newMux(db)
	img := bestring.Figure1Image()

	rec := do(t, mux, http.MethodPost, "/api/v1/search", map[string]any{"image": img, "k": 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body.String())
	}
	var plain struct {
		Stages *bestring.QueryStages `json:"stages"`
	}
	decode(t, rec, &plain)
	if plain.Stages != nil {
		t.Fatalf("plain request leaked stage counts: %+v", plain.Stages)
	}

	rec = do(t, mux, http.MethodPost, "/api/v1/search", map[string]any{"image": img, "k": 5, "debug": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("debug status = %d (%s)", rec.Code, rec.Body.String())
	}
	var dbg struct {
		Hits   []bestring.QueryHit   `json:"hits"`
		Stages *bestring.QueryStages `json:"stages"`
	}
	decode(t, rec, &dbg)
	if dbg.Stages == nil {
		t.Fatalf("debug request returned no stage counts (%s)", rec.Body.String())
	}
	if dbg.Stages.Narrowed != 30 || dbg.Stages.Evaluated+dbg.Stages.Pruned != dbg.Stages.Bounded {
		t.Fatalf("incoherent stage counts %+v", dbg.Stages)
	}

	rec = do(t, mux, http.MethodPost, "/api/v1/search", map[string]any{
		"debug":   true,
		"queries": []map[string]any{{"image": img, "k": 3}, {"image": img, "k": 3, "scorer": "invariant"}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d (%s)", rec.Code, rec.Body.String())
	}
	var batch struct {
		Results []struct {
			Stages *bestring.QueryStages `json:"stages"`
		} `json:"results"`
	}
	decode(t, rec, &batch)
	for i, r := range batch.Results {
		if r.Stages == nil {
			t.Fatalf("batch result %d missing stage counts (%s)", i, rec.Body.String())
		}
	}

	rec = do(t, mux, http.MethodGet, "/healthz", nil)
	var health struct {
		Search bestring.SearchStats `json:"search"`
	}
	decode(t, rec, &health)
	if health.Search.Queries < 4 || health.Search.Evaluated == 0 {
		t.Fatalf("healthz search counters not cumulative: %+v", health.Search)
	}
}
