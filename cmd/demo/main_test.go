package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T) http.Handler {
	t.Helper()
	srv, err := newServer(12, 7, 6, 16)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	return srv
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestIndexListsScenes(t *testing.T) {
	rec := get(t, testServer(t), "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "scene0000") || !strings.Contains(body, "scene0011") {
		t.Error("index missing scene links")
	}
}

func TestImageServesPNG(t *testing.T) {
	srv := testServer(t)
	rec := get(t, srv, "/image/scene0003")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/png" {
		t.Errorf("content type = %q", ct)
	}
	if rec.Body.Len() < 8 || rec.Body.String()[1:4] != "PNG" {
		t.Error("body is not a PNG")
	}
	// .png suffix tolerated.
	if rec := get(t, srv, "/image/scene0003.png"); rec.Code != http.StatusOK {
		t.Errorf(".png suffix: status = %d", rec.Code)
	}
	if rec := get(t, srv, "/image/ghost"); rec.Code != http.StatusNotFound {
		t.Errorf("missing id: status = %d", rec.Code)
	}
}

func TestSearchSelfIsTopResult(t *testing.T) {
	rec := get(t, testServer(t), "/search?id=scene0004&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if !strings.Contains(body, "scene0004") || !strings.Contains(body, "1.0000") {
		t.Error("self search should score 1.0000")
	}
	if !strings.Contains(body, "query 2D BE-string") {
		t.Error("BE-string panel missing")
	}
}

func TestSearchTransformed(t *testing.T) {
	rec := get(t, testServer(t), "/search?id=scene0002&t=rot90&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	// Invariant scorer must still find the original at score 1.
	if !strings.Contains(body, "scene0002") || !strings.Contains(body, "1.0000") {
		t.Error("rotated query should retrieve the original at 1.0000")
	}
}

func TestSearchPartial(t *testing.T) {
	rec := get(t, testServer(t), "/search?id=scene0001&keep=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "first 3 objects") {
		t.Error("partial query banner missing")
	}
}

func TestSearchErrors(t *testing.T) {
	srv := testServer(t)
	if rec := get(t, srv, "/search?id=ghost"); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown id: status = %d", rec.Code)
	}
	if rec := get(t, srv, "/search?id=scene0001&t=rot45"); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown transform: status = %d", rec.Code)
	}
	if rec := get(t, srv, "/search?id=scene0001&keep=zero"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad keep: status = %d", rec.Code)
	}
}
