package main

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"

	"bestring"
)

var indexTmpl = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>2D BE-string retrieval demo</title>
<style>
body { font-family: sans-serif; margin: 2em; }
.grid { display: flex; flex-wrap: wrap; gap: 12px; }
.card { border: 1px solid #ccc; padding: 8px; text-align: center; }
.card img { image-rendering: pixelated; width: 120px; height: 120px; }
code { background: #f4f4f4; padding: 1px 4px; }
</style></head><body>
<h1>2D BE-string similarity retrieval</h1>
<p>Pick an image as the query. Each result links back into a new search.
Append <code>&t=rot90</code> (rot180, rot270, flip-x, flip-y) to search with
a transformed query, or <code>&keep=3</code> to query with only the first
3 objects.</p>
<div class="grid">
{{range .IDs}}<div class="card">
<a href="/search?id={{.}}"><img src="/image/{{.}}" alt="{{.}}"></a>
<div><a href="/search?id={{.}}">{{.}}</a></div>
</div>{{end}}
</div></body></html>`))

var searchTmpl = template.Must(template.New("search").Parse(`<!doctype html>
<html><head><title>results for {{.QueryID}}</title>
<style>
body { font-family: sans-serif; margin: 2em; }
.grid { display: flex; flex-wrap: wrap; gap: 12px; }
.card { border: 1px solid #ccc; padding: 8px; text-align: center; }
.card img { image-rendering: pixelated; width: 120px; height: 120px; }
.query { border-color: #06c; }
pre { background: #f4f4f4; padding: 8px; overflow-x: auto; }
</style></head><body>
<p><a href="/">&larr; all images</a></p>
<h1>query: {{.QueryID}}{{if .Transform}} ({{.Transform}}){{end}}{{if .Keep}} (first {{.Keep}} objects){{end}}</h1>
<div class="card query" style="display:inline-block">
<img src="/image/{{.QueryID}}" alt="query"></div>
<h2>query 2D BE-string</h2>
<pre>x: {{.BEX}}
y: {{.BEY}}</pre>
<h2>top {{len .Results}} results</h2>
<div class="grid">
{{range .Results}}<div class="card">
<a href="/search?id={{.ID}}"><img src="/image/{{.ID}}" alt="{{.ID}}"></a>
<div>{{.ID}}<br>score {{printf "%.4f" .Score}}</div>
</div>{{end}}
</div></body></html>`))

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if err := indexTmpl.Execute(w, struct{ IDs []string }{s.db.IDs()}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleImage(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSuffix(r.PathValue("id"), ".png")
	entry, ok := s.db.Get(id)
	if !ok {
		http.Error(w, "image not found", http.StatusNotFound)
		return
	}
	raster, err := bestring.Render(entry.Image, s.palette)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	if err := bestring.EncodePNG(w, raster); err != nil {
		// Headers already sent; nothing recoverable.
		return
	}
}

// queryFromRequest assembles the query image: a stored image, optionally
// transformed or truncated to its first keep objects.
func (s *server) queryFromRequest(r *http.Request) (bestring.Image, string, string, int, error) {
	id := r.URL.Query().Get("id")
	entry, ok := s.db.Get(id)
	if !ok {
		return bestring.Image{}, "", "", 0, fmt.Errorf("unknown image id %q", id)
	}
	img := entry.Image
	trName := r.URL.Query().Get("t")
	if trName != "" {
		found := false
		for _, tr := range bestring.AllTransforms {
			if tr.String() == trName {
				img = bestring.ApplyToImage(img, tr)
				found = true
				break
			}
		}
		if !found {
			return bestring.Image{}, "", "", 0, fmt.Errorf("unknown transform %q", trName)
		}
	}
	keep := 0
	if k := r.URL.Query().Get("keep"); k != "" {
		v, err := strconv.Atoi(k)
		if err != nil || v < 1 {
			return bestring.Image{}, "", "", 0, fmt.Errorf("bad keep %q", k)
		}
		keep = v
		if keep < len(img.Objects) {
			img = bestring.NewImage(img.XMax, img.YMax, img.Objects[:keep]...)
		}
	}
	return img, id, trName, keep, nil
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	img, id, trName, keep, err := s.queryFromRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	k := 8
	if kq := r.URL.Query().Get("k"); kq != "" {
		if v, err := strconv.Atoi(kq); err == nil && v > 0 && v <= 100 {
			k = v
		}
	}
	// Resolve through the shared scorer registry; a transformed query is
	// the showcase for string-level invariance.
	scorerName := bestring.DefaultScorerName
	if trName != "" {
		scorerName = "invariant"
	}
	scorer, ok := bestring.LookupScorer(scorerName)
	if !ok {
		http.Error(w, fmt.Sprintf("scorer %q not registered", scorerName), http.StatusInternalServerError)
		return
	}
	results, err := s.db.Search(r.Context(), img, bestring.SearchOptions{K: k, Scorer: scorer})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	be, err := bestring.Convert(img)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data := struct {
		QueryID   string
		Transform string
		Keep      int
		BEX, BEY  string
		Results   []bestring.Result
	}{id, trName, keep, be.X.String(), be.Y.String(), results}
	if err := searchTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
