// Command demo is the visualized retrieval system of the paper's section
// 5, rebuilt as an HTTP service: a seeded database of synthetic scenes is
// indexed with 2D BE-strings; the browser picks any stored image (or a
// rotation/reflection of it, or a subset of its objects) as the query, and
// the service returns the ranked retrieval with rendered thumbnails.
//
// Usage:
//
//	demo [-addr :8080] [-count 48] [-seed 7] [-objects 7] [-vocab 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"bestring"
)

func main() {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	count := fs.Int("count", 48, "number of scenes in the demo database")
	seed := fs.Int64("seed", 7, "scene generator seed")
	objects := fs.Int("objects", 7, "objects per scene")
	vocab := fs.Int("vocab", 20, "icon vocabulary size")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	srv, err := newServer(*count, *seed, *objects, *vocab)
	if err != nil {
		log.Fatalf("demo: %v", err)
	}
	log.Printf("demo retrieval system on %s (%d scenes)", *addr, *count)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatalf("demo: %v", err)
	}
}

// newServer builds the demo database and its HTTP handler.
func newServer(count int, seed int64, objects, vocab int) (http.Handler, error) {
	db := bestring.NewDB()
	gen := bestring.NewSceneGenerator(bestring.SceneConfig{
		Seed: seed, Objects: objects, Vocabulary: vocab,
	})
	for i := 0; i < count; i++ {
		id := fmt.Sprintf("scene%04d", i)
		if err := db.Insert(id, fmt.Sprintf("scene %d", i), gen.Scene()); err != nil {
			return nil, fmt.Errorf("seed db: %w", err)
		}
	}
	labels := make([]string, vocab)
	for i := range labels {
		labels[i] = bestring.ClassLabel(i)
	}
	palette, err := bestring.NewPalette(labels)
	if err != nil {
		return nil, fmt.Errorf("palette: %w", err)
	}
	s := &server{db: db, palette: palette}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /image/{id}", s.handleImage)
	mux.HandleFunc("GET /search", s.handleSearch)
	return mux, nil
}

type server struct {
	db      *bestring.DB
	palette *bestring.Palette
}
