package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bestring"
)

func TestImportCommand(t *testing.T) {
	tmp := t.TempDir()
	dir := filepath.Join(tmp, "data")
	file := filepath.Join(tmp, "scenes.ndjson")
	var b strings.Builder
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b,
			`{"id":"cli%03d","image":{"xmax":10,"ymax":10,"objects":[{"label":"L%d","box":{"x0":%d,"y0":0,"x1":%d,"y1":3}}]}}`+"\n",
			i, i%4, i%5, i%5+2)
	}
	if err := os.WriteFile(file, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"import", "-data-dir", dir, "-file", file, "-chunk", "8", "-quiet"}
	if err := run(args); err != nil {
		t.Fatalf("import: %v", err)
	}
	s, err := bestring.OpenStore(dir, bestring.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 30 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-running the same import resumes instead of duplicating.
	if err := run(args); err != nil {
		t.Fatalf("re-import: %v", err)
	}
	s, err = bestring.OpenStore(dir, bestring.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 30 {
		t.Fatalf("Len after re-import = %d", s.Len())
	}

	if err := run([]string{"import", "-data-dir", dir, "-file", file, "-format", "tsv"}); err == nil {
		t.Fatal("bad format accepted")
	}
	if err := run([]string{"import", "-file", file}); err == nil {
		t.Fatal("missing -data-dir accepted")
	}
}
