package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"bestring"
)

// cmdImport streams a scene file into a durable store:
//
//	bestring import -data-dir d -file scenes.ndjson [-format ndjson|csv]
//	                [-chunk N] [-chunk-bytes N] [-parallelism N] [-no-resume]
//
// The file is read incrementally and committed in chunked WAL records,
// so it can be far larger than memory. An interrupted import (Ctrl-C,
// crash, full disk) resumes on re-run: chunks already durable are
// skipped by content key, the rest import normally.
func cmdImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ContinueOnError)
	dataDir, fsyncS, segBytes := storeFlags(fs)
	file := fs.String("file", "-", "scene stream file (- for stdin)")
	format := fs.String("format", "ndjson", "stream format: ndjson or csv")
	chunk := fs.Int("chunk", 0, "scenes per import chunk (0 = default)")
	chunkBytes := fs.Int64("chunk-bytes", 0, "soft encoded-byte budget per chunk (0 = default)")
	parallelism := fs.Int("parallelism", 0, "conversion workers (0 = GOMAXPROCS)")
	noResume := fs.Bool("no-resume", false, "import every chunk unconditionally (id collisions fail)")
	quiet := fs.Bool("quiet", false, "suppress the progress line")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var src bestring.SceneReader
	switch *format {
	case "ndjson":
		src = bestring.NDJSONScenes(in)
	case "csv":
		src = bestring.CSVScenes(in)
	default:
		return fmt.Errorf("import: unknown format %q (want ndjson or csv)", *format)
	}

	s, err := openStoreFlags(*dataDir, *fsyncS, *segBytes)
	if err != nil {
		return err
	}
	defer s.Close()

	// Ctrl-C cancels the stream cleanly: committed chunks stay durable
	// and the next run resumes after them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	opts := bestring.ImportOptions{
		ChunkScenes: *chunk, ChunkBytes: *chunkBytes,
		Parallelism: *parallelism, NoResume: *noResume,
	}
	if !*quiet {
		// One carriage-returned progress line per committed chunk: cheap
		// enough at the default chunk size to never throttle the pipeline.
		opts.Progress = func(st bestring.ImportStats) {
			fmt.Fprintf(os.Stderr, "\rimported %d images in %d chunks (%d chunks resumed, %.1f MiB wal, %s)   ",
				st.Images, st.Chunks, st.ResumedChunks,
				float64(st.Bytes)/(1<<20), time.Since(start).Round(time.Second))
		}
	}
	stats, runErr := s.Import(ctx, src, opts)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	elapsed := time.Since(start)
	rate := float64(stats.Images) / elapsed.Seconds()
	fmt.Printf("imported %d images in %d chunks (%d images in %d chunks resumed from an earlier run)\n",
		stats.Images, stats.Chunks, stats.ResumedImages, stats.ResumedChunks)
	fmt.Printf("  %.1f MiB wal, lsn %d, %s (%.0f images/s)\n",
		float64(stats.Bytes)/(1<<20), stats.LSN, elapsed.Round(time.Millisecond), rate)
	if runErr != nil {
		return fmt.Errorf("import: %w (committed chunks are durable; re-run to resume)", runErr)
	}
	return nil
}
