package main

import (
	"context"
	"flag"
	"fmt"

	"bestring"
)

// cmdStore dispatches the durable-store subcommands:
//
//	bestring store init    -data-dir d [-count 50] [-seed 1] [-objects 8]
//	                       [-vocab 24] [-fsync always] [-segment-bytes N]
//	bestring store inspect -data-dir d
//	bestring store compact -data-dir d
func cmdStore(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("store: missing subcommand (init, inspect, compact)")
	}
	switch args[0] {
	case "init":
		return cmdStoreInit(args[1:])
	case "inspect":
		return cmdStoreInspect(args[1:])
	case "compact":
		return cmdStoreCompact(args[1:])
	default:
		return fmt.Errorf("store: unknown subcommand %q (want init, inspect or compact)", args[0])
	}
}

// storeFlags adds the flags shared by the store subcommands.
func storeFlags(fs *flag.FlagSet) (dataDir *string, fsyncS *string, segBytes *int64) {
	dataDir = fs.String("data-dir", "", "store directory (required)")
	fsyncS = fs.String("fsync", "always", "WAL fsync policy: always, interval or never")
	segBytes = fs.Int64("segment-bytes", 0, "WAL segment rotation threshold (0 = 4 MiB)")
	return
}

// openStoreFlags validates the shared flags and opens the store.
func openStoreFlags(dataDir, fsyncS string, segBytes int64) (*bestring.Store, error) {
	if dataDir == "" {
		return nil, fmt.Errorf("store: -data-dir is required")
	}
	policy, err := bestring.ParseFsyncPolicy(fsyncS)
	if err != nil {
		return nil, err
	}
	return bestring.OpenStore(dataDir, bestring.StoreOptions{
		Fsync: policy, SegmentBytes: segBytes,
	})
}

func cmdStoreInit(args []string) error {
	fs := flag.NewFlagSet("store init", flag.ContinueOnError)
	dataDir, fsyncS, segBytes := storeFlags(fs)
	count := fs.Int("count", 50, "number of synthetic scenes to seed (0: create empty)")
	seed := fs.Int64("seed", 1, "generator seed")
	objects := fs.Int("objects", 8, "objects per scene")
	vocab := fs.Int("vocab", 24, "icon vocabulary size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openStoreFlags(*dataDir, *fsyncS, *segBytes)
	if err != nil {
		return err
	}
	defer s.Close()
	if *count > 0 {
		if s.Len() > 0 {
			return fmt.Errorf("store init: %s already holds %d images (inspect or serve it instead)",
				*dataDir, s.Len())
		}
		cfg := bestring.SceneConfig{Seed: *seed, Objects: *objects, Vocabulary: *vocab}
		if err := bestring.SeedScenes(context.Background(), s, cfg, *count); err != nil {
			return err
		}
		// Checkpoint so a freshly initialised store opens from a snapshot
		// instead of replaying the seeding batch every time.
		if err := s.Checkpoint(); err != nil {
			return err
		}
	}
	st := s.StoreStats()
	fmt.Printf("initialised %s: %d images, lsn %d, fsync %s\n",
		*dataDir, s.Len(), st.LastLSN, st.WAL.Fsync)
	return nil
}

func cmdStoreInspect(args []string) error {
	fs := flag.NewFlagSet("store inspect", flag.ContinueOnError)
	dataDir := fs.String("data-dir", "", "store directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("store inspect: -data-dir is required")
	}
	ins, err := bestring.InspectStore(*dataDir)
	if err != nil {
		return err
	}
	fmt.Printf("store %s\n", ins.Dir)
	fmt.Printf("  snapshot lsn %d, last lsn %d, %d of %d records awaiting replay\n",
		ins.SnapshotLSN, ins.LastLSN, ins.Replayable, ins.Records)
	fmt.Printf("snapshots (%d):\n", len(ins.Snapshots))
	for _, sn := range ins.Snapshots {
		status := fmt.Sprintf("%d entries", sn.Entries)
		if sn.Err != "" {
			status = "UNREADABLE: " + sn.Err
		}
		fmt.Printf("  %-32s lsn %-8d %8d bytes  %s\n", sn.File, sn.LSN, sn.Bytes, status)
	}
	fmt.Printf("segments (%d):\n", len(ins.Segments))
	for _, sg := range ins.Segments {
		note := ""
		if sg.TornBytes > 0 {
			note = fmt.Sprintf("  torn tail (%d bytes, truncated on next open)", sg.TornBytes)
		}
		if sg.Err != "" {
			note = "  CORRUPT: " + sg.Err
		}
		fmt.Printf("  %-32s first-lsn %-8d %8d bytes  %4d records%s\n",
			sg.File, sg.FirstLSN, sg.Bytes, sg.Records, note)
	}
	if len(ins.RecordOps) > 0 {
		fmt.Printf("record ops:\n")
		for _, op := range []string{"insert", "delete", "insert-object", "delete-object", "bulk", "import", "group"} {
			if n := ins.RecordOps[op]; n > 0 {
				fmt.Printf("  %-14s %d\n", op, n)
			}
		}
	}
	// The audit view of a batched log: group frames expand to their
	// sub-records, and bulk/group records to the individual mutations
	// they acknowledged — so "logical mutations" is the write count
	// clients observed, however aggressively the WAL coalesced.
	if ins.Records > 0 {
		fmt.Printf("  group sub-records %d, logical mutations %d\n",
			ins.GroupSubRecords, ins.LogicalMutations)
	}
	return nil
}

func cmdStoreCompact(args []string) error {
	fs := flag.NewFlagSet("store compact", flag.ContinueOnError)
	dataDir, fsyncS, segBytes := storeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openStoreFlags(*dataDir, *fsyncS, *segBytes)
	if err != nil {
		return err
	}
	defer s.Close()
	before := s.StoreStats()
	if err := s.Checkpoint(); err != nil {
		return err
	}
	after := s.StoreStats()
	fmt.Printf("compacted %s: wal %d -> %d bytes, %d -> %d segments, checkpoint lsn %d\n",
		*dataDir, before.WAL.Bytes, after.WAL.Bytes,
		before.WAL.Segments, after.WAL.Segments, after.CheckpointLSN)
	return nil
}
