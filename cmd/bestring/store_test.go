package main

import (
	"path/filepath"
	"testing"

	"bestring"
)

func TestStoreInitInspectCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	if err := run([]string{"store", "init", "-data-dir", dir, "-count", "12", "-seed", "3"}); err != nil {
		t.Fatalf("store init: %v", err)
	}
	// Re-initialising a populated store is refused.
	if err := run([]string{"store", "init", "-data-dir", dir, "-count", "5"}); err == nil {
		t.Fatal("double init accepted")
	}

	// Mutate through the library so the WAL has records past the
	// snapshot, then inspect and compact via the CLI.
	s, err := bestring.OpenStore(dir, bestring.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("scene0003"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ins, err := bestring.InspectStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Replayable != 1 || ins.RecordOps["delete"] != 1 {
		t.Fatalf("inspection=%+v", ins)
	}
	if err := run([]string{"store", "inspect", "-data-dir", dir}); err != nil {
		t.Fatalf("store inspect: %v", err)
	}
	if err := run([]string{"store", "compact", "-data-dir", dir}); err != nil {
		t.Fatalf("store compact: %v", err)
	}
	ins, err = bestring.InspectStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Replayable != 0 || len(ins.Snapshots) != 1 {
		t.Fatalf("after compact: %+v", ins)
	}

	// The compacted store still opens with all acknowledged state.
	s, err = bestring.OpenStore(dir, bestring.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 11 {
		t.Fatalf("Len=%d, want 11", s.Len())
	}
}

func TestStoreSubcommandErrors(t *testing.T) {
	if err := run([]string{"store"}); err == nil {
		t.Error("missing store subcommand accepted")
	}
	if err := run([]string{"store", "bogus"}); err == nil {
		t.Error("unknown store subcommand accepted")
	}
	if err := run([]string{"store", "init"}); err == nil {
		t.Error("missing -data-dir accepted")
	}
	if err := run([]string{"store", "inspect", "-data-dir", filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Error("inspect of a missing directory accepted")
	}
	if err := run([]string{"store", "init", "-data-dir", t.TempDir(), "-fsync", "sometimes"}); err == nil {
		t.Error("bad fsync policy accepted")
	}
}
