// Command bestring is the command-line front end of the 2D BE-string
// library: convert symbolic images to BE-strings, score image pairs,
// search a database, apply rotations/reflections on strings, generate
// synthetic datasets and render images.
//
// Usage:
//
//	bestring convert   -img scene.json
//	bestring score     -query q.json -db d.json [-invariant]
//	bestring search    -dbfile db.json [-query q.json] [-k 10] [-offset 0]
//	                   [-method be|invariant|type0|type1|type2|symbols]
//	                   [-dsl "A left-of B"] [-region x0,y0,x1,y1] [-region-label L]
//	                   [-min-score 0.4] [-explain] [-no-prune]
//	bestring transform -img scene.json -t rot90|rot180|rot270|flip-x|flip-y
//	bestring mkdb      -out db.json [-count 50] [-seed 1] [-objects 8] [-vocab 24]
//	bestring store     init|inspect|compact -data-dir DIR [flags]
//	bestring import    -data-dir DIR -file scenes.ndjson [-format ndjson|csv]
//	                   [-chunk N] [-parallelism N] [-no-resume]
//	bestring render    -img scene.json -out scene.png
//	bestring ascii     -img scene.json [-cols 60] [-rows 24]
//
// Image files are JSON in the core.Image format:
//
//	{"xmax":6,"ymax":6,"objects":[{"label":"A","box":{"x0":1,"y0":2,"x1":3,"y1":5}}]}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"bestring"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bestring:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (convert, score, search, transform, mkdb, store, import, render, ascii)")
	}
	switch args[0] {
	case "convert":
		return cmdConvert(args[1:])
	case "score":
		return cmdScore(args[1:])
	case "search":
		return cmdSearch(args[1:])
	case "transform":
		return cmdTransform(args[1:])
	case "mkdb":
		return cmdMkdb(args[1:])
	case "store":
		return cmdStore(args[1:])
	case "import":
		return cmdImport(args[1:])
	case "render":
		return cmdRender(args[1:])
	case "ascii":
		return cmdASCII(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// loadImage reads a symbolic image from a JSON file ("-" for stdin).
func loadImage(path string) (bestring.Image, error) {
	var img bestring.Image
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return img, fmt.Errorf("read image: %w", err)
	}
	if err := json.Unmarshal(data, &img); err != nil {
		return img, fmt.Errorf("parse image JSON: %w", err)
	}
	if err := img.Validate(); err != nil {
		return img, fmt.Errorf("invalid image: %w", err)
	}
	return img, nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	imgPath := fs.String("img", "-", "image JSON file (- for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	img, err := loadImage(*imgPath)
	if err != nil {
		return err
	}
	be, err := bestring.Convert(img)
	if err != nil {
		return err
	}
	fmt.Printf("x: %s\ny: %s\nstorage units: %d\n", be.X, be.Y, be.StorageUnits())
	return nil
}

func cmdScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ContinueOnError)
	qPath := fs.String("query", "", "query image JSON file")
	dPath := fs.String("db", "", "database image JSON file")
	invariant := fs.Bool("invariant", false, "take the best score over all rotations/reflections")
	explain := fs.Bool("explain", false, "print the matched common subsequence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *qPath == "" || *dPath == "" {
		return fmt.Errorf("score: -query and -db are required")
	}
	qImg, err := loadImage(*qPath)
	if err != nil {
		return err
	}
	dImg, err := loadImage(*dPath)
	if err != nil {
		return err
	}
	q, err := bestring.Convert(qImg)
	if err != nil {
		return err
	}
	d, err := bestring.Convert(dImg)
	if err != nil {
		return err
	}
	if *invariant {
		s := bestring.SimilarityInvariant(q, d, nil)
		fmt.Printf("best transform: %s\nLCS x=%d y=%d\nsim(query)=%.4f sim(db)=%.4f sim(F)=%.4f\n",
			s.Transform, s.LX, s.LY, s.Query, s.DB, s.F)
		return nil
	}
	s := bestring.Similarity(q, d)
	fmt.Printf("LCS x=%d y=%d\nsim(query)=%.4f sim(db)=%.4f sim(F)=%.4f\n",
		s.LX, s.LY, s.Query, s.DB, s.F)
	if *explain {
		m := bestring.Explain(q, d)
		fmt.Printf("matched x: %s\nmatched y: %s\n", m.X, m.Y)
	}
	return nil
}

// scorerByName resolves -method values through the shared scorer
// registry, so the CLI accepts exactly the names the library and the
// REST server accept (including custom registrations).
func scorerByName(name string) (bestring.Scorer, error) {
	s, ok := bestring.LookupScorer(name)
	if !ok {
		return nil, fmt.Errorf("unknown method %q (want %s)",
			name, strings.Join(bestring.ScorerNames(), ", "))
	}
	return s, nil
}

// parseRegionFlag reads a -region "x0,y0,x1,y1" value.
func parseRegionFlag(s string) (bestring.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return bestring.Rect{}, fmt.Errorf("bad region %q (want x0,y0,x1,y1)", s)
	}
	var coords [4]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return bestring.Rect{}, fmt.Errorf("bad region coordinate %q: %w", p, err)
		}
		coords[i] = v
	}
	return bestring.NewRect(coords[0], coords[1], coords[2], coords[3]), nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	dbPath := fs.String("dbfile", "", "database JSON file (see mkdb)")
	qPath := fs.String("query", "", "query image JSON file (optional with -dsl or -region)")
	k := fs.Int("k", 10, "number of results")
	offset := fs.Int("offset", 0, "skip the first N results")
	method := fs.String("method", "be", "scoring method (a registered scorer name)")
	dsl := fs.String("dsl", "", `spatial-predicate filter, e.g. "A left-of B; B above C"`)
	region := fs.String("region", "", `region filter "x0,y0,x1,y1" (icons intersecting it)`)
	regionLabel := fs.String("region-label", "", "restrict -region to icons with this label")
	minScore := fs.Float64("min-score", 0, "drop results scoring below the threshold")
	explain := fs.Bool("explain", false, "print the chosen query plan, per-stage candidate counts and per-hit bound vs exact score")
	noPrune := fs.Bool("no-prune", false, "disable filter-and-refine pruning (results are identical; for measurement)")
	noPlan := fs.Bool("no-planner", false, "disable the cost-based stage planner (results are identical; for measurement)")
	noCache := fs.Bool("no-cache", false, "disable the scorer cache for this query (results are identical; for measurement)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return fmt.Errorf("search: -dbfile is required")
	}
	if *qPath == "" && *dsl == "" && *region == "" {
		return fmt.Errorf("search: need -query, -dsl or -region")
	}
	db, err := bestring.LoadDBFile(*dbPath)
	if err != nil {
		return err
	}

	var q *bestring.Query
	var queryBE bestring.BEString
	hasImage := *qPath != ""
	if hasImage {
		img, err := loadImage(*qPath)
		if err != nil {
			return err
		}
		if *explain {
			// Only -explain needs the query's BE-string here (for the
			// per-hit bound column); the pipeline converts internally.
			if queryBE, err = bestring.Convert(img); err != nil {
				return err
			}
		}
		q = bestring.NewQuery(img)
	} else {
		q = bestring.NewMatchQuery()
	}
	// Validate the method eagerly for a friendly error, then select it by
	// name so the engine resolves its declared bound and can prune.
	if _, err := scorerByName(*method); err != nil {
		return err
	}
	opts := []bestring.QueryOption{
		bestring.WithK(*k),
		bestring.WithOffset(*offset),
		bestring.WithScorer(*method),
		bestring.WithMinScore(*minScore),
		bestring.WithPruning(!*noPrune),
		bestring.WithPlanner(!*noPlan),
		bestring.WithScorerCache(!*noCache),
	}
	if *dsl != "" {
		opts = append(opts, bestring.Where(*dsl))
	}
	if *regionLabel != "" && *region == "" {
		return fmt.Errorf("search: -region-label requires -region")
	}
	if *region != "" {
		r, err := parseRegionFlag(*region)
		if err != nil {
			return err
		}
		opts = append(opts, bestring.InRegionLabel(r, *regionLabel))
	}
	page, err := db.Query(context.Background(), q, opts...)
	if err != nil {
		return err
	}

	// -explain prepares the per-hit bound column: the signature upper
	// bound the refine stage compared against the top-K floor, next to
	// the exact score it shortcuts. A wide gap on a relevance complaint
	// usually means the label overlap (which drives the bound) disagrees
	// with the spatial agreement (which drives the score).
	bound, hasBound := bestring.LookupBound(*method)
	var querySig bestring.Signature
	if *explain && hasImage && hasBound {
		querySig = bestring.SignatureOf(queryBE)
	}
	explainBound := func(h bestring.QueryHit) string {
		if !hasImage || !hasBound {
			return "-"
		}
		e, ok := db.Get(h.ID)
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%.4f", bound(querySig, bestring.SignatureOf(e.BE)))
	}

	switch {
	case *explain:
		fmt.Printf("%-4s %-20s %-10s %-10s %s\n", "rank", "id", "score", "bound", "name")
		for i, h := range page.Hits {
			fmt.Printf("%-4d %-20s %-10.4f %-10s %s\n", i+*offset+1, h.ID, h.Score, explainBound(h), h.Name)
		}
	case *dsl != "":
		fmt.Printf("%-4s %-20s %-10s %-8s %-5s %s\n", "rank", "id", "score", "where", "full", "name")
		for i, h := range page.Hits {
			fmt.Printf("%-4d %-20s %-10.4f %-8.4f %-5v %s\n", i+*offset+1, h.ID, h.Score, h.Where, h.Full, h.Name)
		}
	default:
		fmt.Printf("%-4s %-20s %-10s %s\n", "rank", "id", "score", "name")
		for i, h := range page.Hits {
			fmt.Printf("%-4d %-20s %-10.4f %s\n", i+*offset+1, h.ID, h.Score, h.Name)
		}
	}
	if *explain && page.Plan != nil {
		p := page.Plan
		fmt.Printf("plan: %s (%s)", p.Name, strings.Join(p.Order, " -> "))
		if p.EstLabel > 0 {
			fmt.Printf(" est-label=%d", p.EstLabel)
		}
		if p.EstRegion > 0 {
			fmt.Printf(" est-region=%d", p.EstRegion)
		}
		if p.EstFilterRate > 0 {
			fmt.Printf(" est-filter-rate=%.3f", p.EstFilterRate)
		}
		fmt.Println()
		if p.CacheHits+p.CacheMisses > 0 {
			fmt.Printf("scorer cache: %d hits, %d misses\n", p.CacheHits, p.CacheMisses)
		}
	}
	if *explain && page.Stages != nil {
		s := page.Stages
		fmt.Printf("stages: indexed %d -> region %d -> narrowed %d -> bounded %d -> evaluated %d (pruned %d)\n",
			s.Indexed, s.Region, s.Narrowed, s.Bounded, s.Evaluated, s.Pruned)
		if s.TotalNanos > 0 {
			fmt.Printf("timing: index %v + region %v + filter %v + rank %v = %v total\n",
				time.Duration(s.IndexNanos), time.Duration(s.RegionNanos),
				time.Duration(s.FilterNanos), time.Duration(s.RankNanos),
				time.Duration(s.TotalNanos))
		}
	}
	if page.NextCursor != "" {
		fmt.Printf("(%d of %d results; next offset %d)\n", len(page.Hits), page.Total, *offset+len(page.Hits))
	}
	return nil
}

// transformByName maps CLI names to Transform values.
func transformByName(name string) (bestring.Transform, error) {
	for _, tr := range bestring.AllTransforms {
		if tr.String() == name {
			return tr, nil
		}
	}
	return bestring.Identity, fmt.Errorf("unknown transform %q", name)
}

func cmdTransform(args []string) error {
	fs := flag.NewFlagSet("transform", flag.ContinueOnError)
	imgPath := fs.String("img", "-", "image JSON file (- for stdin)")
	tName := fs.String("t", "rot90", "transform: rot90, rot180, rot270, flip-x, flip-y, flip-diag, flip-antidiag")
	if err := fs.Parse(args); err != nil {
		return err
	}
	img, err := loadImage(*imgPath)
	if err != nil {
		return err
	}
	tr, err := transformByName(*tName)
	if err != nil {
		return err
	}
	be, err := bestring.Convert(img)
	if err != nil {
		return err
	}
	out := be.Apply(tr)
	fmt.Printf("transform: %s\nx: %s\ny: %s\n", tr, out.X, out.Y)
	return nil
}

func cmdMkdb(args []string) error {
	fs := flag.NewFlagSet("mkdb", flag.ContinueOnError)
	out := fs.String("out", "db.json", "output database file")
	count := fs.Int("count", 50, "number of scenes")
	seed := fs.Int64("seed", 1, "generator seed")
	objects := fs.Int("objects", 8, "objects per scene")
	vocab := fs.Int("vocab", 24, "icon vocabulary size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	gen := bestring.NewSceneGenerator(bestring.SceneConfig{
		Seed: *seed, Objects: *objects, Vocabulary: *vocab,
	})
	db := bestring.NewDB()
	for i := 0; i < *count; i++ {
		id := fmt.Sprintf("scene%04d", i)
		if err := db.Insert(id, fmt.Sprintf("synthetic scene %d", i), gen.Scene()); err != nil {
			return err
		}
	}
	if err := db.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d scenes to %s\n", *count, *out)
	return nil
}

func cmdRender(args []string) error {
	fs := flag.NewFlagSet("render", flag.ContinueOnError)
	imgPath := fs.String("img", "-", "image JSON file (- for stdin)")
	out := fs.String("out", "out.png", "output PNG file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	img, err := loadImage(*imgPath)
	if err != nil {
		return err
	}
	p, err := bestring.NewPalette(img.Labels())
	if err != nil {
		return err
	}
	raster, err := bestring.Render(img, p)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := bestring.EncodePNG(f, raster); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func cmdASCII(args []string) error {
	fs := flag.NewFlagSet("ascii", flag.ContinueOnError)
	imgPath := fs.String("img", "-", "image JSON file (- for stdin)")
	cols := fs.Int("cols", 60, "art width")
	rows := fs.Int("rows", 24, "art height")
	if err := fs.Parse(args); err != nil {
		return err
	}
	img, err := loadImage(*imgPath)
	if err != nil {
		return err
	}
	fmt.Print(bestring.ASCII(img, *cols, *rows))
	return nil
}
