package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bestring"
)

// writeFig1 materialises the Figure 1 image as a JSON file.
func writeFig1(t *testing.T) string {
	t.Helper()
	data, err := json.Marshal(bestring.Figure1Image())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig1.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestConvertCommand(t *testing.T) {
	img := writeFig1(t)
	if err := run([]string{"convert", "-img", img}); err != nil {
		t.Fatalf("convert: %v", err)
	}
	if err := run([]string{"convert", "-img", img + ".missing"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestScoreCommand(t *testing.T) {
	img := writeFig1(t)
	if err := run([]string{"score", "-query", img, "-db", img, "-explain"}); err != nil {
		t.Fatalf("score: %v", err)
	}
	if err := run([]string{"score", "-query", img, "-db", img, "-invariant"}); err != nil {
		t.Fatalf("score -invariant: %v", err)
	}
	if err := run([]string{"score", "-query", img}); err == nil {
		t.Error("missing -db accepted")
	}
}

func TestMkdbAndSearchCommands(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.json")
	if err := run([]string{"mkdb", "-out", dbPath, "-count", "10", "-seed", "2"}); err != nil {
		t.Fatalf("mkdb: %v", err)
	}
	img := writeFig1(t)
	for _, method := range []string{"be", "invariant", "type0", "type1", "type2"} {
		if err := run([]string{"search", "-dbfile", dbPath, "-query", img, "-k", "3", "-method", method}); err != nil {
			t.Fatalf("search -method %s: %v", method, err)
		}
	}
	if err := run([]string{"search", "-dbfile", dbPath, "-query", img, "-method", "cosine"}); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run([]string{"search", "-query", img}); err == nil {
		t.Error("missing -dbfile accepted")
	}
}

func TestTransformCommand(t *testing.T) {
	img := writeFig1(t)
	for _, tr := range []string{"rot90", "rot180", "rot270", "flip-x", "flip-y", "flip-diag", "flip-antidiag"} {
		if err := run([]string{"transform", "-img", img, "-t", tr}); err != nil {
			t.Fatalf("transform -t %s: %v", tr, err)
		}
	}
	if err := run([]string{"transform", "-img", img, "-t", "rot45"}); err == nil {
		t.Error("unknown transform accepted")
	}
}

func TestRenderAndASCIICommands(t *testing.T) {
	img := writeFig1(t)
	out := filepath.Join(t.TempDir(), "fig1.png")
	if err := run([]string{"render", "-img", img, "-out", out}); err != nil {
		t.Fatalf("render: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil || len(data) < 8 || string(data[1:4]) != "PNG" {
		t.Errorf("render output is not a PNG (%v, %d bytes)", err, len(data))
	}
	if err := run([]string{"ascii", "-img", img, "-cols", "20", "-rows", "10"}); err != nil {
		t.Fatalf("ascii: %v", err)
	}
}

func TestLoadImageRejectsBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadImage(path); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := os.WriteFile(path, []byte(`{"xmax":5,"ymax":5,"objects":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadImage(path); err == nil {
		t.Error("invalid image accepted")
	}
}

// TestSearchComposedFlags drives the composable query surface: DSL and
// region filters on top of (or instead of) ranked search.
func TestSearchComposedFlags(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.json")
	db := bestring.NewDB()
	fig := bestring.Figure1Image()
	if err := db.Insert("fig1", "figure one", fig); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("fig1-rot", "rotated", bestring.ApplyToImage(fig, bestring.Rot90)); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveFile(dbPath); err != nil {
		t.Fatal(err)
	}
	img := writeFig1(t)

	for _, args := range [][]string{
		{"search", "-dbfile", dbPath, "-query", img, "-dsl", "A left-of B", "-k", "5"},
		{"search", "-dbfile", dbPath, "-query", img, "-region", "0,0,6,6", "-region-label", "A"},
		{"search", "-dbfile", dbPath, "-dsl", "A left-of B"},
		{"search", "-dbfile", dbPath, "-region", "0,0,6,6"},
		{"search", "-dbfile", dbPath, "-query", img, "-min-score", "0.5", "-offset", "1"},
		{"search", "-dbfile", dbPath, "-query", img, "-method", "symbols"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	for _, args := range [][]string{
		{"search", "-dbfile", dbPath}, // no query component at all
		{"search", "-dbfile", dbPath, "-dsl", "A sideways B"},
		{"search", "-dbfile", dbPath, "-region", "1,2,3"},
		{"search", "-dbfile", dbPath, "-region", "a,b,c,d"},
		{"search", "-dbfile", dbPath, "-query", img, "-region-label", "A"}, // label without region

	} {
		if err := run(args); err == nil {
			t.Fatalf("%v: accepted, want error", args)
		}
	}
}

// TestSearchExplain pins the -explain debugging view: per-hit bound vs
// exact score and the per-stage candidate counts, with and without
// pruning (-no-prune must not change the ranking lines).
func TestSearchExplain(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.json")
	if err := run([]string{"mkdb", "-out", dbPath, "-count", "20", "-seed", "4"}); err != nil {
		t.Fatalf("mkdb: %v", err)
	}
	img := writeFig1(t)

	capture := func(args ...string) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		runErr := run(args)
		w.Close()
		os.Stdout = old
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if runErr != nil {
			t.Fatalf("run %v: %v", args, runErr)
		}
		return string(out)
	}

	out := capture("search", "-dbfile", dbPath, "-query", img, "-k", "5", "-explain")
	if !strings.Contains(out, "bound") || !strings.Contains(out, "stages:") {
		t.Fatalf("-explain output missing bound column or stage counts:\n%s", out)
	}
	if !strings.Contains(out, "-> bounded") || !strings.Contains(out, "pruned") {
		t.Fatalf("-explain output missing pipeline stages:\n%s", out)
	}

	// The ranking lines are byte-identical with pruning disabled; only
	// the work-description lines — stage counters, wall-clock timing,
	// plan and cache traffic (pruning changes how many evaluations the
	// cache sees) — may differ.
	stripStages := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "stages:") && !strings.HasPrefix(line, "timing:") &&
				!strings.HasPrefix(line, "plan:") && !strings.HasPrefix(line, "scorer cache:") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	off := capture("search", "-dbfile", dbPath, "-query", img, "-k", "5", "-explain", "-no-prune")
	if stripStages(out) != stripStages(off) {
		t.Fatalf("-no-prune changed the ranking:\n on: %s\noff: %s", out, off)
	}
	if !strings.Contains(off, "(pruned 0)") {
		t.Fatalf("-no-prune still pruned:\n%s", off)
	}

	// Exact-only scorers print "-" for the bound column: every hit line
	// (rank, id, score, bound, ...) must carry the dash as its fourth
	// field.
	out = capture("search", "-dbfile", dbPath, "-query", img, "-k", "3", "-method", "type0", "-explain")
	hits := 0
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) < 4 || f[0] == "rank" || strings.HasPrefix(line, "stages:") ||
			strings.HasPrefix(line, "timing:") || strings.HasPrefix(line, "plan:") ||
			strings.HasPrefix(line, "scorer cache:") || strings.HasPrefix(line, "(") {
			continue
		}
		hits++
		if f[3] != "-" {
			t.Fatalf("type0 -explain bound column = %q, want \"-\":\n%s", f[3], out)
		}
	}
	if hits == 0 {
		t.Fatalf("no hit lines parsed from -explain output:\n%s", out)
	}
}
