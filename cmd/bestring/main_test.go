package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"bestring"
)

// writeFig1 materialises the Figure 1 image as a JSON file.
func writeFig1(t *testing.T) string {
	t.Helper()
	data, err := json.Marshal(bestring.Figure1Image())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig1.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestConvertCommand(t *testing.T) {
	img := writeFig1(t)
	if err := run([]string{"convert", "-img", img}); err != nil {
		t.Fatalf("convert: %v", err)
	}
	if err := run([]string{"convert", "-img", img + ".missing"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestScoreCommand(t *testing.T) {
	img := writeFig1(t)
	if err := run([]string{"score", "-query", img, "-db", img, "-explain"}); err != nil {
		t.Fatalf("score: %v", err)
	}
	if err := run([]string{"score", "-query", img, "-db", img, "-invariant"}); err != nil {
		t.Fatalf("score -invariant: %v", err)
	}
	if err := run([]string{"score", "-query", img}); err == nil {
		t.Error("missing -db accepted")
	}
}

func TestMkdbAndSearchCommands(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.json")
	if err := run([]string{"mkdb", "-out", dbPath, "-count", "10", "-seed", "2"}); err != nil {
		t.Fatalf("mkdb: %v", err)
	}
	img := writeFig1(t)
	for _, method := range []string{"be", "invariant", "type0", "type1", "type2"} {
		if err := run([]string{"search", "-dbfile", dbPath, "-query", img, "-k", "3", "-method", method}); err != nil {
			t.Fatalf("search -method %s: %v", method, err)
		}
	}
	if err := run([]string{"search", "-dbfile", dbPath, "-query", img, "-method", "cosine"}); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run([]string{"search", "-query", img}); err == nil {
		t.Error("missing -dbfile accepted")
	}
}

func TestTransformCommand(t *testing.T) {
	img := writeFig1(t)
	for _, tr := range []string{"rot90", "rot180", "rot270", "flip-x", "flip-y", "flip-diag", "flip-antidiag"} {
		if err := run([]string{"transform", "-img", img, "-t", tr}); err != nil {
			t.Fatalf("transform -t %s: %v", tr, err)
		}
	}
	if err := run([]string{"transform", "-img", img, "-t", "rot45"}); err == nil {
		t.Error("unknown transform accepted")
	}
}

func TestRenderAndASCIICommands(t *testing.T) {
	img := writeFig1(t)
	out := filepath.Join(t.TempDir(), "fig1.png")
	if err := run([]string{"render", "-img", img, "-out", out}); err != nil {
		t.Fatalf("render: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil || len(data) < 8 || string(data[1:4]) != "PNG" {
		t.Errorf("render output is not a PNG (%v, %d bytes)", err, len(data))
	}
	if err := run([]string{"ascii", "-img", img, "-cols", "20", "-rows", "10"}); err != nil {
		t.Fatalf("ascii: %v", err)
	}
}

func TestLoadImageRejectsBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadImage(path); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := os.WriteFile(path, []byte(`{"xmax":5,"ymax":5,"objects":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadImage(path); err == nil {
		t.Error("invalid image accepted")
	}
}

// TestSearchComposedFlags drives the composable query surface: DSL and
// region filters on top of (or instead of) ranked search.
func TestSearchComposedFlags(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.json")
	db := bestring.NewDB()
	fig := bestring.Figure1Image()
	if err := db.Insert("fig1", "figure one", fig); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("fig1-rot", "rotated", bestring.ApplyToImage(fig, bestring.Rot90)); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveFile(dbPath); err != nil {
		t.Fatal(err)
	}
	img := writeFig1(t)

	for _, args := range [][]string{
		{"search", "-dbfile", dbPath, "-query", img, "-dsl", "A left-of B", "-k", "5"},
		{"search", "-dbfile", dbPath, "-query", img, "-region", "0,0,6,6", "-region-label", "A"},
		{"search", "-dbfile", dbPath, "-dsl", "A left-of B"},
		{"search", "-dbfile", dbPath, "-region", "0,0,6,6"},
		{"search", "-dbfile", dbPath, "-query", img, "-min-score", "0.5", "-offset", "1"},
		{"search", "-dbfile", dbPath, "-query", img, "-method", "symbols"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	for _, args := range [][]string{
		{"search", "-dbfile", dbPath}, // no query component at all
		{"search", "-dbfile", dbPath, "-dsl", "A sideways B"},
		{"search", "-dbfile", dbPath, "-region", "1,2,3"},
		{"search", "-dbfile", dbPath, "-region", "a,b,c,d"},
		{"search", "-dbfile", dbPath, "-query", img, "-region-label", "A"}, // label without region

	} {
		if err := run(args); err == nil {
			t.Fatalf("%v: accepted, want error", args)
		}
	}
}
