package main

import "testing"

func TestRunQuickAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	if err := run([]string{"-quick"}); err != nil {
		t.Fatalf("run -quick: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "e1"}); err != nil {
		t.Fatalf("run -exp e1: %v", err)
	}
	if err := run([]string{"-exp", "e1", "-csv"}); err != nil {
		t.Fatalf("run -exp e1 -csv: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "e99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
