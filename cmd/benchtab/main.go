// Command benchtab regenerates every evaluation artefact of the 2D
// BE-string paper as text tables (or CSV series): experiments E1-E8 of
// DESIGN.md, plus the engine experiments E9 (search scaling), E10
// (filtered-search scaling through the composable query pipeline; e7b
// is the adversarial clique companion), E11 (durable-store write
// throughput across fsync policy x batch size), E12 (snapshot-reader
// throughput under 0/1/4 concurrent writers), E13 (filter-and-refine
// pruning efficacy: signature-bound refine stage on vs off), E14
// (replication: follower catch-up throughput vs local replay, plus
// steady-state lag under paced writes), E15 (observability
// overhead: search/write paths with the metrics registry off vs on) and
// E16 (cost-based planner stage-order wins plus scorer-cache hit rates,
// against the same queries with both off) and E17 (streaming-ingest
// scaling: the chunked importer vs legacy chunk-looped BulkInsert across
// source format, chunk size and arena layout).
// Run with -exp all (default) or a single experiment id.
//
// Usage:
//
//	benchtab [-exp e1|e2|...|e11b|...|e17|all] [-quick] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bestring/internal/bench"
	"bestring/internal/retrieval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run: e1..e17 (including e11b) or all")
	quick := fs.Bool("quick", false, "smaller sweeps (for smoke tests)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sweep := []int{4, 8, 16, 32, 64}
	lcsGrid := []int{4, 16, 64}
	mmParts := []int{3, 5, 7, 9, 11}
	scenesPerPoint := 20
	searchSizes := []int{1000, 4000, 10000}
	filteredSizes := []int{1000, 10000, 100000}
	selectivities := []int{1, 10, 100}
	walBatches := []int{1, 16, 128}
	commitWriters, commitWindow := []int{1, 2, 4, 8, 16, 32}, 400*time.Millisecond
	mixedCorpus, mixedReaders, mixedWindow := 4000, 4, 500*time.Millisecond
	mixedWriters := []int{0, 1, 4}
	pruneSizes := []int{1000, 10000, 100000}
	pruneSelectivities := []int{10, 50, 100}
	pruneKs := []int{1, 10, 100}
	plannerSizes, plannerK := []int{1000, 10000}, 10
	ingestSizes, ingestChunks := []int{100000, 1000000}, []int{8192, 32768}
	replSizes, replPaced, replPace := []int{2000, 8000}, 300, 2*time.Millisecond
	obsSizes, obsQueries, obsWrites := []int{1000, 10000}, 200, 4000
	qualityCfgs := bench.QualityConfigs(bench.DefaultSeed)
	if *quick {
		sweep = []int{4, 8}
		lcsGrid = []int{4, 8}
		mmParts = []int{3, 5}
		scenesPerPoint = 3
		searchSizes = []int{200, 500}
		filteredSizes = []int{300, 1000}
		walBatches = []int{1, 16}
		commitWriters, commitWindow = []int{1, 4, 16}, 150*time.Millisecond
		mixedCorpus, mixedReaders, mixedWindow = 800, 2, 150*time.Millisecond
		pruneSizes = []int{300, 1000}
		pruneSelectivities = []int{10, 100}
		pruneKs = []int{10}
		plannerSizes = []int{500}
		ingestSizes, ingestChunks = []int{5000}, []int{1024}
		replSizes, replPaced, replPace = []int{1000}, 80, time.Millisecond
		obsSizes, obsQueries, obsWrites = []int{500}, 40, 800
		qualityCfgs = qualityCfgs[:1]
		qualityCfgs[0].Cfg = retrieval.WorkloadConfig{
			Seed: bench.DefaultSeed, Distractors: 10, Relevant: 2, Queries: 2, Jitter: 2,
		}
	}

	type job struct {
		id  string
		run func() (*bench.Table, error)
	}
	jobs := []job{
		{"e1", func() (*bench.Table, error) { return bench.Figure1(), nil }},
		{"e2", func() (*bench.Table, error) { return bench.Storage(sweep, scenesPerPoint) }},
		{"e3", func() (*bench.Table, error) { return bench.ConvertTiming(sweep), nil }},
		{"e4", func() (*bench.Table, error) { return bench.LCSTiming(lcsGrid, lcsGrid), nil }},
		{"e5", nil}, // expanded below: one table per difficulty
		{"e6", func() (*bench.Table, error) { return bench.Transforms(24, 10) }},
		{"e7", func() (*bench.Table, error) { return bench.MatchCost(sweep), nil }},
		{"e7b", func() (*bench.Table, error) { return bench.CliqueBlowup(mmParts), nil }},
		{"e8", func() (*bench.Table, error) { return bench.Incremental(sweep) }},
		{"e9", func() (*bench.Table, error) { return bench.SearchScaling(searchSizes, 10) }},
		{"e10", func() (*bench.Table, error) { return bench.FilteredSearch(filteredSizes, selectivities, 10) }},
		{"e11", func() (*bench.Table, error) { return bench.WALThroughput(walBatches) }},
		{"e11b", func() (*bench.Table, error) { return bench.GroupCommitScaling(commitWriters, commitWindow) }},
		{"e12", func() (*bench.Table, error) {
			return bench.MixedReadWrite(mixedCorpus, mixedWriters, mixedReaders, mixedWindow)
		}},
		{"e13", func() (*bench.Table, error) {
			return bench.PruneEfficacy(pruneSizes, pruneSelectivities, pruneKs)
		}},
		{"e14", func() (*bench.Table, error) {
			return bench.ReplicationCatchup(replSizes, replPaced, replPace)
		}},
		{"e15", func() (*bench.Table, error) {
			return bench.ObservabilityOverhead(obsSizes, obsQueries, obsWrites)
		}},
		{"e16", func() (*bench.Table, error) {
			return bench.PlannerCache(plannerSizes, plannerK)
		}},
		{"e17", func() (*bench.Table, error) {
			return bench.IngestScaling(ingestSizes, ingestChunks)
		}},
	}

	emit := func(t *bench.Table) error {
		if *csv {
			fmt.Printf("# %s: %s\n%s\n", t.ID, t.Caption, t.CSV())
			return nil
		}
		if err := t.Fprint(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	want := strings.ToLower(*exp)
	ran := false
	for _, j := range jobs {
		if want != "all" && want != j.id {
			continue
		}
		ran = true
		if j.id == "e5" {
			for _, qc := range qualityCfgs {
				t, err := bench.Quality(qc.Cfg)
				if err != nil {
					return fmt.Errorf("e5 %s: %w", qc.Name, err)
				}
				t.Caption = qc.Name + " workload: " + t.Caption
				if err := emit(t); err != nil {
					return fmt.Errorf("e5 %s: %w", qc.Name, err)
				}
			}
			continue
		}
		t, err := j.run()
		if err != nil {
			return fmt.Errorf("%s: %w", j.id, err)
		}
		if err := emit(t); err != nil {
			return fmt.Errorf("%s: %w", j.id, err)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want e1..e17, e11b, or all)", *exp)
	}
	return nil
}
