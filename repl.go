package bestring

import (
	"time"

	"bestring/internal/repl"
)

// Replication types, re-exported. A primary streams its WAL — sealed
// segments for catch-up, then live tailing — over a versioned HTTP
// protocol; a follower replays the records through the same
// validate→apply machinery into its own log and MVCC versions, serving
// the full read surface while refusing local writes. See DESIGN.md
// section 9.
type (
	// ReplicationPrimary serves the stream and ack endpoints of one
	// store and pins WAL retention to the slowest follower.
	ReplicationPrimary = repl.Primary
	// ReplicationFollower keeps a replica store in sync with a primary:
	// stream, batch, apply, ack, reconnect-with-resume.
	ReplicationFollower = repl.Follower
	// ReplFollowerInfo is one follower's registry entry on a primary.
	ReplFollowerInfo = repl.FollowerInfo
	// ReplFollowerStatus describes a follower's sync loop.
	ReplFollowerStatus = repl.FollowerStatus
)

// Replication protocol constants (wire version and endpoint paths).
const (
	ReplProtoVersion = repl.ProtoVersion
	ReplStreamPath   = repl.StreamPath
	ReplAckPath      = repl.AckPath
)

// Replication failure modes a follower cannot retry through.
var (
	// ErrReplDiverged: the follower's recorded history belongs to a
	// different primary (or to no primary at all).
	ErrReplDiverged = repl.ErrDiverged
	// ErrReplSnapshotNeeded: the follower's resume position precedes the
	// primary's oldest retained WAL segment.
	ErrReplSnapshotNeeded = repl.ErrSnapshotNeeded
)

// NewReplicationPrimary wraps an open store as a replication primary.
// Checkpoints on the store stop pruning WAL segments a registered
// follower has not acknowledged. heartbeat <= 0 uses the default
// (1 second).
func NewReplicationPrimary(store *Store, heartbeat time.Duration) *ReplicationPrimary {
	return repl.NewPrimary(store, heartbeat)
}

// NewReplicationFollower builds the sync loop for a replica store
// (opened with StoreOptions.Replica) against the primary at primaryURL.
// batchMax <= 0 uses the default (256 records per applied batch).
func NewReplicationFollower(store *Store, primaryURL string, batchMax int) (*ReplicationFollower, error) {
	return repl.NewFollower(store, primaryURL, batchMax)
}
