// Package segment is the icon-abstraction substrate of the demonstration
// system (paper section 5 / experiment E9). The paper assumes objects and
// their MBR coordinates have already been abstracted from the raster image
// before Convert-2D-Be-String runs; this package closes that loop with
// standard-library image machinery: a renderer that rasterises a symbolic
// image into an image.RGBA (one colour per icon class) and an extractor
// that recovers labelled MBRs from a raster by connected-component
// labelling over the colour classes.
package segment

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"sort"

	"bestring/internal/core"
)

// Palette maps icon labels to colours and back. Colours must be fully
// opaque and distinct; the background is transparent black.
type Palette struct {
	byLabel map[string]color.RGBA
	byColor map[color.RGBA]string
}

// NewPalette assigns a distinct colour to every label (at most 255*6
// labels; far beyond any symbolic image).
func NewPalette(labels []string) (*Palette, error) {
	p := &Palette{
		byLabel: make(map[string]color.RGBA, len(labels)),
		byColor: make(map[color.RGBA]string, len(labels)),
	}
	for i, label := range labels {
		if label == "" {
			return nil, fmt.Errorf("palette: empty label at index %d", i)
		}
		if _, dup := p.byLabel[label]; dup {
			return nil, fmt.Errorf("palette: duplicate label %q", label)
		}
		c := colorForIndex(i)
		p.byLabel[label] = c
		p.byColor[c] = label
	}
	return p, nil
}

// colorForIndex spreads indices over RGB space deterministically, avoiding
// the zero (background) colour.
func colorForIndex(i int) color.RGBA {
	n := uint32(i + 1)
	return color.RGBA{
		R: uint8(37*n%251 + 1),
		G: uint8(91*n%241 + 1),
		B: uint8(143*n%239 + 1),
		A: 255,
	}
}

// Color returns the colour for a label.
func (p *Palette) Color(label string) (color.RGBA, bool) {
	c, ok := p.byLabel[label]
	return c, ok
}

// Label returns the label for a colour.
func (p *Palette) Label(c color.RGBA) (string, bool) {
	l, ok := p.byColor[c]
	return l, ok
}

// Render rasterises the symbolic image: each object's MBR is filled with
// its palette colour, later objects painting over earlier ones. The
// returned raster is (XMax+1) x (YMax+1) so boundary coordinates are
// representable as pixels.
func Render(img core.Image, p *Palette) (*image.RGBA, error) {
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("render: %w", err)
	}
	out := image.NewRGBA(image.Rect(0, 0, img.XMax+1, img.YMax+1))
	for _, o := range img.Objects {
		c, ok := p.Color(o.Label)
		if !ok {
			return nil, fmt.Errorf("render: label %q not in palette", o.Label)
		}
		for y := o.Box.Y0; y <= o.Box.Y1; y++ {
			for x := o.Box.X0; x <= o.Box.X1; x++ {
				out.SetRGBA(x, y, c)
			}
		}
	}
	return out, nil
}

// Extract recovers labelled MBRs from a raster produced by Render (or any
// raster whose icon regions are uniform palette colours): pixels are
// grouped by colour class, each class's bounding box becomes the object's
// MBR. Occluded objects (fully painted over) are absent from the result,
// exactly as a real icon detector would miss them.
func Extract(raster image.Image, p *Palette) ([]core.Object, error) {
	if raster == nil {
		return nil, fmt.Errorf("extract: nil raster")
	}
	bounds := raster.Bounds()
	type box struct {
		x0, y0, x1, y1 int
		seen           bool
	}
	boxes := make(map[string]*box)
	for y := bounds.Min.Y; y < bounds.Max.Y; y++ {
		for x := bounds.Min.X; x < bounds.Max.X; x++ {
			r, g, b, a := raster.At(x, y).RGBA()
			if a == 0 {
				continue // background
			}
			c := color.RGBA{R: uint8(r >> 8), G: uint8(g >> 8), B: uint8(b >> 8), A: uint8(a >> 8)}
			label, ok := p.Label(c)
			if !ok {
				continue // foreign colour: not an icon
			}
			bx, ok := boxes[label]
			if !ok {
				boxes[label] = &box{x0: x, y0: y, x1: x, y1: y, seen: true}
				continue
			}
			bx.x0 = min(bx.x0, x)
			bx.y0 = min(bx.y0, y)
			bx.x1 = max(bx.x1, x)
			bx.y1 = max(bx.y1, y)
		}
	}
	labels := make([]string, 0, len(boxes))
	for label := range boxes {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	out := make([]core.Object, 0, len(labels))
	for _, label := range labels {
		b := boxes[label]
		out = append(out, core.Object{Label: label, Box: core.NewRect(b.x0, b.y0, b.x1, b.y1)})
	}
	return out, nil
}

// ExtractImage runs Extract and assembles a symbolic image with the given
// canvas size.
func ExtractImage(raster image.Image, p *Palette, xmax, ymax int) (core.Image, error) {
	objs, err := Extract(raster, p)
	if err != nil {
		return core.Image{}, err
	}
	img := core.NewImage(xmax, ymax, objs...)
	if err := img.Validate(); err != nil {
		return core.Image{}, fmt.Errorf("extract: %w", err)
	}
	return img, nil
}

// EncodePNG writes the raster as PNG.
func EncodePNG(w io.Writer, raster image.Image) error {
	if err := png.Encode(w, raster); err != nil {
		return fmt.Errorf("encode png: %w", err)
	}
	return nil
}

// DecodePNG reads a PNG raster.
func DecodePNG(r io.Reader) (image.Image, error) {
	img, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("decode png: %w", err)
	}
	return img, nil
}

// ASCII renders the symbolic image as monospace art for terminal demos:
// each object is drawn as its label's first rune over its MBR, later
// objects over earlier, scaled into a cols x rows grid.
func ASCII(img core.Image, cols, rows int) string {
	if cols < 2 || rows < 2 || img.XMax <= 0 || img.YMax <= 0 {
		return ""
	}
	grid := make([][]rune, rows)
	for i := range grid {
		grid[i] = make([]rune, cols)
		for j := range grid[i] {
			grid[i][j] = '.'
		}
	}
	scaleX := func(x int) int {
		c := x * (cols - 1) / img.XMax
		return c
	}
	scaleY := func(y int) int {
		r := y * (rows - 1) / img.YMax
		return r
	}
	for _, o := range img.Objects {
		ch := []rune(o.Label)[0]
		for r := scaleY(o.Box.Y0); r <= scaleY(o.Box.Y1); r++ {
			for c := scaleX(o.Box.X0); c <= scaleX(o.Box.X1); c++ {
				grid[r][c] = ch
			}
		}
	}
	out := make([]byte, 0, rows*(cols+1))
	// Row 0 is the bottom of the image (y grows upward in the model), so
	// print top-down.
	for r := rows - 1; r >= 0; r-- {
		out = append(out, string(grid[r])...)
		out = append(out, '\n')
	}
	return string(out)
}
