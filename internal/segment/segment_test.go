package segment

import (
	"bytes"
	"image/color"
	"strings"
	"testing"

	"bestring/internal/core"
	"bestring/internal/workload"
)

func TestPaletteAssignsDistinctColors(t *testing.T) {
	labels := make([]string, 100)
	for i := range labels {
		labels[i] = workload.ClassLabel(i)
	}
	p, err := NewPalette(labels)
	if err != nil {
		t.Fatalf("NewPalette: %v", err)
	}
	seen := make(map[color.RGBA]bool)
	for _, l := range labels {
		c, ok := p.Color(l)
		if !ok {
			t.Fatalf("no colour for %q", l)
		}
		if c.A != 255 {
			t.Fatalf("colour for %q not opaque", l)
		}
		if seen[c] {
			t.Fatalf("duplicate colour for %q", l)
		}
		seen[c] = true
		back, ok := p.Label(c)
		if !ok || back != l {
			t.Fatalf("label round trip failed for %q", l)
		}
	}
}

func TestPaletteErrors(t *testing.T) {
	if _, err := NewPalette([]string{"a", "a"}); err == nil {
		t.Error("duplicate labels accepted")
	}
	if _, err := NewPalette([]string{""}); err == nil {
		t.Error("empty label accepted")
	}
}

func TestRenderExtractRoundTrip(t *testing.T) {
	// Non-overlapping objects: extraction must recover every MBR exactly.
	img := core.NewImage(40, 30,
		core.Object{Label: "house", Box: core.NewRect(2, 3, 10, 12)},
		core.Object{Label: "tree", Box: core.NewRect(15, 5, 20, 25)},
		core.Object{Label: "car", Box: core.NewRect(25, 1, 38, 8)},
	)
	p, err := NewPalette(img.Labels())
	if err != nil {
		t.Fatal(err)
	}
	raster, err := Render(img, p)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	back, err := ExtractImage(raster, p, img.XMax, img.YMax)
	if err != nil {
		t.Fatalf("ExtractImage: %v", err)
	}
	if len(back.Objects) != 3 {
		t.Fatalf("extracted %d objects, want 3", len(back.Objects))
	}
	for _, o := range img.Objects {
		got, ok := back.Find(o.Label)
		if !ok {
			t.Fatalf("object %q lost in round trip", o.Label)
		}
		if got.Box != o.Box {
			t.Errorf("object %q: box %v, want %v", o.Label, got.Box, o.Box)
		}
	}
	// The full pipeline: BE-strings must agree too.
	if !core.MustConvert(back).Equal(core.MustConvert(img)) {
		t.Error("BE-string differs after raster round trip")
	}
}

func TestRenderExtractRandomScenesDisjoint(t *testing.T) {
	// Grid scenes are non-overlapping, so round trips are exact.
	g := workload.NewGenerator(workload.Config{Seed: 4, Width: 60, Height: 60, Vocabulary: 64})
	img := g.GridScene(4, 4)
	p, err := NewPalette(img.Labels())
	if err != nil {
		t.Fatal(err)
	}
	raster, err := Render(img, p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ExtractImage(raster, p, img.XMax, img.YMax)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Objects) != len(img.Objects) {
		t.Fatalf("extracted %d objects, want %d", len(back.Objects), len(img.Objects))
	}
	for _, o := range img.Objects {
		got, _ := back.Find(o.Label)
		if got.Box != o.Box {
			t.Errorf("object %q: box %v, want %v", o.Label, got.Box, o.Box)
		}
	}
}

func TestOcclusionShrinksOrHidesObjects(t *testing.T) {
	// B paints completely over A: A must disappear from extraction.
	img := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(5, 5, 8, 8)},
		core.Object{Label: "B", Box: core.NewRect(4, 4, 9, 9)},
	)
	p, err := NewPalette(img.Labels())
	if err != nil {
		t.Fatal(err)
	}
	raster, err := Render(img, p)
	if err != nil {
		t.Fatal(err)
	}
	objs, err := Extract(raster, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].Label != "B" {
		t.Errorf("extracted %v, want only B (A occluded)", objs)
	}
}

func TestRenderErrors(t *testing.T) {
	p, err := NewPalette([]string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Render(core.NewImage(10, 10), p); err == nil {
		t.Error("invalid image accepted")
	}
	img := core.NewImage(10, 10, core.Object{Label: "Z", Box: core.NewRect(0, 0, 2, 2)})
	if _, err := Render(img, p); err == nil {
		t.Error("label missing from palette accepted")
	}
}

func TestExtractNil(t *testing.T) {
	p, _ := NewPalette([]string{"A"})
	if _, err := Extract(nil, p); err == nil {
		t.Error("nil raster accepted")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	img := core.Figure1Image()
	p, err := NewPalette(img.Labels())
	if err != nil {
		t.Fatal(err)
	}
	raster, err := Render(img, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePNG(&buf, raster); err != nil {
		t.Fatalf("EncodePNG: %v", err)
	}
	decoded, err := DecodePNG(&buf)
	if err != nil {
		t.Fatalf("DecodePNG: %v", err)
	}
	back, err := ExtractImage(decoded, p, img.XMax, img.YMax)
	if err != nil {
		t.Fatal(err)
	}
	// C overlaps A and B in Figure 1; every label still present (C painted
	// last, A and B only partially covered).
	for _, l := range []string{"A", "B", "C"} {
		if _, ok := back.Find(l); !ok {
			t.Errorf("object %q lost in PNG round trip", l)
		}
	}
}

func TestASCIIRendering(t *testing.T) {
	img := core.NewImage(10, 10,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 4, 4)},
		core.Object{Label: "B", Box: core.NewRect(6, 6, 9, 9)},
	)
	art := ASCII(img, 20, 10)
	if art == "" {
		t.Fatal("empty ASCII art")
	}
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("lines = %d, want 10", len(lines))
	}
	// A occupies the bottom-left (last lines), B the upper-right. With
	// floor scaling, B's top edge (y=9 of ymax=10) lands on grid row 8,
	// which prints as the second line from the top.
	if !strings.Contains(lines[len(lines)-1], "A") {
		t.Error("bottom row should contain A")
	}
	if !strings.Contains(lines[1], "B") {
		t.Error("second row should contain B")
	}
	if strings.Contains(lines[0], "A") || strings.Contains(lines[1], "A") {
		t.Error("top rows should not contain A")
	}
	if ASCII(core.Image{}, 10, 10) != "" {
		t.Error("degenerate canvas should yield empty art")
	}
}
