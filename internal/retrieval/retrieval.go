// Package retrieval evaluates ranking quality for the similarity-retrieval
// experiments (E5): it builds seeded ground-truth workloads (a database of
// scenes with planted relevant variants of a query), runs any imagedb
// scorer over them, and reports standard retrieval metrics.
package retrieval

import (
	"context"
	"fmt"
	"sort"

	"bestring/internal/core"
	"bestring/internal/imagedb"
	"bestring/internal/workload"
)

// Metrics summarises one ranked result list against a relevance set.
type Metrics struct {
	PrecisionAtK float64 // fraction of the top k that is relevant
	RecallAtK    float64 // fraction of relevant found in the top k
	MRR          float64 // reciprocal rank of the first relevant result
	AP           float64 // average precision over the full ranking
}

// Evaluate computes metrics for a ranked id list against the relevant set.
// k bounds the precision/recall cutoff (k <= 0 means len(ranked)).
func Evaluate(ranked []string, relevant map[string]bool, k int) Metrics {
	if k <= 0 || k > len(ranked) {
		k = len(ranked)
	}
	var m Metrics
	if len(relevant) == 0 || len(ranked) == 0 {
		return m
	}
	hitsAtK := 0
	for _, id := range ranked[:k] {
		if relevant[id] {
			hitsAtK++
		}
	}
	m.PrecisionAtK = float64(hitsAtK) / float64(k)
	m.RecallAtK = float64(hitsAtK) / float64(len(relevant))

	hits := 0
	sumPrec := 0.0
	for i, id := range ranked {
		if !relevant[id] {
			continue
		}
		hits++
		if hits == 1 {
			m.MRR = 1 / float64(i+1)
		}
		sumPrec += float64(hits) / float64(i+1)
	}
	if hits > 0 {
		m.AP = sumPrec / float64(len(relevant))
	}
	return m
}

// Mean averages a metrics slice field-wise.
func Mean(ms []Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{}
	}
	var sum Metrics
	for _, m := range ms {
		sum.PrecisionAtK += m.PrecisionAtK
		sum.RecallAtK += m.RecallAtK
		sum.MRR += m.MRR
		sum.AP += m.AP
	}
	n := float64(len(ms))
	return Metrics{
		PrecisionAtK: sum.PrecisionAtK / n,
		RecallAtK:    sum.RecallAtK / n,
		MRR:          sum.MRR / n,
		AP:           sum.AP / n,
	}
}

// WorkloadConfig parameterises a planted-relevance benchmark.
type WorkloadConfig struct {
	Seed        int64
	Distractors int // unrelated scenes in the database
	Relevant    int // planted variants of each query's base scene
	Queries     int // number of query rounds
	QueryKeep   int // objects kept in each subset query
	Jitter      int // MBR jitter applied to planted variants
	K           int // ranking cutoff
	Vocabulary  int
	Objects     int
}

// withDefaults fills zero fields with the E5 defaults.
func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Distractors == 0 {
		c.Distractors = 60
	}
	if c.Relevant == 0 {
		c.Relevant = 4
	}
	if c.Queries == 0 {
		c.Queries = 10
	}
	if c.QueryKeep == 0 {
		c.QueryKeep = 4
	}
	if c.K == 0 {
		c.K = c.Relevant
	}
	if c.Vocabulary == 0 {
		c.Vocabulary = 40
	}
	if c.Objects == 0 {
		c.Objects = 8
	}
	return c
}

// Workload is a materialised benchmark: a populated database plus query
// rounds with known relevance.
type Workload struct {
	DB     *imagedb.DB
	Rounds []Round
	Config WorkloadConfig
}

// Round is one query with its ground truth.
type Round struct {
	Query    core.Image
	Relevant map[string]bool
}

// BuildWorkload constructs the benchmark deterministically from the seed.
// For each query round a base scene is generated; Relevant jittered
// variants of it are planted in the database among Distractors unrelated
// scenes; the query is a QueryKeep-object subset of the base scene. The
// planted variants (not the base itself) form the relevance set, so a
// method must generalise over both missing objects and perturbed MBRs.
func BuildWorkload(cfg WorkloadConfig) (*Workload, error) {
	cfg = cfg.withDefaults()
	gen := workload.NewGenerator(workload.Config{
		Seed:       cfg.Seed,
		Vocabulary: cfg.Vocabulary,
		Objects:    cfg.Objects,
	})
	db := imagedb.New()
	w := &Workload{DB: db, Config: cfg}

	for _, img := range gen.Dataset(cfg.Distractors) {
		id := fmt.Sprintf("distractor%04d", db.Len())
		if err := db.Insert(id, "distractor", img); err != nil {
			return nil, fmt.Errorf("build workload: %w", err)
		}
	}
	for qi := 0; qi < cfg.Queries; qi++ {
		base := gen.Scene()
		relevant := make(map[string]bool, cfg.Relevant)
		for v := 0; v < cfg.Relevant; v++ {
			variant := gen.JitterQuery(base, cfg.Jitter)
			id := fmt.Sprintf("q%02d-variant%02d", qi, v)
			if err := db.Insert(id, "planted", variant); err != nil {
				return nil, fmt.Errorf("build workload: %w", err)
			}
			relevant[id] = true
		}
		w.Rounds = append(w.Rounds, Round{
			Query:    gen.SubsetQuery(base, cfg.QueryKeep),
			Relevant: relevant,
		})
	}
	return w, nil
}

// Run executes every round with the scorer and returns the mean metrics.
func (w *Workload) Run(ctx context.Context, scorer imagedb.Scorer) (Metrics, error) {
	ms := make([]Metrics, 0, len(w.Rounds))
	for i, round := range w.Rounds {
		results, err := w.DB.Search(ctx, round.Query, imagedb.SearchOptions{Scorer: scorer})
		if err != nil {
			return Metrics{}, fmt.Errorf("run round %d: %w", i, err)
		}
		ranked := make([]string, len(results))
		for j, r := range results {
			ranked[j] = r.ID
		}
		ms = append(ms, Evaluate(ranked, round.Relevant, w.Config.K))
	}
	return Mean(ms), nil
}

// MethodResult pairs a method name with its mean metrics, for tables.
type MethodResult struct {
	Method string
	Metrics
}

// RunMethods evaluates several named scorers on the same workload and
// returns rows sorted by method name.
func (w *Workload) RunMethods(ctx context.Context, methods map[string]imagedb.Scorer) ([]MethodResult, error) {
	out := make([]MethodResult, 0, len(methods))
	for name, scorer := range methods {
		m, err := w.Run(ctx, scorer)
		if err != nil {
			return nil, fmt.Errorf("method %s: %w", name, err)
		}
		out = append(out, MethodResult{Method: name, Metrics: m})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Method < out[j].Method })
	return out, nil
}
