package retrieval

import (
	"context"
	"math"
	"testing"

	"bestring/internal/baseline/typesim"
	"bestring/internal/imagedb"
)

func TestEvaluateKnownRanking(t *testing.T) {
	ranked := []string{"a", "b", "c", "d", "e"}
	relevant := map[string]bool{"b": true, "e": true}
	m := Evaluate(ranked, relevant, 2)
	if m.PrecisionAtK != 0.5 {
		t.Errorf("P@2 = %v, want 0.5", m.PrecisionAtK)
	}
	if m.RecallAtK != 0.5 {
		t.Errorf("R@2 = %v, want 0.5", m.RecallAtK)
	}
	if m.MRR != 0.5 {
		t.Errorf("MRR = %v, want 0.5 (first hit at rank 2)", m.MRR)
	}
	// AP = (1/2 + 2/5)/2 = 0.45
	if math.Abs(m.AP-0.45) > 1e-9 {
		t.Errorf("AP = %v, want 0.45", m.AP)
	}
}

func TestEvaluatePerfectRanking(t *testing.T) {
	ranked := []string{"r1", "r2", "x", "y"}
	relevant := map[string]bool{"r1": true, "r2": true}
	m := Evaluate(ranked, relevant, 2)
	if m.PrecisionAtK != 1 || m.RecallAtK != 1 || m.MRR != 1 || m.AP != 1 {
		t.Errorf("perfect ranking metrics = %+v, want all 1", m)
	}
}

func TestEvaluateNoRelevant(t *testing.T) {
	m := Evaluate([]string{"a"}, nil, 1)
	if m != (Metrics{}) {
		t.Errorf("no relevant: %+v, want zeros", m)
	}
	m = Evaluate(nil, map[string]bool{"a": true}, 1)
	if m != (Metrics{}) {
		t.Errorf("empty ranking: %+v, want zeros", m)
	}
}

func TestEvaluateKDefaults(t *testing.T) {
	ranked := []string{"a", "b"}
	relevant := map[string]bool{"a": true}
	if got := Evaluate(ranked, relevant, 0); got.PrecisionAtK != 0.5 {
		t.Errorf("k=0 should use full list: P = %v, want 0.5", got.PrecisionAtK)
	}
	if got := Evaluate(ranked, relevant, 99); got.PrecisionAtK != 0.5 {
		t.Errorf("k>len should clamp: P = %v, want 0.5", got.PrecisionAtK)
	}
}

func TestMean(t *testing.T) {
	ms := []Metrics{
		{PrecisionAtK: 1, RecallAtK: 0, MRR: 1, AP: 0.5},
		{PrecisionAtK: 0, RecallAtK: 1, MRR: 0, AP: 0.5},
	}
	got := Mean(ms)
	want := Metrics{PrecisionAtK: 0.5, RecallAtK: 0.5, MRR: 0.5, AP: 0.5}
	if got != want {
		t.Errorf("Mean = %+v, want %+v", got, want)
	}
	if Mean(nil) != (Metrics{}) {
		t.Error("Mean(nil) should be zeros")
	}
}

func TestBuildWorkloadShape(t *testing.T) {
	w, err := BuildWorkload(WorkloadConfig{Seed: 3, Distractors: 10, Relevant: 2, Queries: 3, QueryKeep: 3})
	if err != nil {
		t.Fatalf("BuildWorkload: %v", err)
	}
	if got := w.DB.Len(); got != 10+3*2 {
		t.Errorf("db size = %d, want 16", got)
	}
	if len(w.Rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(w.Rounds))
	}
	for i, r := range w.Rounds {
		if len(r.Relevant) != 2 {
			t.Errorf("round %d: relevant = %d, want 2", i, len(r.Relevant))
		}
		if len(r.Query.Objects) != 3 {
			t.Errorf("round %d: query objects = %d, want 3", i, len(r.Query.Objects))
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	cfg := WorkloadConfig{Seed: 9, Distractors: 8, Relevant: 2, Queries: 2}
	w1, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := BuildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := w1.Run(context.Background(), imagedb.BEScorer())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := w2.Run(context.Background(), imagedb.BEScorer())
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("same seed produced different metrics: %+v vs %+v", m1, m2)
	}
}

func TestBEScorerFindsPlantedVariants(t *testing.T) {
	// With exact planted copies (no jitter) and full queries, the BE
	// scorer must achieve perfect MRR.
	w, err := BuildWorkload(WorkloadConfig{
		Seed: 7, Distractors: 30, Relevant: 3, Queries: 5, QueryKeep: 8, Jitter: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := w.Run(context.Background(), imagedb.BEScorer())
	if err != nil {
		t.Fatal(err)
	}
	if m.MRR != 1 {
		t.Errorf("MRR = %v, want 1 for exact planted copies", m.MRR)
	}
	if m.PrecisionAtK < 0.99 {
		t.Errorf("P@k = %v, want ~1", m.PrecisionAtK)
	}
}

func TestPartialQueriesStillRank(t *testing.T) {
	// The paper's headline scenario: subset queries with jittered variants.
	// BE-LCS must still place relevant images well above random. Random
	// MRR over ~42 images would be ~0.1.
	w, err := BuildWorkload(WorkloadConfig{
		Seed: 21, Distractors: 30, Relevant: 3, Queries: 6, QueryKeep: 4, Jitter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := w.Run(context.Background(), imagedb.BEScorer())
	if err != nil {
		t.Fatal(err)
	}
	if m.MRR < 0.5 {
		t.Errorf("MRR = %v, want >= 0.5 (partial queries must still retrieve)", m.MRR)
	}
}

func TestRunMethodsProducesAllRows(t *testing.T) {
	w, err := BuildWorkload(WorkloadConfig{Seed: 2, Distractors: 8, Relevant: 2, Queries: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := w.RunMethods(context.Background(), map[string]imagedb.Scorer{
		"be-lcs": imagedb.BEScorer(),
		"type-0": imagedb.TypeSimScorer(typesim.Type0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Method != "be-lcs" || rows[1].Method != "type-0" {
		t.Errorf("rows = %+v", rows)
	}
}

func TestRunCancelled(t *testing.T) {
	w, err := BuildWorkload(WorkloadConfig{Seed: 2, Distractors: 5, Relevant: 1, Queries: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.Run(ctx, imagedb.BEScorer()); err == nil {
		t.Error("cancelled run should fail")
	}
}
