// Package workload generates the synthetic symbolic-image datasets and
// query workloads used by the experiments and examples. The paper evaluated
// on a hand-collected demo image set (section 5); since the 2D BE-string
// model consumes only labelled MBRs, seeded generators with controllable
// object count, vocabulary, density and perturbation exercise the identical
// code paths reproducibly (see DESIGN.md, substitutions).
package workload

import (
	"fmt"
	"math/rand"

	"bestring/internal/core"
)

// Config parameterises scene generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Width and Height are the canvas size (XMax, YMax). Default 100x100.
	Width  int
	Height int
	// Objects is the number of icon objects per scene. Default 8.
	Objects int
	// Vocabulary is the number of distinct icon classes to draw labels
	// from. Labels are "icon00".."iconNN". Objects within one scene get
	// distinct instance labels by suffixing when a class repeats would
	// collide; see Generator.Scene. Default 16.
	Vocabulary int
	// MaxExtent bounds each object's width/height. Default: canvas/4.
	MaxExtent int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width = 100
	}
	if c.Height == 0 {
		c.Height = 100
	}
	if c.Objects == 0 {
		c.Objects = 8
	}
	if c.Vocabulary == 0 {
		c.Vocabulary = 16
	}
	if c.MaxExtent == 0 {
		c.MaxExtent = max(c.Width, c.Height) / 4
		if c.MaxExtent < 1 {
			c.MaxExtent = 1
		}
	}
	return c
}

// Generator produces scenes and query perturbations from a seeded stream.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator returns a generator for the config (zero fields defaulted).
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// ClassLabel returns the label of icon class i ("icon03").
func ClassLabel(i int) string { return fmt.Sprintf("icon%02d", i) }

// Scene generates one random scene. Each object draws an icon class from
// the vocabulary without replacement within the scene (scenes never repeat
// a class, keeping labels unique as the model requires); if Objects exceeds
// Vocabulary, the object count is capped at the vocabulary size.
func (g *Generator) Scene() core.Image {
	n := g.cfg.Objects
	if n > g.cfg.Vocabulary {
		n = g.cfg.Vocabulary
	}
	classes := g.rng.Perm(g.cfg.Vocabulary)[:n]
	objs := make([]core.Object, 0, n)
	for _, c := range classes {
		objs = append(objs, core.Object{Label: ClassLabel(c), Box: g.randomBox()})
	}
	return core.NewImage(g.cfg.Width, g.cfg.Height, objs...)
}

// SceneWithObjects generates a scene with exactly n objects, overriding
// the configured count (n is capped at the vocabulary size).
func (g *Generator) SceneWithObjects(n int) core.Image {
	saved := g.cfg.Objects
	g.cfg.Objects = n
	img := g.Scene()
	g.cfg.Objects = saved
	return img
}

// randomBox returns a random MBR within the canvas respecting MaxExtent.
func (g *Generator) randomBox() core.Rect {
	w := 1 + g.rng.Intn(g.cfg.MaxExtent)
	h := 1 + g.rng.Intn(g.cfg.MaxExtent)
	if w > g.cfg.Width {
		w = g.cfg.Width
	}
	if h > g.cfg.Height {
		h = g.cfg.Height
	}
	x0 := g.rng.Intn(g.cfg.Width - w + 1)
	y0 := g.rng.Intn(g.cfg.Height - h + 1)
	return core.NewRect(x0, y0, x0+w, y0+h)
}

// Dataset generates count scenes.
func (g *Generator) Dataset(count int) []core.Image {
	out := make([]core.Image, count)
	for i := range out {
		out[i] = g.Scene()
	}
	return out
}

// GridScene lays objects on a regular grid with one cell of padding — the
// fully-distinct-boundaries workload (the BE-string's 4n+1 worst case).
func (g *Generator) GridScene(cols, rows int) core.Image {
	cellW := g.cfg.Width / max(cols, 1)
	cellH := g.cfg.Height / max(rows, 1)
	var objs []core.Object
	idx := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if idx >= g.cfg.Vocabulary {
				break
			}
			x0 := c*cellW + 1
			y0 := r*cellH + 1
			x1 := x0 + max(cellW-2, 0)
			y1 := y0 + max(cellH-2, 0)
			if x1 > g.cfg.Width {
				x1 = g.cfg.Width
			}
			if y1 > g.cfg.Height {
				y1 = g.cfg.Height
			}
			objs = append(objs, core.Object{Label: ClassLabel(idx), Box: core.NewRect(x0, y0, x1, y1)})
			idx++
		}
	}
	return core.NewImage(g.cfg.Width, g.cfg.Height, objs...)
}

// SubsetQuery derives a partial query from a scene: keep objects of the
// scene (at least one, at most keep), preserving their boxes. This models
// the paper's "only partial of the query targets are certain" scenario.
func (g *Generator) SubsetQuery(scene core.Image, keep int) core.Image {
	if keep < 1 {
		keep = 1
	}
	if keep > len(scene.Objects) {
		keep = len(scene.Objects)
	}
	idxs := g.rng.Perm(len(scene.Objects))[:keep]
	objs := make([]core.Object, 0, keep)
	for _, i := range idxs {
		objs = append(objs, scene.Objects[i])
	}
	return core.NewImage(scene.XMax, scene.YMax, objs...)
}

// JitterQuery perturbs every object's MBR by up to amount in each
// direction (clamped to the canvas), modelling uncertain spatial
// relationships in the query.
func (g *Generator) JitterQuery(scene core.Image, amount int) core.Image {
	objs := make([]core.Object, len(scene.Objects))
	for i, o := range scene.Objects {
		b := o.Box
		dx := g.rng.Intn(2*amount+1) - amount
		dy := g.rng.Intn(2*amount+1) - amount
		nb := b.Translate(dx, dy)
		nb = clampRect(nb, scene.XMax, scene.YMax)
		objs[i] = core.Object{Label: o.Label, Box: nb}
	}
	return core.NewImage(scene.XMax, scene.YMax, objs...)
}

// RelabelQuery swaps a fraction of object labels for fresh vocabulary
// entries, producing distractor queries that should rank low.
func (g *Generator) RelabelQuery(scene core.Image, swaps int) core.Image {
	objs := make([]core.Object, len(scene.Objects))
	copy(objs, scene.Objects)
	used := make(map[string]bool, len(objs))
	for _, o := range objs {
		used[o.Label] = true
	}
	for s := 0; s < swaps && s < len(objs); s++ {
		for attempt := 0; attempt < 64; attempt++ {
			label := ClassLabel(g.rng.Intn(g.cfg.Vocabulary))
			if !used[label] {
				used[label] = true
				objs[s].Label = label
				break
			}
		}
	}
	return core.NewImage(scene.XMax, scene.YMax, objs...)
}

// TransformQuery applies a random non-identity dihedral transform and
// reports which one was applied.
func (g *Generator) TransformQuery(scene core.Image) (core.Image, core.Transform) {
	tr := core.AllTransforms[1+g.rng.Intn(len(core.AllTransforms)-1)]
	return core.ApplyToImage(scene, tr), tr
}

// clampRect shifts the rectangle back into the canvas if jitter pushed it
// out.
func clampRect(r core.Rect, xmax, ymax int) core.Rect {
	if r.X0 < 0 {
		r = r.Translate(-r.X0, 0)
	}
	if r.Y0 < 0 {
		r = r.Translate(0, -r.Y0)
	}
	if r.X1 > xmax {
		r = r.Translate(xmax-r.X1, 0)
	}
	if r.Y1 > ymax {
		r = r.Translate(0, ymax-r.Y1)
	}
	return r
}
