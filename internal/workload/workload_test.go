package workload

import (
	"testing"

	"bestring/internal/core"
)

func TestSceneIsValid(t *testing.T) {
	g := NewGenerator(Config{Seed: 1})
	for i := 0; i < 50; i++ {
		img := g.Scene()
		if err := img.Validate(); err != nil {
			t.Fatalf("scene %d invalid: %v", i, err)
		}
		if len(img.Objects) != 8 {
			t.Fatalf("scene %d: %d objects, want default 8", i, len(img.Objects))
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a := NewGenerator(Config{Seed: 42}).Dataset(5)
	b := NewGenerator(Config{Seed: 42}).Dataset(5)
	for i := range a {
		beA, beB := core.MustConvert(a[i]), core.MustConvert(b[i])
		if !beA.Equal(beB) {
			t.Fatalf("scene %d differs across same-seed generators", i)
		}
	}
	c := NewGenerator(Config{Seed: 43}).Scene()
	if core.MustConvert(a[0]).Equal(core.MustConvert(c)) {
		t.Error("different seeds produced identical first scene")
	}
}

func TestObjectsCappedAtVocabulary(t *testing.T) {
	g := NewGenerator(Config{Seed: 1, Objects: 50, Vocabulary: 5})
	img := g.Scene()
	if len(img.Objects) != 5 {
		t.Errorf("objects = %d, want capped at 5", len(img.Objects))
	}
}

func TestSceneWithObjects(t *testing.T) {
	g := NewGenerator(Config{Seed: 1, Vocabulary: 64})
	img := g.SceneWithObjects(20)
	if len(img.Objects) != 20 {
		t.Errorf("objects = %d, want 20", len(img.Objects))
	}
	// Config restored.
	if len(g.Scene().Objects) != 8 {
		t.Error("SceneWithObjects leaked its override")
	}
}

func TestGridScene(t *testing.T) {
	g := NewGenerator(Config{Seed: 1, Width: 40, Height: 40, Vocabulary: 64})
	img := g.GridScene(4, 3)
	if err := img.Validate(); err != nil {
		t.Fatalf("grid scene invalid: %v", err)
	}
	if len(img.Objects) != 12 {
		t.Errorf("grid objects = %d, want 12", len(img.Objects))
	}
	// Grid cells are pairwise disjoint.
	for i := 0; i < len(img.Objects); i++ {
		for j := i + 1; j < len(img.Objects); j++ {
			if img.Objects[i].Box.Intersects(img.Objects[j].Box) {
				t.Fatalf("grid cells %d and %d intersect", i, j)
			}
		}
	}
}

func TestSubsetQuery(t *testing.T) {
	g := NewGenerator(Config{Seed: 7})
	scene := g.Scene()
	q := g.SubsetQuery(scene, 3)
	if err := q.Validate(); err != nil {
		t.Fatalf("subset query invalid: %v", err)
	}
	if len(q.Objects) != 3 {
		t.Fatalf("subset size = %d, want 3", len(q.Objects))
	}
	for _, o := range q.Objects {
		orig, ok := scene.Find(o.Label)
		if !ok || orig.Box != o.Box {
			t.Errorf("subset object %q not copied verbatim", o.Label)
		}
	}
	// Bounds clamping.
	if got := g.SubsetQuery(scene, 0); len(got.Objects) != 1 {
		t.Error("keep<1 should clamp to 1")
	}
	if got := g.SubsetQuery(scene, 99); len(got.Objects) != len(scene.Objects) {
		t.Error("keep>n should clamp to n")
	}
}

func TestJitterQueryStaysValid(t *testing.T) {
	g := NewGenerator(Config{Seed: 7})
	for i := 0; i < 30; i++ {
		scene := g.Scene()
		q := g.JitterQuery(scene, 10)
		if err := q.Validate(); err != nil {
			t.Fatalf("jittered query invalid: %v", err)
		}
		if len(q.Objects) != len(scene.Objects) {
			t.Fatal("jitter changed object count")
		}
	}
}

func TestRelabelQueryChangesLabels(t *testing.T) {
	g := NewGenerator(Config{Seed: 7, Vocabulary: 64})
	scene := g.Scene()
	q := g.RelabelQuery(scene, 2)
	if err := q.Validate(); err != nil {
		t.Fatalf("relabelled query invalid: %v", err)
	}
	changed := 0
	for i := range q.Objects {
		if q.Objects[i].Label != scene.Objects[i].Label {
			changed++
		}
	}
	if changed != 2 {
		t.Errorf("changed labels = %d, want 2", changed)
	}
}

func TestTransformQuery(t *testing.T) {
	g := NewGenerator(Config{Seed: 7})
	scene := g.Scene()
	q, tr := g.TransformQuery(scene)
	if tr == core.Identity {
		t.Error("transform query returned identity")
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("transformed query invalid: %v", err)
	}
	if got := core.MustConvert(core.ApplyToImage(scene, tr)); !got.Equal(core.MustConvert(q)) {
		t.Error("reported transform does not reproduce the query")
	}
}

func TestClassLabel(t *testing.T) {
	if ClassLabel(3) != "icon03" || ClassLabel(42) != "icon42" {
		t.Error("ClassLabel format changed")
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := NewGenerator(Config{})
	img := g.Scene()
	if img.XMax != 100 || img.YMax != 100 {
		t.Errorf("default canvas = %dx%d, want 100x100", img.XMax, img.YMax)
	}
}
