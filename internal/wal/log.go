package wal

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bestring/internal/fsutil"
)

// Policy selects when appended records reach stable storage.
type Policy int

const (
	// SyncAlways fsyncs after every append: an acknowledged mutation
	// survives any crash. The safe default.
	SyncAlways Policy = iota
	// SyncInterval fsyncs on a background cadence: a crash may lose the
	// last Interval's worth of acknowledged mutations.
	SyncInterval
	// SyncNever leaves flushing to the OS (still synced on rotation and
	// clean Close): fastest, weakest.
	SyncNever
)

func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy reads a policy name as accepted by the -fsync flags.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want always, interval or never)", s)
}

// Default tuning.
const (
	DefaultSegmentBytes = 4 << 20
	DefaultInterval     = 100 * time.Millisecond
)

// Options tune the append side of the log.
type Options struct {
	// SegmentBytes rotates the active segment once it would exceed this
	// size (0 means DefaultSegmentBytes). A single record larger than the
	// threshold still fits: it gets a segment of its own.
	SegmentBytes int64
	// Policy is the fsync policy (zero value: SyncAlways).
	Policy Policy
	// Interval is the flush cadence under SyncInterval (0 means
	// DefaultInterval).
	Interval time.Duration
}

// Log is the append side of the write-ahead log. All methods are safe for
// concurrent use, and Append assigns strictly sequential LSNs in call
// order.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // active segment (nil after a fatal rotation failure)
	size    int64    // bytes in the active segment
	sealedN int      // sealed (non-active) segment count
	sealedB int64    // bytes across sealed segments
	nextLSN uint64
	oldest  uint64 // first LSN of the oldest retained segment
	dirty   bool   // unsynced appends (SyncInterval / SyncNever)
	// durable is the highest LSN known to be on stable storage, advanced
	// only after a successful fsync covering it (or on Open, where every
	// replayed record is by definition the recovered truth). Replication
	// ships records no further than this: a follower must never apply a
	// record the primary could still lose in a crash, or a reconnect after
	// that crash would find the follower ahead of its primary — real
	// divergence, manufactured by the protocol itself.
	durable atomic.Uint64
	// durableCh is closed and replaced each time durable advances; waiters
	// re-check and re-arm. Guarded by mu.
	durableCh chan struct{}
	// fatalErr is sticky: once a write, sync or rotation fails, the log
	// may hold a record the caller never acknowledged, and a retried
	// mutation would append a second copy that poisons replay (the first
	// applies, the duplicate fails, recovery refuses forever). Every
	// later Append/Rotate/Sync returns this error instead; the process
	// must reopen the store, whose recovery truncates or replays the
	// half-written tail deterministically.
	fatalErr error
	closed   bool

	// metrics is nil until EnableMetrics; read under mu on every append
	// path, so the disabled cost is one nil check.
	metrics *logMetrics

	stop chan struct{} // closes the SyncInterval flusher
	done chan struct{}
}

// policyMarker is the file recording which fsync policy wrote this log.
// Replay tolerance must follow the WRITING policy, not whatever the
// reopening process happens to be configured with: an always-written
// tail with mid-file damage is real corruption (every acked frame was
// fsynced in order), while the same bytes in a never-written tail are a
// plausible crash artefact. Open rewrites the marker, so it always
// describes the appends that come after the last recovery.
const policyMarker = "FSYNC"

// WrittenPolicy reports the fsync policy that produced the log in dir,
// if the marker exists and parses.
func WrittenPolicy(dir string) (Policy, bool) {
	data, err := os.ReadFile(filepath.Join(dir, policyMarker))
	if err != nil {
		return 0, false
	}
	p, err := ParsePolicy(strings.TrimSpace(string(data)))
	if err != nil {
		return 0, false
	}
	return p, true
}

// writePolicyMarker durably records the policy about to write the log.
func writePolicyMarker(dir string, p Policy) error {
	err := fsutil.AtomicWriteFile(filepath.Join(dir, policyMarker), func(w io.Writer) error {
		_, werr := fmt.Fprintln(w, p.String())
		return werr
	})
	if err != nil {
		return fmt.Errorf("wal: write policy marker: %w", err)
	}
	return nil
}

// segmentName formats the file name of a segment whose first record (if
// it ever gets one) has the given LSN.
func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstLSN)
}

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// listSegments returns the segment file names in dir sorted by their
// first-LSN name component.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded hex: lexicographic == numeric
	return names, nil
}

// Open prepares the log in dir for appending; nextLSN is the sequence
// number the next appended record must get (last replayed LSN + 1, or 1
// for a fresh log). The caller must have run Replay first so a torn tail
// is already truncated. The last existing segment is reused while it is
// below the rotation threshold; otherwise (or when the directory holds no
// segments) a new segment is created.
func Open(dir string, nextLSN uint64, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if nextLSN == 0 {
		return nil, errors.New("wal: open: nextLSN must be >= 1")
	}
	names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, nextLSN: nextLSN, durableCh: make(chan struct{})}
	// Everything already replayed is the recovered truth: durable through
	// the last existing record.
	l.durable.Store(nextLSN - 1)
	l.oldest = nextLSN
	if len(names) > 0 {
		if first, ok := parseSegmentName(names[0]); ok {
			l.oldest = first
		}
	}
	for i, name := range names {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		if i < len(names)-1 {
			l.sealedN++
			l.sealedB += info.Size()
			continue
		}
		if info.Size() < opts.SegmentBytes {
			f, err := os.OpenFile(filepath.Join(dir, name), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: open active segment: %w", err)
			}
			l.f, l.size = f, info.Size()
		} else {
			l.sealedN++
			l.sealedB += info.Size()
		}
	}
	if l.f == nil {
		if err := l.createSegmentLocked(); err != nil {
			return nil, err
		}
	}
	if err := writePolicyMarker(dir, opts.Policy); err != nil {
		l.f.Close()
		return nil, err
	}
	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flusher()
	}
	return l, nil
}

// createSegmentLocked opens a fresh active segment named after the next
// LSN and makes its directory entry durable. Callers hold l.mu (or are
// Open, before the Log is shared).
func (l *Log) createSegmentLocked() error {
	path := filepath.Join(l.dir, segmentName(l.nextLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := fsutil.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.f, l.size = f, 0
	return nil
}

// sealLocked syncs and closes the active segment, moving it to the sealed
// tally. Callers hold l.mu.
func (l *Log) sealLocked() error {
	if err := l.syncActiveLocked(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	l.sealedN++
	l.sealedB += l.size
	l.size = 0
	l.dirty = false
	l.f = nil
	// The seal's fsync makes every appended record durable, whatever the
	// policy — this is why SyncNever replication still ships sealed
	// segments.
	l.advanceDurableLocked(l.nextLSN - 1)
	return nil
}

// fail records a fatal append-path error and returns it. Callers hold
// l.mu.
func (l *Log) fail(err error) error {
	if l.fatalErr == nil {
		l.fatalErr = err
	}
	return err
}

// advanceDurableLocked records that every LSN through lsn is on stable
// storage and wakes WaitDurable callers. Callers hold l.mu and have just
// completed the fsync that covers lsn.
func (l *Log) advanceDurableLocked(lsn uint64) {
	if lsn <= l.durable.Load() {
		return
	}
	l.durable.Store(lsn)
	close(l.durableCh)
	l.durableCh = make(chan struct{})
}

// DurableLSN returns the highest LSN known to be on stable storage: the
// horizon replication may ship to followers. Under SyncAlways it tracks
// every append; under SyncInterval it advances on the background flush
// cadence; under SyncNever only on rotation, explicit Sync, or Close.
func (l *Log) DurableLSN() uint64 { return l.durable.Load() }

// ErrLogClosed reports a wait or stream cut off by Close.
var ErrLogClosed = errors.New("wal: log closed")

// WaitDurable blocks until DurableLSN() >= lsn, the context is done, or
// the log is closed.
func (l *Log) WaitDurable(ctx context.Context, lsn uint64) error {
	for {
		if l.durable.Load() >= lsn {
			return nil
		}
		l.mu.Lock()
		if l.durable.Load() >= lsn {
			l.mu.Unlock()
			return nil
		}
		if l.closed {
			l.mu.Unlock()
			return ErrLogClosed
		}
		ch := l.durableCh
		l.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// Append assigns the record the next LSN, frames it into the active
// segment (rotating first if it would overflow) and applies the fsync
// policy. It returns the assigned LSN and the framed size in bytes.
func (l *Log) Append(rec Record) (lsn uint64, n int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, errors.New("wal: append on closed log")
	}
	if l.fatalErr != nil {
		return 0, 0, l.fatalErr
	}
	m := l.metrics
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	rec.LSN = l.nextLSN
	frame, err := encodeFrame(nil, &rec)
	if err != nil {
		// Nothing reached the file: an encode failure is not fatal.
		return 0, 0, err
	}
	if l.size > 0 && l.size+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, 0, l.fail(err)
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		// The frame may be partially on disk; appending anything after it
		// would turn the torn frame into interior corruption.
		return 0, 0, l.fail(fmt.Errorf("wal: append record %d: %w", rec.LSN, err))
	}
	l.size += int64(len(frame))
	l.nextLSN++
	if l.opts.Policy == SyncAlways {
		if err := l.syncActiveLocked(); err != nil {
			// The record is written but not durable, and the caller will
			// not acknowledge it; a retry would duplicate the LSN stream.
			return 0, 0, l.fail(fmt.Errorf("wal: sync record %d: %w", rec.LSN, err))
		}
		l.advanceDurableLocked(rec.LSN)
	} else {
		l.dirty = true
	}
	if m != nil {
		m.appendSeconds.Observe(time.Since(t0).Seconds())
		m.appends.Inc()
		m.appendBytes.Add(uint64(len(frame)))
	}
	return rec.LSN, len(frame), nil
}

// AppendBatch appends pre-numbered records — each framed individually,
// rotating as usual — sharing ONE fsync under SyncAlways. It is the
// replication follower's ingestion path: the records arrive from the
// primary already carrying LSNs, so unlike Append the batch must continue
// this log's sequence exactly (recs[i].LSN == nextLSN+i) and the whole
// batch is rejected up front if it does not. All frames are encoded
// before the first byte reaches the file, so an encode failure writes
// nothing and is not fatal; a write or sync failure poisons the log
// exactly as in Append. Returns the total framed bytes.
func (l *Log) AppendBatch(recs []Record) (int, error) {
	return l.appendBatch(recs, nil)
}

// AppendBatchFrames is AppendBatch for records that arrived already
// framed — a replication stream: frames[i] must be the verified wire
// frame of recs[i], and is written verbatim, so the follower's log
// holds the primary's bytes rather than a re-encoding.
func (l *Log) AppendBatchFrames(recs []Record, frames [][]byte) (int, error) {
	if len(frames) != len(recs) {
		return 0, fmt.Errorf("wal: %d frames for %d records", len(frames), len(recs))
	}
	return l.appendBatch(recs, frames)
}

func (l *Log) appendBatch(recs []Record, frames [][]byte) (int, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: append on closed log")
	}
	if l.fatalErr != nil {
		return 0, l.fatalErr
	}
	m := l.metrics
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	for i := range recs {
		if recs[i].LSN != l.nextLSN+uint64(i) {
			return 0, fmt.Errorf("wal: batch record %d has lsn %d, want %d (batch must continue the sequence)",
				i, recs[i].LSN, l.nextLSN+uint64(i))
		}
	}
	if frames == nil {
		frames = make([][]byte, len(recs))
		for i := range recs {
			frame, err := encodeFrame(nil, &recs[i])
			if err != nil {
				return 0, err // nothing reached the file
			}
			frames[i] = frame
		}
	}
	total := 0
	for i, frame := range frames {
		if l.size > 0 && l.size+int64(len(frame)) > l.opts.SegmentBytes {
			if err := l.rotateLocked(); err != nil {
				return total, l.fail(err)
			}
		}
		if _, err := l.f.Write(frame); err != nil {
			return total, l.fail(fmt.Errorf("wal: append record %d: %w", recs[i].LSN, err))
		}
		l.size += int64(len(frame))
		l.nextLSN++
		total += len(frame)
	}
	if l.opts.Policy == SyncAlways {
		if err := l.syncActiveLocked(); err != nil {
			return total, l.fail(fmt.Errorf("wal: sync batch through %d: %w", recs[len(recs)-1].LSN, err))
		}
		l.advanceDurableLocked(recs[len(recs)-1].LSN)
	} else {
		l.dirty = true
	}
	if m != nil {
		m.appendSeconds.Observe(time.Since(t0).Seconds())
		m.appends.Add(uint64(len(recs)))
		m.appendBytes.Add(uint64(total))
	}
	return total, nil
}

// rotateLocked seals the active segment and starts a new one. Callers
// hold l.mu.
func (l *Log) rotateLocked() error {
	m := l.metrics
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	if err := l.sealLocked(); err != nil {
		return err
	}
	if err := l.createSegmentLocked(); err != nil {
		return err
	}
	if m != nil {
		m.rotateSeconds.Observe(time.Since(t0).Seconds())
		m.rotations.Inc()
	}
	return nil
}

// Rotate seals the active segment (if it has any records) and starts a
// fresh one. Checkpoints rotate before snapshotting so every record the
// snapshot covers lives in a sealed — hence prunable — segment.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: rotate on closed log")
	}
	if l.fatalErr != nil {
		return l.fatalErr
	}
	if l.size == 0 {
		return nil
	}
	if err := l.rotateLocked(); err != nil {
		return l.fail(err)
	}
	return nil
}

// Sync flushes buffered appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fatalErr != nil {
		return l.fatalErr
	}
	if l.closed || !l.dirty || l.f == nil {
		return nil
	}
	if err := l.syncActiveLocked(); err != nil {
		return l.fail(fmt.Errorf("wal: sync: %w", err))
	}
	l.dirty = false
	l.advanceDurableLocked(l.nextLSN - 1)
	return nil
}

// flusher is the SyncInterval background loop. A flush failure is sticky:
// it surfaces on the next Append rather than being silently retried,
// because an acknowledgement must never outrun the disk by more than one
// interval.
func (l *Log) flusher() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty && l.fatalErr == nil && l.f != nil {
				if err := l.syncActiveLocked(); err != nil {
					l.fatalErr = fmt.Errorf("wal: background sync: %w", err)
				} else {
					l.dirty = false
					l.advanceDurableLocked(l.nextLSN - 1)
				}
			}
			l.mu.Unlock()
		}
	}
}

// RemoveObsolete deletes sealed segments whose every record has
// LSN <= throughLSN — the segments a checkpoint at throughLSN has made
// redundant. The active segment is never removed. A sealed segment's
// coverage ends where the next segment's name begins, so only segments
// entirely behind the checkpoint go.
func (l *Log) RemoveObsolete(throughLSN uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	names, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	removed := false
	for i := 0; i+1 < len(names); i++ { // names[len-1] is the active segment
		nextFirst, ok := parseSegmentName(names[i+1])
		if !ok || nextFirst > throughLSN+1 {
			break // later segments still hold live records
		}
		path := filepath.Join(l.dir, names[i])
		info, statErr := os.Stat(path)
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: remove obsolete segment: %w", err)
		}
		l.sealedN--
		if statErr == nil {
			l.sealedB -= info.Size()
		}
		if first, ok := parseSegmentName(names[i+1]); ok {
			l.oldest = first
		}
		removed = true
	}
	if removed {
		return fsutil.SyncDir(l.dir)
	}
	return nil
}

// OldestLSN returns the first LSN of the oldest retained segment — the
// earliest point a replication stream can resume from. A follower whose
// applied LSN is below OldestLSN-1 can no longer catch up from this log
// and must be re-seeded.
func (l *Log) OldestLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.oldest
}

// Stats is a point-in-time description of the log, for monitoring.
type Stats struct {
	Segments     int    `json:"segments"`     // sealed + active
	Bytes        int64  `json:"bytes"`        // total bytes on disk
	ActiveBytes  int64  `json:"activeBytes"`  // bytes in the active segment
	SegmentBytes int64  `json:"segmentBytes"` // rotation threshold
	LastLSN      uint64 `json:"lastLSN"`      // last assigned LSN (0: none yet)
	DurableLSN   uint64 `json:"durableLSN"`   // highest fsynced LSN — the shipping horizon
	OldestLSN    uint64 `json:"oldestLSN"`    // first LSN of the oldest retained segment
	Fsync        string `json:"fsync"`        // policy name
}

// Stats reports the current shape of the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Segments:     l.sealedN + 1,
		Bytes:        l.sealedB + l.size,
		ActiveBytes:  l.size,
		SegmentBytes: l.opts.SegmentBytes,
		LastLSN:      l.nextLSN - 1,
		DurableLSN:   l.durable.Load(),
		OldestLSN:    l.oldest,
		Fsync:        l.opts.Policy.String(),
	}
}

// Close flushes and closes the log. Records appended before a clean Close
// are durable under every policy.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	// Wake WaitDurable callers so streams end promptly with ErrLogClosed.
	close(l.durableCh)
	l.durableCh = make(chan struct{})
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.done
	}
	if l.f == nil { // active segment lost to a failed rotation
		return l.fatalErr
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	l.durable.Store(l.nextLSN - 1)
	return nil
}
