package wal

import (
	"testing"
)

// TestGroupRecordRoundTrip pins the OpGroup encoding: a commit group is
// one frame with one LSN, its sub-records carry no LSNs of their own,
// and LSN continuity holds across a mix of group and plain records.
func TestGroupRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	img := testImage("A")
	group := Record{Op: OpGroup, Subs: []Record{
		{Op: OpInsert, ID: "g0", Image: &img},
		{Op: OpInsert, ID: "g1", Image: &img},
		{Op: OpDelete, ID: "g0"},
	}}
	lsn, _, err := l.Append(group)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 1 {
		t.Fatalf("group consumed lsn %d, want 1", lsn)
	}
	appendN(t, l, 2, 0) // plain records continue the sequence at 2, 3
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, last := replayAll(t, dir, 0)
	if last != 3 || len(recs) != 3 {
		t.Fatalf("replayed %d records through lsn %d, want 3 through 3", len(recs), last)
	}
	got := recs[0]
	if got.LSN != 1 || got.Op != OpGroup || len(got.Subs) != 3 {
		t.Fatalf("group came back as lsn=%d op=%q with %d subs", got.LSN, got.Op, len(got.Subs))
	}
	for i, sub := range got.Subs {
		if sub.LSN != 0 {
			t.Fatalf("sub-record %d carries lsn %d, want none", i, sub.LSN)
		}
	}
	for i, want := range []struct{ op, id string }{
		{OpInsert, "g0"}, {OpInsert, "g1"}, {OpDelete, "g0"},
	} {
		if got.Subs[i].Op != want.op || got.Subs[i].ID != want.id {
			t.Fatalf("sub-record %d = %s %q, want %s %q",
				i, got.Subs[i].Op, got.Subs[i].ID, want.op, want.id)
		}
	}

	// Inspection counts the group as one record of op "group".
	infos, err := Inspect(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, info := range infos {
		total += info.Records
	}
	if total != 3 {
		t.Fatalf("inspect found %d records, want 3", total)
	}
}
