package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bestring/internal/core"
)

// testImage is a minimal valid image for record payloads.
func testImage(label string) core.Image {
	return core.NewImage(4, 4, core.Object{Label: label, Box: core.NewRect(0, 0, 1, 1)})
}

func appendN(t *testing.T, l *Log, n int, startID int) {
	t.Helper()
	for i := 0; i < n; i++ {
		img := testImage("A")
		rec := Record{Op: OpInsert, ID: fmt.Sprintf("img%04d", startID+i), Image: &img}
		if _, _, err := l.Append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

func replayAll(t *testing.T, dir string, after uint64) (recs []Record, last uint64) {
	t.Helper()
	last, err := Replay(dir, after, false, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, last
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	img := testImage("A")
	obj := core.Object{Label: "B", Box: core.NewRect(1, 1, 2, 2)}
	in := []Record{
		{Op: OpInsert, ID: "a", Name: "first", Image: &img},
		{Op: OpInsertObject, ID: "a", Object: &obj},
		{Op: OpDeleteObject, ID: "a", Label: "B"},
		{Op: OpBulk, Items: []BulkItem{{ID: "b", Image: testImage("C")}, {ID: "c", Image: testImage("D")}}},
		{Op: OpDelete, ID: "c"},
	}
	for i, rec := range in {
		lsn, n, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) || n <= frameHeaderLen {
			t.Fatalf("append %d: lsn=%d n=%d", i, lsn, n)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, last := replayAll(t, dir, 0)
	if last != 5 || len(recs) != 5 {
		t.Fatalf("last=%d records=%d, want 5/5", last, len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Op != in[i].Op || r.ID != in[i].ID {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	if len(recs[3].Items) != 2 || recs[3].Items[0].ID != "b" {
		t.Fatalf("bulk items not preserved: %+v", recs[3].Items)
	}
	// afterLSN skips covered records but still reports the last LSN.
	recs, last = replayAll(t, dir, 3)
	if last != 5 || len(recs) != 2 || recs[0].LSN != 4 {
		t.Fatalf("after=3: last=%d records=%+v", last, recs)
	}
}

func TestRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20, 0)
	if s := l.Stats(); s.Segments < 3 {
		t.Fatalf("expected rotation at 256 bytes, got %d segments", s.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, last := replayAll(t, dir, 0)
	if last != 20 || len(recs) != 20 {
		t.Fatalf("replay after rotation: last=%d n=%d", last, len(recs))
	}
	// Reopen for append and continue the sequence.
	l, err = Open(dir, last+1, Options{Policy: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, last = replayAll(t, dir, 0)
	if last != 25 || len(recs) != 25 {
		t.Fatalf("replay after reopen: last=%d n=%d", last, len(recs))
	}
}

// lastSegment returns the path of the highest-named segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := listSegments(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	return filepath.Join(dir, names[len(names)-1])
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the final record short by 5 bytes: torn write.
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, last := replayAll(t, dir, 0)
	if last != 2 || len(recs) != 2 {
		t.Fatalf("torn tail: last=%d n=%d, want 2/2", last, len(recs))
	}
	// The tail must have been truncated in place so appends can resume.
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := info.Size(), int64(len(data)-len(frameOf(t, data, 2))); got != want {
		t.Fatalf("truncated size %d, want %d", got, want)
	}
	l, err = Open(dir, last+1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 99)
	l.Close()
	recs, last = replayAll(t, dir, 0)
	if last != 3 || recs[2].ID != "img0099" {
		t.Fatalf("append after truncation: last=%d recs=%+v", last, recs)
	}
}

// frameOf returns the bytes of the idx-th (0-based) frame in data.
func frameOf(t *testing.T, data []byte, idx int) []byte {
	t.Helper()
	off := 0
	for i := 0; ; i++ {
		if off+frameHeaderLen > len(data) {
			t.Fatalf("frame %d out of range", idx)
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		end := off + frameHeaderLen + length
		if i == idx {
			return data[off:end]
		}
		off = end
	}
}

func TestInteriorCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the FIRST record: a bad checksum with more
	// log after it cannot be a torn write.
	data[frameHeaderLen+4] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, 0, false, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Offset != 0 || ce.Reason != "checksum mismatch" {
		t.Fatalf("unexpected corruption detail: %+v", ce)
	}
}

func TestCorruptionInNonFinalSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 12, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := listSegments(dir)
	if err != nil || len(names) < 2 {
		t.Fatalf("need >=2 segments, got %v (%v)", names, err)
	}
	// Truncate the FIRST segment: even a clean-looking cut is corruption
	// when later segments exist.
	seg := filepath.Join(dir, names[0])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, 0, false, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
}

func TestMissingRecordsGapRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 12, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := listSegments(dir)
	if len(names) < 2 {
		t.Fatalf("need >=2 segments, got %v", names)
	}
	if err := os.Remove(filepath.Join(dir, names[0])); err != nil {
		t.Fatal(err)
	}
	// The snapshot (afterLSN 0) does not cover the removed records.
	if _, err := Replay(dir, 0, false, nil); err == nil {
		t.Fatal("expected a missing-records error")
	}
}

func TestRemoveObsolete(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 12, 0)
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	names, _ := listSegments(dir)
	sealed := len(names) - 1
	if sealed < 2 {
		t.Fatalf("need >=2 sealed segments, got %d", sealed)
	}
	last := l.Stats().LastLSN
	if err := l.RemoveObsolete(last); err != nil {
		t.Fatal(err)
	}
	names, _ = listSegments(dir)
	if len(names) != 1 {
		t.Fatalf("want only the active segment left, got %v", names)
	}
	// Replay from a snapshot at `last` still works over the empty tail.
	recs, gotLast := replayAll(t, dir, last)
	if len(recs) != 0 || gotLast != last {
		t.Fatalf("replay after prune: recs=%d last=%d", len(recs), gotLast)
	}
	// And appending continues the sequence.
	appendN(t, l, 1, 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, gotLast = replayAll(t, dir, last)
	if len(recs) != 1 || gotLast != last+1 {
		t.Fatalf("append after prune: recs=%d last=%d", len(recs), gotLast)
	}
}

func TestRemoveObsoletePartial(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 12, 0)
	names, _ := listSegments(dir)
	if len(names) < 3 {
		t.Fatalf("need >=3 segments, got %v", names)
	}
	// A checkpoint covering only the first segment must leave the rest.
	secondFirst, _ := parseSegmentName(names[1])
	if err := l.RemoveObsolete(secondFirst - 1); err != nil {
		t.Fatal(err)
	}
	got, _ := listSegments(dir)
	if len(got) != len(names)-1 || got[0] != names[1] {
		t.Fatalf("partial prune: had %v, got %v", names, got)
	}
	l.Close()
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		dirty := l.dirty
		l.mu.Unlock()
		if !dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, last := replayAll(t, dir, 0); last != 3 {
		t.Fatalf("last=%d, want 3", last)
	}
}

func TestInspectReadOnly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 12, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	count := 0
	infos, err := Inspect(dir, func(Record) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	tail := infos[len(infos)-1]
	if tail.TornBytes == 0 {
		t.Fatalf("expected torn tail reported: %+v", tail)
	}
	// Inspect must not repair anything.
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(len(data)-2) {
		t.Fatal("Inspect modified the segment")
	}
	total := 0
	for _, si := range infos {
		total += si.Records
	}
	if total != count || count != 11 {
		t.Fatalf("records: infos=%d callback=%d, want 11", total, count)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

// TestTolerantTailTruncatesMidFileDamage pins the relaxed-policy rule:
// a log written without per-record fsync can, after a crash, hold a bad
// frame with valid-looking bytes after it in the final segment (page
// writeback is unordered for unsynced data). Tolerant replay must treat
// that as the end of the log and truncate, where strict replay refuses.
func TestTolerantTailTruncatesMidFileDamage(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Damage record 3 of 4: bytes follow the bad frame.
	start := len(frameOf(t, data, 0)) + len(frameOf(t, data, 1))
	data[start+frameHeaderLen+2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Strict replay refuses...
	if _, err := Replay(dir, 0, false, nil); err == nil {
		t.Fatal("strict replay accepted mid-file damage")
	}
	// ...tolerant replay ends the log at the bad frame and truncates.
	var recs []Record
	last, err := Replay(dir, 0, true, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("tolerant replay: %v", err)
	}
	if last != 2 || len(recs) != 2 {
		t.Fatalf("tolerant replay kept last=%d n=%d, want 2/2", last, len(recs))
	}
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(start) {
		t.Fatalf("size %d after truncation, want %d", info.Size(), start)
	}
	// Damage in a NON-final segment stays fatal even in tolerant mode.
	dir2 := t.TempDir()
	l, err = Open(dir2, 1, Options{Policy: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 12, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := listSegments(dir2)
	first := filepath.Join(dir2, names[0])
	data, err = os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderLen+2] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := Replay(dir2, 0, true, nil); !errors.As(err, &ce) {
		t.Fatalf("tolerant replay forgave a sealed segment: %v", err)
	}
}
