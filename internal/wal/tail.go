package wal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrGone reports a tail position that has been pruned: the segment
// holding the next record was removed by a checkpoint, so the stream
// cannot resume from here and the consumer must be re-seeded from a
// snapshot.
var ErrGone = errors.New("wal: requested records pruned")

// errSegmentRace is an internal retry signal: the segment picked from a
// directory listing vanished (pruned) before it could be opened. The
// next resolution pass either finds the records elsewhere or reports
// ErrGone for real.
var errSegmentRace = errors.New("wal: segment removed during open")

// Tailer streams the records of a live log in LSN order, starting after
// a given position: sealed segments first, then the open segment,
// blocking in Next until new records become durable. It reads only up to
// the durable horizon (DurableLSN), never into appended-but-unsynced
// bytes — see the durable field's comment for why replication must not
// outrun the disk.
//
// A Tailer is owned by one goroutine; cancel the context passed to Next
// to stop it, then Close to release the open segment.
type Tailer struct {
	l     *Log
	next  uint64 // LSN the next call to Next will deliver
	f     *os.File
	off   int64
	hdr   [frameHeaderLen]byte
	buf   []byte
	frame []byte // last assembled wire frame, reused by NextRaw
}

// Tail returns a Tailer positioned after afterLSN: the first Next
// delivers afterLSN+1. Pass 0 to stream from the beginning of the
// retained log.
func (l *Log) Tail(afterLSN uint64) *Tailer {
	return &Tailer{l: l, next: afterLSN + 1}
}

// NextLSN returns the LSN the next call to Next will deliver.
func (t *Tailer) NextLSN() uint64 { return t.next }

// Next returns the next record in LSN order, blocking until it is
// durable. It returns ErrGone if the position was pruned, ErrLogClosed
// if the log shut down, or the context error on cancellation.
func (t *Tailer) Next(ctx context.Context) (Record, error) {
	_, payload, err := t.nextPayload(ctx)
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, &CorruptError{Segment: t.f.Name(), Offset: t.off,
			Reason: fmt.Sprintf("undecodable payload: %v", err)}
	}
	return rec, nil
}

// NextRaw returns the LSN and verified wire frame of the next record
// exactly as stored (length, CRC32C, JSON payload), without decoding
// the payload — a replication server forwards these bytes untouched,
// which keeps the per-record CPU to a CRC and an LSN scan and
// guarantees the follower logs the primary's bytes verbatim. The slice
// is only valid until the following Next/NextRaw call.
func (t *Tailer) NextRaw(ctx context.Context) (uint64, []byte, error) {
	lsn, payload, err := t.nextPayload(ctx)
	if err != nil {
		return 0, nil, err
	}
	t.frame = append(append(t.frame[:0], t.hdr[:]...), payload...)
	return lsn, t.frame, nil
}

// nextPayload advances to the next in-sequence frame and returns its
// LSN and CRC-verified payload (a view into the Tailer's buffer).
func (t *Tailer) nextPayload(ctx context.Context) (uint64, []byte, error) {
	for {
		if err := t.l.WaitDurable(ctx, t.next); err != nil {
			return 0, nil, err
		}
		if t.f == nil {
			if err := t.open(); err != nil {
				if errors.Is(err, errSegmentRace) {
					continue
				}
				return 0, nil, err
			}
		}
		payload, n, err := t.readFrame()
		if errors.Is(err, io.EOF) {
			// The durable record t.next is not in this segment, so the
			// writer rotated past it: re-resolve which segment holds it.
			// (Durability is checked before the read, and a frame's write
			// completes before its LSN can become durable, so EOF here can
			// never mean "not written yet".)
			t.closeFile()
			continue
		}
		if err != nil {
			return 0, nil, err
		}
		lsn, ok := peekLSN(payload)
		if !ok {
			return 0, nil, &CorruptError{Segment: t.f.Name(), Offset: t.off,
				Reason: "undecodable payload: no lsn"}
		}
		t.off += int64(n)
		if lsn < t.next {
			continue // skipping already-consumed records at the segment head
		}
		if lsn != t.next {
			return 0, nil, &CorruptError{Segment: t.f.Name(), Offset: t.off - int64(n),
				Reason: fmt.Sprintf("lsn %d breaks tail sequence (want %d)", lsn, t.next)}
		}
		t.next++
		return lsn, payload, nil
	}
}

// peekLSN extracts a record's LSN without decoding the payload. Every
// frame this log writes begins `{"lsn":N` — encoding/json emits struct
// fields in declaration order — so a byte scan suffices; anything else
// (hand-crafted or future encodings) falls back to a minimal decode.
func peekLSN(payload []byte) (uint64, bool) {
	const prefix = `{"lsn":`
	if len(payload) > len(prefix) && string(payload[:len(prefix)]) == prefix {
		v, i, ok := uint64(0), len(prefix), false
		for ; i < len(payload); i++ {
			c := payload[i]
			if c < '0' || c > '9' {
				break
			}
			v = v*10 + uint64(c-'0')
			ok = true
		}
		if ok && i < len(payload) && (payload[i] == ',' || payload[i] == '}') {
			return v, true
		}
	}
	var hdr struct {
		LSN uint64 `json:"lsn"`
	}
	if json.Unmarshal(payload, &hdr) != nil {
		return 0, false
	}
	return hdr.LSN, true
}

// open resolves and opens the segment holding record t.next. Records
// live in the segment with the greatest first-LSN name <= their LSN.
func (t *Tailer) open() error {
	l := t.l
	l.mu.Lock()
	oldest := l.oldest
	l.mu.Unlock()
	if t.next < oldest {
		return ErrGone
	}
	names, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	pick := ""
	for _, name := range names {
		first, ok := parseSegmentName(name)
		if !ok || first > t.next {
			break
		}
		pick = name
	}
	if pick == "" {
		return ErrGone
	}
	f, err := os.Open(filepath.Join(l.dir, pick))
	if err != nil {
		if os.IsNotExist(err) {
			return errSegmentRace // pruned between list and open
		}
		return fmt.Errorf("wal: tail open segment: %w", err)
	}
	t.f, t.off = f, 0
	return nil
}

// readFrame reads and CRC-verifies the frame at t.off, returning its
// payload (undecoded). io.EOF means the segment ends before a complete
// frame — for a Tailer that always signals rotation, never a torn
// write, because it only reads below the durable horizon.
func (t *Tailer) readFrame() ([]byte, int, error) {
	if _, err := t.f.ReadAt(t.hdr[:], t.off); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("wal: tail read: %w", err)
	}
	length := int(binary.LittleEndian.Uint32(t.hdr[0:4]))
	if length > maxRecordBytes {
		return nil, 0, &CorruptError{Segment: t.f.Name(), Offset: t.off,
			Reason: fmt.Sprintf("frame length %d exceeds limit %d", length, maxRecordBytes)}
	}
	if cap(t.buf) < length {
		t.buf = make([]byte, length)
	}
	payload := t.buf[:length]
	if _, err := t.f.ReadAt(payload, t.off+frameHeaderLen); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("wal: tail read: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(t.hdr[4:8]) {
		return nil, 0, &CorruptError{Segment: t.f.Name(), Offset: t.off, Reason: "checksum mismatch"}
	}
	return payload, frameHeaderLen + length, nil
}

func (t *Tailer) closeFile() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
}

// Close releases the open segment. The Tailer must not be used after.
func (t *Tailer) Close() { t.closeFile() }

// EncodeFrame appends rec to buf in the log's frame layout (length,
// CRC32C, JSON payload) and returns the extended slice. The replication
// stream reuses this framing on the wire, so a follower's AppendBatch
// writes byte-compatible frames into its own log.
func EncodeFrame(buf []byte, rec *Record) ([]byte, error) {
	return encodeFrame(buf, rec)
}

// ReadFrame reads and verifies one frame from r, as written by
// EncodeFrame. A clean end of stream at a frame boundary returns io.EOF;
// a header or payload cut mid-frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (Record, error) {
	rec, _, err := ReadFrameRaw(r)
	return rec, err
}

// ReadFrameRaw is ReadFrame, but additionally returns the frame's exact
// wire bytes (header + payload) in a fresh slice. A replication
// follower keeps these and hands them to AppendBatchFrames, so its log
// holds the primary's bytes verbatim — never a re-encoding.
func ReadFrameRaw(r io.Reader) (Record, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, nil, io.EOF
		}
		return Record{}, nil, fmt.Errorf("wal: read frame header: %w", err)
	}
	length := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if length > maxRecordBytes {
		return Record{}, nil, fmt.Errorf("wal: frame length %d exceeds limit %d", length, maxRecordBytes)
	}
	frame := make([]byte, frameHeaderLen+length)
	copy(frame, hdr[:])
	payload := frame[frameHeaderLen:]
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, nil, fmt.Errorf("wal: read frame payload: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return Record{}, nil, errors.New("wal: frame checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, nil, fmt.Errorf("wal: undecodable frame payload: %w", err)
	}
	return rec, frame, nil
}
