package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// scanResult is one segment's walk: how many bytes of valid frames it
// holds and whether garbage follows them.
type scanResult struct {
	validLen int64 // bytes of complete, checksummed frames
	records  int   // frames decoded
	torn     bool  // bytes after validLen do not form a complete frame
}

// scanSegment walks the frames of one segment, calling fn for each
// decoded record. final says whether this is the last segment of the log:
// only there may a bad tail be forgiven as a torn write.
//
// The strict torn-tail rule (tolerant=false, right for a log written
// under SyncAlways, where every acknowledged frame was fsynced): a frame
// is a torn write if and only if it is the final frame of the final
// segment and is incomplete (header or payload cut short by EOF) or
// fails its checksum with nothing after it. A checksum failure followed
// by further bytes means the writer went on appending after the bad
// frame, which a crash cannot produce once frames are synced in order —
// that is interior corruption and recovery must refuse to guess.
//
// Under SyncInterval/SyncNever the strict rule is wrong: unsynced pages
// of the active segment may reach the disk out of order, so a crash CAN
// leave a bad frame with valid-looking bytes after it. tolerant=true
// therefore treats ANY bad frame in the final segment as the end of the
// log and truncates there — records past it were never durable under
// those policies, so dropping them is within the acknowledged-loss
// window. Non-final segments were sealed with an explicit fsync under
// every policy, so damage there is always corruption.
func scanSegment(path string, data []byte, final, tolerant bool, fn func(off int64, rec *Record) error) (scanResult, error) {
	var res scanResult
	off := 0
	for off < len(data) {
		rem := len(data) - off
		tail := func(reason string) (scanResult, error) {
			if final {
				res.torn = true
				return res, nil
			}
			return res, &CorruptError{Segment: path, Offset: int64(off), Reason: reason}
		}
		if rem < frameHeaderLen {
			return tail(fmt.Sprintf("truncated frame header (%d bytes)", rem))
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if length > maxRecordBytes {
			// An absurd length that still "fits" in the file is damage; one
			// that points past EOF at the tail is a cut-short length write.
			if off+frameHeaderLen+length > len(data) || (final && tolerant) {
				return tail(fmt.Sprintf("frame length %d exceeds limit", length))
			}
			return res, &CorruptError{Segment: path, Offset: int64(off),
				Reason: fmt.Sprintf("frame length %d exceeds limit %d", length, maxRecordBytes)}
		}
		end := off + frameHeaderLen + length
		if end > len(data) {
			return tail(fmt.Sprintf("truncated payload (%d of %d bytes)", rem-frameHeaderLen, length))
		}
		payload := data[off+frameHeaderLen : end]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			if final && (tolerant || end == len(data)) {
				res.torn = true
				return res, nil
			}
			return res, &CorruptError{Segment: path, Offset: int64(off), Reason: "checksum mismatch"}
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return res, &CorruptError{Segment: path, Offset: int64(off),
				Reason: fmt.Sprintf("undecodable payload: %v", err)}
		}
		if fn != nil {
			if err := fn(int64(off), &rec); err != nil {
				return res, err
			}
		}
		res.validLen = int64(end)
		res.records++
		off = end
	}
	return res, nil
}

// Replay scans every segment in dir in LSN order, verifies framing and
// LSN continuity, and calls apply for each record with LSN > afterLSN
// (afterLSN is the sequence number the caller's snapshot already covers).
// A torn tail on the final segment is truncated in place so the log is
// clean for appending; damage anywhere else returns a *CorruptError.
// tolerantTail selects the final-segment rule (see scanSegment): pass
// false for a log written under SyncAlways — any mid-file damage is then
// real corruption — and true for SyncInterval/SyncNever, whose unsynced
// tails can legitimately reach the disk out of order. The returned LSN is
// the last one present in the log (afterLSN when the log holds nothing
// newer).
func Replay(dir string, afterLSN uint64, tolerantTail bool, apply func(Record) error) (uint64, error) {
	info, err := Recover(dir, afterLSN, tolerantTail, apply)
	return info.LastLSN, err
}

// RecoveryInfo reports what a Recover pass found, beyond the last LSN:
// whether (and how much of) a torn tail was truncated, and how many
// records were walked. Observability surfaces the torn-tail count so
// an operator can tell "crashed mid-append, recovered by design" from
// a clean restart.
type RecoveryInfo struct {
	LastLSN   uint64 // last LSN present (afterLSN when nothing newer)
	Records   int    // frames decoded across all segments
	TornTails int    // torn final-segment tails truncated (0 or 1)
	TornBytes int64  // bytes discarded by that truncation
}

// Recover is Replay with a full report: same scan, same truncation of
// a torn final-segment tail, same corruption errors.
func Recover(dir string, afterLSN uint64, tolerantTail bool, apply func(Record) error) (RecoveryInfo, error) {
	out := RecoveryInfo{LastLSN: afterLSN}
	names, err := listSegments(dir)
	if err != nil {
		return out, err
	}
	last := afterLSN
	prev := uint64(0)
	first := true
	for i, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return out, fmt.Errorf("wal: replay: %w", err)
		}
		final := i == len(names)-1
		res, err := scanSegment(path, data, final, tolerantTail, func(off int64, rec *Record) error {
			if first {
				first = false
				if rec.LSN > afterLSN+1 {
					return fmt.Errorf("wal: missing records: log starts at lsn %d but the snapshot covers only through %d", rec.LSN, afterLSN)
				}
			} else if rec.LSN != prev+1 {
				return &CorruptError{Segment: path, Offset: off,
					Reason: fmt.Sprintf("lsn %d breaks sequence (previous %d)", rec.LSN, prev)}
			}
			prev = rec.LSN
			if rec.LSN > last {
				last = rec.LSN
			}
			if rec.LSN > afterLSN && apply != nil {
				if err := apply(*rec); err != nil {
					return fmt.Errorf("wal: replay record %d (%s %q): %w", rec.LSN, rec.Op, rec.ID, err)
				}
			}
			return nil
		})
		if err != nil {
			return out, err
		}
		out.Records += res.records
		if res.torn {
			if err := os.Truncate(path, res.validLen); err != nil {
				return out, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			out.TornTails++
			out.TornBytes += int64(len(data)) - res.validLen
		}
	}
	out.LastLSN = last
	return out, nil
}

// SegmentInfo describes one segment for inspection tooling.
type SegmentInfo struct {
	File      string `json:"file"`
	FirstLSN  uint64 `json:"firstLSN"` // from the file name
	Bytes     int64  `json:"bytes"`
	Records   int    `json:"records"`
	Groups    int    `json:"groups,omitempty"`    // OpGroup frames among Records
	GroupSubs int    `json:"groupSubs,omitempty"` // sub-records across those groups
	Mutations int    `json:"mutations"`           // logical mutations (groups and bulks expanded)
	TornBytes int64  `json:"tornBytes,omitempty"` // trailing bytes of a torn write
	Err       string `json:"err,omitempty"`       // interior corruption, if any
}

// Inspect walks the log read-only: unlike Replay it never truncates, and
// a damaged segment is reported in its SegmentInfo rather than aborting
// the walk. fn (optional) receives every decodable record.
func Inspect(dir string, fn func(Record)) ([]SegmentInfo, error) {
	names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	infos := make([]SegmentInfo, 0, len(names))
	for i, name := range names {
		path := filepath.Join(dir, name)
		info := SegmentInfo{File: name}
		info.FirstLSN, _ = parseSegmentName(name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: inspect: %w", err)
		}
		info.Bytes = int64(len(data))
		// Inspect is strict on purpose: anything suspicious is worth
		// showing the operator, whatever policy wrote the log.
		res, err := scanSegment(path, data, i == len(names)-1, false, func(_ int64, rec *Record) error {
			if rec.Op == OpGroup {
				info.Groups++
				info.GroupSubs += len(rec.Subs)
			}
			info.Mutations += rec.Mutations()
			if fn != nil {
				fn(*rec)
			}
			return nil
		})
		info.Records = res.records
		if res.torn {
			info.TornBytes = info.Bytes - res.validLen
		}
		if err != nil {
			info.Err = err.Error()
		}
		infos = append(infos, info)
	}
	return infos, nil
}
