package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// frameBytes builds one valid frame around the given payload.
func frameBytes(payload []byte) []byte {
	buf := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// FuzzReplayFrame throws arbitrary bytes at the WAL frame decoder — the
// exact code path OpenStore runs against whatever a crash left on disk.
// The contract under fuzzing: scanSegment never panics, never reports an
// error other than a *CorruptError, and its accounting stays coherent
// (validLen within the data, on a frame boundary, covering exactly the
// decoded records; a clean non-torn scan explains every byte).
func FuzzReplayFrame(f *testing.F) {
	img := testImage("A")
	valid := func(rec Record) []byte {
		buf, err := encodeFrame(nil, &rec)
		if err != nil {
			f.Fatal(err)
		}
		return buf
	}
	one := valid(Record{LSN: 1, Op: OpInsert, ID: "img0", Image: &img})
	group := valid(Record{LSN: 2, Op: OpGroup, Subs: []Record{
		{Op: OpInsert, ID: "g0", Image: &img},
		{Op: OpDelete, ID: "g0"},
	}})

	f.Add([]byte{}, true, false)
	f.Add(one, true, false)
	f.Add(append(append([]byte{}, one...), group...), true, true)
	f.Add(one[:len(one)-3], true, false)                             // torn payload
	f.Add(one[:5], true, true)                                       // torn header
	f.Add(append(append([]byte{}, one...), 0xff, 0x00), true, false) // garbage tail
	bad := append([]byte{}, one...)
	bad[frameHeaderLen+2] ^= 0x41 // checksum mismatch
	f.Add(append(bad, one...), false, false)
	huge := frameBytes(nil)
	binary.LittleEndian.PutUint32(huge[0:4], uint32(maxRecordBytes)+17)
	f.Add(huge, true, false)
	f.Add(frameBytes([]byte("not json")), true, false)

	f.Fuzz(func(t *testing.T, data []byte, final, tolerant bool) {
		count := 0
		res, err := scanSegment("fuzz.log", data, final, tolerant, func(off int64, rec *Record) error {
			if off < 0 || off >= int64(len(data)) {
				t.Fatalf("record offset %d outside data of %d bytes", off, len(data))
			}
			count++
			return nil
		})
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("scan error is not a *CorruptError: %T %v", err, err)
			}
		}
		if res.validLen < 0 || res.validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [0, %d]", res.validLen, len(data))
		}
		if res.records != count {
			t.Fatalf("res.records = %d but fn saw %d", res.records, count)
		}
		if err == nil && final && !res.torn && res.validLen != int64(len(data)) {
			t.Fatalf("clean final scan left %d bytes unexplained", int64(len(data))-res.validLen)
		}
		// The valid prefix must re-scan to the identical result: recovery
		// truncates to validLen and the truncated log must then be clean.
		res2, err2 := scanSegment("fuzz.log", data[:res.validLen], final, tolerant, nil)
		if err2 != nil || res2.torn || res2.validLen != res.validLen || res2.records != res.records {
			t.Fatalf("valid prefix does not re-scan cleanly: %+v vs %+v (err %v)", res2, res, err2)
		}
	})
}
