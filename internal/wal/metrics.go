package wal

import (
	"time"

	"bestring/internal/obs"
)

// logMetrics holds the log's hot-path instruments. The field on Log is
// nil until EnableMetrics; append paths read it under l.mu, so there
// is no separate synchronisation and the disabled path costs one nil
// check (no time.Now()).
type logMetrics struct {
	appendSeconds *obs.Histogram
	fsyncSeconds  *obs.Histogram
	rotateSeconds *obs.Histogram
	appends       *obs.Counter
	appendBytes   *obs.Counter
	fsyncs        *obs.Counter
	rotations     *obs.Counter
}

// EnableMetrics registers the log's counters, latency histograms and
// shape gauges on reg. Call once per registry, any time after Open;
// a nil registry is a no-op.
func (l *Log) EnableMetrics(reg *obs.Registry) {
	if l == nil || reg == nil {
		return
	}
	m := &logMetrics{
		appendSeconds: reg.Histogram("bestring_wal_append_seconds",
			"Wall time of one WAL append (framing, write, and fsync when the policy demands one).",
			obs.DurationBuckets()),
		fsyncSeconds: reg.Histogram("bestring_wal_fsync_seconds",
			"Duration of WAL fsync calls, whatever triggered them (append, batch, seal, interval flush, explicit Sync).",
			obs.DurationBuckets()),
		rotateSeconds: reg.Histogram("bestring_wal_rotation_seconds",
			"Duration of segment rotations (seal fsync + close + new segment create + dir sync).",
			obs.DurationBuckets()),
		appends: reg.Counter("bestring_wal_records_total",
			"Records appended to the WAL (group-commit batches count each record)."),
		appendBytes: reg.Counter("bestring_wal_append_bytes_total",
			"Framed bytes appended to the WAL."),
		fsyncs: reg.Counter("bestring_wal_fsyncs_total",
			"Completed WAL fsync calls."),
		rotations: reg.Counter("bestring_wal_rotations_total",
			"Completed segment rotations."),
	}
	reg.GaugeFunc("bestring_wal_durable_lsn",
		"Highest LSN known to be on stable storage (the replication shipping horizon).",
		func() float64 { return float64(l.DurableLSN()) })
	reg.GaugeFunc("bestring_wal_segments",
		"WAL segments on disk, sealed plus active.",
		func() float64 { return float64(l.Stats().Segments) })
	reg.GaugeFunc("bestring_wal_bytes",
		"Total WAL bytes on disk across segments.",
		func() float64 { return float64(l.Stats().Bytes) })
	l.mu.Lock()
	l.metrics = m
	l.mu.Unlock()
}

// syncActiveLocked fsyncs the active segment, timing the call when
// metrics are enabled. Callers hold l.mu.
func (l *Log) syncActiveLocked() error {
	m := l.metrics
	if m == nil {
		return l.f.Sync()
	}
	t0 := time.Now()
	err := l.f.Sync()
	if err == nil {
		m.fsyncSeconds.Observe(time.Since(t0).Seconds())
		m.fsyncs.Inc()
	}
	return err
}
