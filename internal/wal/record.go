// Package wal implements the segmented write-ahead log under the durable
// store (DESIGN.md section 5): an append-only sequence of CRC32C-framed
// mutation records split across size-bounded segment files, with a
// configurable fsync policy, a replayer that tolerates a torn tail record
// while rejecting interior corruption, and pruning of segments made
// obsolete by a checkpoint.
//
// The log stores *mutations*, not state: every record describes one
// acknowledged change to the image database (an insert, a delete, an
// object edit, or an all-or-nothing bulk batch). Recovery is
// deterministic replay — load the last checkpoint snapshot, then apply
// every record with a newer LSN in order.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"bestring/internal/core"
)

// Record operations. A record holds exactly the fields its op needs; the
// rest stay zero and are omitted from the encoding.
const (
	OpInsert       = "insert"        // ID, Name, Image
	OpDelete       = "delete"        // ID
	OpInsertObject = "insert-object" // ID, Object
	OpDeleteObject = "delete-object" // ID, Label
	OpBulk         = "bulk"          // Items (one atomic batch)
	OpGroup        = "group"         // Subs (one commit group)
	OpImport       = "import"        // Items + Key (one streaming-import chunk)
)

// BulkItem is one image of an atomic bulk-insert record.
type BulkItem struct {
	ID    string     `json:"id"`
	Name  string     `json:"name,omitempty"`
	Image core.Image `json:"image"`
}

// Record is one logged mutation. LSN is the log sequence number: records
// are numbered 1, 2, 3, ... with no gaps, and the replayer rejects a log
// that breaks the sequence. The payload is JSON — the same interchange
// idiom as the snapshot format — framed in binary (see frame layout
// below).
type Record struct {
	LSN    uint64       `json:"lsn"`
	Op     string       `json:"op"`
	ID     string       `json:"id,omitempty"`
	Name   string       `json:"name,omitempty"`
	Label  string       `json:"label,omitempty"`
	Image  *core.Image  `json:"image,omitempty"`
	Object *core.Object `json:"object,omitempty"`
	Items  []BulkItem   `json:"items,omitempty"`
	// Subs are the mutations of an OpGroup record — one commit group
	// coalesced by the store's group committer into a single frame. The
	// group consumes one LSN (the sub-records carry none of their own) and
	// one CRC, so a crash either preserves the whole group or tears it off
	// with the usual tail rules: a batch can never be half-replayed. Groups
	// do not nest.
	Subs []Record `json:"subs,omitempty"`
	// Key is the deterministic content key of an OpImport chunk: a hash of
	// the chunk's items computed by the importer before the append. A
	// restarted import derives the same keys from the same source and skips
	// every chunk whose key is already in the durable log, which is what
	// makes streaming imports crash-resumable (DESIGN.md section 12).
	Key string `json:"key,omitempty"`
}

// Mutations returns the number of logical mutations the record carries:
// a group frame counts the mutations of each sub-record, a bulk record
// one per item, and every other op exactly one. Inspection tooling uses
// this so a batched log can be audited by what it *does*, not just how
// many top-level frames it happens to be coalesced into.
func (r *Record) Mutations() int {
	switch r.Op {
	case OpGroup:
		n := 0
		for i := range r.Subs {
			n += r.Subs[i].Mutations()
		}
		return n
	case OpBulk, OpImport:
		return len(r.Items)
	}
	return 1
}

// Frame layout, little-endian:
//
//	offset 0: uint32 payload length
//	offset 4: uint32 CRC32C (Castagnoli) of the payload
//	offset 8: payload (JSON-encoded Record)
//
// The CRC covers only the payload: a frame whose checksum fails at the
// very end of the final segment is indistinguishable from a write cut
// short by a crash, and is treated as a torn tail; anywhere else it is
// corruption.
const frameHeaderLen = 8

// maxRecordBytes bounds a single payload. A length field above the bound
// inside the log is corruption (or a torn length write at the tail).
const maxRecordBytes = 64 << 20

// MaxRecordBytes is the largest encoded payload a single WAL record may
// carry. Append rejects anything larger with a *RecordTooLargeError
// before touching the log; callers with bigger batches must chunk them
// (the store routes oversized bulk inserts through the streaming-import
// path automatically).
const MaxRecordBytes = maxRecordBytes

// ErrRecordTooLarge is the sentinel matched by errors.Is for records
// whose encoded payload exceeds MaxRecordBytes.
var ErrRecordTooLarge = fmt.Errorf("wal: record exceeds %d byte payload bound", maxRecordBytes)

// RecordTooLargeError reports a record whose JSON payload would overflow
// the frame bound. The append never reaches the log file, so the error is
// not sticky: the log stays usable for correctly sized records.
type RecordTooLargeError struct {
	LSN  uint64 // the LSN the record would have consumed
	Size int    // encoded payload size in bytes
}

func (e *RecordTooLargeError) Error() string {
	return fmt.Sprintf("wal: record %d payload %d bytes exceeds limit %d", e.LSN, e.Size, maxRecordBytes)
}

// Unwrap makes errors.Is(err, ErrRecordTooLarge) hold.
func (e *RecordTooLargeError) Unwrap() error { return ErrRecordTooLarge }

// castagnoli is the CRC32C table shared by writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame appends the framed record to buf and returns the extended
// slice.
func encodeFrame(buf []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encode record %d: %w", rec.LSN, err)
	}
	if len(payload) > maxRecordBytes {
		return nil, &RecordTooLargeError{LSN: rec.LSN, Size: len(payload)}
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// CorruptError reports damage inside the write-ahead log that recovery
// must not paper over: a bad checksum, an impossible length, an
// undecodable payload or a broken LSN sequence anywhere except the tail
// of the final segment.
type CorruptError struct {
	Segment string // segment file path
	Offset  int64  // byte offset of the bad frame
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log: %s at offset %d: %s", e.Segment, e.Offset, e.Reason)
}
