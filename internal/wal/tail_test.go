package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

func TestAppendBatchContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0) // LSNs 1..3
	img := testImage("A")
	batch := []Record{
		{LSN: 4, Op: OpInsert, ID: "b1", Image: &img},
		{LSN: 5, Op: OpInsert, ID: "b2", Image: &img},
		{LSN: 6, Op: OpDelete, ID: "b1"},
	}
	n, err := l.AppendBatch(batch)
	if err != nil || n <= 3*frameHeaderLen {
		t.Fatalf("AppendBatch: n=%d err=%v", n, err)
	}
	if got := l.DurableLSN(); got != 6 {
		t.Fatalf("durable after batch = %d, want 6", got)
	}
	// A batch that does not continue the sequence is rejected whole.
	if _, err := l.AppendBatch([]Record{{LSN: 9, Op: OpDelete, ID: "x"}}); err == nil {
		t.Fatal("out-of-sequence batch accepted")
	}
	if _, err := l.AppendBatch([]Record{{LSN: 7, Op: OpDelete, ID: "x"}, {LSN: 9, Op: OpDelete, ID: "y"}}); err == nil {
		t.Fatal("gapped batch accepted")
	}
	// The rejections wrote nothing: the sequence still continues at 7.
	if lsn, _, err := l.Append(Record{Op: OpDelete, ID: "b2"}); err != nil || lsn != 7 {
		t.Fatalf("append after rejected batches: lsn=%d err=%v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, last := replayAll(t, dir, 0)
	if last != 7 || len(recs) != 7 {
		t.Fatalf("last=%d records=%d, want 7/7", last, len(recs))
	}
	if recs[4].ID != "b2" || recs[5].Op != OpDelete {
		t.Fatalf("batched records not preserved: %+v %+v", recs[4], recs[5])
	}
}

func TestAppendBatchRotates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	img := testImage("A")
	var batch []Record
	for i := 0; i < 12; i++ {
		batch = append(batch, Record{LSN: uint64(i + 1), Op: OpInsert, ID: fmt.Sprintf("r%02d", i), Image: &img})
	}
	if _, err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("tiny threshold produced %d segment(s), want rotation", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, last := replayAll(t, dir, 0)
	if last != 12 || len(recs) != 12 {
		t.Fatalf("last=%d records=%d, want 12/12", last, len(recs))
	}
}

func TestDurableLSNPolicies(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 0)
	if got := l.DurableLSN(); got != 0 {
		t.Fatalf("SyncNever durable after appends = %d, want 0", got)
	}
	// Rotation seals (and fsyncs) the segment: everything in it is durable.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != 4 {
		t.Fatalf("durable after rotate = %d, want 4", got)
	}
	appendN(t, l, 2, 4)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != 6 {
		t.Fatalf("durable after explicit sync = %d, want 6", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: everything replayed is the recovered truth.
	l2, err := Open(dir, 7, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.DurableLSN(); got != 6 {
		t.Fatalf("durable after reopen = %d, want 6", got)
	}
	if st := l2.Stats(); st.DurableLSN != 6 || st.OldestLSN != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWaitDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- l.WaitDurable(context.Background(), 3)
	}()
	appendN(t, l, 2, 0)
	select {
	case err := <-done:
		t.Fatalf("WaitDurable(3) returned early after 2 appends: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	appendN(t, l, 1, 2)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitDurable: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitDurable(3) did not wake after LSN 3 became durable")
	}
	// A canceled context unblocks.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { done <- l.WaitDurable(ctx, 99) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled WaitDurable = %v", err)
	}
	// Close unblocks with ErrLogClosed.
	go func() { done <- l.WaitDurable(context.Background(), 99) }()
	time.Sleep(10 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrLogClosed) {
		t.Fatalf("WaitDurable after Close = %v", err)
	}
}

func TestTailerCatchUpAndLive(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 10, 0) // spans several tiny segments

	tl := l.Tail(0)
	defer tl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 1; i <= 10; i++ {
		rec, err := tl.Next(ctx)
		if err != nil {
			t.Fatalf("catch-up Next %d: %v", i, err)
		}
		if rec.LSN != uint64(i) {
			t.Fatalf("catch-up lsn = %d, want %d", rec.LSN, i)
		}
	}
	if tl.NextLSN() != 11 {
		t.Fatalf("NextLSN = %d, want 11", tl.NextLSN())
	}

	// Live tail: the reader blocks until the writer appends more.
	got := make(chan Record, 1)
	errc := make(chan error, 1)
	go func() {
		rec, err := tl.Next(ctx)
		if err != nil {
			errc <- err
			return
		}
		got <- rec
	}()
	select {
	case rec := <-got:
		t.Fatalf("live Next returned %+v before any append", rec)
	case err := <-errc:
		t.Fatalf("live Next: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	appendN(t, l, 1, 10)
	select {
	case rec := <-got:
		if rec.LSN != 11 || rec.ID != "img0010" {
			t.Fatalf("live record = %+v", rec)
		}
	case err := <-errc:
		t.Fatalf("live Next: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("live Next did not observe the append")
	}
}

func TestTailerResumeMidStream(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 20, 0)
	ctx := context.Background()
	// Resume from an arbitrary mid-log position, as a reconnecting
	// follower does.
	tl := l.Tail(7)
	defer tl.Close()
	for i := 8; i <= 20; i++ {
		rec, err := tl.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if rec.LSN != uint64(i) {
			t.Fatalf("resumed lsn = %d, want %d", rec.LSN, i)
		}
	}
}

func TestTailerGoneAfterPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 12, 0)
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveObsolete(12); err != nil {
		t.Fatal(err)
	}
	oldest := l.OldestLSN()
	if oldest <= 1 {
		t.Fatalf("OldestLSN = %d after pruning through 12", oldest)
	}
	tl := l.Tail(0)
	defer tl.Close()
	if _, err := tl.Next(context.Background()); !errors.Is(err, ErrGone) {
		t.Fatalf("tail from pruned position = %v, want ErrGone", err)
	}
	// From the retained floor the stream still works. (After pruning
	// through LSN 12 the retained log is just the empty active segment, so
	// append one more record for the floor tail to deliver.)
	appendN(t, l, 1, 12)
	tl2 := l.Tail(oldest - 1)
	defer tl2.Close()
	rec, err := tl2.Next(context.Background())
	if err != nil || rec.LSN != oldest {
		t.Fatalf("tail from floor: rec=%+v err=%v", rec, err)
	}
}

func TestFrameWireRoundTrip(t *testing.T) {
	img := testImage("A")
	recs := []Record{
		{LSN: 1, Op: OpInsert, ID: "a", Image: &img},
		{LSN: 2, Op: OpGroup, Subs: []Record{{Op: OpDelete, ID: "a"}, {Op: OpInsert, ID: "b", Image: &img}}},
	}
	var wire []byte
	for i := range recs {
		var err error
		wire, err = EncodeFrame(wire, &recs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(wire)
	for i := range recs {
		rec, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if rec.LSN != recs[i].LSN || rec.Op != recs[i].Op || len(rec.Subs) != len(recs[i].Subs) {
			t.Fatalf("frame %d round trip: %+v", i, rec)
		}
	}
	if _, err := ReadFrame(r); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
	// A frame cut mid-payload is an unexpected EOF, not a clean end.
	torn := bytes.NewReader(wire[:len(wire)-3])
	if _, err := ReadFrame(torn); err != nil {
		t.Fatalf("intact first frame: %v", err)
	}
	if _, err := ReadFrame(torn); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("torn wire frame = %v", err)
	}
	// Flipped payload byte fails the checksum.
	bad := append([]byte(nil), wire...)
	bad[frameHeaderLen+2] ^= 0xff
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt wire frame accepted")
	}
}

func TestRecordMutationsAndInspectCounts(t *testing.T) {
	img := testImage("A")
	group := Record{Op: OpGroup, Subs: []Record{
		{Op: OpInsert, ID: "a", Image: &img},
		{Op: OpBulk, Items: []BulkItem{{ID: "b", Image: img}, {ID: "c", Image: img}}},
		{Op: OpDelete, ID: "a"},
	}}
	if got := group.Mutations(); got != 4 {
		t.Fatalf("group Mutations = %d, want 4", got)
	}
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(group); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(Record{Op: OpDelete, ID: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	infos, err := Inspect(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("segments = %d", len(infos))
	}
	in := infos[0]
	if in.Records != 2 || in.Groups != 1 || in.GroupSubs != 3 || in.Mutations != 5 {
		t.Fatalf("inspect counts = %+v", in)
	}
}
