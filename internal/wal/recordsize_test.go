package wal

import (
	"errors"
	"strings"
	"testing"
)

func TestRecordTooLargeTypedError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// A name just past the frame bound: the JSON payload exceeds
	// MaxRecordBytes however the rest of the record encodes.
	img := testImage("A")
	big := Record{Op: OpInsert, ID: "huge", Name: strings.Repeat("x", MaxRecordBytes+1), Image: &img}
	_, _, err = l.Append(big)
	if err == nil {
		t.Fatal("oversized record accepted")
	}
	// Callers branch on the sentinel...
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("errors.Is(ErrRecordTooLarge) false: %v", err)
	}
	// ...and the typed error carries the rejected size for diagnostics.
	var tooBig *RecordTooLargeError
	if !errors.As(err, &tooBig) {
		t.Fatalf("errors.As(*RecordTooLargeError) false: %v", err)
	}
	if tooBig.Size <= MaxRecordBytes || tooBig.LSN == 0 {
		t.Fatalf("typed error = %+v", tooBig)
	}

	// The rejection is clean: the log still accepts ordinary appends and
	// the LSN sequence has no gap.
	lsn, _, err := l.Append(Record{Op: OpInsert, ID: "ok", Image: &img})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 1 {
		t.Fatalf("lsn after rejection = %d, want 1", lsn)
	}
	recs, _ := replayAll(t, dir, 0)
	if len(recs) != 1 || recs[0].ID != "ok" {
		t.Fatalf("replayed %d records", len(recs))
	}
}

func TestOpImportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		Op:    OpImport,
		Key:   strings.Repeat("ab", 32),
		Items: []BulkItem{{ID: "a", Image: testImage("A")}, {ID: "b", Name: "two", Image: testImage("B")}},
	}
	if _, _, err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, dir, 0)
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	got := recs[0]
	if got.Op != OpImport || got.Key != rec.Key || len(got.Items) != 2 || got.Items[1].Name != "two" {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Mutations() != 2 {
		t.Fatalf("Mutations() = %d", got.Mutations())
	}
}
