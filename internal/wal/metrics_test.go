package wal

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"bestring/internal/obs"
)

// EnableMetrics must count appends/bytes/fsyncs and time them; the
// exposition must carry the wal families the CI smoke greps for.
func TestLogMetrics(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	l.EnableMetrics(reg)
	appendN(t, l, 10, 0) // small SegmentBytes forces rotations too
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	m := l.metrics
	if got := m.appends.Value(); got != 10 {
		t.Fatalf("records counted = %d, want 10", got)
	}
	if m.appendBytes.Value() == 0 {
		t.Fatal("append bytes not counted")
	}
	// SyncAlways: at least one fsync per append, plus seals.
	if got := m.fsyncs.Value(); got < 10 {
		t.Fatalf("fsyncs = %d, want >= 10", got)
	}
	if m.rotations.Value() == 0 {
		t.Fatal("expected rotations at 256-byte segments")
	}
	if m.appendSeconds.Count() != 10 || m.fsyncSeconds.Count() != m.fsyncs.Value() {
		t.Fatalf("histogram counts: append %d fsync %d/%d",
			m.appendSeconds.Count(), m.fsyncSeconds.Count(), m.fsyncs.Value())
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE bestring_wal_fsync_seconds histogram",
		"bestring_wal_append_seconds_count 10",
		"bestring_wal_records_total 10",
		"bestring_wal_durable_lsn 10",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// Recover must report the torn-tail truncation that Replay performs
// silently, and agree with Replay on the surviving LSN.
func TestRecoverReportsTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := Recover(dir, 0, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.LastLSN != 3 || info.Records != 3 || info.TornTails != 0 || info.TornBytes != 0 {
		t.Fatalf("clean log: %+v", info)
	}

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	info, err = Recover(dir, 0, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := int64(len(frameOf(t, data, 2)))
	if info.LastLSN != 2 || info.Records != 2 || info.TornTails != 1 || info.TornBytes != lastFrame-5 {
		t.Fatalf("torn log: %+v (want tornBytes %d)", info, lastFrame-5)
	}
	// Truncation already happened: a second pass sees a clean log.
	info, err = Recover(dir, 0, false, nil)
	if err != nil || info.TornTails != 0 {
		t.Fatalf("second pass: %+v, %v", info, err)
	}
}
