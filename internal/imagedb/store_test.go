package imagedb

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bestring/internal/core"
)

// storeImage builds a small valid image whose shape varies with n.
func storeImage(n int) core.Image {
	return core.NewImage(10, 10,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 1, 1)},
		core.Object{Label: fmt.Sprintf("B%d", n%7), Box: core.NewRect(2+n%3, 2, 4+n%3, 4)},
	)
}

// saveBytes renders a DB-like saver to its canonical snapshot bytes.
func saveBytes(t *testing.T, save func(w io.Writer) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStoreOpenMutateReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Insert(fmt.Sprintf("img%d", i), "n", storeImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("img3"); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertObject("img0", core.Object{Label: "C", Box: core.NewRect(5, 5, 6, 6)}); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteObject("img1", "A"); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, s.Save)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := saveBytes(t, s2.Save); !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs:\n got: %s\nwant: %s", got, want)
	}
	if s2.Len() != 4 {
		t.Fatalf("Len=%d, want 4", s2.Len())
	}
	// The query surface works on the recovered store.
	page, err := s2.Query(context.Background(), NewQuery(storeImage(0)), WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Hits) != 2 {
		t.Fatalf("query hits=%d, want 2", len(page.Hits))
	}
	// Mutations validated against recovered state.
	if err := s2.Insert("img0", "", storeImage(0)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
}

func TestStoreReopenAcrossFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenStore(dir, StoreOptions{Fsync: pol, FsyncInterval: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Insert("a", "", storeImage(1)); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil { // clean close flushes under every policy
				t.Fatal(err)
			}
			s2, err := OpenStore(dir, StoreOptions{Fsync: pol})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if s2.Len() != 1 {
				t.Fatalf("Len=%d after clean close under %s", s2.Len(), pol)
			}
		})
	}
}

// storeFiles lists snapshot and segment file names in dir.
func storeFiles(t *testing.T, dir string) (snaps, segs []string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), snapshotPrefix):
			snaps = append(snaps, e.Name())
		case strings.HasPrefix(e.Name(), "wal-"):
			segs = append(segs, e.Name())
		}
	}
	return snaps, segs
}

func TestStoreCheckpointPrunesLogAndSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{
		Fsync: FsyncNever, SegmentBytes: 512, CheckpointBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Insert(fmt.Sprintf("img%02d", i), "", storeImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 40; i++ {
		if err := s.Insert(fmt.Sprintf("img%02d", i), "", storeImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snaps, segs := storeFiles(t, dir)
	if len(snaps) != 1 {
		t.Fatalf("snapshots=%v, want exactly the newest", snaps)
	}
	if len(segs) != 1 {
		t.Fatalf("segments=%v, want only the empty active one", segs)
	}
	st := s.StoreStats()
	if st.CheckpointLSN != 40 || st.LastLSN != 40 || st.Checkpoints != 2 {
		t.Fatalf("stats=%+v", st)
	}
	// A third checkpoint with nothing new is a no-op.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.StoreStats().Checkpoints; got != 2 {
		t.Fatalf("no-op checkpoint ran anyway: %d", got)
	}
	want := saveBytes(t, s.Save)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := saveBytes(t, s2.Save); !bytes.Equal(got, want) {
		t.Fatal("state after checkpointed recovery differs")
	}
}

func TestStoreAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncNever, CheckpointBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Insert(fmt.Sprintf("img%02d", i), "", storeImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.StoreStats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint; stats=%+v", s.StoreStats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.StoreStats().CheckpointErr; err != "" {
		t.Fatalf("background checkpoint error: %s", err)
	}
}

func TestStoreBulkAtomicThroughWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("seedimg", "", storeImage(0)); err != nil {
		t.Fatal(err)
	}
	before := s.StoreStats().LastLSN

	// A batch with a conversion failure in the middle must change nothing
	// — not the database and not the log.
	bad := []BulkItem{
		{ID: "b0", Image: storeImage(1)},
		{ID: "b1", Image: core.Image{XMax: 4, YMax: 4}}, // no objects: conversion fails
		{ID: "b2", Image: storeImage(2)},
	}
	if err := s.BulkInsert(context.Background(), bad, 0); err == nil {
		t.Fatal("expected bulk failure")
	}
	if s.Len() != 1 {
		t.Fatalf("Len=%d after failed bulk, want 1", s.Len())
	}
	if got := s.StoreStats().LastLSN; got != before {
		t.Fatalf("failed bulk reached the WAL: lsn %d -> %d", before, got)
	}
	// A batch colliding with an existing id is rejected pre-log too.
	dup := []BulkItem{{ID: "x", Image: storeImage(3)}, {ID: "seedimg", Image: storeImage(4)}}
	if err := s.BulkInsert(context.Background(), dup, 0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
	if got := s.StoreStats().LastLSN; got != before {
		t.Fatalf("failed bulk reached the WAL: lsn %d -> %d", before, got)
	}

	// A good batch lands as ONE record and replays as one atomic unit.
	good := []BulkItem{{ID: "g0", Image: storeImage(5)}, {ID: "g1", Image: storeImage(6)}}
	if err := s.BulkInsert(context.Background(), good, 0); err != nil {
		t.Fatal(err)
	}
	if got := s.StoreStats().LastLSN; got != before+1 {
		t.Fatalf("bulk batch used %d records, want 1", got-before)
	}
	want := saveBytes(t, s.Save)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := saveBytes(t, s2.Save); !bytes.Equal(got, want) {
		t.Fatal("bulk batch did not replay to the same state")
	}
}

func TestStoreFallsBackToOlderValidSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Insert(fmt.Sprintf("img%d", i), "", storeImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("late", "", storeImage(9)); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, s.Save)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a NEWER but unreadable snapshot, as disk damage would leave.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(1<<40)), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := saveBytes(t, s2.Save); !bytes.Equal(got, want) {
		t.Fatal("fallback recovery differs from pre-crash state")
	}
}

func TestStoreClosedRejectsMutations(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("a", "", storeImage(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.Insert("b", "", storeImage(1)); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("want ErrStoreClosed, got %v", err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("want ErrStoreClosed, got %v", err)
	}
	if err := s.BulkInsert(context.Background(), []BulkItem{{ID: "c", Image: storeImage(2)}}, 0); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("want ErrStoreClosed, got %v", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("want ErrStoreClosed, got %v", err)
	}
	// Reads keep working after Close.
	if s.Len() != 1 {
		t.Fatalf("Len=%d after close", s.Len())
	}
}

// TestStoreConcurrentMutationsAndQueries exercises the writer lock, the
// WAL appender, the background checkpointer and concurrent readers
// together under -race, then proves the final state recovers exactly.
func TestStoreConcurrentMutationsAndQueries(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{
		Fsync: FsyncNever, SegmentBytes: 2048, CheckpointBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%02d", w, i)
				if err := s.Insert(id, "", storeImage(w*perWriter+i)); err != nil {
					t.Errorf("insert %s: %v", id, err)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := s.Query(context.Background(), NewQuery(storeImage(i)), WithK(3)); err != nil {
				t.Errorf("query: %v", err)
			}
			s.StoreStats()
		}
	}()
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Fatalf("Len=%d, want %d", s.Len(), writers*perWriter)
	}
	want := saveBytes(t, s.Save)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := saveBytes(t, s2.Save); !bytes.Equal(got, want) {
		t.Fatal("concurrent-write state did not recover byte-identically")
	}
}

func TestInspectStoreReportsShape(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Insert(fmt.Sprintf("img%d", i), "", storeImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("img1"); err != nil {
		t.Fatal(err)
	}
	if err := s.BulkInsert(context.Background(), []BulkItem{{ID: "b", Image: storeImage(5)}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ins, err := InspectStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ins.SnapshotLSN != 3 || ins.LastLSN != 5 || ins.Replayable != 2 {
		t.Fatalf("inspection=%+v", ins)
	}
	if ins.RecordOps["delete"] != 1 || ins.RecordOps["bulk"] != 1 {
		t.Fatalf("record ops=%v", ins.RecordOps)
	}
	if len(ins.Snapshots) != 1 || ins.Snapshots[0].Entries != 3 {
		t.Fatalf("snapshots=%+v", ins.Snapshots)
	}
}

// TestStoreSingleWriterLock pins that a second process (simulated by a
// second OpenStore) cannot write the same directory concurrently, and
// that leftover atomic-write temp litter is swept on open.
func TestStoreSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StoreOptions{}); err == nil ||
		!strings.Contains(err.Error(), "locked") {
		t.Fatalf("concurrent open: err=%v, want lock failure", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-checkpoint: a stranded snapshot temp file.
	litter := filepath.Join(dir, ".snapshot-0000000000000009.json.tmp-4242")
	if err := os.WriteFile(litter, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(litter); !os.IsNotExist(err) {
		t.Fatalf("temp litter survived open: %v", err)
	}
}

// damageTailRecord flips a byte in the payload of the n-th (1-based)
// record of the final WAL segment, leaving later records in place.
func damageTailRecord(t *testing.T, dir string, n int) {
	t.Helper()
	seg := filepath.Join(dir, finalSegment(t, dir))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; i < n-1; i++ {
		off += 8 + int(binary.LittleEndian.Uint32(data[off:off+4]))
	}
	data[off+8+5] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreTailToleranceFollowsWriterPolicy pins that the torn-tail rule
// is decided by the policy that WROTE the log (the wal's durable
// marker), not the policy the reopening process happens to pass: a
// never-written tail may legitimately hold out-of-order crash artefacts
// and is truncated at the damage, while an always-written tail with the
// same damage is fsynced history — bit rot — and must refuse, even when
// reopened with a relaxed policy.
func TestStoreTailToleranceFollowsWriterPolicy(t *testing.T) {
	write := func(pol FsyncPolicy) string {
		dir := t.TempDir()
		s, err := OpenStore(dir, StoreOptions{Fsync: pol})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := s.Insert(fmt.Sprintf("img%d", i), "", storeImage(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		damageTailRecord(t, dir, 4) // record 5 still follows the damage
		return dir
	}

	// Written under never: reopening — even strictly configured — ends
	// the log at the damage and serves the acknowledged-loss prefix.
	dir := write(FsyncNever)
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("never-written tail refused: %v", err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len=%d, want 3 (records 4-5 dropped with the damaged tail)", s.Len())
	}
	s.Close()

	// Written under always: the same damage is corruption of fsynced
	// records, and no reopening policy may silently truncate it.
	dir = write(FsyncAlways)
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncNever} {
		if _, err := OpenStore(dir, StoreOptions{Fsync: pol}); err == nil {
			t.Fatalf("always-written damaged tail accepted under reopen policy %s", pol)
		}
	}
}
