package imagedb

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"strings"
	"sync"
	"time"

	"bestring/internal/core"
	"bestring/internal/obs"
)

// Hit is one result of a composed query.
type Hit struct {
	ID    string  `json:"id"`
	Name  string  `json:"name,omitempty"`
	Score float64 `json:"score"`
	// Where is the satisfied fraction of the spatial-predicate filter;
	// present only when the query has a Where clause.
	Where float64 `json:"where,omitempty"`
	// Full reports that every Where clause held.
	Full bool `json:"full,omitempty"`
}

// Page is one page of query results.
type Page struct {
	Hits []Hit `json:"hits"`
	// Total counts the results matching the query — after filters,
	// MinScore and the cursor, before K/Offset truncation.
	Total int `json:"total"`
	// NextCursor resumes the ranking after the last hit of this page;
	// empty when the ranking is exhausted. The cursor pins this page's
	// epoch, so (while the version stays retained) later pages read the
	// exact same state and can neither skip nor duplicate a hit under
	// concurrent writers.
	NextCursor string `json:"nextCursor,omitempty"`
	// Epoch identifies the immutable version this page was computed from.
	Epoch uint64 `json:"epoch,omitempty"`
	// Stages reports how many candidates each pipeline stage let
	// through for this query — the observability hook for pruning
	// efficacy. Always populated by the pipeline.
	Stages *StageCounts `json:"stages,omitempty"`
	// Plan records the stage order the cost-based planner chose for
	// this query, its selectivity estimates and the query's scorer-cache
	// hit/miss counts (plan.go). Always populated by the pipeline;
	// surfaced by the CLI's -explain and the server's "debug":true.
	Plan *QueryPlan `json:"plan,omitempty"`
}

// StageCounts are the per-stage candidate counts of one executed query:
// how the staged pipeline narrowed the corpus down to the entries that
// actually paid an exact scorer evaluation. Hits/Total/NextCursor are
// byte-identical whatever these counts say; they only describe how much
// work producing them took. Under the cost-based planner the narrowing
// counts follow the EXECUTED order recorded in Page.Plan.Order (e.g. a
// region-first plan reports the region probe's output as Indexed);
// Narrowed — the set entering ranked scoring — is plan-invariant.
type StageCounts struct {
	// Indexed counts candidates after the plan's first narrowing step
	// (the inverted-label narrowing under the fixed order; the full
	// version size when nothing narrows).
	Indexed int `json:"indexed"`
	// Region counts candidates once label and region narrowing both ran
	// (equal to Indexed when the query has no region; under a
	// filter-first plan the region check runs inside the predicate
	// stage, so Region equals Indexed there too).
	Region int `json:"region"`
	// Narrowed counts candidates surviving the spatial-predicate filter
	// — the set entering ranked scoring. Plan-invariant.
	Narrowed int `json:"narrowed"`
	// Bounded counts candidates whose signature upper bound was
	// computed in the refine stage (zero when the scorer declares no
	// bound, pruning is disabled, or the query has no ranked image).
	Bounded int `json:"bounded"`
	// Evaluated counts exact score determinations: scorer runs plus
	// scorer-cache hits (a hit serves the identical exact score; the
	// split is Page.Plan.CacheHits/CacheMisses).
	Evaluated int `json:"evaluated"`
	// Pruned counts candidates rejected on the bound alone: Bounded =
	// Evaluated' + Pruned where Evaluated' is the bounded candidates
	// that went on to exact evaluation. Under parallelism the split
	// between Evaluated and Pruned can vary run to run (it depends on
	// how fast each worker's top-K floor rises); the ranking cannot.
	Pruned int `json:"pruned"`

	// Per-stage wall-clock time in nanoseconds, chained so the four
	// stage timers cover the pipeline body with no gaps; TotalNanos
	// additionally covers scorer resolution and query conversion before
	// stage 1. Omitted from JSON when zero (e.g. pages decoded from old
	// servers). These feed the bestring_query_stage_seconds histograms
	// and the slow-query log, and are the raw selectivity/latency
	// statistics the planned cost-based planner needs.
	IndexNanos  int64 `json:"indexNs,omitempty"`
	RegionNanos int64 `json:"regionNs,omitempty"`
	FilterNanos int64 `json:"filterNs,omitempty"`
	RankNanos   int64 `json:"rankNs,omitempty"`
	TotalNanos  int64 `json:"totalNs,omitempty"`
}

// sinceNanos returns the nanoseconds elapsed since *t and resets *t to
// now, so consecutive stage timers chain without gaps or overlap.
func sinceNanos(t *time.Time) int64 {
	now := time.Now()
	d := now.Sub(*t)
	*t = now
	return int64(d)
}

// recordSpans mirrors one executed query's stage timings onto the
// request trace (when one rides the context), so a slow-query log
// entry shows where inside the pipeline the time went.
func recordSpans(ctx context.Context, start time.Time, sc *StageCounts) {
	tr := obs.FromContext(ctx)
	if tr == nil {
		return
	}
	at := start
	for _, s := range []struct {
		name string
		ns   int64
	}{
		{"stage.index", sc.IndexNanos},
		{"stage.region", sc.RegionNanos},
		{"stage.filter", sc.FilterNanos},
		{"stage.rank", sc.RankNanos},
	} {
		tr.AddSpan(s.name, at, time.Duration(s.ns))
		at = at.Add(time.Duration(s.ns))
	}
}

// candidate is one image that survived the narrowing stages, with its
// spatial-predicate evaluation when the query has a Where clause.
type candidate struct {
	st    *stored
	where float64
	full  bool
}

// Query executes a composed retrieval request against the store. The
// candidate set flows through staged narrowers, cheapest first —
// inverted label index, R-tree region probe, spatial-predicate
// evaluation — and only the survivors reach the ranked top-K scoring
// the engine runs for plain similarity search. Extra options apply to a
// copy, so the Query value can be reused. The ranking is deterministic:
// score descending, id ascending on ties, whatever the shard count or
// parallelism.
//
// The whole pipeline runs against one pinned version of the store: an
// epoch is resolved once (the cursor's epoch when resuming a paginated
// query and that version is still retained, the current version
// otherwise) and no lock is acquired after that.
func (db *DB) Query(ctx context.Context, q *Query, opts ...QueryOption) (*Page, error) {
	page, err := db.execute(ctx, q.clone().apply(opts))
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	return page, nil
}

// iterBatch is the page size QueryIter fetches per cursor step.
const iterBatch = 256

// QueryIter streams the query's results in ranking order. It pages
// through the store with cursors (batches of iterBatch), so memory
// stays O(batch) even when the ranking is unbounded; WithK caps the
// total results yielded. The iterator pins one version of the store
// when it starts and streams every batch from it, so the sequence is a
// consistent point-in-time ranking: concurrent writers can neither
// remove a hit from the stream nor inject one mid-iteration. On error
// the sequence yields a zero Hit with the error and stops.
func (db *DB) QueryIter(ctx context.Context, q *Query, opts ...QueryOption) iter.Seq2[Hit, error] {
	spec := q.clone().apply(opts)
	return func(yield func(Hit, error) bool) {
		snap, cur, err := db.resolve(spec)
		if err != nil {
			yield(Hit{}, fmt.Errorf("query: %w", err))
			return
		}
		iterOn(ctx, db, snap, spec, cur, db.noteSearch)(yield)
	}
}

// iterOn streams a query's results from one pinned version — the shared
// engine behind DB.QueryIter and Snapshot.QueryIter. db supplies the
// scorer cache and planner statistics (nil: both unavailable); cur is
// the decoded resume position of the spec's initial cursor, if any;
// note (optional) receives each executed batch's page so a DB-backed
// iteration feeds the cumulative search counters.
func iterOn(ctx context.Context, db *DB, snap *snapshot, spec *Query, cur *cursorPos, note func(*Page)) iter.Seq2[Hit, error] {
	return func(yield func(Hit, error) bool) {
		s := spec.clone()
		unlimited := s.k == 0
		remaining := s.k
		for {
			step := s.clone()
			step.k = iterBatch
			if !unlimited && remaining < step.k {
				step.k = remaining
			}
			p, err := executeOn(ctx, db, snap, step, cur)
			if err != nil {
				yield(Hit{}, fmt.Errorf("query: %w", err))
				return
			}
			if note != nil {
				note(p)
			}
			for _, h := range p.Hits {
				if !yield(h, nil) {
					return
				}
			}
			if !unlimited {
				if remaining -= len(p.Hits); remaining <= 0 {
					return
				}
			}
			if p.NextCursor == "" {
				return
			}
			c, err := decodeCursor(p.NextCursor)
			if err != nil {
				yield(Hit{}, fmt.Errorf("query: %w", err))
				return
			}
			cur, s.offset = &c, 0
		}
	}
}

// resolve pins the version a query spec should run against — the epoch
// its cursor carries when that version is still retained, the current
// version otherwise — and returns the decoded cursor so the pipeline
// does not parse the token twice. One or two atomic loads, no locks. A
// sticky builder error or an undecodable cursor surfaces here so the
// pipeline never starts on a broken spec.
func (db *DB) resolve(q *Query) (*snapshot, *cursorPos, error) {
	if q.err != nil {
		return nil, nil, q.err
	}
	cur, err := q.decodedCursor()
	if err != nil {
		return nil, nil, err
	}
	if cur != nil && cur.Epoch != 0 {
		if pinned := db.findEpoch(cur.Epoch); pinned != nil {
			return pinned, cur, nil
		}
	}
	return db.current.Load(), cur, nil
}

// execute pins a version and runs the staged pipeline on it. Errors are
// returned unprefixed; the public entry points (Query, Search,
// SearchDSL) add their own context.
func (db *DB) execute(ctx context.Context, q *Query) (*Page, error) {
	snap, cur, err := db.resolve(q)
	if err != nil {
		return nil, err
	}
	page, err := executeOn(ctx, db, snap, q, cur)
	if err == nil {
		db.noteSearch(page)
	}
	return page, err
}

// noteSearch folds one executed page's stage counts and cache outcomes
// into the DB's cumulative filter-and-refine counters (one mutex, so
// readers get a coherent snapshot) and into the registry when metrics
// are enabled.
func (db *DB) noteSearch(page *Page) {
	if page == nil || page.Stages == nil {
		return
	}
	sc := page.Stages
	db.searchMu.Lock()
	db.search.Queries++
	db.search.Narrowed += uint64(sc.Narrowed)
	db.search.Bounded += uint64(sc.Bounded)
	db.search.Evaluated += uint64(sc.Evaluated)
	db.search.Pruned += uint64(sc.Pruned)
	if p := page.Plan; p != nil {
		db.search.CacheHits += uint64(p.CacheHits)
		db.search.CacheMisses += uint64(p.CacheMisses)
	}
	db.searchMu.Unlock()
	if m := db.metrics.Load(); m != nil {
		m.observeQuery(page)
	}
}

// executeOn runs the staged pipeline against one pinned, immutable
// version; db supplies the scorer cache and planner statistics (nil:
// both unavailable); cur is the query's already-decoded cursor (nil
// when none). From here on the query acquires no locks: every stage —
// label narrowing, region probe, predicate evaluation, top-K scoring —
// reads frozen maps and a frozen tree, so the view is consistent by
// construction and concurrent writers cost readers nothing.
func executeOn(ctx context.Context, db *DB, snap *snapshot, q *Query, cur *cursorPos) (*Page, error) {
	if q.err != nil {
		return nil, q.err
	}
	if q.image == nil && q.dsl == nil && q.region == nil {
		return nil, fmt.Errorf("empty query: need an image, a where clause or a region")
	}
	start := time.Now()

	// Resolve the scorer up front so an unknown name fails fast even if
	// no candidate survives the filters. A registry scorer may carry an
	// upper bound, enabling the refine stage below, and may be BE-pure,
	// enabling the scorer cache; an explicit WithScorerFunc scorer is
	// opaque and always evaluates exactly.
	scorer := q.scorer
	var bound Bound
	cacheable := false
	if scorer == nil && (q.image != nil || q.scorerName != "") {
		r, ok := lookupRegistered(q.scorerName)
		if !ok {
			return nil, fmt.Errorf("unknown scorer %q (registered: %s)",
				q.scorerName, strings.Join(ScorerNames(), ", "))
		}
		scorer = r.score
		if !q.noPrune {
			bound = r.bound
		}
		cacheable = r.pure
	}

	var img core.Image
	var queryBE core.BEString
	if q.image != nil {
		img = *q.image
		var err error
		if queryBE, err = core.Convert(img); err != nil {
			return nil, err
		}
	}

	// Stage 1 inputs. A Where clause narrows to images containing at
	// least one of its labels (an image satisfying any clause must),
	// otherwise an explicit LabelPrefilter narrows to images sharing an
	// icon label with the query image.
	mark := time.Now()
	var labels []string
	prefilter := false
	switch {
	case q.dsl != nil:
		for label := range q.dsl.Labels() {
			labels = append(labels, label)
		}
		prefilter = true
	case q.image != nil && q.labelPrefilter:
		labels = queryLabels(img)
		prefilter = true
	}

	// Plan — the cost-based planner picks the narrowing order from
	// snapshot statistics before any per-entry work; WithPlanner(false)
	// pins the fixed label → region → predicate order. Every plan
	// assembles the exact same candidate set (see plan.go), so the
	// branches below differ in work, never in results.
	var shapes *shapeStats
	if db != nil {
		shapes = &db.shapes
	}
	ep := planQuery(snap, q, labels, prefilter, shapes)
	plan := ep.Plan
	stages := &StageCounts{}

	var cands0 []*stored
	if ep.regionFirst {
		// Region-first: probe the (estimated tiny) region set, then
		// recover the label narrowing as a membership filter over it.
		ids := snap.regionIDSet(*q.region, q.regionLabel)
		cands0 = make([]*stored, 0, len(ids))
		for id := range ids {
			if st, ok := snap.lookup(id); ok {
				cands0 = append(cands0, st)
			}
		}
		stages.Indexed = len(cands0)
		stages.IndexNanos = sinceNanos(&mark)
		if prefilter {
			kept := cands0[:0]
			for _, st := range cands0 {
				if snap.hasAnyLabel(st.ID, labels) {
					kept = append(kept, st)
				}
			}
			cands0 = kept
		}
		stages.Region = len(cands0)
		stages.RegionNanos = sinceNanos(&mark)
	} else {
		// Label (or scan) first. A skipped postings union degrades to a
		// full scan; the label restriction is then recovered inline for
		// image-only prefilters and by the Where evaluation otherwise
		// (an image with none of the clause's labels satisfies nothing).
		if prefilter && !ep.skipLabels {
			cands0 = snap.collect(labels, prefilter)
		} else {
			cands0 = snap.collect(nil, false)
			if ep.skipLabels && prefilter && q.dsl == nil {
				kept := cands0[:0]
				for _, st := range cands0 {
					if snap.hasAnyLabel(st.ID, labels) {
						kept = append(kept, st)
					}
				}
				cands0 = kept
			}
		}
		stages.Indexed = len(cands0)
		stages.IndexNanos = sinceNanos(&mark)

		// Region filter — unless the plan defers it past the predicate
		// (filter-first) or proved it a no-op (region ⊇ corpus bounds).
		if q.region != nil && !ep.filterFirst && !ep.skipRegion {
			kept := cands0[:0]
			if ep.regionMember {
				for _, st := range cands0 {
					if snap.shardFor(st.ID).labels[q.regionLabel][st.ID] {
						kept = append(kept, st)
					}
				}
			} else {
				ids := snap.regionIDSet(*q.region, q.regionLabel)
				for _, st := range cands0 {
					if ids[st.ID] {
						kept = append(kept, st)
					}
				}
			}
			cands0 = kept
		}
		stages.Region = len(cands0)
		stages.RegionNanos = sinceNanos(&mark)
	}

	// Predicate stage — spatial-predicate evaluation. With a ranked
	// component the clause is a filter (default: every constraint must
	// hold); without one the satisfied fraction becomes the ranking
	// score.
	filterIn := len(cands0)
	cands := make([]candidate, 0, len(cands0))
	var whereByID map[string]candidate
	if q.dsl != nil {
		min := q.whereMin
		if min < 0 {
			if q.image != nil {
				min = 1
			} else {
				min = 0 // any positive fraction, the SearchDSL contract
			}
		}
		whereByID = make(map[string]candidate, len(cands0))
		for i, st := range cands0 {
			if i&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			frac, full := q.dsl.Eval(st.Image)
			if frac <= 0 || frac < min {
				continue
			}
			c := candidate{st: st, where: frac, full: full}
			cands = append(cands, c)
			whereByID[st.ID] = c
		}
		// The label stage narrowed on the clause's labels; an explicit
		// LabelPrefilter additionally requires sharing an icon label
		// with the query image.
		if q.image != nil && q.labelPrefilter {
			qset := make(map[string]bool)
			for _, l := range queryLabels(img) {
				qset[l] = true
			}
			kept := cands[:0]
			for _, c := range cands {
				for _, o := range c.st.Image.Objects {
					if qset[o.Label] {
						kept = append(kept, c)
						break
					}
				}
			}
			cands = kept
		}
		// Feed the observed pass-rate back into the planner's decaying
		// per-shape table (only meaningful when the clause actually
		// filtered a non-empty input).
		if shapes != nil && filterIn > 0 {
			shapes.note(q.dsl.String(), float64(len(cands))/float64(filterIn))
		}
	} else {
		for _, st := range cands0 {
			cands = append(cands, candidate{st: st})
		}
	}
	stages.FilterNanos = sinceNanos(&mark)

	// Filter-first plans deferred the region filter to here: a direct
	// geometric check per predicate survivor replaces the broad R-tree
	// probe (see regionMatches for the equivalence).
	if ep.filterFirst && q.region != nil {
		kept := cands[:0]
		for _, c := range cands {
			if regionMatches(&c.st.Image, *q.region, q.regionLabel) {
				kept = append(kept, c)
			}
		}
		cands = kept
		stages.RegionNanos = sinceNanos(&mark)
	}

	stages.Narrowed = len(cands)
	if len(cands) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stages.TotalNanos = int64(time.Since(start))
		recordSpans(ctx, start, stages)
		return &Page{Hits: []Hit{}, Epoch: snap.epoch, Stages: stages, Plan: plan}, nil
	}

	// Stage 4 — ranked scoring over the survivors, on the same bounded
	// top-K heap machinery as plain Search. The ranking score is the
	// scorer when the query has an image, the satisfied fraction when
	// spatial satisfaction itself is the ranking, and 0 for region-only
	// queries (ties break by id, so those list in id order).

	// Scorer cache: a BE-pure registry scorer's exact score is a pure
	// function of (scorer, query BE, entry version), so the DB-wide memo
	// can serve it byte-identically; the *stored pointer in the key is
	// the entry version (see scorercache.go). The query-side half of the
	// key is computed once here.
	var cache *scorerCache
	var qkey string
	if cacheable && q.image != nil && !q.noCache && db != nil {
		if cache = db.cache.Load(); cache != nil {
			name := q.scorerName
			if name == "" {
				name = DefaultScorerName
			}
			qkey = cacheQueryKey(name, queryBE)
		}
	}
	met := (*dbMetrics)(nil)
	if db != nil {
		met = db.metrics.Load()
	}

	workers := q.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	// Heap capacity covers the page plus the offset it skips, clamped to
	// the candidate count so a client cannot drive preallocation.
	heapK := 0
	if q.k > 0 {
		heapK = q.k + q.offset
		if heapK > len(cands) {
			heapK = len(cands)
		}
	}

	// Stage 4a — the refine stage's filter half. With a bound-declaring
	// scorer and a ranked image, each candidate's signature upper bound
	// is computed first (O(|labels|), no dynamic program); the exact
	// scorer runs only when the bound could still place the candidate.
	// Pruning never changes results — see the admission notes inside the
	// worker loop; each skip is taken only when the evaluated path would
	// provably have made the same decision.
	useBound := bound != nil && q.image != nil
	var qsig core.Signature
	if useBound {
		qsig = core.SignatureOf(queryBE)
	}

	heaps := make([]*topK, workers)
	counts := make([]int, workers)
	boundedN := make([]int, workers)
	evaluatedN := make([]int, workers)
	prunedN := make([]int, workers)
	cacheHitN := make([]int, workers)
	cacheMissN := make([]int, workers)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		h := newTopK(heapK)
		heaps[w] = h
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				c := cands[i]
				if useBound {
					if sig, ok := snap.signature(c.st.ID); ok {
						boundedN[w]++
						ub := bound(qsig, sig)
						if ub < q.minScore {
							// exact <= ub < MinScore: evaluating would have
							// dropped the candidate before it was counted.
							prunedN[w]++
							continue
						}
						if q.minScore <= 0 && h.full() && worse(Result{ID: c.st.ID, Score: ub}, h.min()) {
							// The bound already loses to this worker's top-K
							// floor, so the exact result (<= ub) would be
							// rejected by h.add on the same comparison. It
							// would still have been counted in Total: its
							// score is >= 0 >= MinScore, and it is strictly
							// worse than the cursor position because the
							// floor — admitted past the cursor check — is.
							// (With MinScore > 0 the exact score could fall
							// below the threshold and change Total, so this
							// shortcut is taken only when the threshold
							// cannot filter; the MinScore bound above still
							// prunes.)
							counts[w]++
							prunedN[w]++
							continue
						}
					}
				}
				evaluatedN[w]++
				var score float64
				switch {
				case q.image != nil:
					if cache != nil {
						// The bound check above already ran, so a hit skips
						// the whole dynamic program, not just part of it.
						k := cacheKey{query: qkey, entry: c.st}
						var t0 time.Time
						if met != nil {
							t0 = time.Now()
						}
						s, ok := cache.get(k)
						if met != nil {
							met.observeCacheLookup(time.Since(t0))
						}
						if ok {
							cacheHitN[w]++
							score = s
						} else {
							cacheMissN[w]++
							score = scorer(img, queryBE, c.st.Entry)
							cache.put(k, score)
						}
					} else {
						score = scorer(img, queryBE, c.st.Entry)
					}
				case q.dsl != nil:
					score = c.where
				}
				r := Result{ID: c.st.ID, Name: c.st.Name, Score: score}
				if r.Score < q.minScore {
					continue
				}
				if cur != nil && !worse(r, Result{ID: cur.ID, Score: cur.Score}) {
					continue
				}
				counts[w]++
				h.add(r)
			}
		}(w)
	}
	var cancelled error
feed:
	for i := range cands {
		select {
		case jobs <- i:
		case <-ctx.Done():
			cancelled = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled != nil {
		return nil, cancelled
	}

	total := 0
	for w := range counts {
		total += counts[w]
		stages.Bounded += boundedN[w]
		stages.Evaluated += evaluatedN[w]
		stages.Pruned += prunedN[w]
		plan.CacheHits += cacheHitN[w]
		plan.CacheMisses += cacheMissN[w]
	}
	ranked := mergeTopK(heaps, heapK)

	// Pagination: drop the offset, truncate to the page.
	if q.offset >= len(ranked) {
		ranked = ranked[:0]
	} else {
		ranked = ranked[q.offset:]
	}
	if q.k > 0 && len(ranked) > q.k {
		ranked = ranked[:q.k]
	}

	page := &Page{Hits: make([]Hit, len(ranked)), Total: total, Epoch: snap.epoch, Stages: stages, Plan: plan}
	for i, r := range ranked {
		h := Hit{ID: r.ID, Name: r.Name, Score: r.Score}
		if q.dsl != nil {
			if c, ok := whereByID[r.ID]; ok {
				h.Where, h.Full = c.where, c.full
			}
		}
		page.Hits[i] = h
	}
	if q.k > 0 && len(page.Hits) == q.k && total > q.offset+q.k {
		page.NextCursor = encodeCursor(ranked[len(ranked)-1], snap.epoch)
	}
	stages.RankNanos = sinceNanos(&mark)
	stages.TotalNanos = int64(time.Since(start))
	recordSpans(ctx, start, stages)
	return page, nil
}
