package imagedb

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"strings"
	"sync"
	"time"

	"bestring/internal/core"
	"bestring/internal/obs"
)

// Hit is one result of a composed query.
type Hit struct {
	ID    string  `json:"id"`
	Name  string  `json:"name,omitempty"`
	Score float64 `json:"score"`
	// Where is the satisfied fraction of the spatial-predicate filter;
	// present only when the query has a Where clause.
	Where float64 `json:"where,omitempty"`
	// Full reports that every Where clause held.
	Full bool `json:"full,omitempty"`
}

// Page is one page of query results.
type Page struct {
	Hits []Hit `json:"hits"`
	// Total counts the results matching the query — after filters,
	// MinScore and the cursor, before K/Offset truncation.
	Total int `json:"total"`
	// NextCursor resumes the ranking after the last hit of this page;
	// empty when the ranking is exhausted. The cursor pins this page's
	// epoch, so (while the version stays retained) later pages read the
	// exact same state and can neither skip nor duplicate a hit under
	// concurrent writers.
	NextCursor string `json:"nextCursor,omitempty"`
	// Epoch identifies the immutable version this page was computed from.
	Epoch uint64 `json:"epoch,omitempty"`
	// Stages reports how many candidates each pipeline stage let
	// through for this query — the observability hook for pruning
	// efficacy. Always populated by the pipeline.
	Stages *StageCounts `json:"stages,omitempty"`
}

// StageCounts are the per-stage candidate counts of one executed query:
// how the staged pipeline narrowed the corpus down to the entries that
// actually paid an exact scorer evaluation. Hits/Total/NextCursor are
// byte-identical whatever these counts say; they only describe how much
// work producing them took.
type StageCounts struct {
	// Indexed counts candidates after stage 1, the inverted-label
	// narrowing (the full version size when no label filter applies).
	Indexed int `json:"indexed"`
	// Region counts candidates surviving stage 2, the R-tree region
	// probe (equal to Indexed when the query has no region).
	Region int `json:"region"`
	// Narrowed counts candidates surviving stage 3, the
	// spatial-predicate filter — the set entering ranked scoring.
	Narrowed int `json:"narrowed"`
	// Bounded counts candidates whose signature upper bound was
	// computed in the refine stage (zero when the scorer declares no
	// bound, pruning is disabled, or the query has no ranked image).
	Bounded int `json:"bounded"`
	// Evaluated counts exact scorer evaluations actually run.
	Evaluated int `json:"evaluated"`
	// Pruned counts candidates rejected on the bound alone: Bounded =
	// Evaluated' + Pruned where Evaluated' is the bounded candidates
	// that went on to exact evaluation. Under parallelism the split
	// between Evaluated and Pruned can vary run to run (it depends on
	// how fast each worker's top-K floor rises); the ranking cannot.
	Pruned int `json:"pruned"`

	// Per-stage wall-clock time in nanoseconds, chained so the four
	// stage timers cover the pipeline body with no gaps; TotalNanos
	// additionally covers scorer resolution and query conversion before
	// stage 1. Omitted from JSON when zero (e.g. pages decoded from old
	// servers). These feed the bestring_query_stage_seconds histograms
	// and the slow-query log, and are the raw selectivity/latency
	// statistics the planned cost-based planner needs.
	IndexNanos  int64 `json:"indexNs,omitempty"`
	RegionNanos int64 `json:"regionNs,omitempty"`
	FilterNanos int64 `json:"filterNs,omitempty"`
	RankNanos   int64 `json:"rankNs,omitempty"`
	TotalNanos  int64 `json:"totalNs,omitempty"`
}

// sinceNanos returns the nanoseconds elapsed since *t and resets *t to
// now, so consecutive stage timers chain without gaps or overlap.
func sinceNanos(t *time.Time) int64 {
	now := time.Now()
	d := now.Sub(*t)
	*t = now
	return int64(d)
}

// recordSpans mirrors one executed query's stage timings onto the
// request trace (when one rides the context), so a slow-query log
// entry shows where inside the pipeline the time went.
func recordSpans(ctx context.Context, start time.Time, sc *StageCounts) {
	tr := obs.FromContext(ctx)
	if tr == nil {
		return
	}
	at := start
	for _, s := range []struct {
		name string
		ns   int64
	}{
		{"stage.index", sc.IndexNanos},
		{"stage.region", sc.RegionNanos},
		{"stage.filter", sc.FilterNanos},
		{"stage.rank", sc.RankNanos},
	} {
		tr.AddSpan(s.name, at, time.Duration(s.ns))
		at = at.Add(time.Duration(s.ns))
	}
}

// candidate is one image that survived the narrowing stages, with its
// spatial-predicate evaluation when the query has a Where clause.
type candidate struct {
	st    *stored
	where float64
	full  bool
}

// Query executes a composed retrieval request against the store. The
// candidate set flows through staged narrowers, cheapest first —
// inverted label index, R-tree region probe, spatial-predicate
// evaluation — and only the survivors reach the ranked top-K scoring
// the engine runs for plain similarity search. Extra options apply to a
// copy, so the Query value can be reused. The ranking is deterministic:
// score descending, id ascending on ties, whatever the shard count or
// parallelism.
//
// The whole pipeline runs against one pinned version of the store: an
// epoch is resolved once (the cursor's epoch when resuming a paginated
// query and that version is still retained, the current version
// otherwise) and no lock is acquired after that.
func (db *DB) Query(ctx context.Context, q *Query, opts ...QueryOption) (*Page, error) {
	page, err := db.execute(ctx, q.clone().apply(opts))
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	return page, nil
}

// iterBatch is the page size QueryIter fetches per cursor step.
const iterBatch = 256

// QueryIter streams the query's results in ranking order. It pages
// through the store with cursors (batches of iterBatch), so memory
// stays O(batch) even when the ranking is unbounded; WithK caps the
// total results yielded. The iterator pins one version of the store
// when it starts and streams every batch from it, so the sequence is a
// consistent point-in-time ranking: concurrent writers can neither
// remove a hit from the stream nor inject one mid-iteration. On error
// the sequence yields a zero Hit with the error and stops.
func (db *DB) QueryIter(ctx context.Context, q *Query, opts ...QueryOption) iter.Seq2[Hit, error] {
	spec := q.clone().apply(opts)
	return func(yield func(Hit, error) bool) {
		snap, cur, err := db.resolve(spec)
		if err != nil {
			yield(Hit{}, fmt.Errorf("query: %w", err))
			return
		}
		iterOn(ctx, snap, spec, cur, db.noteSearch)(yield)
	}
}

// iterOn streams a query's results from one pinned version — the shared
// engine behind DB.QueryIter and Snapshot.QueryIter. cur is the decoded
// resume position of the spec's initial cursor, if any; note (optional)
// receives each batch's stage counts so a DB-backed iteration feeds the
// cumulative search counters.
func iterOn(ctx context.Context, snap *snapshot, spec *Query, cur *cursorPos, note func(*StageCounts)) iter.Seq2[Hit, error] {
	return func(yield func(Hit, error) bool) {
		s := spec.clone()
		unlimited := s.k == 0
		remaining := s.k
		for {
			step := s.clone()
			step.k = iterBatch
			if !unlimited && remaining < step.k {
				step.k = remaining
			}
			p, err := executeOn(ctx, snap, step, cur)
			if err != nil {
				yield(Hit{}, fmt.Errorf("query: %w", err))
				return
			}
			if note != nil {
				note(p.Stages)
			}
			for _, h := range p.Hits {
				if !yield(h, nil) {
					return
				}
			}
			if !unlimited {
				if remaining -= len(p.Hits); remaining <= 0 {
					return
				}
			}
			if p.NextCursor == "" {
				return
			}
			c, err := decodeCursor(p.NextCursor)
			if err != nil {
				yield(Hit{}, fmt.Errorf("query: %w", err))
				return
			}
			cur, s.offset = &c, 0
		}
	}
}

// resolve pins the version a query spec should run against — the epoch
// its cursor carries when that version is still retained, the current
// version otherwise — and returns the decoded cursor so the pipeline
// does not parse the token twice. One or two atomic loads, no locks. A
// sticky builder error or an undecodable cursor surfaces here so the
// pipeline never starts on a broken spec.
func (db *DB) resolve(q *Query) (*snapshot, *cursorPos, error) {
	if q.err != nil {
		return nil, nil, q.err
	}
	cur, err := q.decodedCursor()
	if err != nil {
		return nil, nil, err
	}
	if cur != nil && cur.Epoch != 0 {
		if pinned := db.findEpoch(cur.Epoch); pinned != nil {
			return pinned, cur, nil
		}
	}
	return db.current.Load(), cur, nil
}

// execute pins a version and runs the staged pipeline on it. Errors are
// returned unprefixed; the public entry points (Query, Search,
// SearchDSL) add their own context.
func (db *DB) execute(ctx context.Context, q *Query) (*Page, error) {
	snap, cur, err := db.resolve(q)
	if err != nil {
		return nil, err
	}
	page, err := executeOn(ctx, snap, q, cur)
	if err == nil {
		db.noteSearch(page.Stages)
	}
	return page, err
}

// noteSearch folds one query's stage counts into the DB's cumulative
// filter-and-refine counters (one mutex, so readers get a coherent
// snapshot) and into the registry when metrics are enabled.
func (db *DB) noteSearch(sc *StageCounts) {
	if sc == nil {
		return
	}
	db.searchMu.Lock()
	db.search.Queries++
	db.search.Narrowed += uint64(sc.Narrowed)
	db.search.Bounded += uint64(sc.Bounded)
	db.search.Evaluated += uint64(sc.Evaluated)
	db.search.Pruned += uint64(sc.Pruned)
	db.searchMu.Unlock()
	if m := db.metrics.Load(); m != nil {
		m.observeQuery(sc)
	}
}

// executeOn runs the staged pipeline against one pinned, immutable
// version; cur is the query's already-decoded cursor (nil when none).
// From here on the query acquires no locks: every stage — label
// narrowing, region probe, predicate evaluation, top-K scoring — reads
// frozen maps and a frozen tree, so the view is consistent by
// construction and concurrent writers cost readers nothing.
func executeOn(ctx context.Context, snap *snapshot, q *Query, cur *cursorPos) (*Page, error) {
	if q.err != nil {
		return nil, q.err
	}
	if q.image == nil && q.dsl == nil && q.region == nil {
		return nil, fmt.Errorf("empty query: need an image, a where clause or a region")
	}
	start := time.Now()

	// Resolve the scorer up front so an unknown name fails fast even if
	// no candidate survives the filters. A registry scorer may carry an
	// upper bound, enabling the refine stage below; an explicit
	// WithScorerFunc scorer is opaque and always evaluates exactly.
	scorer := q.scorer
	var bound Bound
	if scorer == nil && (q.image != nil || q.scorerName != "") {
		r, ok := lookupRegistered(q.scorerName)
		if !ok {
			return nil, fmt.Errorf("unknown scorer %q (registered: %s)",
				q.scorerName, strings.Join(ScorerNames(), ", "))
		}
		scorer = r.score
		if !q.noPrune {
			bound = r.bound
		}
	}

	var img core.Image
	var queryBE core.BEString
	if q.image != nil {
		img = *q.image
		var err error
		if queryBE, err = core.Convert(img); err != nil {
			return nil, err
		}
	}

	// Stage 1 — inverted label index. A Where clause narrows to images
	// containing at least one of its labels (an image satisfying any
	// clause must), otherwise an explicit LabelPrefilter narrows to
	// images sharing an icon label with the query image.
	mark := time.Now()
	var labels []string
	prefilter := false
	switch {
	case q.dsl != nil:
		for label := range q.dsl.Labels() {
			labels = append(labels, label)
		}
		prefilter = true
	case q.image != nil && q.labelPrefilter:
		labels = queryLabels(img)
		prefilter = true
	}
	cands0 := snap.collect(labels, prefilter)
	stages := &StageCounts{Indexed: len(cands0)}
	stages.IndexNanos = sinceNanos(&mark)

	// Stage 2 — R-tree region probe: keep images with an icon in the
	// region before any per-image work.
	if q.region != nil {
		ids := snap.regionIDSet(*q.region, q.regionLabel)
		kept := cands0[:0]
		for _, st := range cands0 {
			if ids[st.ID] {
				kept = append(kept, st)
			}
		}
		cands0 = kept
	}
	stages.Region = len(cands0)
	stages.RegionNanos = sinceNanos(&mark)

	// Stage 3 — spatial-predicate evaluation. With a ranked component
	// the clause is a filter (default: every constraint must hold);
	// without one the satisfied fraction becomes the ranking score.
	cands := make([]candidate, 0, len(cands0))
	var whereByID map[string]candidate
	if q.dsl != nil {
		min := q.whereMin
		if min < 0 {
			if q.image != nil {
				min = 1
			} else {
				min = 0 // any positive fraction, the SearchDSL contract
			}
		}
		whereByID = make(map[string]candidate, len(cands0))
		for i, st := range cands0 {
			if i&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			frac, full := q.dsl.Eval(st.Image)
			if frac <= 0 || frac < min {
				continue
			}
			c := candidate{st: st, where: frac, full: full}
			cands = append(cands, c)
			whereByID[st.ID] = c
		}
		// Stage 1 narrowed on the clause's labels; an explicit
		// LabelPrefilter additionally requires sharing an icon label
		// with the query image.
		if q.image != nil && q.labelPrefilter {
			qset := make(map[string]bool)
			for _, l := range queryLabels(img) {
				qset[l] = true
			}
			kept := cands[:0]
			for _, c := range cands {
				for _, o := range c.st.Image.Objects {
					if qset[o.Label] {
						kept = append(kept, c)
						break
					}
				}
			}
			cands = kept
		}
	} else {
		for _, st := range cands0 {
			cands = append(cands, candidate{st: st})
		}
	}

	stages.Narrowed = len(cands)
	stages.FilterNanos = sinceNanos(&mark)
	if len(cands) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stages.TotalNanos = int64(time.Since(start))
		recordSpans(ctx, start, stages)
		return &Page{Hits: []Hit{}, Epoch: snap.epoch, Stages: stages}, nil
	}

	// Stage 4 — ranked scoring over the survivors, on the same bounded
	// top-K heap machinery as plain Search. The ranking score is the
	// scorer when the query has an image, the satisfied fraction when
	// spatial satisfaction itself is the ranking, and 0 for region-only
	// queries (ties break by id, so those list in id order).
	rank := func(c candidate) float64 {
		switch {
		case q.image != nil:
			return scorer(img, queryBE, c.st.Entry)
		case q.dsl != nil:
			return c.where
		default:
			return 0
		}
	}

	workers := q.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	// Heap capacity covers the page plus the offset it skips, clamped to
	// the candidate count so a client cannot drive preallocation.
	heapK := 0
	if q.k > 0 {
		heapK = q.k + q.offset
		if heapK > len(cands) {
			heapK = len(cands)
		}
	}

	// Stage 4a — the refine stage's filter half. With a bound-declaring
	// scorer and a ranked image, each candidate's signature upper bound
	// is computed first (O(|labels|), no dynamic program); the exact
	// scorer runs only when the bound could still place the candidate.
	// Pruning never changes results — see the admission notes inside the
	// worker loop; each skip is taken only when the evaluated path would
	// provably have made the same decision.
	useBound := bound != nil && q.image != nil
	var qsig core.Signature
	if useBound {
		qsig = core.SignatureOf(queryBE)
	}

	heaps := make([]*topK, workers)
	counts := make([]int, workers)
	boundedN := make([]int, workers)
	evaluatedN := make([]int, workers)
	prunedN := make([]int, workers)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		h := newTopK(heapK)
		heaps[w] = h
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				c := cands[i]
				if useBound {
					if sig, ok := snap.signature(c.st.ID); ok {
						boundedN[w]++
						ub := bound(qsig, sig)
						if ub < q.minScore {
							// exact <= ub < MinScore: evaluating would have
							// dropped the candidate before it was counted.
							prunedN[w]++
							continue
						}
						if q.minScore <= 0 && h.full() && worse(Result{ID: c.st.ID, Score: ub}, h.min()) {
							// The bound already loses to this worker's top-K
							// floor, so the exact result (<= ub) would be
							// rejected by h.add on the same comparison. It
							// would still have been counted in Total: its
							// score is >= 0 >= MinScore, and it is strictly
							// worse than the cursor position because the
							// floor — admitted past the cursor check — is.
							// (With MinScore > 0 the exact score could fall
							// below the threshold and change Total, so this
							// shortcut is taken only when the threshold
							// cannot filter; the MinScore bound above still
							// prunes.)
							counts[w]++
							prunedN[w]++
							continue
						}
					}
				}
				evaluatedN[w]++
				r := Result{ID: c.st.ID, Name: c.st.Name, Score: rank(c)}
				if r.Score < q.minScore {
					continue
				}
				if cur != nil && !worse(r, Result{ID: cur.ID, Score: cur.Score}) {
					continue
				}
				counts[w]++
				h.add(r)
			}
		}(w)
	}
	var cancelled error
feed:
	for i := range cands {
		select {
		case jobs <- i:
		case <-ctx.Done():
			cancelled = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled != nil {
		return nil, cancelled
	}

	total := 0
	for w := range counts {
		total += counts[w]
		stages.Bounded += boundedN[w]
		stages.Evaluated += evaluatedN[w]
		stages.Pruned += prunedN[w]
	}
	ranked := mergeTopK(heaps, heapK)

	// Pagination: drop the offset, truncate to the page.
	if q.offset >= len(ranked) {
		ranked = ranked[:0]
	} else {
		ranked = ranked[q.offset:]
	}
	if q.k > 0 && len(ranked) > q.k {
		ranked = ranked[:q.k]
	}

	page := &Page{Hits: make([]Hit, len(ranked)), Total: total, Epoch: snap.epoch, Stages: stages}
	for i, r := range ranked {
		h := Hit{ID: r.ID, Name: r.Name, Score: r.Score}
		if q.dsl != nil {
			if c, ok := whereByID[r.ID]; ok {
				h.Where, h.Full = c.where, c.full
			}
		}
		page.Hits[i] = h
	}
	if q.k > 0 && len(page.Hits) == q.k && total > q.offset+q.k {
		page.NextCursor = encodeCursor(ranked[len(ranked)-1], snap.epoch)
	}
	stages.RankNanos = sinceNanos(&mark)
	stages.TotalNanos = int64(time.Since(start))
	recordSpans(ctx, start, stages)
	return page, nil
}
