package imagedb

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"bestring/internal/core"
	"bestring/internal/wal"
)

// collectDurable drains a primary's WAL through its durable horizon.
func collectDurable(t *testing.T, s *Store) []wal.Record {
	t.Helper()
	tl := s.TailWAL(0)
	defer tl.Close()
	durable := s.DurableLSN()
	var recs []wal.Record
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for tl.NextLSN() <= durable {
		rec, err := tl.Next(ctx)
		if err != nil {
			t.Fatalf("tail: %v", err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func TestReplicaRejectsLocalMutations(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Insert("a", "", storeImage(1)); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Insert on replica = %v", err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Delete on replica = %v", err)
	}
	if err := s.InsertObject("a", core.Object{Label: "X", Box: core.NewRect(0, 0, 1, 1)}); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("InsertObject on replica = %v", err)
	}
	if err := s.DeleteObject("a", "X"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("DeleteObject on replica = %v", err)
	}
	if err := s.BulkInsert(context.Background(), []BulkItem{{ID: "a", Image: storeImage(1)}}, 0); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("BulkInsert on replica = %v", err)
	}
	if !s.Replica() || s.StoreID() == "" {
		t.Fatalf("replica=%v id=%q", s.Replica(), s.StoreID())
	}
}

func TestApplyReplicatedBatchMirrorsPrimary(t *testing.T) {
	primary, err := OpenStore(t.TempDir(), StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	for i := 0; i < 6; i++ {
		if err := primary.Insert(fmt.Sprintf("img%d", i), "n", storeImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Delete("img3"); err != nil {
		t.Fatal(err)
	}
	if err := primary.InsertObject("img0", core.Object{Label: "C", Box: core.NewRect(5, 5, 6, 6)}); err != nil {
		t.Fatal(err)
	}
	if err := primary.BulkInsert(context.Background(),
		[]BulkItem{{ID: "bulk0", Image: storeImage(7)}, {ID: "bulk1", Image: storeImage(8)}}, 0); err != nil {
		t.Fatal(err)
	}
	recs := collectDurable(t, primary)
	if len(recs) == 0 {
		t.Fatal("no durable records on primary")
	}

	follower, err := OpenStore(t.TempDir(), StoreOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	// Apply in two batches, as a streaming follower would.
	half := len(recs) / 2
	if err := follower.ApplyReplicatedBatch(recs[:half]); err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyReplicatedBatch(recs[half:]); err != nil {
		t.Fatal(err)
	}
	if got, want := follower.AppliedLSN(), primary.AppliedLSN(); got != want {
		t.Fatalf("follower applied=%d, primary=%d", got, want)
	}
	if follower.VisibleLSN() != follower.AppliedLSN() {
		t.Fatalf("visible=%d applied=%d", follower.VisibleLSN(), follower.AppliedLSN())
	}
	// The follower serves the same state: identical snapshot bytes.
	want := saveBytes(t, primary.Save)
	got := saveBytes(t, follower.Save)
	if string(got) != string(want) {
		t.Fatalf("follower state diverged from primary:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	// A replayed LSN is rejected (no duplicates)...
	if err := follower.ApplyReplicatedBatch(recs[half:]); err == nil {
		t.Fatal("re-applied batch accepted")
	}
	// ...and a gap is rejected too: continuity is enforced at the WAL.
	gap := []wal.Record{{LSN: follower.AppliedLSN() + 2, Op: wal.OpDelete, ID: "img0"}}
	if err := follower.ApplyReplicatedBatch(gap); err == nil {
		t.Fatal("gapped batch accepted")
	}
}

func TestApplyReplicatedBatchAllOrNothing(t *testing.T) {
	follower, err := OpenStore(t.TempDir(), StoreOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	img := storeImage(1)
	good := wal.Record{LSN: 1, Op: wal.OpInsert, ID: "a", Image: &img}
	bad := wal.Record{LSN: 2, Op: wal.OpDelete, ID: "missing"}
	if err := follower.ApplyReplicatedBatch([]wal.Record{good, bad}); err == nil {
		t.Fatal("batch with invalid record accepted")
	}
	// Nothing applied, nothing logged: the store is untouched.
	if follower.Len() != 0 || follower.AppliedLSN() != 0 || follower.DurableLSN() != 0 {
		t.Fatalf("partial apply: len=%d applied=%d durable=%d",
			follower.Len(), follower.AppliedLSN(), follower.DurableLSN())
	}
	// The same first record still applies cleanly afterwards.
	if err := follower.ApplyReplicatedBatch([]wal.Record{good}); err != nil {
		t.Fatal(err)
	}
	if follower.Len() != 1 || follower.AppliedLSN() != 1 {
		t.Fatalf("len=%d applied=%d", follower.Len(), follower.AppliedLSN())
	}
}

func TestReplicaCrashRestartResumes(t *testing.T) {
	primary, err := OpenStore(t.TempDir(), StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	for i := 0; i < 10; i++ {
		if err := primary.Insert(fmt.Sprintf("img%d", i), "n", storeImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	recs := collectDurable(t, primary)

	dir := t.TempDir()
	follower, err := OpenStore(dir, StoreOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyReplicatedBatch(recs[:4]); err != nil {
		t.Fatal(err)
	}
	if err := follower.Close(); err != nil { // "crash" after a clean batch
		t.Fatal(err)
	}
	follower, err = OpenStore(dir, StoreOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if got := follower.AppliedLSN(); got != recs[3].LSN {
		t.Fatalf("resumed applied=%d, want %d", got, recs[3].LSN)
	}
	// Resume exactly where the local log ends: no gaps, no duplicates.
	if err := follower.ApplyReplicatedBatch(recs[4:]); err != nil {
		t.Fatal(err)
	}
	if saveA, saveB := saveBytes(t, primary.Save), saveBytes(t, follower.Save); string(saveA) != string(saveB) {
		t.Fatal("resumed follower state diverged from primary")
	}
}

func TestWaitVisible(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Insert("a", "", storeImage(1)); err != nil {
		t.Fatal(err)
	}
	// Already-visible LSNs return immediately.
	if err := s.WaitVisible(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// A future LSN blocks until the write publishes.
	done := make(chan error, 1)
	go func() { done <- s.WaitVisible(context.Background(), 2) }()
	select {
	case err := <-done:
		t.Fatalf("WaitVisible(2) returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := s.Insert("b", "", storeImage(2)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitVisible(2) did not wake after the write published")
	}
	// Context expiry unblocks a wait that can never be satisfied.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.WaitVisible(ctx, 99); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitVisible(99) = %v", err)
	}
}

func TestPruneFloorRetainsSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{
		Fsync:           FsyncAlways,
		SegmentBytes:    512,
		CheckpointBytes: -1, // manual checkpoints only
		NoGroupCommit:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		if err := s.Insert(fmt.Sprintf("img%d", i), "n", storeImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A follower acked only through LSN 5: segments past it must survive
	// the checkpoint.
	s.SetPruneFloor(func() uint64 { return 5 })
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if oldest := s.OldestLSN(); oldest > 6 {
		t.Fatalf("oldest=%d after floor-5 checkpoint: follower backlog pruned", oldest)
	}
	tl := s.TailWAL(5)
	defer tl.Close()
	rec, err := tl.Next(context.Background())
	if err != nil || rec.LSN != 6 {
		t.Fatalf("backlog tail: rec=%+v err=%v", rec, err)
	}
	// Floor released (follower caught up): the next checkpoint prunes.
	s.SetPruneFloor(nil)
	if err := s.Insert("extra", "n", storeImage(99)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if oldest := s.OldestLSN(); oldest <= 6 {
		t.Fatalf("oldest=%d after unconstrained checkpoint: nothing pruned", oldest)
	}
	if s.StoreStats().WAL.OldestLSN != s.OldestLSN() {
		t.Fatal("stats oldest disagrees with OldestLSN")
	}
}
