package imagedb

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bestring/internal/core"
	"bestring/internal/fsutil"
	"bestring/internal/wal"
)

// This file is the store's replication surface (DESIGN.md section 9).
// A follower store (StoreOptions.Replica) never originates mutations:
// its state advances only through ApplyReplicatedBatch, which replays
// WAL records shipped from a primary through the same validate→apply
// machinery local mutations use — one transaction, one append to the
// follower's OWN log (a byte-for-byte re-framing of the primary's
// records, preserving LSNs), one fsync, one published MVCC version.
// The primary side exposes the durable horizon (DurableLSN, WaitDurable,
// TailWAL) the internal/repl server streams from, and the prune floor
// that keeps segments a connected follower still needs.

// ErrReadOnlyReplica is returned by mutation methods on a follower
// store. Writes belong on the primary; the HTTP layer turns this into a
// redirect.
var ErrReadOnlyReplica = errors.New("store is a read-only replica")

// storeIDFile holds the store's random identity, minted on first open.
// Two stores share an id only if one was replicated (or copied) from
// the other — which is exactly the question a follower must answer
// before applying a stream: "is this primary's history my history?"
const storeIDFile = "STOREID"

// loadOrCreateStoreID reads the store identity in dir, minting and
// durably persisting a fresh one for a new store.
func loadOrCreateStoreID(dir string) (string, error) {
	path := filepath.Join(dir, storeIDFile)
	if data, err := os.ReadFile(path); err == nil {
		id := strings.TrimSpace(string(data))
		if id != "" {
			return id, nil
		}
	}
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", fmt.Errorf("mint store id: %w", err)
	}
	id := hex.EncodeToString(raw[:])
	err := fsutil.AtomicWriteFile(path, func(w io.Writer) error {
		_, werr := fmt.Fprintln(w, id)
		return werr
	})
	if err != nil {
		return "", fmt.Errorf("write store id: %w", err)
	}
	return id, nil
}

// StoreID returns the store's durable random identity.
func (s *Store) StoreID() string { return s.id }

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Replica reports whether the store is a read-only replication follower.
func (s *Store) Replica() bool { return s.opts.Replica }

// DurableLSN returns the highest LSN on stable storage — the horizon the
// replication stream ships to followers.
func (s *Store) DurableLSN() uint64 { return s.log.DurableLSN() }

// OldestLSN returns the first LSN still retained in the WAL: a follower
// behind it cannot catch up from this store and must be re-seeded.
func (s *Store) OldestLSN() uint64 { return s.log.OldestLSN() }

// AppliedLSN returns the LSN of the last record applied to this store —
// on a follower, how far it has replayed the primary's history.
func (s *Store) AppliedLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appliedLSN
}

// VisibleLSN returns the highest LSN whose effects are observable in a
// published MVCC version: the read-your-writes horizon.
func (s *Store) VisibleLSN() uint64 { return s.visibleLSN.Load() }

// WaitVisible blocks until VisibleLSN() >= lsn, the context is done, or
// the store closes. It is the wait half of min_lsn read routing.
func (s *Store) WaitVisible(ctx context.Context, lsn uint64) error {
	for {
		if s.visibleLSN.Load() >= lsn {
			return nil
		}
		s.mu.Lock()
		if s.visibleLSN.Load() >= lsn {
			s.mu.Unlock()
			return nil
		}
		if s.closed {
			s.mu.Unlock()
			return ErrStoreClosed
		}
		ch := s.visibleCh
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// TailWAL streams this store's WAL records after the given LSN (see
// wal.Tailer) — the primary side of a replication feed.
func (s *Store) TailWAL(afterLSN uint64) *wal.Tailer { return s.log.Tail(afterLSN) }

// SetPruneFloor installs fn as the checkpoint prune cap: WAL segments
// holding records with LSN > fn() survive checkpoints so connected
// followers can still stream them. fn must be safe for concurrent use
// and should return the minimum acked LSN across followers (or a value
// >= the last LSN when nothing constrains pruning). Pass nil to remove
// the floor.
func (s *Store) SetPruneFloor(fn func() uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneFloor = fn
}

// ApplyReplicatedBatch applies a run of consecutive primary WAL records
// to a follower store. The records must continue this store's LSN
// sequence exactly (the primary streams them in order; wal.AppendBatch
// re-verifies). The batch is all-or-nothing and follows the same
// durability-before-visibility order as a local commit group:
//
//  1. validate + apply every record to ONE copy-on-write transaction —
//     a record that fails leaves the store untouched and poisons the
//     stream (the follower disconnects rather than diverge);
//  2. append all records to the follower's own WAL as one batch with
//     one fsync, preserving the primary's LSNs byte-for-byte, so a
//     follower crash recovers locally and resumes from its own log;
//  3. publish the transaction as one MVCC version and mark it visible.
//
// It bypasses the group-commit batcher (a follower has no concurrent
// writers to coalesce — the stream is already serialised) but reuses
// the same txn/publish machinery, so reads on a follower see exactly
// the states the primary published, batch-granular.
func (s *Store) ApplyReplicatedBatch(recs []wal.Record) error {
	return s.applyReplicated(recs, nil)
}

// ApplyReplicatedFrames is ApplyReplicatedBatch for records that
// arrived with their wire frames: frames[i] must be the verified frame
// of recs[i] (wal.ReadFrameRaw returns both), and is appended to the
// follower's log verbatim — making "the follower's log holds the
// primary's bytes" literal, and skipping the per-record re-encode.
func (s *Store) ApplyReplicatedFrames(recs []wal.Record, frames [][]byte) error {
	if len(frames) != len(recs) {
		return fmt.Errorf("%d frames for %d records", len(frames), len(recs))
	}
	return s.applyReplicated(recs, frames)
}

func (s *Store) applyReplicated(recs []wal.Record, frames [][]byte) error {
	if !s.opts.Replica {
		return errors.New("ApplyReplicatedBatch on a non-replica store")
	}
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	db := s.db
	db.writeMu.Lock()
	defer db.writeMu.Unlock()

	m := beginTxn(db.current.Load())
	for i := range recs {
		if err := applyRecordTxn(db, m, &recs[i]); err != nil {
			return fmt.Errorf("replicated record lsn %d (%s %q): %w",
				recs[i].LSN, recs[i].Op, recs[i].ID, err)
		}
	}
	var n int
	var err error
	if frames != nil {
		n, err = s.log.AppendBatchFrames(recs, frames)
	} else {
		n, err = s.log.AppendBatch(recs)
	}
	if err != nil {
		return err // nothing durable, nothing publishes
	}
	s.appliedLSN = recs[len(recs)-1].LSN
	s.bytesSince += int64(n)
	db.publish(m)
	s.markVisibleLocked(s.appliedLSN)
	s.maybeCheckpointLocked()
	// Remember replicated import chunk keys: should this follower be
	// promoted, a resumed import against it skips the chunks it already
	// replayed.
	for i := range recs {
		if recs[i].Op == wal.OpImport && recs[i].Key != "" {
			s.noteImportKey(recs[i].Key)
		}
	}
	return nil
}

// applyRecordTxn applies one WAL record to an in-progress transaction —
// the replica-side twin of applyRecord, validating against the txn's
// working state so a multi-record batch sees its own earlier effects.
func applyRecordTxn(db *DB, m *txn, rec *wal.Record) error {
	switch rec.Op {
	case wal.OpInsert:
		if rec.Image == nil {
			return errors.New("record has no image")
		}
		if rec.ID == "" {
			return ErrEmptyID
		}
		if _, exists := m.lookup(rec.ID); exists {
			return ErrDuplicate
		}
		be, err := core.Convert(*rec.Image)
		if err != nil {
			return err
		}
		st := &stored{Entry: Entry{ID: rec.ID, Name: rec.Name, Image: rec.Image.Clone(), BE: be}}
		st.seq = db.seq.Add(1)
		m.add(st)
	case wal.OpDelete:
		st, ok := m.lookup(rec.ID)
		if !ok {
			return ErrNotFound
		}
		m.remove(st)
	case wal.OpInsertObject:
		if rec.Object == nil {
			return errors.New("record has no object")
		}
		st, ok := m.lookup(rec.ID)
		if !ok {
			return ErrNotFound
		}
		next := st.Image.WithObject(*rec.Object)
		be, err := core.Convert(next)
		if err != nil {
			return err
		}
		m.replace(st, &stored{Entry: Entry{ID: rec.ID, Name: st.Name, Image: next, BE: be}, seq: st.seq})
	case wal.OpDeleteObject:
		st, ok := m.lookup(rec.ID)
		if !ok {
			return ErrNotFound
		}
		next, found := st.Image.WithoutObject(rec.Label)
		if !found {
			return ErrNotFound
		}
		be, err := core.Convert(next)
		if err != nil {
			return err
		}
		m.replace(st, &stored{Entry: Entry{ID: rec.ID, Name: st.Name, Image: next, BE: be}, seq: st.seq})
	case wal.OpBulk, wal.OpImport:
		// Import chunk frames ship verbatim and replay exactly like a bulk
		// batch; the arena packing below gives a follower the same slab
		// locality the primary's importer produced.
		for i := range rec.Items {
			if _, exists := m.lookup(rec.Items[i].ID); exists {
				return fmt.Errorf("bulk item %q: %w", rec.Items[i].ID, ErrDuplicate)
			}
		}
		if db.ArenaLayout() {
			packed := make([]arenaItem, len(rec.Items))
			for i := range rec.Items {
				it := &rec.Items[i]
				be, err := core.Convert(it.Image)
				if err != nil {
					return fmt.Errorf("bulk item %q: %w", it.ID, err)
				}
				packed[i] = arenaItem{id: it.ID, name: it.Name, img: it.Image, be: be}
			}
			for _, st := range buildArena(packed).pointers() {
				st.seq = db.seq.Add(1)
				m.add(st)
			}
			break
		}
		for i := range rec.Items {
			it := &rec.Items[i]
			be, err := core.Convert(it.Image)
			if err != nil {
				return fmt.Errorf("bulk item %q: %w", it.ID, err)
			}
			st := &stored{Entry: Entry{ID: it.ID, Name: it.Name, Image: it.Image.Clone(), BE: be}}
			st.seq = db.seq.Add(1)
			m.add(st)
		}
	case wal.OpGroup:
		if len(rec.Subs) == 0 {
			return errors.New("empty group record")
		}
		for i := range rec.Subs {
			sub := &rec.Subs[i]
			if sub.Op == wal.OpGroup {
				return fmt.Errorf("group sub-record %d: nested group", i)
			}
			if err := applyRecordTxn(db, m, sub); err != nil {
				return fmt.Errorf("group sub-record %d (%s %q): %w", i, sub.Op, sub.ID, err)
			}
		}
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}
