package imagedb

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"bestring/internal/core"
)

// TestScorerCacheRankingByteIdentical pins the cache's acceptance
// criterion: with the cache warm or cold, Hits, Total and NextCursor
// are byte-identical to the same query with the cache disabled, across
// scorers, K, MinScore, parallelism and full cursor walks.
func TestScorerCacheRankingByteIdentical(t *testing.T) {
	ctx := context.Background()
	db, g := seedPruneDB(t, 987, 80)
	img := g.SubsetQuery(g.Scene(), 4)

	cases := [][]QueryOption{
		{WithK(10)},
		{}, // unbounded: every candidate evaluates, maximal cache traffic
		{WithK(10), WithScorer("invariant")},
		{WithK(10), WithScorer("symbols")},
		{WithK(10), WithScorer("type1")}, // not BE-pure: never cached
		{WithK(10), WithMinScore(0.4)},
		{WithK(5), WithOffset(7)},
		{WithK(10), WithLabelPrefilter(true)},
		{WithK(10), WithPruning(false)},
	}
	// Three passes: cold cache, warm cache, warm cache again — all must
	// match the uncached run.
	for pass := 0; pass < 3; pass++ {
		for i, opts := range cases {
			for _, par := range []int{0, 1, 3} {
				base := append([]QueryOption{WithParallelism(par)}, opts...)
				on, err := db.Query(ctx, NewQuery(img), append(base, WithScorerCache(true))...)
				if err != nil {
					t.Fatal(err)
				}
				off, err := db.Query(ctx, NewQuery(img), append(base, WithScorerCache(false))...)
				if err != nil {
					t.Fatal(err)
				}
				if gj, wj := pageID(t, on), pageID(t, off); gj != wj {
					t.Fatalf("pass %d case %d parallelism %d: cached ranking diverged\n  on: %s\n off: %s",
						pass, i, par, gj, wj)
				}
				if off.Plan.CacheHits != 0 || off.Plan.CacheMisses != 0 {
					t.Fatalf("cache disabled but outcomes reported: %+v", off.Plan)
				}
			}
		}
	}

	// The warm unbounded run must actually hit.
	warm, err := db.Query(ctx, NewQuery(img))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Plan.CacheHits == 0 {
		t.Fatalf("no cache hits on a warm repeated query: %+v", warm.Plan)
	}
	if warm.Plan.CacheHits+warm.Plan.CacheMisses != warm.Stages.Evaluated {
		t.Fatalf("cache outcomes %d+%d != evaluated %d",
			warm.Plan.CacheHits, warm.Plan.CacheMisses, warm.Stages.Evaluated)
	}

	// Non-BE-pure scorers never touch the cache.
	typed, err := db.Query(ctx, NewQuery(img), WithScorer("type1"), WithK(10))
	if err != nil {
		t.Fatal(err)
	}
	if typed.Plan.CacheHits+typed.Plan.CacheMisses != 0 {
		t.Fatalf("type1 is not BE-pure but used the cache: %+v", typed.Plan)
	}

	// Cursor walk, warm cache vs cache off.
	walk := func(cached bool) string {
		var all []Hit
		cursor := ""
		for {
			opts := []QueryOption{WithK(7), WithScorerCache(cached)}
			if cursor != "" {
				opts = append(opts, WithCursor(cursor))
			}
			page, err := db.Query(ctx, NewQuery(img), opts...)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, page.Hits...)
			if page.NextCursor == "" {
				j := ""
				for _, h := range all {
					j += fmt.Sprintf("%s/%v;", h.ID, h.Score)
				}
				return j
			}
			cursor = page.NextCursor
		}
	}
	if on, off := walk(true), walk(false); on != off {
		t.Fatalf("cursor walk diverged:\n  on: %s\n off: %s", on, off)
	}
}

// TestScorerCacheInvalidationExact pins the MVCC invalidation: after an
// entry is updated, deleted, or re-created under the same id, a warm
// cache serves the NEW exact scores for the new version — and an old
// pinned snapshot still gets the OLD exact scores for its version.
// Pointer-identity keys make both directions automatic.
func TestScorerCacheInvalidationExact(t *testing.T) {
	ctx := context.Background()
	db, g := seedPruneDB(t, 654, 60)
	img := g.SubsetQuery(g.Scene(), 4)

	verify := func(label string, run func(opts ...QueryOption) *Page) {
		t.Helper()
		on := run(WithScorerCache(true))
		off := run(WithScorerCache(false))
		if gj, wj := pageID(t, on), pageID(t, off); gj != wj {
			t.Fatalf("%s: cached ranking diverged\n  on: %s\n off: %s", label, gj, wj)
		}
	}
	onDB := func(opts ...QueryOption) *Page {
		page, err := db.Query(ctx, NewQuery(img), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return page
	}

	// Warm the cache over the full corpus (K=0: every candidate pays an
	// exact evaluation).
	verify("cold", onDB)

	// Pin the pre-mutation version, then mutate through every path that
	// replaces an entry version.
	old := db.Snapshot()
	if err := db.InsertObject("bulk0005", core.Object{Label: "fresh", Box: core.NewRect(1, 1, 9, 9)}); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteObject("bulk0006", firstLabel(t, db, "bulk0006")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("one0030"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("one0031", "recreated", g.Scene()); err != nil {
		// one0031 exists; replace it via delete + insert.
		if err := db.Delete("one0031"); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert("one0031", "recreated", g.Scene()); err != nil {
			t.Fatal(err)
		}
	}

	// The warm cache must now serve the new versions' scores...
	verify("after-mutation", onDB)
	// ...including for queries that run hot against specific entries.
	verify("after-mutation-warm", onDB)

	// ...while the pinned old snapshot still ranks its own versions
	// exactly, cache on or off (its entry pointers still key their old
	// scores).
	verify("old-snapshot", func(opts ...QueryOption) *Page {
		page, err := old.Query(ctx, NewQuery(img), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return page
	})
	if got, want := old.Epoch(), db.Epoch(); got >= want {
		t.Fatalf("snapshot epoch %d not older than current %d — mutations did not publish", got, want)
	}
}

// TestScorerCacheChurnByteIdentical hammers the cache under concurrent
// writers: pinned-snapshot rankings must stay byte-identical cache-on
// vs cache-off while entries churn underneath. Run with -race this also
// exercises the cache's locking.
func TestScorerCacheChurnByteIdentical(t *testing.T) {
	ctx := context.Background()
	db, g := seedPruneDB(t, 321, 60)
	img := g.SubsetQuery(g.Scene(), 4)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("bulk%04d", i%20)
			_ = db.InsertObject(id, core.Object{Label: fmt.Sprintf("churn%d", i%3), Box: core.NewRect(0, 0, 3, 3)})
			_ = db.DeleteObject(id, fmt.Sprintf("churn%d", i%3))
			i++
		}
	}()

	for round := 0; round < 20; round++ {
		snap := db.Snapshot()
		on, err := snap.Query(ctx, NewQuery(img), WithK(15))
		if err != nil {
			t.Fatal(err)
		}
		off, err := snap.Query(ctx, NewQuery(img), WithK(15), WithScorerCache(false))
		if err != nil {
			t.Fatal(err)
		}
		if gj, wj := pageID(t, on), pageID(t, off); gj != wj {
			t.Fatalf("round %d: churned ranking diverged\n  on: %s\n off: %s", round, gj, wj)
		}
	}
	close(stop)
	wg.Wait()
}

// TestScorerCacheEvictionAndStats pins the LRU bound, the lifetime
// eviction counter and the enable/disable/resize surface.
func TestScorerCacheEvictionAndStats(t *testing.T) {
	ctx := context.Background()
	db, g := seedPruneDB(t, 8, 60)
	img := g.SubsetQuery(g.Scene(), 3)

	// Shrink to 16 entries (one per stripe); an unbounded query over ~58
	// survivors must evict.
	db.SetScorerCacheCapacity(16)
	if _, err := db.Query(ctx, NewQuery(img)); err != nil {
		t.Fatal(err)
	}
	st := db.ScorerCacheStats()
	if !st.Enabled || st.Capacity != 16 {
		t.Fatalf("stats %+v, want enabled with capacity 16", st)
	}
	if st.Entries > st.Capacity {
		t.Fatalf("occupancy %d exceeds capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overflowing a 16-entry cache: %+v", st)
	}

	// Eviction total survives a resize (it is DB-lifetime, not cache-
	// lifetime).
	evBefore := st.Evictions
	db.SetScorerCacheCapacity(DefaultScorerCacheCapacity)
	if got := db.ScorerCacheStats().Evictions; got != evBefore {
		t.Fatalf("eviction counter reset by resize: %d, want %d", got, evBefore)
	}

	// Disabled: queries run, no outcomes, stats say so.
	db.SetScorerCacheCapacity(0)
	page, err := db.Query(ctx, NewQuery(img))
	if err != nil {
		t.Fatal(err)
	}
	if page.Plan.CacheHits+page.Plan.CacheMisses != 0 {
		t.Fatalf("disabled cache reported outcomes: %+v", page.Plan)
	}
	if st := db.ScorerCacheStats(); st.Enabled {
		t.Fatalf("stats report enabled after disable: %+v", st)
	}

	// Cumulative DB counters pick up hits/misses.
	db.SetScorerCacheCapacity(DefaultScorerCacheCapacity)
	before := db.Stats().Search
	if _, err := db.Query(ctx, NewQuery(img)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(ctx, NewQuery(img)); err != nil {
		t.Fatal(err)
	}
	after := db.Stats().Search
	if after.CacheMisses == before.CacheMisses {
		t.Fatalf("cumulative misses did not move: %+v -> %+v", before, after)
	}
	if after.CacheHits == before.CacheHits {
		t.Fatalf("cumulative hits did not move: %+v -> %+v", before, after)
	}
}

// TestCacheQueryKeyInjective pins the canonical encoding: distinct
// (scorer, BE) pairs — including adversarial label boundaries — encode
// to distinct keys.
func TestCacheQueryKeyInjective(t *testing.T) {
	tok := func(label string, k core.Kind) core.Token { return core.Token{Label: label, Kind: k} }
	dummy := core.Token{Dummy: true}
	pairs := []struct {
		scorer string
		be     core.BEString
	}{
		{"be", core.BEString{X: core.Axis{tok("a", core.Begin), tok("a", core.End)}}},
		{"be", core.BEString{X: core.Axis{tok("a", core.Begin), tok("a", core.Begin)}}},
		{"be", core.BEString{Y: core.Axis{tok("a", core.Begin), tok("a", core.End)}}},
		{"be", core.BEString{X: core.Axis{tok("ab", core.Begin)}, Y: core.Axis{tok("c", core.Begin)}}},
		{"be", core.BEString{X: core.Axis{tok("a", core.Begin)}, Y: core.Axis{tok("bc", core.Begin)}}},
		{"be", core.BEString{X: core.Axis{dummy, tok("a", core.Begin)}}},
		{"be", core.BEString{X: core.Axis{tok("E", core.Begin), tok("a", core.Begin)}}},
		{"invariant", core.BEString{X: core.Axis{tok("a", core.Begin), tok("a", core.End)}}},
		{"b", core.BEString{X: core.Axis{tok("ea", core.Begin), tok("a", core.End)}}},
	}
	seen := make(map[string]int)
	for i, p := range pairs {
		k := cacheQueryKey(p.scorer, p.be)
		if j, dup := seen[k]; dup {
			t.Fatalf("pairs %d and %d collide on %q", j, i, k)
		}
		seen[k] = i
	}
}
