package imagedb

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bestring/internal/core"
	"bestring/internal/wal"
)

// This file is the group-commit layer of the durable store. Without it,
// every mutation pays one WAL frame, one fsync and one MVCC publish, so
// FsyncAlways throughput is capped at the disk's sync rate no matter how
// many writers run. With it, concurrent callers enqueue *prepared*
// mutations (validation that needs no database state, conversion and
// cloning all happen caller-side, in parallel) into a commit queue; a
// single committer goroutine drains the queue and commits the whole
// batch as ONE WAL frame, ONE fsync and ONE published version. Each
// caller blocks until its group's fsync completes and observes its own
// result: a mutation that fails validation against the batch's
// transaction state fails only that caller, never the rest of the group.
//
// Commit protocol, in order (the ordering is the durability story):
//
//  1. drain   — the committer takes every queued request (up to the size
//               cap), optionally lingering up to CommitWindow for more.
//  2. apply   — under the store and writer locks, each request validates
//               against and applies to one shared copy-on-write txn; a
//               request that fails (duplicate id, missing id, conversion
//               error) is excluded and its error recorded.
//  3. frame   — the surviving mutations encode as one WAL record (a
//               plain record when alone, an OpGroup envelope otherwise)
//               and append as one frame: one CRC, one LSN.
//  4. fsync   — the append syncs per policy; under FsyncAlways the group
//               shares a single fsync.
//  5. publish — the txn publishes as ONE new version (one epoch bump);
//               a reader sees the whole group or none of it.
//  6. ack     — every caller in the group is released and reads its own
//               result.
//
// If the append fails, nothing publishes and every surviving caller gets
// the error — the WAL holds no frame for the group (encode failures
// write nothing; write/sync failures poison the log fatally), so the
// durable state and the in-memory state cannot diverge.
//
// The linger heuristic is adaptive rather than a fixed window: the
// committer waits for more work only while the forming batch is smaller
// than the PREVIOUS group, bounded by CommitWindow. A lone sequential
// writer therefore never waits (its previous group was 1), while a burst
// of N writers converges on groups of ~N within two commits. This
// matters because an fsync here costs ~100-200µs: a fixed 1ms linger
// would ADD latency for sequential writers instead of removing it.

// Group-commit defaults. The window only bounds the adaptive linger —
// see batcher.linger — so the default is deliberately generous.
const (
	DefaultCommitWindow = time.Millisecond
	DefaultCommitBatch  = 128
)

// maxGroupBytes splits an oversized drain into multiple groups so the
// encoded frame stays safely under the WAL's 64 MiB record bound. Size
// accounting uses conservative per-request estimates (sizeHint), hence
// the 2x headroom.
const maxGroupBytes = 32 << 20

// commitKind discriminates the queued mutation types.
type commitKind uint8

const (
	commitInsert commitKind = iota
	commitDelete
	commitInsertObject
	commitDeleteObject
	commitBulk
)

// commitReq is one caller's prepared mutation waiting in the commit
// queue. The caller blocks on done; the committer fills err (nil on
// success) before closing it.
type commitReq struct {
	kind  commitKind
	id    string
	name  string
	label string         // delete-object: label to remove
	obj   core.Object    // insert-object: object to add
	st    *stored        // insert: prepared entry (cloned image, BE, signature)
	img   *core.Image    // insert: WAL payload (the clone held by st)
	sts   []*stored      // bulk: prepared entries
	items []wal.BulkItem // bulk: WAL payload

	size int // conservative encoded-frame contribution, bytes

	// enqueuedAt is stamped by enqueue only while store metrics are
	// enabled; it feeds the commit-queue-wait histogram. Zero otherwise.
	enqueuedAt time.Time

	err  error
	done chan struct{}
}

// applyTo validates the request against the group's transaction state
// and, on success, applies it and returns its WAL sub-record. The txn is
// the batch's view of the database: an insert in this group is visible
// to a later delete in the same group. Validation is complete before the
// first txn mutation, so a failing request leaves the txn untouched.
func (r *commitReq) applyTo(db *DB, m *txn) (wal.Record, error) {
	switch r.kind {
	case commitInsert:
		if _, exists := m.lookup(r.id); exists {
			return wal.Record{}, fmt.Errorf("insert %q: %w", r.id, ErrDuplicate)
		}
		r.st.seq = db.seq.Add(1)
		m.add(r.st)
		return wal.Record{Op: wal.OpInsert, ID: r.id, Name: r.name, Image: r.img}, nil
	case commitDelete:
		st, ok := m.lookup(r.id)
		if !ok {
			return wal.Record{}, fmt.Errorf("delete %q: %w", r.id, ErrNotFound)
		}
		m.remove(st)
		return wal.Record{Op: wal.OpDelete, ID: r.id}, nil
	case commitInsertObject:
		st, ok := m.lookup(r.id)
		if !ok {
			return wal.Record{}, fmt.Errorf("update %q: %w", r.id, ErrNotFound)
		}
		next := st.Image.WithObject(r.obj)
		be, err := core.Convert(next)
		if err != nil {
			return wal.Record{}, fmt.Errorf("update %q: %w", r.id, err)
		}
		m.replace(st, &stored{
			Entry: Entry{ID: r.id, Name: st.Name, Image: next, BE: be},
			seq:   st.seq,
		})
		return wal.Record{Op: wal.OpInsertObject, ID: r.id, Object: &r.obj}, nil
	case commitDeleteObject:
		st, ok := m.lookup(r.id)
		if !ok {
			return wal.Record{}, fmt.Errorf("update %q: %w", r.id, ErrNotFound)
		}
		next, found := st.Image.WithoutObject(r.label)
		if !found {
			return wal.Record{}, fmt.Errorf("delete object %q from %q: %w", r.label, r.id, ErrNotFound)
		}
		be, err := core.Convert(next)
		if err != nil {
			return wal.Record{}, fmt.Errorf("update %q: %w", r.id, err)
		}
		m.replace(st, &stored{
			Entry: Entry{ID: r.id, Name: st.Name, Image: next, BE: be},
			seq:   st.seq,
		})
		return wal.Record{Op: wal.OpDeleteObject, ID: r.id, Label: r.label}, nil
	case commitBulk:
		for _, st := range r.sts {
			if _, exists := m.lookup(st.ID); exists {
				return wal.Record{}, fmt.Errorf("bulk insert %q: %w", st.ID, ErrDuplicate)
			}
		}
		for _, st := range r.sts {
			st.seq = db.seq.Add(1)
			m.add(st)
		}
		return wal.Record{Op: wal.OpBulk, Items: r.items}, nil
	}
	return wal.Record{}, fmt.Errorf("unknown commit kind %d", r.kind)
}

// imageSizeHint over-estimates an image's encoded JSON size.
func imageSizeHint(img *core.Image) int {
	n := 128
	for _, o := range img.Objects {
		n += 160 + 2*len(o.Label)
	}
	return n
}

// lookup finds the stored entry for id in the transaction's working
// state — the base version overlaid with this mutation's changes.
func (m *txn) lookup(id string) (*stored, bool) {
	st, ok := m.shards[shardIndex(id, len(m.shards))].entries[id]
	return st, ok
}

// batcher owns the commit queue and the committer goroutine.
type batcher struct {
	s      *Store
	window time.Duration // upper bound on lingering; <= 0 disables lingering
	max    int           // size cap per commit group

	mu     sync.Mutex
	queue  []*commitReq
	closed bool
	// hold, when non-nil, parks the committer before its next drain.
	// Tests use it to assemble deterministic commit groups; production
	// code never sets it.
	hold chan struct{}

	// wake carries "the queue may be non-empty" to the committer. It is
	// buffered (capacity 1) and sent non-blocking: enqueue appends under
	// mu BEFORE sending, so whenever the queue is non-empty a wake token
	// is present or about to be — the committer can never sleep on a
	// populated queue.
	wake chan struct{}
	done chan struct{} // closed when the committer goroutine exits
}

func newBatcher(s *Store, window time.Duration, max int) *batcher {
	b := &batcher{
		s:      s,
		window: window,
		max:    max,
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	go b.run()
	return b
}

// enqueue queues a request for the next commit group.
func (b *batcher) enqueue(req *commitReq) error {
	if b.s.metrics.Load() != nil {
		req.enqueuedAt = time.Now()
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrStoreClosed
	}
	b.queue = append(b.queue, req)
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
	return nil
}

// submit queues the request and blocks until its commit group resolves.
func (b *batcher) submit(req *commitReq) error {
	req.done = make(chan struct{})
	if err := b.enqueue(req); err != nil {
		return err
	}
	<-req.done
	return req.err
}

// take removes up to n queued requests, reporting whether the batcher
// has been closed.
func (b *batcher) take(n int) ([]*commitReq, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n >= len(b.queue) {
		out := b.queue
		b.queue = nil
		return out, b.closed
	}
	out := make([]*commitReq, n)
	copy(out, b.queue[:n])
	b.queue = b.queue[n:]
	return out, b.closed
}

// queued reports the current queue depth (used by tests).
func (b *batcher) queued() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// run is the committer goroutine: drain, linger, commit, repeat; exit
// once closed with an empty queue. Draining continues after close so
// every request accepted by enqueue is committed — that is Close's drain
// guarantee.
func (b *batcher) run() {
	defer close(b.done)
	for {
		b.mu.Lock()
		hold := b.hold
		b.mu.Unlock()
		if hold != nil {
			<-hold
		}
		batch, closed := b.take(b.max)
		if len(batch) == 0 {
			if closed {
				return
			}
			<-b.wake
			continue
		}
		if !closed {
			batch = b.linger(batch)
		}
		b.s.commitBatch(batch)
	}
}

// linger collects the rest of the current arrival wave: concurrent
// writers re-enter the queue within tens of microseconds of their
// previous ack, so the committer yields the processor a couple of times
// — letting every runnable writer reach its enqueue — and commits once
// the queue stays empty across consecutive yields. Yielding costs
// microseconds, so a solo sequential writer loses nothing, while a
// timer-based gap would cost a near-millisecond scheduler sleep per
// group on an otherwise idle machine. The window bounds the total
// collection time for pathological arrival patterns.
func (b *batcher) linger(batch []*commitReq) []*commitReq {
	if b.window <= 0 {
		return batch
	}
	start := time.Now()
	quiet := 0
	for len(batch) < b.max && quiet < 2 && time.Since(start) < b.window {
		runtime.Gosched()
		more, closed := b.take(b.max - len(batch))
		batch = append(batch, more...)
		if closed {
			return batch
		}
		if len(more) == 0 {
			quiet++
		} else {
			quiet = 0
		}
	}
	return batch
}

// close stops accepting requests, waits for the committer to drain every
// already-accepted request, and returns once the committer has exited.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
	<-b.done
}

// commitBatch commits a drained batch, splitting it into multiple groups
// only if the conservative size estimate would overflow a WAL record.
func (s *Store) commitBatch(reqs []*commitReq) {
	for len(reqs) > 0 {
		n, bytes := 1, reqs[0].size
		for n < len(reqs) && bytes+reqs[n].size <= maxGroupBytes {
			bytes += reqs[n].size
			n++
		}
		s.commitGroup(reqs[:n])
		reqs = reqs[n:]
	}
}

// commitGroup runs steps 2-6 of the commit protocol for one group: apply
// all requests to one shared txn, append them as one WAL frame, publish
// one new version, release every caller.
func (s *Store) commitGroup(reqs []*commitReq) {
	defer func() {
		for _, r := range reqs {
			close(r.done)
		}
	}()
	met := s.metrics.Load()
	var t0 time.Time
	if met != nil {
		t0 = time.Now()
		met.batchSize.Observe(float64(len(reqs)))
		for _, r := range reqs {
			if !r.enqueuedAt.IsZero() {
				met.queueWaitSeconds.Observe(t0.Sub(r.enqueuedAt).Seconds())
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	db := s.db
	db.writeMu.Lock()
	defer db.writeMu.Unlock()

	m := beginTxn(db.current.Load())
	recs := make([]wal.Record, 0, len(reqs))
	accepted := make([]*commitReq, 0, len(reqs))
	rejected := 0
	for _, r := range reqs {
		rec, err := r.applyTo(db, m)
		if err != nil {
			r.err = err
			rejected++
			continue
		}
		recs = append(recs, rec)
		accepted = append(accepted, r)
	}
	if len(recs) == 0 {
		s.noteCommit(0, rejected) // every request failed validation; nothing to log or publish
		return
	}
	rec := recs[0]
	if len(recs) > 1 {
		rec = wal.Record{Op: wal.OpGroup, Subs: recs}
	}
	if _, err := s.append(rec); err != nil {
		for _, r := range accepted {
			r.err = err
		}
		s.noteCommit(0, rejected)
		return // nothing durable, so nothing publishes
	}
	db.publish(m)
	s.markVisibleLocked(s.appliedLSN)
	s.noteCommit(len(accepted), rejected)
	if met != nil {
		met.groupSeconds.Observe(time.Since(t0).Seconds())
	}
}

// noteCommit folds one commit group's outcome into the coherent tally
// under commitMu; accepted == 0 means the group published nothing.
func (s *Store) noteCommit(accepted, rejected int) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.commitTally.rejected += uint64(rejected)
	if accepted == 0 {
		return
	}
	s.commitTally.groups++
	s.commitTally.mutations += uint64(accepted)
	if uint64(accepted) > s.commitTally.largest {
		s.commitTally.largest = uint64(accepted)
	}
}

// CommitStats describes the group committer, for /healthz and tooling.
type CommitStats struct {
	// Enabled reports whether mutations are coalesced (false: every
	// mutation is its own WAL frame, fsync and version).
	Enabled bool `json:"enabled"`
	// Window is the configured linger bound, e.g. "1ms".
	Window string `json:"window,omitempty"`
	// MaxBatch is the configured size cap per commit group.
	MaxBatch int `json:"maxBatch,omitempty"`
	// Groups counts published commit groups (one WAL frame, one fsync
	// and one version each).
	Groups uint64 `json:"groups"`
	// Mutations counts mutations committed through groups; Mutations /
	// Groups is the realised coalescing factor.
	Mutations uint64 `json:"mutations"`
	// Rejected counts per-caller validation failures inside groups —
	// failures that, by the isolation invariant, left the rest of their
	// group untouched.
	Rejected uint64 `json:"rejected"`
	// Largest is the biggest group committed this session.
	Largest uint64 `json:"largest"`
}
