package imagedb

import (
	"sync"

	"bestring/internal/core"
)

// This file is the cost-based query planner. Before the pipeline touches
// a single entry, planQuery estimates how selective each narrowing stage
// would be — from statistics a pinned snapshot answers in O(shards ×
// labels): inverted-index posting sizes, the query region's area against
// the R-tree's corpus bounds, and a decaying table of historical
// predicate pass-rates per query shape — and reorders or skips stages so
// the cheapest discriminating one runs first (the short-cut-evaluation
// idea of the Wang-algebra line of work, applied to retrieval stages).
//
// Correctness invariant: every plan assembles EXACTLY the candidate set
// the fixed label→region→predicate order assembles, so Hits, Total and
// NextCursor are byte-identical whatever the planner picks (pinned by
// TestPlannerRankingByteIdentical). The equivalences:
//
//   - region-first: L ∩ R computed as "probe R, keep members of L"
//     instead of "collect L, keep members of R" — same intersection.
//   - scan (label narrowing skipped): a Where clause's evaluation drops
//     every image containing none of its labels (all constraints
//     unsatisfied ⇒ fraction 0), which is precisely what the postings
//     union pre-filtered; an image-only LabelPrefilter is re-applied as
//     an inline membership check. Either way the survivors match.
//   - filter-first: the region filter is a per-image geometric check —
//     "has an icon (optionally with the region label) whose MBR
//     intersects the region" — exactly the predicate the R-tree probe
//     answers, so applying it after the Where filter instead of before
//     keeps the same final set.
//   - skipped region: when the region contains the corpus bounds, every
//     indexed icon MBR intersects it; with no region label the filter
//     cannot drop any image (validated images hold ≥ 1 icon), and with
//     one it degenerates to "contains an icon with that label", an
//     inverted-index membership test.
type QueryPlan struct {
	// Name identifies the chosen stage order; one of "fixed",
	// "label-first", "region-first", "filter-first", "scan" (bounded, so
	// it is usable as a metric label).
	Name string `json:"name"`
	// Order lists the executed pipeline steps in plan order, for
	// -explain / debug output.
	Order []string `json:"order"`
	// SkippedLabels reports that the postings-union label narrowing was
	// skipped because the query's labels cover most of the corpus.
	SkippedLabels bool `json:"skippedLabels,omitempty"`
	// SkippedRegion reports that the R-tree probe was skipped because
	// the query region contains the corpus bounds.
	SkippedRegion bool `json:"skippedRegion,omitempty"`
	// EstLabel is the planner's candidate estimate for the label
	// narrowing (posting-size sum, clamped to the corpus), when the
	// query narrows by labels.
	EstLabel int `json:"estLabel,omitempty"`
	// EstRegion is the planner's candidate estimate for the region
	// filter (corpus size × region area over corpus-bounds area), when
	// the query has a region.
	EstRegion int `json:"estRegion,omitempty"`
	// EstFilterRate is the decayed historical pass-rate of this query
	// shape's Where clause (1 when unseen).
	EstFilterRate float64 `json:"estFilterRate,omitempty"`
	// CacheHits / CacheMisses count this query's scorer-cache outcomes
	// (both zero when the query is not cacheable or the cache is off).
	CacheHits   int `json:"cacheHits"`
	CacheMisses int `json:"cacheMisses"`
}

// Plan names. planFixed is the planner-off order (label → region →
// predicate, always); the others are chosen by cost.
const (
	planFixed       = "fixed"
	planLabelFirst  = "label-first"
	planRegionFirst = "region-first"
	planFilterFirst = "filter-first"
	planScan        = "scan"
)

// planNames lists every plan the planner can emit, so the metric series
// bestring_query_plan_total{plan=...} can be registered up front with
// bounded cardinality.
func planNames() []string {
	return []string{planFixed, planLabelFirst, planRegionFirst, planFilterFirst, planScan}
}

// Planner thresholds. They trade estimation cost against mis-planning
// cost: estimates are approximations (posting sums double-count images
// sharing several query labels; the region estimate assumes uniform
// density), so reordering only fires when the estimated advantage is
// large enough that an estimate off by the typical factor still wins.
const (
	// labelSkipFraction skips the postings-union narrowing when the
	// query labels' postings cover at least this fraction of the corpus
	// — the union would rebuild nearly the whole entry set.
	labelSkipFraction = 0.8
	// regionFirstFraction probes the R-tree first when the estimated
	// region candidates are below this fraction of the label path's.
	regionFirstFraction = 0.25
	// filterFirstFraction defers a broad region filter until after the
	// Where clause when the estimated predicate survivors are below this
	// fraction of the estimated region candidates.
	filterFirstFraction = 0.25
)

// execPlan is the planner's full decision: the public QueryPlan recorded
// on the Page plus the private switches the pipeline executes.
type execPlan struct {
	Plan *QueryPlan

	regionFirst  bool // probe the R-tree before any label work
	filterFirst  bool // run the Where clause before the region filter
	skipLabels   bool // skip the postings union (scan + recover inline)
	skipRegion   bool // region ⊇ corpus bounds, no label: filter is a no-op
	regionMember bool // region ⊇ corpus bounds with a label: membership test
}

// estimateLabelCandidates sums the query labels' posting sizes across
// shards — an O(shards × labels) upper estimate of the postings union
// (images holding several query labels count once per label), clamped to
// the corpus size.
func (s *snapshot) estimateLabelCandidates(labels []string) int {
	sum := 0
	for _, sv := range s.shards {
		for _, l := range labels {
			sum += len(sv.labels[l])
		}
	}
	if sum > s.count {
		sum = s.count
	}
	return sum
}

// estimateRegionCandidates scales the corpus size by the fraction of the
// R-tree bounds' area the query region covers (uniform-density
// assumption; degenerate zero-extent axes count as fully covered when
// intersected at all). Returns 0 for an empty tree or a disjoint region.
func estimateRegionCandidates(region, bounds core.Rect, count int) int {
	if !region.Intersects(bounds) {
		return 0
	}
	axisFrac := func(r0, r1, b0, b1 int) float64 {
		span := float64(b1 - b0)
		if span <= 0 {
			return 1
		}
		lo, hi := max(r0, b0), min(r1, b1)
		return float64(hi-lo) / span
	}
	frac := axisFrac(region.X0, region.X1, bounds.X0, bounds.X1) *
		axisFrac(region.Y0, region.Y1, bounds.Y0, bounds.Y1)
	est := int(frac * float64(count))
	if est < 1 {
		est = 1 // it intersects, so at least one icon may match
	}
	if est > count {
		est = count
	}
	return est
}

// hasAnyLabel reports whether the image holds at least one of the given
// icon labels, by inverted-index membership (no entry deref).
func (s *snapshot) hasAnyLabel(id string, labels []string) bool {
	sv := s.shardFor(id)
	for _, l := range labels {
		if sv.labels[l][id] {
			return true
		}
	}
	return false
}

// regionMatches is the direct geometric form of the region filter: the
// image passes iff it holds an icon (with the label, when given) whose
// MBR intersects the region — exactly the set the R-tree probe keeps,
// evaluated per image instead of per tree. filter-first plans use it on
// Where-clause survivors so a broad region never pays a full probe.
func regionMatches(img *core.Image, region core.Rect, label string) bool {
	for _, o := range img.Objects {
		if (label == "" || o.Label == label) && o.Box.Intersects(region) {
			return true
		}
	}
	return false
}

// planQuery chooses the stage order for one query against one pinned
// snapshot. labels/prefilter are the stage-1 inputs executeOn derived
// from the spec; shapes may be nil (no history: pass-rate defaults to 1).
func planQuery(snap *snapshot, q *Query, labels []string, prefilter bool, shapes *shapeStats) execPlan {
	count := snap.count
	hasRegion := q.region != nil
	p := execPlan{Plan: &QueryPlan{Name: planLabelFirst}}

	if q.noPlan {
		p.Plan.Name = planFixed
		p.Plan.Order = fixedOrder(q, prefilter)
		return p
	}

	estLabel := count
	if prefilter {
		estLabel = snap.estimateLabelCandidates(labels)
		p.Plan.EstLabel = estLabel
	}
	passRate := 1.0
	if q.dsl != nil && shapes != nil {
		passRate = shapes.rate(q.dsl.String())
		p.Plan.EstFilterRate = passRate
	}

	estRegion := count
	if hasRegion {
		if bounds, ok := snap.spatial.Bounds(); !ok {
			estRegion = 0
		} else if q.region.Contains(bounds) {
			if q.regionLabel == "" {
				p.skipRegion = true
				p.Plan.SkippedRegion = true
			} else {
				p.regionMember = true
				estRegion = snap.estimateLabelCandidates([]string{q.regionLabel})
			}
		} else {
			estRegion = estimateRegionCandidates(*q.region, bounds, count)
		}
		p.Plan.EstRegion = estRegion
	}

	if prefilter && count > 0 && float64(estLabel) >= labelSkipFraction*float64(count) {
		p.skipLabels = true
		p.Plan.SkippedLabels = true
	}
	base := count
	if prefilter && !p.skipLabels {
		base = estLabel
	}

	probe := hasRegion && !p.skipRegion && !p.regionMember
	switch {
	case probe && float64(estRegion) < regionFirstFraction*float64(base):
		// The region set is estimated much smaller than anything the
		// label side produces: probe it first and recover the label
		// narrowing as a membership filter over the (small) region set.
		p.regionFirst = true
		p.skipLabels = false
		p.Plan.SkippedLabels = false
		p.Plan.Name = planRegionFirst
	case probe && q.dsl != nil && float64(base)*passRate < filterFirstFraction*float64(estRegion):
		// The Where clause historically keeps few survivors while the
		// region is broad: evaluate the predicate first and region-check
		// only its survivors geometrically, skipping the expensive probe.
		p.filterFirst = true
		p.Plan.Name = planFilterFirst
	case p.skipLabels || !prefilter:
		p.Plan.Name = planScan
	}

	p.Plan.Order = p.order(q, prefilter)
	return p
}

// fixedOrder renders the planner-off stage order for explain output.
func fixedOrder(q *Query, prefilter bool) []string {
	order := make([]string, 0, 4)
	if prefilter {
		order = append(order, "labels")
	} else {
		order = append(order, "scan")
	}
	if q.region != nil {
		order = append(order, "region")
	}
	if q.dsl != nil {
		order = append(order, "filter")
	}
	return append(order, "rank")
}

// order renders the chosen plan's executed steps, in order.
func (p *execPlan) order(q *Query, prefilter bool) []string {
	order := make([]string, 0, 4)
	region := func() {
		switch {
		case q.region == nil || p.skipRegion:
		case p.regionMember:
			order = append(order, "region-member")
		default:
			order = append(order, "region")
		}
	}
	switch {
	case p.regionFirst:
		order = append(order, "region")
		if prefilter {
			order = append(order, "labels")
		}
		if q.dsl != nil {
			order = append(order, "filter")
		}
	case p.filterFirst:
		if prefilter && !p.skipLabels {
			order = append(order, "labels")
		} else {
			order = append(order, "scan")
		}
		if q.dsl != nil {
			order = append(order, "filter")
		}
		order = append(order, "region")
	default:
		if prefilter && !p.skipLabels {
			order = append(order, "labels")
		} else {
			order = append(order, "scan")
		}
		region()
		if q.dsl != nil {
			order = append(order, "filter")
		}
	}
	return append(order, "rank")
}

// shapeStats is the decaying per-query-shape predicate pass-rate table:
// after each executed query with a Where clause, the observed fraction
// of candidates the clause kept is folded into an exponentially weighted
// moving average keyed by the clause's canonical rendering. The table is
// bounded; when full, an arbitrary entry is evicted (shapes are a small,
// recurring population in practice, so churn is rare).
type shapeStats struct {
	mu    sync.Mutex
	rates map[string]float64
}

// shapeStatsCap bounds the pass-rate table.
const shapeStatsCap = 256

// shapeDecay is the weight of the newest observation in the EWMA.
const shapeDecay = 0.2

// rate returns the decayed pass-rate estimate for a query shape, 1 when
// the shape has no history (assume the filter keeps everything until
// proven selective — the conservative direction for plan choice).
func (s *shapeStats) rate(shape string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.rates[shape]; ok {
		return r
	}
	return 1
}

// note folds one observed pass-rate into the shape's EWMA.
func (s *shapeStats) note(shape string, observed float64) {
	if observed < 0 {
		observed = 0
	} else if observed > 1 {
		observed = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rates == nil {
		s.rates = make(map[string]float64, 16)
	}
	if r, ok := s.rates[shape]; ok {
		s.rates[shape] = (1-shapeDecay)*r + shapeDecay*observed
		return
	}
	if len(s.rates) >= shapeStatsCap {
		for k := range s.rates {
			delete(s.rates, k)
			break
		}
	}
	s.rates[shape] = observed
}
