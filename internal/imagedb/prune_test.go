package imagedb

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"bestring/internal/core"
	"bestring/internal/workload"
)

// seedPruneDB builds a randomized corpus through the full mutation
// surface — bulk insert, single inserts, object updates and deletes —
// so the signature column is exercised on every txn path.
func seedPruneDB(t *testing.T, seed int64, n int) (*DB, *workload.Generator) {
	t.Helper()
	g := workload.NewGenerator(workload.Config{Seed: seed, Vocabulary: 20, Objects: 7})
	items := make([]BulkItem, n/2)
	for i := range items {
		items[i] = BulkItem{ID: fmt.Sprintf("bulk%04d", i), Image: g.Scene()}
	}
	db := NewSharded(4)
	if err := db.BulkInsert(context.Background(), items, 2); err != nil {
		t.Fatal(err)
	}
	for i := n / 2; i < n; i++ {
		if err := db.Insert(fmt.Sprintf("one%04d", i), "", g.Scene()); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a few entries through every update path so replaced entries
	// get fresh column values.
	if err := db.InsertObject("bulk0000", core.Object{Label: "extra", Box: core.NewRect(0, 0, 2, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteObject("bulk0001", firstLabel(t, db, "bulk0001")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("bulk0002"); err != nil {
		t.Fatal(err)
	}
	return db, g
}

// firstLabel returns one object label of the stored image.
func firstLabel(t *testing.T, db *DB, id string) string {
	t.Helper()
	e, ok := db.Get(id)
	if !ok {
		t.Fatalf("entry %q not found", id)
	}
	return e.Image.Objects[0].Label
}

// TestSignatureColumnMatchesEntries pins the column invariant: every
// version's signature column holds exactly SignatureOf(entry.BE) for
// exactly the stored ids, across bulk/single/update/delete paths.
func TestSignatureColumnMatchesEntries(t *testing.T) {
	db, _ := seedPruneDB(t, 99, 40)
	snap := db.current.Load()
	total := 0
	for _, sv := range snap.shards {
		if len(sv.sigs) != len(sv.entries) {
			t.Fatalf("column size %d != entries %d", len(sv.sigs), len(sv.entries))
		}
		for id, st := range sv.entries {
			total++
			want := core.SignatureOf(st.BE)
			got, ok := sv.sigs[id]
			if !ok {
				t.Fatalf("no signature for %q", id)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("signature for %q = %+v, want %+v", id, got, want)
			}
		}
	}
	if total != db.Len() {
		t.Fatalf("checked %d signatures, want %d", total, db.Len())
	}
}

// TestBoundDominatesExactInEngine is the engine-level half of the
// proof-pinning property test: over three seeds, for every stored entry
// and every bound-declaring registered scorer, the bound computed from
// the snapshot's signature column must dominate the exact score the
// scorer returns. Together with the math-level test in
// internal/similarity this guarantees pruning can never drop a true
// result.
func TestBoundDominatesExactInEngine(t *testing.T) {
	for _, seed := range []int64{3, 71, 20010407} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			db, g := seedPruneDB(t, seed, 30)
			queries := []core.Image{
				g.Scene(),
				g.SubsetQuery(g.Scene(), 3),
				g.JitterQuery(g.Scene(), 5),
			}
			snap := db.current.Load()
			for _, name := range ScorerNames() {
				bound, ok := LookupBound(name)
				if !ok {
					continue
				}
				scorer, _ := LookupScorer(name)
				for qi, img := range queries {
					qbe, err := core.Convert(img)
					if err != nil {
						t.Fatal(err)
					}
					qsig := core.SignatureOf(qbe)
					for _, id := range db.IDs() {
						st, _ := snap.lookup(id)
						sig, ok := snap.signature(id)
						if !ok {
							t.Fatalf("no signature for %q", id)
						}
						ub := bound(qsig, sig)
						exact := scorer(img, qbe, st.Entry)
						if ub < exact {
							t.Fatalf("scorer %s query %d entry %s: bound %.9f < exact %.9f",
								name, qi, id, ub, exact)
						}
						if exact < 0 {
							t.Fatalf("scorer %s entry %s: negative score %.9f breaks the Bound contract",
								name, id, exact)
						}
					}
				}
			}
		})
	}
}

// TestPrunedRankingByteIdentical pins the acceptance criterion of the
// refactor: with pruning enabled (the default) the ranking output —
// hits, total and cursor — is byte-identical to the same query with
// pruning disabled, across scorers, K, MinScore, offsets and full
// cursor walks, at several parallelism levels.
func TestPrunedRankingByteIdentical(t *testing.T) {
	ctx := context.Background()
	db, g := seedPruneDB(t, 12345, 80)
	img := g.SubsetQuery(g.Scene(), 4)

	type pageKey struct {
		Hits   []Hit
		Total  int
		Cursor string
	}
	run := func(opts ...QueryOption) pageKey {
		t.Helper()
		page, err := db.Query(ctx, NewQuery(img), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return pageKey{page.Hits, page.Total, page.NextCursor}
	}

	cases := [][]QueryOption{
		{WithK(10)},
		{WithK(1)},
		{WithK(200)}, // K beyond corpus: heap never fills, nothing heap-pruned
		{},           // unbounded: only MinScore pruning could apply
		{WithK(10), WithScorer("invariant")},
		{WithK(10), WithScorer("symbols")},
		{WithK(10), WithScorer("type1")}, // no bound: exact-only either way
		{WithK(10), WithMinScore(0.4)},
		{WithMinScore(0.55)},
		{WithK(5), WithOffset(7)},
		{WithK(10), WithLabelPrefilter(true)},
	}
	for i, opts := range cases {
		for _, par := range []int{0, 1, 3} {
			on := run(append([]QueryOption{WithParallelism(par), WithPruning(true)}, opts...)...)
			off := run(append([]QueryOption{WithParallelism(par), WithPruning(false)}, opts...)...)
			gj, _ := json.Marshal(on)
			wj, _ := json.Marshal(off)
			if !reflect.DeepEqual(on, off) || string(gj) != string(wj) {
				t.Fatalf("case %d parallelism %d: pruned ranking diverged\n  on: %s\n off: %s", i, par, gj, wj)
			}
		}
	}

	// Full cursor walk: every page of the pruned walk must match the
	// unpruned walk (the heap floor interacts with the cursor admission
	// rule; this pins that the pruned path honours it identically).
	walk := func(prune bool) []Hit {
		var all []Hit
		cursor := ""
		for {
			opts := []QueryOption{WithK(7), WithPruning(prune)}
			if cursor != "" {
				opts = append(opts, WithCursor(cursor))
			}
			page, err := db.Query(ctx, NewQuery(img), opts...)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, page.Hits...)
			if page.NextCursor == "" {
				return all
			}
			cursor = page.NextCursor
		}
	}
	on, off := walk(true), walk(false)
	gj, _ := json.Marshal(on)
	wj, _ := json.Marshal(off)
	if string(gj) != string(wj) {
		t.Fatalf("cursor walk diverged:\n  on: %s\n off: %s", gj, wj)
	}
}

// TestStageCountsAndStats pins the observability wiring: per-page stage
// counts are coherent, pruning actually fires on a prunable workload,
// WithPruning(false) reports zero bound work, and the DB's cumulative
// SearchStats add up across queries.
func TestStageCountsAndStats(t *testing.T) {
	ctx := context.Background()
	db, g := seedPruneDB(t, 777, 60)
	img := g.SubsetQuery(g.Scene(), 3)

	before := db.Stats().Search

	page, err := db.Query(ctx, NewQuery(img), WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	sc := page.Stages
	if sc == nil {
		t.Fatal("no stage counts on page")
	}
	if sc.Indexed != db.Len() || sc.Region != sc.Indexed || sc.Narrowed != sc.Indexed {
		t.Fatalf("narrowing counts %+v inconsistent with unfiltered corpus %d", sc, db.Len())
	}
	if sc.Bounded != sc.Narrowed {
		t.Fatalf("bounded %d != narrowed %d for a bound-declaring scorer", sc.Bounded, sc.Narrowed)
	}
	if sc.Evaluated+sc.Pruned != sc.Bounded {
		t.Fatalf("evaluated %d + pruned %d != bounded %d", sc.Evaluated, sc.Pruned, sc.Bounded)
	}
	if sc.Pruned == 0 {
		t.Fatalf("expected pruning on a K=5 query over %d scenes, got none (%+v)", db.Len(), sc)
	}

	off, err := db.Query(ctx, NewQuery(img), WithK(5), WithPruning(false))
	if err != nil {
		t.Fatal(err)
	}
	if off.Stages.Bounded != 0 || off.Stages.Pruned != 0 {
		t.Fatalf("pruning disabled but bound work reported: %+v", off.Stages)
	}
	if off.Stages.Evaluated != off.Stages.Narrowed {
		t.Fatalf("pruning disabled: evaluated %d != narrowed %d", off.Stages.Evaluated, off.Stages.Narrowed)
	}

	// Custom scorer functions are opaque: no bound, everything exact.
	custom, err := db.Query(ctx, NewQuery(img), WithK(5), WithScorerFunc(BEScorer()))
	if err != nil {
		t.Fatal(err)
	}
	if custom.Stages.Bounded != 0 {
		t.Fatalf("WithScorerFunc query reported bound work: %+v", custom.Stages)
	}

	after := db.Stats().Search
	if after.Queries != before.Queries+3 {
		t.Fatalf("queries counter %d, want %d", after.Queries, before.Queries+3)
	}
	wantEval := before.Evaluated + uint64(sc.Evaluated+off.Stages.Evaluated+custom.Stages.Evaluated)
	if after.Evaluated != wantEval {
		t.Fatalf("evaluated counter %d, want %d", after.Evaluated, wantEval)
	}
	if after.Pruned != before.Pruned+uint64(sc.Pruned) {
		t.Fatalf("pruned counter %d, want %d", after.Pruned, before.Pruned+uint64(sc.Pruned))
	}
}

// TestSignatureColumnSurvivesPersistence pins that signatures are
// derived, not stored: a save/load round trip (which carries no
// signature bytes) rebuilds the column, and pruned rankings on the
// loaded database match the original.
func TestSignatureColumnSurvivesPersistence(t *testing.T) {
	ctx := context.Background()
	db, g := seedPruneDB(t, 31, 40)
	img := g.SubsetQuery(g.Scene(), 3)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snap := loaded.current.Load()
	for _, sv := range snap.shards {
		if len(sv.sigs) != len(sv.entries) {
			t.Fatalf("loaded column size %d != entries %d", len(sv.sigs), len(sv.entries))
		}
	}
	want, err := db.Query(ctx, NewQuery(img), WithK(10))
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Query(ctx, NewQuery(img), WithK(10))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Hits, want.Hits) {
		t.Fatalf("loaded ranking diverged:\n got %+v\nwant %+v", got.Hits, want.Hits)
	}
	if got.Stages.Pruned == 0 && want.Stages.Pruned > 0 {
		t.Fatalf("pruning inactive after load: %+v vs %+v", got.Stages, want.Stages)
	}
}
