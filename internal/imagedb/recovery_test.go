package imagedb

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"bestring/internal/core"
	"bestring/internal/wal"
)

// mutation is one step of a randomized script, applied identically to the
// durable store under test and to a plain in-memory mirror.
type mutation struct {
	desc  string
	store func(s *Store) error
	db    func(db *DB) error
}

// genScript builds a deterministic random mutation script. Every step is
// valid against the state the previous steps produce, so the store under
// test acknowledges all of them.
func genScript(rng *rand.Rand, steps int) []mutation {
	var script []mutation
	live := []string{} // ids present, insertion order
	img := func() core.Image {
		n := 2 + rng.Intn(3)
		objs := make([]core.Object, n)
		for i := range objs {
			x, y := rng.Intn(8), rng.Intn(8)
			objs[i] = core.Object{
				Label: fmt.Sprintf("L%d", i*10+rng.Intn(10)),
				Box:   core.NewRect(x, y, x+1+rng.Intn(2), y+1+rng.Intn(2)),
			}
		}
		return core.NewImage(12, 12, objs...)
	}
	next := 0
	for len(script) < steps {
		switch op := rng.Intn(10); {
		case op < 5 || len(live) == 0: // insert
			id := fmt.Sprintf("img%03d", next)
			next++
			im := img()
			live = append(live, id)
			script = append(script, mutation{
				desc:  "insert " + id,
				store: func(s *Store) error { return s.Insert(id, "scripted", im) },
				db:    func(db *DB) error { return db.Insert(id, "scripted", im) },
			})
		case op < 6: // delete a random live id
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			script = append(script, mutation{
				desc:  "delete " + id,
				store: func(s *Store) error { return s.Delete(id) },
				db:    func(db *DB) error { return db.Delete(id) },
			})
		case op < 7: // add an object with a fresh label
			id := live[rng.Intn(len(live))]
			o := core.Object{
				Label: fmt.Sprintf("X%d", rng.Intn(1000)),
				Box:   core.NewRect(0, 0, 1+rng.Intn(3), 1+rng.Intn(3)),
			}
			script = append(script, mutation{
				desc:  "insert-object " + id + "/" + o.Label,
				store: func(s *Store) error { return s.InsertObject(id, o) },
				db:    func(db *DB) error { return db.InsertObject(id, o) },
			})
		case op < 8: // bulk batch of 2-4 fresh images
			n := 2 + rng.Intn(3)
			items := make([]BulkItem, n)
			for i := range items {
				items[i] = BulkItem{ID: fmt.Sprintf("img%03d", next), Name: "bulk", Image: img()}
				live = append(live, items[i].ID)
				next++
			}
			script = append(script, mutation{
				desc:  fmt.Sprintf("bulk x%d", n),
				store: func(s *Store) error { return s.BulkInsert(context.Background(), items, 0) },
				db:    func(db *DB) error { return db.BulkInsert(context.Background(), items, 0) },
			})
		default: // delete one object (images here always keep >= 1 left)
			// Only target scripted multi-object images: pick an id, and at
			// apply time drop its first object if more than one remains.
			// To keep store and mirror identical the decision must be a
			// pure function of state, so we skip the step when the image
			// has a single object.
			id := live[rng.Intn(len(live))]
			del := func(get func(string) (Entry, bool), rm func(string, string) error) error {
				e, ok := get(id)
				if !ok || len(e.Image.Objects) < 2 {
					return nil // deterministic no-op on both sides
				}
				return rm(id, e.Image.Objects[0].Label)
			}
			script = append(script, mutation{
				desc:  "delete-object " + id,
				store: func(s *Store) error { return del(s.Get, s.DeleteObject) },
				db:    func(db *DB) error { return del(db.Get, db.DeleteObject) },
			})
		}
	}
	return script
}

// copyDir clones a store directory for one crash simulation.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// finalSegment returns the highest-named WAL segment in dir.
func finalSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// lastFrameStart walks the frame chain (layout pinned by the WAL format:
// 4-byte length, 4-byte CRC32C, payload) and returns the offset of the
// final frame.
func lastFrameStart(t *testing.T, data []byte) int {
	t.Helper()
	off, last := 0, -1
	for off < len(data) {
		last = off
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 8 + length
	}
	if last < 0 || off != len(data) {
		t.Fatalf("segment does not end on a frame boundary (off=%d len=%d)", off, len(data))
	}
	return last
}

// TestRecoveryTruncationSweep is the crash-recovery property test of
// ISSUE 3: run a randomized mutation script against a store (fsync
// always, with a mid-script checkpoint and forced segment rotations),
// then simulate a crash at EVERY byte-truncation point of the final WAL
// record and check the reopened store matches the prefix state
// byte-identically — all acknowledged-and-synced mutations survive, the
// torn final record is forgiven, and nothing else changes.
func TestRecoveryTruncationSweep(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			const steps = 14
			script := genScript(rng, steps)
			checkpointAt := steps / 2

			dir := t.TempDir()
			s, err := OpenStore(dir, StoreOptions{
				Fsync: FsyncAlways, SegmentBytes: 700, CheckpointBytes: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Mirror DBs: wants[i] is the canonical snapshot after i steps.
			mirror := New()
			wants := make([][]byte, steps+1)
			wants[0] = saveBytes(t, mirror.Save)
			for i, m := range script {
				if err := m.store(s); err != nil {
					t.Fatalf("step %d (%s): %v", i, m.desc, err)
				}
				if err := m.db(mirror); err != nil {
					t.Fatalf("mirror step %d (%s): %v", i, m.desc, err)
				}
				wants[i+1] = saveBytes(t, mirror.Save)
				if i == checkpointAt {
					if err := s.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if got := saveBytes(t, mustOpen(t, dir).Save); !bytes.Equal(got, wants[steps]) {
				t.Fatal("clean reopen differs from mirror")
			}

			seg := finalSegment(t, dir)
			data, err := os.ReadFile(filepath.Join(dir, seg))
			if err != nil {
				t.Fatal(err)
			}
			start := lastFrameStart(t, data)
			for cut := start; cut <= len(data); cut++ {
				crash := filepath.Join(t.TempDir(), fmt.Sprintf("cut%04d", cut))
				copyDir(t, dir, crash)
				if err := os.Truncate(filepath.Join(crash, seg), int64(cut)); err != nil {
					t.Fatal(err)
				}
				rs, err := OpenStore(crash, StoreOptions{})
				if err != nil {
					t.Fatalf("cut=%d: reopen: %v", cut, err)
				}
				want := wants[steps-1]
				if cut == len(data) {
					want = wants[steps] // complete record: nothing was lost
				}
				got := saveBytes(t, rs.Save)
				if err := rs.Close(); err != nil {
					t.Fatalf("cut=%d: close: %v", cut, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("cut=%d: recovered state is not the acknowledged prefix", cut)
				}
			}
		})
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestRecoveryTruncationSweepBatched extends the truncation sweep to
// group-commit frames: build the store in phases of K concurrent
// mutations, each phase deterministically coalesced into ONE OpGroup
// frame (the committer is parked while the phase's callers queue up),
// then simulate a crash at EVERY byte-truncation point of the final
// group frame. The reopened store must byte-identically equal a phase
// boundary — the previous one for any cut short of the full frame, the
// final one at full length. A batch is never half-applied: there is no
// truncation point at which recovery yields part of a group.
func TestRecoveryTruncationSweepBatched(t *testing.T) {
	const phases, k = 6, 4
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{
		Fsync: FsyncAlways, SegmentBytes: 900, CheckpointBytes: -1, CommitBatch: k,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase p's four mutations touch disjoint ids (two fresh inserts, an
	// object edit on the previous phase's entry, a delete of the one
	// before that), so any arrival order inside the group reaches the
	// same state. wants[p] is the store's own canonical snapshot after p
	// phases — the reference for what each truncation must recover to.
	phase := func(p int) []func() error {
		id := func(p int, suf string) string { return fmt.Sprintf("p%02d-%s", p, suf) }
		muts := []func() error{
			func() error { return s.Insert(id(p, "a"), "batched", storeImage(3*p)) },
			func() error { return s.Insert(id(p, "b"), "batched", storeImage(3*p+1)) },
		}
		if p >= 1 {
			muts = append(muts, func() error {
				return s.InsertObject(id(p-1, "a"),
					core.Object{Label: fmt.Sprintf("X%d", p), Box: core.NewRect(7, 7, 8, 8)})
			})
		} else {
			muts = append(muts, func() error { return s.Insert(id(p, "c"), "batched", storeImage(3*p+2)) })
		}
		if p >= 2 {
			muts = append(muts, func() error { return s.Delete(id(p-2, "a")) })
		} else {
			muts = append(muts, func() error { return s.Insert(id(p, "d"), "batched", storeImage(3*p+2)) })
		}
		return muts
	}

	wants := make([][]byte, phases+1)
	wants[0] = saveBytes(t, s.Save)
	for p := 0; p < phases; p++ {
		release := holdCommitter(t, s)
		muts := phase(p)
		errs := make([]error, len(muts))
		var wg sync.WaitGroup
		for i, fn := range muts {
			wg.Add(1)
			go func(i int, fn func() error) {
				defer wg.Done()
				errs[i] = fn()
			}(i, fn)
		}
		waitQueued(t, s, k)
		release()
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("phase %d mutation %d: %v", p, i, err)
			}
		}
		wants[p+1] = saveBytes(t, s.Save)
		if p == phases/2 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.StoreStats()
	if st.Commit.Groups != phases || st.Commit.Largest != k {
		t.Fatalf("commit stats = %+v, want %d groups of %d", st.Commit, phases, k)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	seg := finalSegment(t, dir)
	data, err := os.ReadFile(filepath.Join(dir, seg))
	if err != nil {
		t.Fatal(err)
	}
	start := lastFrameStart(t, data)
	// The swept frame really is one whole commit group.
	var last wal.Record
	if err := json.Unmarshal(data[start+8:], &last); err != nil {
		t.Fatal(err)
	}
	if last.Op != wal.OpGroup || len(last.Subs) != k {
		t.Fatalf("final frame is %q with %d subs, want a group of %d", last.Op, len(last.Subs), k)
	}

	for cut := start; cut <= len(data); cut++ {
		crash := filepath.Join(t.TempDir(), fmt.Sprintf("cut%04d", cut))
		copyDir(t, dir, crash)
		if err := os.Truncate(filepath.Join(crash, seg), int64(cut)); err != nil {
			t.Fatal(err)
		}
		rs, err := OpenStore(crash, StoreOptions{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		want := wants[phases-1]
		if cut == len(data) {
			want = wants[phases] // complete group: nothing was lost
		}
		got := saveBytes(t, rs.Save)
		if err := rs.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cut=%d: recovered state is not a phase boundary — a commit group was half-applied or over-truncated", cut)
		}
	}
}

// TestRecoveryRejectsInteriorCorruption pins the other half of the
// recovery contract: damage that is not a torn tail must fail OpenStore
// with a descriptive error, never a silently wrong database.
func TestRecoveryRejectsInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.Insert(fmt.Sprintf("img%d", i), "", storeImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := finalSegment(t, dir)
	data, err := os.ReadFile(filepath.Join(dir, seg))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the SECOND record's payload: mid-log damage.
	second := 8 + int(binary.LittleEndian.Uint32(data[0:4])) // start of record 2
	data[second+8+3] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, seg), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenStore(dir, StoreOptions{})
	if err == nil {
		t.Fatal("interior corruption went unnoticed")
	}
	for _, wantSub := range []string{"corrupt", seg, "checksum"} {
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("error %q does not mention %q", err, wantSub)
		}
	}
}
