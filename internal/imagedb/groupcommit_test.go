package imagedb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bestring/internal/core"
)

// holdCommitter parks the store's group committer before its next drain
// and returns the release function, so a test can assemble a
// deterministic commit group in the queue. Must be called before any
// mutation is in flight.
func holdCommitter(t *testing.T, s *Store) func() {
	t.Helper()
	h := make(chan struct{})
	s.batcher.mu.Lock()
	s.batcher.hold = h
	s.batcher.mu.Unlock()
	return func() {
		s.batcher.mu.Lock()
		s.batcher.hold = nil
		s.batcher.mu.Unlock()
		close(h)
	}
}

// waitQueued blocks until the commit queue holds n requests.
func waitQueued(t *testing.T, s *Store, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.batcher.queued() < n {
		if time.Now().After(deadline) {
			t.Fatalf("commit queue stuck at %d of %d requests", s.batcher.queued(), n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestGroupCommitCoalesces pins the core promise: K concurrent mutations
// drained together commit as ONE WAL frame, ONE group and ONE published
// version — not K of each.
func TestGroupCommitCoalesces(t *testing.T) {
	const k = 5
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{
		Fsync: FsyncAlways, CheckpointBytes: -1, CommitBatch: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	epoch0 := s.Epoch()
	lsn0 := s.StoreStats().LastLSN

	release := holdCommitter(t, s)
	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Insert(fmt.Sprintf("img%d", i), "n", storeImage(i))
		}(i)
	}
	waitQueued(t, s, k)
	release()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	st := s.StoreStats()
	if st.Commit.Groups != 1 || st.Commit.Mutations != k || st.Commit.Largest != k {
		t.Fatalf("commit stats = %+v, want 1 group of %d mutations", st.Commit, k)
	}
	if got := s.Epoch() - epoch0; got != 1 {
		t.Fatalf("published %d versions for one commit group, want 1", got)
	}
	if got := st.LastLSN - lsn0; got != 1 {
		t.Fatalf("appended %d WAL records for one commit group, want 1", got)
	}
	if s.Len() != k {
		t.Fatalf("Len = %d, want %d", s.Len(), k)
	}
	want := saveBytes(t, s.Save)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The frame on disk is one OpGroup record, and it replays whole.
	ins, err := InspectStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Records != 1 || ins.RecordOps["group"] != 1 {
		t.Fatalf("log holds %d records (%v), want one group record", ins.Records, ins.RecordOps)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := saveBytes(t, s2.Save); !bytes.Equal(got, want) {
		t.Fatal("recovered state is not byte-identical to the pre-close state")
	}
}

// TestGroupCommitFailureIsolation pins the isolation invariant: a
// mutation that fails validation against the group's transaction state
// fails only its own caller — the rest of the group commits, in one
// version, and recovery agrees.
func TestGroupCommitFailureIsolation(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{
		Fsync: FsyncAlways, CheckpointBytes: -1, CommitBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("t", "", storeImage(0)); err != nil {
		t.Fatal(err)
	}
	epoch0 := s.Epoch()

	// One group: two inserts of the same fresh id (one must lose), two
	// deletes of the same existing id (one must lose), plus two clean
	// inserts that must be untouched by their neighbours' failures. The
	// duplicate insert and second delete pass the lock-free prechecks —
	// the conflict only exists inside the batch, which is exactly the
	// case the shared-txn validation is for.
	release := holdCommitter(t, s)
	var wg sync.WaitGroup
	var bothErrs, delErrs [2]error
	var f1Err, f2Err error
	run := func(fn func()) { wg.Add(1); go func() { defer wg.Done(); fn() }() }
	run(func() { f1Err = s.Insert("f1", "", storeImage(1)) })
	run(func() { f2Err = s.Insert("f2", "", storeImage(2)) })
	for i := 0; i < 2; i++ {
		i := i
		run(func() { bothErrs[i] = s.Insert("both", "", storeImage(3)) })
		run(func() { delErrs[i] = s.Delete("t") })
	}
	waitQueued(t, s, 6)
	release()
	wg.Wait()

	if f1Err != nil || f2Err != nil {
		t.Fatalf("clean inserts failed alongside rejected neighbours: %v, %v", f1Err, f2Err)
	}
	checkOneLoser := func(what string, errs [2]error, want error) {
		t.Helper()
		ok, lose := 0, 0
		for _, err := range errs {
			switch {
			case err == nil:
				ok++
			case errors.Is(err, want):
				lose++
			default:
				t.Fatalf("%s: unexpected error %v", what, err)
			}
		}
		if ok != 1 || lose != 1 {
			t.Fatalf("%s: got %d successes and %d rejections, want exactly 1 of each (%v)", what, ok, lose, errs)
		}
	}
	checkOneLoser("duplicate insert", bothErrs, ErrDuplicate)
	checkOneLoser("double delete", delErrs, ErrNotFound)

	if got := s.Epoch() - epoch0; got != 1 {
		t.Fatalf("published %d versions for one commit group, want 1", got)
	}
	st := s.StoreStats()
	if st.Commit.Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2", st.Commit.Rejected)
	}
	for id, want := range map[string]bool{"f1": true, "f2": true, "both": true, "t": false} {
		if s.Has(id) != want {
			t.Fatalf("Has(%q) = %v, want %v", id, !want, want)
		}
	}

	// Recovery replays the group frame (which holds only the accepted
	// mutations) to the identical state.
	want := saveBytes(t, s.Save)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := saveBytes(t, s2.Save); !bytes.Equal(got, want) {
		t.Fatal("recovered state disagrees with the per-caller results")
	}
}

// TestGroupCommitRaceStress drives N goroutines of mixed mutations
// through the batcher under -race and asserts exact final state,
// monotonically increasing epochs, exactly one published version per
// commit group, byte-identical recovery, and zero leaked goroutines
// after Close.
func TestGroupCommitRaceStress(t *testing.T) {
	before := runtime.NumGoroutine()
	const writers, per = 8, 24
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{
		Fsync: FsyncAlways, CheckpointBytes: -1, SegmentBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	epoch0 := s.Epoch()

	// Epoch watcher: versions must only move forward while the committer
	// publishes.
	watcherDone := make(chan struct{})
	stopWatcher := make(chan struct{})
	var epochRegression atomic.Bool
	go func() {
		defer close(watcherDone)
		last := uint64(0)
		for {
			select {
			case <-stopWatcher:
				return
			default:
			}
			e := s.Epoch()
			if e < last {
				epochRegression.Store(true)
				return
			}
			last = e
			runtime.Gosched()
		}
	}()

	// Each writer owns a disjoint id space, so any interleaving of the
	// writers yields the same final entry set — computable by replaying
	// one writer at a time into a mirror.
	script := func(w int, insert func(id string, n int) error,
		del func(id string) error,
		insObj func(id string, o core.Object) error,
		delObj func(id, label string) error,
		bulk func(items []BulkItem) error) error {
		for i := 0; i < per; i++ {
			id := fmt.Sprintf("w%d-%02d", w, i)
			if err := insert(id, w*per+i); err != nil {
				return fmt.Errorf("insert %s: %w", id, err)
			}
			switch i % 4 {
			case 0:
				if err := del(id); err != nil {
					return fmt.Errorf("delete %s: %w", id, err)
				}
			case 1:
				if err := insObj(id, core.Object{Label: "X", Box: core.NewRect(6, 6, 7, 7)}); err != nil {
					return fmt.Errorf("insert object %s: %w", id, err)
				}
			case 2:
				if err := delObj(id, "A"); err != nil {
					return fmt.Errorf("delete object %s: %w", id, err)
				}
			}
		}
		return bulk([]BulkItem{
			{ID: fmt.Sprintf("w%d-bulkA", w), Image: storeImage(w)},
			{ID: fmt.Sprintf("w%d-bulkB", w), Image: storeImage(w + 1)},
		})
	}
	// Requests per writer: per inserts, the i%4 follow-ups, one bulk.
	perWriterReqs := per + (per+3)/4 + (per+2)/4 + (per+1)/4 + 1

	var wg sync.WaitGroup
	werrs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			werrs[w] = script(w,
				func(id string, n int) error { return s.Insert(id, "n", storeImage(n)) },
				s.Delete,
				s.InsertObject,
				s.DeleteObject,
				func(items []BulkItem) error { return s.BulkInsert(context.Background(), items, 2) },
			)
		}(w)
	}
	wg.Wait()
	close(stopWatcher)
	<-watcherDone
	for w, err := range werrs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if epochRegression.Load() {
		t.Fatal("observed a decreasing epoch during concurrent commits")
	}

	// Exact final state: replay the same scripts sequentially into an
	// in-memory mirror (writers touch disjoint ids, so order between
	// writers cannot matter) and compare entry by entry.
	mirror := New()
	for w := 0; w < writers; w++ {
		err := script(w,
			func(id string, n int) error { return mirror.Insert(id, "n", storeImage(n)) },
			mirror.Delete,
			mirror.InsertObject,
			mirror.DeleteObject,
			func(items []BulkItem) error { return mirror.BulkInsert(context.Background(), items, 2) },
		)
		if err != nil {
			t.Fatalf("mirror writer %d: %v", w, err)
		}
	}
	if s.Len() != mirror.Len() {
		t.Fatalf("Len = %d, want %d", s.Len(), mirror.Len())
	}
	for _, id := range mirror.IDs() {
		want, _ := mirror.Get(id)
		got, ok := s.Get(id)
		if !ok {
			t.Fatalf("store is missing %q", id)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("entry %q diverged:\n got %+v\nwant %+v", id, got, want)
		}
	}

	// One published version per commit group, and every request was
	// committed through a group.
	st := s.StoreStats()
	if got := uint64(s.Epoch() - epoch0); got != st.Commit.Groups {
		t.Fatalf("epoch advanced %d but %d groups committed — a group published more (or less) than one version", got, st.Commit.Groups)
	}
	if want := uint64(writers * perWriterReqs); st.Commit.Mutations != want {
		t.Fatalf("Mutations = %d, want %d", st.Commit.Mutations, want)
	}
	if st.Commit.Rejected != 0 {
		t.Fatalf("Rejected = %d, want 0 (all ids are disjoint)", st.Commit.Rejected)
	}

	// Byte-identical recovery of the concurrently built state.
	want := saveBytes(t, s.Save)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, s2.Save); !bytes.Equal(got, want) {
		t.Fatal("recovered state is not byte-identical to the pre-close state")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Zero leaked goroutines after Close (committer, checkpointer, WAL
	// flusher, watcher — everything), modelled on TestQueryIterCancelNoLeak.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGroupCommitCloseDrains checks Close's drain guarantee: every
// mutation accepted into the commit queue before Close resolves is
// committed and acknowledged (no caller left hanging, no accepted write
// lost), and late arrivals get ErrStoreClosed.
func TestGroupCommitCloseDrains(t *testing.T) {
	const n = 16
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Insert(fmt.Sprintf("img%02d", i), "", storeImage(i))
		}(i)
	}
	if err := s.Close(); err != nil { // races the inserts on purpose
		t.Fatal(err)
	}
	wg.Wait()

	acked := make(map[string]bool)
	for i, err := range errs {
		id := fmt.Sprintf("img%02d", i)
		switch {
		case err == nil:
			acked[id] = true
		case errors.Is(err, ErrStoreClosed):
		default:
			t.Fatalf("insert %s: %v", id, err)
		}
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(acked) {
		t.Fatalf("recovered %d entries, %d were acknowledged", s2.Len(), len(acked))
	}
	for id := range acked {
		if !s2.Has(id) {
			t.Fatalf("acknowledged insert %s missing after reopen", id)
		}
	}
}

// TestGroupCommitDisabled checks the NoGroupCommit escape hatch: the
// direct path still works, reports itself, and never coalesces.
func TestGroupCommitDisabled(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{NoGroupCommit: true, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		if err := s.Insert(fmt.Sprintf("img%d", i), "", storeImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.StoreStats()
	if st.Commit.Enabled || st.Commit.Groups != 0 {
		t.Fatalf("commit stats = %+v, want disabled and zero groups", st.Commit)
	}
	if st.LastLSN != 4 {
		t.Fatalf("LastLSN = %d, want one record per mutation", st.LastLSN)
	}
}
