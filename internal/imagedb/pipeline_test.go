package imagedb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"bestring/internal/core"
	"bestring/internal/query"
	"bestring/internal/workload"
)

// composedSpec parameterises the serial reference below.
type composedSpec struct {
	image       *core.Image
	dsl         string
	whereMin    float64 // <0 means pipeline default
	region      *core.Rect
	regionLabel string
	scorer      Scorer
	minScore    float64
	k, offset   int
}

// referenceComposed is the filter-then-full-sort reference: apply every
// filter serially per image, score everything that survives, sort
// everything, then paginate. The pipeline must match it byte for byte.
func referenceComposed(t *testing.T, db *DB, spec composedSpec) []Hit {
	t.Helper()
	var dq query.Query
	if spec.dsl != "" {
		var err error
		if dq, err = query.Parse(spec.dsl); err != nil {
			t.Fatalf("parse %q: %v", spec.dsl, err)
		}
	}
	whereMin := spec.whereMin
	if whereMin < 0 {
		if spec.image != nil {
			whereMin = 1
		} else {
			whereMin = 0
		}
	}
	scorer := spec.scorer
	if scorer == nil {
		scorer = BEScorer()
	}
	var queryBE core.BEString
	if spec.image != nil {
		queryBE = core.MustConvert(*spec.image)
	}
	var all []Hit
	for _, id := range db.IDs() {
		e, _ := db.Get(id)
		if spec.region != nil {
			found := false
			for _, o := range e.Image.Objects {
				if o.Box.Intersects(*spec.region) &&
					(spec.regionLabel == "" || o.Label == spec.regionLabel) {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		h := Hit{ID: e.ID, Name: e.Name}
		if spec.dsl != "" {
			frac, full := dq.Eval(e.Image)
			if frac <= 0 || frac < whereMin {
				continue
			}
			h.Where, h.Full = frac, full
		}
		switch {
		case spec.image != nil:
			h.Score = scorer(*spec.image, queryBE, e)
		case spec.dsl != "":
			h.Score = h.Where
		}
		if h.Score < spec.minScore {
			continue
		}
		all = append(all, h)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if spec.offset >= len(all) {
		all = all[:0]
	} else {
		all = all[spec.offset:]
	}
	if spec.k > 0 && len(all) > spec.k {
		all = all[:spec.k]
	}
	return all
}

// seedSpatial builds a deterministic corpus where filters have known
// selectivity: every image gets random icons, every third image gets a
// "tag left-of anchor" pair (satisfying the DSL below), and every fourth
// gets an icon inside the probe region.
func seedSpatial(t *testing.T, shards, n int) *DB {
	t.Helper()
	db := NewSharded(shards)
	g := workload.NewGenerator(workload.Config{Seed: 17, Vocabulary: 12, Width: 64, Height: 64})
	for i := 0; i < n; i++ {
		img := g.Scene()
		if i%3 == 0 {
			img = img.WithObject(core.Object{Label: "tag", Box: core.NewRect(1, 1, 3, 3)}).
				WithObject(core.Object{Label: "anchor", Box: core.NewRect(10, 1, 12, 3)})
		}
		if i%4 == 0 {
			img = img.WithObject(core.Object{Label: "probe", Box: core.NewRect(50, 50, 55, 55)})
		}
		if err := db.Insert(fmt.Sprintf("img%03d", i), fmt.Sprintf("scene %d", i), img); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return db
}

var probeRegion = core.NewRect(48, 48, 60, 60)

func hitsEqual(t *testing.T, label string, got, want []Hit) {
	t.Helper()
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if !reflect.DeepEqual(got, want) || string(gj) != string(wj) {
		t.Fatalf("%s:\n got %s\nwant %s", label, gj, wj)
	}
}

// TestQueryMatchesComposedReference pins the filter-composition
// guarantee: narrowing with indexes then scoring survivors must be
// byte-identical to filtering serially and full-sorting, for every
// combination of image, Where clause and region.
func TestQueryMatchesComposedReference(t *testing.T) {
	db := seedSpatial(t, 4, 60)
	g := workload.NewGenerator(workload.Config{Seed: 18, Vocabulary: 12, Width: 64, Height: 64})
	img := g.Scene()
	const dsl = "tag left-of anchor"

	cases := []struct {
		name string
		spec composedSpec
		q    *Query
		opts []QueryOption
	}{
		{"image-only", composedSpec{image: &img, k: 7, whereMin: -1},
			NewQuery(img), []QueryOption{WithK(7)}},
		{"image+dsl", composedSpec{image: &img, dsl: dsl, k: 10, whereMin: -1},
			NewQuery(img), []QueryOption{WithK(10), Where(dsl)}},
		{"image+region", composedSpec{image: &img, region: &probeRegion, k: 10, whereMin: -1},
			NewQuery(img), []QueryOption{WithK(10), InRegion(probeRegion)}},
		{"image+dsl+region", composedSpec{image: &img, dsl: dsl, region: &probeRegion, whereMin: -1},
			NewQuery(img), []QueryOption{Where(dsl), InRegion(probeRegion)}},
		{"image+dsl+region+k", composedSpec{image: &img, dsl: dsl, region: &probeRegion, k: 2, whereMin: -1},
			NewQuery(img), []QueryOption{WithK(2), Where(dsl), InRegion(probeRegion)}},
		{"image+dsl+minscore", composedSpec{image: &img, dsl: dsl, minScore: 0.3, whereMin: -1},
			NewQuery(img), []QueryOption{Where(dsl), WithMinScore(0.3)}},
		{"image+dsl+wheremin", composedSpec{image: &img, dsl: dsl + "; tag above anchor", whereMin: 0.5},
			NewQuery(img), []QueryOption{Where(dsl + "; tag above anchor"), WithWhereMin(0.5)}},
		{"dsl-only", composedSpec{dsl: dsl, whereMin: -1},
			NewMatchQuery(), []QueryOption{Where(dsl)}},
		{"region-only", composedSpec{region: &probeRegion, whereMin: -1},
			NewMatchQuery(), []QueryOption{InRegion(probeRegion)}},
		{"region-label", composedSpec{region: &probeRegion, regionLabel: "probe", whereMin: -1},
			NewMatchQuery(), []QueryOption{InRegionLabel(probeRegion, "probe")}},
		{"image+offset", composedSpec{image: &img, k: 5, offset: 8, whereMin: -1},
			NewQuery(img), []QueryOption{WithK(5), WithOffset(8)}},
		{"invariant-scorer", composedSpec{image: &img, scorer: InvariantScorer(nil), k: 6, whereMin: -1},
			NewQuery(img), []QueryOption{WithK(6), WithScorer("invariant")}},
	}
	for _, tc := range cases {
		for _, parallelism := range []int{0, 1, 3} {
			opts := append([]QueryOption{WithParallelism(parallelism)}, tc.opts...)
			page, err := db.Query(context.Background(), tc.q, opts...)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			want := referenceComposed(t, db, tc.spec)
			if want == nil {
				want = []Hit{}
			}
			hitsEqual(t, fmt.Sprintf("%s (parallelism %d)", tc.name, parallelism), page.Hits, want)
		}
	}
}

// TestDeprecatedWrappersByteIdentical pins the acceptance criterion:
// Search, SearchDSL and SearchRegion are wrappers over the pipeline and
// must produce byte-identical results to querying it directly.
func TestDeprecatedWrappersByteIdentical(t *testing.T) {
	ctx := context.Background()
	db := seedSpatial(t, 3, 45)
	g := workload.NewGenerator(workload.Config{Seed: 19, Vocabulary: 12, Width: 64, Height: 64})
	img := g.Scene()

	for _, opts := range []SearchOptions{
		{}, {K: 5}, {K: 5, MinScore: 0.4}, {K: 3, Parallelism: 2, LabelPrefilter: true},
		{Scorer: InvariantScorer(nil), K: 4},
	} {
		old, err := db.Search(ctx, img, opts)
		if err != nil {
			t.Fatal(err)
		}
		qopts := []QueryOption{WithK(opts.K), WithMinScore(opts.MinScore),
			WithParallelism(opts.Parallelism), WithLabelPrefilter(opts.LabelPrefilter)}
		if opts.Scorer != nil {
			qopts = append(qopts, WithScorerFunc(opts.Scorer))
		}
		page, err := db.Query(ctx, NewQuery(img), qopts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(old) != len(page.Hits) {
			t.Fatalf("opts %+v: wrapper %d results, pipeline %d", opts, len(old), len(page.Hits))
		}
		for i, r := range old {
			h := page.Hits[i]
			if r != (Result{ID: h.ID, Name: h.Name, Score: h.Score}) {
				t.Fatalf("opts %+v: result %d = %+v, hit %+v", opts, i, r, h)
			}
		}
		oj, _ := json.Marshal(old)
		rj, _ := json.Marshal(referenceSearch(db, img, opts))
		if !opts.LabelPrefilter && string(oj) != string(rj) {
			t.Fatalf("opts %+v: wrapper diverged from full-sort reference\n got %s\nwant %s", opts, oj, rj)
		}
	}

	dq, err := query.Parse("tag left-of anchor")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 3, 100} {
		old, err := db.SearchDSL(ctx, dq, k)
		if err != nil {
			t.Fatal(err)
		}
		page, err := db.Query(ctx, NewMatchQuery(), WhereQuery(dq), WithK(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(old) != len(page.Hits) {
			t.Fatalf("k=%d: wrapper %d results, pipeline %d", k, len(old), len(page.Hits))
		}
		for i, r := range old {
			h := page.Hits[i]
			if r != (QueryResult{ID: h.ID, Name: h.Name, Score: h.Score, Full: h.Full}) {
				t.Fatalf("k=%d: result %d = %+v, hit %+v", k, i, r, h)
			}
		}
	}

	hits := db.SearchRegion(probeRegion, "probe")
	page, err := db.Query(ctx, NewMatchQuery(), InRegionLabel(probeRegion, "probe"))
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	for _, h := range hits {
		ids[h.ImageID] = true
	}
	if len(ids) != len(page.Hits) {
		t.Fatalf("region wrapper found %d images, pipeline %d", len(ids), len(page.Hits))
	}
	for i, h := range page.Hits {
		if !ids[h.ID] {
			t.Fatalf("pipeline hit %q not in wrapper results", h.ID)
		}
		if i > 0 && page.Hits[i-1].ID >= h.ID {
			t.Fatalf("region-only hits not in id order: %v", page.Hits)
		}
	}
}

// TestQueryCursorPagination walks the full ranking page by page and
// checks the concatenation equals the one-shot ranking, with Total
// constant and the cursor chain terminating.
func TestQueryCursorPagination(t *testing.T) {
	ctx := context.Background()
	db := seedSpatial(t, 4, 37)
	g := workload.NewGenerator(workload.Config{Seed: 20, Vocabulary: 12, Width: 64, Height: 64})
	img := g.Scene()
	q := NewQuery(img)

	full, err := db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if full.Total != 37 || len(full.Hits) != 37 || full.NextCursor != "" {
		t.Fatalf("full page: total %d, %d hits, cursor %q", full.Total, len(full.Hits), full.NextCursor)
	}

	var walked []Hit
	cursor := ""
	pages := 0
	for {
		page, err := db.Query(ctx, q, WithK(5), WithCursor(cursor))
		if err != nil {
			t.Fatal(err)
		}
		walked = append(walked, page.Hits...)
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
		if pages > 20 {
			t.Fatal("cursor chain does not terminate")
		}
	}
	if pages != 8 { // ceil(37/5)
		t.Errorf("walked %d pages, want 8", pages)
	}
	hitsEqual(t, "cursor walk", walked, full.Hits)

	// Offset pagination slices the same ranking.
	page, err := db.Query(ctx, q, WithK(10), WithOffset(30))
	if err != nil {
		t.Fatal(err)
	}
	hitsEqual(t, "offset page", page.Hits, full.Hits[30:])
	if page.Total != 37 {
		t.Errorf("offset page total = %d, want 37", page.Total)
	}
	// Offset past the end is an empty page, not an error.
	page, err = db.Query(ctx, q, WithK(10), WithOffset(99))
	if err != nil || len(page.Hits) != 0 || page.NextCursor != "" {
		t.Errorf("offset past end: %v, %+v", err, page)
	}
}

// TestQueryCursorStableUnderInserts pins the pagination-stability
// contract: entries inserted between pages never cause already-delivered
// results to reappear, and the next page still delivers exactly the
// pre-existing ranking tail.
func TestQueryCursorStableUnderInserts(t *testing.T) {
	ctx := context.Background()
	db := seedSpatial(t, 4, 24)
	g := workload.NewGenerator(workload.Config{Seed: 21, Vocabulary: 12, Width: 64, Height: 64})
	img := g.Scene()
	q := NewQuery(img)

	before, err := db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	page1, err := db.Query(ctx, q, WithK(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(page1.Hits) != 6 || page1.NextCursor == "" {
		t.Fatalf("page1 = %+v", page1)
	}

	// Concurrent writers land entries that would rank first (exact
	// copies of the query image, score 1.0).
	for i := 0; i < 3; i++ {
		if err := db.Insert(fmt.Sprintf("interloper%d", i), "", img); err != nil {
			t.Fatal(err)
		}
	}

	page2, err := db.Query(ctx, q, WithK(6), WithCursor(page1.NextCursor))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, h := range page1.Hits {
		seen[h.ID] = true
	}
	for _, h := range page2.Hits {
		if seen[h.ID] {
			t.Fatalf("page2 repeats %q", h.ID)
		}
		if strings.HasPrefix(h.ID, "interloper") {
			t.Fatalf("page2 contains post-cursor insert %q ranking before the boundary", h.ID)
		}
	}
	hitsEqual(t, "page2 is the pre-insert tail", page2.Hits, before.Hits[6:12])
}

// TestQueryIterStreamsRanking checks the iterator yields exactly the
// one-shot ranking (across internal batch boundaries), honours WithK,
// and stops on early break.
func TestQueryIterStreamsRanking(t *testing.T) {
	ctx := context.Background()
	// More entries than one internal batch to cross a cursor boundary.
	db := seedSpatial(t, 4, 300)
	g := workload.NewGenerator(workload.Config{Seed: 22, Vocabulary: 12, Width: 64, Height: 64})
	img := g.Scene()
	q := NewQuery(img)

	full, err := db.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Hit
	for h, err := range db.QueryIter(ctx, q) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, h)
	}
	hitsEqual(t, "streamed ranking", streamed, full.Hits)

	// WithK caps the stream.
	n := 0
	for _, err := range db.QueryIter(ctx, q, WithK(7)) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 7 {
		t.Errorf("WithK(7) streamed %d hits", n)
	}

	// Early break stops cleanly.
	n = 0
	for _, err := range db.QueryIter(ctx, q) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 3 {
			break
		}
	}
	if n != 3 {
		t.Errorf("early break streamed %d hits", n)
	}

	// Errors surface through the sequence.
	for _, err := range db.QueryIter(ctx, NewMatchQuery(), Where("not a clause !!")) {
		if err == nil {
			t.Fatal("iterator yielded a hit for an invalid query")
		}
	}
}

// TestQueryValidation exercises the builder's sticky errors and the
// pipeline's input validation.
func TestQueryValidation(t *testing.T) {
	ctx := context.Background()
	db := seedSpatial(t, 2, 5)
	g := workload.NewGenerator(workload.Config{Seed: 23, Vocabulary: 12, Width: 64, Height: 64})
	img := g.Scene()

	cases := []struct {
		name string
		q    *Query
		opts []QueryOption
		want string
	}{
		{"empty", NewMatchQuery(), nil, "empty query"},
		{"bad where", NewQuery(img), []QueryOption{Where("one two three")}, "unknown predicate"},
		{"negative k", NewQuery(img), []QueryOption{WithK(-1)}, "negative k"},
		{"negative offset", NewQuery(img), []QueryOption{WithOffset(-2)}, "negative offset"},
		{"negative parallelism", NewQuery(img), []QueryOption{WithParallelism(-1)}, "negative parallelism"},
		{"unknown scorer", NewQuery(img), []QueryOption{WithScorer("cosine")}, "unknown scorer"},
		{"bad cursor", NewQuery(img), []QueryOption{WithCursor("!!!")}, "bad cursor"},
		{"bad wheremin", NewQuery(img), []QueryOption{Where("A left-of B"), WithWhereMin(1.5)}, "where-min"},
		{"bad region", NewQuery(img), []QueryOption{InRegion(core.Rect{X0: 5, X1: 1, Y0: 0, Y1: 1})}, "invalid region"},
	}
	for _, tc := range cases {
		if _, err := db.Query(ctx, tc.q, tc.opts...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}

	// The sticky error is also visible on the builder itself.
	q := NewQuery(img)
	q.apply([]QueryOption{Where("bogus")})
	if q.Err() == nil {
		t.Error("sticky builder error not exposed via Err")
	}

	// A reused Query value is not mutated by per-call options.
	base := NewQuery(img)
	if _, err := db.Query(ctx, base, WithK(2)); err != nil {
		t.Fatal(err)
	}
	page, err := db.Query(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Hits) != 5 {
		t.Errorf("reused query returned %d hits, want all 5 (WithK leaked into the base value)", len(page.Hits))
	}
}

// TestQueryCancelled checks the pipeline surfaces context cancellation
// from both the predicate-evaluation and the scoring stage.
func TestQueryCancelled(t *testing.T) {
	db := seedSpatial(t, 2, 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Query(ctx, NewMatchQuery(), Where("tag left-of anchor")); !errors.Is(err, context.Canceled) {
		t.Errorf("dsl stage err = %v, want context.Canceled", err)
	}
}

func TestScorerRegistry(t *testing.T) {
	for _, name := range []string{"be", "invariant", "type0", "type1", "type2", "symbols"} {
		if _, ok := LookupScorer(name); !ok {
			t.Errorf("builtin scorer %q not registered", name)
		}
	}
	if _, ok := LookupScorer(""); !ok {
		t.Error("empty name does not resolve to the default scorer")
	}
	if _, ok := LookupScorer("nope"); ok {
		t.Error("unknown name resolved")
	}
	if err := RegisterScorer("be", BEScorer()); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := RegisterScorer("", BEScorer()); err == nil {
		t.Error("empty name accepted")
	}
	if err := RegisterScorer("nil-test", nil); err == nil {
		t.Error("nil scorer accepted")
	}

	// A custom scorer is usable by name end to end.
	constant := func(_ core.Image, _ core.BEString, _ Entry) float64 { return 0.25 }
	if err := RegisterScorer("registry-test-constant", constant); err != nil {
		t.Fatal(err)
	}
	db := seedSpatial(t, 1, 4)
	g := workload.NewGenerator(workload.Config{Seed: 25, Vocabulary: 12, Width: 64, Height: 64})
	page, err := db.Query(context.Background(), NewQuery(g.Scene()), WithScorer("registry-test-constant"))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range page.Hits {
		if h.Score != 0.25 {
			t.Fatalf("custom scorer hit = %+v", h)
		}
	}

	names := ScorerNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("ScorerNames not sorted: %v", names)
	}
	found := false
	for _, n := range names {
		if n == "registry-test-constant" {
			found = true
		}
	}
	if !found {
		t.Errorf("registered name missing from %v", names)
	}
}
