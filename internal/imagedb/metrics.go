package imagedb

import (
	"time"

	"bestring/internal/obs"
)

// dbMetrics holds the query-pipeline instruments. One struct behind an
// atomic pointer on DB: nil means disabled, and the only per-query
// cost when disabled is that pointer load in noteSearch.
type dbMetrics struct {
	queries      *obs.Counter
	querySeconds *obs.Histogram

	indexSeconds  *obs.Histogram
	regionSeconds *obs.Histogram
	filterSeconds *obs.Histogram
	rankSeconds   *obs.Histogram

	candIndexed   *obs.Counter
	candRegion    *obs.Counter
	candNarrowed  *obs.Counter
	candBounded   *obs.Counter
	candEvaluated *obs.Counter
	candPruned    *obs.Counter

	// planTotal counts executed queries per chosen plan. Every plan name
	// is registered up front (bounded set, see planNames) so the series
	// are visible on /metrics before the first query picks each plan.
	planTotal map[string]*obs.Counter

	cacheHits          *obs.Counter
	cacheMisses        *obs.Counter
	cacheLookupSeconds *obs.Histogram
}

// EnableMetrics registers the DB's query instruments and occupancy
// gauges on reg. Call once per registry, any time; a nil registry is a
// no-op. Store.EnableMetrics calls this for a durable engine.
func (db *DB) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	const stageHelp = "Wall time of one staged-pipeline stage per executed query."
	const candHelp = "Cumulative candidates seen per pipeline stage (selectivity feed for the planner)."
	m := &dbMetrics{
		queries: reg.Counter("bestring_query_total",
			"Executed queries (each QueryIter batch counts once)."),
		querySeconds: reg.Histogram("bestring_query_seconds",
			"End-to-end staged-pipeline latency per executed query.",
			obs.DurationBuckets()),
		indexSeconds:  reg.Histogram("bestring_query_stage_seconds", stageHelp, obs.DurationBuckets(), "stage", "index"),
		regionSeconds: reg.Histogram("bestring_query_stage_seconds", stageHelp, obs.DurationBuckets(), "stage", "region"),
		filterSeconds: reg.Histogram("bestring_query_stage_seconds", stageHelp, obs.DurationBuckets(), "stage", "filter"),
		rankSeconds:   reg.Histogram("bestring_query_stage_seconds", stageHelp, obs.DurationBuckets(), "stage", "rank"),
		candIndexed:   reg.Counter("bestring_query_candidates_total", candHelp, "stage", "indexed"),
		candRegion:    reg.Counter("bestring_query_candidates_total", candHelp, "stage", "region"),
		candNarrowed:  reg.Counter("bestring_query_candidates_total", candHelp, "stage", "narrowed"),
		candBounded:   reg.Counter("bestring_query_candidates_total", candHelp, "stage", "bounded"),
		candEvaluated: reg.Counter("bestring_query_candidates_total", candHelp, "stage", "evaluated"),
		candPruned:    reg.Counter("bestring_query_candidates_total", candHelp, "stage", "pruned"),
		planTotal:     make(map[string]*obs.Counter, 5),
		cacheHits: reg.Counter("bestring_scorer_cache_hits_total",
			"Exact scorer evaluations served from the scorer cache."),
		cacheMisses: reg.Counter("bestring_scorer_cache_misses_total",
			"Cacheable scorer evaluations that ran the scorer (and populated the cache)."),
		cacheLookupSeconds: reg.Histogram("bestring_scorer_cache_lookup_seconds",
			"Scorer-cache lookup latency (hits and misses alike).",
			obs.DurationBuckets()),
	}
	for _, name := range planNames() {
		m.planTotal[name] = reg.Counter("bestring_query_plan_total",
			"Executed queries per planner-chosen stage order.", "plan", name)
	}
	reg.CounterFunc("bestring_scorer_cache_evictions_total",
		"Scorer-cache entries evicted by the per-shard LRU bound.",
		func() float64 { return float64(db.cacheEvictions.Load()) })
	reg.GaugeFunc("bestring_scorer_cache_entries",
		"Entries currently held by the scorer cache (0 when disabled).",
		func() float64 {
			if c := db.cache.Load(); c != nil {
				return float64(c.Len())
			}
			return 0
		})
	reg.GaugeFunc("bestring_store_images",
		"Images in the current published version.",
		func() float64 { return float64(db.Len()) })
	reg.GaugeFunc("bestring_store_epoch",
		"Epoch of the current published version (one per mutation).",
		func() float64 { return float64(db.Epoch()) })
	db.metrics.Store(m)
}

// observeQuery feeds one executed query's stage counts, timings, plan
// choice and cache outcomes into the registry. Called from noteSearch,
// outside searchMu.
func (m *dbMetrics) observeQuery(page *Page) {
	sc := page.Stages
	if p := page.Plan; p != nil {
		if c, ok := m.planTotal[p.Name]; ok {
			c.Inc()
		}
		m.cacheHits.Add(uint64(p.CacheHits))
		m.cacheMisses.Add(uint64(p.CacheMisses))
	}
	m.queries.Inc()
	m.querySeconds.Observe(float64(sc.TotalNanos) / 1e9)
	m.indexSeconds.Observe(float64(sc.IndexNanos) / 1e9)
	m.regionSeconds.Observe(float64(sc.RegionNanos) / 1e9)
	m.filterSeconds.Observe(float64(sc.FilterNanos) / 1e9)
	m.rankSeconds.Observe(float64(sc.RankNanos) / 1e9)
	m.candIndexed.Add(uint64(sc.Indexed))
	m.candRegion.Add(uint64(sc.Region))
	m.candNarrowed.Add(uint64(sc.Narrowed))
	m.candBounded.Add(uint64(sc.Bounded))
	m.candEvaluated.Add(uint64(sc.Evaluated))
	m.candPruned.Add(uint64(sc.Pruned))
}

// observeCacheLookup records one scorer-cache lookup's latency. Called
// from the scoring workers, only when metrics are enabled.
func (m *dbMetrics) observeCacheLookup(d time.Duration) {
	m.cacheLookupSeconds.Observe(d.Seconds())
}
