package imagedb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bestring/internal/ingest"
	"bestring/internal/workload"
)

// importScenes builds n deterministic synthetic scenes.
func importScenes(seed int64, n int) []ingest.Scene {
	gen := workload.NewGenerator(workload.Config{Seed: seed, Vocabulary: 16, Objects: 6})
	scenes := make([]ingest.Scene, n)
	for i := range scenes {
		scenes[i] = ingest.Scene{
			ID: fmt.Sprintf("img%05d", i), Name: fmt.Sprintf("scene %d", i), Image: gen.Scene(),
		}
	}
	return scenes
}

func TestImportBasic(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	scenes := importScenes(171, 500)
	var progressed int
	stats, err := s.Import(context.Background(), ingest.FromItems(scenes), ImportOptions{
		ChunkScenes: 64,
		Progress:    func(ImportStats) { progressed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	wantChunks := uint64((500 + 63) / 64)
	if stats.Chunks != wantChunks || stats.Images != 500 || stats.Bytes == 0 || stats.LSN == 0 {
		t.Fatalf("stats = %+v, want %d chunks / 500 images", stats, wantChunks)
	}
	if progressed != int(wantChunks) {
		t.Fatalf("progress called %d times, want %d", progressed, wantChunks)
	}
	if s.Len() != 500 {
		t.Fatalf("Len = %d", s.Len())
	}
	// The cumulative tally matches the single run and is carried on
	// StoreStats for /healthz.
	if got := s.StoreStats().Import; got.Chunks != wantChunks || got.Images != 500 {
		t.Fatalf("store tally = %+v", got)
	}
	if e, ok := s.Get("img00321"); !ok || e.Name != "scene 321" {
		t.Fatalf("Get img00321 = %+v, %v", e, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The chunks are ordinary WAL records: a reopen replays them.
	s, err = OpenStore(dir, StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 500 {
		t.Fatalf("after reopen Len = %d", s.Len())
	}
}

// searchJSON renders one canonical ranked search over the whole store —
// the byte-identity yardstick the resume test compares.
func searchJSON(t *testing.T, s *Store, seed int64) string {
	t.Helper()
	gen := workload.NewGenerator(workload.Config{Seed: seed, Vocabulary: 16, Objects: 6})
	img := gen.SubsetQuery(gen.Scene(), 4)
	page, err := s.Query(context.Background(), NewQuery(img), WithK(25))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(struct {
		Hits  []Hit
		Total int
	}{page.Hits, page.Total})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestImportCrashResume(t *testing.T) {
	const n = 600
	scenes := importScenes(172, n)
	rng := rand.New(rand.NewSource(97))

	// Control: one uninterrupted import.
	control, err := OpenStore(t.TempDir(), StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	if _, err := control.Import(context.Background(), ingest.FromItems(scenes), ImportOptions{}); err != nil {
		t.Fatal(err)
	}
	wantJSON := searchJSON(t, control, 172)

	for round := 0; round < 4; round++ {
		// Randomised chunk boundaries: resume must work at any chunking, as
		// long as the re-run uses the same one. The bounds keep the total
		// chunk count well above stopAfter plus the pipeline depth, so a
		// cancellation can never race the whole import to completion.
		opts := ImportOptions{ChunkScenes: 16 + rng.Intn(40), Parallelism: 1 + rng.Intn(2)}
		stopAfter := 1 + rng.Intn(3)

		dir := t.TempDir()
		s, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		// Interrupt mid-import: cancel after a few committed chunks, then
		// close the store — the moral equivalent of a crash, with the
		// committed chunks durable in the WAL.
		ctx, cancel := context.WithCancel(context.Background())
		interrupted := opts
		interrupted.Progress = func(st ImportStats) {
			if st.Chunks >= uint64(stopAfter) {
				cancel()
			}
		}
		if _, err := s.Import(ctx, ingest.FromItems(scenes), interrupted); err == nil {
			t.Fatalf("round %d: interrupted import reported no error", round)
		}
		cancel()
		partial := s.Len()
		if partial == 0 || partial == n {
			t.Fatalf("round %d: partial Len = %d, want a genuine interruption", round, partial)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// Re-run the identical import against the reopened store.
		s, err = OpenStore(dir, StoreOptions{Fsync: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := s.Import(context.Background(), ingest.FromItems(scenes), opts)
		if err != nil {
			t.Fatalf("round %d: resume: %v", round, err)
		}
		if stats.ResumedChunks == 0 {
			t.Fatalf("round %d: resume skipped no chunks (stats %+v)", round, stats)
		}
		if got := s.Len(); got != n {
			t.Fatalf("round %d: after resume Len = %d, want %d (no missing, no duplicated)", round, got, n)
		}
		if stats.Images+stats.ResumedImages != n {
			t.Fatalf("round %d: images %d + resumed %d != %d", round, stats.Images, stats.ResumedImages, n)
		}
		if got := searchJSON(t, s, 172); got != wantJSON {
			t.Fatalf("round %d: resumed store ranks differently\n got %s\nwant %s", round, got, wantJSON)
		}
		s.Close()
	}
}

func TestImportResumeAfterCheckpointPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	scenes := importScenes(173, 200)
	opts := ImportOptions{ChunkScenes: 32}
	if _, err := s.Import(context.Background(), ingest.FromItems(scenes), opts); err != nil {
		t.Fatal(err)
	}
	// Checkpoint prunes the WAL: the OpImport records (and their keys) are
	// gone from the log, so a reopened store cannot recover them.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = OpenStore(dir, StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// The all-ids-present fallback still classifies every chunk as durable.
	stats, err := s.Import(context.Background(), ingest.FromItems(scenes), opts)
	if err != nil {
		t.Fatalf("re-import after checkpoint: %v", err)
	}
	if stats.Chunks != 0 || stats.ResumedImages != 200 {
		t.Fatalf("stats = %+v, want everything resumed", stats)
	}
	if s.Len() != 200 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestImportCollisions(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	scenes := importScenes(174, 60)
	// A foreign write occupying one id inside a chunk: neither "fresh" nor
	// "fully durable" — the import must refuse rather than guess.
	if err := s.Insert(scenes[40].ID, "squatter", storeImage(1)); err != nil {
		t.Fatal(err)
	}
	_, err = s.Import(context.Background(), ingest.FromItems(scenes), ImportOptions{ChunkScenes: 32})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("partial collision: err = %v, want ErrDuplicate", err)
	}
	// With NoResume any collision is an error outright.
	_, err = s.Import(context.Background(), ingest.FromItems(scenes[:41]), ImportOptions{ChunkScenes: 64, NoResume: true})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("NoResume collision: err = %v, want ErrDuplicate", err)
	}
}

func TestImportReplicaRefused(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.Import(context.Background(), ingest.FromItems(importScenes(175, 3)), ImportOptions{})
	if !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("err = %v, want ErrReadOnlyReplica", err)
	}
}

func TestImportSourceErrorAborts(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	scenes := importScenes(176, 100)
	boom := errors.New("stream broke")
	i := 0
	src := ingest.FromSeq(func(yield func(ingest.Scene, error) bool) {
		for ; i < len(scenes); i++ {
			if i == 70 {
				yield(ingest.Scene{}, boom)
				return
			}
			if !yield(scenes[i], nil) {
				return
			}
		}
	})
	_, err = s.Import(context.Background(), src, ImportOptions{ChunkScenes: 16})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the source error", err)
	}
	// Chunks committed before the failure stay durable; the count is a
	// multiple of the chunk bound below the failure point.
	if got := s.Len(); got == 0 || got%16 != 0 || got > 70 {
		t.Fatalf("partial Len = %d", got)
	}
}

func TestOversizedBulkInsertRoutesChunked(t *testing.T) {
	prev := bulkChunkThreshold
	bulkChunkThreshold = 4 << 10
	defer func() { bulkChunkThreshold = prev }()

	s, err := OpenStore(t.TempDir(), StoreOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	scenes := importScenes(177, 120)
	items := make([]BulkItem, len(scenes))
	for i, sc := range scenes {
		items[i] = BulkItem{ID: sc.ID, Name: sc.Name, Image: sc.Image}
	}
	if err := s.BulkInsert(context.Background(), items, 0); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(items) {
		t.Fatalf("Len = %d", s.Len())
	}
	// The batch landed as several import chunk records, not one frame.
	if st := s.StoreStats().Import; st.Chunks < 2 || st.Images != uint64(len(items)) {
		t.Fatalf("import tally = %+v, want the batch chunked", st)
	}
	// And a duplicate batch still fails loudly (resume only skips chunks
	// this exact import already committed — ids were inserted above via a
	// different chunking, so the partial-presence check trips).
	err = s.BulkInsert(context.Background(), items[:50], 0)
	if err != nil && !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate oversized bulk: %v", err)
	}
}

func TestChunkKeyDeterministic(t *testing.T) {
	scenes := importScenes(178, 3)
	items := make([]BulkItem, len(scenes))
	for i, sc := range scenes {
		items[i] = BulkItem{ID: sc.ID, Name: sc.Name, Image: sc.Image}
	}
	k1 := chunkKey(0, items)
	k2 := chunkKey(0, items)
	if k1 != k2 {
		t.Fatalf("same chunk, different keys: %s vs %s", k1, k2)
	}
	if chunkKey(1, items) == k1 {
		t.Fatal("chunk index not part of the key")
	}
	mutated := make([]BulkItem, len(items))
	copy(mutated, items)
	mutated[1].Name += "x"
	if chunkKey(0, mutated) == k1 {
		t.Fatal("scene content not part of the key")
	}
	if !reflect.DeepEqual(items, append([]BulkItem(nil), items...)) {
		t.Fatal("chunkKey mutated its input")
	}
}
