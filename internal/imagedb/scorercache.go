package imagedb

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"bestring/internal/core"
)

// This file is the hot-scorer cache: a sharded, size-bounded LRU memo of
// (query signature, entry version, scorer) → exact score, covering the
// refine stage's surviving evaluations. Repeated queries — the same
// query image re-ranked after writes elsewhere, cursor walks, dashboards
// polling a fixed query — skip the O(m·n) LCS dynamic program for every
// entry whose score is already known.
//
// Invalidation is exact, with zero stamping or epoch bookkeeping, by
// riding the engine's MVCC discipline: a stored entry is immutable once
// any published version references it, and every mutation that touches
// an entry installs a NEW *stored (txn.replace / txn.add allocate; see
// updateImage). The cache key therefore embeds the *stored pointer
// itself — the entry-version identity. An update can never serve a stale
// score (the new version is a new pointer, a guaranteed miss), and an
// old pinned snapshot walking a cursor still hits the scores of ITS
// entry versions, which remain correct for it by immutability. Epoch
// tracking falls out for free: versions of an entry across epochs are
// distinct pointers, and entries in shards a mutation never touched keep
// their pointers — so exactly the still-valid scores survive. Results
// are byte-identical with the cache on or off (pinned by
// TestScorerCacheRankingByteIdentical); the cache can only change how
// fast they arrive.
//
// Only registry scorers marked BE-pure are cacheable: their score is a
// function of (query BE-string, entry BE-string) alone, so the canonical
// query-BE encoding plus the entry version pins the exact result. The
// type-i baselines read raw image coordinates, which the BE-string does
// not determine, and custom WithScorerFunc scorers are opaque — both
// always evaluate exactly.
//
// Memory: a cached key retains its *stored entry (image + BE-string)
// even after every snapshot dropped it. That is bounded by the LRU
// capacity and is the usual cache trade — dead versions age out of the
// LRU as live traffic replaces them.

// DefaultScorerCacheCapacity is the default size bound (entries) of a
// DB's scorer cache. Tune or disable with SetScorerCacheCapacity.
const DefaultScorerCacheCapacity = 1 << 16

// scorerCacheShards is the lock-striping factor; must be a power of two.
const scorerCacheShards = 16

// cacheKey identifies one memoised evaluation: the canonical (scorer,
// query BE-string) encoding and the entry-version pointer (see the file
// comment for why pointer identity is the exact invalidation).
type cacheKey struct {
	query string
	entry *stored
}

// cacheVal is one LRU element's payload.
type cacheVal struct {
	key   cacheKey
	score float64
}

// cacheShard is one stripe: a mutex, the index map and the recency list
// (front = most recently used).
type cacheShard struct {
	mu  sync.Mutex
	m   map[cacheKey]*list.Element
	lru *list.List
}

// scorerCache is the sharded LRU. Capacity is enforced per shard
// (capacity/scorerCacheShards each), so the bound is exact in total and
// no global lock exists on the hot path.
type scorerCache struct {
	shards   [scorerCacheShards]cacheShard
	perShard int
	size     atomic.Int64
	// evictions points at the owning DB's process-lifetime counter, so
	// the total survives SetScorerCacheCapacity swapping the cache out.
	evictions *atomic.Uint64
}

// newScorerCache returns an LRU bounded to capacity entries; evict (may
// be nil) receives one increment per evicted entry.
func newScorerCache(capacity int, evict *atomic.Uint64) *scorerCache {
	per := capacity / scorerCacheShards
	if per < 1 {
		per = 1
	}
	c := &scorerCache{perShard: per, evictions: evict}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// shardFor routes a key to its stripe (FNV-1a over the query encoding
// seeded by the entry's id, so one hot query image spreads across
// stripes by entry).
func (c *scorerCache) shardFor(k cacheKey) *cacheShard {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(k.entry.ID); i++ {
		h ^= uint32(k.entry.ID[i])
		h *= prime32
	}
	for i := 0; i < len(k.query); i++ {
		h ^= uint32(k.query[i])
		h *= prime32
	}
	return &c.shards[h&(scorerCacheShards-1)]
}

// get returns the memoised score and marks the entry most recently used.
func (c *scorerCache) get(k cacheKey) (float64, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[k]
	if !ok {
		return 0, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*cacheVal).score, true
}

// put memoises a score, evicting the stripe's least recently used entry
// when full. A concurrent duplicate put (two workers missing the same
// key) degenerates to a refresh: both computed the same exact score.
func (c *scorerCache) put(k cacheKey, score float64) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[k]; ok {
		el.Value.(*cacheVal).score = score
		s.lru.MoveToFront(el)
		return
	}
	if s.lru.Len() >= c.perShard {
		oldest := s.lru.Back()
		if oldest != nil {
			s.lru.Remove(oldest)
			delete(s.m, oldest.Value.(*cacheVal).key)
			c.size.Add(-1)
			if c.evictions != nil {
				c.evictions.Add(1)
			}
		}
	}
	s.m[k] = s.lru.PushFront(&cacheVal{key: k, score: score})
	c.size.Add(1)
}

// Len returns the current number of cached scores.
func (c *scorerCache) Len() int { return int(c.size.Load()) }

// cacheQueryKey canonically encodes the (scorer, query BE-string) half
// of a cache key. Every component is length-prefixed, so the encoding is
// injective: two distinct (scorer, BE) pairs can never collide, which is
// what lets a cache hit stand in for the exact evaluation byte-for-byte.
func cacheQueryKey(scorer string, be core.BEString) string {
	var b strings.Builder
	b.Grow(len(scorer) + 8*(len(be.X)+len(be.Y)) + 16)
	fmt.Fprintf(&b, "%d:%s", len(scorer), scorer)
	writeAxis := func(a core.Axis) {
		for _, t := range a {
			if t.Dummy {
				b.WriteString("E;")
				continue
			}
			fmt.Fprintf(&b, "%d:%s", len(t.Label), t.Label)
			if t.Kind == core.End {
				b.WriteByte('-')
			} else {
				b.WriteByte('+')
			}
		}
	}
	writeAxis(be.X)
	b.WriteByte('|')
	writeAxis(be.Y)
	return b.String()
}

// SetScorerCacheCapacity resizes the DB's scorer cache to the given
// entry bound, dropping every memoised score; n <= 0 disables caching
// entirely. The default is DefaultScorerCacheCapacity. Safe to call
// while queries run: in-flight queries finish against the cache they
// loaded, new queries see the new one. Rankings are unaffected either
// way — the cache only memoises exact scores.
func (db *DB) SetScorerCacheCapacity(n int) {
	if n <= 0 {
		db.cache.Store(nil)
		return
	}
	db.cache.Store(newScorerCache(n, &db.cacheEvictions))
}

// ScorerCacheStats is a point-in-time view of the DB's scorer cache.
type ScorerCacheStats struct {
	// Enabled reports whether a cache is installed.
	Enabled bool `json:"enabled"`
	// Entries is the current occupancy.
	Entries int `json:"entries"`
	// Capacity is the configured size bound.
	Capacity int `json:"capacity"`
	// Evictions counts LRU evictions over the process lifetime (the
	// counter survives SetScorerCacheCapacity).
	Evictions uint64 `json:"evictions"`
}

// ScorerCacheStats reports the scorer cache's occupancy and lifetime
// eviction count. Hit/miss totals live in Stats().Search.
func (db *DB) ScorerCacheStats() ScorerCacheStats {
	st := ScorerCacheStats{Evictions: db.cacheEvictions.Load()}
	if c := db.cache.Load(); c != nil {
		st.Enabled = true
		st.Entries = c.Len()
		st.Capacity = c.perShard * scorerCacheShards
	}
	return st
}
