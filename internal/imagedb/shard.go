package imagedb

import (
	"runtime"
	"sort"
	"sync"
)

// stored is one entry as kept inside a shard: the public Entry plus the
// global insertion sequence number used to reconstruct insertion order
// across shards. A stored entry is immutable once published: search
// snapshots read *stored pointers outside any lock, so updates replace
// the entry (copy-on-write in updateImage) rather than mutating it.
type stored struct {
	Entry
	seq uint64
}

// shard is one partition of the database. Each shard owns its entries and
// its slice of the inverted label index under an independent lock, so
// inserts and deletes on different shards never contend.
type shard struct {
	mu      sync.RWMutex
	entries map[string]*stored
	// labels is this shard's slice of the inverted label index:
	// icon label -> image ids stored in this shard.
	labels map[string]map[string]bool
}

func newShard() *shard {
	return &shard{
		entries: make(map[string]*stored),
		labels:  make(map[string]map[string]bool),
	}
}

// indexLabels registers an entry's icons in the shard's label index.
// Callers hold the shard write lock.
func (sh *shard) indexLabels(e *Entry) {
	for _, o := range e.Image.Objects {
		ids := sh.labels[o.Label]
		if ids == nil {
			ids = make(map[string]bool)
			sh.labels[o.Label] = ids
		}
		ids[e.ID] = true
	}
}

// unindexLabels removes an entry's icons from the shard's label index.
// Callers hold the shard write lock.
func (sh *shard) unindexLabels(e *Entry) {
	for _, o := range e.Image.Objects {
		if ids := sh.labels[o.Label]; ids != nil {
			delete(ids, e.ID)
			if len(ids) == 0 {
				delete(sh.labels, o.Label)
			}
		}
	}
}

// defaultShards sizes the shard ring to the machine.
func defaultShards() int {
	return max(runtime.GOMAXPROCS(0), 1)
}

// shardFor routes an id to its shard (FNV-1a, inlined so the hot path of
// every Insert/Get/Delete stays allocation-free).
func (db *DB) shardFor(id string) *shard {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return db.shards[h%uint32(len(db.shards))]
}

// rlockAll acquires every shard's read lock in ring order — the same
// order BulkInsert takes write locks, so the two cannot deadlock — giving
// the caller a point-in-time view of the whole store. Use for operations
// that must not observe half of an all-or-nothing batch.
func (db *DB) rlockAll() {
	for _, sh := range db.shards {
		sh.mu.RLock()
	}
}

func (db *DB) runlockAll() {
	for _, sh := range db.shards {
		sh.mu.RUnlock()
	}
}

// ShardCount returns the number of partitions of the store.
func (db *DB) ShardCount() int { return len(db.shards) }

// Stats describes shard occupancy, for capacity monitoring.
type Stats struct {
	Shards   int   `json:"shards"`
	Images   int   `json:"images"`
	PerShard []int `json:"perShard"`
}

// Stats reports the entry count per shard (point-in-time across shards).
func (db *DB) Stats() Stats {
	s := Stats{Shards: len(db.shards), PerShard: make([]int, len(db.shards))}
	db.rlockAll()
	for i, sh := range db.shards {
		s.PerShard[i] = len(sh.entries)
		s.Images += s.PerShard[i]
	}
	db.runlockAll()
	return s
}

// snapshot collects the current entries of every shard, optionally pruned
// to images sharing at least one icon label with the query. The slice
// order is arbitrary; callers that need determinism sort afterwards. All
// shard read locks are held together (ring order), so the view is
// point-in-time: a concurrent all-or-nothing BulkInsert is visible either
// entirely or not at all, as under the old global lock. Stored entries
// are immutable once published, so the returned pointers are safe to read
// after the locks are released.
func (db *DB) snapshot(query []string, prefilter bool) []*stored {
	out := make([]*stored, 0, 64)
	db.rlockAll()
	defer db.runlockAll()
	for _, sh := range db.shards {
		if prefilter {
			cand := make(map[string]bool)
			for _, label := range query {
				for id := range sh.labels[label] {
					cand[id] = true
				}
			}
			for id := range cand {
				out = append(out, sh.entries[id])
			}
		} else {
			for _, st := range sh.entries {
				out = append(out, st)
			}
		}
	}
	return out
}

// orderedIDs returns every stored id sorted by global insertion sequence.
func (db *DB) orderedIDs() []string { return db.orderedIDsMatching(nil) }

// orderedIDsMatching returns the stored ids accepted by keep (nil keeps
// all), sorted by global insertion sequence. The view is point-in-time
// (all shard read locks held together); keep runs under them.
func (db *DB) orderedIDsMatching(keep func(sh *shard, id string) bool) []string {
	type idSeq struct {
		id  string
		seq uint64
	}
	all := make([]idSeq, 0, 64)
	db.rlockAll()
	for _, sh := range db.shards {
		for id, st := range sh.entries {
			if keep == nil || keep(sh, id) {
				all = append(all, idSeq{id, st.seq})
			}
		}
	}
	db.runlockAll()
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]string, len(all))
	for i, v := range all {
		out[i] = v.id
	}
	return out
}

// orderedEntries returns deep copies of every entry sorted by global
// insertion sequence — the persistence iteration order. All shard read
// locks are held together so a snapshot written by Save is a state the
// database actually passed through (never half of a BulkInsert batch).
func (db *DB) orderedEntries() []Entry {
	type entrySeq struct {
		e   Entry
		seq uint64
	}
	all := make([]entrySeq, 0, 64)
	db.rlockAll()
	for _, sh := range db.shards {
		for _, st := range sh.entries {
			all = append(all, entrySeq{copyEntry(&st.Entry), st.seq})
		}
	}
	db.runlockAll()
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]Entry, len(all))
	for i, v := range all {
		out[i] = v.e
	}
	return out
}
