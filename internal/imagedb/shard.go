package imagedb

import (
	"runtime"
)

// stored is one entry as kept inside a shard view: the public Entry plus
// the global insertion sequence number used to reconstruct insertion
// order across shards. A stored entry is immutable once published: any
// number of snapshots reference *stored pointers concurrently, so
// updates replace the entry (copy-on-write in updateImage) rather than
// mutating it.
type stored struct {
	Entry
	seq uint64
}

// defaultShards sizes the shard ring to the machine.
func defaultShards() int {
	return max(runtime.GOMAXPROCS(0), 1)
}

// ShardCount returns the number of partitions of the store.
func (db *DB) ShardCount() int { return len(db.current.Load().shards) }

// Stats describes shard occupancy, for capacity monitoring.
type Stats struct {
	// Epoch identifies the version these counts were read from.
	Epoch    uint64 `json:"epoch"`
	Shards   int    `json:"shards"`
	Images   int    `json:"images"`
	PerShard []int  `json:"perShard"`
}

// Stats reports the entry count per shard. The counts come from one
// published version, so they are always mutually consistent — a
// concurrent all-or-nothing BulkInsert is visible either entirely or
// not at all.
func (db *DB) Stats() Stats { return db.current.Load().stats() }
