package imagedb

import (
	"runtime"

	"bestring/internal/core"
)

// stored is one entry as kept inside a shard view: the public Entry plus
// the global insertion sequence number used to reconstruct insertion
// order across shards. A stored entry is immutable once published: any
// number of snapshots reference *stored pointers concurrently, so
// updates replace the entry (copy-on-write in updateImage) rather than
// mutating it.
type stored struct {
	Entry
	seq uint64
	// sig is the entry's symbol signature. The bulk and import paths
	// precompute it outside the writer lock (so a 100k-image batch pays no
	// signature work in its critical section); for every other path
	// txn.add/replace derive it once at install time and memoise it here.
	// After install it is never nil, so no read ever re-derives a
	// signature.
	sig *core.Signature
}

// signature returns the entry's symbol signature. The nil branch exists
// only for entries that never went through txn.add (tests constructing
// stored values by hand); installed entries always carry a memoised one.
func (st *stored) signature() core.Signature {
	if st.sig != nil {
		return *st.sig
	}
	return core.SignatureOf(st.BE)
}

// defaultShards sizes the shard ring to the machine, floored at 16:
// shards are also the copy-on-write granularity of the commit path
// (txn.shard copies a whole partition on first touch), so on a
// low-core machine GOMAXPROCS alone would make every commit copy a
// huge fraction of the database.
func defaultShards() int {
	return max(runtime.GOMAXPROCS(0), 16)
}

// ShardCount returns the number of partitions of the store.
func (db *DB) ShardCount() int { return len(db.current.Load().shards) }

// SearchStats are the cumulative filter-and-refine counters of a DB:
// how many candidates its ranked queries narrowed, bounded, evaluated
// and pruned since the database was created. They make pruning efficacy
// observable in production — Pruned/Bounded is the fraction of exact
// LCS evaluations the signature bound saved. Counted by DB.Query,
// DB.QueryIter and the deprecated Search wrappers; queries served from
// an explicit Snapshot are not attributed (a Snapshot may outlive the
// DB handle that minted it).
type SearchStats struct {
	// Queries counts executed ranked/filtered queries (each QueryIter
	// batch counts once).
	Queries uint64 `json:"queries"`
	// Narrowed counts candidates that survived the narrowing stages
	// (label index, region probe, predicate filter) and entered ranking.
	Narrowed uint64 `json:"narrowed"`
	// Bounded counts candidates whose signature upper bound was computed
	// (zero when a query's scorer declares no bound or pruning is off).
	Bounded uint64 `json:"bounded"`
	// Evaluated counts exact score determinations — scorer runs plus
	// scorer-cache hits (the cache serves the identical exact score, so
	// the filter-and-refine accounting treats both alike; the split is
	// the two cache counters below).
	Evaluated uint64 `json:"evaluated"`
	// Pruned counts candidates rejected on the bound alone — ranking
	// work avoided with zero effect on results.
	Pruned uint64 `json:"pruned"`
	// CacheHits counts exact evaluations served from the scorer cache.
	CacheHits uint64 `json:"cacheHits"`
	// CacheMisses counts cacheable evaluations that had to run the
	// scorer (and then populated the cache).
	CacheMisses uint64 `json:"cacheMisses"`
}

// Stats describes shard occupancy, for capacity monitoring.
type Stats struct {
	// Epoch identifies the version these counts were read from.
	Epoch    uint64 `json:"epoch"`
	Shards   int    `json:"shards"`
	Images   int    `json:"images"`
	PerShard []int  `json:"perShard"`
	// Search holds the cumulative filter-and-refine counters. Unlike the
	// occupancy fields they are process-lifetime totals, not a property
	// of the pinned version.
	Search SearchStats `json:"search"`
}

// Stats reports the entry count per shard plus the cumulative search
// counters. The occupancy counts come from one published version, so
// they are always mutually consistent — a concurrent all-or-nothing
// BulkInsert is visible either entirely or not at all.
func (db *DB) Stats() Stats {
	st := db.current.Load().stats()
	db.searchMu.Lock()
	st.Search = db.search
	db.searchMu.Unlock()
	return st
}
