// Package imagedb is the image-database substrate of the demonstration
// retrieval system (paper section 5): a concurrency-safe store of symbolic
// images indexed by their 2D BE-strings, with ranked top-k similarity
// search, pluggable scoring methods (BE-LCS, transform-invariant BE-LCS, or
// the clique-based type-i baselines) and JSON persistence.
package imagedb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"bestring/internal/baseline/typesim"
	"bestring/internal/core"
	"bestring/internal/rtree"
	"bestring/internal/similarity"
)

// Entry is one stored image: the symbolic image plus its precomputed 2D
// BE-string index.
type Entry struct {
	ID    string        `json:"id"`
	Name  string        `json:"name,omitempty"`
	Image core.Image    `json:"image"`
	BE    core.BEString `json:"be"`
}

// Errors returned by DB operations.
var (
	ErrNotFound  = errors.New("image not found")
	ErrDuplicate = errors.New("duplicate image id")
	ErrEmptyID   = errors.New("empty image id")
)

// DB is an in-memory symbolic-image database. The zero value is not ready;
// use New. All methods are safe for concurrent use.
type DB struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	order   []string // insertion order, for deterministic iteration
	// labels is the inverted label index: icon label -> image ids.
	labels map[string]map[string]bool
	// spatial indexes every stored icon MBR (Guttman R-tree); item ids are
	// imageID + "\x00" + label.
	spatial *rtree.Tree
}

// New returns an empty database.
func New() *DB {
	return &DB{
		entries: make(map[string]*Entry),
		labels:  make(map[string]map[string]bool),
		spatial: rtree.New(rtree.DefaultMaxEntries),
	}
}

// indexEntry registers an entry's icons in the label and spatial indexes.
// Callers hold the write lock.
func (db *DB) indexEntry(e *Entry) {
	for _, o := range e.Image.Objects {
		ids := db.labels[o.Label]
		if ids == nil {
			ids = make(map[string]bool)
			db.labels[o.Label] = ids
		}
		ids[e.ID] = true
		db.spatial.Insert(spatialID(e.ID, o.Label), o.Box)
	}
}

// unindexEntry removes an entry's icons from the secondary indexes.
// Callers hold the write lock.
func (db *DB) unindexEntry(e *Entry) {
	for _, o := range e.Image.Objects {
		if ids := db.labels[o.Label]; ids != nil {
			delete(ids, e.ID)
			if len(ids) == 0 {
				delete(db.labels, o.Label)
			}
		}
		db.spatial.Delete(spatialID(e.ID, o.Label), o.Box)
	}
}

// spatialID keys one icon of one image in the R-tree. Labels cannot
// contain NUL (they come from validated images), so the join is unambiguous.
func spatialID(imageID, label string) string { return imageID + "\x00" + label }

// splitSpatialID undoes spatialID.
func splitSpatialID(id string) (imageID, label string) {
	for i := 0; i < len(id); i++ {
		if id[i] == 0 {
			return id[:i], id[i+1:]
		}
	}
	return id, ""
}

// Insert converts the image to its 2D BE-string and stores it under id.
func (db *DB) Insert(id, name string, img core.Image) error {
	if id == "" {
		return ErrEmptyID
	}
	be, err := core.Convert(img)
	if err != nil {
		return fmt.Errorf("insert %q: %w", id, err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.entries[id]; exists {
		return fmt.Errorf("insert %q: %w", id, ErrDuplicate)
	}
	e := &Entry{ID: id, Name: name, Image: img.Clone(), BE: be}
	db.entries[id] = e
	db.order = append(db.order, id)
	db.indexEntry(e)
	return nil
}

// Delete removes the image with the given id.
func (db *DB) Delete(id string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, exists := db.entries[id]
	if !exists {
		return fmt.Errorf("delete %q: %w", id, ErrNotFound)
	}
	db.unindexEntry(e)
	delete(db.entries, id)
	for i, oid := range db.order {
		if oid == id {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	return nil
}

// Get returns a copy of the entry with the given id.
func (db *DB) Get(id string) (Entry, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.entries[id]
	if !ok {
		return Entry{}, false
	}
	return copyEntry(e), true
}

// Len returns the number of stored images.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// IDs returns the stored ids in insertion order.
func (db *DB) IDs() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// InsertObject adds an object to a stored image, reindexing it.
func (db *DB) InsertObject(id string, o core.Object) error {
	return db.updateImage(id, func(img core.Image) core.Image {
		return img.WithObject(o)
	})
}

// DeleteObject removes a labelled object from a stored image, reindexing.
func (db *DB) DeleteObject(id, label string) error {
	var missing bool
	err := db.updateImage(id, func(img core.Image) core.Image {
		out, found := img.WithoutObject(label)
		missing = !found
		return out
	})
	if err != nil {
		return err
	}
	if missing {
		return fmt.Errorf("delete object %q from %q: %w", label, id, ErrNotFound)
	}
	return nil
}

// updateImage applies fn to the stored image and reindexes; the update is
// rejected if the result no longer converts.
func (db *DB) updateImage(id string, fn func(core.Image) core.Image) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.entries[id]
	if !ok {
		return fmt.Errorf("update %q: %w", id, ErrNotFound)
	}
	img := fn(e.Image.Clone())
	be, err := core.Convert(img)
	if err != nil {
		return fmt.Errorf("update %q: %w", id, err)
	}
	db.unindexEntry(e)
	e.Image = img
	e.BE = be
	db.indexEntry(e)
	return nil
}

func copyEntry(e *Entry) Entry {
	return Entry{ID: e.ID, Name: e.Name, Image: e.Image.Clone(), BE: e.BE.Clone()}
}

// Scorer grades a database entry against a query; higher is more similar.
// The query is supplied both as image and as precomputed BE-string so
// scorers pay conversion once per search, not per entry.
type Scorer func(query core.Image, queryBE core.BEString, e Entry) float64

// BEScorer ranks by the paper's modified-LCS similarity (harmonic score).
func BEScorer() Scorer {
	return func(_ core.Image, queryBE core.BEString, e Entry) float64 {
		return similarity.Evaluate(queryBE, e.BE).Key()
	}
}

// InvariantScorer ranks by the best BE-LCS score across the given
// transforms of the query (nil means all eight of the dihedral group).
func InvariantScorer(transforms []core.Transform) Scorer {
	return func(_ core.Image, queryBE core.BEString, e Entry) float64 {
		return similarity.EvaluateInvariant(queryBE, e.BE, transforms).Key()
	}
}

// TypeSimScorer ranks by the clique-based type-i similarity, normalised by
// the query object count — the 2-D string family baseline.
func TypeSimScorer(level typesim.Level) Scorer {
	return func(query core.Image, _ core.BEString, e Entry) float64 {
		return typesim.NormalizedScore(typesim.Similarity(query, e.Image, level), query)
	}
}

// SymbolsOnlyScorer is the ablation scorer: BE-LCS with dummies stripped.
func SymbolsOnlyScorer() Scorer {
	return func(_ core.Image, queryBE core.BEString, e Entry) float64 {
		return similarity.EvaluateSymbolsOnly(queryBE, e.BE).Key()
	}
}

// Result is one ranked search hit.
type Result struct {
	ID    string  `json:"id"`
	Name  string  `json:"name,omitempty"`
	Score float64 `json:"score"`
}

// SearchOptions parameterise Search.
type SearchOptions struct {
	// K limits the number of results (0 means all).
	K int
	// Scorer ranks entries; default BEScorer().
	Scorer Scorer
	// MinScore filters results scoring strictly below the threshold.
	MinScore float64
	// Parallelism bounds the scoring workers (0 means 4).
	Parallelism int
	// LabelPrefilter restricts scoring to images sharing at least one icon
	// label with the query (via the inverted label index). Images that
	// share nothing would score near zero anyway; skipping them trades
	// exact tail ordering for throughput on large collections.
	LabelPrefilter bool
}

// Search ranks the stored images against the query image, best first.
// Ties break by id so results are deterministic. The context cancels
// in-flight scoring.
func (db *DB) Search(ctx context.Context, query core.Image, opts SearchOptions) ([]Result, error) {
	queryBE, err := core.Convert(query)
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	scorer := opts.Scorer
	if scorer == nil {
		scorer = BEScorer()
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = 4
	}

	// Snapshot entries under the read lock; scoring happens outside it.
	db.mu.RLock()
	var candidates map[string]bool
	if opts.LabelPrefilter {
		candidates = make(map[string]bool)
		for _, o := range query.Objects {
			for id := range db.labels[o.Label] {
				candidates[id] = true
			}
		}
	}
	snapshot := make([]*Entry, 0, len(db.order))
	for _, id := range db.order {
		if candidates != nil && !candidates[id] {
			continue
		}
		snapshot = append(snapshot, db.entries[id])
	}
	db.mu.RUnlock()

	results := make([]Result, len(snapshot))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				e := snapshot[i]
				results[i] = Result{ID: e.ID, Name: e.Name, Score: scorer(query, queryBE, *e)}
			}
		}()
	}
	var cancelled error
feed:
	for i := range snapshot {
		select {
		case jobs <- i:
		case <-ctx.Done():
			cancelled = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled != nil {
		return nil, fmt.Errorf("search: %w", cancelled)
	}

	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].ID < results[j].ID
	})
	filtered := results[:0]
	for _, r := range results {
		if r.Score >= opts.MinScore {
			filtered = append(filtered, r)
		}
	}
	results = filtered
	if opts.K > 0 && len(results) > opts.K {
		results = results[:opts.K]
	}
	out := make([]Result, len(results))
	copy(out, results)
	return out, nil
}
