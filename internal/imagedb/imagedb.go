// Package imagedb is the image-database substrate of the demonstration
// retrieval system (paper section 5): a concurrency-safe store of symbolic
// images indexed by their 2D BE-strings, with ranked top-k similarity
// search, pluggable scoring methods (BE-LCS, transform-invariant BE-LCS, or
// the clique-based type-i baselines) and JSON persistence.
//
// The store is MVCC: every version of the database — sharded entry maps,
// inverted label indexes and the spatial R-tree — is an immutable
// snapshot published through one atomic pointer with a monotonically
// increasing epoch. Mutations serialise on a writer mutex, build the
// next version copy-on-write (sharing all untouched structure) and
// publish it in a single store; queries pin an epoch once and run the
// whole staged pipeline with zero lock acquisitions on a frozen,
// consistent view. See snapshot.go and DESIGN.md section 6.
//
// Ranked search scores the pinned version on a worker pool into
// per-worker bounded top-K min-heaps (O(n log K), O(K) space per worker)
// and merges them into the exact ranking a full sort would produce; see
// topk.go and DESIGN.md section 4.
package imagedb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bestring/internal/baseline/typesim"
	"bestring/internal/core"
	"bestring/internal/similarity"
)

// Entry is one stored image: the symbolic image plus its precomputed 2D
// BE-string index.
type Entry struct {
	ID    string        `json:"id"`
	Name  string        `json:"name,omitempty"`
	Image core.Image    `json:"image"`
	BE    core.BEString `json:"be"`
}

// Errors returned by DB operations.
var (
	ErrNotFound  = errors.New("image not found")
	ErrDuplicate = errors.New("duplicate image id")
	ErrEmptyID   = errors.New("empty image id")
)

// DB is an in-memory symbolic-image database, partitioned into shards
// and versioned MVCC-style: reads run lock-free against the atomically
// published current snapshot, writes serialise on writeMu and publish
// the next copy-on-write version. The zero value is not ready; use New
// or NewSharded. All methods are safe for concurrent use.
type DB struct {
	// writeMu serialises mutations. Readers never take it (or any other
	// lock): they load `current` once and traverse frozen data.
	writeMu sync.Mutex
	current atomic.Pointer[snapshot]
	// history retains recent versions so pagination cursors can re-pin
	// the epoch their first page ran against; see epochList.
	history atomic.Pointer[epochList]
	retain  int // guarded by writeMu
	// seq issues global insertion sequence numbers; entries order by seq
	// to reconstruct insertion order across shards.
	seq atomic.Uint64

	// Cumulative filter-and-refine counters (see SearchStats), folded in
	// once per executed query under one mutex — not per-field atomics —
	// so Stats() always reads a coherent combination: a scrape can never
	// observe the narrowed total of query N+1 next to the query count of
	// N. The lock is taken once per query, not per candidate.
	searchMu sync.Mutex
	search   SearchStats

	// metrics is nil until EnableMetrics; an atomic pointer so metrics
	// can be enabled while the DB is already serving.
	metrics atomic.Pointer[dbMetrics]

	// cache memoises exact scores of BE-pure registry scorers across
	// queries (nil: disabled); swapped whole by SetScorerCacheCapacity.
	// See scorercache.go for the pointer-keyed exact invalidation.
	cache atomic.Pointer[scorerCache]
	// cacheEvictions counts LRU evictions across cache reconfigurations
	// (the cache object holds a pointer to it).
	cacheEvictions atomic.Uint64
	// shapes is the planner's decaying per-query-shape predicate
	// pass-rate table (plan.go).
	shapes shapeStats

	// arenaOff disables the columnar arena layout for bulk-loaded
	// segments (arena.go). Inverted so the zero value keeps the default:
	// arena on.
	arenaOff atomic.Bool
}

// New returns an empty database with the default shard count.
func New() *DB { return NewSharded(0) }

// NewSharded returns an empty database with an explicit shard count
// (n <= 0 means the default: GOMAXPROCS, floored at 16).
func NewSharded(n int) *DB {
	if n <= 0 {
		n = defaultShards()
	}
	db := &DB{retain: DefaultSnapshotRetention}
	first := emptySnapshot(n)
	db.current.Store(first)
	db.history.Store(&epochList{snaps: []*snapshot{first}})
	db.cache.Store(newScorerCache(DefaultScorerCacheCapacity, &db.cacheEvictions))
	return db
}

// Epoch returns the epoch of the current version — the value a query
// issued now would pin. It increases by one per published mutation.
func (db *DB) Epoch() uint64 { return db.current.Load().epoch }

// spatialID keys one icon of one image in the R-tree. Labels cannot
// contain NUL (they come from validated images), so the join is unambiguous.
func spatialID(imageID, label string) string { return imageID + "\x00" + label }

// splitSpatialID undoes spatialID.
func splitSpatialID(id string) (imageID, label string) {
	for i := 0; i < len(id); i++ {
		if id[i] == 0 {
			return id[:i], id[i+1:]
		}
	}
	return id, ""
}

// Insert converts the image to its 2D BE-string and stores it under id.
func (db *DB) Insert(id, name string, img core.Image) error {
	if id == "" {
		return ErrEmptyID
	}
	be, err := core.Convert(img)
	if err != nil {
		return fmt.Errorf("insert %q: %w", id, err)
	}
	return db.insertConverted(id, name, img, be)
}

// insertConverted installs an entry whose BE-string is already computed —
// the tail of Insert, split out so the durable store (which converts once
// during pre-log validation) does not pay conversion twice.
func (db *DB) insertConverted(id, name string, img core.Image, be core.BEString) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	cur := db.current.Load()
	if _, exists := cur.lookup(id); exists {
		return fmt.Errorf("insert %q: %w", id, ErrDuplicate)
	}
	m := beginTxn(cur)
	m.add(&stored{
		Entry: Entry{ID: id, Name: name, Image: img.Clone(), BE: be},
		seq:   db.seq.Add(1),
	})
	db.publish(m)
	return nil
}

// Delete removes the image with the given id.
func (db *DB) Delete(id string) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	cur := db.current.Load()
	st, exists := cur.lookup(id)
	if !exists {
		return fmt.Errorf("delete %q: %w", id, ErrNotFound)
	}
	m := beginTxn(cur)
	m.remove(st)
	db.publish(m)
	return nil
}

// Has reports whether an image with the given id is stored — existence
// without Get's deep copy of the entry. Lock-free.
func (db *DB) Has(id string) bool {
	_, ok := db.current.Load().lookup(id)
	return ok
}

// Get returns a copy of the entry with the given id. Lock-free.
func (db *DB) Get(id string) (Entry, bool) {
	st, ok := db.current.Load().lookup(id)
	if !ok {
		return Entry{}, false
	}
	return copyEntry(&st.Entry), true
}

// Len returns the number of stored images in the current version.
func (db *DB) Len() int { return db.current.Load().count }

// IDs returns the stored ids in insertion order.
func (db *DB) IDs() []string { return db.current.Load().orderedIDsMatching(nil) }

// InsertObject adds an object to a stored image, reindexing it.
func (db *DB) InsertObject(id string, o core.Object) error {
	return db.updateImage(id, func(img core.Image) core.Image {
		return img.WithObject(o)
	})
}

// DeleteObject removes a labelled object from a stored image, reindexing.
func (db *DB) DeleteObject(id, label string) error {
	var missing bool
	err := db.updateImage(id, func(img core.Image) core.Image {
		out, found := img.WithoutObject(label)
		missing = !found
		return out
	})
	if err != nil {
		return err
	}
	if missing {
		return fmt.Errorf("delete object %q from %q: %w", label, id, ErrNotFound)
	}
	return nil
}

// updateImage applies fn to the stored image and reindexes; the update is
// rejected if the result no longer converts. The entry is replaced, never
// mutated: published snapshots hold *stored pointers, so an entry must
// stay immutable once any version references it (copy-on-write).
func (db *DB) updateImage(id string, fn func(core.Image) core.Image) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	cur := db.current.Load()
	st, ok := cur.lookup(id)
	if !ok {
		return fmt.Errorf("update %q: %w", id, ErrNotFound)
	}
	img := fn(st.Image.Clone())
	be, err := core.Convert(img)
	if err != nil {
		return fmt.Errorf("update %q: %w", id, err)
	}
	next := &stored{
		Entry: Entry{ID: id, Name: st.Name, Image: img, BE: be},
		seq:   st.seq,
	}
	m := beginTxn(cur)
	m.replace(st, next)
	db.publish(m)
	return nil
}

// replaceImage swaps the stored image of id for a pre-validated
// (image, BE-string) pair, keeping the entry's insertion sequence. The
// durable store uses it after logging an object mutation it has already
// simulated and converted; direct callers should go through updateImage,
// which recomputes under the writer lock.
func (db *DB) replaceImage(id string, img core.Image, be core.BEString) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	cur := db.current.Load()
	st, ok := cur.lookup(id)
	if !ok {
		return fmt.Errorf("update %q: %w", id, ErrNotFound)
	}
	next := &stored{
		Entry: Entry{ID: id, Name: st.Name, Image: img, BE: be},
		seq:   st.seq,
	}
	m := beginTxn(cur)
	m.replace(st, next)
	db.publish(m)
	return nil
}

func copyEntry(e *Entry) Entry {
	return Entry{ID: e.ID, Name: e.Name, Image: e.Image.Clone(), BE: e.BE.Clone()}
}

// Scorer grades a database entry against a query; higher is more similar.
// The query is supplied both as image and as precomputed BE-string so
// scorers pay conversion once per search, not per entry.
type Scorer func(query core.Image, queryBE core.BEString, e Entry) float64

// BEScorer ranks by the paper's modified-LCS similarity (harmonic score).
func BEScorer() Scorer {
	return func(_ core.Image, queryBE core.BEString, e Entry) float64 {
		return similarity.Evaluate(queryBE, e.BE).Key()
	}
}

// InvariantScorer ranks by the best BE-LCS score across the given
// transforms of the query (nil means all eight of the dihedral group).
func InvariantScorer(transforms []core.Transform) Scorer {
	return func(_ core.Image, queryBE core.BEString, e Entry) float64 {
		return similarity.EvaluateInvariant(queryBE, e.BE, transforms).Key()
	}
}

// TypeSimScorer ranks by the clique-based type-i similarity, normalised by
// the query object count — the 2-D string family baseline.
func TypeSimScorer(level typesim.Level) Scorer {
	return func(query core.Image, _ core.BEString, e Entry) float64 {
		return typesim.NormalizedScore(typesim.Similarity(query, e.Image, level), query)
	}
}

// SymbolsOnlyScorer is the ablation scorer: BE-LCS with dummies stripped.
func SymbolsOnlyScorer() Scorer {
	return func(_ core.Image, queryBE core.BEString, e Entry) float64 {
		return similarity.EvaluateSymbolsOnly(queryBE, e.BE).Key()
	}
}

// Result is one ranked search hit.
type Result struct {
	ID    string  `json:"id"`
	Name  string  `json:"name,omitempty"`
	Score float64 `json:"score"`
}

// sortResults orders results best first: score descending, id ascending
// on ties — the canonical deterministic result order.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return worse(rs[j], rs[i]) })
}

// SearchOptions parameterise Search.
type SearchOptions struct {
	// K limits the number of results (0 means all). K > 0 enables the
	// bounded-heap accumulation path: O(n log K) instead of O(n log n).
	K int
	// Scorer ranks entries; default BEScorer().
	Scorer Scorer
	// MinScore filters results scoring strictly below the threshold (a
	// result scoring exactly MinScore is kept). Applied during heap
	// accumulation, before a candidate can occupy a top-K slot.
	MinScore float64
	// Parallelism bounds the scoring workers (0 means GOMAXPROCS).
	Parallelism int
	// LabelPrefilter restricts scoring to images sharing at least one icon
	// label with the query (via the inverted label index). Images that
	// share nothing would score near zero anyway; skipping them trades
	// exact tail ordering for throughput on large collections.
	LabelPrefilter bool
}

// queryLabels lists the distinct icon labels of the query image.
func queryLabels(query core.Image) []string {
	out := make([]string, 0, len(query.Objects))
	seen := make(map[string]bool, len(query.Objects))
	for _, o := range query.Objects {
		if !seen[o.Label] {
			seen[o.Label] = true
			out = append(out, o.Label)
		}
	}
	return out
}

// Search ranks the stored images against the query image, best first.
// Ties break by id so results are deterministic: for a given (query, K,
// MinScore) the ranking is byte-identical whatever the shard count or
// Parallelism. The context cancels in-flight scoring.
//
// Deprecated: Search is the image-only special case of the composable
// pipeline; it remains as a thin wrapper over DB.Query and returns
// byte-identical results. New code should build a Query.
func (db *DB) Search(ctx context.Context, query core.Image, opts SearchOptions) ([]Result, error) {
	spec := &Query{
		image:          &query,
		whereMin:       -1,
		scorer:         opts.Scorer,
		k:              max(opts.K, 0), // the seed engine treated K < 0 as "all"
		minScore:       opts.MinScore,
		parallelism:    opts.Parallelism,
		labelPrefilter: opts.LabelPrefilter,
	}
	page, err := db.execute(ctx, spec)
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	out := make([]Result, len(page.Hits))
	for i, h := range page.Hits {
		out[i] = Result{ID: h.ID, Name: h.Name, Score: h.Score}
	}
	return out, nil
}
