package imagedb

import (
	"encoding/base64"
	"encoding/json"
	"fmt"

	"bestring/internal/core"
	"bestring/internal/query"
)

// Query is a composable retrieval request: any combination of a ranked
// similarity component (a query image), a spatial-predicate filter
// (Where), and a region filter (InRegion), plus pagination and engine
// knobs. Build one with NewQuery or NewMatchQuery and functional options,
// then execute it with DB.Query or stream it with DB.QueryIter:
//
//	page, err := db.Query(ctx, NewQuery(img),
//	        WithK(10), WithScorer("invariant"),
//	        Where("A left-of B"), InRegion(rect), WithMinScore(0.4))
//
// A Query value is immutable once built from the caller's perspective:
// DB.Query applies extra options to a copy, so a Query can be reused and
// shared across goroutines.
type Query struct {
	image       *core.Image
	dsl         *query.Query
	whereMin    float64 // -1 means default (1.0 with an image, any-positive without)
	region      *core.Rect
	regionLabel string

	scorer     Scorer // explicit function, wins over scorerName
	scorerName string // registry lookup, "" means DefaultScorerName

	k      int
	offset int
	cursor string

	minScore       float64
	parallelism    int
	labelPrefilter bool
	noPrune        bool
	noPlan         bool
	noCache        bool

	err error // sticky builder error, surfaced by DB.Query
}

// QueryOption configures a Query.
type QueryOption func(*Query)

// NewQuery returns a ranked-retrieval query for the image, to be refined
// with options.
func NewQuery(img core.Image) *Query {
	c := img.Clone()
	return &Query{image: &c, whereMin: -1}
}

// NewMatchQuery returns a query with no ranked component: results are
// ordered by spatial-predicate satisfaction (when Where is set) or by id
// (region-only queries). At least one of Where or InRegion must be added
// before execution.
func NewMatchQuery() *Query {
	return &Query{whereMin: -1}
}

// clone returns a copy the pipeline may mutate without affecting the
// caller's Query.
func (q *Query) clone() *Query {
	c := *q
	return &c
}

// apply runs the options over the query, preserving the first sticky
// error.
func (q *Query) apply(opts []QueryOption) *Query {
	for _, opt := range opts {
		opt(q)
	}
	return q
}

// Err returns the sticky builder error, if any option failed (for
// example a Where clause that does not parse). DB.Query surfaces it, so
// checking here is optional.
func (q *Query) Err() error { return q.err }

// fail records the first builder error.
func (q *Query) fail(err error) {
	if q.err == nil {
		q.err = err
	}
}

// WithK limits the page to the best k results (0 means all).
func WithK(k int) QueryOption {
	return func(q *Query) {
		if k < 0 {
			q.fail(fmt.Errorf("negative k %d", k))
			return
		}
		q.k = k
	}
}

// WithOffset skips the first n results of the ranking (offset
// pagination). For pagination that stays stable under concurrent
// inserts, prefer WithCursor.
func WithOffset(n int) QueryOption {
	return func(q *Query) {
		if n < 0 {
			q.fail(fmt.Errorf("negative offset %d", n))
			return
		}
		q.offset = n
	}
}

// WithCursor resumes a paginated query after the position encoded in a
// previous Page.NextCursor. The cursor pins the epoch its page was
// computed from, so while that version stays retained the page sequence
// is exactly the pinned version's ranking (no skips, no duplicates,
// whatever concurrent writers do); once it ages out, the query falls
// back to the current version and results already delivered still never
// reappear.
func WithCursor(c string) QueryOption {
	return func(q *Query) { q.cursor = c }
}

// WithScorer selects a registered scorer by name (see RegisterScorer;
// "" means the default BE-LCS scorer). Resolution happens at execution,
// so scorers registered after the query was built are found.
func WithScorer(name string) QueryOption {
	return func(q *Query) { q.scorerName = name }
}

// WithScorerFunc ranks with an explicit scorer function, bypassing the
// registry.
func WithScorerFunc(s Scorer) QueryOption {
	return func(q *Query) { q.scorer = s }
}

// Where filters results with a spatial-predicate expression in the
// internal/query surface syntax ("A left-of B; B above C"). With a
// ranked component the filter keeps images satisfying every clause
// (tune with WithWhereMin); without one, the satisfied fraction becomes
// the ranking score, exactly as DB.SearchDSL ranks. A parse error is
// sticky and surfaces when the query executes.
func Where(dsl string) QueryOption {
	return func(q *Query) {
		parsed, err := query.Parse(dsl)
		if err != nil {
			q.fail(err)
			return
		}
		q.dsl = &parsed
	}
}

// WhereQuery is Where for an already-parsed spatial query.
func WhereQuery(sq query.Query) QueryOption {
	return func(q *Query) {
		if len(sq.Constraints) == 0 {
			q.fail(fmt.Errorf("empty query"))
			return
		}
		q.dsl = &sq
	}
}

// WithWhereMin sets the satisfied fraction a result's Where evaluation
// must reach to survive the filter, in (0, 1]. The default is 1 (every
// clause must hold) when the query has a ranked component, and
// any-positive-fraction when spatial satisfaction itself is the ranking.
func WithWhereMin(f float64) QueryOption {
	return func(q *Query) {
		if f <= 0 || f > 1 {
			q.fail(fmt.Errorf("where-min %v out of (0, 1]", f))
			return
		}
		q.whereMin = f
	}
}

// InRegion keeps images with at least one icon whose MBR intersects the
// region (answered by the R-tree before any scoring).
func InRegion(r core.Rect) QueryOption {
	return func(q *Query) {
		if !r.Valid() {
			q.fail(fmt.Errorf("invalid region %v", r))
			return
		}
		q.region = &r
	}
}

// InRegionLabel is InRegion restricted to icons with the given label
// ("" means any label).
func InRegionLabel(r core.Rect, label string) QueryOption {
	return func(q *Query) {
		InRegion(r)(q)
		q.regionLabel = label
	}
}

// WithMinScore drops results whose ranking score is strictly below the
// threshold (a result scoring exactly the threshold is kept).
func WithMinScore(f float64) QueryOption {
	return func(q *Query) { q.minScore = f }
}

// WithParallelism bounds the scoring workers (0 means GOMAXPROCS).
func WithParallelism(n int) QueryOption {
	return func(q *Query) {
		if n < 0 {
			q.fail(fmt.Errorf("negative parallelism %d", n))
			return
		}
		q.parallelism = n
	}
}

// WithLabelPrefilter restricts scoring to images sharing at least one
// icon label with the query image (via the inverted label index) — the
// same trade as SearchOptions.LabelPrefilter.
func WithLabelPrefilter(on bool) QueryOption {
	return func(q *Query) { q.labelPrefilter = on }
}

// WithPruning toggles the filter-and-refine refine stage (default on).
// When on and the query ranks with a registry scorer that declares an
// upper bound, candidates whose bound already loses to the running
// top-K floor (or the MinScore threshold) skip the exact evaluation;
// the ranking stays byte-identical either way, so turning pruning off
// is only useful for measuring what it saves.
func WithPruning(on bool) QueryOption {
	return func(q *Query) { q.noPrune = !on }
}

// WithPlanner toggles the cost-based stage planner (default on). When
// off, the query executes in the fixed label → region → predicate order
// (plan "fixed"). Plans change only how the candidate set is assembled,
// never what it contains — Hits, Total and NextCursor are byte-identical
// either way — so disabling the planner is only useful for measuring
// what it saves (and as the baseline of the byte-identity tests).
func WithPlanner(on bool) QueryOption {
	return func(q *Query) { q.noPlan = !on }
}

// WithScorerCache toggles this query's use of the DB's scorer cache
// (default on; the DB-wide cache is configured with
// SetScorerCacheCapacity). Only queries ranking with a BE-pure registry
// scorer ever consult it, and a cached score is always the exact score —
// rankings are byte-identical with the cache on or off.
func WithScorerCache(on bool) QueryOption {
	return func(q *Query) { q.noCache = !on }
}

// cursorPos is the decoded pagination cursor: the ranking position
// (score, id) of the last delivered result, plus the epoch of the
// version the page was computed from. Resuming re-pins that version
// while it stays retained (see SetSnapshotRetention), making page sets
// exact — no skips, no duplicates — under concurrent writers. The
// admission rule (only results strictly worse in the canonical order)
// additionally holds on whatever version serves the next page, so even
// after the epoch ages out, already-delivered results cannot reappear.
// Epoch 0 means "no pin" (a cursor minted before epochs existed).
type cursorPos struct {
	Score float64 `json:"s"`
	ID    string  `json:"id"`
	Epoch uint64  `json:"e,omitempty"`
}

// encodeCursor renders a resume position as an opaque URL-safe token.
// A position that does not marshal (a NaN score from a custom scorer)
// yields no cursor rather than a broken one.
func encodeCursor(last Result, epoch uint64) string {
	raw, err := json.Marshal(cursorPos{Score: last.Score, ID: last.ID, Epoch: epoch})
	if err != nil {
		return ""
	}
	return base64.RawURLEncoding.EncodeToString(raw)
}

// decodedCursor parses the query's cursor token once (nil when the
// query has none); resolve and the Snapshot entry points thread the
// result into executeOn so the hot path never parses a token twice.
func (q *Query) decodedCursor() (*cursorPos, error) {
	if q.cursor == "" {
		return nil, nil
	}
	c, err := decodeCursor(q.cursor)
	if err != nil {
		return nil, err
	}
	return &c, nil
}

// decodeCursor parses a token produced by encodeCursor.
func decodeCursor(s string) (cursorPos, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return cursorPos{}, fmt.Errorf("bad cursor: %w", err)
	}
	var c cursorPos
	if err := json.Unmarshal(raw, &c); err != nil {
		return cursorPos{}, fmt.Errorf("bad cursor: %w", err)
	}
	return c, nil
}
