package imagedb

import (
	"context"
	"fmt"
	"sort"

	"bestring/internal/core"
	"bestring/internal/query"
)

// RegionHit is one icon found by a location-constrained search.
type RegionHit struct {
	ImageID string    `json:"imageId"`
	Label   string    `json:"label"`
	Box     core.Rect `json:"box"`
}

// SearchRegion returns every stored icon whose MBR intersects the region,
// optionally restricted to one label — the "by size and location"
// indexing category of the paper's related work, answered by the R-tree.
// Results are sorted by (image id, label).
func (db *DB) SearchRegion(region core.Rect, label string) []RegionHit {
	if !region.Valid() {
		return nil
	}
	db.spatialMu.RLock()
	items := db.spatial.SearchIntersect(region)
	db.spatialMu.RUnlock()

	out := make([]RegionHit, 0, len(items))
	for _, it := range items {
		imageID, l := splitSpatialID(it.ID)
		if label != "" && l != label {
			continue
		}
		out = append(out, RegionHit{ImageID: imageID, Label: l, Box: it.Box})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ImageID != out[j].ImageID {
			return out[i].ImageID < out[j].ImageID
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// QueryResult is one image ranked by spatial-predicate satisfaction.
type QueryResult struct {
	ID    string  `json:"id"`
	Name  string  `json:"name,omitempty"`
	Score float64 `json:"score"` // satisfied fraction of constraints
	Full  bool    `json:"full"`  // every constraint satisfied
}

// SearchDSL evaluates a spatial-predicate query (internal/query syntax,
// e.g. "A left-of B; B above C") against every stored image and returns
// images ranked by the satisfied fraction, best first; ties break by id.
// The per-shard inverted label indexes prune images containing none of the
// query's labels. k <= 0 returns all scoring images.
func (db *DB) SearchDSL(ctx context.Context, q query.Query, k int) ([]QueryResult, error) {
	if len(q.Constraints) == 0 {
		return nil, fmt.Errorf("search dsl: empty query")
	}
	labels := make([]string, 0, len(q.Labels()))
	for label := range q.Labels() {
		labels = append(labels, label)
	}
	snapshot := db.snapshot(labels, true)

	out := make([]QueryResult, 0, len(snapshot))
	for _, st := range snapshot {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("search dsl: %w", err)
		}
		score, full := q.Eval(st.Image)
		if score <= 0 {
			continue
		}
		out = append(out, QueryResult{ID: st.ID, Name: st.Name, Score: score, Full: full})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// ImagesWithLabel returns the ids of images containing the icon label,
// in insertion order (the inverted-index lookup, gathered across shards).
func (db *DB) ImagesWithLabel(label string) []string {
	return db.orderedIDsMatching(func(sh *shard, id string) bool {
		return sh.labels[label][id]
	})
}
