package imagedb

import (
	"context"
	"fmt"
	"sort"

	"bestring/internal/core"
	"bestring/internal/query"
)

// RegionHit is one icon found by a location-constrained search.
type RegionHit struct {
	ImageID string    `json:"imageId"`
	Label   string    `json:"label"`
	Box     core.Rect `json:"box"`
}

// regionHits probes a version's R-tree for icons intersecting the
// region, optionally restricted to one label, in arbitrary order. It is
// the region stage shared by SearchRegion and the query pipeline.
// Lock-free: the version's tree is frozen.
func (s *snapshot) regionHits(region core.Rect, label string) []RegionHit {
	items := s.spatial.SearchIntersect(region)
	out := make([]RegionHit, 0, len(items))
	for _, it := range items {
		imageID, l := splitSpatialID(it.ID)
		if label != "" && l != label {
			continue
		}
		out = append(out, RegionHit{ImageID: imageID, Label: l, Box: it.Box})
	}
	return out
}

// regionIDSet reduces the region probe to the set of image ids with at
// least one matching icon — the candidate filter of the pipeline's
// region stage.
func (s *snapshot) regionIDSet(region core.Rect, label string) map[string]bool {
	hits := s.regionHits(region, label)
	ids := make(map[string]bool, len(hits))
	for _, h := range hits {
		ids[h.ImageID] = true
	}
	return ids
}

// sortRegionHits orders icon hits by (image id, label).
func sortRegionHits(out []RegionHit) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].ImageID != out[j].ImageID {
			return out[i].ImageID < out[j].ImageID
		}
		return out[i].Label < out[j].Label
	})
}

// SearchRegion returns every stored icon whose MBR intersects the region,
// optionally restricted to one label — the "by size and location"
// indexing category of the paper's related work, answered by the R-tree.
// Results are sorted by (image id, label).
//
// Deprecated: SearchRegion is the icon-level view of the pipeline's
// region stage; to retrieve images (rather than icons), build a Query
// with InRegion, which composes with ranking and Where clauses.
func (db *DB) SearchRegion(region core.Rect, label string) []RegionHit {
	if !region.Valid() {
		return nil
	}
	out := db.current.Load().regionHits(region, label)
	sortRegionHits(out)
	return out
}

// SearchRegion is the icon-level region probe against this pinned
// version, sorted by (image id, label).
func (sn *Snapshot) SearchRegion(region core.Rect, label string) []RegionHit {
	if !region.Valid() {
		return nil
	}
	out := sn.snap.regionHits(region, label)
	sortRegionHits(out)
	return out
}

// QueryResult is one image ranked by spatial-predicate satisfaction.
type QueryResult struct {
	ID    string  `json:"id"`
	Name  string  `json:"name,omitempty"`
	Score float64 `json:"score"` // satisfied fraction of constraints
	Full  bool    `json:"full"`  // every constraint satisfied
}

// SearchDSL evaluates a spatial-predicate query (internal/query syntax,
// e.g. "A left-of B; B above C") against every stored image and returns
// images ranked by the satisfied fraction, best first; ties break by id.
// The per-shard inverted label indexes prune images containing none of the
// query's labels. k <= 0 returns all scoring images.
//
// Deprecated: SearchDSL is the Where-only special case of the composable
// pipeline; it remains as a thin wrapper over DB.Query and returns
// byte-identical results. New code should build a Query with WhereQuery.
func (db *DB) SearchDSL(ctx context.Context, q query.Query, k int) ([]QueryResult, error) {
	if len(q.Constraints) == 0 {
		return nil, fmt.Errorf("search dsl: empty query")
	}
	spec := &Query{dsl: &q, whereMin: -1, k: max(k, 0)}
	page, err := db.execute(ctx, spec)
	if err != nil {
		return nil, fmt.Errorf("search dsl: %w", err)
	}
	out := make([]QueryResult, len(page.Hits))
	for i, h := range page.Hits {
		out[i] = QueryResult{ID: h.ID, Name: h.Name, Score: h.Score, Full: h.Full}
	}
	return out, nil
}

// ImagesWithLabel returns the ids of images containing the icon label,
// in insertion order (the inverted-index lookup, gathered across shards).
func (db *DB) ImagesWithLabel(label string) []string {
	return db.current.Load().orderedIDsMatching(func(sv *shardView, id string) bool {
		return sv.labels[label][id]
	})
}
