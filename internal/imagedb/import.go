package imagedb

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"bestring/internal/ingest"
	"bestring/internal/wal"
)

// This file is the streaming bulk importer (DESIGN.md section 12). Where
// BulkInsert materialises a whole batch and logs it as one WAL record,
// the importer pulls scenes from an ingest.Reader one at a time, groups
// them into bounded chunks, converts and signs the chunks in a worker
// pool (a fixed-depth channel provides backpressure: a slow disk stalls
// the reader instead of ballooning memory), and commits each chunk as
// its own WAL record — one fsync per policy, one published MVCC version
// — so a 10M-scene corpus imports with bounded memory and its progress
// is observable mid-flight on /healthz and /metrics.
//
// Crash resume: every chunk record carries a deterministic content key
// (a hash of the chunk index and its scenes). Re-running the same import
// against the same source with the same chunk options derives the same
// keys, and chunks whose key is already in the durable log — collected
// during recovery replay — are skipped, not re-applied. Chunks whose WAL
// record a checkpoint has already pruned are caught by a fallback: if
// every id of a chunk is already present, the chunk is durable by
// construction (chunks apply atomically) and is likewise skipped.

// Import tuning defaults.
const (
	// DefaultImportChunkScenes caps scenes per import chunk.
	DefaultImportChunkScenes = 8192
	// DefaultImportChunkBytes is the soft encoded-size budget per chunk —
	// deliberately far under wal.MaxRecordBytes so even wildly
	// object-dense scenes cannot push a chunk record near the frame bound.
	DefaultImportChunkBytes = 8 << 20
)

// ImportOptions tune an Importer.
type ImportOptions struct {
	// ChunkScenes caps the scenes per chunk (0 means
	// DefaultImportChunkScenes). Smaller chunks publish progress sooner;
	// larger chunks amortise per-commit costs better.
	ChunkScenes int
	// ChunkBytes is the soft encoded-size budget per chunk (0 means
	// DefaultImportChunkBytes). A chunk closes when either bound trips.
	ChunkBytes int64
	// Parallelism bounds the conversion workers and the chunk pipeline
	// depth (0 means GOMAXPROCS).
	Parallelism int
	// NoResume disables the durable-chunk skip: every chunk is imported
	// unconditionally, and any id collision fails the import. Resume
	// requires re-running with the same source and the same chunk options,
	// since both determine the per-chunk content keys.
	NoResume bool
	// Progress, when set, is called after every committed or skipped
	// chunk with the run's stats so far. Called from the importing
	// goroutine with no store locks held; it must not mutate the store.
	Progress func(ImportStats)
}

// ImportStats describes an import — either one run (returned by
// Importer.Run) or the store's cumulative tally (Store.ImportStats,
// served on /healthz and /metrics).
type ImportStats struct {
	// Active is the number of imports currently running (always 0 in a
	// single run's stats).
	Active int `json:"active"`
	// Chunks and Images count committed work; Bytes the WAL bytes those
	// commits appended.
	Chunks uint64 `json:"chunks"`
	Images uint64 `json:"images"`
	Bytes  uint64 `json:"bytes"`
	// ResumedChunks/ResumedImages count chunks skipped because they were
	// already durable from an interrupted earlier run.
	ResumedChunks uint64 `json:"resumedChunks"`
	ResumedImages uint64 `json:"resumedImages"`
	// LSN is the last import chunk's log sequence number.
	LSN uint64 `json:"lsn"`
}

// Importer streams scenes into a Store in chunked, resumable, durable
// batches. Create with Store.NewImporter; one Importer runs one import
// at a time (concurrent Run calls on separate Importers are safe but
// serialise per chunk on the store's writer lock like any mutations).
type Importer struct {
	s    *Store
	opts ImportOptions

	// Run-local stats, owned by the committing goroutine.
	stats ImportStats
}

// NewImporter returns an importer with the given options.
func (s *Store) NewImporter(opts ImportOptions) *Importer {
	if opts.ChunkScenes <= 0 {
		opts.ChunkScenes = DefaultImportChunkScenes
	}
	if opts.ChunkBytes <= 0 {
		opts.ChunkBytes = DefaultImportChunkBytes
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Importer{s: s, opts: opts}
}

// Import streams scenes from src into the store with the given options —
// shorthand for NewImporter(opts).Run(ctx, src).
func (s *Store) Import(ctx context.Context, src ingest.Reader, opts ImportOptions) (ImportStats, error) {
	return s.NewImporter(opts).Run(ctx, src)
}

// ImportStats returns the store's cumulative import tally for this
// process: chunks/images/bytes committed, chunks skipped by resume, the
// last import LSN, and how many imports are running right now.
func (s *Store) ImportStats() ImportStats {
	s.importMu.Lock()
	defer s.importMu.Unlock()
	t := s.importTally
	t.Active = s.activeImports
	return t
}

// hasImportKey reports whether an import chunk with this content key is
// already durable in this store's history.
func (s *Store) hasImportKey(key string) bool {
	s.importMu.Lock()
	defer s.importMu.Unlock()
	return s.importKeys[key]
}

// noteImportKey records a durable import chunk key.
func (s *Store) noteImportKey(key string) {
	s.importMu.Lock()
	defer s.importMu.Unlock()
	if s.importKeys == nil {
		s.importKeys = make(map[string]bool)
	}
	s.importKeys[key] = true
}

// rawChunk is a chunk as cut by the reader; convChunk the same chunk
// after the worker pool converted and packed it (or decided to skip it).
type rawChunk struct {
	idx   int
	key   string
	items []BulkItem
}

type convChunk struct {
	rawChunk
	sts  []*stored
	skip bool // key already durable; conversion skipped
	err  error
}

// chunkKey derives the deterministic content key of a chunk: a SHA-256
// over the chunk's position and every scene's identity and geometry.
// Length-prefixed strings keep the encoding injective.
func chunkKey(idx int, items []BulkItem) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		put(uint64(len(s)))
		io.WriteString(h, s)
	}
	put(uint64(idx))
	for i := range items {
		it := &items[i]
		str(it.ID)
		str(it.Name)
		put(uint64(int64(it.Image.XMax)))
		put(uint64(int64(it.Image.YMax)))
		for _, o := range it.Image.Objects {
			str(o.Label)
			put(uint64(int64(o.Box.X0)))
			put(uint64(int64(o.Box.Y0)))
			put(uint64(int64(o.Box.X1)))
			put(uint64(int64(o.Box.Y1)))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Run executes the import: reads src to exhaustion (or ctx
// cancellation), committing every chunk durably in stream order. It
// returns the run's stats — including how much work an interrupted
// earlier run already made durable — and the first error encountered.
// On error or cancellation, chunks committed so far stay applied and
// durable; re-running the same import resumes after them.
func (imp *Importer) Run(ctx context.Context, src ingest.Reader) (ImportStats, error) {
	s := imp.s
	if s.opts.Replica {
		return ImportStats{}, ErrReadOnlyReplica
	}
	imp.stats = ImportStats{}
	s.importMu.Lock()
	s.activeImports++
	s.importMu.Unlock()
	defer func() {
		s.importMu.Lock()
		s.activeImports--
		s.importMu.Unlock()
	}()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	par := imp.opts.Parallelism
	jobs := make(chan rawChunk, par)    // reader -> workers; fixed depth = backpressure
	done := make(chan convChunk, par)   // workers -> committer
	readErr := make(chan error, 1)     // reader's terminal error, if any
	resume := !imp.opts.NoResume
	arena := s.db.ArenaLayout()

	// Reader: cut the stream into chunks. Blocks on jobs when the
	// pipeline is full — that is the backpressure bounding memory to
	// O(parallelism * chunk size).
	go func() {
		defer close(jobs)
		idx := 0
		items := make([]BulkItem, 0, imp.opts.ChunkScenes)
		var bytes int64
		flush := func() bool {
			if len(items) == 0 {
				return true
			}
			rc := rawChunk{idx: idx, key: chunkKey(idx, items), items: items}
			idx++
			items = make([]BulkItem, 0, imp.opts.ChunkScenes)
			bytes = 0
			select {
			case jobs <- rc:
				return true
			case <-ctx.Done():
				return false
			}
		}
		for {
			scene, err := src.Next()
			if err == io.EOF {
				flush()
				return
			}
			if err != nil {
				readErr <- err
				return
			}
			items = append(items, BulkItem{ID: scene.ID, Name: scene.Name, Image: scene.Image})
			bytes += int64(96 + 2*(len(scene.ID)+len(scene.Name)) + imageSizeHint(&scene.Image))
			if len(items) >= imp.opts.ChunkScenes || bytes >= imp.opts.ChunkBytes {
				if !flush() {
					return
				}
			}
		}
	}()

	// Workers: convert, sign and (with the arena layout) pack each chunk.
	// A chunk whose key is already durable skips conversion entirely.
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rc := range jobs {
				cc := convChunk{rawChunk: rc}
				if resume && s.hasImportKey(rc.key) {
					cc.skip = true
				} else {
					cc.sts, cc.err = prepareBulk(ctx, rc.items, 1, arena)
				}
				select {
				case done <- cc:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// Committer: re-order the converted chunks back into stream order and
	// commit each as one WAL record + one MVCC version. The pending
	// buffer is bounded by the pipeline depth.
	var firstErr error
	next := 0
	pending := make(map[int]convChunk, 2*par)
	for cc := range done {
		if firstErr != nil {
			continue // draining after failure
		}
		pending[cc.idx] = cc
		for {
			c, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			err := c.err
			if err == nil {
				err = imp.commitChunk(&c)
			}
			if err != nil {
				firstErr = fmt.Errorf("import chunk %d: %w", c.idx, err)
				cancel()
				break
			}
			if imp.opts.Progress != nil {
				imp.opts.Progress(imp.stats)
			}
		}
	}
	if firstErr == nil {
		select {
		case err := <-readErr:
			firstErr = fmt.Errorf("import: %w", err)
		default:
			if err := ctx.Err(); err != nil {
				firstErr = fmt.Errorf("import: %w", err)
			}
		}
	}
	return imp.stats, firstErr
}

// commitChunk is the per-chunk critical section: under the store's
// writer lock it settles resume, validates id uniqueness against the
// live state, appends the chunk's OpImport record (fsynced per policy)
// and publishes it as one MVCC version. Mirrors bulkInsertDirect, with
// the batcher bypassed — the stream is already batched.
func (imp *Importer) commitChunk(cc *convChunk) error {
	s := imp.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if !imp.opts.NoResume {
		if cc.skip || s.hasImportKey(cc.key) {
			imp.noteResumed(cc)
			return nil
		}
		present := 0
		for i := range cc.items {
			if s.db.Has(cc.items[i].ID) {
				present++
			}
		}
		if present == len(cc.items) {
			// Durable via a chunk whose WAL record a checkpoint pruned:
			// chunks apply atomically, so all-ids-present means this exact
			// chunk committed. Re-learn its key.
			s.noteImportKey(cc.key)
			imp.noteResumed(cc)
			return nil
		}
		if present > 0 {
			return fmt.Errorf("%d of %d scenes already present — source or chunk "+
				"options changed since the interrupted run? (%w)", present, len(cc.items), ErrDuplicate)
		}
	} else {
		for i := range cc.items {
			if s.db.Has(cc.items[i].ID) {
				return fmt.Errorf("scene %q: %w", cc.items[i].ID, ErrDuplicate)
			}
		}
	}
	recItems := make([]wal.BulkItem, len(cc.items))
	for i, it := range cc.items {
		recItems[i] = wal.BulkItem{ID: it.ID, Name: it.Name, Image: it.Image}
	}
	n, err := s.append(wal.Record{Op: wal.OpImport, Key: cc.key, Items: recItems})
	if err != nil {
		return err
	}
	if err := s.db.installBulk(cc.sts); err != nil {
		return err // unreachable: ids were checked under s.mu, which all writers hold
	}
	s.markVisibleLocked(s.appliedLSN)
	s.noteImportKey(cc.key)
	imp.noteCommitted(cc, n, s.appliedLSN)
	return nil
}

// noteCommitted folds one committed chunk into the run's stats and the
// store's cumulative tally (and metrics, via the tally).
func (imp *Importer) noteCommitted(cc *convChunk, walBytes int, lsn uint64) {
	imp.stats.Chunks++
	imp.stats.Images += uint64(len(cc.items))
	imp.stats.Bytes += uint64(walBytes)
	imp.stats.LSN = lsn
	s := imp.s
	s.importMu.Lock()
	s.importTally.Chunks++
	s.importTally.Images += uint64(len(cc.items))
	s.importTally.Bytes += uint64(walBytes)
	s.importTally.LSN = lsn
	s.importMu.Unlock()
}

// noteResumed folds one skipped (already durable) chunk into the stats.
func (imp *Importer) noteResumed(cc *convChunk) {
	imp.stats.ResumedChunks++
	imp.stats.ResumedImages += uint64(len(cc.items))
	s := imp.s
	s.importMu.Lock()
	s.importTally.ResumedChunks++
	s.importTally.ResumedImages += uint64(len(cc.items))
	s.importMu.Unlock()
}

// importOversizedBulk reroutes a BulkInsert whose estimated record size
// would crowd the WAL frame bound through the chunked import path: the
// batch becomes a short in-memory stream and lands as several atomic
// chunk records instead of one oversized frame (see BulkInsert's doc for
// the semantics trade).
func (s *Store) importOversizedBulk(ctx context.Context, items []BulkItem, parallelism int) error {
	scenes := make([]ingest.Scene, len(items))
	for i, it := range items {
		scenes[i] = ingest.Scene{ID: it.ID, Name: it.Name, Image: it.Image}
	}
	// Chunk at a quarter of the rerouting threshold (the default budget,
	// when the threshold holds its production value), so the rerouted
	// batch always lands as several comfortably-sized records.
	_, err := s.Import(ctx, ingest.FromItems(scenes), ImportOptions{
		ChunkBytes: bulkChunkThreshold / 4, Parallelism: parallelism,
	})
	if err != nil {
		if errors.Is(err, ErrDuplicate) || errors.Is(err, ErrStoreClosed) {
			return err
		}
		return fmt.Errorf("bulk insert (%d items, chunked): %w", len(items), err)
	}
	return nil
}
