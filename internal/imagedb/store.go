package imagedb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bestring/internal/core"
	"bestring/internal/fsutil"
	"bestring/internal/query"
	"bestring/internal/wal"
)

// FsyncPolicy selects when acknowledged mutations reach stable storage.
type FsyncPolicy = wal.Policy

// Fsync policies, re-exported from the WAL layer.
const (
	FsyncAlways   = wal.SyncAlways
	FsyncInterval = wal.SyncInterval
	FsyncNever    = wal.SyncNever
)

// ParseFsyncPolicy reads an fsync policy name ("always", "interval" or
// "never") as accepted by the CLI and server flags.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParsePolicy(s) }

// ErrStoreClosed is returned by mutations on a closed Store.
var ErrStoreClosed = errors.New("store is closed")

// Default store tuning.
const (
	DefaultCheckpointBytes = 16 << 20
	snapshotPrefix         = "snapshot-"
	snapshotSuffix         = ".json"
)

// StoreOptions tune OpenStore.
type StoreOptions struct {
	// Shards partitions the in-memory database when the store starts
	// empty (0 means GOMAXPROCS floored at 16); a store recovered from a
	// snapshot keeps the default shard count. Shard count never affects
	// results.
	Shards int
	// SegmentBytes rotates the WAL at this size (0 means 4 MiB).
	SegmentBytes int64
	// Fsync is the WAL durability policy (zero value: FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the flush cadence under the interval policy
	// (0 means 100ms).
	FsyncInterval time.Duration
	// CheckpointBytes triggers a background checkpoint once this many WAL
	// bytes accumulate since the last one (0 means 16 MiB; negative
	// disables automatic checkpointing — Checkpoint can still be called).
	CheckpointBytes int64
	// CommitWindow bounds how long the group committer may linger waiting
	// for more mutations to join a commit group (0 means 1ms; negative
	// disables lingering — groups still form from whatever has queued).
	// The bound is rarely reached: lingering is adaptive and a sequential
	// writer never waits. See groupcommit.go.
	CommitWindow time.Duration
	// CommitBatch caps the mutations coalesced into one commit group
	// (0 means 128).
	CommitBatch int
	// NoGroupCommit disables commit coalescing entirely: every mutation
	// is validated, logged, fsynced and published on its own, as before
	// group commit existed. This is the E11b baseline and a debugging
	// escape hatch, not a recommended configuration.
	NoGroupCommit bool
	// Replica opens the store as a read-only replication follower: local
	// mutations return ErrReadOnlyReplica and state advances only through
	// ApplyReplicatedBatch, which replays the primary's WAL records into
	// this store's own log and MVCC versions (replica.go). The full read
	// surface works unchanged.
	Replica bool
}

// Store is the durable image database: a DB whose every mutation is
// framed into a segmented write-ahead log before it is applied, plus
// checkpointed snapshots so recovery replays a bounded tail. OpenStore
// recovers the state a crash left behind; Close flushes cleanly. The full
// query/search surface of DB is exposed unchanged — reads never touch the
// log — while mutations must go through the Store so no acknowledged
// write can be lost (per the fsync policy). All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts StoreOptions
	db   *DB
	log  *wal.Log
	// lock is the flock-ed LOCK file excluding other writing processes
	// (a second OpenStore on the directory fails fast instead of
	// interleaving WAL appends); released by Close.
	lock *os.File

	// batcher coalesces concurrent mutations into commit groups sharing
	// one WAL frame, one fsync and one published version (groupcommit.go);
	// nil when NoGroupCommit routes every mutation down the direct path.
	batcher *batcher

	// mu serialises mutations: WAL append order must equal apply order,
	// and pre-log validation must see the state the record will apply to.
	mu         sync.Mutex
	appliedLSN uint64
	bytesSince int64 // WAL bytes since the last checkpoint capture
	closed     bool

	// id is the store's durable random identity (the STOREID file),
	// minted on first open. Replication uses it to detect divergence: a
	// follower records which primary's history it embodies, and refuses
	// to stream from any other (see internal/repl).
	id string

	// visibleLSN is the highest LSN whose effects have been PUBLISHED as
	// an MVCC version — it trails appliedLSN by the window between WAL
	// append and publish. Read-your-writes routing (min_lsn) waits on
	// this, not on durability: a record can be fsynced an instant before
	// its version is observable. visibleCh is closed and replaced on each
	// advance, guarded by mu.
	visibleLSN atomic.Uint64
	visibleCh  chan struct{}

	// pruneFloor, when set, caps how far checkpoints may prune the WAL:
	// segments holding records above the returned LSN are retained even
	// if a snapshot covers them, so a connected replication follower can
	// still stream its backlog. Guarded by mu.
	pruneFloor func() uint64

	// Group-commit counters (see CommitStats), folded in once per commit
	// group under one mutex — not per-field atomics — so StoreStats (and
	// a /metrics scrape through it) can never serve a torn combination
	// like mutations < groups.
	commitMu    sync.Mutex
	commitTally struct {
		groups, mutations, rejected, largest uint64
	}

	// importKeys holds the content keys of every durable import chunk —
	// populated from the WAL during recovery, extended by live imports and
	// replicated chunk frames — and importTally the cumulative import
	// counters served on /healthz and /metrics (import.go). Both guarded
	// by importMu; activeImports counts Importer.Run calls in flight.
	importMu      sync.Mutex
	importKeys    map[string]bool
	importTally   ImportStats
	activeImports int

	// metrics is nil until EnableMetrics; an atomic pointer so metrics
	// can be enabled while the store is already committing.
	metrics atomic.Pointer[storeMetrics]

	// Torn-tail recovery outcome of this process's OpenStore, surfaced
	// as bestring_wal_torn_tail_recoveries_total. Written once before
	// the Store is shared, read-only afterwards.
	recoveredTornTails int
	recoveredTornBytes int64

	// cpMu serialises checkpoints (manual and background) against each
	// other; they hold mu only while capturing the entry list.
	cpMu          sync.Mutex
	checkpointLSN atomic.Uint64
	checkpoints   atomic.Uint64
	checkpointing atomic.Bool
	cpErr         atomic.Value // last background checkpoint error string
	wg            sync.WaitGroup
}

// snapshotName formats the snapshot file covering records through lsn.
func snapshotName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", snapshotPrefix, lsn, snapshotSuffix)
}

// parseSnapshotName inverts snapshotName.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
		return 0, false
	}
	lsn, err := strconv.ParseUint(
		strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), snapshotSuffix), 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// listSnapshots returns snapshot file names in dir, newest (highest LSN)
// first.
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSnapshotName(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // zero-padded hex
	return names, nil
}

// OpenStore opens (creating if necessary) the durable store in dataDir
// and recovers its state: the newest snapshot that loads cleanly, plus a
// replay of every WAL record with a newer LSN. A torn final record — a
// crash mid-append — is truncated and tolerated; interior log corruption
// or a snapshot/WAL gap aborts with a descriptive error rather than
// serving a state the database never passed through.
func OpenStore(dataDir string, opts StoreOptions) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = wal.DefaultSegmentBytes
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = DefaultCheckpointBytes
	}
	if opts.CommitWindow == 0 {
		opts.CommitWindow = DefaultCommitWindow
	}
	if opts.CommitBatch <= 0 {
		opts.CommitBatch = DefaultCommitBatch
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, fmt.Errorf("open store: %w", err)
	}
	// One writing process per directory: a concurrent server + compactor
	// would interleave WAL appends and prune under each other.
	// (InspectStore stays lock-free: it is read-only by construction.)
	lock, err := fsutil.LockFile(filepath.Join(dataDir, "LOCK"))
	if err != nil {
		return nil, fmt.Errorf("open store: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			lock.Close()
		}
	}()
	// With the directory exclusively ours, leftover temp files can only
	// be litter from an interrupted atomic write — sweep them.
	if err := fsutil.SweepTemps(dataDir); err != nil {
		return nil, fmt.Errorf("open store: %w", err)
	}

	// Latest valid snapshot wins; an unreadable newer one (e.g. disk
	// damage) falls back to its predecessor, whose WAL tail then replays.
	snaps, err := listSnapshots(dataDir)
	if err != nil {
		return nil, fmt.Errorf("open store: %w", err)
	}
	var db *DB
	var snapLSN uint64
	var loadErrs []error
	for _, name := range snaps {
		d, err := LoadFile(filepath.Join(dataDir, name))
		if err != nil {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %w", name, err))
			continue
		}
		db = d
		snapLSN, _ = parseSnapshotName(name)
		break
	}
	if db == nil {
		if len(loadErrs) > 0 {
			return nil, fmt.Errorf("open store: no loadable snapshot: %w", errors.Join(loadErrs...))
		}
		db = NewSharded(opts.Shards)
	}

	// Under SyncAlways every acknowledged frame was fsynced in order, so
	// mid-file damage in the final segment is real corruption and replay
	// must refuse. Under interval/never the unsynced tail can reach the
	// disk out of order after a crash, so any bad frame there ends the
	// log instead (the dropped records sit inside the policy's
	// acknowledged-loss window). The decision follows the policy that
	// WROTE the log (the wal's durable marker), not this open's options —
	// reopening an always-written log with -fsync never must not turn
	// bit rot into silent truncation of fsynced acknowledged records.
	// Absent marker (no previous writer): strict, the refusing default.
	tolerantTail := false
	if p, ok := wal.WrittenPolicy(dataDir); ok {
		tolerantTail = p != wal.SyncAlways
	}
	// Import chunk keys seen during replay feed the importer's resume
	// check: a restarted import skips every chunk whose key is already in
	// the durable log (import.go).
	importKeys := make(map[string]bool)
	rinfo, err := wal.Recover(dataDir, snapLSN, tolerantTail, func(rec wal.Record) error {
		if rec.Op == wal.OpImport && rec.Key != "" {
			importKeys[rec.Key] = true
		}
		return applyRecord(db, rec)
	})
	if err != nil {
		return nil, fmt.Errorf("open store: %w", err)
	}
	lastLSN := rinfo.LastLSN

	log, err := wal.Open(dataDir, lastLSN+1, wal.Options{
		SegmentBytes: opts.SegmentBytes,
		Policy:       opts.Fsync,
		Interval:     opts.FsyncInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("open store: %w", err)
	}
	s := &Store{
		dir: dataDir, opts: opts, db: db, log: log, lock: lock, appliedLSN: lastLSN,
		recoveredTornTails: rinfo.TornTails, recoveredTornBytes: rinfo.TornBytes,
		importKeys: importKeys,
	}
	s.checkpointLSN.Store(snapLSN)
	s.visibleLSN.Store(lastLSN) // the recovered state is fully published
	s.visibleCh = make(chan struct{})
	if s.id, err = loadOrCreateStoreID(dataDir); err != nil {
		log.Close()
		return nil, fmt.Errorf("open store: %w", err)
	}
	if !opts.NoGroupCommit && !opts.Replica {
		s.batcher = newBatcher(s, opts.CommitWindow, opts.CommitBatch)
	}
	ok = true
	return s, nil
}

// applyRecord replays one WAL record into the database. Records are
// validated against the then-current state before they are logged, so a
// record that fails to apply means the log and the snapshot disagree —
// replay surfaces that instead of guessing.
func applyRecord(db *DB, rec wal.Record) error {
	switch rec.Op {
	case wal.OpInsert:
		if rec.Image == nil {
			return errors.New("record has no image")
		}
		return db.Insert(rec.ID, rec.Name, *rec.Image)
	case wal.OpDelete:
		return db.Delete(rec.ID)
	case wal.OpInsertObject:
		if rec.Object == nil {
			return errors.New("record has no object")
		}
		return db.InsertObject(rec.ID, *rec.Object)
	case wal.OpDeleteObject:
		return db.DeleteObject(rec.ID, rec.Label)
	case wal.OpBulk, wal.OpImport:
		items := make([]BulkItem, len(rec.Items))
		for i, it := range rec.Items {
			items[i] = BulkItem{ID: it.ID, Name: it.Name, Image: it.Image}
		}
		return db.BulkInsert(context.Background(), items, 0)
	case wal.OpGroup:
		// One commit group: the frame's CRC guarantees it arrived whole,
		// so replay applies every sub-mutation (failed callers were
		// excluded before the frame was written). Each sub-record bumps
		// the epoch individually here, which is fine offline — recovery
		// ends on the same state, and epochs restart per process anyway.
		if len(rec.Subs) == 0 {
			return errors.New("empty group record")
		}
		for i := range rec.Subs {
			sub := &rec.Subs[i]
			if sub.Op == wal.OpGroup {
				return fmt.Errorf("group sub-record %d: nested group", i)
			}
			if err := applyRecord(db, *sub); err != nil {
				return fmt.Errorf("group sub-record %d (%s %q): %w", i, sub.Op, sub.ID, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
}

// append logs one record and accounts for it, returning the framed size.
// Callers hold s.mu and have validated that the subsequent apply cannot
// fail.
func (s *Store) append(rec wal.Record) (int, error) {
	lsn, n, err := s.log.Append(rec)
	if err != nil {
		return 0, err
	}
	s.appliedLSN = lsn
	s.bytesSince += int64(n)
	s.maybeCheckpointLocked()
	return n, nil
}

// maybeCheckpointLocked kicks off a background checkpoint when enough WAL
// bytes have accumulated. Callers hold s.mu.
func (s *Store) maybeCheckpointLocked() {
	if s.opts.CheckpointBytes > 0 && s.bytesSince >= s.opts.CheckpointBytes &&
		s.checkpointing.CompareAndSwap(false, true) {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.checkpointing.Store(false)
			if err := s.checkpoint(); err != nil && !errors.Is(err, ErrStoreClosed) {
				s.cpErr.Store(err.Error())
			}
		}()
	}
}

// markVisibleLocked records that every LSN through lsn is observable in a
// published MVCC version and wakes WaitVisible callers. Callers hold s.mu
// and have just published the version applying lsn.
func (s *Store) markVisibleLocked(lsn uint64) {
	if lsn <= s.visibleLSN.Load() {
		return
	}
	s.visibleLSN.Store(lsn)
	close(s.visibleCh)
	s.visibleCh = make(chan struct{})
}

// Insert durably stores the image under id: the mutation is validated,
// framed into the WAL (fsynced per policy) and only then applied.
// Conversion and cloning happen before the mutation enters the commit
// queue, so concurrent writers pay the CPU-bound half of an insert in
// parallel and share one fsync (see groupcommit.go).
func (s *Store) Insert(id, name string, img core.Image) error {
	if s.opts.Replica {
		return ErrReadOnlyReplica
	}
	if s.batcher == nil {
		return s.insertDirect(id, name, img)
	}
	if id == "" {
		return ErrEmptyID
	}
	if s.db.Has(id) {
		// Fast-fail without paying conversion. Racy only in the benign
		// direction: the commit-time check in applyTo is authoritative.
		return fmt.Errorf("insert %q: %w", id, ErrDuplicate)
	}
	be, err := core.Convert(img)
	if err != nil {
		return fmt.Errorf("insert %q: %w", id, err)
	}
	sig := core.SignatureOf(be)
	clone := img.Clone()
	st := &stored{
		Entry: Entry{ID: id, Name: name, Image: clone, BE: be},
		sig:   &sig,
	}
	return s.batcher.submit(&commitReq{
		kind: commitInsert, id: id, name: name, st: st, img: &clone,
		size: 128 + 2*(len(id)+len(name)) + imageSizeHint(&clone),
	})
}

func (s *Store) insertDirect(id, name string, img core.Image) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if id == "" {
		return ErrEmptyID
	}
	if s.db.Has(id) {
		return fmt.Errorf("insert %q: %w", id, ErrDuplicate)
	}
	be, err := core.Convert(img)
	if err != nil {
		return fmt.Errorf("insert %q: %w", id, err)
	}
	if _, err := s.append(wal.Record{Op: wal.OpInsert, ID: id, Name: name, Image: &img}); err != nil {
		return err
	}
	if err := s.db.insertConverted(id, name, img, be); err != nil {
		return err
	}
	s.markVisibleLocked(s.appliedLSN)
	return nil
}

// Delete durably removes the image with the given id.
func (s *Store) Delete(id string) error {
	if s.opts.Replica {
		return ErrReadOnlyReplica
	}
	if s.batcher == nil {
		return s.deleteDirect(id)
	}
	if !s.db.Has(id) {
		return fmt.Errorf("delete %q: %w", id, ErrNotFound)
	}
	return s.batcher.submit(&commitReq{
		kind: commitDelete, id: id,
		size: 96 + 2*len(id),
	})
}

func (s *Store) deleteDirect(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if !s.db.Has(id) {
		return fmt.Errorf("delete %q: %w", id, ErrNotFound)
	}
	if _, err := s.append(wal.Record{Op: wal.OpDelete, ID: id}); err != nil {
		return err
	}
	if err := s.db.Delete(id); err != nil {
		return err
	}
	s.markVisibleLocked(s.appliedLSN)
	return nil
}

// InsertObject durably adds an object to a stored image. The new image
// is validated against the commit group's transaction state (which may
// include earlier mutations of the same group), so the conversion runs
// in the committer.
func (s *Store) InsertObject(id string, o core.Object) error {
	if s.opts.Replica {
		return ErrReadOnlyReplica
	}
	if s.batcher == nil {
		return s.insertObjectDirect(id, o)
	}
	if !s.db.Has(id) {
		return fmt.Errorf("update %q: %w", id, ErrNotFound)
	}
	return s.batcher.submit(&commitReq{
		kind: commitInsertObject, id: id, obj: o,
		size: 256 + 2*(len(id)+len(o.Label)),
	})
}

func (s *Store) insertObjectDirect(id string, o core.Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	e, ok := s.db.Get(id)
	if !ok {
		return fmt.Errorf("update %q: %w", id, ErrNotFound)
	}
	next := e.Image.WithObject(o)
	be, err := core.Convert(next)
	if err != nil {
		return fmt.Errorf("update %q: %w", id, err)
	}
	if _, err := s.append(wal.Record{Op: wal.OpInsertObject, ID: id, Object: &o}); err != nil {
		return err
	}
	if err := s.db.replaceImage(id, next, be); err != nil {
		return err
	}
	s.markVisibleLocked(s.appliedLSN)
	return nil
}

// DeleteObject durably removes a labelled object from a stored image.
func (s *Store) DeleteObject(id, label string) error {
	if s.opts.Replica {
		return ErrReadOnlyReplica
	}
	if s.batcher == nil {
		return s.deleteObjectDirect(id, label)
	}
	if !s.db.Has(id) {
		return fmt.Errorf("update %q: %w", id, ErrNotFound)
	}
	return s.batcher.submit(&commitReq{
		kind: commitDeleteObject, id: id, label: label,
		size: 256 + 2*(len(id)+len(label)),
	})
}

func (s *Store) deleteObjectDirect(id, label string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	e, ok := s.db.Get(id)
	if !ok {
		return fmt.Errorf("update %q: %w", id, ErrNotFound)
	}
	next, found := e.Image.WithoutObject(label)
	if !found {
		return fmt.Errorf("delete object %q from %q: %w", label, id, ErrNotFound)
	}
	be, err := core.Convert(next)
	if err != nil {
		return fmt.Errorf("update %q: %w", id, err)
	}
	if _, err := s.append(wal.Record{Op: wal.OpDeleteObject, ID: id, Label: label}); err != nil {
		return err
	}
	if err := s.db.replaceImage(id, next, be); err != nil {
		return err
	}
	s.markVisibleLocked(s.appliedLSN)
	return nil
}

// bulkChunkThreshold is the conservative size estimate above which a
// bulk batch is routed through the chunked import path instead of one
// WAL record: well under the wal.MaxRecordBytes frame bound, with room
// for the estimate being an estimate. A package var so tests can lower
// it without building multi-megabyte batches.
var bulkChunkThreshold = int64(maxGroupBytes)

// bulkSizeHint conservatively estimates the encoded WAL size of a batch
// (the same per-item arithmetic the group committer uses).
func bulkSizeHint(items []BulkItem) int64 {
	size := int64(96)
	for i := range items {
		size += int64(96 + 2*(len(items[i].ID)+len(items[i].Name)) + imageSizeHint(&items[i].Image))
	}
	return size
}

// BulkInsert durably inserts a batch with the same all-or-nothing
// contract as DB.BulkInsert: the whole batch is validated and converted
// (in parallel, outside the writer lock) before a single WAL record is
// written for it, so the log can never hold half a batch. The one-record
// encoding bounds a batch to wal.MaxRecordBytes (64 MiB) of encoded
// payload; a batch estimated anywhere near that is routed through the
// streaming importer automatically, which splits it into chunk records —
// each chunk stays atomic and duplicate ids still fail the whole call,
// but chunks already committed when a later chunk fails remain applied
// (the trade documented in DESIGN.md section 12). Callers needing strict
// all-or-nothing semantics at that scale should import explicitly. A
// normal-sized bulk batch travels through the commit queue as one unit:
// it may share a commit group (and its fsync) with other mutations, but
// is still applied and logged all-or-nothing.
func (s *Store) BulkInsert(ctx context.Context, items []BulkItem, parallelism int) error {
	if s.opts.Replica {
		return ErrReadOnlyReplica
	}
	if len(items) == 0 {
		return nil
	}
	if bulkSizeHint(items) > bulkChunkThreshold {
		return s.importOversizedBulk(ctx, items, parallelism)
	}
	if s.batcher == nil {
		return s.bulkInsertDirect(ctx, items, parallelism)
	}
	sts, err := prepareBulk(ctx, items, parallelism, s.db.ArenaLayout())
	if err != nil {
		return err
	}
	recItems := make([]wal.BulkItem, len(items))
	size := 96
	for i, it := range items {
		recItems[i] = wal.BulkItem{ID: it.ID, Name: it.Name, Image: it.Image}
		size += 96 + 2*(len(it.ID)+len(it.Name)) + imageSizeHint(&it.Image)
	}
	err = s.batcher.submit(&commitReq{
		kind: commitBulk, sts: sts, items: recItems, size: size,
	})
	if err != nil && !errors.Is(err, ErrDuplicate) && !errors.Is(err, ErrStoreClosed) {
		return fmt.Errorf("bulk insert (%d items): %w", len(items), err)
	}
	return err
}

func (s *Store) bulkInsertDirect(ctx context.Context, items []BulkItem, parallelism int) error {
	sts, err := prepareBulk(ctx, items, parallelism, s.db.ArenaLayout())
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	for _, st := range sts {
		if s.db.Has(st.ID) {
			return fmt.Errorf("bulk insert %q: %w", st.ID, ErrDuplicate)
		}
	}
	recItems := make([]wal.BulkItem, len(items))
	for i, it := range items {
		recItems[i] = wal.BulkItem{ID: it.ID, Name: it.Name, Image: it.Image}
	}
	if _, err := s.append(wal.Record{Op: wal.OpBulk, Items: recItems}); err != nil {
		return fmt.Errorf("bulk insert (%d items): %w", len(items), err)
	}
	if err := s.db.installBulk(sts); err != nil {
		return err
	}
	s.markVisibleLocked(s.appliedLSN)
	return nil
}

// Checkpoint writes a snapshot of the current state next to the log and
// prunes WAL segments (and older snapshots) the snapshot has made
// obsolete, bounding both recovery time and disk use. It blocks writers
// only while an MVCC snapshot is pinned (one atomic load) and the log
// rotated; entry-list extraction, encoding and the file writes all
// happen outside the writer lock against the pinned immutable version —
// a checkpoint of a huge store no longer stalls mutations (or any
// reader) while it serialises.
func (s *Store) Checkpoint() error { return s.checkpoint() }

func (s *Store) checkpoint() (err error) {
	s.cpMu.Lock()
	defer s.cpMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrStoreClosed
	}
	lsn := s.appliedLSN
	if lsn == s.checkpointLSN.Load() {
		s.mu.Unlock()
		return nil
	}
	// Pin the version corresponding to appliedLSN. Mutations serialise
	// on s.mu, so the current MVCC snapshot here is exactly the state
	// the log reaches at lsn; being immutable, it can be read after the
	// lock is released.
	pinned := s.db.current.Load()
	// Rotate so every record the snapshot covers sits in a sealed
	// segment; sealed segments behind the snapshot become prunable.
	rotErr := s.log.Rotate()
	captured := s.bytesSince
	s.bytesSince = 0
	s.mu.Unlock()
	// On failure put the accounted bytes back, so the automatic trigger
	// retries on the next append instead of waiting for another full
	// CheckpointBytes of traffic to accumulate behind a transient error.
	defer func() {
		if err != nil {
			s.mu.Lock()
			s.bytesSince += captured
			s.mu.Unlock()
		}
	}()
	if rotErr != nil {
		return fmt.Errorf("checkpoint: %w", rotErr)
	}

	path := filepath.Join(s.dir, snapshotName(lsn))
	if err := fsutil.AtomicWriteFile(path, func(w io.Writer) error {
		return saveEntries(w, pinned.orderedEntries())
	}); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	s.checkpointLSN.Store(lsn)
	s.checkpoints.Add(1)

	// The snapshot makes segments through lsn redundant for RECOVERY, but
	// a connected replication follower may still need them: the prune
	// floor (min acked LSN across followers, internal/repl) caps how far
	// pruning goes. Retained segments are reclaimed by a later checkpoint
	// once every follower has acked past them.
	prune := lsn
	s.mu.Lock()
	floor := s.pruneFloor
	s.mu.Unlock()
	if floor != nil {
		if f := floor(); f < prune {
			prune = f
		}
	}
	if err := s.log.RemoveObsolete(prune); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Older snapshots are now strictly redundant: the new one is complete
	// (atomic rename) and the WAL behind it is gone.
	snaps, err := listSnapshots(s.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	for _, name := range snaps {
		if l, _ := parseSnapshotName(name); l < lsn {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return fmt.Errorf("checkpoint: %w", err)
			}
		}
	}
	if err := fsutil.SyncDir(s.dir); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	s.cpErr.Store("")
	return nil
}

// Sync forces buffered WAL appends to stable storage, whatever the
// fsync policy. Under FsyncAlways it is a no-op beyond an fsync of an
// already-clean file.
func (s *Store) Sync() error { return s.log.Sync() }

// Close flushes the WAL and closes the store. Every acknowledged
// mutation is durable after a clean Close under any fsync policy.
// Further mutations return ErrStoreClosed; reads keep working against
// the in-memory state.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Wake WaitVisible callers so min_lsn reads fail fast on shutdown.
	close(s.visibleCh)
	s.visibleCh = make(chan struct{})
	s.mu.Unlock()
	if s.batcher != nil {
		// Drain: requests already accepted into the commit queue are
		// committed (and their callers released) before the committer
		// exits; new submissions get ErrStoreClosed.
		s.batcher.close()
	}
	s.wg.Wait() // let an in-flight background checkpoint finish or bail
	err := s.log.Close()
	if cerr := s.lock.Close(); cerr != nil && err == nil { // releases the flock
		err = cerr
	}
	return err
}

// StoreStats describes the durable layer, for /healthz and tooling.
type StoreStats struct {
	Dir           string      `json:"dir"`
	StoreID       string      `json:"storeId"`
	Replica       bool        `json:"replica,omitempty"`
	LastLSN       uint64      `json:"lastLSN"`
	AppliedLSN    uint64      `json:"appliedLSN"`
	VisibleLSN    uint64      `json:"visibleLSN"`
	CheckpointLSN uint64      `json:"checkpointLSN"`
	Checkpoints   uint64      `json:"checkpoints"` // completed this session
	WAL           wal.Stats   `json:"wal"`
	Commit        CommitStats `json:"commit"`
	Import        ImportStats `json:"import"`
	CheckpointErr string      `json:"checkpointErr,omitempty"`
}

// StoreStats reports the state of the WAL, checkpointer and group
// committer. (DB-level occupancy is served by Stats, unchanged.)
func (s *Store) StoreStats() StoreStats {
	s.commitMu.Lock()
	commit := CommitStats{
		Enabled:   s.batcher != nil,
		Groups:    s.commitTally.groups,
		Mutations: s.commitTally.mutations,
		Rejected:  s.commitTally.rejected,
		Largest:   s.commitTally.largest,
	}
	s.commitMu.Unlock()
	st := StoreStats{
		Dir:           s.dir,
		StoreID:       s.id,
		Replica:       s.opts.Replica,
		AppliedLSN:    s.AppliedLSN(),
		VisibleLSN:    s.visibleLSN.Load(),
		CheckpointLSN: s.checkpointLSN.Load(),
		Checkpoints:   s.checkpoints.Load(),
		WAL:           s.log.Stats(),
		Commit:        commit,
		Import:        s.ImportStats(),
	}
	if s.batcher != nil {
		st.Commit.Window = s.opts.CommitWindow.String()
		st.Commit.MaxBatch = s.opts.CommitBatch
	}
	st.LastLSN = st.WAL.LastLSN
	if v, ok := s.cpErr.Load().(string); ok {
		st.CheckpointErr = v
	}
	return st
}

// The read/query surface of DB, delegated unchanged: reads never touch
// the WAL, so the staged pipeline, scorer registry and pagination all
// work identically on a Store.

// Get returns a copy of the entry with the given id.
func (s *Store) Get(id string) (Entry, bool) { return s.db.Get(id) }

// Has reports whether an image with the given id is stored.
func (s *Store) Has(id string) bool { return s.db.Has(id) }

// Len returns the number of stored images.
func (s *Store) Len() int { return s.db.Len() }

// IDs returns the stored ids in insertion order.
func (s *Store) IDs() []string { return s.db.IDs() }

// Stats reports shard occupancy of the underlying database.
func (s *Store) Stats() Stats { return s.db.Stats() }

// ShardCount returns the number of partitions of the underlying database.
func (s *Store) ShardCount() int { return s.db.ShardCount() }

// Save writes a snapshot of the current state (see DB.Save).
func (s *Store) Save(w io.Writer) error { return s.db.Save(w) }

// Search ranks the stored images against the query image (see DB.Search).
func (s *Store) Search(ctx context.Context, q core.Image, opts SearchOptions) ([]Result, error) {
	return s.db.Search(ctx, q, opts)
}

// SearchDSL filters by a spatial-predicate query (see DB.SearchDSL).
func (s *Store) SearchDSL(ctx context.Context, q query.Query, k int) ([]QueryResult, error) {
	return s.db.SearchDSL(ctx, q, k)
}

// SearchRegion finds icons intersecting a region (see DB.SearchRegion).
func (s *Store) SearchRegion(region core.Rect, label string) []RegionHit {
	return s.db.SearchRegion(region, label)
}

// Query executes a composable query (see DB.Query).
func (s *Store) Query(ctx context.Context, q *Query, opts ...QueryOption) (*Page, error) {
	return s.db.Query(ctx, q, opts...)
}

// QueryIter streams a composable query's results (see DB.QueryIter).
func (s *Store) QueryIter(ctx context.Context, q *Query, opts ...QueryOption) iter.Seq2[Hit, error] {
	return s.db.QueryIter(ctx, q, opts...)
}

// Snapshot pins the current version of the store for lock-free,
// perfectly repeatable reads (see DB.Snapshot). The pinned view is
// in-memory only; durability of the mutations it shows is governed by
// the fsync policy as usual.
func (s *Store) Snapshot() *Snapshot { return s.db.Snapshot() }

// Epoch returns the epoch of the store's current version.
func (s *Store) Epoch() uint64 { return s.db.Epoch() }

// SetScorerCacheCapacity resizes (or, with n <= 0, disables) the scorer
// cache of the store's engine (see DB.SetScorerCacheCapacity).
func (s *Store) SetScorerCacheCapacity(n int) { s.db.SetScorerCacheCapacity(n) }

// ScorerCacheStats reports the scorer cache's occupancy and lifetime
// eviction count (see DB.ScorerCacheStats).
func (s *Store) ScorerCacheStats() ScorerCacheStats { return s.db.ScorerCacheStats() }
