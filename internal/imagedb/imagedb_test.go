package imagedb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"bestring/internal/baseline/typesim"
	"bestring/internal/core"
	"bestring/internal/workload"
)

func seedDB(t *testing.T, n int) (*DB, []core.Image) {
	t.Helper()
	db := New()
	g := workload.NewGenerator(workload.Config{Seed: 11, Vocabulary: 24})
	scenes := g.Dataset(n)
	for i, s := range scenes {
		if err := db.Insert(fmt.Sprintf("img%03d", i), fmt.Sprintf("scene %d", i), s); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return db, scenes
}

func TestInsertGetDelete(t *testing.T) {
	db := New()
	img := core.Figure1Image()
	if err := db.Insert("fig1", "figure 1", img); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
	e, ok := db.Get("fig1")
	if !ok || e.Name != "figure 1" {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if !e.BE.Equal(core.MustConvert(img)) {
		t.Error("stored BE-string differs from conversion")
	}
	if err := db.Delete("fig1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if db.Len() != 0 {
		t.Error("Len after delete != 0")
	}
}

func TestInsertErrors(t *testing.T) {
	db := New()
	img := core.Figure1Image()
	if err := db.Insert("", "x", img); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty id: err = %v", err)
	}
	if err := db.Insert("a", "x", core.NewImage(5, 5)); err == nil {
		t.Error("invalid image accepted")
	}
	if err := db.Insert("a", "x", img); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("a", "y", img); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate id: err = %v", err)
	}
}

func TestDeleteMissing(t *testing.T) {
	db := New()
	if err := db.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db := New()
	if err := db.Insert("fig1", "", core.Figure1Image()); err != nil {
		t.Fatal(err)
	}
	e, _ := db.Get("fig1")
	e.Image.Objects[0].Label = "mutated"
	e.BE.X[0] = core.BeginToken("Z")
	fresh, _ := db.Get("fig1")
	if fresh.Image.Objects[0].Label != "A" || fresh.BE.X[0].Label == "Z" {
		t.Error("Get exposed internal storage")
	}
}

func TestIDsInsertionOrder(t *testing.T) {
	db, _ := seedDB(t, 5)
	ids := db.IDs()
	for i, id := range ids {
		if want := fmt.Sprintf("img%03d", i); id != want {
			t.Errorf("ids[%d] = %q, want %q", i, id, want)
		}
	}
}

func TestObjectUpdate(t *testing.T) {
	db := New()
	if err := db.Insert("fig1", "", core.Figure1Image()); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertObject("fig1", core.Object{Label: "D", Box: core.NewRect(0, 0, 1, 1)}); err != nil {
		t.Fatalf("InsertObject: %v", err)
	}
	e, _ := db.Get("fig1")
	if len(e.Image.Objects) != 4 {
		t.Errorf("objects = %d, want 4", len(e.Image.Objects))
	}
	if !e.BE.Equal(core.MustConvert(e.Image)) {
		t.Error("BE-string not reindexed after InsertObject")
	}
	if err := db.DeleteObject("fig1", "D"); err != nil {
		t.Fatalf("DeleteObject: %v", err)
	}
	e, _ = db.Get("fig1")
	if !e.BE.Equal(core.MustConvert(core.Figure1Image())) {
		t.Error("BE-string not restored after DeleteObject")
	}
	if err := db.DeleteObject("fig1", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing object: err = %v", err)
	}
	if err := db.InsertObject("ghost", core.Object{Label: "D", Box: core.NewRect(0, 0, 1, 1)}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing image: err = %v", err)
	}
	// Rejected updates must not corrupt state.
	if err := db.InsertObject("fig1", core.Object{Label: "A", Box: core.NewRect(0, 0, 1, 1)}); err == nil {
		t.Error("duplicate label accepted")
	}
	e, _ = db.Get("fig1")
	if len(e.Image.Objects) != 3 {
		t.Error("failed update mutated the image")
	}
}

func TestSearchRanksExactMatchFirst(t *testing.T) {
	db, scenes := seedDB(t, 30)
	results, err := db.Search(context.Background(), scenes[7], SearchOptions{K: 5})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d, want 5", len(results))
	}
	if results[0].ID != "img007" {
		t.Errorf("top result = %s (score %v), want img007", results[0].ID, results[0].Score)
	}
	if results[0].Score != 1 {
		t.Errorf("self score = %v, want 1", results[0].Score)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Error("results not sorted by score")
		}
	}
}

func TestSearchPartialQuery(t *testing.T) {
	db, scenes := seedDB(t, 30)
	g := workload.NewGenerator(workload.Config{Seed: 99})
	q := g.SubsetQuery(scenes[3], 4)
	results, err := db.Search(context.Background(), q, SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ID != "img003" {
		t.Errorf("partial query top result = %s, want img003", results[0].ID)
	}
}

func TestSearchInvariantScorer(t *testing.T) {
	db, scenes := seedDB(t, 20)
	rotated := scenes[5].Rotate90CW()
	plain, err := db.Search(context.Background(), rotated, SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := db.Search(context.Background(), rotated, SearchOptions{
		K: 1, Scorer: InvariantScorer(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if inv[0].ID != "img005" || inv[0].Score != 1 {
		t.Errorf("invariant search top = %+v, want img005 @ 1.0", inv[0])
	}
	if plain[0].Score >= inv[0].Score && plain[0].ID == "img005" {
		t.Log("plain scorer found the rotated image too (possible for symmetric scenes)")
	}
}

func TestSearchTypeSimScorer(t *testing.T) {
	db, scenes := seedDB(t, 10)
	results, err := db.Search(context.Background(), scenes[2], SearchOptions{
		K: 1, Scorer: TypeSimScorer(typesim.Type2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ID != "img002" || results[0].Score != 1 {
		t.Errorf("type-2 search top = %+v, want img002 @ 1.0", results[0])
	}
}

func TestSearchMinScoreFilter(t *testing.T) {
	db, scenes := seedDB(t, 10)
	all, err := db.Search(context.Background(), scenes[0], SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := db.Search(context.Background(), scenes[0], SearchOptions{MinScore: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) >= len(all) {
		t.Errorf("MinScore did not filter: %d vs %d", len(strict), len(all))
	}
	for _, r := range strict {
		if r.Score < 0.999 {
			t.Errorf("result below threshold: %+v", r)
		}
	}
}

func TestSearchCancellation(t *testing.T) {
	db, scenes := seedDB(t, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Search(ctx, scenes[0], SearchOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSearchInvalidQuery(t *testing.T) {
	db, _ := seedDB(t, 3)
	if _, err := db.Search(context.Background(), core.NewImage(5, 5), SearchOptions{}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestSearchEmptyDB(t *testing.T) {
	db := New()
	results, err := db.Search(context.Background(), core.Figure1Image(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("results = %v, want empty", results)
	}
}

func TestSearchDeterministicAcrossParallelism(t *testing.T) {
	db, scenes := seedDB(t, 40)
	g := workload.NewGenerator(workload.Config{Seed: 5})
	q := g.SubsetQuery(scenes[9], 3)
	var base []Result
	for _, workers := range []int{1, 2, 8} {
		got, err := db.Search(context.Background(), q, SearchOptions{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		if len(got) != len(base) {
			t.Fatalf("parallelism %d: result count differs", workers)
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("parallelism %d: result %d = %+v, want %+v", workers, i, got[i], base[i])
			}
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	db, scenes := seedDB(t, 20)
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch w % 3 {
				case 0:
					if _, err := db.Search(context.Background(), scenes[i%len(scenes)], SearchOptions{K: 3}); err != nil {
						select {
						case errCh <- err:
						default:
						}
					}
				case 1:
					id := fmt.Sprintf("w%d-%d", w, i)
					if err := db.Insert(id, "", scenes[(i+w)%len(scenes)]); err != nil {
						select {
						case errCh <- err:
						default:
						}
					}
				default:
					db.Get("img000")
					db.IDs()
					db.Len()
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("concurrent use error: %v", err)
	default:
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db, _ := seedDB(t, 8)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), db.Len())
	}
	for _, id := range db.IDs() {
		a, _ := db.Get(id)
		b, ok := loaded.Get(id)
		if !ok || !a.BE.Equal(b.BE) || a.Name != b.Name {
			t.Errorf("entry %q differs after round trip", id)
		}
	}
}

func TestLoadRejectsCorruptedBE(t *testing.T) {
	db, _ := seedDB(t, 2)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored BE-string of one entry.
	text := strings.Replace(buf.String(), "icon", "ICON", 1)
	if _, err := Load(strings.NewReader(text)); err == nil {
		t.Error("corrupted snapshot accepted")
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"version":99,"entries":[]}`)); err == nil {
		t.Error("unsupported version accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db, _ := seedDB(t, 3)
	path := t.TempDir() + "/db.json"
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.Len() != 3 {
		t.Errorf("loaded %d entries, want 3", loaded.Len())
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSaveGobFileRoundTrip(t *testing.T) {
	db, _ := seedDB(t, 3)
	path := t.TempDir() + "/db.gob"
	if err := db.SaveGobFile(path); err != nil {
		t.Fatalf("SaveGobFile: %v", err)
	}
	loaded, err := LoadGobFile(path)
	if err != nil {
		t.Fatalf("LoadGobFile: %v", err)
	}
	if loaded.Len() != 3 {
		t.Errorf("loaded %d entries, want 3", loaded.Len())
	}
	if _, err := LoadGobFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

// TestSaveFileOverwritesAtomically pins that a resave replaces the
// previous snapshot in one rename — the temp file never lingers and the
// target is always a complete snapshot (the crash half of the guarantee
// is exercised in internal/fsutil).
func TestSaveFileOverwritesAtomically(t *testing.T) {
	db, _ := seedDB(t, 2)
	dir := t.TempDir()
	path := dir + "/db.json"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("extra", "", storeImage(99)); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter next to the snapshot: %v", entries)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 3 {
		t.Errorf("resaved snapshot has %d entries, want 3", loaded.Len())
	}
}
