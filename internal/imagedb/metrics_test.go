package imagedb

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"bestring/internal/core"
	"bestring/internal/obs"
)

// chopLastSegment cuts n bytes off the highest-named WAL segment,
// simulating a torn final write.
func chopLastSegment(t *testing.T, dir string, n int64) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no WAL segments")
	}
	sort.Strings(segs)
	path := filepath.Join(dir, segs[len(segs)-1])
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// Every executed query must fill the stage timing fields and total;
// the timers chain, so the stages cannot exceed the total.
func TestStageTimingsPopulated(t *testing.T) {
	db := New()
	for i := 0; i < 50; i++ {
		img := core.NewImage(16, 16,
			core.Object{Label: "A", Box: core.NewRect(1, 1, 3, 3)},
			core.Object{Label: "B", Box: core.NewRect(8, 8, 10, 10)})
		if err := db.Insert(fmt.Sprintf("img%03d", i), "", img); err != nil {
			t.Fatal(err)
		}
	}
	probe := core.NewImage(16, 16,
		core.Object{Label: "A", Box: core.NewRect(1, 1, 3, 3)},
		core.Object{Label: "B", Box: core.NewRect(8, 8, 10, 10)})
	page, err := db.Query(context.Background(), NewQuery(probe), WithK(5), Where("A left-of B"))
	if err != nil {
		t.Fatal(err)
	}
	sc := page.Stages
	if sc == nil {
		t.Fatal("no stage counts")
	}
	if sc.TotalNanos <= 0 {
		t.Fatalf("TotalNanos = %d, want > 0", sc.TotalNanos)
	}
	stageSum := sc.IndexNanos + sc.RegionNanos + sc.FilterNanos + sc.RankNanos
	if stageSum <= 0 || stageSum > sc.TotalNanos {
		t.Fatalf("stage sum %d out of range (total %d)", stageSum, sc.TotalNanos)
	}

	// And the trace riding the context must have received stage spans.
	tr := obs.NewTrace("t1")
	if _, err := db.Query(obs.WithTrace(context.Background(), tr),
		NewQuery(probe), WithK(5), Where("A left-of B")); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range tr.Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{"stage.index", "stage.region", "stage.filter", "stage.rank"} {
		if !names[want] {
			t.Fatalf("trace missing span %q (got %v)", want, tr.Spans())
		}
	}
}

// DB.EnableMetrics must feed query counters and stage histograms.
func TestDBMetricsFeed(t *testing.T) {
	db := New()
	reg := obs.NewRegistry()
	db.EnableMetrics(reg)
	img := core.NewImage(8, 8, core.Object{Label: "A", Box: core.NewRect(0, 0, 2, 2)})
	if err := db.Insert("a", "", img); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Search(context.Background(), img, SearchOptions{K: 5}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"bestring_query_total 3",
		`bestring_query_stage_seconds_count{stage="rank"} 3`,
		"bestring_store_images 1",
		"bestring_query_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// The satellite-6 fix: commit counters and search counters must never
// be observable in a torn combination. Hammer StoreStats/Stats while
// grouped writers commit; run under -race in CI.
func TestStatsCoherentUnderConcurrentCommits(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncNever, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.StoreStats()
				if st.Commit.Mutations < st.Commit.Groups {
					t.Errorf("torn read: mutations %d < groups %d", st.Commit.Mutations, st.Commit.Groups)
					return
				}
				if st.Commit.Largest > st.Commit.Mutations {
					t.Errorf("torn read: largest %d > mutations %d", st.Commit.Largest, st.Commit.Mutations)
					return
				}
				ss := s.Stats().Search
				if ss.Evaluated+ss.Pruned > 0 && ss.Queries == 0 {
					t.Errorf("torn read: work counted before any query: %+v", ss)
					return
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 40; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Insert(id, "", storeImage(w*100+i)); err != nil {
					t.Errorf("insert %s: %v", id, err)
					return
				}
				if i%8 == 0 {
					img := storeImage(w*100 + i)
					if _, err := s.Search(context.Background(), img, SearchOptions{K: 3}); err != nil {
						t.Errorf("search: %v", err)
						return
					}
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	st := s.StoreStats()
	if st.Commit.Mutations != 320 {
		t.Fatalf("mutations = %d, want 320", st.Commit.Mutations)
	}
	if st.Commit.Groups == 0 || st.Commit.Groups > 320 {
		t.Fatalf("groups = %d", st.Commit.Groups)
	}
}

// Store.EnableMetrics must wire the whole engine: WAL, commit
// histograms, LSN gauge vec, torn-tail counter.
func TestStoreMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := obs.NewRegistry()
	s.EnableMetrics(reg)

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Insert(fmt.Sprintf("m%d", i), "", storeImage(i)); err != nil {
				t.Errorf("insert: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if _, err := s.Search(context.Background(), storeImage(0), SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE bestring_wal_fsync_seconds histogram",
		"# TYPE bestring_commit_batch_size histogram",
		"bestring_commit_mutations_total 6",
		`bestring_store_lsn{kind="durable"}`,
		`bestring_store_lsn{kind="visible"}`,
		"bestring_wal_torn_tail_recoveries_total 0",
		"bestring_commit_queue_wait_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Queue waits were observed for the grouped inserts.
	if s.metrics.Load().batchSize.Count() == 0 {
		t.Fatal("no commit groups observed")
	}
}

// A crash-torn tail must surface in the recovery counter after reopen.
func TestTornTailRecoveryCounted(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncAlways, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Insert(fmt.Sprintf("t%d", i), "", storeImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	chopLastSegment(t, dir, 5)

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.recoveredTornTails != 1 || s2.recoveredTornBytes <= 0 {
		t.Fatalf("torn recovery not counted: tails=%d bytes=%d",
			s2.recoveredTornTails, s2.recoveredTornBytes)
	}
	reg := obs.NewRegistry()
	s2.EnableMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bestring_wal_torn_tail_recoveries_total 1") {
		t.Fatal("torn-tail recovery not exposed")
	}
}

// Metrics can be enabled while traffic is in flight (atomic pointer
// publication); run under -race.
func TestEnableMetricsMidTraffic(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{Fsync: FsyncNever, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Insert(fmt.Sprintf("mid%d", i), "", storeImage(i))
			i++
		}
	}()
	time.Sleep(5 * time.Millisecond)
	reg := obs.NewRegistry()
	s.EnableMetrics(reg)
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}
