package imagedb

import (
	"context"
	"errors"
	"testing"

	"bestring/internal/core"
)

// TestBulkInsertAllOrNothingOnConversionFailure pins the documented
// BulkInsert contract: a conversion failure in the MIDDLE of a batch
// leaves the database exactly as it was — no entries, no label-index
// residue, no R-tree residue — even though earlier items of the batch
// converted fine.
func TestBulkInsertAllOrNothingOnConversionFailure(t *testing.T) {
	db := New()
	if err := db.Insert("pre", "", storeImage(0)); err != nil {
		t.Fatal(err)
	}
	items := []BulkItem{
		{ID: "ok0", Image: storeImage(1)},
		{ID: "ok1", Image: storeImage(2)},
		{ID: "broken", Image: core.Image{XMax: 4, YMax: 4}}, // no objects: Convert fails
		{ID: "ok2", Image: storeImage(3)},
	}
	err := db.BulkInsert(context.Background(), items, 2)
	if err == nil {
		t.Fatal("expected conversion failure")
	}
	if !errors.Is(err, core.ErrEmptyImage) {
		t.Fatalf("error should carry the conversion cause, got %v", err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len=%d after failed batch, want 1", db.Len())
	}
	for _, id := range []string{"ok0", "ok1", "ok2", "broken"} {
		if _, ok := db.Get(id); ok {
			t.Fatalf("item %q leaked into the database", id)
		}
	}
	// No index residue: the labels of the good items resolve to nothing.
	if ids := db.ImagesWithLabel("B1"); len(ids) != 0 {
		t.Fatalf("label index residue: %v", ids)
	}
	if hits := db.SearchRegion(core.NewRect(0, 0, 12, 12), ""); len(hits) != 2 {
		// Only the two icons of the pre-existing image may be indexed.
		t.Fatalf("R-tree residue: %d hits", len(hits))
	}
}

// TestBulkInsertAllOrNothingOnCollision pins the same guarantee for an
// id collision discovered at install time.
func TestBulkInsertAllOrNothingOnCollision(t *testing.T) {
	db := New()
	if err := db.Insert("taken", "", storeImage(0)); err != nil {
		t.Fatal(err)
	}
	items := []BulkItem{
		{ID: "fresh0", Image: storeImage(1)},
		{ID: "taken", Image: storeImage(2)},
		{ID: "fresh1", Image: storeImage(3)},
	}
	if err := db.BulkInsert(context.Background(), items, 0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len=%d, want 1", db.Len())
	}
	if _, ok := db.Get("fresh0"); ok {
		t.Fatal("partial batch installed")
	}
}
