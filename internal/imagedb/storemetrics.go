package imagedb

import (
	"bestring/internal/obs"
)

// storeMetrics holds the group-commit instruments; nil until
// Store.EnableMetrics. Commit groups load the pointer once per group,
// so the disabled path costs one atomic load per group, not per
// mutation.
type storeMetrics struct {
	queueWaitSeconds *obs.Histogram
	groupSeconds     *obs.Histogram
	batchSize        *obs.Histogram
}

// EnableMetrics registers the whole durable engine on reg: the DB's
// query pipeline, the WAL's append/fsync/rotation timings, the group
// committer, checkpoint and LSN-horizon gauges, and the torn-tail
// recovery count. Call once per registry, any time after OpenStore; a
// nil registry is a no-op.
func (s *Store) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.db.EnableMetrics(reg)
	s.log.EnableMetrics(reg)
	m := &storeMetrics{
		queueWaitSeconds: reg.Histogram("bestring_commit_queue_wait_seconds",
			"Time one mutation waited in the commit queue before its group drained.",
			obs.DurationBuckets()),
		groupSeconds: reg.Histogram("bestring_commit_group_seconds",
			"Wall time of one commit group: apply, one WAL frame, one fsync, one publish.",
			obs.DurationBuckets()),
		batchSize: reg.Histogram("bestring_commit_batch_size",
			"Mutations per drained commit group (the realised coalescing factor).",
			obs.SizeBuckets()),
	}
	// The commit totals come from the same mutex-guarded tally that
	// serves StoreStats, so a scrape is always coherent: mutations can
	// never read behind groups.
	reg.CounterFunc("bestring_commit_groups_total",
		"Published commit groups (one WAL frame, one fsync, one version each).",
		func() float64 { s.commitMu.Lock(); defer s.commitMu.Unlock(); return float64(s.commitTally.groups) })
	reg.CounterFunc("bestring_commit_mutations_total",
		"Mutations committed through groups.",
		func() float64 { s.commitMu.Lock(); defer s.commitMu.Unlock(); return float64(s.commitTally.mutations) })
	reg.CounterFunc("bestring_commit_rejected_total",
		"Per-caller validation failures inside commit groups.",
		func() float64 { s.commitMu.Lock(); defer s.commitMu.Unlock(); return float64(s.commitTally.rejected) })
	reg.CounterFunc("bestring_checkpoints_total",
		"Checkpoints completed this session.",
		func() float64 { return float64(s.checkpoints.Load()) })
	reg.CounterFunc("bestring_wal_torn_tail_recoveries_total",
		"Torn WAL tails truncated by this process's recovery (crash artefacts healed by design).",
		func() float64 { return float64(s.recoveredTornTails) })
	// Streaming-import tally (import.go): counters for committed and
	// resumed work plus a live-imports gauge, all from the importMu-guarded
	// tally so a scrape never tears chunks against images.
	reg.CounterFunc("bestring_import_chunks_total",
		"Import chunks committed (one WAL record, one fsync, one version each).",
		func() float64 { return float64(s.ImportStats().Chunks) })
	reg.CounterFunc("bestring_import_images_total",
		"Scenes committed through streaming imports.",
		func() float64 { return float64(s.ImportStats().Images) })
	reg.CounterFunc("bestring_import_bytes_total",
		"WAL bytes appended by import chunk records.",
		func() float64 { return float64(s.ImportStats().Bytes) })
	reg.CounterFunc("bestring_import_resumed_chunks_total",
		"Import chunks skipped because an interrupted earlier run already made them durable.",
		func() float64 { return float64(s.ImportStats().ResumedChunks) })
	reg.GaugeFunc("bestring_import_active",
		"Streaming imports running right now.",
		func() float64 { return float64(s.ImportStats().Active) })
	reg.GaugeVec("bestring_store_lsn",
		"Store LSN horizons by kind: durable (fsynced), applied (in memory), visible (published), checkpoint (snapshotted), oldest (stream resume floor).",
		"kind", func() []obs.Sample {
			st := s.StoreStats()
			return []obs.Sample{
				{Label: "durable", Value: float64(st.WAL.DurableLSN)},
				{Label: "applied", Value: float64(st.AppliedLSN)},
				{Label: "visible", Value: float64(st.VisibleLSN)},
				{Label: "checkpoint", Value: float64(st.CheckpointLSN)},
				{Label: "oldest", Value: float64(st.WAL.OldestLSN)},
			}
		})
	s.metrics.Store(m)
}
