package imagedb

import (
	"fmt"
	"sort"
	"sync"

	"bestring/internal/baseline/typesim"
	"bestring/internal/core"
	"bestring/internal/similarity"
)

// DefaultScorerName is the registry name resolved when a query names no
// scorer: the paper's BE-LCS similarity.
const DefaultScorerName = "be"

// Bound computes a cheap upper bound on a scorer's exact score from the
// two symbol signatures alone — the "filter" half of filter-and-refine
// ranking. A registered bound must satisfy, for every query/entry pair:
//
//	bound(SignatureOf(queryBE), SignatureOf(entry.BE)) >= scorer(query, queryBE, entry) >= 0
//
// at float level, not merely mathematically. The engine relies on both
// inequalities to skip exact evaluations without changing results: a
// candidate is pruned only when its bound already loses to the current
// top-K floor or the MinScore threshold, which is sound only if the
// exact score can never exceed the bound (and never dip below zero,
// which the admission accounting assumes). A violating bound silently
// corrupts rankings; when a cheap sound bound does not exist for a
// scorer, register it without one and it is evaluated exactly for every
// candidate.
type Bound func(query, entry core.Signature) float64

// registeredScorer pairs a scorer with its (optional) bound and its
// cacheability. pure marks scorers whose exact score is a function of
// the two BE-strings alone — no image coordinates, no hidden state —
// which is what lets the scorer cache key an evaluation by (query BE,
// entry version, name) and serve it byte-identically later (see
// scorercache.go). Externally registered scorers are never marked pure:
// the engine cannot verify the property, and a wrong claim would
// silently corrupt rankings, so only the audited built-ins opt in.
type registeredScorer struct {
	score Scorer
	bound Bound
	pure  bool
}

// scorerRegistry maps scorer names to implementations, so every surface
// (library, CLI, REST) resolves method strings through one table instead
// of each re-implementing the switch.
var scorerRegistry = struct {
	mu sync.RWMutex
	m  map[string]registeredScorer
}{m: make(map[string]registeredScorer)}

// RegisterScorer adds a named scorer to the registry, with no bound:
// queries ranking with it evaluate every candidate exactly. Names are
// case-sensitive, must be non-empty and must not collide with a
// registered name. The built-in names (be, invariant, type0, type1,
// type2, symbols) are registered at package init.
func RegisterScorer(name string, s Scorer) error {
	return RegisterBoundedScorer(name, s, nil)
}

// RegisterBoundedScorer adds a named scorer together with its upper
// bound, enabling filter-and-refine pruning for queries that rank with
// it. The bound must obey the Bound contract; nil means exact-only
// (identical to RegisterScorer).
func RegisterBoundedScorer(name string, s Scorer, b Bound) error {
	if name == "" {
		return fmt.Errorf("register scorer: empty name")
	}
	if s == nil {
		return fmt.Errorf("register scorer %q: nil scorer", name)
	}
	scorerRegistry.mu.Lock()
	defer scorerRegistry.mu.Unlock()
	if _, exists := scorerRegistry.m[name]; exists {
		return fmt.Errorf("register scorer %q: already registered", name)
	}
	scorerRegistry.m[name] = registeredScorer{score: s, bound: b}
	return nil
}

// ScorerCacheable reports whether the named scorer's evaluations are
// eligible for the scorer cache (BE-pure built-ins). The empty name
// resolves to DefaultScorerName.
func ScorerCacheable(name string) bool {
	r, ok := lookupRegistered(name)
	return ok && r.pure
}

// lookupRegistered resolves a registry entry by name. The empty name
// resolves to DefaultScorerName.
func lookupRegistered(name string) (registeredScorer, bool) {
	if name == "" {
		name = DefaultScorerName
	}
	scorerRegistry.mu.RLock()
	defer scorerRegistry.mu.RUnlock()
	r, ok := scorerRegistry.m[name]
	return r, ok
}

// LookupScorer resolves a registered scorer by name. The empty name
// resolves to DefaultScorerName.
func LookupScorer(name string) (Scorer, bool) {
	r, ok := lookupRegistered(name)
	return r.score, ok
}

// LookupBound resolves the upper bound a registered scorer declared.
// The empty name resolves to DefaultScorerName; ok is false when the
// scorer is unknown or registered without a bound (exact-only).
func LookupBound(name string) (Bound, bool) {
	r, ok := lookupRegistered(name)
	if !ok || r.bound == nil {
		return nil, false
	}
	return r.bound, true
}

// ScorerNames lists the registered scorer names, sorted.
func ScorerNames() []string {
	scorerRegistry.mu.RLock()
	defer scorerRegistry.mu.RUnlock()
	names := make([]string, 0, len(scorerRegistry.m))
	for name := range scorerRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	// The LCS-family scorers declare the signature bounds proven in
	// internal/similarity (UB >= exact is pinned by property test); the
	// clique-based type-i baselines have no cheap sound bound and stay
	// exact-only, as does any custom WithScorerFunc scorer. The same
	// LCS family is BE-pure (their score reads only the two BE-strings),
	// so their evaluations are scorer-cacheable; the type-i baselines
	// read raw image coordinates, which the BE-string does not
	// determine, and stay uncached.
	for name, r := range map[string]registeredScorer{
		"be":        {score: BEScorer(), bound: similarity.UpperBound, pure: true},
		"invariant": {score: InvariantScorer(nil), bound: similarity.UpperBoundInvariant, pure: true},
		"type0":     {score: TypeSimScorer(typesim.Type0)},
		"type1":     {score: TypeSimScorer(typesim.Type1)},
		"type2":     {score: TypeSimScorer(typesim.Type2)},
		"symbols":   {score: SymbolsOnlyScorer(), bound: similarity.UpperBoundSymbolsOnly, pure: true},
	} {
		if err := RegisterBoundedScorer(name, r.score, r.bound); err != nil {
			panic(err)
		}
		if r.pure {
			scorerRegistry.mu.Lock()
			e := scorerRegistry.m[name]
			e.pure = true
			scorerRegistry.m[name] = e
			scorerRegistry.mu.Unlock()
		}
	}
}
