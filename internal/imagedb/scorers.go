package imagedb

import (
	"fmt"
	"sort"
	"sync"

	"bestring/internal/baseline/typesim"
)

// DefaultScorerName is the registry name resolved when a query names no
// scorer: the paper's BE-LCS similarity.
const DefaultScorerName = "be"

// scorerRegistry maps scorer names to implementations, so every surface
// (library, CLI, REST) resolves method strings through one table instead
// of each re-implementing the switch.
var scorerRegistry = struct {
	mu sync.RWMutex
	m  map[string]Scorer
}{m: make(map[string]Scorer)}

// RegisterScorer adds a named scorer to the registry. Names are
// case-sensitive, must be non-empty and must not collide with a
// registered name. The built-in names (be, invariant, type0, type1,
// type2, symbols) are registered at package init.
func RegisterScorer(name string, s Scorer) error {
	if name == "" {
		return fmt.Errorf("register scorer: empty name")
	}
	if s == nil {
		return fmt.Errorf("register scorer %q: nil scorer", name)
	}
	scorerRegistry.mu.Lock()
	defer scorerRegistry.mu.Unlock()
	if _, exists := scorerRegistry.m[name]; exists {
		return fmt.Errorf("register scorer %q: already registered", name)
	}
	scorerRegistry.m[name] = s
	return nil
}

// LookupScorer resolves a registered scorer by name. The empty name
// resolves to DefaultScorerName.
func LookupScorer(name string) (Scorer, bool) {
	if name == "" {
		name = DefaultScorerName
	}
	scorerRegistry.mu.RLock()
	defer scorerRegistry.mu.RUnlock()
	s, ok := scorerRegistry.m[name]
	return s, ok
}

// ScorerNames lists the registered scorer names, sorted.
func ScorerNames() []string {
	scorerRegistry.mu.RLock()
	defer scorerRegistry.mu.RUnlock()
	names := make([]string, 0, len(scorerRegistry.m))
	for name := range scorerRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	for name, s := range map[string]Scorer{
		"be":        BEScorer(),
		"invariant": InvariantScorer(nil),
		"type0":     TypeSimScorer(typesim.Type0),
		"type1":     TypeSimScorer(typesim.Type1),
		"type2":     TypeSimScorer(typesim.Type2),
		"symbols":   SymbolsOnlyScorer(),
	} {
		if err := RegisterScorer(name, s); err != nil {
			panic(err)
		}
	}
}
