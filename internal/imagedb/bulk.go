package imagedb

import (
	"context"
	"fmt"
	"sync"

	"bestring/internal/core"
)

// BulkItem is one image in a bulk insertion.
type BulkItem struct {
	ID    string
	Name  string
	Image core.Image
}

// BulkInsert converts many images in parallel (the conversions are
// independent and CPU-bound) and then installs them under the write lock
// in slice order. It is all-or-nothing: if any item fails validation,
// conversion or collides with an existing id, nothing is inserted.
func (db *DB) BulkInsert(ctx context.Context, items []BulkItem, parallelism int) error {
	if len(items) == 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = 4
	}
	seen := make(map[string]bool, len(items))
	for i, it := range items {
		if it.ID == "" {
			return fmt.Errorf("bulk insert item %d: %w", i, ErrEmptyID)
		}
		if seen[it.ID] {
			return fmt.Errorf("bulk insert item %d (%q): %w", i, it.ID, ErrDuplicate)
		}
		seen[it.ID] = true
	}

	converted := make([]core.BEString, len(items))
	errs := make([]error, len(items))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				converted[i], errs[i] = core.Convert(items[i].Image)
			}
		}()
	}
	var cancelled error
feed:
	for i := range items {
		select {
		case jobs <- i:
		case <-ctx.Done():
			cancelled = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled != nil {
		return fmt.Errorf("bulk insert: %w", cancelled)
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("bulk insert item %d (%q): %w", i, items[i].ID, err)
		}
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	for _, it := range items {
		if _, exists := db.entries[it.ID]; exists {
			return fmt.Errorf("bulk insert %q: %w", it.ID, ErrDuplicate)
		}
	}
	for i, it := range items {
		e := &Entry{ID: it.ID, Name: it.Name, Image: it.Image.Clone(), BE: converted[i]}
		db.entries[it.ID] = e
		db.order = append(db.order, it.ID)
		db.indexEntry(e)
	}
	return nil
}
