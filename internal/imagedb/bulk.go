package imagedb

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"bestring/internal/core"
)

// BulkItem is one image in a bulk insertion.
type BulkItem struct {
	ID    string
	Name  string
	Image core.Image
}

// BulkInsert converts many images in parallel (the conversions are
// independent and CPU-bound, the expensive part of an insert) and then
// installs them. It is all-or-nothing: if any item fails validation,
// conversion or collides with an existing id, nothing is inserted. The
// whole batch lands in one published version (a single epoch bump), so
// a concurrent reader sees either none of it or all of it — conversion
// and image cloning happen before the writer lock is taken.
// parallelism <= 0 means GOMAXPROCS.
func (db *DB) BulkInsert(ctx context.Context, items []BulkItem, parallelism int) error {
	if len(items) == 0 {
		return nil
	}
	sts, err := prepareBulk(ctx, items, parallelism, db.ArenaLayout())
	if err != nil {
		return err
	}
	return db.installBulk(sts)
}

// prepareBulk is the lock-free half of a bulk insert: id validation
// (non-empty, unique within the batch), parallel conversion, and image
// cloning. It returns the stored entries ready to install (sequence
// numbers unassigned). The durable store calls it directly so a bulk
// batch is fully validated before its WAL record is written. With arena
// set, the entries are packed into one columnar arena slab instead of
// being boxed individually (arena.go).
func prepareBulk(ctx context.Context, items []BulkItem, parallelism int, arena bool) ([]*stored, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	seen := make(map[string]bool, len(items))
	for i, it := range items {
		if it.ID == "" {
			return nil, fmt.Errorf("bulk insert item %d: %w", i, ErrEmptyID)
		}
		if seen[it.ID] {
			return nil, fmt.Errorf("bulk insert item %d (%q): %w", i, it.ID, ErrDuplicate)
		}
		seen[it.ID] = true
	}

	converted := make([]core.BEString, len(items))
	errs := make([]error, len(items))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				converted[i], errs[i] = core.Convert(items[i].Image)
			}
		}()
	}
	var cancelled error
feed:
	for i := range items {
		select {
		case jobs <- i:
		case <-ctx.Done():
			cancelled = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled != nil {
		return nil, fmt.Errorf("bulk insert: %w", cancelled)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("bulk insert item %d (%q): %w", i, items[i].ID, err)
		}
	}

	// Build the stored entries (including the image clones and their
	// symbol signatures) before any lock is taken; only map installs and
	// index registration remain for the critical section.
	if arena {
		packed := make([]arenaItem, len(items))
		for i, it := range items {
			packed[i] = arenaItem{id: it.ID, name: it.Name, img: it.Image, be: converted[i]}
		}
		return buildArena(packed).pointers(), nil
	}
	sts := make([]*stored, len(items))
	for i, it := range items {
		sig := core.SignatureOf(converted[i])
		sts[i] = &stored{
			Entry: Entry{ID: it.ID, Name: it.Name, Image: it.Image.Clone(), BE: converted[i]},
			sig:   &sig,
		}
	}
	return sts, nil
}

// installBulk is the critical section of a bulk insert: under the writer
// mutex it re-checks for id collisions against the current version and
// then builds and publishes one next version holding the whole batch —
// or publishes nothing.
func (db *DB) installBulk(sts []*stored) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	cur := db.current.Load()
	for _, st := range sts {
		if _, exists := cur.lookup(st.ID); exists {
			return fmt.Errorf("bulk insert %q: %w", st.ID, ErrDuplicate)
		}
	}
	m := beginTxn(cur)
	for _, st := range sts {
		st.seq = db.seq.Add(1)
		m.add(st)
	}
	db.publish(m)
	return nil
}
