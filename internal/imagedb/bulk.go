package imagedb

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"bestring/internal/core"
)

// BulkItem is one image in a bulk insertion.
type BulkItem struct {
	ID    string
	Name  string
	Image core.Image
}

// BulkInsert converts many images in parallel (the conversions are
// independent and CPU-bound, the expensive part of an insert) and then
// installs them. It is all-or-nothing: if any item fails validation,
// conversion or collides with an existing id, nothing is inserted. To
// make that atomic across partitions it holds every shard's write lock
// (acquired in ring order, so it cannot deadlock with single-shard
// writers) for the duration of the install phase: map installs, label
// indexing and the batch's R-tree insertions — conversion and image
// cloning happen before any lock is taken. parallelism <= 0 means
// GOMAXPROCS.
func (db *DB) BulkInsert(ctx context.Context, items []BulkItem, parallelism int) error {
	if len(items) == 0 {
		return nil
	}
	sts, err := prepareBulk(ctx, items, parallelism)
	if err != nil {
		return err
	}
	return db.installBulk(sts)
}

// prepareBulk is the lock-free half of a bulk insert: id validation
// (non-empty, unique within the batch), parallel conversion, and image
// cloning. It returns the stored entries ready to install (sequence
// numbers unassigned). The durable store calls it directly so a bulk
// batch is fully validated before its WAL record is written.
func prepareBulk(ctx context.Context, items []BulkItem, parallelism int) ([]*stored, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	seen := make(map[string]bool, len(items))
	for i, it := range items {
		if it.ID == "" {
			return nil, fmt.Errorf("bulk insert item %d: %w", i, ErrEmptyID)
		}
		if seen[it.ID] {
			return nil, fmt.Errorf("bulk insert item %d (%q): %w", i, it.ID, ErrDuplicate)
		}
		seen[it.ID] = true
	}

	converted := make([]core.BEString, len(items))
	errs := make([]error, len(items))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				converted[i], errs[i] = core.Convert(items[i].Image)
			}
		}()
	}
	var cancelled error
feed:
	for i := range items {
		select {
		case jobs <- i:
		case <-ctx.Done():
			cancelled = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled != nil {
		return nil, fmt.Errorf("bulk insert: %w", cancelled)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("bulk insert item %d (%q): %w", i, items[i].ID, err)
		}
	}

	// Build the stored entries (including the image clones) before any
	// lock is taken; only map installs and index registration remain for
	// the critical section.
	sts := make([]*stored, len(items))
	for i, it := range items {
		sts[i] = &stored{
			Entry: Entry{ID: it.ID, Name: it.Name, Image: it.Image.Clone(), BE: converted[i]},
		}
	}
	return sts, nil
}

// installBulk is the critical section of a bulk insert: with every shard
// write lock held in ring order, it re-checks for id collisions and then
// installs the whole batch or nothing.
func (db *DB) installBulk(sts []*stored) error {
	for _, sh := range db.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	for _, st := range sts {
		if _, exists := db.shardFor(st.ID).entries[st.ID]; exists {
			return fmt.Errorf("bulk insert %q: %w", st.ID, ErrDuplicate)
		}
	}
	for _, st := range sts {
		st.seq = db.seq.Add(1)
		sh := db.shardFor(st.ID)
		sh.entries[st.ID] = st
		sh.indexLabels(&st.Entry)
	}
	// One spatial critical section for the whole batch, so a concurrent
	// SearchRegion sees either none or all of it.
	db.spatialMu.Lock()
	for _, st := range sts {
		for _, o := range st.Image.Objects {
			db.spatial.Insert(spatialID(st.ID, o.Label), o.Box)
		}
	}
	db.spatialMu.Unlock()
	return nil
}
