package imagedb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bestring/internal/wal"
)

// SnapshotInfo describes one checkpoint snapshot file of a store.
type SnapshotInfo struct {
	File    string `json:"file"`
	LSN     uint64 `json:"lsn"` // records covered through this LSN
	Bytes   int64  `json:"bytes"`
	Entries int    `json:"entries"`       // -1 when the snapshot is unreadable
	Err     string `json:"err,omitempty"` // load failure, if any
}

// StoreInspection is a read-only report on a store directory: its
// snapshots, its WAL segments and the record mix awaiting replay. It is
// safe to produce while another process serves the store — nothing is
// repaired, truncated or pruned.
type StoreInspection struct {
	Dir       string            `json:"dir"`
	Snapshots []SnapshotInfo    `json:"snapshots"`
	Segments  []wal.SegmentInfo `json:"segments"`
	// RecordOps counts the decodable WAL records by operation.
	RecordOps map[string]int `json:"recordOps"`
	// Records is the total decodable WAL record count; Replayable is the
	// subset newer than the newest loadable snapshot — what the next
	// OpenStore will apply.
	Records    int `json:"records"`
	Replayable int `json:"replayable"`
	// GroupSubRecords counts sub-records inside group frames, and
	// LogicalMutations the individual mutations the log describes (group
	// and bulk records expanded) — the audit view of a batched log, where
	// one frame may carry dozens of acknowledged writes.
	GroupSubRecords  int    `json:"groupSubRecords"`
	LogicalMutations int    `json:"logicalMutations"`
	LastLSN          uint64 `json:"lastLSN"`
	// SnapshotLSN is the LSN of the newest loadable snapshot (0: none).
	SnapshotLSN uint64 `json:"snapshotLSN"`
}

// InspectStore examines a store directory without opening it for writing.
func InspectStore(dataDir string) (*StoreInspection, error) {
	if _, err := os.Stat(dataDir); err != nil {
		return nil, fmt.Errorf("inspect store: %w", err)
	}
	ins := &StoreInspection{Dir: dataDir, RecordOps: make(map[string]int)}

	names, err := listSnapshots(dataDir)
	if err != nil {
		return nil, fmt.Errorf("inspect store: %w", err)
	}
	sort.Strings(names) // report oldest first
	for _, name := range names {
		si := SnapshotInfo{File: name}
		si.LSN, _ = parseSnapshotName(name)
		if info, err := os.Stat(filepath.Join(dataDir, name)); err == nil {
			si.Bytes = info.Size()
		}
		db, err := LoadFile(filepath.Join(dataDir, name))
		if err != nil {
			si.Entries = -1
			si.Err = err.Error()
		} else {
			si.Entries = db.Len()
			if si.LSN > ins.SnapshotLSN {
				ins.SnapshotLSN = si.LSN
			}
		}
		ins.Snapshots = append(ins.Snapshots, si)
	}

	ins.Segments, err = wal.Inspect(dataDir, func(rec wal.Record) {
		ins.RecordOps[rec.Op]++
		ins.Records++
		if rec.Op == wal.OpGroup {
			ins.GroupSubRecords += len(rec.Subs)
		}
		ins.LogicalMutations += rec.Mutations()
		if rec.LSN > ins.SnapshotLSN {
			ins.Replayable++
		}
		if rec.LSN > ins.LastLSN {
			ins.LastLSN = rec.LSN
		}
	})
	if err != nil {
		return nil, fmt.Errorf("inspect store: %w", err)
	}
	if ins.SnapshotLSN > ins.LastLSN {
		ins.LastLSN = ins.SnapshotLSN
	}
	return ins, nil
}
