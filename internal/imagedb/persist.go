package imagedb

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"bestring/internal/core"
	"bestring/internal/fsutil"
)

// snapshotJSON is the on-disk format: a versioned list of entries.
type snapshotJSON struct {
	Version int     `json:"version"`
	Entries []Entry `json:"entries"`
}

// snapshotVersion is bumped on incompatible format changes.
const snapshotVersion = 1

// Save writes the database as JSON. Entries appear in insertion order.
// The snapshot is pinned once, so the bytes written are one state the
// database actually passed through (never half of a bulk batch), and
// concurrent writers are never blocked — Save holds no lock at all.
func (db *DB) Save(w io.Writer) error {
	return saveEntries(w, db.current.Load().orderedEntries())
}

// saveEntries writes a versioned JSON snapshot of the given entries —
// the shared encoding behind DB.Save and the store's checkpointer (which
// pins a version and encodes entirely outside the writer lock).
func saveEntries(w io.Writer, entries []Entry) error {
	snap := snapshotJSON{Version: snapshotVersion, Entries: entries}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("save image db: %w", err)
	}
	return nil
}

// loadEntries validates and installs a decoded snapshot as one published
// version: every entry's BE-string is re-derived from its image and
// cross-checked against the stored one, so a corrupted or hand-edited
// snapshot cannot desynchronise index and data. One version for the
// whole load keeps recovery linear — per-entry Insert would copy the
// target shard once per entry.
func (db *DB) loadEntries(entries []Entry, wrap string) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	m := beginTxn(db.current.Load())
	arena := db.ArenaLayout()
	var packed []arenaItem
	if arena {
		packed = make([]arenaItem, 0, len(entries))
	}
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if e.ID == "" {
			return fmt.Errorf("%s: %w", wrap, ErrEmptyID)
		}
		if _, exists := m.shards[shardIndex(e.ID, len(m.shards))].entries[e.ID]; exists || seen[e.ID] {
			return fmt.Errorf("%s: insert %q: %w", wrap, e.ID, ErrDuplicate)
		}
		seen[e.ID] = true
		be, err := core.Convert(e.Image)
		if err != nil {
			return fmt.Errorf("%s: insert %q: %w", wrap, e.ID, err)
		}
		if len(e.BE.X) > 0 && !be.Equal(e.BE) {
			return fmt.Errorf("%s: entry %q: stored BE-string does not match its image", wrap, e.ID)
		}
		if arena {
			// Defer the install: the whole load packs into one columnar
			// arena (arena.go), so a recovered corpus gets the same slab
			// locality a live bulk insert would.
			packed = append(packed, arenaItem{id: e.ID, name: e.Name, img: e.Image, be: be})
			continue
		}
		m.add(&stored{
			Entry: Entry{ID: e.ID, Name: e.Name, Image: e.Image.Clone(), BE: be},
			seq:   db.seq.Add(1),
		})
	}
	if len(packed) > 0 {
		for _, st := range buildArena(packed).pointers() {
			st.seq = db.seq.Add(1)
			m.add(st)
		}
	}
	db.publish(m)
	return nil
}

// Load reads a database snapshot written by Save.
func Load(r io.Reader) (*DB, error) {
	var snap snapshotJSON
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("load image db: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("load image db: unsupported snapshot version %d", snap.Version)
	}
	db := New()
	if err := db.loadEntries(snap.Entries, "load image db"); err != nil {
		return nil, err
	}
	return db, nil
}

// SaveGob writes the database in the binary gob format — denser and
// faster than JSON for large collections; Load/Save remain the
// interchange format.
func (db *DB) SaveGob(w io.Writer) error {
	snap := snapshotJSON{Version: snapshotVersion, Entries: db.current.Load().orderedEntries()}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("save image db (gob): %w", err)
	}
	return nil
}

// LoadGob reads a database written by SaveGob, with the same BE-string
// cross-check as Load.
func LoadGob(r io.Reader) (*DB, error) {
	var snap snapshotJSON
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("load image db (gob): %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("load image db (gob): unsupported snapshot version %d", snap.Version)
	}
	db := New()
	if err := db.loadEntries(snap.Entries, "load image db (gob)"); err != nil {
		return nil, err
	}
	return db, nil
}

// SaveFile writes the database to a file path atomically: the snapshot
// is written to a temp file in the same directory, fsynced and renamed
// over path, so a crash mid-save can never clobber the previous good
// snapshot.
func (db *DB) SaveFile(path string) error {
	if err := fsutil.AtomicWriteFile(path, db.Save); err != nil {
		return fmt.Errorf("save image db: %w", err)
	}
	return nil
}

// SaveGobFile writes the database to a file path in the gob format, with
// the same atomic-replace guarantee as SaveFile.
func (db *DB) SaveGobFile(path string) error {
	if err := fsutil.AtomicWriteFile(path, db.SaveGob); err != nil {
		return fmt.Errorf("save image db (gob): %w", err)
	}
	return nil
}

// LoadFile reads a database from a file path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load image db: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// LoadGobFile reads a database written by SaveGobFile.
func LoadGobFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load image db (gob): %w", err)
	}
	defer f.Close()
	return LoadGob(f)
}
