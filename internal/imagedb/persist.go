package imagedb

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// snapshotJSON is the on-disk format: a versioned list of entries.
type snapshotJSON struct {
	Version int     `json:"version"`
	Entries []Entry `json:"entries"`
}

// snapshotVersion is bumped on incompatible format changes.
const snapshotVersion = 1

// Save writes the database as JSON. Entries appear in insertion order.
func (db *DB) Save(w io.Writer) error {
	snap := snapshotJSON{Version: snapshotVersion, Entries: db.orderedEntries()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("save image db: %w", err)
	}
	return nil
}

// Load reads a database snapshot written by Save. Every entry's BE-string
// is re-derived from its image and cross-checked against the stored one,
// so a corrupted or hand-edited snapshot cannot desynchronise index and
// data.
func Load(r io.Reader) (*DB, error) {
	var snap snapshotJSON
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("load image db: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("load image db: unsupported snapshot version %d", snap.Version)
	}
	db := New()
	for _, e := range snap.Entries {
		if err := db.Insert(e.ID, e.Name, e.Image); err != nil {
			return nil, fmt.Errorf("load image db: %w", err)
		}
		fresh, _ := db.Get(e.ID)
		if len(e.BE.X) > 0 && !fresh.BE.Equal(e.BE) {
			return nil, fmt.Errorf("load image db: entry %q: stored BE-string does not match its image", e.ID)
		}
	}
	return db, nil
}

// SaveGob writes the database in the binary gob format — denser and
// faster than JSON for large collections; Load/Save remain the
// interchange format.
func (db *DB) SaveGob(w io.Writer) error {
	snap := snapshotJSON{Version: snapshotVersion, Entries: db.orderedEntries()}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("save image db (gob): %w", err)
	}
	return nil
}

// LoadGob reads a database written by SaveGob, with the same BE-string
// cross-check as Load.
func LoadGob(r io.Reader) (*DB, error) {
	var snap snapshotJSON
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("load image db (gob): %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("load image db (gob): unsupported snapshot version %d", snap.Version)
	}
	db := New()
	for _, e := range snap.Entries {
		if err := db.Insert(e.ID, e.Name, e.Image); err != nil {
			return nil, fmt.Errorf("load image db (gob): %w", err)
		}
		fresh, _ := db.Get(e.ID)
		if len(e.BE.X) > 0 && !fresh.BE.Equal(e.BE) {
			return nil, fmt.Errorf("load image db (gob): entry %q: stored BE-string does not match its image", e.ID)
		}
	}
	return db, nil
}

// SaveFile writes the database to a file path.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save image db: %w", err)
	}
	defer f.Close()
	if err := db.Save(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("save image db: %w", err)
	}
	return nil
}

// LoadFile reads a database from a file path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load image db: %w", err)
	}
	defer f.Close()
	return Load(f)
}
