package imagedb

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"bestring/internal/core"
	"bestring/internal/obs"
)

// pageKey is the result identity the byte-identity tests compare: the
// parts of a page a client consumes. Stages/Plan are deliberately
// excluded — they describe work, not results.
type pageKey struct {
	Hits   []Hit
	Total  int
	Cursor string
}

func pageID(t *testing.T, p *Page) string {
	t.Helper()
	j, err := json.Marshal(pageKey{p.Hits, p.Total, p.NextCursor})
	if err != nil {
		t.Fatal(err)
	}
	return string(j)
}

// TestPlannerRankingByteIdentical pins the planner's correctness
// invariant: whatever plan the cost model picks, Hits, Total and
// NextCursor are byte-identical to the fixed label→region→predicate
// order, across query compositions that exercise every plan, at several
// parallelism levels, including full cursor walks.
func TestPlannerRankingByteIdentical(t *testing.T) {
	ctx := context.Background()
	db, g := seedPruneDB(t, 424242, 80)
	img := g.SubsetQuery(g.Scene(), 4)

	tiny := core.NewRect(0, 0, 6, 6)
	broad := core.NewRect(0, 0, 100, 100) // contains every canvas
	mid := core.NewRect(10, 10, 80, 80)
	// Six-label clause: postings cover (well over) 80% of the corpus, so
	// the planner goes for a scan.
	wide := "icon00 left-of icon01; icon02 left-of icon03; icon04 left-of icon05"

	cases := []struct {
		name string
		q    *Query
		opts []QueryOption
	}{
		{"image", NewQuery(img), []QueryOption{WithK(10)}},
		{"image-prefilter", NewQuery(img), []QueryOption{WithK(10), WithLabelPrefilter(true)}},
		{"image-prefilter-unbounded", NewQuery(img), []QueryOption{WithLabelPrefilter(true)}},
		{"image-tiny-region", NewQuery(img), []QueryOption{WithK(10), InRegion(tiny)}},
		{"image-tiny-region-prefilter", NewQuery(img), []QueryOption{WithK(10), InRegion(tiny), WithLabelPrefilter(true)}},
		{"image-broad-region", NewQuery(img), []QueryOption{WithK(10), InRegion(broad)}},
		{"image-broad-region-label", NewQuery(img), []QueryOption{WithK(10), InRegionLabel(broad, "icon03")}},
		{"image-mid-region", NewQuery(img), []QueryOption{WithK(10), InRegion(mid)}},
		{"dsl", NewMatchQuery(), []QueryOption{WithK(10), Where("icon01 left-of icon02")}},
		{"dsl-wide", NewMatchQuery(), []QueryOption{WithK(10), Where(wide)}},
		{"dsl-tiny-region", NewMatchQuery(), []QueryOption{WithK(10), Where("icon01 left-of icon02"), InRegion(tiny)}},
		{"dsl-mid-region", NewMatchQuery(), []QueryOption{WithK(10), Where(wide), InRegion(mid)}},
		{"image-dsl-region", NewQuery(img), []QueryOption{WithK(10), Where("icon01 left-of icon02"), WithWhereMin(0.5), InRegion(mid)}},
		{"region-only", NewMatchQuery(), []QueryOption{WithK(10), InRegion(tiny)}},
		{"min-score", NewQuery(img), []QueryOption{WithK(10), WithMinScore(0.4), InRegion(mid)}},
		{"offset", NewQuery(img), []QueryOption{WithK(5), WithOffset(7), InRegion(mid)}},
		{"scorer-invariant", NewQuery(img), []QueryOption{WithK(10), WithScorer("invariant"), InRegion(tiny)}},
	}
	// Two passes so the second sees warmed shape statistics (plans may
	// change between passes; results must not).
	for pass := 0; pass < 2; pass++ {
		for _, tc := range cases {
			for _, par := range []int{0, 1, 3} {
				base := append([]QueryOption{WithParallelism(par)}, tc.opts...)
				on, err := db.Query(ctx, tc.q, append(base, WithPlanner(true))...)
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				off, err := db.Query(ctx, tc.q, append(base, WithPlanner(false))...)
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				if gj, wj := pageID(t, on), pageID(t, off); gj != wj {
					t.Fatalf("pass %d case %s parallelism %d (plan %q): planner ranking diverged\n  on: %s\n off: %s",
						pass, tc.name, par, on.Plan.Name, gj, wj)
				}
				if off.Plan == nil || off.Plan.Name != planFixed {
					t.Fatalf("case %s: planner-off page reports plan %+v, want fixed", tc.name, off.Plan)
				}
				if on.Stages.Narrowed != off.Stages.Narrowed {
					t.Fatalf("case %s: Narrowed is plan-variant: %d vs %d", tc.name, on.Stages.Narrowed, off.Stages.Narrowed)
				}
			}
		}
	}

	// Full cursor walk under each planner setting, resuming pages across
	// plan decisions.
	walk := func(planner bool) string {
		var all []Hit
		cursor := ""
		for {
			opts := []QueryOption{WithK(7), WithPlanner(planner), InRegion(mid)}
			if cursor != "" {
				opts = append(opts, WithCursor(cursor))
			}
			page, err := db.Query(ctx, NewQuery(img), opts...)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, page.Hits...)
			if page.NextCursor == "" {
				j, _ := json.Marshal(all)
				return string(j)
			}
			cursor = page.NextCursor
		}
	}
	if on, off := walk(true), walk(false); on != off {
		t.Fatalf("cursor walk diverged:\n  on: %s\n off: %s", on, off)
	}
}

// TestPlannerPlanChoices pins that the cost model actually picks the
// intended plans on workloads constructed to trigger each rule.
func TestPlannerPlanChoices(t *testing.T) {
	ctx := context.Background()
	db, g := seedPruneDB(t, 2025, 120)
	img := g.SubsetQuery(g.Scene(), 4)

	plan := func(q *Query, opts ...QueryOption) *QueryPlan {
		t.Helper()
		page, err := db.Query(ctx, q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if page.Plan == nil {
			t.Fatal("no plan on page")
		}
		return page.Plan
	}

	// No narrowing input at all: plain ranked search scans.
	if p := plan(NewQuery(img), WithK(5)); p.Name != planScan {
		t.Fatalf("unfiltered image query chose %q, want scan", p.Name)
	}
	// A tiny region next to a label prefilter: probe the region first.
	tiny := core.NewRect(0, 0, 4, 4)
	if p := plan(NewQuery(img), WithK(5), InRegion(tiny), WithLabelPrefilter(true)); p.Name != planRegionFirst {
		t.Fatalf("tiny-region query chose %q (est-region %d, est-label %d), want region-first",
			p.Name, p.EstRegion, p.EstLabel)
	}
	// A region containing the corpus bounds, no label: provably a no-op.
	broad := core.NewRect(0, 0, 100, 100)
	p := plan(NewQuery(img), WithK(5), InRegion(broad), WithLabelPrefilter(true))
	if !p.SkippedRegion {
		t.Fatalf("bounds-covering region not skipped: %+v", p)
	}
	// The same region with a label degenerates to a membership test.
	if p := plan(NewQuery(img), WithK(5), InRegionLabel(broad, "icon03"), WithLabelPrefilter(true)); p.SkippedRegion {
		t.Fatalf("labelled bounds-covering region wrongly skipped: %+v", p)
	}
	// A clause whose labels blanket the corpus: the postings union would
	// rebuild nearly the whole entry set, so the planner scans instead.
	wide := "icon00 left-of icon01; icon02 left-of icon03; icon04 left-of icon05; icon06 left-of icon07"
	if p := plan(NewMatchQuery(), WithK(5), Where(wide)); p.Name != planScan || !p.SkippedLabels {
		t.Fatalf("blanket-label clause chose %q (skippedLabels=%v, est-label %d), want scan",
			p.Name, p.SkippedLabels, p.EstLabel)
	}
	// Filter-first needs history: a clause that keeps almost nothing,
	// paired with a broad (but not bounds-covering) region. The first run
	// observes the pass-rate; the second plans on it.
	selective := "icon00 contains icon01"
	q := NewMatchQuery()
	opts := []QueryOption{WithK(5), Where(selective), InRegion(core.NewRect(0, 0, 95, 95))}
	first := plan(q, opts...)
	second := plan(q, opts...)
	if second.Name != planFilterFirst {
		t.Fatalf("selective clause chose %q after warmup (first %q, rate %.3f), want filter-first",
			second.Name, first.Name, second.EstFilterRate)
	}
	if second.EstFilterRate >= 1 {
		t.Fatalf("shape statistics not updated: rate %.3f", second.EstFilterRate)
	}
}

// TestPlannerShapeStatsBounded pins the pass-rate table's size bound.
func TestPlannerShapeStatsBounded(t *testing.T) {
	var s shapeStats
	for i := 0; i < 3*shapeStatsCap; i++ {
		s.note(fmt.Sprintf("shape-%d", i), 0.5)
	}
	if n := len(s.rates); n > shapeStatsCap {
		t.Fatalf("shape table grew to %d, cap %d", n, shapeStatsCap)
	}
	s.note("ewma", 1)
	s.note("ewma", 0)
	want := (1-shapeDecay)*1.0 + shapeDecay*0
	if got := s.rate("ewma"); got != want {
		t.Fatalf("EWMA rate %v, want %v", got, want)
	}
	if got := s.rate("never-seen"); got != 1 {
		t.Fatalf("unseen shape rate %v, want 1", got)
	}
}

// TestPlannerAndCacheMetrics pins the new /metrics series: every plan
// series is visible at registration time, the chosen plan is counted,
// and the scorer-cache counters and gauges move.
func TestPlannerAndCacheMetrics(t *testing.T) {
	ctx := context.Background()
	db, g := seedPruneDB(t, 55, 40)
	img := g.SubsetQuery(g.Scene(), 3)

	reg := obs.NewRegistry()
	db.EnableMetrics(reg)

	render := func() string {
		var b strings.Builder
		if err := reg.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	// All plan series visible before any traffic.
	text := render()
	for _, name := range planNames() {
		if !strings.Contains(text, fmt.Sprintf(`bestring_query_plan_total{plan=%q} 0`, name)) {
			t.Fatalf("plan series %q not pre-registered:\n%s", name, text)
		}
	}
	for _, series := range []string{
		"bestring_scorer_cache_hits_total",
		"bestring_scorer_cache_misses_total",
		"bestring_scorer_cache_evictions_total",
		"bestring_scorer_cache_entries",
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("series %q missing from exposition", series)
		}
	}

	// Run the same cacheable query twice: one scan plan counted per run,
	// misses on the first, hits on the second.
	for i := 0; i < 2; i++ {
		if _, err := db.Query(ctx, NewQuery(img)); err != nil {
			t.Fatal(err)
		}
	}
	text = render()
	if !strings.Contains(text, `bestring_query_plan_total{plan="scan"} 2`) {
		t.Fatalf("scan plan not counted:\n%s", text)
	}
	if strings.Contains(text, "bestring_scorer_cache_hits_total 0\n") {
		t.Fatalf("no cache hits recorded on a repeated query:\n%s", text)
	}
	if strings.Contains(text, "bestring_scorer_cache_misses_total 0\n") {
		t.Fatalf("no cache misses recorded on a cold query:\n%s", text)
	}
	if strings.Contains(text, "bestring_scorer_cache_entries 0\n") {
		t.Fatalf("cache occupancy gauge did not move:\n%s", text)
	}
}
