package imagedb

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"bestring/internal/core"
	"bestring/internal/query"
	"bestring/internal/workload"
)

func beachScene() core.Image {
	return core.NewImage(20, 20,
		core.Object{Label: "sun", Box: core.NewRect(14, 14, 18, 18)},
		core.Object{Label: "sea", Box: core.NewRect(0, 0, 20, 6)},
		core.Object{Label: "boat", Box: core.NewRect(4, 6, 8, 9)},
	)
}

func TestSearchRegion(t *testing.T) {
	db := New()
	if err := db.Insert("beach", "", beachScene()); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("fig1", "", core.Figure1Image()); err != nil {
		t.Fatal(err)
	}
	// Top-right corner of the beach: only the sun.
	hits := db.SearchRegion(core.NewRect(15, 15, 20, 20), "")
	if len(hits) != 1 || hits[0].ImageID != "beach" || hits[0].Label != "sun" {
		t.Errorf("hits = %+v, want sun in beach", hits)
	}
	// Label-restricted search.
	hits = db.SearchRegion(core.NewRect(0, 0, 20, 20), "sea")
	if len(hits) != 1 || hits[0].Label != "sea" {
		t.Errorf("label-restricted hits = %+v", hits)
	}
	// A region covering everything finds every icon of both images.
	hits = db.SearchRegion(core.NewRect(0, 0, 20, 20), "")
	if len(hits) != 6 {
		t.Errorf("full-region hits = %d, want 6", len(hits))
	}
	// Invalid region.
	if got := db.SearchRegion(core.Rect{X0: 5, Y0: 5, X1: 1, Y1: 1}, ""); got != nil {
		t.Errorf("invalid region should return nil, got %v", got)
	}
}

func TestSearchRegionTracksUpdates(t *testing.T) {
	db := New()
	if err := db.Insert("beach", "", beachScene()); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteObject("beach", "sun"); err != nil {
		t.Fatal(err)
	}
	if hits := db.SearchRegion(core.NewRect(15, 15, 20, 20), ""); len(hits) != 0 {
		t.Errorf("sun still indexed after DeleteObject: %+v", hits)
	}
	if err := db.InsertObject("beach", core.Object{Label: "gull", Box: core.NewRect(16, 16, 17, 17)}); err != nil {
		t.Fatal(err)
	}
	hits := db.SearchRegion(core.NewRect(15, 15, 20, 20), "")
	if len(hits) != 1 || hits[0].Label != "gull" {
		t.Errorf("hits after InsertObject = %+v", hits)
	}
	if err := db.Delete("beach"); err != nil {
		t.Fatal(err)
	}
	if hits := db.SearchRegion(core.NewRect(0, 0, 20, 20), ""); len(hits) != 0 {
		t.Errorf("icons still indexed after image delete: %+v", hits)
	}
}

func TestSearchDSL(t *testing.T) {
	db := New()
	if err := db.Insert("beach", "", beachScene()); err != nil {
		t.Fatal(err)
	}
	// The same scene flipped vertically: sun below the sea.
	if err := db.Insert("upside", "", beachScene().ReflectXAxis()); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("fig1", "", core.Figure1Image()); err != nil {
		t.Fatal(err)
	}
	q, err := query.Parse("sun above sea; boat above sea")
	if err != nil {
		t.Fatal(err)
	}
	results, err := db.SearchDSL(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %+v, want only the beach (flipped scene satisfies nothing)", results)
	}
	if results[0].ID != "beach" || !results[0].Full || results[0].Score != 1 {
		t.Errorf("top = %+v", results[0])
	}

	// A partially satisfiable query ranks the partial match below the full.
	q2, err := query.Parse("sea below boat; sea left-of boat")
	if err != nil {
		t.Fatal(err)
	}
	results, err = db.SearchDSL(context.Background(), q2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Score != 0.5 || results[0].Full {
		t.Errorf("partial results = %+v, want beach at 0.5", results)
	}
}

func TestSearchDSLErrors(t *testing.T) {
	db := New()
	if _, err := db.SearchDSL(context.Background(), query.Query{}, 0); err == nil {
		t.Error("empty query accepted")
	}
	if err := db.Insert("beach", "", beachScene()); err != nil {
		t.Fatal(err)
	}
	q, _ := query.Parse("sun above sea")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.SearchDSL(ctx, q, 0); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestImagesWithLabel(t *testing.T) {
	db := New()
	if err := db.Insert("beach", "", beachScene()); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("fig1", "", core.Figure1Image()); err != nil {
		t.Fatal(err)
	}
	if got := db.ImagesWithLabel("sun"); len(got) != 1 || got[0] != "beach" {
		t.Errorf("ImagesWithLabel(sun) = %v", got)
	}
	if got := db.ImagesWithLabel("ghost"); len(got) != 0 {
		t.Errorf("ImagesWithLabel(ghost) = %v", got)
	}
}

func TestLabelPrefilterMatchesFullSearch(t *testing.T) {
	db := New()
	gen := workload.NewGenerator(workload.Config{Seed: 31, Vocabulary: 40})
	var scenes []core.Image
	for i := 0; i < 40; i++ {
		s := gen.Scene()
		scenes = append(scenes, s)
		if err := db.Insert(fmt.Sprintf("img%03d", i), "", s); err != nil {
			t.Fatal(err)
		}
	}
	queryImg := gen.SubsetQuery(scenes[7], 4)
	full, err := db.Search(context.Background(), queryImg, SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := db.Search(context.Background(), queryImg, SearchOptions{K: 5, LabelPrefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	// The prefilter may only drop zero-overlap images, which cannot be in
	// the top ranks here; the head of the ranking must agree.
	if len(filtered) == 0 || filtered[0] != full[0] {
		t.Errorf("prefilter changed the top result: %+v vs %+v", filtered, full)
	}
	for i := range filtered {
		if filtered[i].ID != full[i].ID {
			t.Errorf("rank %d differs: %+v vs %+v", i, filtered[i], full[i])
		}
	}
}

func TestBulkInsert(t *testing.T) {
	db := New()
	gen := workload.NewGenerator(workload.Config{Seed: 9, Vocabulary: 30})
	items := make([]BulkItem, 25)
	for i := range items {
		items[i] = BulkItem{ID: fmt.Sprintf("bulk%02d", i), Name: "b", Image: gen.Scene()}
	}
	if err := db.BulkInsert(context.Background(), items, 8); err != nil {
		t.Fatalf("BulkInsert: %v", err)
	}
	if db.Len() != 25 {
		t.Fatalf("Len = %d", db.Len())
	}
	// Entries indexed identically to one-by-one insertion.
	for _, it := range items {
		e, ok := db.Get(it.ID)
		if !ok || !e.BE.Equal(core.MustConvert(it.Image)) {
			t.Errorf("entry %q missing or misindexed", it.ID)
		}
	}
	// Order preserved.
	ids := db.IDs()
	for i, it := range items {
		if ids[i] != it.ID {
			t.Errorf("order[%d] = %s, want %s", i, ids[i], it.ID)
		}
	}
}

func TestBulkInsertAllOrNothing(t *testing.T) {
	db := New()
	if err := db.Insert("existing", "", core.Figure1Image()); err != nil {
		t.Fatal(err)
	}
	items := []BulkItem{
		{ID: "new1", Image: core.Figure1Image()},
		{ID: "existing", Image: core.Figure1Image()}, // collides
	}
	if err := db.BulkInsert(context.Background(), items, 2); err == nil {
		t.Fatal("collision accepted")
	}
	if db.Len() != 1 {
		t.Errorf("partial bulk insert leaked entries: Len = %d", db.Len())
	}
	// Invalid image rejects the whole batch.
	items = []BulkItem{
		{ID: "ok", Image: core.Figure1Image()},
		{ID: "bad", Image: core.NewImage(5, 5)},
	}
	if err := db.BulkInsert(context.Background(), items, 2); err == nil {
		t.Fatal("invalid image accepted")
	}
	if db.Len() != 1 {
		t.Errorf("failed bulk insert leaked entries: Len = %d", db.Len())
	}
	// Duplicate ids within the batch.
	items = []BulkItem{
		{ID: "dup", Image: core.Figure1Image()},
		{ID: "dup", Image: core.Figure1Image()},
	}
	if err := db.BulkInsert(context.Background(), items, 2); err == nil {
		t.Fatal("in-batch duplicate accepted")
	}
	// Empty batch is a no-op.
	if err := db.BulkInsert(context.Background(), nil, 2); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestGobRoundTrip(t *testing.T) {
	db := New()
	gen := workload.NewGenerator(workload.Config{Seed: 3, Vocabulary: 20})
	for i := 0; i < 6; i++ {
		if err := db.Insert(fmt.Sprintf("g%d", i), "gob", gen.Scene()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.SaveGob(&buf); err != nil {
		t.Fatalf("SaveGob: %v", err)
	}
	loaded, err := LoadGob(&buf)
	if err != nil {
		t.Fatalf("LoadGob: %v", err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded %d, want %d", loaded.Len(), db.Len())
	}
	for _, id := range db.IDs() {
		a, _ := db.Get(id)
		b, ok := loaded.Get(id)
		if !ok || !a.BE.Equal(b.BE) {
			t.Errorf("entry %q differs after gob round trip", id)
		}
	}
	// Loaded DB has working secondary indexes.
	if hits := loaded.SearchRegion(core.NewRect(0, 0, 100, 100), ""); len(hits) == 0 {
		t.Error("gob-loaded db has empty spatial index")
	}
	if _, err := LoadGob(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage gob accepted")
	}
}
