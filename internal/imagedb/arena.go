package imagedb

import (
	"bestring/internal/core"
)

// This file implements the columnar arena layout for bulk-loaded
// segments (DESIGN.md section 12). The boxed layout allocates every
// stored entry — and its BE-string axes, object list and signature label
// slice — individually, so a million-scene corpus costs several million
// scattered heap objects that the scan-heavy stages (filter, bound,
// refine) then chase in random order. An entryArena instead packs one
// chunk's entries into a handful of contiguous backing slabs:
//
//	entries []stored       one slab, *stored pointers index into it
//	tokens  []core.Token   every entry's BE X and Y axes, back to back
//	objects []core.Object  every entry's object list
//	labels  []string       every signature's label slice
//	sigs    []core.Signature
//
// Each entry's slices are three-index subslices of the slabs (capacity
// pinned to length), so an append by any holder reallocates instead of
// bleeding into its neighbour. A sealed arena is immutable — exactly the
// contract the MVCC snapshots already demand of *stored — so arena
// entries slot into the COW shardView machinery unchanged: the maps and
// the scan column hold ordinary *stored pointers that happen to point
// into a slab, updates copy the touched entry out of the arena onto the
// heap (the existing replace-not-mutate rule), and deletes just drop the
// pointer. The slab stays reachable while any snapshot references any of
// its entries; for bulk-loaded segments that is the working set anyway.
//
// Pointer identity is preserved: &arena.entries[i] is as stable as a
// boxed allocation, so the scorer cache's (query, entry-pointer) version
// key works identically arena on or off.

// entryArena is one sealed columnar chunk of stored entries.
type entryArena struct {
	entries []stored
	tokens  []core.Token
	objects []core.Object
	labels  []string
	sigs    []core.Signature
}

// arenaItem is one entry to be packed: the identity, the source image,
// its converted BE-string, and optionally its precomputed signature
// (computed during build when nil). The image's objects are copied into
// the arena's slab, so the caller's image need not be pre-cloned.
type arenaItem struct {
	id, name string
	img      core.Image
	be       core.BEString
	sig      *core.Signature
}

// buildArena packs the items into one sealed arena. Two passes: size
// every slab exactly, then fill — the slabs never grow after a subslice
// is taken, which is what keeps all subslices aliased to one backing
// array each.
func buildArena(items []arenaItem) *entryArena {
	var nTok, nObj, nLab int
	for i := range items {
		if items[i].sig == nil {
			sig := core.SignatureOf(items[i].be)
			items[i].sig = &sig
		}
		nTok += len(items[i].be.X) + len(items[i].be.Y)
		nObj += len(items[i].img.Objects)
		nLab += len(items[i].sig.Labels)
	}
	a := &entryArena{
		entries: make([]stored, len(items)),
		tokens:  make([]core.Token, 0, nTok),
		objects: make([]core.Object, 0, nObj),
		labels:  make([]string, 0, nLab),
		sigs:    make([]core.Signature, len(items)),
	}
	for i := range items {
		it := &items[i]
		x := a.claimTokens(it.be.X)
		y := a.claimTokens(it.be.Y)

		start := len(a.objects)
		a.objects = append(a.objects, it.img.Objects...)
		objs := a.objects[start:len(a.objects):len(a.objects)]

		sig := *it.sig
		start = len(a.labels)
		a.labels = append(a.labels, sig.Labels...)
		sig.Labels = a.labels[start:len(a.labels):len(a.labels)]
		a.sigs[i] = sig

		a.entries[i] = stored{
			Entry: Entry{
				ID:    it.id,
				Name:  it.name,
				Image: core.Image{XMax: it.img.XMax, YMax: it.img.YMax, Objects: objs},
				BE:    core.BEString{X: x, Y: y},
			},
			sig: &a.sigs[i],
		}
	}
	return a
}

// claimTokens copies one axis into the token slab and returns its
// capacity-pinned subslice.
func (a *entryArena) claimTokens(axis core.Axis) core.Axis {
	start := len(a.tokens)
	a.tokens = append(a.tokens, axis...)
	return core.Axis(a.tokens[start:len(a.tokens):len(a.tokens)])
}

// pointers returns install-ready *stored pointers into the slab —
// sequence numbers unassigned, exactly like prepareBulk's boxed output.
func (a *entryArena) pointers() []*stored {
	sts := make([]*stored, len(a.entries))
	for i := range a.entries {
		sts[i] = &a.entries[i]
	}
	return sts
}

// SetArenaLayout switches the columnar arena layout for bulk-loaded
// segments on or off (on by default). Off means every bulk/import/load
// entry is boxed individually, as before the arena existed. Rankings are
// byte-identical either way (pinned by TestArenaRankingByteIdentical);
// the switch exists for benchmarking and for falling back should a
// workload prefer per-entry reclamation over slab locality. Takes effect
// for subsequent bulk operations; already-installed segments keep their
// layout.
func (db *DB) SetArenaLayout(on bool) { db.arenaOff.Store(!on) }

// ArenaLayout reports whether bulk-loaded segments use the columnar
// arena layout.
func (db *DB) ArenaLayout() bool { return !db.arenaOff.Load() }

// SetArenaLayout forwards DB.SetArenaLayout to the store's database:
// it governs how the store's bulk inserts, imports and snapshot loads
// lay entries out.
func (s *Store) SetArenaLayout(on bool) { s.db.SetArenaLayout(on) }

// ArenaLayout reports whether the store's bulk loads use the columnar
// arena layout.
func (s *Store) ArenaLayout() bool { return s.db.ArenaLayout() }
