package imagedb

import (
	"context"
	"fmt"
	"iter"
	"sort"

	"bestring/internal/core"
	"bestring/internal/rtree"
)

// This file is the MVCC core of the engine. Every read — Get, Len, the
// whole staged query pipeline — executes against a snapshot: one
// immutable version of the entire database (all shard maps, the inverted
// label indexes and the R-tree) published atomically with a monotonically
// increasing epoch. Writers serialise on DB.writeMu, build the next
// version copy-on-write (only the touched shard and the touched R-tree
// path are copied; everything else is shared by pointer) and publish it
// with a single atomic store. Readers therefore acquire no locks at all:
// they pin an epoch once (one atomic load) and traverse frozen data.
//
// Publish ordering is what makes torn reads impossible: a snapshot is
// fully constructed — maps populated, tree cloned, count and epoch set —
// before the atomic store, and is never mutated afterwards. The store
// is the release point; a reader's atomic load acquires it, so a reader
// either sees the previous complete version or the next complete
// version, never a mixture.

// snapshot is one immutable published version of the database. All
// fields are write-once: after publish, nothing reachable from a
// snapshot ever changes (stored entries are already copy-on-write).
type snapshot struct {
	epoch   uint64
	shards  []*shardView
	spatial *rtree.Tree
	count   int
}

// shardView is one partition of one version: the entries, this shard's
// slice of the inverted label index (icon label -> image ids), and the
// signature column (image id -> symbol signature) that feeds the
// filter-and-refine ranking stage. Signatures are derived data — a pure
// function of the entry's BE-string, computed once when the entry is
// installed, never logged or persisted, and rebuilt for free on
// recovery because recovery replays through the same install path.
type shardView struct {
	entries map[string]*stored
	labels  map[string]map[string]bool
	sigs    map[string]core.Signature
	// scan is the shard's scan column: the same *stored pointers as
	// entries, kept in insertion order in a plain slice. Full scans
	// (collect without a prefilter) walk it instead of the map, so
	// arena-backed segments — whose entries live in one contiguous slab in
	// insertion order — are visited cache-linearly rather than in random
	// map order. Maintained copy-on-write like the maps: the slice header
	// is copied on first touch, appends and removals act on the copy.
	scan []*stored
}

// emptySnapshot is version 1 of a fresh database. Epoch 0 is reserved to
// mean "no pinned epoch" in pagination cursors.
func emptySnapshot(nshards int) *snapshot {
	s := &snapshot{
		epoch:   1,
		shards:  make([]*shardView, nshards),
		spatial: rtree.New(rtree.DefaultMaxEntries),
	}
	for i := range s.shards {
		s.shards[i] = &shardView{
			entries: make(map[string]*stored),
			labels:  make(map[string]map[string]bool),
			sigs:    make(map[string]core.Signature),
		}
	}
	return s
}

// shardIndex routes an id to its partition (FNV-1a, inlined so the hot
// path of every Get/Insert/Delete stays allocation-free).
func shardIndex(id string, n int) int {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// shardFor returns the partition holding id in this version.
func (s *snapshot) shardFor(id string) *shardView {
	return s.shards[shardIndex(id, len(s.shards))]
}

// lookup finds the stored entry for id in this version.
func (s *snapshot) lookup(id string) (*stored, bool) {
	st, ok := s.shardFor(id).entries[id]
	return st, ok
}

// signature reads id's symbol signature from this version's signature
// column. Like every snapshot read it touches only frozen maps.
func (s *snapshot) signature(id string) (core.Signature, bool) {
	sig, ok := s.shardFor(id).sigs[id]
	return sig, ok
}

// collect gathers this version's entries, optionally pruned to images
// sharing at least one of the given icon labels (the inverted-index
// narrowing stage). Slice order is arbitrary; callers that need
// determinism sort afterwards. No locks: the version is frozen.
func (s *snapshot) collect(labels []string, prefilter bool) []*stored {
	out := make([]*stored, 0, 64)
	for _, sv := range s.shards {
		if prefilter {
			cand := make(map[string]bool)
			for _, label := range labels {
				for id := range sv.labels[label] {
					cand[id] = true
				}
			}
			for id := range cand {
				out = append(out, sv.entries[id])
			}
		} else {
			out = append(out, sv.scan...)
		}
	}
	return out
}

// orderedIDsMatching returns the ids accepted by keep (nil keeps all),
// sorted by global insertion sequence.
func (s *snapshot) orderedIDsMatching(keep func(sv *shardView, id string) bool) []string {
	type idSeq struct {
		id  string
		seq uint64
	}
	all := make([]idSeq, 0, 64)
	for _, sv := range s.shards {
		for id, st := range sv.entries {
			if keep == nil || keep(sv, id) {
				all = append(all, idSeq{id, st.seq})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]string, len(all))
	for i, v := range all {
		out[i] = v.id
	}
	return out
}

// orderedEntries returns this version's entries sorted by insertion
// sequence — the persistence iteration order. The Entry values share
// their images and BE-strings with the (immutable) stored entries, so
// they are safe to encode but must not be handed to callers who mutate.
func (s *snapshot) orderedEntries() []Entry {
	type entrySeq struct {
		e   Entry
		seq uint64
	}
	all := make([]entrySeq, 0, s.count)
	for _, sv := range s.shards {
		for _, st := range sv.entries {
			all = append(all, entrySeq{st.Entry, st.seq})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]Entry, len(all))
	for i, v := range all {
		out[i] = v.e
	}
	return out
}

// stats reports occupancy of this version.
func (s *snapshot) stats() Stats {
	st := Stats{Epoch: s.epoch, Shards: len(s.shards), PerShard: make([]int, len(s.shards))}
	for i, sv := range s.shards {
		st.PerShard[i] = len(sv.entries)
		st.Images += st.PerShard[i]
	}
	return st
}

// txn builds the next version of the database copy-on-write. Callers
// hold DB.writeMu; nothing here is safe concurrently. Only the shards
// actually touched are copied (entries map plus the outer label map;
// inner label sets copy lazily on first touch), and the R-tree clones
// lazily with path copying — untouched structure is shared with the
// base version and every older retained one.
type txn struct {
	base   *snapshot
	shards []*shardView
	dirty  []bool
	// fresh tracks, per dirty shard, the label sets already copied during
	// this mutation, so a bulk batch touching one label many times pays
	// the inner-set copy once.
	fresh   []map[string]bool
	spatial *rtree.Tree // nil until the first spatial change
	count   int
}

func beginTxn(base *snapshot) *txn {
	return &txn{
		base:   base,
		shards: append([]*shardView(nil), base.shards...),
		dirty:  make([]bool, len(base.shards)),
		fresh:  make([]map[string]bool, len(base.shards)),
		count:  base.count,
	}
}

// shard returns a writable view of partition idx, copying it from the
// base version on first touch.
func (m *txn) shard(idx int) *shardView {
	if !m.dirty[idx] {
		src := m.shards[idx]
		sv := &shardView{
			entries: make(map[string]*stored, len(src.entries)+1),
			labels:  make(map[string]map[string]bool, len(src.labels)),
			sigs:    make(map[string]core.Signature, len(src.sigs)+1),
		}
		for k, v := range src.entries {
			sv.entries[k] = v
		}
		for k, v := range src.labels {
			sv.labels[k] = v
		}
		for k, v := range src.sigs {
			sv.sigs[k] = v
		}
		sv.scan = append(make([]*stored, 0, len(src.scan)+1), src.scan...)
		m.shards[idx] = sv
		m.dirty[idx] = true
		m.fresh[idx] = make(map[string]bool)
	}
	return m.shards[idx]
}

// tree returns the writable R-tree for this mutation, cloning the base
// version's tree (O(1); mutations then path-copy) on first touch.
func (m *txn) tree() *rtree.Tree {
	if m.spatial == nil {
		m.spatial = m.base.spatial.Clone()
	}
	return m.spatial
}

// indexLabel registers id under label in shard idx, copying the inner
// set if this mutation does not own it yet.
func (m *txn) indexLabel(idx int, sv *shardView, label, id string) {
	ids := sv.labels[label]
	switch {
	case ids == nil:
		ids = make(map[string]bool, 1)
	case !m.fresh[idx][label]:
		c := make(map[string]bool, len(ids)+1)
		for k := range ids {
			c[k] = true
		}
		ids = c
	}
	ids[id] = true
	sv.labels[label] = ids
	m.fresh[idx][label] = true
}

// unindexLabel removes id from label's set in shard idx, with the same
// copy-on-first-touch rule; an emptied set is dropped from the index.
func (m *txn) unindexLabel(idx int, sv *shardView, label, id string) {
	ids := sv.labels[label]
	if ids == nil {
		return
	}
	if !m.fresh[idx][label] {
		c := make(map[string]bool, len(ids))
		for k := range ids {
			c[k] = true
		}
		ids = c
		sv.labels[label] = c
		m.fresh[idx][label] = true
	}
	delete(ids, id)
	if len(ids) == 0 {
		delete(sv.labels, label)
	}
}

// add installs a new stored entry (id must not exist in the base),
// populating the signature column from the entry's precomputed
// signature. When the caller did not precompute one outside the writer
// lock, the signature is derived here — once — and memoised on the
// entry, so no later read (the refine stage's bound checks in
// particular) ever re-derives it. st is not yet published, so writing
// st.sig is safe.
func (m *txn) add(st *stored) {
	idx := shardIndex(st.ID, len(m.shards))
	sv := m.shard(idx)
	sv.entries[st.ID] = st
	if st.sig == nil {
		sig := core.SignatureOf(st.BE)
		st.sig = &sig
	}
	sv.sigs[st.ID] = *st.sig
	sv.scan = append(sv.scan, st)
	t := m.tree()
	for _, o := range st.Image.Objects {
		m.indexLabel(idx, sv, o.Label, st.ID)
		t.Insert(spatialID(st.ID, o.Label), o.Box)
	}
	m.count++
}

// remove uninstalls a stored entry present in the base.
func (m *txn) remove(st *stored) {
	idx := shardIndex(st.ID, len(m.shards))
	sv := m.shard(idx)
	delete(sv.entries, st.ID)
	delete(sv.sigs, st.ID)
	for i, cur := range sv.scan {
		if cur == st {
			sv.scan = append(sv.scan[:i], sv.scan[i+1:]...)
			break
		}
	}
	t := m.tree()
	for _, o := range st.Image.Objects {
		m.unindexLabel(idx, sv, o.Label, st.ID)
		t.Delete(spatialID(st.ID, o.Label), o.Box)
	}
	m.count--
}

// replace swaps old for next under the same id (an object-level update;
// the insertion sequence is preserved by the caller). The signature
// column entry is recomputed with the new BE-string.
func (m *txn) replace(old, next *stored) {
	idx := shardIndex(old.ID, len(m.shards))
	sv := m.shard(idx)
	t := m.tree()
	for _, o := range old.Image.Objects {
		m.unindexLabel(idx, sv, o.Label, old.ID)
		t.Delete(spatialID(old.ID, o.Label), o.Box)
	}
	sv.entries[next.ID] = next
	if next.sig == nil {
		sig := core.SignatureOf(next.BE)
		next.sig = &sig
	}
	sv.sigs[next.ID] = *next.sig
	for i, cur := range sv.scan {
		if cur == old {
			sv.scan[i] = next
			break
		}
	}
	for _, o := range next.Image.Objects {
		m.indexLabel(idx, sv, o.Label, next.ID)
		t.Insert(spatialID(next.ID, o.Label), o.Box)
	}
}

// build seals the mutation into the next version.
func (m *txn) build() *snapshot {
	spatial := m.spatial
	if spatial == nil {
		spatial = m.base.spatial
	}
	return &snapshot{
		epoch:   m.base.epoch + 1,
		shards:  m.shards,
		spatial: spatial,
		count:   m.count,
	}
}

// epochList is the immutable ring of recently published versions,
// ascending by epoch, swapped whole on publish. It is what lets a
// pagination cursor carried by a client re-pin the exact version its
// first page ran against.
type epochList struct {
	snaps []*snapshot
}

// DefaultSnapshotRetention is how many recent versions a DB keeps
// resolvable for cursor re-pinning. Retained versions share almost all
// structure (copy-on-write), so the cost is the per-mutation deltas, not
// full copies. Tune with SetSnapshotRetention.
const DefaultSnapshotRetention = 32

// publish installs the mutation's version as current and retains it in
// the epoch ring. Callers hold db.writeMu. The ring is stored before the
// current pointer, so any epoch observable via current is resolvable.
func (db *DB) publish(m *txn) {
	next := m.build()
	retain := db.retain
	if retain > 0 {
		var snaps []*snapshot
		if old := db.history.Load(); old != nil {
			snaps = old.snaps
		}
		keep := len(snaps) + 1 - retain
		if keep < 0 {
			keep = 0
		}
		db.history.Store(&epochList{
			snaps: append(append(make([]*snapshot, 0, len(snaps)-keep+1), snaps[keep:]...), next),
		})
	}
	db.current.Store(next)
}

// findEpoch resolves a retained version by epoch (nil when it has aged
// out of the ring). Lock-free: one or two atomic loads plus a scan of
// the immutable ring.
func (db *DB) findEpoch(e uint64) *snapshot {
	if cur := db.current.Load(); cur.epoch == e {
		return cur
	}
	h := db.history.Load()
	if h == nil {
		return nil
	}
	for i := len(h.snaps) - 1; i >= 0; i-- {
		if h.snaps[i].epoch == e {
			return h.snaps[i]
		}
	}
	return nil
}

// SetSnapshotRetention sets how many recent versions stay resolvable for
// cursor re-pinning (minimum 1 — the current version; the default is
// DefaultSnapshotRetention). A paginated query whose cursor epoch has
// aged out falls back to the current version: the cursor's admission
// rule still guarantees no result is delivered twice, but entries
// written since the first page may shift what the remaining pages hold.
func (db *DB) SetSnapshotRetention(n int) {
	if n < 1 {
		n = 1
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.retain = n
	if h := db.history.Load(); h != nil && len(h.snaps) > n {
		db.history.Store(&epochList{
			snaps: append([]*snapshot(nil), h.snaps[len(h.snaps)-n:]...),
		})
	}
}

// Snapshot is a pinned, immutable view of the database at one epoch.
// Every method reads frozen data without acquiring any lock, and the
// view never changes however many writers run concurrently: queries,
// pagination and iteration against one Snapshot are perfectly repeatable.
// A Snapshot is cheap (one atomic load; the data is shared, not copied)
// and needs no release — dropping it frees nothing earlier and leaks
// nothing later.
type Snapshot struct {
	snap *snapshot
	// db links back to the minting DB for the scorer cache and planner
	// statistics. Queries on the Snapshot use them (both are
	// version-safe: cache keys carry the entry version), but their
	// counters are not folded into DB.Stats — a Snapshot may outlive the
	// handle that minted it.
	db *DB
}

// Snapshot pins the current version of the database.
func (db *DB) Snapshot() *Snapshot {
	return &Snapshot{snap: db.current.Load(), db: db}
}

// Epoch identifies this version; it increases by one per published
// mutation.
func (sn *Snapshot) Epoch() uint64 { return sn.snap.epoch }

// Len returns the number of images in this version.
func (sn *Snapshot) Len() int { return sn.snap.count }

// Has reports whether id is stored in this version.
func (sn *Snapshot) Has(id string) bool {
	_, ok := sn.snap.lookup(id)
	return ok
}

// Get returns a copy of the entry with the given id in this version.
func (sn *Snapshot) Get(id string) (Entry, bool) {
	st, ok := sn.snap.lookup(id)
	if !ok {
		return Entry{}, false
	}
	return copyEntry(&st.Entry), true
}

// IDs returns this version's ids in insertion order.
func (sn *Snapshot) IDs() []string { return sn.snap.orderedIDsMatching(nil) }

// Stats reports shard occupancy of this version.
func (sn *Snapshot) Stats() Stats { return sn.snap.stats() }

// Query executes a composed query against this version (see DB.Query).
// Cursors minted by a Snapshot page resume on this same version
// regardless of retention, because the caller still holds it.
func (sn *Snapshot) Query(ctx context.Context, q *Query, opts ...QueryOption) (*Page, error) {
	spec := q.clone().apply(opts)
	if spec.err != nil {
		return nil, fmt.Errorf("query: %w", spec.err)
	}
	cur, err := spec.decodedCursor()
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	page, err := executeOn(ctx, sn.db, sn.snap, spec, cur)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	return page, nil
}

// QueryIter streams the query's results from this version in ranking
// order (see DB.QueryIter).
func (sn *Snapshot) QueryIter(ctx context.Context, q *Query, opts ...QueryOption) iter.Seq2[Hit, error] {
	spec := q.clone().apply(opts)
	return func(yield func(Hit, error) bool) {
		cur, err := spec.decodedCursor()
		if err != nil {
			yield(Hit{}, fmt.Errorf("query: %w", err))
			return
		}
		iterOn(ctx, sn.db, sn.snap, spec, cur, nil)(yield)
	}
}
