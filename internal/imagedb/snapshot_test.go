package imagedb

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"bestring/internal/core"
	"bestring/internal/workload"
)

// seedSnapshotDB builds a deterministic corpus of n scenes.
func seedSnapshotDB(t testing.TB, shards, n int) (*DB, []core.Image) {
	t.Helper()
	db := NewSharded(shards)
	g := workload.NewGenerator(workload.Config{Seed: 99, Vocabulary: 16, Objects: 6})
	scenes := g.Dataset(n)
	items := make([]BulkItem, n)
	for i, s := range scenes {
		items[i] = BulkItem{ID: fmt.Sprintf("img%04d", i), Name: fmt.Sprintf("scene %d", i), Image: s}
	}
	if err := db.BulkInsert(context.Background(), items, 0); err != nil {
		t.Fatalf("seed: %v", err)
	}
	return db, scenes
}

// TestSnapshotIsolation pins the MVCC contract: a pinned Snapshot never
// observes later mutations — not in Len, Get, IDs, region probes or
// ranked queries — while the DB itself does.
func TestSnapshotIsolation(t *testing.T) {
	ctx := context.Background()
	db, scenes := seedSnapshotDB(t, 4, 40)
	query := scenes[7]

	sn := db.Snapshot()
	epoch := sn.Epoch()
	before, err := sn.Query(ctx, NewQuery(query), WithK(0))
	if err != nil {
		t.Fatalf("snapshot query: %v", err)
	}
	beforeIDs := sn.IDs()

	// Mutate heavily: deletes, inserts, object updates.
	for i := 0; i < 10; i++ {
		if err := db.Delete(fmt.Sprintf("img%04d", i)); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	if err := db.Insert("fresh", "", scenes[3]); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := db.InsertObject("img0020", core.Object{Label: "added", Box: core.NewRect(0, 0, 1, 1)}); err != nil {
		t.Fatalf("insert object: %v", err)
	}

	if got := sn.Epoch(); got != epoch {
		t.Fatalf("pinned epoch moved: %d -> %d", epoch, got)
	}
	if sn.Len() != 40 {
		t.Fatalf("snapshot Len = %d, want 40", sn.Len())
	}
	if db.Len() != 31 {
		t.Fatalf("db Len = %d, want 31", db.Len())
	}
	if !sn.Has("img0003") {
		t.Fatal("snapshot lost a deleted entry")
	}
	if sn.Has("fresh") {
		t.Fatal("snapshot sees an entry inserted after the pin")
	}
	if e, ok := sn.Get("img0020"); !ok || len(e.Image.Objects) != len(scenes[20].Objects) {
		t.Fatal("snapshot sees the object update")
	}
	after, err := sn.Query(ctx, NewQuery(query), WithK(0))
	if err != nil {
		t.Fatalf("snapshot query after mutations: %v", err)
	}
	hitsEqual(t, "snapshot query repeatability", after.Hits, before.Hits)
	if got := sn.IDs(); len(got) != len(beforeIDs) {
		t.Fatalf("snapshot IDs changed: %d -> %d", len(beforeIDs), len(got))
	}
	if db.Epoch() <= epoch {
		t.Fatalf("db epoch %d did not advance past %d", db.Epoch(), epoch)
	}
}

// TestEpochMonotonic pins the version-numbering contract: every mutation
// publishes exactly one new epoch (a bulk batch is one), and failed
// mutations publish nothing.
func TestEpochMonotonic(t *testing.T) {
	db := New()
	g := workload.NewGenerator(workload.Config{Seed: 3, Vocabulary: 8, Objects: 4})
	e0 := db.Epoch()
	if e0 == 0 {
		t.Fatal("epoch 0 is reserved for unpinned cursors")
	}
	if err := db.Insert("a", "", g.Scene()); err != nil {
		t.Fatal(err)
	}
	if got := db.Epoch(); got != e0+1 {
		t.Fatalf("after insert: epoch %d, want %d", got, e0+1)
	}
	items := []BulkItem{{ID: "b", Image: g.Scene()}, {ID: "c", Image: g.Scene()}}
	if err := db.BulkInsert(context.Background(), items, 0); err != nil {
		t.Fatal(err)
	}
	if got := db.Epoch(); got != e0+2 {
		t.Fatalf("after bulk: epoch %d, want %d (one bump per batch)", got, e0+2)
	}
	if err := db.Insert("a", "", g.Scene()); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if err := db.Delete("nope"); err == nil {
		t.Fatal("missing delete succeeded")
	}
	if got := db.Epoch(); got != e0+2 {
		t.Fatalf("failed mutations moved the epoch: %d, want %d", got, e0+2)
	}
}

// TestQueryProceedsWhileWriterLockHeld pins the lock-freedom of the read
// path structurally: a query must complete while the writer mutex is
// held, which was impossible under the old per-shard RWMutex design.
func TestQueryProceedsWhileWriterLockHeld(t *testing.T) {
	db, scenes := seedSnapshotDB(t, 4, 30)
	db.writeMu.Lock()
	defer db.writeMu.Unlock()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		page, err := db.Query(ctx, NewQuery(scenes[0]), WithK(5))
		if err == nil && len(page.Hits) == 0 {
			err = fmt.Errorf("no hits")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("query under held writer lock: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query blocked on the writer lock")
	}
}

// TestCursorPinsEpochUnderChurn is the race-stress test of the
// pagination contract: while writers continuously BulkInsert and Delete,
// a paginated query walked page by page through DB.Query (cursors only —
// each page request resolves the pinned epoch from the retained ring)
// must deliver exactly the pinned version's ranking: no skips, no
// duplicates, no entries from other versions. Run under -race in CI.
func TestCursorPinsEpochUnderChurn(t *testing.T) {
	ctx := context.Background()
	db, scenes := seedSnapshotDB(t, 8, 120)
	db.SetSnapshotRetention(4096) // churn must not evict the pinned epoch
	query := scenes[11]

	// The reference: the full ranking of the pinned version.
	sn := db.Snapshot()
	full, err := sn.Query(ctx, NewQuery(query), WithK(0))
	if err != nil {
		t.Fatalf("reference query: %v", err)
	}
	if len(full.Hits) != 120 {
		t.Fatalf("reference has %d hits, want 120", len(full.Hits))
	}

	// Churn: two bulk-writers and one deleter, running for the whole
	// pagination walk.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	g := workload.NewGenerator(workload.Config{Seed: 1234, Vocabulary: 16, Objects: 6})
	churnScene := g.Scene()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				items := []BulkItem{
					{ID: fmt.Sprintf("churn-%d-%d-a", w, i), Image: churnScene},
					{ID: fmt.Sprintf("churn-%d-%d-b", w, i), Image: churnScene},
				}
				if err := db.BulkInsert(ctx, items, 1); err != nil {
					t.Errorf("churn bulk: %v", err)
					return
				}
				for _, it := range items {
					if err := db.Delete(it.ID); err != nil {
						t.Errorf("churn delete: %v", err)
						return
					}
				}
			}
		}(w)
	}

	// Walk the ranking in pages of 7, starting from the pinned snapshot
	// and resuming through DB.Query with cursors only.
	var walked []Hit
	page, err := sn.Query(ctx, NewQuery(query), WithK(7))
	if err != nil {
		t.Fatalf("page 1: %v", err)
	}
	walked = append(walked, page.Hits...)
	for page.NextCursor != "" {
		page, err = db.Query(ctx, NewQuery(query), WithK(7), WithCursor(page.NextCursor))
		if err != nil {
			t.Fatalf("page %d: %v", len(walked)/7+1, err)
		}
		if page.Epoch != sn.Epoch() {
			t.Fatalf("page ran on epoch %d, want pinned %d", page.Epoch, sn.Epoch())
		}
		walked = append(walked, page.Hits...)
		if len(walked) > len(full.Hits) {
			break
		}
	}
	close(stop)
	wg.Wait()

	hitsEqual(t, "paginated walk vs pinned reference", walked, full.Hits)

	// And the iterator: started from a cursor of the pinned version, it
	// must stream the exact remainder of that version's ranking.
	var streamed []Hit
	first, err := sn.Query(ctx, NewQuery(query), WithK(5))
	if err != nil {
		t.Fatalf("iter seed page: %v", err)
	}
	for h, err := range db.QueryIter(ctx, NewQuery(query), WithCursor(first.NextCursor)) {
		if err != nil {
			t.Fatalf("iter: %v", err)
		}
		streamed = append(streamed, h)
	}
	hitsEqual(t, "iterator tail vs pinned reference", streamed, full.Hits[5:])
}

// TestCursorFallbackAfterEviction pins the degraded mode: when the
// cursor's epoch has aged out of the retention ring, pagination falls
// back to the current version — pages may shift, but a result already
// delivered can never reappear.
func TestCursorFallbackAfterEviction(t *testing.T) {
	ctx := context.Background()
	db, scenes := seedSnapshotDB(t, 4, 30)
	db.SetSnapshotRetention(1)
	query := scenes[4]

	page1, err := db.Query(ctx, NewQuery(query), WithK(10))
	if err != nil {
		t.Fatal(err)
	}
	// Age the epoch out of the ring.
	g := workload.NewGenerator(workload.Config{Seed: 77, Vocabulary: 16, Objects: 6})
	for i := 0; i < 5; i++ {
		if err := db.Insert(fmt.Sprintf("late%d", i), "", g.Scene()); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[string]bool, len(page1.Hits))
	for _, h := range page1.Hits {
		seen[h.ID] = true
	}
	page2, err := db.Query(ctx, NewQuery(query), WithK(1000), WithCursor(page1.NextCursor))
	if err != nil {
		t.Fatal(err)
	}
	if page2.Epoch == page1.Epoch {
		t.Fatalf("evicted epoch %d still served", page1.Epoch)
	}
	for _, h := range page2.Hits {
		if seen[h.ID] {
			t.Fatalf("result %s delivered twice across the fallback", h.ID)
		}
	}
}

// TestQueryIterCancelNoLeak pins iterator hygiene: cancelling the
// context mid-stream stops the sequence promptly with a context error,
// and no scoring goroutine outlives the iteration.
func TestQueryIterCancelNoLeak(t *testing.T) {
	db, scenes := seedSnapshotDB(t, 4, 600)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	yielded := 0
	var sawErr error
	for h, err := range db.QueryIter(ctx, NewQuery(scenes[2]), WithParallelism(4)) {
		if err != nil {
			sawErr = err
			break
		}
		_ = h
		yielded++
		if yielded == 10 {
			cancel()
		}
		if yielded > 2*iterBatch {
			t.Fatalf("iterator kept streaming after cancel: %d hits", yielded)
		}
	}
	cancel()
	if sawErr == nil {
		t.Fatal("cancelled iteration ended without an error")
	}
	if yielded > iterBatch {
		t.Fatalf("iterator delivered %d hits after a cancel at 10", yielded)
	}

	// All scoring workers must wind down; allow the runtime a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSnapshotQueryIterConsistent pins Snapshot.QueryIter: the stream
// equals the one-shot ranking of the same pinned version even when the
// store mutates between batches (forced by a tiny K so multiple execute
// rounds happen).
func TestSnapshotQueryIterConsistent(t *testing.T) {
	ctx := context.Background()
	db, scenes := seedSnapshotDB(t, 4, 50)
	sn := db.Snapshot()
	full, err := sn.Query(ctx, NewQuery(scenes[9]), WithK(0))
	if err != nil {
		t.Fatal(err)
	}
	// Mutate between pinning and iterating.
	if err := db.Delete("img0000"); err != nil {
		t.Fatal(err)
	}
	var streamed []Hit
	for h, err := range sn.QueryIter(ctx, NewQuery(scenes[9])) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, h)
	}
	hitsEqual(t, "snapshot iterator vs one-shot", streamed, full.Hits)
}

// TestSnapshotRetentionBounds pins the ring arithmetic: the ring never
// holds more than the configured number of versions and shrinking it
// takes effect immediately.
func TestSnapshotRetentionBounds(t *testing.T) {
	db := New()
	db.SetSnapshotRetention(3)
	g := workload.NewGenerator(workload.Config{Seed: 8, Vocabulary: 8, Objects: 4})
	for i := 0; i < 10; i++ {
		if err := db.Insert(fmt.Sprintf("r%d", i), "", g.Scene()); err != nil {
			t.Fatal(err)
		}
	}
	h := db.history.Load()
	if len(h.snaps) > 3 {
		t.Fatalf("ring holds %d versions, want <= 3", len(h.snaps))
	}
	cur := db.Epoch()
	if db.findEpoch(cur) == nil {
		t.Fatal("current epoch not resolvable")
	}
	if db.findEpoch(cur-2) == nil {
		t.Fatal("epoch within retention not resolvable")
	}
	if db.findEpoch(cur-5) != nil {
		t.Fatal("epoch beyond retention still resolvable")
	}
	db.SetSnapshotRetention(1)
	if h := db.history.Load(); len(h.snaps) > 1 {
		t.Fatalf("shrink did not trim the ring: %d versions", len(h.snaps))
	}
}
