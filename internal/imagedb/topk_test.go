package imagedb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"bestring/internal/core"
	"bestring/internal/workload"
)

func TestTopKKeepsBestK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all []Result
	h := newTopK(5)
	for i := 0; i < 200; i++ {
		r := Result{ID: fmt.Sprintf("id%03d", i), Score: float64(rng.Intn(40)) / 40}
		all = append(all, r)
		h.add(r)
	}
	sortResults(all)
	want := all[:5]
	got := make([]Result, len(h.items))
	copy(got, h.items)
	sortResults(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heap kept %+v at %d, want %+v", got[i], i, want[i])
		}
	}
}

func TestTopKTieBreaksByID(t *testing.T) {
	h := newTopK(2)
	for _, id := range []string{"c", "a", "d", "b"} {
		h.add(Result{ID: id, Score: 0.5})
	}
	got := make([]Result, len(h.items))
	copy(got, h.items)
	sortResults(got)
	if got[0].ID != "a" || got[1].ID != "b" {
		t.Errorf("tied top-2 = %v, want ids a, b", got)
	}
}

func TestTopKUnboundedWhenKZero(t *testing.T) {
	h := newTopK(0)
	for i := 0; i < 50; i++ {
		h.add(Result{ID: fmt.Sprintf("id%02d", i), Score: float64(i)})
	}
	if len(h.items) != 50 {
		t.Errorf("unbounded heap kept %d, want all 50", len(h.items))
	}
}

// seedSharded fills a database with the given shard count.
func seedSharded(t *testing.T, shards, n int) (*DB, []core.Image) {
	t.Helper()
	db := NewSharded(shards)
	g := workload.NewGenerator(workload.Config{Seed: 11, Vocabulary: 24})
	scenes := g.Dataset(n)
	for i, s := range scenes {
		if err := db.Insert(fmt.Sprintf("img%03d", i), fmt.Sprintf("scene %d", i), s); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return db, scenes
}

// referenceSearch is the seed engine's semantics, reimplemented serially:
// score every candidate, sort everything, filter, truncate.
func referenceSearch(db *DB, query core.Image, opts SearchOptions) []Result {
	queryBE := core.MustConvert(query)
	scorer := opts.Scorer
	if scorer == nil {
		scorer = BEScorer()
	}
	var all []Result
	for _, id := range db.IDs() {
		e, _ := db.Get(id)
		score := scorer(query, queryBE, e)
		if score < opts.MinScore {
			continue
		}
		all = append(all, Result{ID: e.ID, Name: e.Name, Score: score})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if opts.K > 0 && len(all) > opts.K {
		all = all[:opts.K]
	}
	return all
}

// TestSearchMatchesFullSortReference is the engine-equivalence guarantee:
// for the same (query, K, MinScore) the heap-merged ranking must be
// byte-identical to the score-everything-then-sort reference, whatever the
// shard count or worker parallelism.
func TestSearchMatchesFullSortReference(t *testing.T) {
	g := workload.NewGenerator(workload.Config{Seed: 31, Vocabulary: 20})
	queries := []core.Image{g.Scene(), g.SubsetQuery(g.Scene(), 3)}
	for _, shards := range []int{1, 3, 8} {
		db, scenes := seedSharded(t, shards, 40)
		queries = append(queries, scenes[7])
		for _, q := range queries {
			for _, opts := range []SearchOptions{
				{},
				{K: 1},
				{K: 5},
				{K: 40},
				{K: 1000},
				{K: 5, MinScore: 0.4},
				{MinScore: 0.4},
				{K: 3, Parallelism: 1},
				{K: 3, Parallelism: 2},
				{K: 3, Parallelism: 16},
				{K: 5, LabelPrefilter: true},
			} {
				got, err := db.Search(context.Background(), q, opts)
				if err != nil {
					t.Fatalf("shards=%d opts=%+v: %v", shards, opts, err)
				}
				want := referenceSearch(db, q, opts)
				if opts.LabelPrefilter {
					// The reference scores everything; the prefiltered top-K
					// must still lead it identically when K results survive.
					if len(got) > len(want) {
						t.Fatalf("shards=%d prefilter returned more than reference", shards)
					}
					want = want[:len(got)]
				}
				if len(got) != len(want) {
					t.Fatalf("shards=%d opts=%+v: got %d results, want %d",
						shards, opts, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("shards=%d opts=%+v: result %d = %+v, want %+v",
							shards, opts, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestSearchMinScoreBoundaryKept(t *testing.T) {
	db := New()
	img := core.Figure1Image()
	if err := db.Insert("exact", "", img); err != nil {
		t.Fatal(err)
	}
	// A result scoring exactly MinScore is kept (filter is strictly-below).
	results, err := db.Search(context.Background(), img, SearchOptions{K: 5, MinScore: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != "exact" || results[0].Score != 1 {
		t.Errorf("boundary results = %+v, want exact @ 1.0", results)
	}
	results, err = db.Search(context.Background(), img, SearchOptions{K: 5, MinScore: 1.0000001})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("above-boundary results = %+v, want none", results)
	}
}

func TestSearchKLargerThanCorpus(t *testing.T) {
	db, scenes := seedSharded(t, 4, 6)
	results, err := db.Search(context.Background(), scenes[0], SearchOptions{K: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Errorf("K=500 over 6 images returned %d results", len(results))
	}
}

func TestSearchAllTiedResultsOrderByID(t *testing.T) {
	db := NewSharded(4)
	img := core.Figure1Image()
	// Identical images under shuffled ids: every score ties at 1.0, so the
	// ranking must be pure ascending id whatever shard each lands on.
	for _, id := range []string{"m", "c", "z", "a", "q", "f"} {
		if err := db.Insert(id, "", img); err != nil {
			t.Fatal(err)
		}
	}
	results, err := db.Search(context.Background(), img, SearchOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "c", "f", "m"}
	for i, r := range results {
		if r.ID != want[i] || r.Score != 1 {
			t.Fatalf("tied results = %+v, want ids %v all @ 1.0", results, want)
		}
	}
}

func TestSearchCancelledMidShard(t *testing.T) {
	db, scenes := seedSharded(t, 4, 60)
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	// The scorer trips cancellation partway through the corpus, while
	// workers are mid-shard; the search must report the context error.
	scorer := func(q core.Image, qbe core.BEString, e Entry) float64 {
		if calls.Add(1) == 5 {
			cancel()
		}
		return BEScorer()(q, qbe, e)
	}
	_, err := db.Search(ctx, scenes[0], SearchOptions{K: 3, Scorer: scorer, Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestStatsAndShardCount(t *testing.T) {
	db, _ := seedSharded(t, 5, 23)
	if db.ShardCount() != 5 {
		t.Fatalf("ShardCount = %d, want 5", db.ShardCount())
	}
	s := db.Stats()
	if s.Shards != 5 || s.Images != 23 || len(s.PerShard) != 5 {
		t.Fatalf("Stats = %+v", s)
	}
	total := 0
	for _, n := range s.PerShard {
		total += n
	}
	if total != 23 {
		t.Errorf("per-shard counts sum to %d, want 23", total)
	}
}

func TestBulkInsertAtomicAcrossShards(t *testing.T) {
	db := NewSharded(3)
	g := workload.NewGenerator(workload.Config{Seed: 3, Vocabulary: 12})
	if err := db.Insert("taken", "", g.Scene()); err != nil {
		t.Fatal(err)
	}
	items := []BulkItem{
		{ID: "a", Image: g.Scene()},
		{ID: "taken", Image: g.Scene()}, // collides with the existing entry
		{ID: "b", Image: g.Scene()},
	}
	if err := db.BulkInsert(context.Background(), items, 2); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	if db.Len() != 1 {
		t.Errorf("failed bulk insert left %d entries, want 1", db.Len())
	}
	ok := []BulkItem{
		{ID: "a", Image: g.Scene()},
		{ID: "b", Image: g.Scene()},
		{ID: "c", Image: g.Scene()},
	}
	if err := db.BulkInsert(context.Background(), ok, 2); err != nil {
		t.Fatal(err)
	}
	want := []string{"taken", "a", "b", "c"}
	got := db.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v (insertion order across shards)", got, want)
		}
	}
}

func TestInsertionOrderSurvivesShardingAndReload(t *testing.T) {
	db, _ := seedSharded(t, 7, 12)
	ids := db.IDs()
	for i, id := range ids {
		if want := fmt.Sprintf("img%03d", i); id != want {
			t.Fatalf("ids[%d] = %q, want %q", i, id, want)
		}
	}
	if err := db.Delete("img005"); err != nil {
		t.Fatal(err)
	}
	ids = db.IDs()
	if len(ids) != 11 || ids[5] != "img006" {
		t.Errorf("order after delete = %v", ids)
	}
}

// TestConcurrentUpdateAndSearch pins the copy-on-write invariant: search
// workers read snapshot entries outside any lock, so in-place object
// updates must replace the stored entry, never mutate it. Run under
// -race this fails if updateImage writes a published entry.
func TestConcurrentUpdateAndSearch(t *testing.T) {
	db, scenes := seedSharded(t, 4, 16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			id := fmt.Sprintf("img%03d", i%16)
			extra := core.Object{Label: fmt.Sprintf("xtra%d", i), Box: core.NewRect(0, 0, 1, 1)}
			if err := db.InsertObject(id, extra); err != nil {
				t.Errorf("InsertObject: %v", err)
				return
			}
			if err := db.DeleteObject(id, extra.Label); err != nil {
				t.Errorf("DeleteObject: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 30; i++ {
		if _, err := db.Search(context.Background(), scenes[i%16], SearchOptions{K: 3, Parallelism: 2}); err != nil {
			t.Fatalf("Search: %v", err)
		}
		db.SearchRegion(core.NewRect(0, 0, 40, 40), "")
	}
	<-done
}
