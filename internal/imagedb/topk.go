package imagedb

// topK accumulates candidate results during a search. With k > 0 it is a
// bounded min-heap over the result order (score descending, id ascending
// on ties): the root is the worst result kept, so admitting a better
// candidate is one root replacement and an O(log k) sift. Capacity is
// allocated once, so a search over n entries costs O(n log k) time and
// O(k) space per worker instead of the O(n log n) time and O(n) space of
// scoring everything and sorting. With k <= 0 it degrades to an unbounded
// append buffer (the "return everything" path still needs all results).
type topK struct {
	k     int
	items []Result
}

func newTopK(k int) *topK {
	if k > 0 {
		return &topK{k: k, items: make([]Result, 0, k)}
	}
	return &topK{}
}

// full reports whether the heap has reached its bound — the point from
// which admitting a candidate requires beating the current floor, so a
// candidate whose score upper bound already loses can skip its exact
// evaluation (the refine stage's pruning test).
func (h *topK) full() bool { return h.k > 0 && len(h.items) == h.k }

// min returns the worst result kept — the heap root. Only meaningful
// when full() is true.
func (h *topK) min() Result { return h.items[0] }

// worse reports whether a ranks strictly below b in the result order.
// Ids are unique, so two distinct results never compare equal and the
// order is total — which is what makes heap-pruned results byte-identical
// to a full sort.
func worse(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// add offers a result, evicting the current worst if the heap is full.
func (h *topK) add(r Result) {
	if h.k <= 0 {
		h.items = append(h.items, r)
		return
	}
	if len(h.items) < h.k {
		h.items = append(h.items, r)
		h.up(len(h.items) - 1)
		return
	}
	if worse(r, h.items[0]) {
		return
	}
	h.items[0] = r
	h.down(0)
}

func (h *topK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(h.items[i], h.items[p]) {
			return
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *topK) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && worse(h.items[l], h.items[m]) {
			m = l
		}
		if r < n && worse(h.items[r], h.items[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
}

// mergeTopK combines per-worker heaps into the final ranking: the union
// of local top-k sets is a superset of the global top-k, so sorting the
// at most workers*k survivors and truncating yields exactly the results
// a full sort of all n scores would.
func mergeTopK(heaps []*topK, k int) []Result {
	total := 0
	for _, h := range heaps {
		total += len(h.items)
	}
	all := make([]Result, 0, total)
	for _, h := range heaps {
		all = append(all, h.items...)
	}
	sortResults(all)
	if k <= 0 || len(all) <= k {
		return all
	}
	// Copy after truncation so the oversized backing array (up to
	// workers*k survivors) is released.
	out := make([]Result, k)
	copy(out, all[:k])
	return out
}
