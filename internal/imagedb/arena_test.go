package imagedb

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"bestring/internal/core"
	"bestring/internal/workload"
)

// seedArenaDB bulk-loads one corpus with the arena layout on or off,
// then runs a few point mutations so the copy-out paths (replace,
// delete, single insert on top of a sealed slab) are exercised too.
func seedArenaDB(t *testing.T, arena bool, n int) *DB {
	t.Helper()
	g := workload.NewGenerator(workload.Config{Seed: 4242, Vocabulary: 20, Objects: 7})
	items := make([]BulkItem, n)
	for i := range items {
		items[i] = BulkItem{ID: fmt.Sprintf("img%05d", i), Name: fmt.Sprintf("s%d", i), Image: g.Scene()}
	}
	db := NewSharded(4)
	db.SetArenaLayout(arena)
	if err := db.BulkInsert(context.Background(), items, 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("late0", "", g.Scene()); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertObject("img00003", core.Object{Label: "extra", Box: core.NewRect(0, 0, 2, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("img00007"); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestArenaRankingByteIdentical pins the arena layout's contract: it is
// a memory layout, never a semantics change. The same corpus loaded
// arena on and arena off must produce byte-for-byte identical pages for
// every query shape, including after post-seal mutations.
func TestArenaRankingByteIdentical(t *testing.T) {
	ctx := context.Background()
	on := seedArenaDB(t, true, 120)
	off := seedArenaDB(t, false, 120)
	if on.Len() != off.Len() {
		t.Fatalf("Len: %d vs %d", on.Len(), off.Len())
	}
	g := workload.NewGenerator(workload.Config{Seed: 4242, Vocabulary: 20, Objects: 7})
	scene := g.Scene()
	img := g.SubsetQuery(scene, 4)

	type pageKey struct {
		Hits   []Hit
		Total  int
		Cursor string
	}
	run := func(db *DB, q *Query, opts ...QueryOption) pageKey {
		t.Helper()
		page, err := db.Query(ctx, q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return pageKey{page.Hits, page.Total, page.NextCursor}
	}

	cases := []struct {
		q    func() *Query
		opts []QueryOption
	}{
		{func() *Query { return NewQuery(img) }, []QueryOption{WithK(10)}},
		{func() *Query { return NewQuery(img) }, nil}, // unbounded: every entry scored
		{func() *Query { return NewQuery(img) }, []QueryOption{WithK(10), WithScorer("invariant")}},
		{func() *Query { return NewQuery(img) }, []QueryOption{WithK(10), WithLabelPrefilter(true)}},
		{func() *Query { return NewQuery(img) }, []QueryOption{WithK(10), WithMinScore(0.3)}},
		{func() *Query { return NewQuery(scene) }, []QueryOption{WithK(5), WithOffset(3)}},
		{NewMatchQuery, []QueryOption{WithK(20), InRegion(core.NewRect(0, 0, 40, 40))}},
	}
	for i, c := range cases {
		for _, par := range []int{0, 1, 3} {
			a := run(on, c.q(), append([]QueryOption{WithParallelism(par)}, c.opts...)...)
			b := run(off, c.q(), append([]QueryOption{WithParallelism(par)}, c.opts...)...)
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			if !reflect.DeepEqual(a, b) || string(aj) != string(bj) {
				t.Fatalf("case %d parallelism %d: arena ranking diverged\n  on: %s\n off: %s", i, par, aj, bj)
			}
		}
	}
}

// TestArenaEntriesImmutable verifies the copy-out discipline: mutating
// an entry that lives in a sealed slab must not disturb its arena
// neighbours or the snapshot a concurrent reader pinned.
func TestArenaEntriesImmutable(t *testing.T) {
	db := seedArenaDB(t, true, 60)
	before, ok := db.Get("img00011")
	if !ok {
		t.Fatal("img00011 missing")
	}
	snap := db.Snapshot()
	if err := db.InsertObject("img00010", core.Object{Label: "mut", Box: core.NewRect(1, 1, 2, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("img00012"); err != nil {
		t.Fatal(err)
	}
	after, ok := db.Get("img00011")
	if !ok || !reflect.DeepEqual(before, after) {
		t.Fatalf("slab neighbour changed: %+v -> %+v", before, after)
	}
	// The pinned snapshot still sees the pre-mutation world.
	if _, ok := snap.Get("img00012"); !ok {
		t.Fatal("snapshot lost a deleted slab entry")
	}
	if e, _ := snap.Get("img00010"); len(e.Image.Objects) != len(mustGet(t, db, "img00010").Image.Objects)-1 {
		t.Fatal("snapshot observed a post-seal mutation")
	}
}

func mustGet(t *testing.T, db *DB, id string) Entry {
	t.Helper()
	e, ok := db.Get(id)
	if !ok {
		t.Fatalf("%s missing", id)
	}
	return e
}

// TestBuildArenaLayout checks the slab mechanics directly: pointer
// stability into the entries slab, memoized signatures, and label slices
// re-pointed into the shared slab.
func TestBuildArenaLayout(t *testing.T) {
	g := workload.NewGenerator(workload.Config{Seed: 7, Vocabulary: 8, Objects: 5})
	items := make([]arenaItem, 16)
	for i := range items {
		img := g.Scene()
		be, err := core.Convert(img)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = arenaItem{id: fmt.Sprintf("a%02d", i), img: img, be: be}
	}
	a := buildArena(items)
	sts := a.pointers()
	if len(sts) != len(items) {
		t.Fatalf("%d pointers", len(sts))
	}
	for i, st := range sts {
		if st != &a.entries[i] {
			t.Fatalf("entry %d not a slab pointer", i)
		}
		if st.sig == nil || st.sig != &a.sigs[i] {
			t.Fatalf("entry %d signature not memoized into the slab", i)
		}
		if st.ID != items[i].id {
			t.Fatalf("entry %d id %q", i, st.ID)
		}
		// The signature must match a fresh computation.
		want := core.SignatureOf(items[i].be)
		if !reflect.DeepEqual(*st.sig, want) {
			t.Fatalf("entry %d slab signature diverges from fresh", i)
		}
	}
}
