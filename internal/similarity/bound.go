// Upper bounds on the BE-LCS similarity computed from symbol signatures
// alone — the "filter" half of the engine's filter-and-refine ranking.
// Every bound here costs O(|labels|) time (one sorted-list merge) and
// provably dominates the exact score its Evaluate* counterpart returns,
// so a ranked search can reject a candidate whose bound already loses to
// the current top-K floor without running the O(mn) dynamic program.
package similarity

import "bestring/internal/core"

// axisUpperBound bounds the modified-LCS length (Algorithm 2) of two
// BE-string axes from their signatures. Three facts compose:
//
//  1. A common subsequence is no longer than either string:
//     LCS <= min(qLen, dLen).
//  2. Every non-dummy token of the LCS is a boundary symbol present in
//     both axes. A label contributes exactly one begin and one end per
//     axis, so the multiset intersection of the non-dummy histograms is
//     2*shared: at most 2*shared non-dummy tokens.
//  3. Dummy tokens of the LCS are bounded by the smaller dummy count,
//     and — because Algorithm 2 never matches two dummies in a row — by
//     one more than the non-dummy token count: min(qDum, dDum, 2*shared+1).
//
// Facts 2+3 bound the LCS by 2*shared + min(qDum, dDum, 2*shared+1);
// fact 1 caps the result.
func axisUpperBound(qLen, qDum, dLen, dDum, shared int) int {
	dums := min(qDum, dDum, 2*shared+1)
	ub := min(2*shared+dums, qLen, dLen)
	return ub
}

// boundScore turns per-axis LCS bounds into a bound on the harmonic
// score F. With m = LX+LY, q = qLen, d = dLen, the score reduces to
//
//	F = 2*(m/q)*(m/d) / (m/q + m/d) = 2m / (q + d),
//
// which is monotone increasing in m — so substituting the per-axis upper
// bounds for the true LCS lengths bounds F from above. Crucially the
// bound is computed through the same newScore arithmetic as the exact
// score, not the simplified closed form: when the bound equals the true
// LCS length the two floats are bit-identical (an algebraically equal
// but differently-associated formula can land one ulp below, which
// would let pruning drop a true top-K result), and when the bound is
// larger the score gap of a whole LCS unit, at least 2/(q+d), dwarfs
// any rounding difference.
func boundScore(ubx, uby, qLen, dLen int) float64 {
	return newScore(ubx, uby, qLen, dLen).F
}

// UpperBound bounds Evaluate(q, d).Key() from the two signatures:
// UpperBound(sq, sd) >= Evaluate(q, d).Key() for every query/database
// pair whose signatures are sq and sd. Equality is reached when the two
// images fully accord.
func UpperBound(q, d core.Signature) float64 {
	shared := q.SharedLabels(d)
	return boundScore(
		axisUpperBound(q.LenX, q.DummiesX, d.LenX, d.DummiesX, shared),
		axisUpperBound(q.LenY, q.DummiesY, d.LenY, d.DummiesY, shared),
		q.Len(), d.Len())
}

// UpperBoundInvariant bounds EvaluateInvariant(q, d, nil).Key() — the
// best score over all eight dihedral transforms of the query. A
// transform is built from axis reversals and one optional axis swap;
// reversal leaves a signature unchanged (lengths and dummy counts are
// preserved, and flipping begin/end kinds permutes the histogram without
// changing any intersection), so the eight transformed signatures
// collapse to two: the query's own and its axis-swapped twin. The bound
// is the max of the two plain bounds.
func UpperBoundInvariant(q, d core.Signature) float64 {
	return max(UpperBound(q, d), UpperBound(q.SwapAxes(), d))
}

// UpperBoundSymbolsOnly bounds EvaluateSymbolsOnly(q, d).Key(): dummies
// are stripped before matching, so the per-axis bound loses its dummy
// term and the normaliser shrinks to the symbol counts.
func UpperBoundSymbolsOnly(q, d core.Signature) float64 {
	shared := q.SharedLabels(d)
	return boundScore(
		min(2*shared, q.LenX-q.DummiesX, d.LenX-d.DummiesX),
		min(2*shared, q.LenY-q.DummiesY, d.LenY-d.DummiesY),
		q.SymbolLen(), d.SymbolLen())
}
