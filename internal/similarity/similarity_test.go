package similarity

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bestring/internal/core"
)

func randomImage(seed int) core.Image {
	rng := rand.New(rand.NewSource(int64(seed)))
	const xmax, ymax = 32, 24
	n := 1 + rng.Intn(8)
	objs := make([]core.Object, 0, n)
	for i := 0; i < n; i++ {
		x0 := rng.Intn(xmax)
		y0 := rng.Intn(ymax)
		objs = append(objs, core.Object{
			Label: fmt.Sprintf("O%d", i),
			Box:   core.NewRect(x0, y0, x0+rng.Intn(xmax-x0+1), y0+rng.Intn(ymax-y0+1)),
		})
	}
	return core.NewImage(xmax, ymax, objs...)
}

func TestSelfSimilarityIsOne(t *testing.T) {
	f := func(seed uint8) bool {
		be := core.MustConvert(randomImage(int(seed)))
		s := Evaluate(be, be)
		return s.Query == 1 && s.DB == 1 && s.F == 1 && Identical(be, be)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreRangesAndSymmetry(t *testing.T) {
	f := func(s1, s2 uint8) bool {
		a := core.MustConvert(randomImage(int(s1)))
		b := core.MustConvert(randomImage(int(s2)))
		sab, sba := Evaluate(a, b), Evaluate(b, a)
		inRange := func(v float64) bool { return v >= 0 && v <= 1+1e-12 }
		if !inRange(sab.Query) || !inRange(sab.DB) || !inRange(sab.F) {
			return false
		}
		// Swapping query and database swaps the two normalisations and
		// preserves the harmonic score.
		return sab.LX == sba.LX && sab.LY == sba.LY &&
			math.Abs(sab.F-sba.F) < 1e-12 &&
			math.Abs(sab.Query-sba.DB) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartialQueryScoresBetween(t *testing.T) {
	// Dropping an object from the query must keep Query-similarity at 1
	// (everything the query asks for is present) while DB-similarity drops
	// below 1 (the image has unexplained content).
	full := core.Figure1Image()
	partialImg, _ := full.WithoutObject("B")
	q := core.MustConvert(partialImg)
	d := core.MustConvert(full)
	s := Evaluate(q, d)
	if s.Query != 1 {
		t.Errorf("Query similarity = %v, want 1 (partial query fully contained)", s.Query)
	}
	if s.DB >= 1 {
		t.Errorf("DB similarity = %v, want < 1", s.DB)
	}
	if s.F <= 0 || s.F >= 1 {
		t.Errorf("F = %v, want within (0,1)", s.F)
	}
}

func TestSubqueryContainmentScoresQueryOne(t *testing.T) {
	// Property: a query built from a subset of an image's objects is always
	// fully explained by that image (Query == 1). This is the paper's
	// "partial icons still retrieved" guarantee in its strongest form.
	f := func(seed uint8) bool {
		img := randomImage(int(seed))
		if len(img.Objects) < 2 {
			return true
		}
		sub, _ := img.WithoutObject(img.Objects[int(seed)%len(img.Objects)].Label)
		q := core.MustConvert(sub)
		d := core.MustConvert(img)
		return Evaluate(q, d).Query == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisturbedRelationScoresLower(t *testing.T) {
	// Same icons, different spatial arrangement: score must drop below 1
	// but stay above 0 (icons still match).
	a := core.NewImage(10, 10,
		core.Object{Label: "A", Box: core.NewRect(1, 1, 3, 3)},
		core.Object{Label: "B", Box: core.NewRect(5, 5, 8, 8)},
	)
	b := core.NewImage(10, 10,
		core.Object{Label: "A", Box: core.NewRect(5, 5, 8, 8)},
		core.Object{Label: "B", Box: core.NewRect(1, 1, 3, 3)},
	)
	s := Evaluate(core.MustConvert(a), core.MustConvert(b))
	if s.F >= 1 || s.F <= 0 {
		t.Errorf("rearranged icons: F = %v, want strictly between 0 and 1", s.F)
	}
}

func TestUnrelatedImagesScoreLow(t *testing.T) {
	a := core.NewImage(10, 10, core.Object{Label: "A", Box: core.NewRect(1, 1, 3, 3)})
	b := core.NewImage(10, 10, core.Object{Label: "Z", Box: core.NewRect(5, 5, 8, 8)})
	s := Evaluate(core.MustConvert(a), core.MustConvert(b))
	// Only dummies can align.
	if s.F > 0.5 {
		t.Errorf("unrelated images: F = %v, want small", s.F)
	}
}

func TestEvaluateInvariantFindsRotation(t *testing.T) {
	base := core.MustConvert(randomImage(17))
	for _, tr := range core.AllTransforms {
		db := base.Apply(tr)
		inv := EvaluateInvariant(base, db, nil)
		if inv.F != 1 {
			t.Errorf("transform %v: invariant score = %v, want 1", tr, inv.F)
		}
	}
}

func TestEvaluateInvariantIdentifiesTransform(t *testing.T) {
	// For an asymmetric image, the best transform should map the query onto
	// the transformed database image exactly.
	img := core.NewImage(20, 10,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 3, 2)},
		core.Object{Label: "B", Box: core.NewRect(10, 4, 18, 9)},
		core.Object{Label: "C", Box: core.NewRect(5, 1, 7, 3)},
	)
	q := core.MustConvert(img)
	db := q.Rotate90CW()
	inv := EvaluateInvariant(q, db, nil)
	if inv.F != 1 {
		t.Fatalf("invariant score = %v, want 1", inv.F)
	}
	if got := q.Apply(inv.Transform); !got.Equal(db) {
		t.Errorf("reported transform %v does not map query onto database", inv.Transform)
	}
}

func TestEvaluateInvariantRestrictedSet(t *testing.T) {
	img := core.NewImage(20, 10,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 3, 2)},
		core.Object{Label: "B", Box: core.NewRect(10, 4, 18, 9)},
	)
	q := core.MustConvert(img)
	db := q.Rotate180()
	onlyIdentity := EvaluateInvariant(q, db, []core.Transform{core.Identity})
	all := EvaluateInvariant(q, db, nil)
	if onlyIdentity.F >= all.F {
		t.Errorf("restricted transform set should score lower: %v vs %v", onlyIdentity.F, all.F)
	}
	if all.Transform != core.Rot180 {
		t.Errorf("best transform = %v, want rot180", all.Transform)
	}
}

func TestExplainConsistentWithEvaluate(t *testing.T) {
	f := func(s1, s2 uint8) bool {
		q := core.MustConvert(randomImage(int(s1)))
		d := core.MustConvert(randomImage(int(s2)))
		m := Explain(q, d)
		s := Evaluate(q, d)
		return m.Score == s && len(m.X) == m.LX && len(m.Y) == m.LY
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluateSymbolsOnlyIgnoresDummies(t *testing.T) {
	// Two images whose symbol orders agree but whose gap structure differs:
	// symbols-only sees them as identical, the full evaluator does not.
	a := core.NewImage(10, 10,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 4, 4)},
		core.Object{Label: "B", Box: core.NewRect(4, 4, 10, 10)}, // adjoining
	)
	b := core.NewImage(10, 10,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 3, 3)},
		core.Object{Label: "B", Box: core.NewRect(6, 6, 10, 10)}, // gap
	)
	qa, qb := core.MustConvert(a), core.MustConvert(b)
	if s := EvaluateSymbolsOnly(qa, qb); s.F != 1 {
		t.Errorf("symbols-only F = %v, want 1", s.F)
	}
	if s := Evaluate(qa, qb); s.F >= 1 {
		t.Errorf("full evaluation F = %v, want < 1 (gap structure differs)", s.F)
	}
}

func TestIdenticalDetectsDifference(t *testing.T) {
	a := core.MustConvert(core.Figure1Image())
	shrunk, _ := core.Figure1Image().WithoutObject("C")
	b := core.MustConvert(shrunk)
	if Identical(a, b) {
		t.Error("Identical should be false for different images")
	}
}

func TestZeroLengthScores(t *testing.T) {
	s := Evaluate(core.BEString{}, core.BEString{})
	if s.Query != 0 || s.DB != 0 || s.F != 0 {
		t.Errorf("empty strings: %+v, want all zeros", s)
	}
}
