// Package similarity turns the per-axis modified-LCS lengths of the 2D
// BE-string model into graded image-similarity scores (paper section 4),
// including the transform-invariant retrieval of rotated and reflected
// images (paper section 5) that needs nothing beyond string reversal.
package similarity

import (
	"bestring/internal/core"
	"bestring/internal/lcs"
)

// Score grades how similar a database image is to a query image.
// All three ratios are monotone in the per-axis LCS lengths; they differ
// only in normalisation. A full accordance of icons and spatial
// relationships yields 1.0 on every ratio; partially matching images —
// missing icons and/or differing relations, the paper's headline use case —
// receive proportionally smaller, still comparable scores.
type Score struct {
	// LX and LY are the modified LCS lengths along the x- and y-axis.
	LX int `json:"lx"`
	LY int `json:"ly"`
	// QueryLen and DBLen are the total string lengths used to normalise.
	QueryLen int `json:"queryLen"`
	DBLen    int `json:"dbLen"`
	// Query is (LX+LY)/QueryLen: the fraction of the query explained by
	// the database image.
	Query float64 `json:"query"`
	// DB is (LX+LY)/DBLen: the fraction of the database image explained by
	// the query.
	DB float64 `json:"db"`
	// F is the harmonic mean of Query and DB — the default ranking key.
	F float64 `json:"f"`
}

// Key returns the default ranking key (the harmonic score). Higher is more
// similar; ties are broken by the caller (imagedb uses image IDs).
func (s Score) Key() float64 { return s.F }

// newScore assembles a Score from raw LCS lengths and axis lengths.
func newScore(lx, ly, qlen, dlen int) Score {
	s := Score{LX: lx, LY: ly, QueryLen: qlen, DBLen: dlen}
	matched := float64(lx + ly)
	if qlen > 0 {
		s.Query = matched / float64(qlen)
	}
	if dlen > 0 {
		s.DB = matched / float64(dlen)
	}
	if s.Query+s.DB > 0 {
		s.F = 2 * s.Query * s.DB / (s.Query + s.DB)
	}
	return s
}

// Evaluate scores a database image against a query image by running the
// modified LCS (Algorithm 2) independently on the two axes. O(mn) time,
// O(min(m,n)) space.
func Evaluate(query, db core.BEString) Score {
	return newScore(
		lcs.Length(query.X, db.X),
		lcs.Length(query.Y, db.Y),
		len(query.X)+len(query.Y),
		len(db.X)+len(db.Y),
	)
}

// EvaluateSymbolsOnly is an ablation scorer: dummies are stripped before
// matching, so only boundary-symbol order (not boundary distinctness) is
// compared. Used by the ablation benches to quantify how much the dummy
// objects contribute to ranking quality.
func EvaluateSymbolsOnly(query, db core.BEString) Score {
	qx, qy := lcs.StripDummies(query.X), lcs.StripDummies(query.Y)
	dx, dy := lcs.StripDummies(db.X), lcs.StripDummies(db.Y)
	return newScore(
		lcs.Length(qx, dx),
		lcs.Length(qy, dy),
		len(qx)+len(qy),
		len(dx)+len(dy),
	)
}

// Match is a Score together with the reconstructed per-axis LCS strings
// (Algorithm 3) — the explainable form of the similarity: exactly which
// boundary symbols and distinctness markers the two images share.
type Match struct {
	Score
	X core.Axis `json:"x"`
	Y core.Axis `json:"y"`
}

// Explain scores like Evaluate but also reconstructs the matched strings.
// It costs the full O(mn) table per axis.
func Explain(query, db core.BEString) Match {
	tx := lcs.NewTable(query.X, db.X)
	ty := lcs.NewTable(query.Y, db.Y)
	return Match{
		Score: newScore(tx.Len(), ty.Len(),
			len(query.X)+len(query.Y), len(db.X)+len(db.Y)),
		X: tx.Reconstruct(),
		Y: ty.Reconstruct(),
	}
}

// InvariantScore is the best score across a set of query transforms,
// remembering which transform achieved it.
type InvariantScore struct {
	Score
	Transform core.Transform `json:"transform"`
}

// EvaluateInvariant scores the database image against every listed
// transform of the query and returns the best (paper section 5: retrieval
// of rotations and reflections only needs the reversed strings — no spatial
// operator conversion). If transforms is empty, core.AllTransforms is used.
func EvaluateInvariant(query, db core.BEString, transforms []core.Transform) InvariantScore {
	if len(transforms) == 0 {
		transforms = core.AllTransforms
	}
	best := InvariantScore{Transform: transforms[0]}
	for _, tr := range transforms {
		s := Evaluate(query.Apply(tr), db)
		if s.Key() > best.Key() {
			best = InvariantScore{Score: s, Transform: tr}
		}
	}
	return best
}

// Identical reports whether the two BE-strings fully accord: every icon and
// every spatial relationship of each is present in the other (score 1.0).
func Identical(a, b core.BEString) bool {
	s := Evaluate(a, b)
	return s.LX == len(a.X) && s.LX == len(b.X) &&
		s.LY == len(a.Y) && s.LY == len(b.Y)
}
