package similarity

import (
	"fmt"
	"testing"

	"bestring/internal/core"
	"bestring/internal/workload"
)

// boundedPair is one (query, database) pair with both representations.
type boundedPair struct {
	name string
	q, d core.BEString
}

// workloadPairs builds a randomized pair set from one seed: scenes
// against scenes, plus the query shapes retrieval actually sees —
// subsets, jittered variants, relabelled distractors and transforms.
func workloadPairs(seed int64) []boundedPair {
	g := workload.NewGenerator(workload.Config{Seed: seed, Vocabulary: 14, Objects: 7})
	scenes := g.Dataset(12)
	var pairs []boundedPair
	add := func(name string, q, d core.Image) {
		pairs = append(pairs, boundedPair{name, core.MustConvert(q), core.MustConvert(d)})
	}
	for i, s := range scenes {
		for j, o := range scenes {
			add(fmt.Sprintf("scene%d-vs-scene%d", i, j), s, o)
		}
		add(fmt.Sprintf("subset-vs-scene%d", i), g.SubsetQuery(s, 3), s)
		add(fmt.Sprintf("jitter-vs-scene%d", i), g.JitterQuery(s, 6), s)
		add(fmt.Sprintf("relabel-vs-scene%d", i), g.RelabelQuery(s, 3), s)
		tq, _ := g.TransformQuery(s)
		add(fmt.Sprintf("transform-vs-scene%d", i), tq, s)
	}
	return pairs
}

// TestUpperBoundDominatesExact is the proof-pinning property test of the
// filter-and-refine refactor: for randomized workloads over three seeds,
// every signature bound must dominate the exact score it shortcuts —
// for the plain, transform-invariant and symbols-only scorers alike. A
// single violation would mean pruning can drop a true top-K result.
func TestUpperBoundDominatesExact(t *testing.T) {
	for _, seed := range []int64{7, 8881, 20010407} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			for _, p := range workloadPairs(seed) {
				sq, sd := core.SignatureOf(p.q), core.SignatureOf(p.d)
				checks := []struct {
					scorer string
					bound  float64
					exact  float64
				}{
					{"be", UpperBound(sq, sd), Evaluate(p.q, p.d).Key()},
					{"invariant", UpperBoundInvariant(sq, sd), EvaluateInvariant(p.q, p.d, nil).Key()},
					{"symbols", UpperBoundSymbolsOnly(sq, sd), EvaluateSymbolsOnly(p.q, p.d).Key()},
				}
				for _, c := range checks {
					if c.bound < c.exact {
						t.Fatalf("%s: %s bound %.6f < exact %.6f (q=%s d=%s)",
							p.name, c.scorer, c.bound, c.exact, p.q, p.d)
					}
					if c.bound < 0 || c.bound > 1+1e-12 {
						t.Fatalf("%s: %s bound %.6f outside [0, 1]", p.name, c.scorer, c.bound)
					}
				}
			}
		})
	}
}

// TestUpperBoundTightOnAccord pins the equality case: an image scored
// against itself reaches similarity 1.0, and the bound must not exceed
// it — so bound == exact == 1 on full accordance.
func TestUpperBoundTightOnAccord(t *testing.T) {
	g := workload.NewGenerator(workload.Config{Seed: 3, Vocabulary: 10, Objects: 6})
	for i := 0; i < 8; i++ {
		be := core.MustConvert(g.Scene())
		sig := core.SignatureOf(be)
		if ub := UpperBound(sig, sig); ub != 1 {
			t.Fatalf("self bound = %v, want exactly 1", ub)
		}
		if exact := Evaluate(be, be).Key(); exact != 1 {
			t.Fatalf("self similarity = %v, want exactly 1", exact)
		}
	}
}

// TestUpperBoundDisjointLabels pins the headline pruning win: two images
// sharing no icon label can match at most a single dummy per axis, so
// the bound collapses to nearly zero — these candidates are rejected
// without running the dynamic program.
func TestUpperBoundDisjointLabels(t *testing.T) {
	a := core.MustConvert(core.NewImage(10, 10,
		core.Object{Label: "a", Box: core.NewRect(1, 1, 3, 3)},
		core.Object{Label: "b", Box: core.NewRect(5, 5, 8, 8)}))
	b := core.MustConvert(core.NewImage(10, 10,
		core.Object{Label: "c", Box: core.NewRect(1, 1, 3, 3)},
		core.Object{Label: "d", Box: core.NewRect(5, 5, 8, 8)}))
	sa, sb := core.SignatureOf(a), core.SignatureOf(b)
	ub := UpperBound(sa, sb)
	want := 2 * float64(2) / float64(sa.Len()+sb.Len()) // one lone dummy per axis
	if ub > want {
		t.Fatalf("disjoint bound = %v, want <= %v", ub, want)
	}
	if exact := Evaluate(a, b).Key(); ub < exact {
		t.Fatalf("disjoint bound %v < exact %v", ub, exact)
	}
}
