package cstring

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bestring/internal/baseline/gstring"
	"bestring/internal/baseline/typesim"
	"bestring/internal/core"
)

func randomImage(seed int) core.Image {
	rng := rand.New(rand.NewSource(int64(seed)))
	const xmax, ymax = 32, 24
	n := 1 + rng.Intn(7)
	objs := make([]core.Object, 0, n)
	for i := 0; i < n; i++ {
		x0 := rng.Intn(xmax)
		y0 := rng.Intn(ymax)
		objs = append(objs, core.Object{
			Label: fmt.Sprintf("O%d", i),
			Box:   core.NewRect(x0, y0, x0+rng.Intn(xmax-x0+1), y0+rng.Intn(ymax-y0+1)),
		})
	}
	return core.NewImage(xmax, ymax, objs...)
}

func TestNoOverlapMeansNoCuts(t *testing.T) {
	img := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 3, 3)},
		core.Object{Label: "B", Box: core.NewRect(10, 10, 13, 13)},
	)
	c, err := Build(img)
	if err != nil {
		t.Fatal(err)
	}
	u, v := c.SegmentCount()
	if u != 2 || v != 2 {
		t.Errorf("segments = (%d,%d), want (2,2)", u, v)
	}
}

func TestLeadingObjectKeptWhole(t *testing.T) {
	// A [0,6], B [4,10]: A leads and stays whole; B is cut at 6.
	img := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 6, 3)},
		core.Object{Label: "B", Box: core.NewRect(4, 0, 10, 3)},
	)
	c, err := Build(img)
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{{"A", 0, 6}, {"B", 4, 6}, {"B", 6, 10}}
	if len(c.U) != len(want) {
		t.Fatalf("x-segments = %v, want %v", c.U, want)
	}
	for i := range want {
		if c.U[i] != want[i] {
			t.Errorf("segment %d = %v, want %v", i, c.U[i], want[i])
		}
	}
}

func TestContainedObjectNotCut(t *testing.T) {
	// B inside A: C-string cuts nothing (G-string would cut A in three).
	img := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 10, 3)},
		core.Object{Label: "B", Box: core.NewRect(3, 0, 6, 3)},
	)
	c, err := Build(img)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := c.SegmentCount()
	if u != 2 {
		t.Errorf("x-segments = %d, want 2 (no cuts under containment): %v", u, c.U)
	}
}

func TestChainOfOverlaps(t *testing.T) {
	// A [0,10], B [2,12], C [4,14]: cuts at 10 then 12.
	img := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 10, 3)},
		core.Object{Label: "B", Box: core.NewRect(2, 0, 12, 3)},
		core.Object{Label: "C", Box: core.NewRect(4, 0, 14, 3)},
	)
	c, err := Build(img)
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{
		{"A", 0, 10}, {"B", 2, 10}, {"C", 4, 10},
		{"B", 10, 12}, {"C", 10, 12}, {"C", 12, 14},
	}
	if len(c.U) != len(want) {
		t.Fatalf("x-segments = %v, want %v", c.U, want)
	}
	for i := range want {
		if c.U[i] != want[i] {
			t.Errorf("segment %d = %v, want %v", i, c.U[i], want[i])
		}
	}
}

func TestNeverMoreSegmentsThanGString(t *testing.T) {
	// Minimal cutting: the C-string never produces more subobjects than
	// the exhaustive G-string cutting — the improvement Lee & Hsu claimed
	// and the BE-string paper recounts.
	f := func(seed uint8) bool {
		img := randomImage(int(seed))
		c, err := Build(img)
		if err != nil {
			return false
		}
		g, err := gstring.Build(img)
		if err != nil {
			return false
		}
		cu, cv := c.SegmentCount()
		gu, gv := g.SegmentCount()
		return cu <= gu && cv <= gv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentsPartitionEachObject(t *testing.T) {
	f := func(seed uint8) bool {
		img := randomImage(int(seed))
		c, err := Build(img)
		if err != nil {
			return false
		}
		return partitionsOK(c.U, img, true) && partitionsOK(c.V, img, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func partitionsOK(segs []Segment, img core.Image, xAxis bool) bool {
	byLabel := make(map[string][]Segment)
	for _, s := range segs {
		byLabel[s.Label] = append(byLabel[s.Label], s)
	}
	for _, o := range img.Objects {
		lo, hi := o.Box.Y0, o.Box.Y1
		if xAxis {
			lo, hi = o.Box.X0, o.Box.X1
		}
		parts := byLabel[o.Label]
		if len(parts) == 0 {
			return false
		}
		cur := lo
		for _, p := range parts {
			if p.Lo != cur || p.Hi < p.Lo {
				return false
			}
			cur = p.Hi
		}
		if cur != hi {
			return false
		}
	}
	return true
}

func TestBuildRejectsInvalid(t *testing.T) {
	if _, err := Build(core.NewImage(10, 10)); err == nil {
		t.Error("expected error for empty image")
	}
}

func TestSimilarityDelegates(t *testing.T) {
	img := core.Figure1Image()
	if got := Similarity(img, img, typesim.Type2).Score(); got != 3 {
		t.Errorf("self type-2 score = %d, want 3", got)
	}
}

func TestStorageUnits(t *testing.T) {
	c, err := Build(core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 3, 3)},
		core.Object{Label: "B", Box: core.NewRect(10, 10, 13, 13)},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.StorageUnits(); got != 6 {
		t.Errorf("StorageUnits = %d, want 6", got)
	}
}

func TestStringRendering(t *testing.T) {
	c, err := Build(core.Figure1Image())
	if err != nil {
		t.Fatal(err)
	}
	if s := c.String(); len(s) == 0 || s[0] != '(' {
		t.Errorf("String = %q", s)
	}
}
