// Package cstring implements the cutting mechanism of the 2D C-string
// (Lee and Hsu, Pattern Recognition 1990). The C-string minimises the
// G-string's cutting: objects are processed in begin order, the current
// leading (dominating) object is kept whole, and only objects that
// partially overlap the leading one are cut — at the leading object's end
// boundary. The remainder pieces re-enter the sweep. This removes the
// G-string's superfluous cuts but, as the BE-string paper notes (section
// 2), still produces O(n^2) subobjects in the worst case.
package cstring

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"bestring/internal/baseline/typesim"
	"bestring/internal/core"
)

// Segment is one subobject after minimal cutting.
type Segment struct {
	Label string
	Lo    int
	Hi    int
}

// String renders "label[lo,hi]".
func (s Segment) String() string { return fmt.Sprintf("%s[%d,%d]", s.Label, s.Lo, s.Hi) }

// CString is a picture's 2D C-string: minimally segmented projections.
type CString struct {
	U []Segment
	V []Segment
}

// interval is an object projection while cutting.
type interval struct {
	label  string
	lo, hi int
}

// intervalHeap pops intervals in (lo, label, hi) order.
type intervalHeap []interval

func (h intervalHeap) Len() int { return len(h) }
func (h intervalHeap) Less(i, j int) bool {
	if h[i].lo != h[j].lo {
		return h[i].lo < h[j].lo
	}
	if h[i].label != h[j].label {
		return h[i].label < h[j].label
	}
	return h[i].hi < h[j].hi
}
func (h intervalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *intervalHeap) Push(x any)   { *h = append(*h, x.(interval)) }
func (h *intervalHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Build converts an image to its 2D C-string by minimal cutting per axis.
func Build(img core.Image) (CString, error) {
	if err := img.Validate(); err != nil {
		return CString{}, fmt.Errorf("2D C-string: %w", err)
	}
	xs := make([]interval, len(img.Objects))
	ys := make([]interval, len(img.Objects))
	for i, o := range img.Objects {
		xs[i] = interval{o.Label, o.Box.X0, o.Box.X1}
		ys[i] = interval{o.Label, o.Box.Y0, o.Box.Y1}
	}
	return CString{U: cutMinimal(xs), V: cutMinimal(ys)}, nil
}

// cutMinimal performs the leading-object sweep. Invariant: when an
// interval is popped, either it lies beyond the current leading end (it
// becomes the new leading object), it is contained in the leading span
// (kept whole), or it partially overlaps (cut at the leading end; the tail
// re-enters the sweep).
func cutMinimal(ivs []interval) []Segment {
	if len(ivs) == 0 {
		return nil
	}
	h := make(intervalHeap, len(ivs))
	copy(h, ivs)
	heap.Init(&h)

	var segs []Segment
	lead := heap.Pop(&h).(interval)
	end := lead.hi
	segs = append(segs, Segment{lead.label, lead.lo, lead.hi})
	for h.Len() > 0 {
		iv := heap.Pop(&h).(interval)
		switch {
		case iv.lo >= end:
			// Beyond the leading span: becomes the new leading object.
			segs = append(segs, Segment{iv.label, iv.lo, iv.hi})
			end = iv.hi
		case iv.hi <= end:
			// Fully inside the leading span: kept whole.
			segs = append(segs, Segment{iv.label, iv.lo, iv.hi})
		default:
			// Partial overlap: cut at the leading end; tail re-enters.
			segs = append(segs, Segment{iv.label, iv.lo, end})
			heap.Push(&h, interval{iv.label, end, iv.hi})
		}
	}
	sortSegments(segs)
	return segs
}

func sortSegments(segs []Segment) {
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Lo != segs[j].Lo {
			return segs[i].Lo < segs[j].Lo
		}
		if segs[i].Label != segs[j].Label {
			return segs[i].Label < segs[j].Label
		}
		return segs[i].Hi < segs[j].Hi
	})
}

// SegmentCount returns the number of subobjects per axis (u, v).
func (c CString) SegmentCount() (int, int) { return len(c.U), len(c.V) }

// StorageUnits counts subobject symbols plus joining operators across both
// axes, comparably to the other family members.
func (c CString) StorageUnits() int {
	return storageUnits(c.U) + storageUnits(c.V)
}

func storageUnits(segs []Segment) int {
	if len(segs) == 0 {
		return 0
	}
	return 2*len(segs) - 1
}

// String renders the segmented strings ('=' same position, '|' adjoining,
// '<' otherwise).
func (c CString) String() string {
	return "(" + renderSegments(c.U) + " | " + renderSegments(c.V) + ")"
}

func renderSegments(segs []Segment) string {
	var b strings.Builder
	for i, s := range segs {
		if i > 0 {
			prev := segs[i-1]
			switch {
			case prev.Lo == s.Lo:
				b.WriteString(" = ")
			case prev.Hi == s.Lo:
				b.WriteString(" | ")
			default:
				b.WriteString(" < ")
			}
		}
		b.WriteString(s.Label)
	}
	return b.String()
}

// Similarity computes the type-i similarity under this model.
func Similarity(query, db core.Image, level typesim.Level) typesim.Result {
	return typesim.Similarity(query, db, level)
}
