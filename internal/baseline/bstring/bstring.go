// Package bstring implements the 2D B-string representation (Lee, Yang and
// Chen, ICSC 1992), the immediate ancestor of the 2D BE-string. Like the
// BE-string it drops cutting and represents every object by its two MBR
// boundary symbols per axis; unlike the BE-string it keeps one spatial
// operator, '=', placed between two boundary symbols whose projections are
// IDENTICAL — exactly the dual of the BE-string's dummy object, which marks
// projections that are DISTINCT (paper section 3.1).
package bstring

import (
	"fmt"
	"sort"
	"strings"

	"bestring/internal/baseline/typesim"
	"bestring/internal/core"
)

// Element is a boundary symbol or the '=' operator.
type Element struct {
	Label    string    // object label when not an operator
	Kind     core.Kind // Begin or End when not an operator
	Operator bool      // true for '='
}

// String renders the element ("=" or "<label>+/-").
func (e Element) String() string {
	if e.Operator {
		return "="
	}
	if e.Kind == core.End {
		return e.Label + "-"
	}
	return e.Label + "+"
}

// BString is a picture's 2D B-string: two boundary-symbol strings.
type BString struct {
	U []Element // along the x-axis
	V []Element // along the y-axis
}

// boundary is one projected MBR boundary while building.
type boundary struct {
	coord int
	label string
	kind  core.Kind
}

// Build converts an image to its 2D B-string.
func Build(img core.Image) (BString, error) {
	if err := img.Validate(); err != nil {
		return BString{}, fmt.Errorf("2D B-string: %w", err)
	}
	xs := make([]boundary, 0, 2*len(img.Objects))
	ys := make([]boundary, 0, 2*len(img.Objects))
	for _, o := range img.Objects {
		xs = append(xs,
			boundary{o.Box.X0, o.Label, core.Begin},
			boundary{o.Box.X1, o.Label, core.End})
		ys = append(ys,
			boundary{o.Box.Y0, o.Label, core.Begin},
			boundary{o.Box.Y1, o.Label, core.End})
	}
	return BString{U: axisString(xs), V: axisString(ys)}, nil
}

// axisString sorts boundaries and inserts '=' between coincident ones.
func axisString(bs []boundary) []Element {
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].coord != bs[j].coord {
			return bs[i].coord < bs[j].coord
		}
		if bs[i].label != bs[j].label {
			return bs[i].label < bs[j].label
		}
		return bs[i].kind < bs[j].kind
	})
	out := make([]Element, 0, 2*len(bs))
	for i, b := range bs {
		if i > 0 && bs[i-1].coord == b.coord {
			out = append(out, Element{Operator: true})
		}
		out = append(out, Element{Label: b.label, Kind: b.kind})
	}
	return out
}

// StorageUnits counts boundary symbols plus '=' operators across both
// axes. Note the duality with the BE-string: the B-string spends a unit
// per coincidence, the BE-string per distinctness, so their sizes move in
// opposite directions with boundary density (experiment E2 reports both).
func (s BString) StorageUnits() int { return len(s.U) + len(s.V) }

// String renders "(u | v)".
func (s BString) String() string {
	return "(" + renderElements(s.U) + " | " + renderElements(s.V) + ")"
}

func renderElements(es []Element) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// Similarity computes the type-i similarity under this model.
func Similarity(query, db core.Image, level typesim.Level) typesim.Result {
	return typesim.Similarity(query, db, level)
}
