package bstring

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bestring/internal/baseline/typesim"
	"bestring/internal/core"
)

func randomImage(seed int) core.Image {
	rng := rand.New(rand.NewSource(int64(seed)))
	const xmax, ymax = 32, 24
	n := 1 + rng.Intn(7)
	objs := make([]core.Object, 0, n)
	for i := 0; i < n; i++ {
		x0 := rng.Intn(xmax)
		y0 := rng.Intn(ymax)
		objs = append(objs, core.Object{
			Label: fmt.Sprintf("O%d", i),
			Box:   core.NewRect(x0, y0, x0+rng.Intn(xmax-x0+1), y0+rng.Intn(ymax-y0+1)),
		})
	}
	return core.NewImage(xmax, ymax, objs...)
}

func TestBuildFigure1(t *testing.T) {
	s, err := Build(core.Figure1Image())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// x boundaries: A+(1) B+(2) A-(3) C+(3) C-(4) B-(5): one coincidence.
	if got := renderElements(s.U); got != "A+ B+ A- = C+ C- B-" {
		t.Errorf("u = %q", got)
	}
	// y boundaries: B+(1) A+(2) B-(3) C+(3) C-(4) A-(5).
	if got := renderElements(s.V); got != "B+ A+ B- = C+ C- A-" {
		t.Errorf("v = %q", got)
	}
}

func TestStorageDualityWithBEString(t *testing.T) {
	// Per axis: B-string spends 2n symbols + one '=' per coincidence;
	// BE-string spends 2n symbols + one dummy per distinctness (+ edge
	// gaps). Their storage must therefore satisfy, per axis,
	//   units(B) + units(BE) == 2n + (2n-1) + 2n + edge-dummies,
	// i.e. the operator count and internal dummy count are complementary.
	f := func(seed uint8) bool {
		img := randomImage(int(seed))
		b, err := Build(img)
		if err != nil {
			return false
		}
		be := core.MustConvert(img)
		n := len(img.Objects)
		checkAxis := func(bAxis []Element, beAxis core.Axis, first, last bool) bool {
			ops := len(bAxis) - 2*n
			dummies := 0
			for _, tok := range beAxis {
				if tok.Dummy {
					dummies++
				}
			}
			edge := 0
			if first {
				edge++
			}
			if last {
				edge++
			}
			// coincidences + distinct-gaps = 2n-1 adjacencies.
			return ops+(dummies-edge) == 2*n-1
		}
		xFirst := beAxisStartsWithDummy(be.X)
		xLast := beAxisEndsWithDummy(be.X)
		yFirst := beAxisStartsWithDummy(be.Y)
		yLast := beAxisEndsWithDummy(be.Y)
		return checkAxis(b.U, be.X, xFirst, xLast) && checkAxis(b.V, be.Y, yFirst, yLast)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func beAxisStartsWithDummy(a core.Axis) bool { return len(a) > 0 && a[0].Dummy }
func beAxisEndsWithDummy(a core.Axis) bool   { return len(a) > 0 && a[len(a)-1].Dummy }

func TestStorageUnitsBounds(t *testing.T) {
	// Per axis: between 2n (no coincidences) and 4n-1 (all coincide).
	f := func(seed uint8) bool {
		img := randomImage(int(seed))
		s, err := Build(img)
		if err != nil {
			return false
		}
		n := len(img.Objects)
		ok := func(es []Element) bool { return len(es) >= 2*n && len(es) <= 4*n-1 }
		return ok(s.U) && ok(s.V)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	if _, err := Build(core.NewImage(10, 10)); err == nil {
		t.Error("expected error for empty image")
	}
}

func TestSimilarityDelegates(t *testing.T) {
	img := core.Figure1Image()
	if got := Similarity(img, img, typesim.Type1).Score(); got != 3 {
		t.Errorf("self type-1 score = %d, want 3", got)
	}
}

func TestElementString(t *testing.T) {
	if (Element{Operator: true}).String() != "=" {
		t.Error("operator rendering")
	}
	if (Element{Label: "A", Kind: core.Begin}).String() != "A+" {
		t.Error("begin rendering")
	}
	if (Element{Label: "A", Kind: core.End}).String() != "A-" {
		t.Error("end rendering")
	}
}
