package gstring

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bestring/internal/baseline/typesim"
	"bestring/internal/core"
)

func randomImage(seed int) core.Image {
	rng := rand.New(rand.NewSource(int64(seed)))
	const xmax, ymax = 32, 24
	n := 1 + rng.Intn(7)
	objs := make([]core.Object, 0, n)
	for i := 0; i < n; i++ {
		x0 := rng.Intn(xmax)
		y0 := rng.Intn(ymax)
		objs = append(objs, core.Object{
			Label: fmt.Sprintf("O%d", i),
			Box:   core.NewRect(x0, y0, x0+rng.Intn(xmax-x0+1), y0+rng.Intn(ymax-y0+1)),
		})
	}
	return core.NewImage(xmax, ymax, objs...)
}

func TestNoOverlapMeansNoCuts(t *testing.T) {
	img := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 3, 3)},
		core.Object{Label: "B", Box: core.NewRect(10, 10, 13, 13)},
	)
	g, err := Build(img)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	u, v := g.SegmentCount()
	if u != 2 || v != 2 {
		t.Errorf("segments = (%d,%d), want (2,2)", u, v)
	}
}

func TestOverlapCutsBoth(t *testing.T) {
	// A [0,6], B [4,10] on x: A is cut at 4, B at 6 -> 4 x-segments.
	img := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 6, 3)},
		core.Object{Label: "B", Box: core.NewRect(4, 0, 10, 3)},
	)
	g, err := Build(img)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := g.SegmentCount()
	if u != 4 {
		t.Errorf("x-segments = %d, want 4 (%v)", u, g.U)
	}
	want := []Segment{{"A", 0, 4}, {"A", 4, 6}, {"B", 4, 6}, {"B", 6, 10}}
	for i, s := range g.U {
		if s != want[i] {
			t.Errorf("segment %d = %v, want %v", i, s, want[i])
		}
	}
}

func TestContainmentCutsOuter(t *testing.T) {
	// B strictly inside A on x: A cut at both B boundaries (3 pieces), B whole.
	img := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 10, 3)},
		core.Object{Label: "B", Box: core.NewRect(3, 0, 6, 3)},
	)
	g, err := Build(img)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := g.SegmentCount()
	if u != 4 {
		t.Errorf("x-segments = %d, want 4 (A split in 3 + B) — got %v", u, g.U)
	}
}

func TestQuadraticWorstCase(t *testing.T) {
	// n nested intervals: the outermost is cut at 2(n-1) inner boundaries.
	// Total segments must grow quadratically: sum_i (1 + inner boundaries).
	const n = 6
	objs := make([]core.Object, n)
	for i := 0; i < n; i++ {
		objs[i] = core.Object{
			Label: fmt.Sprintf("O%d", i),
			Box:   core.NewRect(i, i, 2*n-i, 2*n-i),
		}
	}
	img := core.NewImage(2*n, 2*n, objs...)
	g, err := Build(img)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := g.SegmentCount()
	// Object i (0-indexed, outermost first) contains 2*(n-1-i) strictly
	// interior boundaries -> 2(n-1-i)+1 segments; total = sum = n^2.
	if want := n * n; u != want {
		t.Errorf("nested worst case: x-segments = %d, want %d", u, want)
	}
}

func TestSegmentsPartitionEachObject(t *testing.T) {
	// The segments of each object must tile its original projection:
	// consecutive, non-overlapping, covering [lo,hi].
	f := func(seed uint8) bool {
		img := randomImage(int(seed))
		g, err := Build(img)
		if err != nil {
			return false
		}
		return partitionsOK(g.U, img, true) && partitionsOK(g.V, img, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func partitionsOK(segs []Segment, img core.Image, xAxis bool) bool {
	byLabel := make(map[string][]Segment)
	for _, s := range segs {
		byLabel[s.Label] = append(byLabel[s.Label], s)
	}
	for _, o := range img.Objects {
		lo, hi := o.Box.Y0, o.Box.Y1
		if xAxis {
			lo, hi = o.Box.X0, o.Box.X1
		}
		parts := byLabel[o.Label]
		if len(parts) == 0 {
			return false
		}
		// Already sorted by Lo within a label (global sort is stable on label).
		cur := lo
		for _, p := range parts {
			if p.Lo != cur || p.Hi < p.Lo {
				return false
			}
			cur = p.Hi
		}
		if cur != hi {
			return false
		}
	}
	return true
}

func TestStorageUnits(t *testing.T) {
	g, err := Build(core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 3, 3)},
		core.Object{Label: "B", Box: core.NewRect(10, 10, 13, 13)},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.StorageUnits(); got != 6 {
		t.Errorf("StorageUnits = %d, want 6 (2 symbols + 1 op per axis)", got)
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	if _, err := Build(core.NewImage(10, 10)); err == nil {
		t.Error("expected error for empty image")
	}
}

func TestSimilarityDelegates(t *testing.T) {
	img := core.Figure1Image()
	if got := Similarity(img, img, typesim.Type0).Score(); got != 3 {
		t.Errorf("self type-0 score = %d, want 3", got)
	}
}

func TestStringRendering(t *testing.T) {
	g, err := Build(core.Figure1Image())
	if err != nil {
		t.Fatal(err)
	}
	if s := g.String(); len(s) == 0 || s[0] != '(' {
		t.Errorf("String = %q", s)
	}
}
