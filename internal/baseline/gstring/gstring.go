// Package gstring implements the cutting mechanism of the 2D G-string
// (Chang, Jungert and Li, 1988). The G-string cuts every object along the
// MBR boundaries of ALL other objects: per axis, an object's projection is
// segmented at each boundary of another object falling strictly inside it,
// and every resulting subobject becomes a symbol of the string. This makes
// the spatial operators simple (the paper's "global" set suffices between
// cut pieces) at the price of up to O(n^2) subobjects — the storage blowup
// the BE-string paper's experiment E2 quantifies.
package gstring

import (
	"fmt"
	"sort"
	"strings"

	"bestring/internal/baseline/typesim"
	"bestring/internal/core"
)

// Segment is one subobject after cutting: a piece [Lo, Hi] of the labelled
// object's projection.
type Segment struct {
	Label string
	Lo    int
	Hi    int
}

// String renders "label[lo,hi]".
func (s Segment) String() string { return fmt.Sprintf("%s[%d,%d]", s.Label, s.Lo, s.Hi) }

// GString is a picture's 2D G-string: the segmented projections per axis.
type GString struct {
	U []Segment // x-axis, sorted by (Lo, Label, Hi)
	V []Segment // y-axis
}

// interval is an object projection while cutting.
type interval struct {
	label  string
	lo, hi int
}

// Build converts an image to its 2D G-string by cutting both axes.
func Build(img core.Image) (GString, error) {
	if err := img.Validate(); err != nil {
		return GString{}, fmt.Errorf("2D G-string: %w", err)
	}
	xs := make([]interval, len(img.Objects))
	ys := make([]interval, len(img.Objects))
	for i, o := range img.Objects {
		xs[i] = interval{o.Label, o.Box.X0, o.Box.X1}
		ys[i] = interval{o.Label, o.Box.Y0, o.Box.Y1}
	}
	return GString{U: cutAll(xs), V: cutAll(ys)}, nil
}

// cutAll segments every interval at every other interval's boundaries
// strictly inside it — the G-string's exhaustive cutting.
func cutAll(ivs []interval) []Segment {
	// Collect all boundary coordinates once.
	cuts := make([]int, 0, 2*len(ivs))
	for _, iv := range ivs {
		cuts = append(cuts, iv.lo, iv.hi)
	}
	sort.Ints(cuts)
	cuts = dedupInts(cuts)

	var segs []Segment
	for _, iv := range ivs {
		prev := iv.lo
		for _, c := range cuts {
			if c <= iv.lo {
				continue
			}
			if c >= iv.hi {
				break
			}
			segs = append(segs, Segment{Label: iv.label, Lo: prev, Hi: c})
			prev = c
		}
		segs = append(segs, Segment{Label: iv.label, Lo: prev, Hi: iv.hi})
	}
	sortSegments(segs)
	return segs
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func sortSegments(segs []Segment) {
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Lo != segs[j].Lo {
			return segs[i].Lo < segs[j].Lo
		}
		if segs[i].Label != segs[j].Label {
			return segs[i].Label < segs[j].Label
		}
		return segs[i].Hi < segs[j].Hi
	})
}

// SegmentCount returns the number of subobjects per axis (u, v).
func (g GString) SegmentCount() (int, int) { return len(g.U), len(g.V) }

// StorageUnits counts subobject symbols plus the operators joining
// consecutive symbols (one per adjacency) across both axes.
func (g GString) StorageUnits() int {
	return storageUnits(g.U) + storageUnits(g.V)
}

func storageUnits(segs []Segment) int {
	if len(segs) == 0 {
		return 0
	}
	return 2*len(segs) - 1
}

// String renders the segmented strings with the family's operators:
// '=' between same-position pieces, '|' edge-to-edge, '<' disjoint.
func (g GString) String() string {
	return "(" + renderSegments(g.U) + " | " + renderSegments(g.V) + ")"
}

func renderSegments(segs []Segment) string {
	var b strings.Builder
	for i, s := range segs {
		if i > 0 {
			prev := segs[i-1]
			switch {
			case prev.Lo == s.Lo:
				b.WriteString(" = ")
			case prev.Hi == s.Lo:
				b.WriteString(" | ")
			default:
				b.WriteString(" < ")
			}
		}
		b.WriteString(s.Label)
	}
	return b.String()
}

// Similarity computes the type-i similarity under this model.
func Similarity(query, db core.Image, level typesim.Level) typesim.Result {
	return typesim.Similarity(query, db, level)
}
