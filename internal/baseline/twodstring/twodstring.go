// Package twodstring implements Chang, Shi and Yan's original 2-D string
// representation (IEEE TPAMI 1987), the ancestor of the whole family the
// BE-string paper builds on. A picture is projected symbolically: each icon
// object is reduced to a point (its MBR centroid) and the two 1-D strings
// list the object symbols along x and y, joined by the spatial operators
// '<' (strictly ordered) and '=' (same projected position).
//
// It serves as the storage and retrieval-quality baseline of experiments
// E2 and E5; its type-i similarity delegates to the shared clique-based
// assessment in internal/baseline/typesim.
package twodstring

import (
	"fmt"
	"sort"
	"strings"

	"bestring/internal/baseline/typesim"
	"bestring/internal/core"
)

// Element is one item of a 1-D string: an object symbol or an operator.
type Element struct {
	Symbol   string // object label when Operator == 0
	Operator byte   // '<' or '=' when a spatial operator
}

// IsOperator reports whether the element is a spatial operator.
func (e Element) IsOperator() bool { return e.Operator != 0 }

// String renders the element.
func (e Element) String() string {
	if e.IsOperator() {
		return string(e.Operator)
	}
	return e.Symbol
}

// String2D is a picture's 2-D string (u, v).
type String2D struct {
	U []Element // along the x-axis
	V []Element // along the y-axis
}

// point is a centroid-projected object.
type point struct {
	label string
	x, y  int
}

// Build converts an image to its 2-D string by projecting MBR centroids.
func Build(img core.Image) (String2D, error) {
	if err := img.Validate(); err != nil {
		return String2D{}, fmt.Errorf("2-D string: %w", err)
	}
	pts := make([]point, len(img.Objects))
	for i, o := range img.Objects {
		c := o.Box.Center()
		pts[i] = point{label: o.Label, x: c.X, y: c.Y}
	}
	return String2D{
		U: axisString(pts, func(p point) int { return p.x }),
		V: axisString(pts, func(p point) int { return p.y }),
	}, nil
}

// axisString sorts the points along one axis and joins the symbols with
// '<' / '=' operators.
func axisString(pts []point, coord func(point) int) []Element {
	sorted := make([]point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if coord(sorted[i]) != coord(sorted[j]) {
			return coord(sorted[i]) < coord(sorted[j])
		}
		return sorted[i].label < sorted[j].label
	})
	out := make([]Element, 0, 2*len(sorted))
	for i, p := range sorted {
		if i > 0 {
			op := byte('<')
			if coord(sorted[i-1]) == coord(p) {
				op = '='
			}
			out = append(out, Element{Operator: op})
		}
		out = append(out, Element{Symbol: p.label})
	}
	return out
}

// StorageUnits counts symbols plus operators across both strings — the
// storage metric compared in experiment E2.
func (s String2D) StorageUnits() int { return len(s.U) + len(s.V) }

// String renders "(u | v)".
func (s String2D) String() string {
	return "(" + renderElements(s.U) + " | " + renderElements(s.V) + ")"
}

func renderElements(es []Element) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// Similarity computes the type-i similarity of a database image to a query
// image under this model (clique-based, per the family's definition).
func Similarity(query, db core.Image, level typesim.Level) typesim.Result {
	return typesim.Similarity(query, db, level)
}
