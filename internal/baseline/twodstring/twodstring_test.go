package twodstring

import (
	"strings"
	"testing"

	"bestring/internal/baseline/typesim"
	"bestring/internal/core"
)

func TestBuildOrdersByCentroid(t *testing.T) {
	img := core.NewImage(20, 20,
		core.Object{Label: "B", Box: core.NewRect(10, 0, 14, 4)}, // centroid (12,2)
		core.Object{Label: "A", Box: core.NewRect(0, 6, 4, 10)},  // centroid (2,8)
	)
	s, err := Build(img)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := renderElements(s.U); got != "A < B" {
		t.Errorf("u = %q, want \"A < B\"", got)
	}
	if got := renderElements(s.V); got != "B < A" {
		t.Errorf("v = %q, want \"B < A\"", got)
	}
}

func TestBuildEqualOperator(t *testing.T) {
	img := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 4, 4)},   // centroid (2,2)
		core.Object{Label: "B", Box: core.NewRect(0, 10, 4, 14)}, // centroid (2,12)
	)
	s, err := Build(img)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := renderElements(s.U); got != "A = B" {
		t.Errorf("u = %q, want \"A = B\"", got)
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	if _, err := Build(core.NewImage(10, 10)); err == nil {
		t.Error("expected error for empty image")
	}
}

func TestStorageUnits(t *testing.T) {
	img := core.Figure1Image()
	s, err := Build(img)
	if err != nil {
		t.Fatal(err)
	}
	// 3 symbols + 2 operators per axis = 5+5.
	if got := s.StorageUnits(); got != 10 {
		t.Errorf("StorageUnits = %d, want 10", got)
	}
}

func TestStringRendering(t *testing.T) {
	s, err := Build(core.Figure1Image())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s.String(), "(") || !strings.Contains(s.String(), " | ") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSimilarityDelegates(t *testing.T) {
	img := core.Figure1Image()
	if got := Similarity(img, img, typesim.Type2).Score(); got != 3 {
		t.Errorf("self type-2 score = %d, want 3", got)
	}
}

func TestElementString(t *testing.T) {
	if (Element{Symbol: "A"}).String() != "A" {
		t.Error("symbol rendering")
	}
	if (Element{Operator: '<'}).String() != "<" {
		t.Error("operator rendering")
	}
	if !(Element{Operator: '='}).IsOperator() || (Element{Symbol: "A"}).IsOperator() {
		t.Error("IsOperator misclassifies")
	}
}
