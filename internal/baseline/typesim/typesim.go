// Package typesim implements the type-0/1/2 similarity assessment shared
// by the 2-D string family (2-D string, 2D G-string, 2D C-string, 2D
// B-string). As the BE-string paper recounts (section 2), those models
// examine the spatial relationship of every object pair in the query
// against the corresponding pair in a database image, build one
// compatibility graph per similarity type, and report the size of the
// maximum complete subgraph — an O(n^2) pair examination followed by an
// NP-complete maximum-clique search.
//
// The paper cites the type definitions without restating them; this
// package operationalises them as a strict hierarchy over Allen-relation
// pairs (see DESIGN.md section 4.2):
//
//	type-2: identical Allen relation on both axes (strictest)
//	type-1: identical category and begin-orientation on both axes
//	type-0: identical begin-orientation on both axes (weakest)
package typesim

import (
	"fmt"
	"sort"

	"bestring/internal/clique"
	"bestring/internal/core"
	"bestring/internal/spatial"
)

// Level selects the similarity strictness.
type Level int

// Similarity levels, ordered weakest to strictest.
const (
	Type0 Level = iota
	Type1
	Type2
)

// AllLevels lists the three levels weakest-first.
var AllLevels = []Level{Type0, Type1, Type2}

// String names the level.
func (l Level) String() string {
	switch l {
	case Type0:
		return "type-0"
	case Type1:
		return "type-1"
	case Type2:
		return "type-2"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// PairOf classifies the 2-D spatial relation of the ordered object pair
// (a, b) from their MBRs.
func PairOf(a, b core.Rect) spatial.Pair {
	return spatial.Pair{
		X: spatial.Classify(spatial.Interval{Lo: a.X0, Hi: a.X1}, spatial.Interval{Lo: b.X0, Hi: b.X1}),
		Y: spatial.Classify(spatial.Interval{Lo: a.Y0, Hi: a.Y1}, spatial.Interval{Lo: b.Y0, Hi: b.Y1}),
	}
}

// Compatible reports whether a database pair relation satisfies the query
// pair relation at the given level.
func Compatible(query, db spatial.Pair, level Level) bool {
	switch level {
	case Type2:
		return query == db
	case Type1:
		return query.X.Category() == db.X.Category() &&
			query.Y.Category() == db.Y.Category() &&
			query.X.Orientation() == db.X.Orientation() &&
			query.Y.Orientation() == db.Y.Orientation()
	default: // Type0
		return query.X.Orientation() == db.X.Orientation() &&
			query.Y.Orientation() == db.Y.Orientation()
	}
}

// Result reports a type-i similarity: the matched object subset and the
// score (its size), as the 2-D string family defines it.
type Result struct {
	Level   Level
	Matched []string // labels of one maximum compatible object subset
}

// Score returns the similarity value (number of matched objects).
func (r Result) Score() int { return len(r.Matched) }

// Similarity computes the type-i similarity of a database image to a query
// image: the size of the largest set of common objects whose pairwise
// spatial relationships all satisfy the level. This is the clique-based
// assessment the BE-string paper replaces with LCS matching.
func Similarity(query, db core.Image, level Level) Result {
	common := commonLabels(query, db)
	if len(common) == 0 {
		return Result{Level: level}
	}
	qBox := boxesByLabel(query)
	dBox := boxesByLabel(db)
	g := clique.New(len(common))
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			qp := PairOf(qBox[common[i]], qBox[common[j]])
			dp := PairOf(dBox[common[i]], dBox[common[j]])
			if Compatible(qp, dp, level) {
				// Indices are in range by construction.
				_ = g.AddEdge(i, j)
			}
		}
	}
	vs := g.MaxClique()
	matched := make([]string, len(vs))
	for i, v := range vs {
		matched[i] = common[v]
	}
	sort.Strings(matched)
	return Result{Level: level, Matched: matched}
}

// NormalizedScore scales a type-i score into [0,1] by the query object
// count, making it comparable with the BE-string similarity ratios in the
// retrieval-quality experiments (E5).
func NormalizedScore(r Result, query core.Image) float64 {
	if len(query.Objects) == 0 {
		return 0
	}
	return float64(r.Score()) / float64(len(query.Objects))
}

// commonLabels returns the sorted labels present in both images.
func commonLabels(a, b core.Image) []string {
	inB := make(map[string]bool, len(b.Objects))
	for _, o := range b.Objects {
		inB[o.Label] = true
	}
	var common []string
	for _, o := range a.Objects {
		if inB[o.Label] {
			common = append(common, o.Label)
		}
	}
	sort.Strings(common)
	return common
}

// boxesByLabel indexes an image's MBRs by label.
func boxesByLabel(img core.Image) map[string]core.Rect {
	m := make(map[string]core.Rect, len(img.Objects))
	for _, o := range img.Objects {
		m[o.Label] = o.Box
	}
	return m
}

// PairCount returns the number of ordered object-pair examinations the
// type-i assessment performs for images of the given sizes — the O(m^2 +
// n^2) cost the paper contrasts with LCS (experiment E7's bookkeeping).
func PairCount(query, db core.Image) int {
	m, n := len(query.Objects), len(db.Objects)
	return m*(m-1)/2 + n*(n-1)/2
}
