package typesim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bestring/internal/core"
	"bestring/internal/spatial"
)

func randomImage(seed int) core.Image {
	rng := rand.New(rand.NewSource(int64(seed)))
	const xmax, ymax = 32, 24
	n := 1 + rng.Intn(7)
	objs := make([]core.Object, 0, n)
	for i := 0; i < n; i++ {
		x0 := rng.Intn(xmax)
		y0 := rng.Intn(ymax)
		objs = append(objs, core.Object{
			Label: fmt.Sprintf("O%d", i),
			Box:   core.NewRect(x0, y0, x0+rng.Intn(xmax-x0+1), y0+rng.Intn(ymax-y0+1)),
		})
	}
	return core.NewImage(xmax, ymax, objs...)
}

func TestSelfSimilarityIsFull(t *testing.T) {
	// An image matched against itself satisfies every level with all
	// objects.
	f := func(seed uint8) bool {
		img := randomImage(int(seed))
		for _, level := range AllLevels {
			if Similarity(img, img, level).Score() != len(img.Objects) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHierarchyMonotone(t *testing.T) {
	// type-2 is stricter than type-1 which is stricter than type-0 (paper
	// section 2), so scores must be non-increasing in strictness.
	f := func(s1, s2 uint8) bool {
		q, d := randomImage(int(s1)), randomImage(int(s2))
		s0 := Similarity(q, d, Type0).Score()
		s1v := Similarity(q, d, Type1).Score()
		s2v := Similarity(q, d, Type2).Score()
		return s2v <= s1v && s1v <= s0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompatibleHierarchy(t *testing.T) {
	// Pairwise: type-2 compatibility implies type-1 implies type-0, for all
	// 169x169 relation pairs.
	for _, qx := range spatial.AllRelations {
		for _, qy := range spatial.AllRelations {
			for _, dx := range spatial.AllRelations {
				for _, dy := range spatial.AllRelations {
					q := spatial.Pair{X: qx, Y: qy}
					d := spatial.Pair{X: dx, Y: dy}
					c2 := Compatible(q, d, Type2)
					c1 := Compatible(q, d, Type1)
					c0 := Compatible(q, d, Type0)
					if c2 && !c1 {
						t.Fatalf("type-2 ok but type-1 not: %v vs %v", q, d)
					}
					if c1 && !c0 {
						t.Fatalf("type-1 ok but type-0 not: %v vs %v", q, d)
					}
				}
			}
		}
	}
}

func TestNoCommonObjects(t *testing.T) {
	q := core.NewImage(10, 10, core.Object{Label: "A", Box: core.NewRect(0, 0, 2, 2)})
	d := core.NewImage(10, 10, core.Object{Label: "Z", Box: core.NewRect(0, 0, 2, 2)})
	for _, level := range AllLevels {
		if got := Similarity(q, d, level).Score(); got != 0 {
			t.Errorf("%v: score = %d, want 0", level, got)
		}
	}
}

func TestSingleCommonObject(t *testing.T) {
	q := core.NewImage(10, 10,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 2, 2)},
		core.Object{Label: "B", Box: core.NewRect(5, 5, 7, 7)})
	d := core.NewImage(10, 10, core.Object{Label: "A", Box: core.NewRect(4, 4, 9, 9)})
	if got := Similarity(q, d, Type2).Score(); got != 1 {
		t.Errorf("single common object: score = %d, want 1", got)
	}
}

func TestRelationViolationDetected(t *testing.T) {
	// Query: A left of B. Database: A right of B. The pair is incompatible
	// at every level (orientation differs), so similarity is 1 (any single
	// object still matches).
	q := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 3, 3)},
		core.Object{Label: "B", Box: core.NewRect(10, 0, 13, 3)})
	d := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(10, 0, 13, 3)},
		core.Object{Label: "B", Box: core.NewRect(0, 0, 3, 3)})
	for _, level := range AllLevels {
		if got := Similarity(q, d, level).Score(); got != 1 {
			t.Errorf("%v: score = %d, want 1", level, got)
		}
	}
}

func TestLevelDiscriminates(t *testing.T) {
	// Query: A and B disjoint along x (A before B). Database: A overlaps B
	// but still begins first. Orientation agrees (type-0 passes), category
	// differs (type-1 and type-2 fail).
	q := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 3, 3)},
		core.Object{Label: "B", Box: core.NewRect(10, 0, 13, 3)})
	d := core.NewImage(20, 20,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 6, 3)},
		core.Object{Label: "B", Box: core.NewRect(4, 0, 13, 3)})
	if got := Similarity(q, d, Type0).Score(); got != 2 {
		t.Errorf("type-0 score = %d, want 2", got)
	}
	if got := Similarity(q, d, Type1).Score(); got != 1 {
		t.Errorf("type-1 score = %d, want 1", got)
	}
	if got := Similarity(q, d, Type2).Score(); got != 1 {
		t.Errorf("type-2 score = %d, want 1", got)
	}
}

func TestPartialQueryFullyMatches(t *testing.T) {
	// A query that is a sub-image of the database image matches with every
	// query object at every level (relations are inherited verbatim).
	f := func(seed uint8) bool {
		img := randomImage(int(seed))
		if len(img.Objects) < 2 {
			return true
		}
		sub, _ := img.WithoutObject(img.Objects[int(seed)%len(img.Objects)].Label)
		for _, level := range AllLevels {
			if Similarity(sub, img, level).Score() != len(sub.Objects) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizedScore(t *testing.T) {
	q := randomImage(3)
	r := Similarity(q, q, Type2)
	if got := NormalizedScore(r, q); got != 1 {
		t.Errorf("self-similarity normalized = %v, want 1", got)
	}
	if got := NormalizedScore(Result{}, core.Image{}); got != 0 {
		t.Errorf("empty query normalized = %v, want 0", got)
	}
}

func TestPairCount(t *testing.T) {
	q := core.NewImage(10, 10,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 1, 1)},
		core.Object{Label: "B", Box: core.NewRect(2, 2, 3, 3)},
		core.Object{Label: "C", Box: core.NewRect(4, 4, 5, 5)})
	d := q.WithObject(core.Object{Label: "D", Box: core.NewRect(6, 6, 7, 7)})
	if got := PairCount(q, d); got != 3+6 {
		t.Errorf("PairCount = %d, want 9", got)
	}
}

func TestMatchedLabelsFormClique(t *testing.T) {
	// Every returned subset must indeed be pairwise compatible.
	f := func(s1, s2 uint8) bool {
		q, d := randomImage(int(s1)), randomImage(int(s2))
		for _, level := range AllLevels {
			r := Similarity(q, d, level)
			qBox := boxesByLabel(q)
			dBox := boxesByLabel(d)
			for i := 0; i < len(r.Matched); i++ {
				for j := i + 1; j < len(r.Matched); j++ {
					qp := PairOf(qBox[r.Matched[i]], qBox[r.Matched[j]])
					dp := PairOf(dBox[r.Matched[i]], dBox[r.Matched[j]])
					if !Compatible(qp, dp, level) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevelString(t *testing.T) {
	if Type0.String() != "type-0" || Type1.String() != "type-1" || Type2.String() != "type-2" {
		t.Error("Level.String misnames levels")
	}
}
