// Package clique implements maximum-clique search on small dense graphs.
// The type-0/1/2 similarity of the 2-D string family reduces image matching
// to finding the maximum complete subgraph of an object-pair compatibility
// graph — the NP-complete step the 2D BE-string paper's O(mn) LCS matching
// replaces (paper sections 2 and 4). The solver is a Bron–Kerbosch
// enumeration with pivoting over bitset adjacency, adequate for the object
// counts of symbolic images but intrinsically exponential in the worst
// case, which is precisely what experiment E7 measures.
package clique

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// bitset is a fixed-capacity set of vertex indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+wordBits-1)/wordBits) }

func (s bitset) set(i int)      { s[i/wordBits] |= 1 << (i % wordBits) }
func (s bitset) clear(i int)    { s[i/wordBits] &^= 1 << (i % wordBits) }
func (s bitset) has(i int) bool { return s[i/wordBits]&(1<<(i%wordBits)) != 0 }
func (s bitset) clone() bitset  { c := make(bitset, len(s)); copy(c, s); return c }
func (s bitset) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s bitset) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// and stores a & b into s.
func (s bitset) and(a, b bitset) {
	for i := range s {
		s[i] = a[i] & b[i]
	}
}

// forEach calls fn for every set bit in ascending order.
func (s bitset) forEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &^= 1 << b
		}
	}
}

// Graph is an undirected graph on vertices 0..n-1 with bitset adjacency.
type Graph struct {
	n   int
	adj []bitset
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	g := &Graph{n: n, adj: make([]bitset, n)}
	for i := range g.adj {
		g.adj[i] = newBitset(n)
	}
	return g
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops are ignored.
// It returns an error if either endpoint is out of range.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("clique: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return nil
	}
	g.adj[u].set(v)
	g.adj[v].set(u)
	return nil
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	return g.adj[u].has(v)
}

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int { return g.adj[u].count() }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	total := 0
	for i := 0; i < g.n; i++ {
		total += g.adj[i].count()
	}
	return total / 2
}

// MaxClique returns the vertices of one maximum clique (ascending order).
// The empty graph yields an empty slice.
func (g *Graph) MaxClique() []int {
	if g.n == 0 {
		return nil
	}
	st := &search{g: g}
	p := newBitset(g.n)
	for i := 0; i < g.n; i++ {
		p.set(i)
	}
	st.run(nil, p, newBitset(g.n))
	out := make([]int, len(st.best))
	copy(out, st.best)
	return out
}

// MaxCliqueSize returns only the size of a maximum clique.
func (g *Graph) MaxCliqueSize() int { return len(g.MaxClique()) }

// search carries the running best clique through the recursion.
type search struct {
	g    *Graph
	best []int
}

// run is Bron–Kerbosch with pivoting: r is the current clique, p the
// candidates, x the excluded set. A size bound prunes branches that cannot
// beat the incumbent.
func (s *search) run(r []int, p, x bitset) {
	if p.empty() && x.empty() {
		if len(r) > len(s.best) {
			s.best = append(s.best[:0], r...)
		}
		return
	}
	if len(r)+p.count() <= len(s.best) {
		return // bound: cannot improve
	}
	pivot := s.choosePivot(p, x)
	// Branch on candidates not adjacent to the pivot.
	branch := p.clone()
	if pivot >= 0 {
		for i := range branch {
			branch[i] &^= s.g.adj[pivot][i]
		}
	}
	np := newBitset(s.g.n)
	nx := newBitset(s.g.n)
	branch.forEach(func(v int) {
		np.and(p, s.g.adj[v])
		nx.and(x, s.g.adj[v])
		s.run(append(r, v), np.clone(), nx.clone())
		p.clear(v)
		x.set(v)
	})
}

// choosePivot picks the vertex of p∪x with the most neighbours in p,
// minimising the branching factor.
func (s *search) choosePivot(p, x bitset) int {
	bestV, bestDeg := -1, -1
	scratch := newBitset(s.g.n)
	consider := func(v int) {
		scratch.and(p, s.g.adj[v])
		if d := scratch.count(); d > bestDeg {
			bestV, bestDeg = v, d
		}
	}
	p.forEach(consider)
	x.forEach(consider)
	return bestV
}
