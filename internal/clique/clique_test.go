package clique

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if got := g.MaxClique(); len(got) != 0 {
		t.Errorf("MaxClique on empty graph = %v", got)
	}
}

func TestSingleVertex(t *testing.T) {
	g := New(1)
	if got := g.MaxCliqueSize(); got != 1 {
		t.Errorf("MaxCliqueSize = %d, want 1", got)
	}
}

func TestNoEdges(t *testing.T) {
	g := New(5)
	if got := g.MaxCliqueSize(); got != 1 {
		t.Errorf("isolated vertices: size = %d, want 1", got)
	}
}

func TestTriangleInPath(t *testing.T) {
	// Path 0-1-2-3 plus edge 0-2 creates triangle {0,1,2}.
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 0, 2)
	got := g.MaxClique()
	want := []int{0, 1, 2}
	if len(got) != 3 {
		t.Fatalf("MaxClique = %v, want size 3", got)
	}
	sort.Ints(got)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MaxClique = %v, want %v", got, want)
		}
	}
}

func TestCompleteGraph(t *testing.T) {
	const n = 8
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustEdge(t, g, i, j)
		}
	}
	if got := g.MaxCliqueSize(); got != n {
		t.Errorf("K%d: size = %d, want %d", n, got, n)
	}
}

func TestBipartiteHasCliqueTwo(t *testing.T) {
	// K{3,3} is triangle-free: max clique 2.
	g := New(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			mustEdge(t, g, i, j)
		}
	}
	if got := g.MaxCliqueSize(); got != 2 {
		t.Errorf("K3,3: size = %d, want 2", got)
	}
}

func TestPlantedClique(t *testing.T) {
	// Sparse random graph with a planted K6: the solver must find >= 6 and
	// the returned set must be a clique.
	rng := rand.New(rand.NewSource(5))
	const n = 40
	g := New(n)
	planted := []int{3, 9, 14, 22, 31, 38}
	for i := 0; i < len(planted); i++ {
		for j := i + 1; j < len(planted); j++ {
			mustEdge(t, g, planted[i], planted[j])
		}
	}
	for e := 0; e < 80; e++ {
		mustEdge(t, g, rng.Intn(n), rng.Intn(n))
	}
	got := g.MaxClique()
	if len(got) < 6 {
		t.Fatalf("planted clique missed: size = %d", len(got))
	}
	assertClique(t, g, got)
}

func assertClique(t *testing.T, g *Graph, vs []int) {
	t.Helper()
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				t.Fatalf("returned set %v is not a clique: missing edge (%d,%d)", vs, vs[i], vs[j])
			}
		}
	}
}

// bruteForce computes the maximum clique size by subset enumeration
// (reference implementation for cross-validation, n <= ~20).
func bruteForce(g *Graph) int {
	n := g.Len()
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		var vs []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				vs = append(vs, v)
			}
		}
		if len(vs) <= best {
			continue
		}
		ok := true
		for i := 0; i < len(vs) && ok; i++ {
			for j := i + 1; j < len(vs); j++ {
				if !g.HasEdge(vs[i], vs[j]) {
					ok = false
					break
				}
			}
		}
		if ok {
			best = len(vs)
		}
	}
	return best
}

func TestAgainstBruteForce(t *testing.T) {
	f := func(seed uint8, density uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + rng.Intn(11) // up to 12 vertices
		g := New(n)
		p := float64(density%90+5) / 100
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					if err := g.AddEdge(i, j); err != nil {
						return false
					}
				}
			}
		}
		got := g.MaxClique()
		for i := 0; i < len(got); i++ {
			for j := i + 1; j < len(got); j++ {
				if !g.HasEdge(got[i], got[j]) {
					return false
				}
			}
		}
		return len(got) == bruteForce(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	for _, e := range [][2]int{{-1, 0}, {0, 3}, {5, 5}} {
		if err := g.AddEdge(e[0], e[1]); err == nil {
			t.Errorf("AddEdge(%d,%d): expected error", e[0], e[1])
		}
	}
	if err := g.AddEdge(1, 1); err != nil {
		t.Errorf("self-loop should be silently ignored: %v", err)
	}
	if g.HasEdge(1, 1) {
		t.Error("self-loop stored")
	}
}

func TestDegreeAndEdges(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 0, 3)
	mustEdge(t, g, 0, 1) // duplicate, no double count
	if got := g.Degree(0); got != 3 {
		t.Errorf("Degree(0) = %d, want 3", got)
	}
	if got := g.Edges(); got != 3 {
		t.Errorf("Edges = %d, want 3", got)
	}
}

func TestLargeBitsetBoundary(t *testing.T) {
	// Cross the 64-bit word boundary: clique spanning vertices 60..70.
	g := New(80)
	for i := 60; i <= 70; i++ {
		for j := i + 1; j <= 70; j++ {
			mustEdge(t, g, i, j)
		}
	}
	got := g.MaxClique()
	if len(got) != 11 {
		t.Fatalf("word-boundary clique size = %d, want 11", len(got))
	}
	assertClique(t, g, got)
}
