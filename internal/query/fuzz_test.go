package query

import "testing"

// FuzzParse ensures the query parser is total and that accepted queries
// round-trip through String.
func FuzzParse(f *testing.F) {
	f.Add("A left-of B")
	f.Add("A left-of B; B above C\nC inside D")
	f.Add(";;;")
	f.Add("a overlaps b; b disjoint a")
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", q.String(), err)
		}
		if len(back.Constraints) != len(q.Constraints) {
			t.Fatalf("round trip changed constraint count")
		}
		for i := range back.Constraints {
			if back.Constraints[i] != q.Constraints[i] {
				t.Fatalf("round trip changed constraint %d", i)
			}
		}
	})
}
