// Package query implements a small spatial-predicate language for the
// retrieval scenario the paper's introduction motivates: "find all images
// which icon A locates at the left side and icon B locates at the right".
// A query is a semicolon-separated list of constraints
//
//	A left-of B; B above C; tree inside park; house disjoint lake
//
// evaluated against symbolic images. Each constraint holds or not; an
// image's score is the satisfied fraction, so — in the spirit of the 2D
// BE-string's graded similarity — images matching only part of a query
// still rank.
package query

import (
	"fmt"
	"strings"

	"bestring/internal/core"
)

// Op is a spatial predicate between two labelled objects.
type Op uint8

// Supported predicates. Directions follow the model's axes: y grows
// upward, so "above" means the subject's bottom boundary is at or above
// the object's top boundary.
const (
	LeftOf   Op = iota + 1 // a.X1 <= b.X0
	RightOf                // a.X0 >= b.X1
	Above                  // a.Y0 >= b.Y1
	Below                  // a.Y1 <= b.Y0
	Overlaps               // MBRs share a point
	Inside                 // b contains a
	Contains               // a contains b
	Disjoint               // MBRs share no point
)

// opNames maps surface syntax to predicates.
var opNames = map[string]Op{
	"left-of":  LeftOf,
	"right-of": RightOf,
	"above":    Above,
	"below":    Below,
	"overlaps": Overlaps,
	"inside":   Inside,
	"contains": Contains,
	"disjoint": Disjoint,
}

// String returns the surface syntax of the predicate.
func (o Op) String() string {
	for name, op := range opNames {
		if op == o {
			return name
		}
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Constraint is one "A <op> B" clause.
type Constraint struct {
	A  string
	Op Op
	B  string
}

// String renders the clause in surface syntax.
func (c Constraint) String() string {
	return c.A + " " + c.Op.String() + " " + c.B
}

// Query is a parsed conjunction of constraints.
type Query struct {
	Constraints []Constraint
}

// String renders the whole query.
func (q Query) String() string {
	parts := make([]string, len(q.Constraints))
	for i, c := range q.Constraints {
		parts[i] = c.String()
	}
	return strings.Join(parts, "; ")
}

// Labels returns the set of object labels the query mentions.
func (q Query) Labels() map[string]bool {
	out := make(map[string]bool, 2*len(q.Constraints))
	for _, c := range q.Constraints {
		out[c.A] = true
		out[c.B] = true
	}
	return out
}

// Parse reads the surface syntax: clauses separated by ';' or newlines,
// each "label op label". Labels may not contain whitespace or ';'.
func Parse(s string) (Query, error) {
	var q Query
	clauses := strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == '\n' })
	for _, clause := range clauses {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		fields := strings.Fields(clause)
		if len(fields) != 3 {
			return Query{}, fmt.Errorf("parse query clause %q: want \"label op label\"", clause)
		}
		op, ok := opNames[strings.ToLower(fields[1])]
		if !ok {
			return Query{}, fmt.Errorf("parse query clause %q: unknown predicate %q (want %s)",
				clause, fields[1], knownOps())
		}
		if fields[0] == fields[2] {
			return Query{}, fmt.Errorf("parse query clause %q: subject and object are the same label", clause)
		}
		q.Constraints = append(q.Constraints, Constraint{A: fields[0], Op: op, B: fields[2]})
	}
	if len(q.Constraints) == 0 {
		return Query{}, fmt.Errorf("parse query: no constraints in %q", s)
	}
	return q, nil
}

// knownOps lists the predicate names for error messages.
func knownOps() string {
	names := make([]string, 0, len(opNames))
	for name := range opNames {
		names = append(names, name)
	}
	// Stable order for deterministic errors.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, ", ")
}

// Holds evaluates one predicate on two MBRs.
func Holds(op Op, a, b core.Rect) bool {
	switch op {
	case LeftOf:
		return a.X1 <= b.X0
	case RightOf:
		return a.X0 >= b.X1
	case Above:
		return a.Y0 >= b.Y1
	case Below:
		return a.Y1 <= b.Y0
	case Overlaps:
		return a.Intersects(b)
	case Inside:
		return b.Contains(a)
	case Contains:
		return a.Contains(b)
	case Disjoint:
		return !a.Intersects(b)
	default:
		return false
	}
}

// Eval scores an image against the query: the fraction of constraints
// satisfied. A constraint whose labels are absent from the image is
// unsatisfied. The boolean reports full satisfaction.
func (q Query) Eval(img core.Image) (float64, bool) {
	if len(q.Constraints) == 0 {
		return 0, false
	}
	boxes := make(map[string]core.Rect, len(img.Objects))
	for _, o := range img.Objects {
		boxes[o.Label] = o.Box
	}
	satisfied := 0
	for _, c := range q.Constraints {
		a, okA := boxes[c.A]
		b, okB := boxes[c.B]
		if okA && okB && Holds(c.Op, a, b) {
			satisfied++
		}
	}
	return float64(satisfied) / float64(len(q.Constraints)), satisfied == len(q.Constraints)
}

// Match reports whether the image satisfies every constraint.
func (q Query) Match(img core.Image) bool {
	_, all := q.Eval(img)
	return all
}
