package query

import (
	"strings"
	"testing"
	"testing/quick"

	"bestring/internal/core"
)

func mustParse(t *testing.T, s string) Query {
	t.Helper()
	q, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return q
}

func TestParseBasic(t *testing.T) {
	q := mustParse(t, "A left-of B; B above C")
	if len(q.Constraints) != 2 {
		t.Fatalf("constraints = %d, want 2", len(q.Constraints))
	}
	if q.Constraints[0] != (Constraint{A: "A", Op: LeftOf, B: "B"}) {
		t.Errorf("first constraint = %+v", q.Constraints[0])
	}
	if q.Constraints[1] != (Constraint{A: "B", Op: Above, B: "C"}) {
		t.Errorf("second constraint = %+v", q.Constraints[1])
	}
}

func TestParseNewlinesAndCase(t *testing.T) {
	q := mustParse(t, "tree INSIDE park\nhouse Disjoint lake")
	if len(q.Constraints) != 2 {
		t.Fatalf("constraints = %d", len(q.Constraints))
	}
	if q.Constraints[0].Op != Inside || q.Constraints[1].Op != Disjoint {
		t.Errorf("ops = %v, %v", q.Constraints[0].Op, q.Constraints[1].Op)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"",
		";;",
		"A B",
		"A near B",
		"A left-of A",
		"A left-of B extra",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
	// Unknown-op errors list the valid predicates.
	_, err := Parse("A near B")
	if err == nil || !strings.Contains(err.Error(), "left-of") {
		t.Errorf("unknown-op error should list predicates: %v", err)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	q := mustParse(t, "A left-of B; C overlaps D")
	back := mustParse(t, q.String())
	if len(back.Constraints) != 2 || back.Constraints[0] != q.Constraints[0] {
		t.Errorf("round trip: %q -> %q", q.String(), back.String())
	}
}

func TestHoldsPredicates(t *testing.T) {
	left := core.NewRect(0, 0, 3, 3)
	right := core.NewRect(5, 0, 8, 3)
	top := core.NewRect(0, 5, 3, 8)
	big := core.NewRect(-1, -1, 10, 10)
	tests := []struct {
		name string
		op   Op
		a, b core.Rect
		want bool
	}{
		{"left-of true", LeftOf, left, right, true},
		{"left-of false", LeftOf, right, left, false},
		{"left-of touching", LeftOf, core.NewRect(0, 0, 5, 3), right, true},
		{"right-of true", RightOf, right, left, true},
		{"above true", Above, top, left, true},
		{"above false", Above, left, top, false},
		{"below true", Below, left, top, true},
		{"overlaps true", Overlaps, left, core.NewRect(2, 2, 6, 6), true},
		{"overlaps false", Overlaps, left, right, false},
		{"inside true", Inside, left, big, true},
		{"inside false", Inside, big, left, false},
		{"contains true", Contains, big, left, true},
		{"disjoint true", Disjoint, left, right, true},
		{"disjoint false", Disjoint, left, big, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Holds(tt.op, tt.a, tt.b); got != tt.want {
				t.Errorf("Holds(%v, %v, %v) = %v, want %v", tt.op, tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestOppositePredicatesAreInverse(t *testing.T) {
	f := func(ax, ay, bx, by, s1, s2 uint8) bool {
		a := core.NewRect(int(ax), int(ay), int(ax)+int(s1%20), int(ay)+int(s1%13))
		b := core.NewRect(int(bx), int(by), int(bx)+int(s2%20), int(by)+int(s2%13))
		return Holds(LeftOf, a, b) == Holds(RightOf, b, a) &&
			Holds(Above, a, b) == Holds(Below, b, a) &&
			Holds(Inside, a, b) == Holds(Contains, b, a) &&
			Holds(Overlaps, a, b) != Holds(Disjoint, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func figureImage() core.Image {
	// A above-left, B below, C middle (the Figure 1 layout).
	return core.Figure1Image()
}

func TestEvalOnFigure1(t *testing.T) {
	img := figureImage()
	tests := []struct {
		query string
		score float64
		match bool
	}{
		{"A overlaps B", 1, true},
		{"A overlaps C; B overlaps C", 1, true},
		{"A left-of B", 0, false}, // they overlap on x
		{"A overlaps B; A left-of B", 0.5, false},
		{"Z overlaps A", 0, false}, // missing label
	}
	for _, tt := range tests {
		t.Run(tt.query, func(t *testing.T) {
			q := mustParse(t, tt.query)
			score, match := q.Eval(img)
			if score != tt.score || match != tt.match {
				t.Errorf("Eval = (%v, %v), want (%v, %v)", score, match, tt.score, tt.match)
			}
			if q.Match(img) != tt.match {
				t.Error("Match disagrees with Eval")
			}
		})
	}
}

func TestEvalDirectional(t *testing.T) {
	img := core.NewImage(20, 20,
		core.Object{Label: "sun", Box: core.NewRect(14, 14, 18, 18)},
		core.Object{Label: "sea", Box: core.NewRect(0, 0, 20, 6)},
		core.Object{Label: "boat", Box: core.NewRect(4, 6, 8, 9)},
	)
	q := mustParse(t, "sun above sea; boat above sea; sun right-of boat; sun disjoint boat")
	score, match := q.Eval(img)
	if !match || score != 1 {
		t.Errorf("beach scene should fully match: (%v, %v)", score, match)
	}
	flipped := img.ReflectXAxis()
	score, match = q.Eval(flipped)
	if match {
		t.Error("vertically flipped scene should not fully match")
	}
	if score >= 1 || score <= 0 {
		t.Errorf("flipped score = %v, want partial", score)
	}
}

func TestLabels(t *testing.T) {
	q := mustParse(t, "A left-of B; C overlaps B")
	labels := q.Labels()
	if len(labels) != 3 || !labels["A"] || !labels["B"] || !labels["C"] {
		t.Errorf("Labels = %v", labels)
	}
}

func TestEvalEmptyQuery(t *testing.T) {
	var q Query
	score, match := q.Eval(figureImage())
	if score != 0 || match {
		t.Errorf("empty query Eval = (%v, %v)", score, match)
	}
}
