package bench

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime/debug"
	"time"

	"bestring/internal/imagedb"
	"bestring/internal/repl"
	"bestring/internal/wal"
	"bestring/internal/workload"
)

// ReplicationCatchup is experiment E14 (the replication experiment, not
// from the paper): how fast a follower ingests a primary's history, and
// how far it trails under a paced write load.
//
// Catch-up compares two ways of replaying the same n-record WAL into a
// fresh replica store: "local" tails the primary's log in-process and
// applies batches directly (no network, the replay-machinery ceiling),
// "catchup" runs the real follower loop against the primary's HTTP
// stream. Both replicas run fsync=never so the ratio isolates the wire
// protocol's overhead (decode, HTTP chunking, batching) rather than
// sampling the disk's fsync jitter twice — the acceptance bar is
// catchup >= 0.8x local.
//
// The steady-state phase then paces `paced` single-record writes onto
// the primary, one per `pace`, sampling the follower's lag (primary
// durable LSN minus follower applied LSN) after each write. Lag is
// reported in records; it bundles the primary's fsync-interval
// durability delay with the stream/apply latency, which is exactly the
// staleness a replica read observes.
func ReplicationCatchup(sizes []int, paced int, pace time.Duration) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Caption: "replication: follower catch-up vs local replay, steady-state lag under paced writes",
		Header:  []string{"records", "local rec/s", "catchup rec/s", "ratio", "lag mean", "lag max"},
	}
	for _, n := range sizes {
		if err := replicationPoint(t, n, paced, pace); err != nil {
			return nil, fmt.Errorf("E14: %w", err)
		}
	}
	return t, nil
}

// replicationPoint runs one E14 row end to end.
func replicationPoint(t *Table, n, paced int, pace time.Duration) error {
	// Same rationale as E11b: compare replay protocols, not collector
	// schedules.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	ctx := context.Background()
	gen := workload.NewGenerator(workload.Config{
		Seed: DefaultSeed + 14, Vocabulary: 32, Objects: 8,
	})
	pool := gen.Dataset(64)

	// Primary: fsync=interval so seeding n individual records (each one
	// WAL frame, the stream's unit) stays cheap; the explicit Sync below
	// makes the whole history durable — the precondition for shipping it.
	pdir, err := os.MkdirTemp("", "bestring-e14-p-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(pdir)
	ps, err := imagedb.OpenStore(pdir, imagedb.StoreOptions{
		Fsync:           imagedb.FsyncInterval,
		FsyncInterval:   5 * time.Millisecond,
		CheckpointBytes: -1,
		NoGroupCommit:   true,
	})
	if err != nil {
		return err
	}
	defer ps.Close()
	for i := 0; i < n; i++ {
		if err := ps.Insert(fmt.Sprintf("img%08d", i), "", pool[i%len(pool)]); err != nil {
			return err
		}
	}
	if err := ps.Sync(); err != nil {
		return err
	}
	last := ps.DurableLSN()

	// Local replay baseline: tail the primary's log in-process, apply in
	// follower-sized batches. This is the machinery ceiling — everything
	// the follower does except the HTTP transport. Best of two runs, so
	// one unlucky scheduling quantum does not set the row (same below).
	localDur, err := localReplay(ctx, ps, last)
	if err != nil {
		return err
	}
	if again, err := localReplay(ctx, ps, last); err != nil {
		return err
	} else if again < localDur {
		localDur = again
	}

	// Real follower over HTTP.
	primary := repl.NewPrimary(ps, 50*time.Millisecond)
	mux := http.NewServeMux()
	primary.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	catchupDur, err := httpCatchup(ctx, srv.URL, last)
	if err != nil {
		return err
	}

	fdir, err := os.MkdirTemp("", "bestring-e14-f-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(fdir)
	fs, err := imagedb.OpenStore(fdir, imagedb.StoreOptions{
		Fsync: imagedb.FsyncNever, CheckpointBytes: -1, Replica: true,
	})
	if err != nil {
		return err
	}
	defer fs.Close()
	follower, err := repl.NewFollower(fs, srv.URL, 0)
	if err != nil {
		return err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	runDone := make(chan error, 1)
	start := time.Now()
	go func() { runDone <- follower.Run(runCtx) }()
	if err := waitApplied(fs, last, runDone); err != nil {
		return err
	}
	if d := time.Since(start); d < catchupDur {
		catchupDur = d
	}

	// Steady state: paced single-record writes, lag sampled after each.
	var lagSum, lagMax, samples uint64
	for i := 0; i < paced; i++ {
		if err := ps.Insert(fmt.Sprintf("pace%08d", i), "", pool[i%len(pool)]); err != nil {
			return err
		}
		time.Sleep(pace)
		durable, applied := ps.DurableLSN(), fs.AppliedLSN()
		if applied < durable {
			lag := durable - applied
			lagSum += lag
			if lag > lagMax {
				lagMax = lag
			}
		}
		samples++
	}
	// Convergence check: the follower must drain the paced tail too.
	if err := ps.Sync(); err != nil {
		return err
	}
	if err := waitApplied(fs, ps.DurableLSN(), runDone); err != nil {
		return err
	}
	cancel()
	<-runDone

	localRate := float64(last) / localDur.Seconds()
	catchupRate := float64(last) / catchupDur.Seconds()
	ratio := 0.0
	if localRate > 0 {
		ratio = catchupRate / localRate
	}
	t.AddRow(FmtInt(n),
		fmt.Sprintf("%.0f", localRate), fmt.Sprintf("%.0f", catchupRate),
		fmt.Sprintf("%.2fx", ratio),
		fmt.Sprintf("%.1f", float64(lagSum)/float64(samples)), FmtInt(int(lagMax)))
	return nil
}

// httpCatchup runs one throwaway follower against the primary's stream
// and times how long it takes to apply `last` records into a fresh
// replica store.
func httpCatchup(ctx context.Context, primaryURL string, last uint64) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "bestring-e14-c-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	fs, err := imagedb.OpenStore(dir, imagedb.StoreOptions{
		Fsync: imagedb.FsyncNever, CheckpointBytes: -1, Replica: true,
	})
	if err != nil {
		return 0, err
	}
	defer fs.Close()
	follower, err := repl.NewFollower(fs, primaryURL, 0)
	if err != nil {
		return 0, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	runDone := make(chan error, 1)
	start := time.Now()
	go func() { runDone <- follower.Run(runCtx) }()
	if err := waitApplied(fs, last, runDone); err != nil {
		return 0, err
	}
	d := time.Since(start)
	cancel()
	<-runDone
	return d, nil
}

// localReplay applies the primary's first `last` records into a fresh
// replica store by tailing the log directly, batch size matching the
// follower's default. Returns the elapsed wall time.
func localReplay(ctx context.Context, ps *imagedb.Store, last uint64) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "bestring-e14-l-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	rs, err := imagedb.OpenStore(dir, imagedb.StoreOptions{
		Fsync: imagedb.FsyncNever, CheckpointBytes: -1, Replica: true,
	})
	if err != nil {
		return 0, err
	}
	defer rs.Close()
	tailer := ps.TailWAL(0)
	defer tailer.Close()
	start := time.Now()
	// Same per-record machinery as the follower (raw frame in, decode,
	// raw frame out) so the catchup/local ratio isolates the HTTP hop.
	batch := make([]wal.Record, 0, repl.DefaultBatchMax)
	frames := make([][]byte, 0, repl.DefaultBatchMax)
	for applied := uint64(0); applied < last; {
		lsn, raw, err := tailer.NextRaw(ctx)
		if err != nil {
			return 0, err
		}
		rec, _, err := wal.ReadFrameRaw(bytes.NewReader(raw))
		if err != nil {
			return 0, err
		}
		batch = append(batch, rec)
		frames = append(frames, append([]byte(nil), raw...))
		if len(batch) == cap(batch) || lsn == last {
			if err := rs.ApplyReplicatedFrames(batch, frames); err != nil {
				return 0, err
			}
			applied = lsn
			batch, frames = batch[:0], frames[:0]
		}
	}
	return time.Since(start), nil
}

// waitApplied polls the follower store until it reaches lsn, failing
// fast if the follower loop dies first.
func waitApplied(fs *imagedb.Store, lsn uint64, runDone <-chan error) error {
	deadline := time.Now().Add(60 * time.Second)
	for fs.AppliedLSN() < lsn {
		select {
		case err := <-runDone:
			return fmt.Errorf("follower stopped at lsn %d (want %d): %v", fs.AppliedLSN(), lsn, err)
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("follower stuck at lsn %d (want %d)", fs.AppliedLSN(), lsn)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}
