package bench

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"bestring/internal/baseline/bstring"
	"bestring/internal/baseline/cstring"
	"bestring/internal/baseline/gstring"
	"bestring/internal/baseline/twodstring"
	"bestring/internal/baseline/typesim"
	"bestring/internal/clique"
	"bestring/internal/core"
	"bestring/internal/imagedb"
	"bestring/internal/lcs"
	"bestring/internal/retrieval"
	"bestring/internal/similarity"
	"bestring/internal/workload"
)

// Sink receives computation results so the compiler cannot elide the work
// being measured.
var Sink int

// DefaultSeed keeps every experiment deterministic.
const DefaultSeed = 20010407 // ICDCS 2001, April

// defaultMeasure is the per-point measuring budget.
const defaultMeasure = 20 * time.Millisecond

// Figure1 reproduces experiment E1: the worked example of the paper's
// Figure 1 — the three-object image and its exact 2D BE-string.
func Figure1() *Table {
	img := core.Figure1Image()
	got := core.MustConvert(img)
	want := core.Figure1BEString()
	t := &Table{
		ID:      "E1",
		Caption: "Figure 1 worked example: 3-object image -> 2D BE-string",
		Header:  []string{"item", "value"},
	}
	for _, o := range img.Objects {
		t.AddRow("object "+o.Label, o.Box.String())
	}
	t.AddRow("x-axis (computed)", got.X.String())
	t.AddRow("x-axis (paper)", want.X.String())
	t.AddRow("y-axis (computed)", got.Y.String())
	t.AddRow("y-axis (paper)", want.Y.String())
	t.AddRow("exact match", fmt.Sprintf("%v", got.Equal(want)))
	t.AddRow("storage units", fmt.Sprintf("%d (bounds: 2n=%d .. 4n+1=%d per axis)",
		got.StorageUnits(), 2*3, 4*3+1))
	return t
}

// Storage reproduces experiment E2: storage units per image for the 2D
// BE-string against every family member, over an object-count sweep at two
// densities (sparse scenes cut little; dense scenes cut a lot).
func Storage(ns []int, scenesPerPoint int) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Caption: "storage units/image (mean): BE-string O(n) vs family; G/C-string grow superlinearly with overlap",
		Header:  []string{"n", "density", "2D-BE", "2D-B", "2D-C", "2D-G", "2-D", "BE-min(4n)", "BE-max(8n+2)"},
	}
	for _, n := range ns {
		for _, density := range []string{"sparse", "dense"} {
			maxExtent := 8
			canvas := judgeCanvas(n, density)
			if density == "dense" {
				maxExtent = canvas / 2
			}
			gen := workload.NewGenerator(workload.Config{
				Seed: DefaultSeed, Width: canvas, Height: canvas,
				Vocabulary: n, Objects: n, MaxExtent: maxExtent,
			})
			var be, b, c, g, two float64
			for s := 0; s < scenesPerPoint; s++ {
				img := gen.Scene()
				beStr, err := core.Convert(img)
				if err != nil {
					return nil, fmt.Errorf("E2: %w", err)
				}
				bStr, err := bstring.Build(img)
				if err != nil {
					return nil, fmt.Errorf("E2: %w", err)
				}
				cStr, err := cstring.Build(img)
				if err != nil {
					return nil, fmt.Errorf("E2: %w", err)
				}
				gStr, err := gstring.Build(img)
				if err != nil {
					return nil, fmt.Errorf("E2: %w", err)
				}
				twoStr, err := twodstring.Build(img)
				if err != nil {
					return nil, fmt.Errorf("E2: %w", err)
				}
				be += float64(beStr.StorageUnits())
				b += float64(bStr.StorageUnits())
				c += float64(cStr.StorageUnits())
				g += float64(gStr.StorageUnits())
				two += float64(twoStr.StorageUnits())
			}
			div := float64(scenesPerPoint)
			t.AddRow(FmtInt(n), density,
				fmt.Sprintf("%.1f", be/div),
				fmt.Sprintf("%.1f", b/div),
				fmt.Sprintf("%.1f", c/div),
				fmt.Sprintf("%.1f", g/div),
				fmt.Sprintf("%.1f", two/div),
				FmtInt(4*n), FmtInt(2*(4*n+1)))
		}
	}
	return t, nil
}

// judgeCanvas picks a canvas that keeps sparse scenes mostly disjoint.
func judgeCanvas(n int, density string) int {
	if density == "sparse" {
		return 20 * n
	}
	return 4 * n
}

// ConvertTiming reproduces experiment E3: Convert-2D-Be-String build time
// over an object-count sweep, with the normalised n*log2(n) constant that
// should stay flat if the claimed complexity holds.
func ConvertTiming(ns []int) *Table {
	t := &Table{
		ID:      "E3",
		Caption: "Convert-2D-Be-String build time (O(n log n) incl. sort; O(n) ex-sort)",
		Header:  []string{"n", "us/op", "ns/(n*log2 n)"},
	}
	for _, n := range ns {
		gen := workload.NewGenerator(workload.Config{
			Seed: DefaultSeed, Width: 4 * n, Height: 4 * n, Vocabulary: n, Objects: n,
		})
		img := gen.Scene()
		d := MeasureOp(defaultMeasure, func() {
			be, err := core.Convert(img)
			if err == nil {
				Sink += len(be.X)
			}
		})
		norm := float64(d.Nanoseconds()) / (float64(n) * math.Log2(float64(max(n, 2))))
		t.AddRow(FmtInt(n), FmtDur(d), fmt.Sprintf("%.1f", norm))
	}
	return t
}

// LCSTiming reproduces experiment E4: 2D-Be-LCS-Length time over an (m, n)
// grid, with the normalised m*n constant that should stay flat for the
// claimed O(mn).
func LCSTiming(ms, ns []int) *Table {
	t := &Table{
		ID:      "E4",
		Caption: "2D-Be-LCS-Length time over query size m x database size n (O(mn))",
		Header:  []string{"m", "n", "us/op", "ns/(m*n)"},
	}
	for _, m := range ms {
		for _, n := range ns {
			genQ := workload.NewGenerator(workload.Config{
				Seed: DefaultSeed + 1, Width: 4 * m, Height: 4 * m, Vocabulary: m, Objects: m,
			})
			genD := workload.NewGenerator(workload.Config{
				Seed: DefaultSeed + 2, Width: 4 * n, Height: 4 * n, Vocabulary: n, Objects: n,
			})
			q := core.MustConvert(genQ.Scene())
			d := core.MustConvert(genD.Scene())
			dur := MeasureOp(defaultMeasure, func() {
				Sink += lcs.Length(q.X, d.X) + lcs.Length(q.Y, d.Y)
			})
			norm := float64(dur.Nanoseconds()) / float64(m*n)
			t.AddRow(FmtInt(m), FmtInt(n), FmtDur(dur), fmt.Sprintf("%.1f", norm))
		}
	}
	return t
}

// Quality reproduces experiment E5: retrieval quality of the BE-LCS
// similarity versus the clique-based type-0/1/2 baselines and the
// dummy-stripped ablation, on partial-and-perturbed query workloads.
func Quality(cfg retrieval.WorkloadConfig) (*Table, error) {
	w, err := retrieval.BuildWorkload(cfg)
	if err != nil {
		return nil, fmt.Errorf("E5: %w", err)
	}
	methods := map[string]imagedb.Scorer{
		"be-lcs":       imagedb.BEScorer(),
		"be-lcs-nodum": imagedb.SymbolsOnlyScorer(),
		"type-0":       imagedb.TypeSimScorer(typesim.Type0),
		"type-1":       imagedb.TypeSimScorer(typesim.Type1),
		"type-2":       imagedb.TypeSimScorer(typesim.Type2),
	}
	rows, err := w.RunMethods(context.Background(), methods)
	if err != nil {
		return nil, fmt.Errorf("E5: %w", err)
	}
	t := &Table{
		ID: "E5",
		Caption: fmt.Sprintf(
			"retrieval quality: %d distractors, %d planted/query, keep %d of %d objects, jitter %d",
			w.Config.Distractors, w.Config.Relevant, w.Config.QueryKeep, w.Config.Objects, w.Config.Jitter),
		Header: []string{"method", "P@k", "R@k", "MRR", "AP"},
	}
	for _, r := range rows {
		t.AddRow(r.Method, FmtF3(r.PrecisionAtK), FmtF3(r.RecallAtK), FmtF3(r.MRR), FmtF3(r.AP))
	}
	return t, nil
}

// QualityConfigs returns the named difficulty levels of experiment E5.
// "easy" uses full exact queries (every method should be perfect);
// "medium" drops half the query objects and jitters variants; "hard" keeps
// three objects, jitters heavily and shrinks the vocabulary so distractors
// collide with query labels.
func QualityConfigs(seed int64) []struct {
	Name string
	Cfg  retrieval.WorkloadConfig
} {
	return []struct {
		Name string
		Cfg  retrieval.WorkloadConfig
	}{
		{"easy", retrieval.WorkloadConfig{Seed: seed, QueryKeep: 8, Jitter: 0}},
		{"medium", retrieval.WorkloadConfig{Seed: seed, QueryKeep: 4, Jitter: 3}},
		{"hard", retrieval.WorkloadConfig{Seed: seed, QueryKeep: 3, Jitter: 8, Vocabulary: 20}},
	}
}

// CliqueBlowup is the adversarial companion of experiment E7: it times the
// maximum-clique solver on Moon–Moser graphs (complete k-partite graphs
// with parts of size 3, which have 3^k maximal cliques — the classical
// worst case for clique enumeration) against the BE-LCS evaluation of
// images with the same number of objects. Realistic scenes rarely trigger
// the exponential behaviour; this table shows the cliff is real.
func CliqueBlowup(parts []int) *Table {
	t := &Table{
		ID:      "E7b",
		Caption: "NP-hard core: max clique on Moon-Moser K(3,...,3) vs BE-LCS at equal object count",
		Header:  []string{"objects n", "maximal cliques", "clique us/op", "be-lcs us/op", "ratio"},
	}
	for _, k := range parts {
		n := 3 * k
		g := clique.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if u/3 != v/3 {
					// Different parts: edge. Indices in range by loop bounds.
					_ = g.AddEdge(u, v)
				}
			}
		}
		cliqueD := MeasureOp(defaultMeasure, func() {
			Sink += g.MaxCliqueSize()
		})
		gen := workload.NewGenerator(workload.Config{
			Seed: DefaultSeed + 4, Width: 6 * n, Height: 6 * n, Vocabulary: n, Objects: n,
		})
		base := gen.Scene()
		qbe := core.MustConvert(gen.JitterQuery(base, 2))
		dbe := core.MustConvert(base)
		lcsD := MeasureOp(defaultMeasure, func() {
			Sink += similarity.Evaluate(qbe, dbe).LX
		})
		maximal := math.Pow(3, float64(k))
		t.AddRow(FmtInt(n), fmt.Sprintf("%.0f", maximal), FmtDur(cliqueD), FmtDur(lcsD),
			fmt.Sprintf("%.1fx", float64(cliqueD)/float64(max(int(lcsD), 1))))
	}
	return t
}

// Transforms reproduces experiment E6: correctness of the string-level
// rotations/reflections against coordinate-space rebuilds, and the speedup
// of answering a transformed query on the strings versus reconverting the
// transformed image.
func Transforms(n, scenes int) (*Table, error) {
	gen := workload.NewGenerator(workload.Config{
		Seed: DefaultSeed, Width: 4 * n, Height: 4 * n, Vocabulary: n, Objects: n,
	})
	imgs := gen.Dataset(scenes)
	t := &Table{
		ID:      "E6",
		Caption: fmt.Sprintf("linear transforms on strings vs rebuild (n=%d objects)", n),
		Header:  []string{"transform", "equal to rebuild", "string us/op", "rebuild us/op", "speedup"},
	}
	for _, tr := range core.AllTransforms {
		allEqual := true
		for _, img := range imgs {
			if !core.MustConvert(img).Apply(tr).Equal(core.MustConvert(core.ApplyToImage(img, tr))) {
				allEqual = false
			}
		}
		be := core.MustConvert(imgs[0])
		img := imgs[0]
		sd := MeasureOp(defaultMeasure, func() {
			Sink += be.Apply(tr).StorageUnits()
		})
		rd := MeasureOp(defaultMeasure, func() {
			Sink += core.MustConvert(core.ApplyToImage(img, tr)).StorageUnits()
		})
		t.AddRow(tr.String(), fmt.Sprintf("%v", allEqual), FmtDur(sd), FmtDur(rd),
			fmt.Sprintf("%.1fx", float64(rd)/float64(max(int(sd), 1))))
	}
	return t, nil
}

// MatchCost reproduces experiment E7: matching cost of the O(mn) BE-LCS
// evaluation versus the O(n^2)-pairs + maximum-clique type-i assessment,
// over an object-count sweep. The similarity values differ by design; the
// experiment compares what the paper compares — the cost of obtaining a
// similarity judgement.
func MatchCost(ns []int) *Table {
	t := &Table{
		ID:      "E7",
		Caption: "matching cost: BE-LCS (O(mn)) vs type-i pair examination + max clique (NP-hard)",
		Header:  []string{"n", "pairs", "be-lcs us/op", "type-0 us/op", "type-2 us/op", "type-0/lcs"},
	}
	for _, n := range ns {
		genQ := workload.NewGenerator(workload.Config{
			Seed: DefaultSeed + 3, Width: 6 * n, Height: 6 * n, Vocabulary: n, Objects: n,
		})
		base := genQ.Scene()
		// The query is a jittered variant so labels all match and the
		// compatibility graph is large — the demanding case for clique.
		query := genQ.JitterQuery(base, 2)
		qbe := core.MustConvert(query)
		dbe := core.MustConvert(base)
		lcsD := MeasureOp(defaultMeasure, func() {
			Sink += similarity.Evaluate(qbe, dbe).LX
		})
		t0 := MeasureOp(defaultMeasure, func() {
			Sink += typesim.Similarity(query, base, typesim.Type0).Score()
		})
		t2 := MeasureOp(defaultMeasure, func() {
			Sink += typesim.Similarity(query, base, typesim.Type2).Score()
		})
		t.AddRow(FmtInt(n), FmtInt(typesim.PairCount(query, base)),
			FmtDur(lcsD), FmtDur(t0), FmtDur(t2),
			fmt.Sprintf("%.1fx", float64(t0)/float64(max(int(lcsD), 1))))
	}
	return t
}

// SearchScaling reproduces experiment E9 (the engine experiment, not from
// the paper): ranked retrieval latency of the sharded database over a
// corpus-size sweep, comparing the full-sort path (K=0: score everything,
// sort everything) against the bounded top-K heap path at the same corpus.
// Both paths return byte-identical top-K rankings; the table shows what
// the O(n log K) accumulation saves as n grows.
func SearchScaling(sizes []int, k int) (*Table, error) {
	t := &Table{
		ID: "E9",
		Caption: fmt.Sprintf(
			"sharded search engine: full-sort (K=0) vs bounded top-%d heaps, GOMAXPROCS workers", k),
		Header: []string{"images", "shards", "fullsort us/op", "topk us/op", "speedup"},
	}
	ctx := context.Background()
	for _, n := range sizes {
		gen := workload.NewGenerator(workload.Config{
			Seed: DefaultSeed + 9, Vocabulary: 32, Objects: 8,
		})
		scenes := gen.Dataset(n)
		items := make([]imagedb.BulkItem, n)
		for i, s := range scenes {
			items[i] = imagedb.BulkItem{ID: fmt.Sprintf("img%06d", i), Image: s}
		}
		db := imagedb.New()
		if err := db.BulkInsert(ctx, items, 0); err != nil {
			return nil, fmt.Errorf("E9: %w", err)
		}
		query := gen.SubsetQuery(scenes[n/2], 4)
		fullD := MeasureOp(defaultMeasure, func() {
			rs, err := db.Search(ctx, query, imagedb.SearchOptions{})
			if err == nil {
				Sink += len(rs)
			}
		})
		topD := MeasureOp(defaultMeasure, func() {
			rs, err := db.Search(ctx, query, imagedb.SearchOptions{K: k})
			if err == nil {
				Sink += len(rs)
			}
		})
		t.AddRow(FmtInt(n), FmtInt(db.ShardCount()), FmtDur(fullD), FmtDur(topD),
			fmt.Sprintf("%.2fx", float64(fullD)/float64(max(int(topD), 1))))
	}
	return t, nil
}

// FilteredSearch is experiment E10 (the pipeline experiment, not from
// the paper): ranked-retrieval latency when the composable query
// pipeline narrows candidates before scoring, over a corpus sweep and a
// filter-selectivity sweep. A selectivity of s% plants a
// "tagS left-of anchorS" icon pair in s% of the corpus; the query then
// ranks by BE-LCS among images satisfying the clause, so scoring work
// shrinks with the surviving candidate count while the unfiltered
// column pays the full corpus every time.
func FilteredSearch(sizes []int, selectivities []int, k int) (*Table, error) {
	t := &Table{
		ID: "E10",
		Caption: fmt.Sprintf(
			"filtered-search scaling: Where-narrowed top-%d pipeline vs unfiltered ranked search", k),
		Header: []string{"images", "selectivity", "candidates", "unfiltered us/op", "filtered us/op", "speedup"},
	}
	ctx := context.Background()
	for _, sel := range selectivities {
		if sel <= 0 || sel > 100 || 100%sel != 0 {
			return nil, fmt.Errorf("E10: selectivity %d%% must divide 100", sel)
		}
	}
	for _, n := range sizes {
		gen := workload.NewGenerator(workload.Config{
			Seed: DefaultSeed + 10, Vocabulary: 32, Objects: 8,
		})
		scenes := gen.Dataset(n)
		items := make([]imagedb.BulkItem, n)
		for i, s := range scenes {
			// Plant one marker pair per selectivity tier on its share of
			// the corpus (i%1 == 0 marks everything: the 100% tier).
			for _, sel := range selectivities {
				if mod := 100 / sel; i%mod == 0 {
					s = s.WithObject(core.Object{
						Label: fmt.Sprintf("tag%d", sel), Box: core.NewRect(0, 0, 1, 1),
					}).WithObject(core.Object{
						Label: fmt.Sprintf("anchor%d", sel), Box: core.NewRect(3, 0, 4, 1),
					})
				}
			}
			items[i] = imagedb.BulkItem{ID: fmt.Sprintf("img%06d", i), Image: s}
		}
		db := imagedb.New()
		if err := db.BulkInsert(ctx, items, 0); err != nil {
			return nil, fmt.Errorf("E10: %w", err)
		}
		query := gen.SubsetQuery(scenes[n/2], 4)
		var opErr error
		baseD := MeasureOp(defaultMeasure, func() {
			page, err := db.Query(ctx, imagedb.NewQuery(query), imagedb.WithK(k))
			if err != nil {
				opErr = err
				return
			}
			Sink += len(page.Hits)
		})
		if opErr != nil {
			return nil, fmt.Errorf("E10: %w", opErr)
		}
		for _, sel := range selectivities {
			where := fmt.Sprintf("tag%d left-of anchor%d", sel, sel)
			candidates := 0
			filtD := MeasureOp(defaultMeasure, func() {
				page, err := db.Query(ctx, imagedb.NewQuery(query),
					imagedb.WithK(k), imagedb.Where(where))
				if err != nil {
					opErr = err
					return
				}
				candidates = page.Total
				Sink += len(page.Hits)
			})
			if opErr != nil {
				return nil, fmt.Errorf("E10: %w", opErr)
			}
			t.AddRow(FmtInt(n), fmt.Sprintf("%d%%", sel), FmtInt(candidates),
				FmtDur(baseD), FmtDur(filtD),
				fmt.Sprintf("%.2fx", float64(baseD)/float64(max(int(filtD), 1))))
		}
	}
	return t, nil
}

// Incremental reproduces experiment E8: incremental object insert/delete
// on the coordinate-annotated BE-string versus a full reconversion.
func Incremental(ns []int) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Caption: "incremental insert/delete (binary search + splice) vs full Convert",
		Header:  []string{"n", "insert us/op", "delete us/op", "rebuild us/op"},
	}
	for _, n := range ns {
		gen := workload.NewGenerator(workload.Config{
			Seed: DefaultSeed, Width: 8 * n, Height: 8 * n, Vocabulary: n + 1, Objects: n,
		})
		img := gen.Scene()
		ix, err := core.NewIndexed(img)
		if err != nil {
			return nil, fmt.Errorf("E8: %w", err)
		}
		extra := core.Object{Label: "extra", Box: core.NewRect(0, 0, 3, 3)}
		insD := MeasureOp(defaultMeasure, func() {
			if err := ix.Insert(extra); err == nil {
				Sink++
				_ = ix.Delete(extra.Label)
			}
		})
		if err := ix.Insert(extra); err != nil {
			return nil, fmt.Errorf("E8: %w", err)
		}
		delD := MeasureOp(defaultMeasure, func() {
			if err := ix.Delete(extra.Label); err == nil {
				Sink++
				_ = ix.Insert(extra)
			}
		})
		grown := img.WithObject(extra)
		rebD := MeasureOp(defaultMeasure, func() {
			Sink += core.MustConvert(grown).StorageUnits()
		})
		// insD and delD each time an insert+delete pair; halve for one op.
		t.AddRow(FmtInt(n), FmtDur(insD/2), FmtDur(delD/2), FmtDur(rebD))
	}
	return t, nil
}

// WALThroughput is experiment E11 (the durability experiment, not from
// the paper): acknowledged-write throughput of the durable store across
// the fsync-policy x batch-size grid. Every point opens a fresh store in
// a temp directory with automatic checkpointing disabled, so the numbers
// isolate the WAL append path: fsync=always pays one fsync per
// acknowledgement, interval amortises it over a 10ms window, never leaves
// flushing to the OS. Batching amortises both the frame encode and the
// fsync over the batch, which is why records/s climbs steeply with batch
// size under fsync=always.
//
// Every point measures DURABLE throughput: the timed region ends with an
// explicit WAL flush, so interval/never do not get credit for appends
// still sitting in the OS page cache when the clock stops. Group commit
// is disabled — this grid is the sequential, one-record-one-fsync
// baseline; the concurrent-writer coalescing axis is E11b.
func WALThroughput(batchSizes []int) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Caption: "durable store write throughput: fsync policy x batch size (auto-checkpoint off)",
		Header:  []string{"fsync", "batch", "records/s", "us/record", "wal KB"},
	}
	ctx := context.Background()
	gen := workload.NewGenerator(workload.Config{
		Seed: DefaultSeed + 11, Vocabulary: 32, Objects: 8,
	})
	// One shared scene pool: the image payload is identical across
	// points, so only the durability knobs move the numbers.
	pool := gen.Dataset(64)
	for _, policy := range []imagedb.FsyncPolicy{
		imagedb.FsyncAlways, imagedb.FsyncInterval, imagedb.FsyncNever,
	} {
		for _, batch := range batchSizes {
			dir, err := os.MkdirTemp("", "bestring-e11-*")
			if err != nil {
				return nil, fmt.Errorf("E11: %w", err)
			}
			s, err := imagedb.OpenStore(dir, imagedb.StoreOptions{
				Fsync:           policy,
				FsyncInterval:   10 * time.Millisecond,
				CheckpointBytes: -1,
				NoGroupCommit:   true,
			})
			if err != nil {
				os.RemoveAll(dir)
				return nil, fmt.Errorf("E11: %w", err)
			}
			next := 0
			var opErr error
			perBatch, syncErr := measureDurable(defaultMeasure, s.Sync, func() {
				if batch == 1 {
					id := fmt.Sprintf("img%08d", next)
					next++
					if err := s.Insert(id, "", pool[next%len(pool)]); err != nil {
						opErr = err
					}
					return
				}
				items := make([]imagedb.BulkItem, batch)
				for i := range items {
					items[i] = imagedb.BulkItem{
						ID: fmt.Sprintf("img%08d", next), Image: pool[next%len(pool)],
					}
					next++
				}
				if err := s.BulkInsert(ctx, items, 0); err != nil {
					opErr = err
				}
			})
			walKB := s.StoreStats().WAL.Bytes >> 10
			closeErr := s.Close()
			os.RemoveAll(dir)
			if opErr == nil {
				opErr = syncErr
			}
			if opErr != nil {
				return nil, fmt.Errorf("E11: %w", opErr)
			}
			if closeErr != nil {
				return nil, fmt.Errorf("E11: %w", closeErr)
			}
			perRecord := perBatch / time.Duration(batch)
			recsPerSec := 0.0
			if perRecord > 0 {
				recsPerSec = float64(time.Second) / float64(perRecord)
			}
			t.AddRow(policy.String(), FmtInt(batch),
				fmt.Sprintf("%.0f", recsPerSec), FmtDur(perRecord),
				FmtInt(int(walKB)))
		}
	}
	return t, nil
}

// measureDurable times fn like MeasureOp but closes the timed region
// with flush(), so durability policies that buffer appends (interval,
// never) are billed for making the measured batch durable rather than
// just for enqueueing it. The flush is amortised over the iterations,
// mirroring how those policies amortise fsyncs in production.
func measureDurable(minDuration time.Duration, flush func() error, fn func()) (time.Duration, error) {
	// Warm-up and single-shot estimate (flushed, so the estimate is
	// consistent with the measured regime).
	start := time.Now()
	fn()
	if err := flush(); err != nil {
		return 0, err
	}
	single := time.Since(start)
	if single >= minDuration {
		return single, nil
	}
	iters := int(minDuration/single) + 1
	start = time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	if err := flush(); err != nil {
		return 0, err
	}
	return time.Since(start) / time.Duration(iters), nil
}

// GroupCommitScaling is experiment E11b: acknowledged-write throughput
// at fsync=always as the number of concurrent writers grows, with group
// commit on versus off. Unbatched, every writer's insert pays its own
// fsync under the store's mutation lock, so throughput is flat in writer
// count (the disk serialises everyone). With group commit, writers that
// arrive during a commit's fsync coalesce into the next group — one
// frame, one fsync, one published version for the lot — so throughput
// scales with the writer count until the committer's CPU work per record
// dominates. "mean group" is mutations/groups: the realised coalescing
// factor, which should track the writer count.
func GroupCommitScaling(writerCounts []int, window time.Duration) (*Table, error) {
	t := &Table{
		ID:      "E11b",
		Caption: "group commit: acknowledged-write throughput at fsync=always vs concurrent writers (auto-checkpoint off)",
		Header:  []string{"writers", "unbatched rec/s", "batched rec/s", "speedup", "mean group", "largest"},
	}
	for _, writers := range writerCounts {
		base, _, err := groupCommitPoint(writers, true, window)
		if err != nil {
			return nil, fmt.Errorf("E11b: %w", err)
		}
		batched, cs, err := groupCommitPoint(writers, false, window)
		if err != nil {
			return nil, fmt.Errorf("E11b: %w", err)
		}
		meanGroup := 0.0
		if cs.Groups > 0 {
			meanGroup = float64(cs.Mutations) / float64(cs.Groups)
		}
		speedup := 0.0
		if base > 0 {
			speedup = batched / base
		}
		t.AddRow(FmtInt(writers),
			fmt.Sprintf("%.0f", base), fmt.Sprintf("%.0f", batched),
			fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%.1f", meanGroup),
			FmtInt(int(cs.Largest)))
	}
	return t, nil
}

// groupCommitPoint runs one E11b cell: `writers` goroutines inserting
// distinct ids into a fresh fsync=always store for the measure window,
// with group commit disabled (the baseline) or enabled.
func groupCommitPoint(writers int, unbatched bool, window time.Duration) (float64, imagedb.CommitStats, error) {
	// A write-rate benchmark on a growing store is dominated by GC churn
	// at the default target; relax it identically for both modes so the
	// table compares commit protocols, not collector schedules.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	dir, err := os.MkdirTemp("", "bestring-e11b-*")
	if err != nil {
		return 0, imagedb.CommitStats{}, err
	}
	defer os.RemoveAll(dir)
	// High shard count on purpose: the copy-on-write commit path copies
	// each touched shard, so shard size — not shard count — is what the
	// write path pays; 1024 shards keep that copy small while the store
	// grows, for the batched and unbatched points alike.
	s, err := imagedb.OpenStore(dir, imagedb.StoreOptions{
		Shards:          1024,
		Fsync:           imagedb.FsyncAlways,
		CheckpointBytes: -1,
		NoGroupCommit:   unbatched,
	})
	if err != nil {
		return 0, imagedb.CommitStats{}, err
	}
	// Small records on purpose: E11b measures the commit path (queue,
	// frame, fsync, publish), not payload processing — E3 and E11 cover
	// per-record conversion and encoding cost.
	gen := workload.NewGenerator(workload.Config{
		Seed: DefaultSeed + 11, Vocabulary: 16, Objects: 2,
	})
	pool := gen.Dataset(64)

	var ops atomic.Uint64
	var errMu sync.Mutex
	var firstErr error
	start := make(chan struct{})
	var deadline time.Time
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; time.Now().Before(deadline); i++ {
				id := fmt.Sprintf("w%02d-%08d", w, i)
				if err := s.Insert(id, "", pool[(w+i)%len(pool)]); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				ops.Add(1)
			}
		}(w)
	}
	deadline = time.Now().Add(window)
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	cs := s.StoreStats().Commit
	closeErr := s.Close()
	if firstErr != nil {
		return 0, imagedb.CommitStats{}, firstErr
	}
	if closeErr != nil {
		return 0, imagedb.CommitStats{}, closeErr
	}
	return float64(ops.Load()) / elapsed.Seconds(), cs, nil
}

// writerPace is the interval between one E12 writer's insert+delete
// pairs: 25ms, i.e. ~80 mutations/s per writer — sustained catalog
// churn for the paper's read-dominated retrieval profile (lookups
// vastly outnumber mutations), while keeping the writers' own CPU
// share small so the table measures reader *interference* (lock
// stalls, publish contention, cache churn) rather than plain core
// sharing on small hosts. An unpaced writer saturating a core would
// measure the scheduler, not the engine.
const writerPace = 25 * time.Millisecond

// MixedReadWrite is experiment E12 (the concurrency experiment, not from
// the paper): ranked-query throughput and latency of concurrent readers
// while 0, 1 or 4 paced writers churn the store. Readers run the full
// staged pipeline against pinned MVCC snapshots and acquire no locks, so
// their numbers should stay within ~10% of the zero-writer baseline
// whatever the writer count — the acceptance bar of the snapshot
// refactor. (The pre-refactor engine took every shard's read lock plus
// the global spatial lock per query, so a bulk writer or checkpoint
// capture stalled the whole read path.)
func MixedReadWrite(n int, writerCounts []int, readers int, window time.Duration) (*Table, error) {
	t := &Table{
		ID: "E12",
		Caption: fmt.Sprintf(
			"mixed read/write: %d snapshot readers (top-10 ranked query, corpus %d) vs paced writers",
			readers, n),
		Header: []string{"images", "writers", "writes/s", "reads/s", "us/query", "vs 0 writers"},
	}
	ctx := context.Background()
	gen := workload.NewGenerator(workload.Config{
		Seed: DefaultSeed + 12, Vocabulary: 32, Objects: 8,
	})
	scenes := gen.Dataset(n)
	items := make([]imagedb.BulkItem, n)
	for i, s := range scenes {
		items[i] = imagedb.BulkItem{ID: fmt.Sprintf("img%06d", i), Image: s}
	}
	// At least 16 shards whatever the host: shard count never changes
	// results, and a writer's copy-on-write cost is one shard's maps —
	// a single-shard layout (GOMAXPROCS=1) would bill each mutation the
	// whole corpus.
	db := imagedb.NewSharded(max(runtime.GOMAXPROCS(0), 16))
	if err := db.BulkInsert(ctx, items, 0); err != nil {
		return nil, fmt.Errorf("E12: %w", err)
	}
	query := gen.SubsetQuery(scenes[n/2], 4)
	churn := gen.Scene() // the image writers insert and delete

	baseline := 0.0
	for _, wc := range writerCounts {
		readsPerSec, writesPerSec, usPerQuery, err := mixedPoint(ctx, db, query, churn, wc, readers, window)
		if err != nil {
			return nil, fmt.Errorf("E12 (%d writers): %w", wc, err)
		}
		if baseline == 0 {
			baseline = readsPerSec
		}
		t.AddRow(FmtInt(n), FmtInt(wc),
			fmt.Sprintf("%.0f", writesPerSec),
			fmt.Sprintf("%.0f", readsPerSec),
			fmt.Sprintf("%.0f", usPerQuery),
			fmt.Sprintf("%.2fx", readsPerSec/baseline))
	}
	return t, nil
}

// mixedPoint measures one (writers, readers) cell: readers issue ranked
// top-10 queries for the window while each writer insert-then-deletes a
// fresh id every writerPace.
func mixedPoint(ctx context.Context, db *imagedb.DB, query, churn core.Image,
	writers, readers int, window time.Duration) (readsPerSec, writesPerSec, usPerQuery float64, err error) {
	stop := make(chan struct{})
	var errMu sync.Mutex
	var firstErr error
	record := func(e error) {
		if e == nil {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		errMu.Unlock()
	}

	var writes atomic.Int64
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			tick := time.NewTicker(writerPace)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				id := fmt.Sprintf("churn-%d-%d", w, i)
				if e := db.Insert(id, "", churn); e != nil {
					record(e)
					return
				}
				if e := db.Delete(id); e != nil {
					record(e)
					return
				}
				writes.Add(2)
			}
		}(w)
	}

	var ops atomic.Int64
	start := time.Now()
	deadline := start.Add(window)
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for time.Now().Before(deadline) {
				page, e := db.Query(ctx, imagedb.NewQuery(query), imagedb.WithK(10))
				if e != nil {
					record(e)
					return
				}
				if len(page.Hits) == 0 {
					record(fmt.Errorf("ranked query returned no hits"))
					return
				}
				ops.Add(1)
			}
		}()
	}
	readerWG.Wait()
	elapsed := time.Since(start)
	close(stop)
	writerWG.Wait()
	if firstErr != nil {
		return 0, 0, 0, firstErr
	}
	reads := ops.Load()
	if reads == 0 || elapsed <= 0 {
		return 0, 0, 0, fmt.Errorf("no reads completed in %v", window)
	}
	readsPerSec = float64(reads) / elapsed.Seconds()
	writesPerSec = float64(writes.Load()) / elapsed.Seconds()
	usPerQuery = float64(readers) * elapsed.Seconds() * 1e6 / float64(reads)
	return readsPerSec, writesPerSec, usPerQuery, nil
}

// relabelDisjoint prefixes every object label, moving the scene into a
// vocabulary disjoint from the generator's — the knob E13 uses to
// control what fraction of the corpus shares icon labels with a query.
func relabelDisjoint(img core.Image) core.Image {
	objs := make([]core.Object, len(img.Objects))
	for i, o := range img.Objects {
		objs[i] = core.Object{Label: "zz-" + o.Label, Box: o.Box}
	}
	return core.NewImage(img.XMax, img.YMax, objs...)
}

// PruneEfficacy is experiment E13 (the filter-and-refine experiment,
// not from the paper): ranked-query latency with the signature-bound
// refine stage on versus off, over corpus size x label selectivity x K.
// A selectivity of s% keeps s% of the corpus in the query's icon
// vocabulary and relabels the rest into a disjoint one: disjoint images
// get a near-zero upper bound and are rejected without the O(mn)
// dynamic program, while shared-vocabulary images are pruned only once
// the top-K floor rises above their bound. Both paths return
// byte-identical rankings (pinned by TestPrunedRankingByteIdentical);
// the table shows what the bound saves and how the saving moves with
// each knob.
func PruneEfficacy(sizes, selectivities, ks []int) (*Table, error) {
	t := &Table{
		ID: "E13",
		Caption: "filter-and-refine ranking: signature-bound pruning on vs off " +
			"(selectivity = corpus share in the query vocabulary)",
		Header: []string{"images", "selectivity", "K", "pruned", "off us/op", "on us/op", "speedup"},
	}
	ctx := context.Background()
	for _, sel := range selectivities {
		if sel <= 0 || sel > 100 {
			return nil, fmt.Errorf("E13: selectivity %d%% out of (0, 100]", sel)
		}
	}
	for _, n := range sizes {
		for _, sel := range selectivities {
			gen := workload.NewGenerator(workload.Config{
				Seed: DefaultSeed + 13, Vocabulary: 32, Objects: 8,
			})
			scenes := gen.Dataset(n)
			items := make([]imagedb.BulkItem, n)
			for i, s := range scenes {
				if i%100 >= sel {
					s = relabelDisjoint(s)
				}
				items[i] = imagedb.BulkItem{ID: fmt.Sprintf("img%06d", i), Image: s}
			}
			db := imagedb.New()
			if err := db.BulkInsert(ctx, items, 0); err != nil {
				return nil, fmt.Errorf("E13: %w", err)
			}
			// scenes[0] keeps its labels at every selectivity (0%100 < sel),
			// so the query always ranks from inside the shared vocabulary.
			query := imagedb.NewQuery(gen.SubsetQuery(scenes[0], 4))
			for _, k := range ks {
				var opErr error
				offD := MeasureOp(defaultMeasure, func() {
					page, err := db.Query(ctx, query, imagedb.WithK(k), imagedb.WithPruning(false))
					if err != nil {
						opErr = err
						return
					}
					Sink += len(page.Hits)
				})
				prunedFrac := 0.0
				onD := MeasureOp(defaultMeasure, func() {
					page, err := db.Query(ctx, query, imagedb.WithK(k))
					if err != nil {
						opErr = err
						return
					}
					if page.Stages != nil && page.Stages.Bounded > 0 {
						prunedFrac = float64(page.Stages.Pruned) / float64(page.Stages.Bounded)
					}
					Sink += len(page.Hits)
				})
				if opErr != nil {
					return nil, fmt.Errorf("E13: %w", opErr)
				}
				t.AddRow(FmtInt(n), fmt.Sprintf("%d%%", sel), FmtInt(k),
					fmt.Sprintf("%.1f%%", 100*prunedFrac),
					FmtDur(offD), FmtDur(onD),
					fmt.Sprintf("%.2fx", float64(offD)/float64(max(int(onD), 1))))
			}
		}
	}
	return t, nil
}

// PlannerCache is experiment E16 (engine, not from the paper): what the
// cost-based query planner and the scorer cache buy, measured against the
// same queries with both turned off. The plan scenarios pick workloads
// that trigger each reordering rule — a tiny region (region-first), a
// clause whose labels blanket the corpus (scan with the postings union
// skipped), and a selective clause under a broad region (filter-first,
// after a warmup run feeds the shape statistics). The cache scenarios
// re-run a refine-heavy unbounded ranked query warm, and under per-op
// write churn that invalidates one entry version per query. Rankings are
// byte-identical base vs opt in every row (pinned by
// TestPlannerRankingByteIdentical / TestScorerCacheRankingByteIdentical);
// the table shows only the cost difference.
func PlannerCache(sizes []int, k int) (*Table, error) {
	t := &Table{
		ID: "E16",
		Caption: "cost-based planner + scorer cache: stage-order and memoisation wins " +
			"(base = planner and cache off; opt = on; identical rankings)",
		Header: []string{"scenario", "images", "plan", "base us/op", "opt us/op", "speedup", "hit rate"},
	}
	ctx := context.Background()
	for _, n := range sizes {
		gen := workload.NewGenerator(workload.Config{
			Seed: DefaultSeed + 16, Vocabulary: 24, Objects: 8,
		})
		scenes := gen.Dataset(n)
		items := make([]imagedb.BulkItem, n)
		for i, s := range scenes {
			items[i] = imagedb.BulkItem{ID: fmt.Sprintf("img%06d", i), Image: s}
		}
		db := imagedb.New()
		if err := db.BulkInsert(ctx, items, 0); err != nil {
			return nil, fmt.Errorf("E16: %w", err)
		}
		queryImg := gen.SubsetQuery(scenes[0], 4)

		type scenario struct {
			name   string
			query  *imagedb.Query
			opts   []imagedb.QueryOption
			warmup int          // opt-side runs before measuring (shape stats, cache)
			churn  func() error // executed inside every measured op, both sides
		}
		tiny := core.NewRect(0, 0, 6, 6)
		blanket := "icon00 left-of icon01; icon02 left-of icon03; icon04 left-of icon05"
		churnObj := core.Object{Label: "zz-churn", Box: core.NewRect(0, 0, 3, 3)}
		scenarios := []scenario{
			{
				name:  "region-first",
				query: imagedb.NewQuery(queryImg),
				opts:  []imagedb.QueryOption{imagedb.WithK(k), imagedb.InRegion(tiny), imagedb.WithLabelPrefilter(true)},
			},
			{
				name:  "label-skip",
				query: imagedb.NewMatchQuery(),
				opts:  []imagedb.QueryOption{imagedb.WithK(k), imagedb.Where(blanket)},
			},
			{
				name:   "filter-first",
				query:  imagedb.NewMatchQuery(),
				opts:   []imagedb.QueryOption{imagedb.WithK(k), imagedb.Where("icon00 contains icon01"), imagedb.InRegion(core.NewRect(0, 0, 95, 95))},
				warmup: 2,
			},
			{
				name:   "cache-warm",
				query:  imagedb.NewQuery(queryImg),
				opts:   nil, // unbounded: every survivor pays an exact evaluation
				warmup: 1,
			},
			{
				name:   "cache-churn",
				query:  imagedb.NewQuery(queryImg),
				opts:   nil,
				warmup: 1,
				churn: func() error {
					if err := db.InsertObject("img000001", churnObj); err != nil {
						return err
					}
					return db.DeleteObject("img000001", churnObj.Label)
				},
			},
		}

		for _, sc := range scenarios {
			base := append(append([]imagedb.QueryOption{}, sc.opts...),
				imagedb.WithPlanner(false), imagedb.WithScorerCache(false))
			opt := sc.opts
			var opErr error
			run := func(opts []imagedb.QueryOption) *imagedb.Page {
				if sc.churn != nil {
					if err := sc.churn(); err != nil {
						opErr = err
						return nil
					}
				}
				page, err := db.Query(ctx, sc.query, opts...)
				if err != nil {
					opErr = err
					return nil
				}
				Sink += len(page.Hits)
				return page
			}
			for i := 0; i < sc.warmup; i++ {
				run(opt)
			}
			baseD := MeasureOp(defaultMeasure, func() { run(base) })
			optD := MeasureOp(defaultMeasure, func() { run(opt) })
			// One instrumented opt run for the plan name and hit rate.
			probe := run(opt)
			if opErr != nil {
				return nil, fmt.Errorf("E16 %s: %w", sc.name, opErr)
			}
			planName, hitRate := "-", "-"
			if probe.Plan != nil {
				planName = probe.Plan.Name
				if lookups := probe.Plan.CacheHits + probe.Plan.CacheMisses; lookups > 0 {
					hitRate = fmt.Sprintf("%.1f%%", 100*float64(probe.Plan.CacheHits)/float64(lookups))
				}
			}
			t.AddRow(sc.name, FmtInt(n), planName,
				FmtDur(baseD), FmtDur(optD),
				fmt.Sprintf("%.2fx", float64(baseD)/float64(max(int(optD), 1))),
				hitRate)
		}
	}
	return t, nil
}
