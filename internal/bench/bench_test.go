package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"bestring/internal/retrieval"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "T1",
		Caption: "test table",
		Header:  []string{"a", "bb"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("3", "4")
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatalf("Fprint: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"T1", "test table", "a", "bb", "1", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "T1", Header: []string{"x", "y"}}
	tab.AddRow("1", "2")
	if got := tab.CSV(); got != "x,y\n1,2\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestMeasureOpReasonable(t *testing.T) {
	d := MeasureOp(2*time.Millisecond, func() { time.Sleep(100 * time.Microsecond) })
	if d < 50*time.Microsecond || d > 5*time.Millisecond {
		t.Errorf("MeasureOp = %v, want around 100us", d)
	}
}

func TestFigure1Table(t *testing.T) {
	tab := Figure1()
	found := false
	for _, row := range tab.Rows {
		if row[0] == "exact match" {
			found = true
			if row[1] != "true" {
				t.Errorf("Figure 1 reproduction must match the paper exactly, got %q", row[1])
			}
		}
	}
	if !found {
		t.Error("exact-match row missing")
	}
}

func TestStorageTableShape(t *testing.T) {
	tab, err := Storage([]int{4, 8}, 3)
	if err != nil {
		t.Fatalf("Storage: %v", err)
	}
	if len(tab.Rows) != 4 { // 2 ns x 2 densities
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// BE storage must respect its bounds columns.
	for _, row := range tab.Rows {
		be, err1 := strconv.ParseFloat(row[2], 64)
		lo, err2 := strconv.Atoi(row[7])
		hi, err3 := strconv.Atoi(row[8])
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if be < float64(lo) || be > float64(hi) {
			t.Errorf("BE storage %v outside bounds [%d,%d]", be, lo, hi)
		}
	}
}

func TestTimingTablesProduceRows(t *testing.T) {
	if got := len(ConvertTiming([]int{4, 8}).Rows); got != 2 {
		t.Errorf("ConvertTiming rows = %d, want 2", got)
	}
	if got := len(LCSTiming([]int{4}, []int{4, 8}).Rows); got != 2 {
		t.Errorf("LCSTiming rows = %d, want 2", got)
	}
	if got := len(MatchCost([]int{4}).Rows); got != 1 {
		t.Errorf("MatchCost rows = %d, want 1", got)
	}
	if got := len(CliqueBlowup([]int{3}).Rows); got != 1 {
		t.Errorf("CliqueBlowup rows = %d, want 1", got)
	}
}

func TestQualityTable(t *testing.T) {
	tab, err := Quality(retrieval.WorkloadConfig{
		Seed: 1, Distractors: 8, Relevant: 2, Queries: 2, QueryKeep: 4,
	})
	if err != nil {
		t.Fatalf("Quality: %v", err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 methods", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v < 0 || v > 1 {
				t.Errorf("metric cell %q out of range", cell)
			}
		}
	}
}

func TestQualityConfigsOrdered(t *testing.T) {
	cfgs := QualityConfigs(1)
	if len(cfgs) != 3 || cfgs[0].Name != "easy" || cfgs[2].Name != "hard" {
		t.Errorf("QualityConfigs = %+v", cfgs)
	}
}

func TestTransformsTableAllEqual(t *testing.T) {
	tab, err := Transforms(8, 4)
	if err != nil {
		t.Fatalf("Transforms: %v", err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 transforms", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] != "true" {
			t.Errorf("transform %s: string and rebuild paths disagree", row[0])
		}
	}
}

func TestIncrementalTable(t *testing.T) {
	tab, err := Incremental([]int{4, 8})
	if err != nil {
		t.Fatalf("Incremental: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
}

func TestSearchScalingTable(t *testing.T) {
	tab, err := SearchScaling([]int{50, 100}, 5)
	if err != nil {
		t.Fatalf("SearchScaling: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[:4] {
			if cell == "" {
				t.Errorf("empty cell in row %v", row)
			}
		}
	}
}

func TestFilteredSearchTable(t *testing.T) {
	tab, err := FilteredSearch([]int{100, 200}, []int{10, 100}, 5)
	if err != nil {
		t.Fatalf("FilteredSearch: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 2 sizes x 2 selectivities", len(tab.Rows))
	}
	// At 10% selectivity of a 100-image corpus the Where clause must
	// leave exactly 10 candidates; at 100%, the whole corpus.
	if tab.Rows[0][2] != "10" || tab.Rows[1][2] != "100" {
		t.Errorf("candidate counts = %q/%q, want 10/100", tab.Rows[0][2], tab.Rows[1][2])
	}
	if _, err := FilteredSearch([]int{50}, []int{7}, 5); err == nil {
		t.Error("selectivity not dividing 100 accepted")
	}
}

func TestWALThroughputTable(t *testing.T) {
	tab, err := WALThroughput([]int{1, 4})
	if err != nil {
		t.Fatalf("WALThroughput: %v", err)
	}
	if tab.ID != "E11" {
		t.Errorf("ID = %q", tab.ID)
	}
	if len(tab.Rows) != 6 { // 3 policies x 2 batch sizes
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row %v", row)
		}
	}
}
