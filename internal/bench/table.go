// Package bench provides the experiment harness that regenerates every
// evaluation artefact of the paper (experiments E1-E8 in DESIGN.md):
// workload construction, timing, and text/CSV table rendering. The same
// row-generating functions back the cmd/benchtab tool and the root-level
// testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// Table is a printable experiment result: a caption, a header row and data
// rows.
type Table struct {
	ID      string // experiment id, e.g. "E2"
	Caption string
	Header  []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Caption); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(tw, underline(t.Header)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// CSV renders the table as comma-separated values (header first), the
// "figure series" form of the experiments.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func underline(header []string) string {
	parts := make([]string, len(header))
	for i, h := range header {
		parts[i] = strings.Repeat("-", len(h))
	}
	return strings.Join(parts, "\t")
}

// MeasureOp times fn by running it enough times to fill minDuration and
// returns the mean time per operation. fn must not be trivially optimised
// away (have side effects or sink results).
func MeasureOp(minDuration time.Duration, fn func()) time.Duration {
	// Warm-up and single-shot estimate.
	start := time.Now()
	fn()
	single := time.Since(start)
	if single >= minDuration {
		return single
	}
	iters := int(minDuration/single) + 1
	start = time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(iters)
}

// Fmt helpers for table cells.

// FmtInt renders an int.
func FmtInt(v int) string { return fmt.Sprintf("%d", v) }

// FmtF3 renders a float with 3 decimals.
func FmtF3(v float64) string { return fmt.Sprintf("%.3f", v) }

// FmtDur renders a duration in microseconds with 2 decimals.
func FmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e3)
}
