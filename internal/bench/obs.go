package bench

import (
	"context"
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"bestring/internal/core"
	"bestring/internal/imagedb"
	"bestring/internal/obs"
	"bestring/internal/workload"
)

// ObservabilityOverhead is experiment E15: what the metrics layer costs
// on the hot paths. Each row measures the staged search pipeline and
// the durable write path on identical data both ways — metrics
// disabled (the nil-instrument fast path every query pays: one atomic
// pointer load) and with a live registry feeding every counter and
// histogram — with the timed passes interleaved so machine drift hits
// both sides equally. The acceptance bar is <= 2% overhead on the
// search path at the 10k-scene point; the write rows use fsync=never
// so the instrument cost is not hidden under fsync latency.
func ObservabilityOverhead(sizes []int, queries, writes int) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Caption: "observability overhead: search and write paths, metrics off vs on",
		Header: []string{"scenes", "search off µs", "search on µs", "search Δ",
			"write off rec/s", "write on rec/s", "write Δ"},
	}
	for _, n := range sizes {
		if err := obsOverheadPoint(t, n, queries, writes); err != nil {
			return nil, fmt.Errorf("E15: %w", err)
		}
	}
	return t, nil
}

// obsOverheadPoint runs one E15 row: search off/on at n scenes, then
// write off/on.
func obsOverheadPoint(t *Table, n, queries, writes int) error {
	// Same rationale as E11b/E14: compare the instrument cost, not the
	// collector's schedule.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	gen := workload.NewGenerator(workload.Config{
		Seed: DefaultSeed + 15, Vocabulary: 32, Objects: 8,
	})
	scenes := gen.Dataset(n)
	// Two identical DBs, one instrumented, one not: timed passes are
	// interleaved off/on so GC state, cache warming and machine drift
	// hit both sides equally instead of biasing whichever ran second.
	// (A registry cannot be detached, so one DB measured twice would
	// force a fixed off-then-on order.)
	dbOff, dbOn := imagedb.New(), imagedb.New()
	for i, img := range scenes {
		id := fmt.Sprintf("img%08d", i)
		if err := dbOff.Insert(id, "", img); err != nil {
			return err
		}
		if err := dbOn.Insert(id, "", img); err != nil {
			return err
		}
	}
	dbOn.EnableMetrics(obs.NewRegistry())
	probes := scenes
	if len(probes) > 32 {
		probes = probes[:32]
	}

	searchOff, searchOn, err := searchPair(dbOff, dbOn, probes, queries)
	if err != nil {
		return err
	}
	writeOff, writeOn, err := writePair(scenes, writes)
	if err != nil {
		return err
	}

	t.AddRow(FmtInt(n),
		fmt.Sprintf("%.1f", float64(searchOff)/float64(time.Microsecond)),
		fmt.Sprintf("%.1f", float64(searchOn)/float64(time.Microsecond)),
		fmtDelta(float64(searchOn), float64(searchOff)),
		fmt.Sprintf("%.0f", writeOff), fmt.Sprintf("%.0f", writeOn),
		// Write throughput: on-rate below off-rate is the overhead.
		fmtDelta(writeOff, writeOn))
	return nil
}

// fmtDelta renders the relative cost of the instrumented measurement:
// positive means metrics made it slower.
func fmtDelta(slower, baseline float64) string {
	if baseline <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (slower-baseline)/baseline*100)
}

// searchPair measures mean time per staged-pipeline search on the two
// DBs with timed passes interleaved (off, on, off, on, ...): one
// warmup pass each, then the best of three alternating rounds per
// side, so a single unlucky scheduling quantum cannot set either
// column and slow drift cannot bias one side.
func searchPair(dbOff, dbOn *imagedb.DB, probes []core.Image, queries int) (off, on time.Duration, err error) {
	ctx := context.Background()
	pass := func(db *imagedb.DB) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < queries; i++ {
			if _, err := db.Search(ctx, probes[i%len(probes)], imagedb.SearchOptions{K: 10}); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(queries), nil
	}
	for round := 0; round < 4; round++ {
		dOff, err := pass(dbOff)
		if err != nil {
			return 0, 0, err
		}
		dOn, err := pass(dbOn)
		if err != nil {
			return 0, 0, err
		}
		if round == 0 { // warmup
			continue
		}
		if off == 0 || dOff < off {
			off = dOff
		}
		if on == 0 || dOn < on {
			on = dOn
		}
	}
	return off, on, nil
}

// writePair measures durable-store insert throughput (rec/s) into
// fresh fsync=never stores, alternating uninstrumented and
// instrumented runs; best of two rounds per side.
func writePair(scenes []core.Image, writes int) (off, on float64, err error) {
	run := func(metrics bool) (float64, error) {
		dir, err := os.MkdirTemp("", "bestring-e15-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		s, err := imagedb.OpenStore(dir, imagedb.StoreOptions{
			Fsync: imagedb.FsyncNever, CheckpointBytes: -1,
		})
		if err != nil {
			return 0, err
		}
		defer s.Close()
		if metrics {
			s.EnableMetrics(obs.NewRegistry())
		}
		start := time.Now()
		for i := 0; i < writes; i++ {
			if err := s.Insert(fmt.Sprintf("w%08d", i), "", scenes[i%len(scenes)]); err != nil {
				return 0, err
			}
		}
		return float64(writes) / time.Since(start).Seconds(), nil
	}
	for round := 0; round < 2; round++ {
		rOff, err := run(false)
		if err != nil {
			return 0, 0, err
		}
		rOn, err := run(true)
		if err != nil {
			return 0, 0, err
		}
		if rOff > off {
			off = rOff
		}
		if rOn > on {
			on = rOn
		}
	}
	return off, on, nil
}
