package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"bestring/internal/imagedb"
	"bestring/internal/ingest"
	"bestring/internal/workload"
)

// This file is experiment E17 (EXPERIMENTS.md): streaming-ingest scaling.
// It compares the legacy load strategy — materialise a batch, loop
// BulkInsert over fixed chunks — against the streaming importer across
// source format, chunk size and the arena layout, reporting sustained
// rows/s and the peak heap each strategy held. The legacy loop pays one
// full COW shard copy per small chunk, so its cost curve bends with
// corpus size; the importer's byte-bounded chunks amortise commits and
// its pipeline overlaps conversion with the WAL/publish critical section.

// legacyChunk is the fixed batch size the pre-importer loading scripts
// used; the E17 baseline preserves it.
const legacyChunk = 2048

// heapSampler tracks the peak live heap while a load runs. Polling
// ReadMemStats at a coarse interval keeps the observer effect far below
// the allocation rates being measured.
type heapSampler struct {
	peak uint64 // atomic; bytes
	stop chan struct{}
	done chan struct{}
}

func startHeapSampler() *heapSampler {
	runtime.GC() // settle the previous point's garbage before baselining
	h := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > atomic.LoadUint64(&h.peak) {
				atomic.StoreUint64(&h.peak, ms.HeapAlloc)
			}
			select {
			case <-h.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return h
}

// Stop ends sampling and returns the observed peak heap in MiB.
func (h *heapSampler) Stop() float64 {
	close(h.stop)
	<-h.done
	return float64(atomic.LoadUint64(&h.peak)) / (1 << 20)
}

// ingestStore opens a fresh throwaway store tuned for load measurement:
// group commit off (a single loader has nothing to coalesce) and
// auto-checkpoint off so snapshot writes don't pollute the timings.
func ingestStore(arena bool) (*imagedb.Store, string, error) {
	dir, err := os.MkdirTemp("", "bestring-e17-*")
	if err != nil {
		return nil, "", err
	}
	s, err := imagedb.OpenStore(dir, imagedb.StoreOptions{
		Fsync:           imagedb.FsyncAlways,
		CheckpointBytes: -1,
		NoGroupCommit:   true,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	s.SetArenaLayout(arena)
	return s, dir, nil
}

// sceneSeq streams n deterministic synthetic scenes without ever
// materialising the corpus — the generator is the "file" the importer
// reads.
func sceneSeq(n int) ingest.Reader {
	gen := workload.NewGenerator(workload.Config{
		Seed: DefaultSeed + 17, Vocabulary: 24, Objects: 8,
	})
	i := 0
	return ingest.FromSeq(func(yield func(ingest.Scene, error) bool) {
		for ; i < n; i++ {
			s := ingest.Scene{ID: fmt.Sprintf("img%08d", i), Image: gen.Scene()}
			if !yield(s, nil) {
				return
			}
		}
	})
}

// encodeStream pipes the scene stream through an on-the-wire encoding
// (NDJSON or the CSV dialect), so the measured path includes the decode
// cost a real file import pays. The writer goroutine encodes scenes as
// the reader drains the pipe — nothing is materialised.
func encodeStream(n int, format string) ingest.Reader {
	pr, pw := io.Pipe()
	go func() {
		src := sceneSeq(n)
		switch format {
		case "ndjson":
			enc := json.NewEncoder(pw)
			for {
				s, err := src.Next()
				if err != nil {
					pw.CloseWithError(nil)
					return
				}
				if err := enc.Encode(s); err != nil {
					pw.CloseWithError(err)
					return
				}
			}
		case "csv":
			for {
				s, err := src.Next()
				if err != nil {
					pw.CloseWithError(nil)
					return
				}
				_, err = fmt.Fprintf(pw, "%s,%s,%d,%d,%q\n", s.ID, s.Name,
					s.Image.XMax, s.Image.YMax, ingest.CSVObjects(s.Image))
				if err != nil {
					pw.CloseWithError(err)
					return
				}
			}
		}
	}()
	if format == "csv" {
		return ingest.CSV(pr)
	}
	return ingest.NDJSON(pr)
}

// IngestScaling runs experiment E17: sustained load rate and peak heap
// for each loading strategy at each corpus size. chunks sweeps the
// importer's scenes-per-chunk bound on the in-memory source (0 keeps the
// default); the format and arena-off rows use the default chunking.
func IngestScaling(sizes, chunks []int) (*Table, error) {
	t := &Table{
		ID: "E17",
		Caption: "streaming ingest scaling: legacy chunk-looped BulkInsert vs the " +
			"chunked importer across source format, chunk size and arena layout",
		Header: []string{"images", "source", "chunk", "arena", "s", "rows/s", "peak MiB", "vs legacy"},
	}
	ctx := context.Background()

	type point struct {
		source string
		chunk  int // importer scenes-per-chunk bound; 0 = default
		arena  bool
		legacy bool
	}
	for _, n := range sizes {
		points := []point{{source: "legacy-bulk", chunk: legacyChunk, arena: true, legacy: true}}
		for _, c := range chunks {
			points = append(points, point{source: "stream", chunk: c, arena: true})
		}
		points = append(points,
			point{source: "stream", arena: false},
			point{source: "ndjson", arena: true},
			point{source: "csv", arena: true},
		)

		var legacyRate float64
		for _, p := range points {
			s, dir, err := ingestStore(p.arena)
			if err != nil {
				return nil, fmt.Errorf("E17: %w", err)
			}
			sampler := startHeapSampler()
			start := time.Now()
			switch {
			case p.legacy:
				err = legacyBulkLoad(ctx, s, n)
			case p.source == "stream":
				_, err = s.Import(ctx, sceneSeq(n), imagedb.ImportOptions{ChunkScenes: p.chunk})
			default:
				_, err = s.Import(ctx, encodeStream(n, p.source), imagedb.ImportOptions{})
			}
			elapsed := time.Since(start)
			peak := sampler.Stop()
			loaded := s.Len()
			s.Close()
			os.RemoveAll(dir)
			if err != nil {
				return nil, fmt.Errorf("E17 %s n=%d: %w", p.source, n, err)
			}
			if loaded != n {
				return nil, fmt.Errorf("E17 %s n=%d: loaded %d", p.source, n, loaded)
			}
			rate := float64(n) / elapsed.Seconds()
			if p.legacy {
				legacyRate = rate
			}
			chunkCell := "default"
			if p.chunk > 0 {
				chunkCell = fmt.Sprintf("%d", p.chunk)
			}
			t.AddRow(
				fmt.Sprintf("%d", n), p.source, chunkCell, onOff(p.arena),
				fmt.Sprintf("%.2f", elapsed.Seconds()),
				fmt.Sprintf("%.0f", rate),
				fmt.Sprintf("%.1f", peak),
				fmt.Sprintf("%.2fx", rate/legacyRate),
			)
		}
	}
	return t, nil
}

// legacyBulkLoad is the E17 baseline: the loading idiom this engine's
// earlier tooling used — materialise fixed-size batches and BulkInsert
// each, paying one WAL record, one fsync and one full COW publish per
// small chunk.
func legacyBulkLoad(ctx context.Context, s *imagedb.Store, n int) error {
	src := sceneSeq(n)
	items := make([]imagedb.BulkItem, 0, legacyChunk)
	flush := func() error {
		if len(items) == 0 {
			return nil
		}
		if err := s.BulkInsert(ctx, items, 0); err != nil {
			return err
		}
		items = items[:0]
		return nil
	}
	for {
		scene, err := src.Next()
		if err == io.EOF {
			return flush()
		}
		if err != nil {
			return err
		}
		items = append(items, imagedb.BulkItem{ID: scene.ID, Name: scene.Name, Image: scene.Image})
		if len(items) == legacyChunk {
			if err := flush(); err != nil {
				return err
			}
		}
	}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
