package core

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes the begin boundary of an object's MBR projection from
// its end boundary.
type Kind uint8

// Boundary kinds. The zero value is invalid so that an uninitialised Token
// is detectable.
const (
	Begin Kind = iota + 1
	End
)

// String returns "begin" or "end".
func (k Kind) String() string {
	switch k {
	case Begin:
		return "begin"
	case End:
		return "end"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is Begin or End.
func (k Kind) Valid() bool { return k == Begin || k == End }

// Flip returns the opposite kind. Flipping is how axis reversal (used by
// rotations and reflections) turns begin boundaries into end boundaries.
func (k Kind) Flip() Kind {
	switch k {
	case Begin:
		return End
	case End:
		return Begin
	default:
		return k
	}
}

// DummyText is the textual rendering of the dummy object. The paper calls
// it the symbol 'E'. A real object label therefore must not be exactly "E";
// Image.Validate enforces this.
const DummyText = "E"

// Token is one symbol of a BE-string axis: either the dummy object E
// (Dummy==true, other fields zero) or the begin/end boundary symbol of an
// icon object identified by its Label.
type Token struct {
	Dummy bool   `json:"dummy,omitempty"`
	Label string `json:"label,omitempty"`
	Kind  Kind   `json:"kind,omitempty"`
}

// DummyToken returns the dummy object E.
func DummyToken() Token { return Token{Dummy: true} }

// BeginToken returns the begin-boundary symbol of the labelled object.
func BeginToken(label string) Token { return Token{Label: label, Kind: Begin} }

// EndToken returns the end-boundary symbol of the labelled object.
func EndToken(label string) Token { return Token{Label: label, Kind: End} }

// Equal reports whether two tokens are the same symbol. Two dummies are
// equal; two boundary symbols are equal iff label and kind match. This is
// the equality the modified LCS of the paper (Algorithm 2) uses.
func (t Token) Equal(o Token) bool {
	if t.Dummy || o.Dummy {
		return t.Dummy == o.Dummy
	}
	return t.Label == o.Label && t.Kind == o.Kind
}

// Flip returns the token with begin/end swapped; the dummy is unchanged.
func (t Token) Flip() Token {
	if t.Dummy {
		return t
	}
	t.Kind = t.Kind.Flip()
	return t
}

// String renders the token: "E" for the dummy, "<label>+" for a begin
// boundary and "<label>-" for an end boundary.
func (t Token) String() string {
	if t.Dummy {
		return DummyText
	}
	if t.Kind == End {
		return t.Label + "-"
	}
	return t.Label + "+"
}

// ParseToken parses the rendering produced by Token.String.
func ParseToken(s string) (Token, error) {
	if s == DummyText {
		return DummyToken(), nil
	}
	if len(s) < 2 {
		return Token{}, fmt.Errorf("parse token %q: too short", s)
	}
	label, suffix := s[:len(s)-1], s[len(s)-1]
	switch suffix {
	case '+':
		return BeginToken(label), nil
	case '-':
		return EndToken(label), nil
	default:
		return Token{}, fmt.Errorf("parse token %q: missing +/- boundary suffix", s)
	}
}

// Axis is one dimension of a 2D BE-string: a sequence of boundary symbols
// and dummy objects, ordered by projected coordinate.
type Axis []Token

// String renders the axis as space-separated tokens.
func (a Axis) String() string {
	parts := make([]string, len(a))
	for i, t := range a {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// ParseAxis parses a space-separated token sequence (Axis.String format).
func ParseAxis(s string) (Axis, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, nil
	}
	axis := make(Axis, 0, len(fields))
	for _, f := range fields {
		t, err := ParseToken(f)
		if err != nil {
			return nil, fmt.Errorf("parse axis: %w", err)
		}
		axis = append(axis, t)
	}
	return axis, nil
}

// Symbols returns the number of non-dummy boundary symbols in the axis.
func (a Axis) Symbols() int {
	n := 0
	for _, t := range a {
		if !t.Dummy {
			n++
		}
	}
	return n
}

// Dummies returns the number of dummy objects in the axis.
func (a Axis) Dummies() int { return len(a) - a.Symbols() }

// Labels returns the set of object labels appearing in the axis.
func (a Axis) Labels() map[string]bool {
	set := make(map[string]bool)
	for _, t := range a {
		if !t.Dummy {
			set[t.Label] = true
		}
	}
	return set
}

// Clone returns a copy of the axis that shares no storage with a.
func (a Axis) Clone() Axis {
	if a == nil {
		return nil
	}
	out := make(Axis, len(a))
	copy(out, a)
	return out
}

// Equal reports whether two axes are symbol-wise identical.
func (a Axis) Equal(b Axis) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Reverse returns the axis read backwards with every boundary kind flipped.
// This is the string-level primitive behind rotations and reflections
// (paper section 5): mirroring an image along an axis reverses the order of
// boundary projections and turns each begin boundary into an end boundary.
//
// Boundary symbols between two dummies all project to the same coordinate
// (a "coincidence group"), so their relative order carries no spatial
// information; Reverse re-canonicalises each group so that the result is
// identical to converting the mirrored image.
func (a Axis) Reverse() Axis {
	out := make(Axis, len(a))
	for i, t := range a {
		out[len(a)-1-i] = t.Flip()
	}
	out.canonicalize()
	return out
}

// canonicalize sorts every maximal dummy-free run (coincidence group) by
// (label, kind), the order Convert emits. Consecutive non-dummy tokens
// always share a projected coordinate, so this is a semantics-preserving
// normal form.
func (a Axis) canonicalize() {
	i := 0
	for i < len(a) {
		if a[i].Dummy {
			i++
			continue
		}
		j := i
		for j < len(a) && !a[j].Dummy {
			j++
		}
		group := a[i:j]
		sort.Slice(group, func(p, q int) bool {
			if group[p].Label != group[q].Label {
				return group[p].Label < group[q].Label
			}
			return group[p].Kind < group[q].Kind
		})
		i = j
	}
}

// Validate checks the structural invariants of a well-formed BE-string
// axis: no two consecutive dummies, every object label has exactly one
// begin followed (not necessarily adjacently) by exactly one end, and no
// empty labels.
func (a Axis) Validate() error {
	open := make(map[string]int)
	closed := make(map[string]bool)
	prevDummy := false
	for i, t := range a {
		if t.Dummy {
			if prevDummy {
				return fmt.Errorf("axis position %d: consecutive dummy objects", i)
			}
			prevDummy = true
			continue
		}
		prevDummy = false
		if t.Label == "" {
			return fmt.Errorf("axis position %d: empty object label", i)
		}
		if t.Label == DummyText {
			return fmt.Errorf("axis position %d: object label %q collides with the dummy symbol", i, t.Label)
		}
		if !t.Kind.Valid() {
			return fmt.Errorf("axis position %d: invalid boundary kind", i)
		}
		switch t.Kind {
		case Begin:
			if open[t.Label] > 0 || closed[t.Label] {
				return fmt.Errorf("axis position %d: duplicate begin boundary for %q", i, t.Label)
			}
			open[t.Label]++
		case End:
			if open[t.Label] == 0 {
				return fmt.Errorf("axis position %d: end boundary for %q without begin", i, t.Label)
			}
			open[t.Label]--
			closed[t.Label] = true
		}
	}
	for label, n := range open {
		if n != 0 {
			return fmt.Errorf("axis: begin boundary for %q never closed", label)
		}
	}
	return nil
}
