package core

import (
	"errors"
	"fmt"
	"sort"
)

// Object is one icon object of a symbolic image: a label (the icon class,
// e.g. "house" or "tree") and the MBR it occupies. Labels are unique within
// an image; the model, like the whole 2-D string family, identifies objects
// across images by their label.
type Object struct {
	Label string `json:"label"`
	Box   Rect   `json:"box"`
}

// Image is a symbolic image: a set of labelled MBRs inside a bounding
// canvas [0, XMax] x [0, YMax]. XMax/YMax are required by the paper's model
// to decide whether edge dummy objects are needed.
type Image struct {
	XMax    int      `json:"xmax"`
	YMax    int      `json:"ymax"`
	Objects []Object `json:"objects"`
}

// Errors returned by Image validation.
var (
	ErrEmptyImage     = errors.New("image has no objects")
	ErrDuplicateLabel = errors.New("duplicate object label")
	ErrOutOfBounds    = errors.New("object MBR outside image bounds")
)

// NewImage returns an image with the given canvas size and objects. The
// object slice is copied (callers may mutate their slice afterwards).
func NewImage(xmax, ymax int, objects ...Object) Image {
	objs := make([]Object, len(objects))
	copy(objs, objects)
	return Image{XMax: xmax, YMax: ymax, Objects: objs}
}

// Validate checks that the image is well formed: positive canvas, at least
// one object, unique non-empty labels distinct from the dummy symbol, and
// every MBR valid and inside the canvas.
func (img Image) Validate() error {
	if img.XMax <= 0 || img.YMax <= 0 {
		return fmt.Errorf("image canvas %dx%d: dimensions must be positive", img.XMax, img.YMax)
	}
	if len(img.Objects) == 0 {
		return ErrEmptyImage
	}
	seen := make(map[string]bool, len(img.Objects))
	for i, o := range img.Objects {
		if o.Label == "" {
			return fmt.Errorf("object %d: empty label", i)
		}
		if o.Label == DummyText {
			return fmt.Errorf("object %d: label %q collides with the dummy symbol", i, o.Label)
		}
		if seen[o.Label] {
			return fmt.Errorf("object %d (%q): %w", i, o.Label, ErrDuplicateLabel)
		}
		seen[o.Label] = true
		if !o.Box.Valid() {
			return fmt.Errorf("object %q: inverted MBR %v", o.Label, o.Box)
		}
		if o.Box.X0 < 0 || o.Box.Y0 < 0 || o.Box.X1 > img.XMax || o.Box.Y1 > img.YMax {
			return fmt.Errorf("object %q MBR %v in canvas %dx%d: %w",
				o.Label, o.Box, img.XMax, img.YMax, ErrOutOfBounds)
		}
	}
	return nil
}

// Find returns the object with the given label, if present.
func (img Image) Find(label string) (Object, bool) {
	for _, o := range img.Objects {
		if o.Label == label {
			return o, true
		}
	}
	return Object{}, false
}

// Labels returns the sorted list of object labels in the image.
func (img Image) Labels() []string {
	labels := make([]string, len(img.Objects))
	for i, o := range img.Objects {
		labels[i] = o.Label
	}
	sort.Strings(labels)
	return labels
}

// Clone returns a deep copy of the image.
func (img Image) Clone() Image {
	return NewImage(img.XMax, img.YMax, img.Objects...)
}

// WithObject returns a copy of the image with the object appended.
func (img Image) WithObject(o Object) Image {
	out := img.Clone()
	out.Objects = append(out.Objects, o)
	return out
}

// WithoutObject returns a copy of the image with the labelled object
// removed, and whether it was present.
func (img Image) WithoutObject(label string) (Image, bool) {
	out := Image{XMax: img.XMax, YMax: img.YMax}
	found := false
	for _, o := range img.Objects {
		if o.Label == label {
			found = true
			continue
		}
		out.Objects = append(out.Objects, o)
	}
	return out, found
}

// Rotate90CW returns the image rotated 90 degrees clockwise; the canvas
// dimensions swap.
func (img Image) Rotate90CW() Image {
	out := Image{XMax: img.YMax, YMax: img.XMax, Objects: make([]Object, len(img.Objects))}
	for i, o := range img.Objects {
		out.Objects[i] = Object{Label: o.Label, Box: o.Box.Rotate90CW(img.YMax)}
	}
	return out
}

// Rotate180 returns the image rotated 180 degrees.
func (img Image) Rotate180() Image {
	out := Image{XMax: img.XMax, YMax: img.YMax, Objects: make([]Object, len(img.Objects))}
	for i, o := range img.Objects {
		out.Objects[i] = Object{Label: o.Label, Box: o.Box.Rotate180(img.XMax, img.YMax)}
	}
	return out
}

// Rotate270CW returns the image rotated 270 degrees clockwise; the canvas
// dimensions swap.
func (img Image) Rotate270CW() Image {
	out := Image{XMax: img.YMax, YMax: img.XMax, Objects: make([]Object, len(img.Objects))}
	for i, o := range img.Objects {
		out.Objects[i] = Object{Label: o.Label, Box: o.Box.Rotate270CW(img.XMax)}
	}
	return out
}

// ReflectXAxis returns the image mirrored across the horizontal axis
// (vertical flip).
func (img Image) ReflectXAxis() Image {
	out := Image{XMax: img.XMax, YMax: img.YMax, Objects: make([]Object, len(img.Objects))}
	for i, o := range img.Objects {
		out.Objects[i] = Object{Label: o.Label, Box: o.Box.ReflectXAxis(img.YMax)}
	}
	return out
}

// ReflectYAxis returns the image mirrored across the vertical axis
// (horizontal flip).
func (img Image) ReflectYAxis() Image {
	out := Image{XMax: img.XMax, YMax: img.YMax, Objects: make([]Object, len(img.Objects))}
	for i, o := range img.Objects {
		out.Objects[i] = Object{Label: o.Label, Box: o.Box.ReflectYAxis(img.XMax)}
	}
	return out
}
