package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIndexedMatchesConvert(t *testing.T) {
	img := Figure1Image()
	ix, err := NewIndexed(img)
	if err != nil {
		t.Fatalf("NewIndexed: %v", err)
	}
	if got, want := ix.BE(), MustConvert(img); !got.Equal(want) {
		t.Errorf("indexed BE = %v, want %v", got, want)
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d, want 3", ix.Len())
	}
}

func TestIndexedInsertEqualsRebuild(t *testing.T) {
	// Property (experiment E8): incremental insert produces the identical
	// BE-string to a full reconversion of the grown image.
	f := func(seed uint8) bool {
		img := randomImageForQuick(int(seed))
		ix, err := NewIndexed(img)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(int64(seed) + 1000))
		x0, y0 := rng.Intn(img.XMax), rng.Intn(img.YMax)
		o := Object{
			Label: "NEW",
			Box:   NewRect(x0, y0, x0+rng.Intn(img.XMax-x0+1), y0+rng.Intn(img.YMax-y0+1)),
		}
		if err := ix.Insert(o); err != nil {
			return false
		}
		want := MustConvert(img.WithObject(o))
		return ix.BE().Equal(want) && ix.BE().Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexedDeleteEqualsRebuild(t *testing.T) {
	f := func(seed uint8) bool {
		img := randomImageForQuick(int(seed))
		if len(img.Objects) < 2 {
			return true // deletion must leave at least one object
		}
		ix, err := NewIndexed(img)
		if err != nil {
			return false
		}
		victim := img.Objects[int(seed)%len(img.Objects)].Label
		if err := ix.Delete(victim); err != nil {
			return false
		}
		shrunk, _ := img.WithoutObject(victim)
		want := MustConvert(shrunk)
		return ix.BE().Equal(want) && ix.BE().Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexedInsertDeleteRoundTrip(t *testing.T) {
	img := Figure1Image()
	ix, err := NewIndexed(img)
	if err != nil {
		t.Fatal(err)
	}
	original := ix.BE()
	o := Object{Label: "D", Box: NewRect(0, 0, 2, 6)}
	if err := ix.Insert(o); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if ix.BE().Equal(original) {
		t.Error("insert did not change the BE-string")
	}
	if err := ix.Delete("D"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if got := ix.BE(); !got.Equal(original) {
		t.Errorf("insert+delete: got %v, want original %v", got, original)
	}
}

func TestIndexedInsertErrors(t *testing.T) {
	ix, err := NewIndexed(Figure1Image())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		o    Object
	}{
		{"duplicate label", Object{Label: "A", Box: NewRect(0, 0, 1, 1)}},
		{"empty label", Object{Label: "", Box: NewRect(0, 0, 1, 1)}},
		{"dummy label", Object{Label: "E", Box: NewRect(0, 0, 1, 1)}},
		{"out of bounds", Object{Label: "D", Box: NewRect(4, 4, 99, 5)}},
		{"negative", Object{Label: "D", Box: Rect{-1, 0, 2, 2}}},
		{"inverted", Object{Label: "D", Box: Rect{5, 5, 1, 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := ix.Insert(tt.o); err == nil {
				t.Error("expected error")
			}
		})
	}
	if ix.Len() != 3 {
		t.Errorf("failed inserts mutated state: Len = %d", ix.Len())
	}
}

func TestIndexedDeleteErrors(t *testing.T) {
	ix, err := NewIndexed(NewImage(10, 10, Object{Label: "A", Box: NewRect(1, 1, 3, 3)}))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete("missing"); err == nil {
		t.Error("Delete(missing): expected error")
	}
	if err := ix.Delete("A"); err == nil {
		t.Error("deleting the last object should fail")
	}
}

func TestIndexedManyOperationsStaysConsistent(t *testing.T) {
	// Interleave inserts and deletes; after each operation the indexed
	// string must equal a fresh conversion.
	rng := rand.New(rand.NewSource(7))
	img := NewImage(100, 100, Object{Label: "seed", Box: NewRect(10, 10, 20, 20)})
	ix, err := NewIndexed(img)
	if err != nil {
		t.Fatal(err)
	}
	live := []string{"seed"}
	for step := 0; step < 200; step++ {
		if len(live) > 1 && rng.Intn(3) == 0 {
			victim := live[rng.Intn(len(live))]
			if err := ix.Delete(victim); err != nil {
				t.Fatalf("step %d: delete %q: %v", step, victim, err)
			}
			for i, l := range live {
				if l == victim {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		} else {
			label := fmt.Sprintf("obj%d", step)
			x0, y0 := rng.Intn(100), rng.Intn(100)
			o := Object{Label: label, Box: NewRect(x0, y0, x0+rng.Intn(100-x0+1), y0+rng.Intn(100-y0+1))}
			if err := ix.Insert(o); err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			live = append(live, label)
		}
		want := MustConvert(ix.Image())
		if got := ix.BE(); !got.Equal(want) {
			t.Fatalf("step %d: indexed diverged from rebuild\n got %v\nwant %v", step, got, want)
		}
	}
}

func TestNewIndexedRejectsInvalid(t *testing.T) {
	if _, err := NewIndexed(NewImage(10, 10)); err == nil {
		t.Error("expected error for empty image")
	}
}

func TestIndexedImageCopyIsolated(t *testing.T) {
	ix, err := NewIndexed(Figure1Image())
	if err != nil {
		t.Fatal(err)
	}
	img := ix.Image()
	img.Objects[0].Label = "mutated"
	if got := ix.Image().Objects[0].Label; got != "A" {
		t.Errorf("Image() exposed internal storage: label = %q", got)
	}
	be := ix.BE()
	be.X[0] = BeginToken("Z")
	if ix.BE().X[0].Label == "Z" {
		t.Error("BE() exposed internal storage")
	}
}
