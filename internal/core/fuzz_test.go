package core

import (
	"strings"
	"testing"
)

// FuzzParseAxis checks the axis parser never panics and that anything it
// accepts round-trips through String.
func FuzzParseAxis(f *testing.F) {
	f.Add("E A+ E A- E")
	f.Add("A+ B+ A- = C+")
	f.Add("")
	f.Add("E")
	f.Add("house+ tree- E x+")
	f.Fuzz(func(t *testing.T, s string) {
		axis, err := ParseAxis(s)
		if err != nil {
			return
		}
		back, err := ParseAxis(axis.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", axis.String(), err)
		}
		if !back.Equal(axis) {
			t.Fatalf("round trip changed axis: %q -> %q", axis.String(), back.String())
		}
	})
}

// FuzzParseBEString checks the full-string parser likewise.
func FuzzParseBEString(f *testing.F) {
	f.Add("E A+ E A- E | E A+ E A- E")
	f.Add("(A+ A- | A+ A-)")
	f.Add("|")
	f.Add("a|b|c")
	f.Fuzz(func(t *testing.T, s string) {
		be, err := ParseBEString(s)
		if err != nil {
			return
		}
		text, err := be.MarshalText()
		if err != nil {
			t.Fatalf("marshal of accepted input failed: %v", err)
		}
		var back BEString
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("unmarshal of %q failed: %v", text, err)
		}
		if !back.Equal(be) {
			t.Fatalf("round trip changed BE-string")
		}
	})
}

// FuzzConvert builds images from fuzzer-chosen geometry and checks that
// any accepted image converts to a valid BE-string commuting with a
// rotation.
func FuzzConvert(f *testing.F) {
	f.Add(10, 10, 1, 2, 3, 4, 5, 6, 7, 8)
	f.Add(6, 6, 1, 2, 3, 5, 2, 1, 5, 3)
	f.Fuzz(func(t *testing.T, xmax, ymax, ax0, ay0, ax1, ay1, bx0, by0, bx1, by1 int) {
		img := Image{
			XMax: xmax, YMax: ymax,
			Objects: []Object{
				{Label: "A", Box: Rect{ax0, ay0, ax1, ay1}},
				{Label: "B", Box: Rect{bx0, by0, bx1, by1}},
			},
		}
		be, err := Convert(img)
		if err != nil {
			return // invalid geometry is rejected, not mishandled
		}
		if err := be.Validate(); err != nil {
			t.Fatalf("accepted image produced invalid BE-string: %v", err)
		}
		rot := be.Rotate90CW()
		want := MustConvert(img.Rotate90CW())
		if !rot.Equal(want) {
			t.Fatalf("rotation does not commute for %+v", img)
		}
	})
}

// FuzzAxisValidate ensures Validate is total on arbitrary token soup.
func FuzzAxisValidate(f *testing.F) {
	f.Add("E A+ A-", 3)
	f.Fuzz(func(t *testing.T, labels string, pattern int) {
		fields := strings.Fields(labels)
		var axis Axis
		for i, l := range fields {
			switch (pattern >> (i % 30)) & 3 {
			case 0:
				axis = append(axis, DummyToken())
			case 1:
				axis = append(axis, BeginToken(l))
			case 2:
				axis = append(axis, EndToken(l))
			default:
				axis = append(axis, Token{Label: l, Kind: Kind(pattern % 5)})
			}
		}
		_ = axis.Validate() // must not panic
	})
}
