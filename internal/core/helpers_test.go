package core

import (
	"fmt"
	"math/rand"
)

// randomImageForQuick builds a deterministic pseudo-random valid image from
// a seed, for property-based tests. Object count 1..8, canvas 32x24.
func randomImageForQuick(seed int) Image {
	rng := rand.New(rand.NewSource(int64(seed)))
	const xmax, ymax = 32, 24
	n := 1 + rng.Intn(8)
	objs := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		x0 := rng.Intn(xmax)
		y0 := rng.Intn(ymax)
		x1 := x0 + rng.Intn(xmax-x0+1)
		y1 := y0 + rng.Intn(ymax-y0+1)
		objs = append(objs, Object{
			Label: fmt.Sprintf("O%d", i),
			Box:   NewRect(x0, y0, x1, y1),
		})
	}
	return NewImage(xmax, ymax, objs...)
}
