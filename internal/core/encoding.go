package core

import (
	"fmt"
	"strings"
)

// MarshalText renders the BE-string as "x-axis | y-axis" (Token.String
// format per axis). It implements encoding.TextMarshaler.
func (b BEString) MarshalText() ([]byte, error) {
	return []byte(b.X.String() + " | " + b.Y.String()), nil
}

// UnmarshalText parses the MarshalText format. It implements
// encoding.TextUnmarshaler.
func (b *BEString) UnmarshalText(text []byte) error {
	parsed, err := ParseBEString(string(text))
	if err != nil {
		return err
	}
	*b = parsed
	return nil
}

// ParseBEString parses "x-axis | y-axis" text into a BEString. Surrounding
// parentheses (the BEString.String rendering) are tolerated.
func ParseBEString(s string) (BEString, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	parts := strings.Split(s, "|")
	if len(parts) != 2 {
		return BEString{}, fmt.Errorf("parse BE-string: want exactly one %q axis separator, got %d parts", "|", len(parts))
	}
	x, err := ParseAxis(parts[0])
	if err != nil {
		return BEString{}, fmt.Errorf("parse BE-string x-axis: %w", err)
	}
	y, err := ParseAxis(parts[1])
	if err != nil {
		return BEString{}, fmt.Errorf("parse BE-string y-axis: %w", err)
	}
	return BEString{X: x, Y: y}, nil
}
