package core

import (
	"reflect"
	"sort"
	"testing"
)

// TestSignatureOfFigure1 pins the signature of the paper's worked
// example against hand-derived values.
func TestSignatureOfFigure1(t *testing.T) {
	be := MustConvert(Figure1Image())
	sig := SignatureOf(be)

	wantLabels := Figure1Image().Labels()
	if !reflect.DeepEqual(sig.Labels, wantLabels) {
		t.Fatalf("labels = %v, want %v", sig.Labels, wantLabels)
	}
	if sig.LenX != len(be.X) || sig.LenY != len(be.Y) {
		t.Fatalf("lengths = (%d, %d), want (%d, %d)", sig.LenX, sig.LenY, len(be.X), len(be.Y))
	}
	if sig.DummiesX != be.X.Dummies() || sig.DummiesY != be.Y.Dummies() {
		t.Fatalf("dummies = (%d, %d), want (%d, %d)",
			sig.DummiesX, sig.DummiesY, be.X.Dummies(), be.Y.Dummies())
	}
	// Structural identities of a well-formed signature: each label is one
	// begin and one end per axis, and dummies can never exceed symbols+1
	// (no two dummies are adjacent).
	if sig.LenX != 2*len(sig.Labels)+sig.DummiesX {
		t.Fatalf("LenX %d != 2*%d labels + %d dummies", sig.LenX, len(sig.Labels), sig.DummiesX)
	}
	if sig.DummiesX > 2*len(sig.Labels)+1 {
		t.Fatalf("DummiesX %d exceeds symbols+1", sig.DummiesX)
	}
}

// TestSignatureSharedLabels exercises the sorted-merge intersection.
func TestSignatureSharedLabels(t *testing.T) {
	sig := func(labels ...string) Signature {
		sort.Strings(labels)
		return Signature{Labels: labels}
	}
	cases := []struct {
		a, b Signature
		want int
	}{
		{sig(), sig(), 0},
		{sig("a", "b", "c"), sig(), 0},
		{sig("a", "b", "c"), sig("a", "b", "c"), 3},
		{sig("a", "c", "e"), sig("b", "c", "d", "e"), 2},
		{sig("x"), sig("y"), 0},
	}
	for _, tc := range cases {
		if got := tc.a.SharedLabels(tc.b); got != tc.want {
			t.Errorf("shared(%v, %v) = %d, want %d", tc.a.Labels, tc.b.Labels, got, tc.want)
		}
		if got := tc.b.SharedLabels(tc.a); got != tc.want {
			t.Errorf("shared(%v, %v) = %d, want %d (asymmetric)", tc.b.Labels, tc.a.Labels, got, tc.want)
		}
	}
}

// TestSignatureSwapAxes checks that SwapAxes matches the signature of
// the rotated string, and that axis reversal leaves signatures intact —
// the two facts that let one signature serve all eight transforms.
func TestSignatureSwapAxes(t *testing.T) {
	be := MustConvert(Figure1Image())
	sig := SignatureOf(be)

	rot := SignatureOf(be.Apply(Rot90))
	if !reflect.DeepEqual(sig.SwapAxes(), rot) {
		t.Fatalf("SwapAxes = %+v, want rotate-90 signature %+v", sig.SwapAxes(), rot)
	}
	flipped := SignatureOf(be.Apply(FlipX))
	if !reflect.DeepEqual(sig, flipped) {
		t.Fatalf("reflection changed the signature: %+v vs %+v", sig, flipped)
	}
	if !reflect.DeepEqual(sig.SwapAxes().SwapAxes(), sig) {
		t.Fatalf("SwapAxes is not an involution")
	}
}
