package core

import (
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	tests := []struct {
		name           string
		x0, y0, x1, y1 int
		want           Rect
	}{
		{"already ordered", 1, 2, 3, 4, Rect{1, 2, 3, 4}},
		{"x inverted", 3, 2, 1, 4, Rect{1, 2, 3, 4}},
		{"y inverted", 1, 4, 3, 2, Rect{1, 2, 3, 4}},
		{"both inverted", 3, 4, 1, 2, Rect{1, 2, 3, 4}},
		{"degenerate point", 5, 5, 5, 5, Rect{5, 5, 5, 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewRect(tt.x0, tt.y0, tt.x1, tt.y1)
			if got != tt.want {
				t.Errorf("NewRect(%d,%d,%d,%d) = %v, want %v", tt.x0, tt.y0, tt.x1, tt.y1, got, tt.want)
			}
			if !got.Valid() {
				t.Errorf("NewRect result %v not Valid", got)
			}
		})
	}
}

func TestRectMeasures(t *testing.T) {
	r := NewRect(1, 2, 4, 8)
	if got := r.Width(); got != 3 {
		t.Errorf("Width = %d, want 3", got)
	}
	if got := r.Height(); got != 6 {
		t.Errorf("Height = %d, want 6", got)
	}
	if got := r.Area(); got != 18 {
		t.Errorf("Area = %d, want 18", got)
	}
	if got := r.Center(); got != (Point{2, 5}) {
		t.Errorf("Center = %v, want {2 5}", got)
	}
}

func TestRectContains(t *testing.T) {
	outer := NewRect(0, 0, 10, 10)
	tests := []struct {
		name  string
		inner Rect
		want  bool
	}{
		{"strictly inside", NewRect(2, 2, 8, 8), true},
		{"equal", outer, true},
		{"touching edges", NewRect(0, 0, 10, 5), true},
		{"overhang right", NewRect(5, 5, 11, 8), false},
		{"disjoint", NewRect(20, 20, 30, 30), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := outer.Contains(tt.inner); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.inner, got, tt.want)
			}
		})
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(0, 0, 5, 5)
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlap", NewRect(3, 3, 8, 8), true},
		{"touch edge", NewRect(5, 0, 9, 5), true},
		{"touch corner", NewRect(5, 5, 9, 9), true},
		{"disjoint x", NewRect(6, 0, 9, 5), false},
		{"disjoint y", NewRect(0, 6, 5, 9), false},
		{"contained", NewRect(1, 1, 2, 2), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects(%v) = %v, want %v", tt.b, got, tt.want)
			}
			if got := tt.b.Intersects(a); got != tt.want {
				t.Errorf("Intersects not symmetric for %v", tt.b)
			}
		})
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(5, 1, 7, 9)
	got := a.Union(b)
	want := NewRect(0, 0, 7, 9)
	if got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if !got.Contains(a) || !got.Contains(b) {
		t.Errorf("Union %v does not contain inputs", got)
	}
}

func TestRectTranslate(t *testing.T) {
	r := NewRect(1, 1, 3, 3).Translate(2, -1)
	want := Rect{3, 0, 5, 2}
	if r != want {
		t.Errorf("Translate = %v, want %v", r, want)
	}
}

func TestRotate90FourTimesIsIdentity(t *testing.T) {
	// Rotating a rect four times by 90 degrees inside a square canvas must
	// return the original rect.
	const size = 20
	r := NewRect(2, 3, 7, 11)
	got := r.
		Rotate90CW(size).
		Rotate90CW(size).
		Rotate90CW(size).
		Rotate90CW(size)
	if got != r {
		t.Errorf("four 90-degree rotations = %v, want %v", got, r)
	}
}

func TestRotate180EqualsTwoQuarterTurns(t *testing.T) {
	const w, h = 30, 20
	r := NewRect(4, 5, 9, 13)
	two := r.Rotate90CW(h).Rotate90CW(w)
	direct := r.Rotate180(w, h)
	if two != direct {
		t.Errorf("two quarter turns %v != Rotate180 %v", two, direct)
	}
}

func TestReflectTwiceIsIdentity(t *testing.T) {
	const w, h = 17, 23
	r := NewRect(3, 4, 10, 12)
	if got := r.ReflectXAxis(h).ReflectXAxis(h); got != r {
		t.Errorf("double x-reflection = %v, want %v", got, r)
	}
	if got := r.ReflectYAxis(w).ReflectYAxis(w); got != r {
		t.Errorf("double y-reflection = %v, want %v", got, r)
	}
}

func TestRotationPreservesArea(t *testing.T) {
	f := func(x0, y0, x1, y1 uint8) bool {
		r := NewRect(int(x0), int(y0), int(x1), int(y1))
		const m = 300 // canvas larger than any uint8 coordinate
		return r.Rotate90CW(m).Area() == r.Area() &&
			r.Rotate180(m, m).Area() == r.Area() &&
			r.Rotate270CW(m).Area() == r.Area() &&
			r.ReflectXAxis(m).Area() == r.Area() &&
			r.ReflectYAxis(m).Area() == r.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotate270IsInverseOfRotate90(t *testing.T) {
	f := func(x0, y0, x1, y1 uint8) bool {
		r := NewRect(int(x0), int(y0), int(x1), int(y1))
		const w, h = 300, 400
		// Rotate90 maps into a canvas of width h; Rotate270 with xmax=h maps back.
		return r.Rotate90CW(h).Rotate270CW(h) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContainsPointMatchesContains(t *testing.T) {
	f := func(px, py uint8) bool {
		r := NewRect(10, 20, 200, 220)
		p := Point{int(px), int(py)}
		pointRect := Rect{p.X, p.Y, p.X, p.Y}
		return r.ContainsPoint(p) == r.Contains(pointRect)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
