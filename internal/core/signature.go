package core

import "sort"

// Signature is the compact symbol-signature of one image's 2D BE-string:
// the per-axis symbol histogram plus the axis lengths, reduced to the
// smallest representation the model permits. It exists to support
// filter-and-refine ranking: from two signatures alone a cheap upper
// bound on the modified-LCS similarity can be computed (see
// internal/similarity), so most candidates of a ranked search are
// rejected without ever running the O(mn) dynamic program.
//
// The reduction is exact, not lossy. In a well-formed BE-string axis
// every icon label contributes exactly one begin and one end boundary
// (labels are unique within an image), so the non-dummy part of the
// per-axis histogram is fully determined by the label set — which is
// itself identical on both axes, since every object projects onto both.
// The only other symbol is the dummy E, counted per axis. A Signature
// therefore stores one sorted label list, two axis lengths and two
// dummy counts, and any multiset-intersection over the real histograms
// can be recovered from it in O(|labels|) time and O(1) extra space.
//
// A Signature is immutable once built; Labels must not be mutated.
type Signature struct {
	// Labels is the sorted list of distinct icon labels. Each label
	// accounts for one begin and one end symbol on each axis.
	Labels []string `json:"labels"`
	// LenX and LenY are the total axis lengths (symbols plus dummies) —
	// the normalisers of the similarity score.
	LenX int `json:"lenX"`
	LenY int `json:"lenY"`
	// DummiesX and DummiesY count the dummy objects E per axis.
	DummiesX int `json:"dummiesX"`
	DummiesY int `json:"dummiesY"`
}

// SignatureOf computes the signature of a converted image. It is O(n)
// plus the label sort — negligible next to the conversion that produced
// the BE-string, which is why signatures are computed once at
// Convert/insert time and stored, never recomputed per query.
func SignatureOf(be BEString) Signature {
	labels := make([]string, 0, len(be.X)/2)
	dumX := 0
	for _, t := range be.X {
		if t.Dummy {
			dumX++
		} else if t.Kind == Begin {
			labels = append(labels, t.Label)
		}
	}
	sort.Strings(labels)
	return Signature{
		Labels:   labels,
		LenX:     len(be.X),
		LenY:     len(be.Y),
		DummiesX: dumX,
		DummiesY: be.Y.Dummies(),
	}
}

// Len returns the combined axis length |X| + |Y| — the per-image term of
// the similarity score's normaliser.
func (s Signature) Len() int { return s.LenX + s.LenY }

// SymbolLen returns the combined non-dummy symbol count — the normaliser
// of the dummy-stripped (symbols-only) similarity.
func (s Signature) SymbolLen() int {
	return s.LenX + s.LenY - s.DummiesX - s.DummiesY
}

// SharedLabels returns the size of the label-set intersection — the
// histogram-intersection primitive behind the LCS upper bound. Both
// label lists are sorted, so this is a single O(|a|+|b|) merge with no
// allocation.
func (s Signature) SharedLabels(o Signature) int {
	shared, i, j := 0, 0, 0
	for i < len(s.Labels) && j < len(o.Labels) {
		switch {
		case s.Labels[i] < o.Labels[j]:
			i++
		case s.Labels[i] > o.Labels[j]:
			j++
		default:
			shared++
			i++
			j++
		}
	}
	return shared
}

// SwapAxes returns the signature with the X and Y axes exchanged — the
// signature of the image rotated by 90 degrees. Axis reversal (the other
// primitive of the dihedral transforms) changes no field at all: it
// preserves lengths and dummy counts, and flipping every begin/end kind
// permutes the histogram without changing any intersection with another
// signature. SwapAxes therefore lets one signature pair bound the
// similarity under every one of the eight transforms.
func (s Signature) SwapAxes() Signature {
	s.LenX, s.LenY = s.LenY, s.LenX
	s.DummiesX, s.DummiesY = s.DummiesY, s.DummiesX
	return s
}
