package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// TestFigure1Conversion is experiment E1: converting the reconstructed
// Figure 1 image must produce exactly the 2D BE-string printed in the paper.
func TestFigure1Conversion(t *testing.T) {
	img := Figure1Image()
	be, err := Convert(img)
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	want := Figure1BEString()
	if !be.X.Equal(want.X) {
		t.Errorf("x-axis:\n got %q\nwant %q", be.X.String(), want.X.String())
	}
	if !be.Y.Equal(want.Y) {
		t.Errorf("y-axis:\n got %q\nwant %q", be.Y.String(), want.Y.String())
	}
	// The two coincidences called out in the paper: A-/C+ adjacent on x,
	// B-/C+ adjacent on y (no dummy between).
	if !strings.Contains(be.X.String(), "A- C+") {
		t.Errorf("x-axis %q: expected A- and C+ with no dummy between", be.X.String())
	}
	if !strings.Contains(be.Y.String(), "B- C+") {
		t.Errorf("y-axis %q: expected B- and C+ with no dummy between", be.Y.String())
	}
}

func TestConvertRejectsInvalidImages(t *testing.T) {
	tests := []struct {
		name string
		img  Image
	}{
		{"empty", NewImage(10, 10)},
		{"zero canvas", NewImage(0, 10, Object{Label: "A", Box: NewRect(0, 0, 0, 5)})},
		{"out of bounds", NewImage(10, 10, Object{Label: "A", Box: NewRect(5, 5, 15, 8)})},
		{"negative origin", NewImage(10, 10, Object{Label: "A", Box: Rect{-1, 0, 5, 5}})},
		{"duplicate labels", NewImage(10, 10,
			Object{Label: "A", Box: NewRect(0, 0, 2, 2)},
			Object{Label: "A", Box: NewRect(4, 4, 6, 6)})},
		{"dummy label", NewImage(10, 10, Object{Label: "E", Box: NewRect(0, 0, 2, 2)})},
		{"empty label", NewImage(10, 10, Object{Label: "", Box: NewRect(0, 0, 2, 2)})},
		{"inverted rect", NewImage(10, 10, Object{Label: "A", Box: Rect{5, 5, 2, 2}})},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Convert(tt.img); err == nil {
				t.Error("Convert: expected error")
			}
		})
	}
}

func TestConvertSingleObjectFillingCanvas(t *testing.T) {
	// Best case of the paper's space claim: all projections exactly fit:
	// 2n+1 symbols per axis minus... with n=1, boundaries at 0 and max: no
	// dummies at edges, one dummy between begin and end (distinct coords).
	img := NewImage(10, 10, Object{Label: "A", Box: NewRect(0, 0, 10, 10)})
	be := MustConvert(img)
	want := Axis{BeginToken("A"), DummyToken(), EndToken("A")}
	if !be.X.Equal(want) || !be.Y.Equal(want) {
		t.Errorf("got (%q | %q), want %q on both axes", be.X, be.Y, want)
	}
	if got := be.StorageUnits(); got != 6 {
		t.Errorf("StorageUnits = %d, want 6", got)
	}
}

func TestConvertPointObject(t *testing.T) {
	// A degenerate (zero-extent) object: begin and end project to the same
	// coordinate, so no dummy sits between them; begin sorts first.
	img := NewImage(10, 10, Object{Label: "P", Box: NewRect(5, 5, 5, 5)})
	be := MustConvert(img)
	want := Axis{DummyToken(), BeginToken("P"), EndToken("P"), DummyToken()}
	if !be.X.Equal(want) {
		t.Errorf("x-axis = %q, want %q", be.X.String(), want.String())
	}
	if err := be.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestConvertIdenticalBoxes(t *testing.T) {
	// Two objects with identical MBRs: boundary coincidences everywhere;
	// ties break by label.
	img := NewImage(8, 8,
		Object{Label: "A", Box: NewRect(2, 2, 6, 6)},
		Object{Label: "B", Box: NewRect(2, 2, 6, 6)},
	)
	be := MustConvert(img)
	want := Axis{
		DummyToken(), BeginToken("A"), BeginToken("B"), DummyToken(),
		EndToken("A"), EndToken("B"), DummyToken(),
	}
	if !be.X.Equal(want) {
		t.Errorf("x-axis = %q, want %q", be.X.String(), want.String())
	}
}

// TestSpaceComplexityBounds is the paper's section 3.1 claim (experiment
// E2): per axis an n-object image needs at least 2n+1 and at most 4n+1
// storage units.
//
// Note the paper's arithmetic counts the fully-coincident best case as 2n+1
// with n objects collapsing to shared boundary symbols; with distinct
// labels every object still contributes 2 symbols, so the attainable
// minimum is 2n (no dummies at all, every boundary coinciding with the
// next). We assert the provable bounds 2n <= units <= 4n+1 and verify the
// paper's worst case 4n+1 is attained.
func TestSpaceComplexityBounds(t *testing.T) {
	f := func(seed uint8) bool {
		img := randomImageForQuick(int(seed))
		be := MustConvert(img)
		n := len(img.Objects)
		okAxis := func(a Axis) bool {
			return len(a) >= 2*n && len(a) <= 4*n+1
		}
		return okAxis(be.X) && okAxis(be.Y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorstCaseStorageAttained(t *testing.T) {
	// n disjoint objects, gaps everywhere: exactly 4n+1 units per axis.
	const n = 5
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{Label: fmt.Sprintf("O%d", i), Box: NewRect(4*i+1, 4*i+1, 4*i+3, 4*i+3)}
	}
	img := NewImage(4*n+1, 4*n+1, objs...)
	be := MustConvert(img)
	if got := len(be.X); got != 4*n+1 {
		t.Errorf("worst-case x-axis storage = %d, want %d", got, 4*n+1)
	}
	if got := len(be.Y); got != 4*n+1 {
		t.Errorf("worst-case y-axis storage = %d, want %d", got, 4*n+1)
	}
}

func TestBestCaseStorage(t *testing.T) {
	// All projections identical and exactly fitting: 2n+1 per the paper
	// (n=2: A+ B+ E A- B-  -> 5 units).
	img := NewImage(8, 8,
		Object{Label: "A", Box: NewRect(0, 0, 8, 8)},
		Object{Label: "B", Box: NewRect(0, 0, 8, 8)},
	)
	be := MustConvert(img)
	if got, want := len(be.X), 2*2+1; got != want {
		t.Errorf("best-case storage = %d, want %d (axis %q)", got, want, be.X.String())
	}
}

func TestConvertedStringAlwaysValid(t *testing.T) {
	f := func(seed uint8) bool {
		be := MustConvert(randomImageForQuick(int(seed)))
		return be.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConvertDeterministic(t *testing.T) {
	img := randomImageForQuick(42)
	a := MustConvert(img)
	b := MustConvert(img)
	if !a.Equal(b) {
		t.Error("Convert is not deterministic")
	}
}

// TestTransformCommutesWithConvert is the core property behind experiment
// E6: transforming the BE-string equals converting the transformed image,
// for every element of the dihedral group.
func TestTransformCommutesWithConvert(t *testing.T) {
	for _, tr := range AllTransforms {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			f := func(seed uint8) bool {
				img := randomImageForQuick(int(seed))
				viaString := MustConvert(img).Apply(tr)
				viaImage := MustConvert(ApplyToImage(img, tr))
				return viaString.Equal(viaImage)
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestTransformGroupLaws(t *testing.T) {
	be := MustConvert(Figure1Image())
	if got := be.Rotate90CW().Rotate90CW().Rotate90CW().Rotate90CW(); !got.Equal(be) {
		t.Error("four 90-degree rotations must be identity")
	}
	if got := be.Rotate180().Rotate180(); !got.Equal(be) {
		t.Error("two 180-degree rotations must be identity")
	}
	if got := be.ReflectXAxis().ReflectXAxis(); !got.Equal(be) {
		t.Error("double x-reflection must be identity")
	}
	if got := be.ReflectYAxis().ReflectYAxis(); !got.Equal(be) {
		t.Error("double y-reflection must be identity")
	}
	if got := be.Rotate90CW().Rotate270CW(); !got.Equal(be) {
		t.Error("rot90 then rot270 must be identity")
	}
	if got := be.ReflectXAxis().ReflectYAxis(); !got.Equal(be.Rotate180()) {
		t.Error("flip-x then flip-y must equal rot180")
	}
}

func TestBEStringValidateCrossAxis(t *testing.T) {
	be := MustConvert(Figure1Image())
	be.Y = Axis{BeginToken("Z"), EndToken("Z")}
	if err := be.Validate(); err == nil {
		t.Error("expected cross-axis label mismatch error")
	}
	be2 := MustConvert(Figure1Image())
	be2.Y = Axis{BeginToken("A"), EndToken("A")}
	if err := be2.Validate(); err == nil {
		t.Error("expected axis object-count mismatch error")
	}
}

func TestStorageUnitsAndObjects(t *testing.T) {
	be := MustConvert(Figure1Image())
	if got := be.Objects(); got != 3 {
		t.Errorf("Objects = %d, want 3", got)
	}
	if got := be.StorageUnits(); got != 24 {
		t.Errorf("StorageUnits = %d, want 24 (12 per axis)", got)
	}
}

func TestMustConvertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustConvert on invalid image should panic")
		}
	}()
	MustConvert(NewImage(10, 10))
}
