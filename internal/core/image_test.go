package core

import (
	"testing"
	"testing/quick"
)

func TestImageValidate(t *testing.T) {
	valid := Figure1Image()
	if err := valid.Validate(); err != nil {
		t.Fatalf("Figure1Image should validate: %v", err)
	}
}

func TestImageFind(t *testing.T) {
	img := Figure1Image()
	o, ok := img.Find("B")
	if !ok || o.Label != "B" {
		t.Errorf("Find(B) = %v, %v", o, ok)
	}
	if _, ok := img.Find("Z"); ok {
		t.Error("Find(Z) should be absent")
	}
}

func TestImageLabelsSorted(t *testing.T) {
	img := NewImage(10, 10,
		Object{Label: "zebra", Box: NewRect(0, 0, 1, 1)},
		Object{Label: "apple", Box: NewRect(2, 2, 3, 3)},
	)
	labels := img.Labels()
	if len(labels) != 2 || labels[0] != "apple" || labels[1] != "zebra" {
		t.Errorf("Labels = %v, want sorted [apple zebra]", labels)
	}
}

func TestImageCloneIndependent(t *testing.T) {
	img := Figure1Image()
	clone := img.Clone()
	clone.Objects[0].Label = "mutated"
	if img.Objects[0].Label != "A" {
		t.Error("Clone shares object storage")
	}
}

func TestWithObjectAndWithout(t *testing.T) {
	img := Figure1Image()
	bigger := img.WithObject(Object{Label: "D", Box: NewRect(0, 0, 1, 1)})
	if len(bigger.Objects) != 4 {
		t.Errorf("WithObject: %d objects, want 4", len(bigger.Objects))
	}
	if len(img.Objects) != 3 {
		t.Error("WithObject mutated the receiver")
	}
	smaller, found := bigger.WithoutObject("B")
	if !found || len(smaller.Objects) != 3 {
		t.Errorf("WithoutObject(B): found=%v n=%d", found, len(smaller.Objects))
	}
	if _, ok := smaller.Find("B"); ok {
		t.Error("B still present after WithoutObject")
	}
	_, found = bigger.WithoutObject("missing")
	if found {
		t.Error("WithoutObject(missing) reported found")
	}
}

func TestImageTransformsPreserveValidity(t *testing.T) {
	for _, tr := range AllTransforms {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			f := func(seed uint8) bool {
				img := ApplyToImage(randomImageForQuick(int(seed)), tr)
				return img.Validate() == nil
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestImageRotationRoundTrips(t *testing.T) {
	f := func(seed uint8) bool {
		img := randomImageForQuick(int(seed))
		r4 := img.Rotate90CW().Rotate90CW().Rotate90CW().Rotate90CW()
		back := img.Rotate90CW().Rotate270CW()
		return imagesEqual(img, r4) && imagesEqual(img, back) &&
			imagesEqual(img, img.Rotate180().Rotate180()) &&
			imagesEqual(img, img.ReflectXAxis().ReflectXAxis()) &&
			imagesEqual(img, img.ReflectYAxis().ReflectYAxis())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func imagesEqual(a, b Image) bool {
	if a.XMax != b.XMax || a.YMax != b.YMax || len(a.Objects) != len(b.Objects) {
		return false
	}
	for i := range a.Objects {
		if a.Objects[i] != b.Objects[i] {
			return false
		}
	}
	return true
}

func TestRotationSwapsCanvas(t *testing.T) {
	img := NewImage(30, 20, Object{Label: "A", Box: NewRect(1, 2, 3, 4)})
	rot := img.Rotate90CW()
	if rot.XMax != 20 || rot.YMax != 30 {
		t.Errorf("rotated canvas = %dx%d, want 20x30", rot.XMax, rot.YMax)
	}
}
