package core

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestBEStringTextRoundTrip(t *testing.T) {
	f := func(seed uint8) bool {
		be := MustConvert(randomImageForQuick(int(seed)))
		text, err := be.MarshalText()
		if err != nil {
			return false
		}
		var parsed BEString
		if err := parsed.UnmarshalText(text); err != nil {
			return false
		}
		return parsed.Equal(be)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseBEStringTolerant(t *testing.T) {
	be := MustConvert(Figure1Image())
	parsed, err := ParseBEString(be.String()) // parenthesised rendering
	if err != nil {
		t.Fatalf("ParseBEString: %v", err)
	}
	if !parsed.Equal(be) {
		t.Errorf("got %v, want %v", parsed, be)
	}
}

func TestParseBEStringErrors(t *testing.T) {
	for _, s := range []string{"", "A+ A-", "a | b | c", "?? | ??"} {
		if _, err := ParseBEString(s); err == nil {
			t.Errorf("ParseBEString(%q): expected error", s)
		}
	}
}

func TestImageJSONRoundTrip(t *testing.T) {
	img := Figure1Image()
	data, err := json.Marshal(img)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Image
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !imagesEqual(img, back) {
		t.Errorf("JSON round trip: got %+v, want %+v", back, img)
	}
}

func TestBEStringJSONRoundTrip(t *testing.T) {
	be := MustConvert(Figure1Image())
	data, err := json.Marshal(be)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back BEString
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !back.Equal(be) {
		t.Errorf("JSON round trip mismatch: got %v, want %v", back, be)
	}
}
