package core

import (
	"testing"
	"testing/quick"
)

func TestTokenEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Token
		want bool
	}{
		{"dummy vs dummy", DummyToken(), DummyToken(), true},
		{"dummy vs symbol", DummyToken(), BeginToken("A"), false},
		{"same begin", BeginToken("A"), BeginToken("A"), true},
		{"begin vs end", BeginToken("A"), EndToken("A"), false},
		{"different labels", BeginToken("A"), BeginToken("B"), false},
		{"same end", EndToken("tree"), EndToken("tree"), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Errorf("Equal not symmetric")
			}
		})
	}
}

func TestKindFlip(t *testing.T) {
	if Begin.Flip() != End || End.Flip() != Begin {
		t.Error("Flip must swap Begin and End")
	}
	if !Begin.Valid() || !End.Valid() || Kind(0).Valid() || Kind(9).Valid() {
		t.Error("Valid misclassifies kinds")
	}
}

func TestTokenStringParseRoundTrip(t *testing.T) {
	tokens := []Token{
		DummyToken(),
		BeginToken("A"),
		EndToken("A"),
		BeginToken("house"),
		EndToken("tree2"),
	}
	for _, tok := range tokens {
		got, err := ParseToken(tok.String())
		if err != nil {
			t.Fatalf("ParseToken(%q): %v", tok.String(), err)
		}
		if !got.Equal(tok) {
			t.Errorf("round trip %q -> %v, want %v", tok.String(), got, tok)
		}
	}
}

func TestParseTokenErrors(t *testing.T) {
	for _, s := range []string{"", "A", "+", "house?", "x"} {
		if _, err := ParseToken(s); err == nil {
			t.Errorf("ParseToken(%q): expected error", s)
		}
	}
}

func TestAxisStringParseRoundTrip(t *testing.T) {
	axis := Figure1BEString().X
	parsed, err := ParseAxis(axis.String())
	if err != nil {
		t.Fatalf("ParseAxis: %v", err)
	}
	if !parsed.Equal(axis) {
		t.Errorf("round trip: got %q, want %q", parsed.String(), axis.String())
	}
}

func TestAxisCounts(t *testing.T) {
	axis := Figure1BEString().X
	if got := axis.Symbols(); got != 6 {
		t.Errorf("Symbols = %d, want 6 (2 boundaries x 3 objects)", got)
	}
	if got := axis.Dummies(); got != 6 {
		t.Errorf("Dummies = %d, want 6", got)
	}
	labels := axis.Labels()
	for _, l := range []string{"A", "B", "C"} {
		if !labels[l] {
			t.Errorf("Labels missing %q", l)
		}
	}
	if len(labels) != 3 {
		t.Errorf("Labels = %v, want exactly A,B,C", labels)
	}
}

func TestAxisReverseInvolution(t *testing.T) {
	axis := Figure1BEString().Y
	if got := axis.Reverse().Reverse(); !got.Equal(axis) {
		t.Errorf("Reverse twice: got %q, want %q", got.String(), axis.String())
	}
}

func TestAxisReverseFlipsKinds(t *testing.T) {
	axis := Axis{BeginToken("A"), DummyToken(), EndToken("A")}
	rev := axis.Reverse()
	want := Axis{BeginToken("A"), DummyToken(), EndToken("A")}
	if !rev.Equal(want) {
		// A- reversed+flipped becomes A+ at the front.
		t.Errorf("Reverse = %q, want %q", rev.String(), want.String())
	}
}

func TestAxisValidate(t *testing.T) {
	e, ab, ae := DummyToken(), BeginToken("A"), EndToken("A")
	tests := []struct {
		name    string
		axis    Axis
		wantErr bool
	}{
		{"valid minimal", Axis{ab, ae}, false},
		{"valid with dummies", Axis{e, ab, e, ae, e}, false},
		{"consecutive dummies", Axis{e, e, ab, ae}, true},
		{"end before begin", Axis{ae, ab}, true},
		{"unclosed begin", Axis{ab}, true},
		{"duplicate begin", Axis{ab, ab, ae, ae}, true},
		{"reopened after close", Axis{ab, ae, ab, ae}, true},
		{"empty label", Axis{{Label: "", Kind: Begin}}, true},
		{"label E collides with dummy", Axis{{Label: "E", Kind: Begin}, {Label: "E", Kind: End}}, true},
		{"invalid kind", Axis{{Label: "A", Kind: Kind(7)}}, true},
		{"empty axis ok", nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.axis.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestAxisCloneIndependent(t *testing.T) {
	axis := Axis{BeginToken("A"), EndToken("A")}
	clone := axis.Clone()
	clone[0] = DummyToken()
	if axis[0].Dummy {
		t.Error("Clone shares storage with original")
	}
	if Axis(nil).Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestReverseValidityPreserved(t *testing.T) {
	// Reversing a valid axis yields a valid axis (begins/ends swap roles).
	f := func(seed uint8) bool {
		img := randomImageForQuick(int(seed))
		be := MustConvert(img)
		return be.X.Reverse().Validate() == nil && be.Y.Reverse().Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
