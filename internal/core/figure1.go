package core

// Figure1Image returns the three-object example image of the paper's
// Figure 1 (section 3.1). The printed coordinates are not given in the
// paper; these are reconstructed so that the resulting 2D BE-string matches
// the one printed under the figure:
//
//	x-axis: E A+ E B+ E A- C+ E C- E B- E
//	y-axis: E B+ E A+ E B- C+ E C- E A- E
//
// i.e. on the x-axis the end boundary of A coincides with the begin
// boundary of C (no dummy between them), and on the y-axis the end boundary
// of B coincides with the begin boundary of C — exactly the two
// coincidences the paper calls out.
func Figure1Image() Image {
	return NewImage(6, 6,
		Object{Label: "A", Box: NewRect(1, 2, 3, 5)},
		Object{Label: "B", Box: NewRect(2, 1, 5, 3)},
		Object{Label: "C", Box: NewRect(3, 3, 4, 4)},
	)
}

// Figure1BEString returns the expected 2D BE-string of Figure 1 as printed
// in the paper (experiment E1).
func Figure1BEString() BEString {
	e := DummyToken()
	return BEString{
		X: Axis{
			e, BeginToken("A"), e, BeginToken("B"), e,
			EndToken("A"), BeginToken("C"), e, EndToken("C"), e, EndToken("B"), e,
		},
		Y: Axis{
			e, BeginToken("B"), e, BeginToken("A"), e,
			EndToken("B"), BeginToken("C"), e, EndToken("C"), e, EndToken("A"), e,
		},
	}
}
