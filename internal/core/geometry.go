// Package core implements the 2D BE-string spatial representation model of
// Wang (ICDCS 2001): symbolic images whose icon objects are represented by
// the begin/end boundaries of their MBRs projected on the x- and y-axis,
// with dummy objects marking distinct boundary projections.
package core

import "fmt"

// Point is an integer 2-D coordinate. The model is purely ordinal, so
// integer coordinates lose no generality: only the relative order (and
// coincidence) of MBR boundaries matters.
type Point struct {
	X int
	Y int
}

// Rect is a minimum bounding rectangle (MBR) in image coordinates.
// It spans [X0, X1] on the x-axis and [Y0, Y1] on the y-axis, with
// X0 <= X1 and Y0 <= Y1. The rectangle is closed: a zero-width or
// zero-height rectangle is permitted (a degenerate icon).
type Rect struct {
	X0 int `json:"x0"`
	Y0 int `json:"y0"`
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
}

// NewRect returns the MBR spanning the two corner points in any order.
func NewRect(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
}

// Valid reports whether the rectangle is well formed (non-inverted).
func (r Rect) Valid() bool {
	return r.X0 <= r.X1 && r.Y0 <= r.Y1
}

// Width returns the x-extent of the rectangle.
func (r Rect) Width() int { return r.X1 - r.X0 }

// Height returns the y-extent of the rectangle.
func (r Rect) Height() int { return r.Y1 - r.Y0 }

// Area returns Width*Height.
func (r Rect) Area() int { return r.Width() * r.Height() }

// Center returns the centroid of the rectangle, rounded down.
func (r Rect) Center() Point {
	return Point{X: (r.X0 + r.X1) / 2, Y: (r.Y0 + r.Y1) / 2}
}

// Contains reports whether r fully contains s (boundaries may touch).
func (r Rect) Contains(s Rect) bool {
	return r.X0 <= s.X0 && s.X1 <= r.X1 && r.Y0 <= s.Y0 && s.Y1 <= r.Y1
}

// ContainsPoint reports whether the point lies inside or on the boundary.
func (r Rect) ContainsPoint(p Point) bool {
	return r.X0 <= p.X && p.X <= r.X1 && r.Y0 <= p.Y && p.Y <= r.Y1
}

// Intersects reports whether the two rectangles share any point
// (touching boundaries count as intersection).
func (r Rect) Intersects(s Rect) bool {
	return r.X0 <= s.X1 && s.X0 <= r.X1 && r.Y0 <= s.Y1 && s.Y0 <= r.Y1
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		X0: min(r.X0, s.X0),
		Y0: min(r.Y0, s.Y0),
		X1: max(r.X1, s.X1),
		Y1: max(r.Y1, s.Y1),
	}
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{X0: r.X0 + dx, Y0: r.Y0 + dy, X1: r.X1 + dx, Y1: r.Y1 + dy}
}

// String renders the rectangle as "[x0,y0 x1,y1]".
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.X0, r.Y0, r.X1, r.Y1)
}

// Rotate90CW rotates the rectangle 90 degrees clockwise inside an image of
// the given height (ymax): (x, y) -> (ymax-y, x). The resulting rectangle
// lives in an image whose width is the old height and vice versa.
func (r Rect) Rotate90CW(ymax int) Rect {
	return NewRect(ymax-r.Y1, r.X0, ymax-r.Y0, r.X1)
}

// Rotate180 rotates the rectangle 180 degrees inside an image of the given
// size: (x, y) -> (xmax-x, ymax-y).
func (r Rect) Rotate180(xmax, ymax int) Rect {
	return NewRect(xmax-r.X1, ymax-r.Y1, xmax-r.X0, ymax-r.Y0)
}

// Rotate270CW rotates the rectangle 270 degrees clockwise (90 CCW) inside an
// image of the given width (xmax): (x, y) -> (y, xmax-x).
func (r Rect) Rotate270CW(xmax int) Rect {
	return NewRect(r.Y0, xmax-r.X1, r.Y1, xmax-r.X0)
}

// ReflectXAxis mirrors the rectangle across the horizontal axis (vertical
// flip) inside an image of the given height: (x, y) -> (x, ymax-y).
func (r Rect) ReflectXAxis(ymax int) Rect {
	return NewRect(r.X0, ymax-r.Y1, r.X1, ymax-r.Y0)
}

// ReflectYAxis mirrors the rectangle across the vertical axis (horizontal
// flip) inside an image of the given width: (x, y) -> (xmax-x, y).
func (r Rect) ReflectYAxis(xmax int) Rect {
	return NewRect(xmax-r.X1, r.Y0, xmax-r.X0, r.Y1)
}
