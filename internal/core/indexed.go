package core

import (
	"fmt"
	"sort"
)

// Indexed is a symbolic image kept alongside its 2D BE-string, supporting
// incremental object insertion and deletion without a full reconversion.
// The paper (end of section 3.2) observes that storing the BE-string with
// its MBR coordinates lets a new object's boundaries be placed by binary
// search, and a dropped object be removed by a sequential scan with local
// dummy-object cleanup. Indexed implements exactly that: the sorted
// boundary-event lists are the coordinate-annotated string; the symbolic
// axes are re-materialised from them in O(n) after each splice, so an
// insert costs a binary search plus an O(n) splice instead of the
// O(n log n) full sort of Convert.
//
// Indexed is not safe for concurrent use; wrap it (as internal/imagedb
// does) when sharing across goroutines.
type Indexed struct {
	xmax, ymax int
	objects    []Object
	xe, ye     []boundaryEvent // sorted by (coord, label, kind)
	be         BEString        // materialised string, kept in sync
}

// NewIndexed builds an Indexed from a valid image.
func NewIndexed(img Image) (*Indexed, error) {
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("indexed: %w", err)
	}
	ix := &Indexed{
		xmax:    img.XMax,
		ymax:    img.YMax,
		objects: make([]Object, len(img.Objects)),
	}
	copy(ix.objects, img.Objects)
	ix.xe = make([]boundaryEvent, 0, 2*len(img.Objects))
	ix.ye = make([]boundaryEvent, 0, 2*len(img.Objects))
	for _, o := range ix.objects {
		ix.xe = append(ix.xe,
			boundaryEvent{coord: o.Box.X0, label: o.Label, kind: Begin},
			boundaryEvent{coord: o.Box.X1, label: o.Label, kind: End})
		ix.ye = append(ix.ye,
			boundaryEvent{coord: o.Box.Y0, label: o.Label, kind: Begin},
			boundaryEvent{coord: o.Box.Y1, label: o.Label, kind: End})
	}
	sortEvents(ix.xe)
	sortEvents(ix.ye)
	ix.rematerialize()
	return ix, nil
}

// rematerialize rebuilds both symbolic axes from the sorted event lists.
func (ix *Indexed) rematerialize() {
	ix.be = BEString{
		X: buildAxis(ix.xe, ix.xmax),
		Y: buildAxis(ix.ye, ix.ymax),
	}
}

// BE returns a copy of the current 2D BE-string.
func (ix *Indexed) BE() BEString { return ix.be.Clone() }

// Image returns a copy of the current symbolic image.
func (ix *Indexed) Image() Image {
	return NewImage(ix.xmax, ix.ymax, ix.objects...)
}

// Len returns the current number of objects.
func (ix *Indexed) Len() int { return len(ix.objects) }

// eventLess orders events by (coord, label, kind) — the binary-search key.
func eventLess(a, b boundaryEvent) bool {
	if a.coord != b.coord {
		return a.coord < b.coord
	}
	if a.label != b.label {
		return a.label < b.label
	}
	return a.kind < b.kind
}

// insertEvent splices ev into the sorted slice using binary search.
func insertEvent(events []boundaryEvent, ev boundaryEvent) []boundaryEvent {
	i := sort.Search(len(events), func(k int) bool { return !eventLess(events[k], ev) })
	events = append(events, boundaryEvent{})
	copy(events[i+1:], events[i:])
	events[i] = ev
	return events
}

// removeEvents drops every event carrying the given label (a sequential
// scan, as the paper prescribes for deletion).
func removeEvents(events []boundaryEvent, label string) []boundaryEvent {
	out := events[:0]
	for _, ev := range events {
		if ev.label != label {
			out = append(out, ev)
		}
	}
	return out
}

// Insert adds a new object, splicing its four boundaries into the strings.
func (ix *Indexed) Insert(o Object) error {
	if o.Label == "" || o.Label == DummyText {
		return fmt.Errorf("insert: invalid label %q", o.Label)
	}
	for _, existing := range ix.objects {
		if existing.Label == o.Label {
			return fmt.Errorf("insert %q: %w", o.Label, ErrDuplicateLabel)
		}
	}
	if !o.Box.Valid() {
		return fmt.Errorf("insert %q: inverted MBR %v", o.Label, o.Box)
	}
	if o.Box.X0 < 0 || o.Box.Y0 < 0 || o.Box.X1 > ix.xmax || o.Box.Y1 > ix.ymax {
		return fmt.Errorf("insert %q MBR %v in canvas %dx%d: %w",
			o.Label, o.Box, ix.xmax, ix.ymax, ErrOutOfBounds)
	}
	ix.xe = insertEvent(ix.xe, boundaryEvent{coord: o.Box.X0, label: o.Label, kind: Begin})
	ix.xe = insertEvent(ix.xe, boundaryEvent{coord: o.Box.X1, label: o.Label, kind: End})
	ix.ye = insertEvent(ix.ye, boundaryEvent{coord: o.Box.Y0, label: o.Label, kind: Begin})
	ix.ye = insertEvent(ix.ye, boundaryEvent{coord: o.Box.Y1, label: o.Label, kind: End})
	ix.objects = append(ix.objects, o)
	ix.rematerialize()
	return nil
}

// Delete removes the labelled object and eliminates the dummy objects its
// departure made redundant.
func (ix *Indexed) Delete(label string) error {
	found := false
	for i, o := range ix.objects {
		if o.Label == label {
			ix.objects = append(ix.objects[:i], ix.objects[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("delete: object %q not found", label)
	}
	if len(ix.objects) == 0 {
		return fmt.Errorf("delete %q: image must retain at least one object", label)
	}
	ix.xe = removeEvents(ix.xe, label)
	ix.ye = removeEvents(ix.ye, label)
	ix.rematerialize()
	return nil
}
