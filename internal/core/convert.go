package core

import (
	"fmt"
	"sort"
)

// BEString is the 2D BE-string of a symbolic image: one boundary-symbol
// string per axis (paper section 3.1). An image with n objects uses between
// 2n+1 symbols (all projections coincide and exactly fit the canvas) and
// 4n+1 symbols (all projections distinct, gaps at both edges) per axis.
type BEString struct {
	X Axis `json:"x"`
	Y Axis `json:"y"`
}

// Equal reports whether both axes are symbol-wise identical.
func (b BEString) Equal(o BEString) bool { return b.X.Equal(o.X) && b.Y.Equal(o.Y) }

// Clone returns a deep copy.
func (b BEString) Clone() BEString { return BEString{X: b.X.Clone(), Y: b.Y.Clone()} }

// String renders the BE-string as "(x-axis | y-axis)".
func (b BEString) String() string {
	return "(" + b.X.String() + " | " + b.Y.String() + ")"
}

// Validate checks both axes and that they mention the same object labels.
func (b BEString) Validate() error {
	if err := b.X.Validate(); err != nil {
		return fmt.Errorf("x-axis: %w", err)
	}
	if err := b.Y.Validate(); err != nil {
		return fmt.Errorf("y-axis: %w", err)
	}
	lx, ly := b.X.Labels(), b.Y.Labels()
	if len(lx) != len(ly) {
		return fmt.Errorf("axes disagree on object count: %d vs %d", len(lx), len(ly))
	}
	for label := range lx {
		if !ly[label] {
			return fmt.Errorf("object %q appears on the x-axis but not the y-axis", label)
		}
	}
	return nil
}

// Objects returns the number of distinct objects represented.
func (b BEString) Objects() int { return len(b.X.Labels()) }

// StorageUnits returns the total number of symbols (boundary symbols plus
// dummy objects) across both axes — the paper's storage metric (section
// 3.1, experiment E2).
func (b BEString) StorageUnits() int { return len(b.X) + len(b.Y) }

// boundaryEvent is one projected MBR boundary on a single axis, used while
// constructing the BE-string (the s_i / t_i work items of Algorithm 1).
type boundaryEvent struct {
	coord int
	label string
	kind  Kind
}

// sortEvents orders events by (coordinate, label, kind) ascending; Begin
// precedes End on full ties so that zero-extent objects emit begin before
// end. The paper sorts by "coordinate and object identifier" (Algorithm 1
// lines 14-19); the kind tie-break is our deterministic refinement.
func sortEvents(events []boundaryEvent) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.coord != b.coord {
			return a.coord < b.coord
		}
		if a.label != b.label {
			return a.label < b.label
		}
		return a.kind < b.kind
	})
}

// buildAxis converts sorted boundary events into a BE-string axis,
// inserting dummy objects where consecutive projections are distinct and at
// the canvas edges when a gap exists (Algorithm 1 lines 21-45).
func buildAxis(events []boundaryEvent, maxCoord int) Axis {
	if len(events) == 0 {
		return nil
	}
	// Worst case: a dummy around every symbol (4n+1 for 2n events).
	axis := make(Axis, 0, 2*len(events)+1)
	if events[0].coord > 0 {
		axis = append(axis, DummyToken())
	}
	for i, ev := range events {
		axis = append(axis, Token{Label: ev.label, Kind: ev.kind})
		if i+1 < len(events) && events[i+1].coord != ev.coord {
			axis = append(axis, DummyToken())
		}
	}
	if events[len(events)-1].coord < maxCoord {
		axis = append(axis, DummyToken())
	}
	return axis
}

// Convert builds the 2D BE-string of a symbolic image. This is Algorithm 1
// of the paper (Convert-2D-Be-String): O(n log n) time dominated by the
// sort, O(n) space.
func Convert(img Image) (BEString, error) {
	if err := img.Validate(); err != nil {
		return BEString{}, fmt.Errorf("convert: %w", err)
	}
	xs := make([]boundaryEvent, 0, 2*len(img.Objects))
	ys := make([]boundaryEvent, 0, 2*len(img.Objects))
	for _, o := range img.Objects {
		xs = append(xs,
			boundaryEvent{coord: o.Box.X0, label: o.Label, kind: Begin},
			boundaryEvent{coord: o.Box.X1, label: o.Label, kind: End},
		)
		ys = append(ys,
			boundaryEvent{coord: o.Box.Y0, label: o.Label, kind: Begin},
			boundaryEvent{coord: o.Box.Y1, label: o.Label, kind: End},
		)
	}
	sortEvents(xs)
	sortEvents(ys)
	return BEString{
		X: buildAxis(xs, img.XMax),
		Y: buildAxis(ys, img.YMax),
	}, nil
}

// MustConvert is Convert for known-valid images (tests, examples); it
// panics on error.
func MustConvert(img Image) BEString {
	be, err := Convert(img)
	if err != nil {
		panic(err)
	}
	return be
}

// Rotate90CW returns the BE-string of the image rotated 90 degrees
// clockwise, computed purely on the strings: the new x-axis is the reversed
// old y-axis (with begin/end flipped) and the new y-axis is the old x-axis.
// Under rotation (x,y) -> (ymax-y, x).
func (b BEString) Rotate90CW() BEString {
	return BEString{X: b.Y.Reverse(), Y: b.X.Clone()}
}

// Rotate180 returns the BE-string of the image rotated 180 degrees:
// both axes reversed.
func (b BEString) Rotate180() BEString {
	return BEString{X: b.X.Reverse(), Y: b.Y.Reverse()}
}

// Rotate270CW returns the BE-string of the image rotated 270 degrees
// clockwise: (x,y) -> (y, xmax-x).
func (b BEString) Rotate270CW() BEString {
	return BEString{X: b.Y.Clone(), Y: b.X.Reverse()}
}

// ReflectXAxis returns the BE-string of the image mirrored across the
// horizontal axis (vertical flip): the y-axis string reverses.
func (b BEString) ReflectXAxis() BEString {
	return BEString{X: b.X.Clone(), Y: b.Y.Reverse()}
}

// ReflectYAxis returns the BE-string of the image mirrored across the
// vertical axis (horizontal flip): the x-axis string reverses.
func (b BEString) ReflectYAxis() BEString {
	return BEString{X: b.X.Reverse(), Y: b.Y.Clone()}
}

// Transform enumerates the eight symmetries of the square (identity, three
// rotations, two axis reflections, two diagonal reflections composed from
// rotation+reflection).
type Transform uint8

// The eight linear transformations supported on strings. The paper's
// section 5 names rotations by 90/180/270 degrees and reflections on the x-
// or y-axis; the two diagonal reflections complete the dihedral group and
// come for free by composition.
const (
	Identity Transform = iota
	Rot90
	Rot180
	Rot270
	FlipX
	FlipY
	FlipDiag     // transpose: Rot90 then FlipY
	FlipAntiDiag // anti-transpose: Rot270 then FlipY
)

// AllTransforms lists the full dihedral group D4 in a stable order.
var AllTransforms = []Transform{
	Identity, Rot90, Rot180, Rot270, FlipX, FlipY, FlipDiag, FlipAntiDiag,
}

// String names the transform.
func (t Transform) String() string {
	switch t {
	case Identity:
		return "identity"
	case Rot90:
		return "rot90"
	case Rot180:
		return "rot180"
	case Rot270:
		return "rot270"
	case FlipX:
		return "flip-x"
	case FlipY:
		return "flip-y"
	case FlipDiag:
		return "flip-diag"
	case FlipAntiDiag:
		return "flip-antidiag"
	default:
		return fmt.Sprintf("Transform(%d)", uint8(t))
	}
}

// Apply returns the BE-string transformed by t.
func (b BEString) Apply(t Transform) BEString {
	switch t {
	case Identity:
		return b.Clone()
	case Rot90:
		return b.Rotate90CW()
	case Rot180:
		return b.Rotate180()
	case Rot270:
		return b.Rotate270CW()
	case FlipX:
		return b.ReflectXAxis()
	case FlipY:
		return b.ReflectYAxis()
	case FlipDiag:
		return b.Rotate90CW().ReflectYAxis()
	case FlipAntiDiag:
		return b.Rotate270CW().ReflectYAxis()
	default:
		return b.Clone()
	}
}

// ApplyToImage returns the image transformed by t (the coordinate-space
// counterpart of Apply, used to cross-validate the string transforms).
func ApplyToImage(img Image, t Transform) Image {
	switch t {
	case Identity:
		return img.Clone()
	case Rot90:
		return img.Rotate90CW()
	case Rot180:
		return img.Rotate180()
	case Rot270:
		return img.Rotate270CW()
	case FlipX:
		return img.ReflectXAxis()
	case FlipY:
		return img.ReflectYAxis()
	case FlipDiag:
		return img.Rotate90CW().ReflectYAxis()
	case FlipAntiDiag:
		return img.Rotate270CW().ReflectYAxis()
	default:
		return img.Clone()
	}
}
