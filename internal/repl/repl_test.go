package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"bestring/internal/core"
	"bestring/internal/imagedb"
)

func testImage(n int) core.Image {
	return core.NewImage(10, 10,
		core.Object{Label: "A", Box: core.NewRect(0, 0, 1, 1)},
		core.Object{Label: fmt.Sprintf("B%d", n%5), Box: core.NewRect(2+n%3, 2, 4+n%3, 4)},
	)
}

// newPrimary opens a primary store and serves its replication feed.
func newPrimary(t *testing.T, opts imagedb.StoreOptions) (*imagedb.Store, *Primary, *httptest.Server) {
	t.Helper()
	store, err := imagedb.OpenStore(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	p := NewPrimary(store, 50*time.Millisecond) // fast heartbeats for tests
	mux := http.NewServeMux()
	p.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return store, p, srv
}

func newFollowerStore(t *testing.T, dir string) *imagedb.Store {
	t.Helper()
	store, err := imagedb.OpenStore(dir, imagedb.StoreOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// waitLSN polls until the store's applied LSN reaches want.
func waitLSN(t *testing.T, store *imagedb.Store, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for store.AppliedLSN() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: applied=%d want=%d", store.AppliedLSN(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func stateBytes(t *testing.T, store *imagedb.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReplicationEndToEnd(t *testing.T) {
	primary, _, srv := newPrimary(t, imagedb.StoreOptions{Fsync: imagedb.FsyncAlways})
	for i := 0; i < 40; i++ {
		if err := primary.Insert(fmt.Sprintf("img%d", i), "n", testImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Delete("img7"); err != nil {
		t.Fatal(err)
	}

	fstore := newFollowerStore(t, t.TempDir())
	defer fstore.Close()
	fl, err := NewFollower(fstore, srv.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- fl.Run(ctx) }()

	// Catch-up: the backlog streams from sealed + open segments.
	waitLSN(t, fstore, primary.AppliedLSN())
	if got, want := stateBytes(t, fstore), stateBytes(t, primary); !bytes.Equal(got, want) {
		t.Fatal("follower state differs from primary after catch-up")
	}

	// Live tail: new writes (including group frames) arrive while
	// connected.
	for i := 40; i < 60; i++ {
		if err := primary.Insert(fmt.Sprintf("img%d", i), "n", testImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitLSN(t, fstore, primary.AppliedLSN())
	if got, want := stateBytes(t, fstore), stateBytes(t, primary); !bytes.Equal(got, want) {
		t.Fatal("follower state differs from primary after live writes")
	}
	st := fl.Status()
	if !st.Connected || st.AppliedLSN != primary.AppliedLSN() {
		t.Fatalf("status = %+v", st)
	}
	if st.PrimaryDurableLSN < st.AppliedLSN {
		t.Fatalf("observed primary durable %d < applied %d", st.PrimaryDurableLSN, st.AppliedLSN)
	}
	// Reads on the follower serve the replicated state.
	if !fstore.Has("img41") || fstore.Has("img7") {
		t.Fatal("follower reads do not reflect the replicated history")
	}

	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run after cancel = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

// TestFollowerKillPointsResume is the crash/restart property test: a
// follower killed at randomized points — mid-stream, between batches —
// and restarted (store reopened from disk, as after a real crash) always
// resumes from its own last applied LSN and converges with no gaps or
// duplicates. Three seeds, truncation-sweep style.
func TestFollowerKillPointsResume(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			primary, _, srv := newPrimary(t, imagedb.StoreOptions{Fsync: imagedb.FsyncAlways})
			n := 0
			insert := func(k int) {
				for i := 0; i < k; i++ {
					if err := primary.Insert(fmt.Sprintf("img%04d", n), "n", testImage(n)); err != nil {
						t.Fatal(err)
					}
					n++
				}
			}
			insert(60)

			dir := t.TempDir()
			var applied uint64
			for attempt := 0; attempt < 12 && applied < primary.AppliedLSN(); attempt++ {
				fstore := newFollowerStore(t, dir)
				if got := fstore.AppliedLSN(); got != applied {
					t.Fatalf("attempt %d: reopened store lost progress: applied=%d, want %d", attempt, got, applied)
				}
				fl, err := NewFollower(fstore, srv.URL, 1+rng.Intn(32))
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				runDone := make(chan error, 1)
				go func() { runDone <- fl.Run(ctx) }()
				// Kill at a random point: sometimes instantly, sometimes
				// after some progress, sometimes after full catch-up.
				time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
				cancel()
				if err := <-runDone; err != nil {
					t.Fatalf("attempt %d: Run = %v", attempt, err)
				}
				applied = fstore.AppliedLSN()
				if err := fstore.Close(); err != nil {
					t.Fatal(err)
				}
				// Occasionally write more on the primary between follower
				// lives, so resumes also cover a moving target.
				if rng.Intn(2) == 0 {
					insert(5 + rng.Intn(10))
				}
			}
			// Final run to full convergence.
			fstore := newFollowerStore(t, dir)
			defer fstore.Close()
			fl, err := NewFollower(fstore, srv.URL, 0)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go fl.Run(ctx)
			waitLSN(t, fstore, primary.AppliedLSN())
			if got, want := stateBytes(t, fstore), stateBytes(t, primary); !bytes.Equal(got, want) {
				t.Fatal("converged follower state differs from primary")
			}
			// No gaps, no duplicates: the follower's own log replays clean
			// (wal continuity is verified by OpenStore on the next line) and
			// ends exactly at the primary's LSN.
			if err := fstore.Close(); err != nil {
				t.Fatal(err)
			}
			re := newFollowerStore(t, dir)
			defer re.Close()
			if re.AppliedLSN() != primary.AppliedLSN() {
				t.Fatalf("replayed follower lsn %d != primary %d", re.AppliedLSN(), primary.AppliedLSN())
			}
		})
	}
}

func TestFollowerForeignLogRefused(t *testing.T) {
	_, _, srv := newPrimary(t, imagedb.StoreOptions{Fsync: imagedb.FsyncAlways})
	// A store with its own local history (written as a primary, no
	// recorded primary marker) must refuse to sync.
	dir := t.TempDir()
	own, err := imagedb.OpenStore(dir, imagedb.StoreOptions{Fsync: imagedb.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := own.Insert("local", "n", testImage(1)); err != nil {
		t.Fatal(err)
	}
	if err := own.Close(); err != nil {
		t.Fatal(err)
	}
	fstore := newFollowerStore(t, dir)
	defer fstore.Close()
	fl, err := NewFollower(fstore, srv.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.Run(context.Background()); !errors.Is(err, ErrDiverged) {
		t.Fatalf("Run with foreign log = %v, want ErrDiverged", err)
	}
	if !fstore.Has("local") {
		t.Fatal("refusal must leave the local state untouched")
	}
}

func TestFollowerWrongPrimaryRefused(t *testing.T) {
	primaryA, _, srvA := newPrimary(t, imagedb.StoreOptions{Fsync: imagedb.FsyncAlways})
	if err := primaryA.Insert("a", "n", testImage(1)); err != nil {
		t.Fatal(err)
	}
	_, _, srvB := newPrimary(t, imagedb.StoreOptions{Fsync: imagedb.FsyncAlways})

	dir := t.TempDir()
	fstore := newFollowerStore(t, dir)
	fl, err := NewFollower(fstore, srvA.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go fl.Run(ctx)
	waitLSN(t, fstore, primaryA.AppliedLSN())
	cancel()
	if err := fstore.Close(); err != nil {
		t.Fatal(err)
	}
	// Same store, different primary: the recorded marker must refuse.
	fstore = newFollowerStore(t, dir)
	defer fstore.Close()
	fl, err = NewFollower(fstore, srvB.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.Run(context.Background()); !errors.Is(err, ErrDiverged) {
		t.Fatalf("Run against wrong primary = %v, want ErrDiverged", err)
	}
}

func TestStreamRejectsAheadAndPruned(t *testing.T) {
	store, _, srv := newPrimary(t, imagedb.StoreOptions{
		Fsync: imagedb.FsyncAlways, SegmentBytes: 512, CheckpointBytes: -1, NoGroupCommit: true,
	})
	for i := 0; i < 20; i++ {
		if err := store.Insert(fmt.Sprintf("img%d", i), "n", testImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	get := func(after uint64) int {
		resp, err := http.Get(fmt.Sprintf("%s%s?after=%d&follower=x", srv.URL, StreamPath, after))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return resp.StatusCode
	}
	// Ahead of the primary: one history cannot produce this.
	if code := get(store.AppliedLSN() + 5); code != http.StatusConflict {
		t.Fatalf("ahead stream = %d, want 409", code)
	}
	// Prune, then ask for the pruned range.
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if store.OldestLSN() <= 1 {
		t.Skip("checkpoint retained everything; nothing pruned on this layout")
	}
	if code := get(0); code != http.StatusGone {
		t.Fatalf("pruned stream = %d, want 410", code)
	}
}

func TestRetentionFloorFollowsAcks(t *testing.T) {
	store, p, srv := newPrimary(t, imagedb.StoreOptions{
		Fsync: imagedb.FsyncAlways, SegmentBytes: 512, CheckpointBytes: -1, NoGroupCommit: true,
	})
	for i := 0; i < 20; i++ {
		if err := store.Insert(fmt.Sprintf("img%d", i), "n", testImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	ack := func(id string, lsn uint64) {
		resp, err := http.Post(
			fmt.Sprintf("%s%s?follower=%s&lsn=%d", srv.URL, AckPath, url.QueryEscape(id), lsn), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("ack = %d", resp.StatusCode)
		}
	}
	ack("slow", 4)
	ack("fast", 18)
	if floor := p.minAckedLSN(); floor != 4 {
		t.Fatalf("floor = %d, want 4 (slowest follower)", floor)
	}
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Segments past the slow follower's ack survive the checkpoint.
	if oldest := store.OldestLSN(); oldest > 5 {
		t.Fatalf("oldest=%d: checkpoint pruned a connected follower's backlog", oldest)
	}
	infos := p.Followers()
	if len(infos) != 2 {
		t.Fatalf("followers = %+v", infos)
	}
}
