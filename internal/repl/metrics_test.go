package repl

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"bestring/internal/imagedb"
	"bestring/internal/obs"
)

// Both roles must expose replication lag under the same family name,
// and a converged pair must report zero lag on each side.
func TestReplicationMetricsBothRoles(t *testing.T) {
	primary, p, srv := newPrimary(t, imagedb.StoreOptions{Fsync: imagedb.FsyncAlways})
	preg := obs.NewRegistry()
	p.EnableMetrics(preg)

	for i := 0; i < 20; i++ {
		if err := primary.Insert(fmt.Sprintf("img%d", i), "n", testImage(i)); err != nil {
			t.Fatal(err)
		}
	}

	fstore := newFollowerStore(t, t.TempDir())
	defer fstore.Close()
	fl, err := NewFollower(fstore, srv.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	freg := obs.NewRegistry()
	fl.EnableMetrics(freg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go fl.Run(ctx)
	waitLSN(t, fstore, primary.AppliedLSN())

	// Wait until the follower's ack lands so the primary-side lag vec
	// reads zero, then give one heartbeat a chance to arrive.
	deadline := time.Now().Add(5 * time.Second)
	for {
		infos := p.Followers()
		if len(infos) == 1 && infos[0].AckedLSN == primary.AppliedLSN() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ack never converged: %+v", infos)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var buf bytes.Buffer
	if err := preg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	ptext := buf.String()
	for _, want := range []string{
		"# TYPE bestring_repl_follower_lag_lsn gauge",
		fmt.Sprintf(`bestring_repl_follower_lag_lsn{follower="%s"} 0`, fstore.StoreID()),
		"bestring_repl_connected_followers 1",
		"bestring_repl_streams_total 1",
	} {
		if !strings.Contains(ptext, want) {
			t.Fatalf("primary exposition missing %q:\n%s", want, ptext)
		}
	}
	if !strings.Contains(ptext, "bestring_repl_acks_total") {
		t.Fatalf("primary exposition missing ack counter:\n%s", ptext)
	}

	buf.Reset()
	if err := freg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	ftext := buf.String()
	for _, want := range []string{
		"# TYPE bestring_repl_follower_lag_lsn gauge",
		"bestring_repl_follower_lag_lsn 0",
		"bestring_repl_lag_seconds 0",
		"bestring_repl_connected 1",
		"bestring_repl_reconnects_total 0",
		"bestring_repl_applied_records_total 20",
		"# TYPE bestring_repl_apply_seconds histogram",
	} {
		if !strings.Contains(ftext, want) {
			t.Fatalf("follower exposition missing %q:\n%s", want, ftext)
		}
	}
	if fl.metrics.Load().appliedBatches.Value() == 0 {
		t.Fatal("no applied batches observed")
	}
	if fl.lastBeat.Load() == 0 {
		t.Fatal("heartbeat age never stamped")
	}
}

// A primary that loses its follower must count the reconnects
// follower-side and drop connected_followers back to zero.
func TestReplicationMetricsReconnects(t *testing.T) {
	primary, _, srv := newPrimary(t, imagedb.StoreOptions{Fsync: imagedb.FsyncAlways})
	if err := primary.Insert("a", "n", testImage(1)); err != nil {
		t.Fatal(err)
	}
	fstore := newFollowerStore(t, t.TempDir())
	defer fstore.Close()
	fl, err := NewFollower(fstore, srv.URL, 0)
	if err != nil {
		t.Fatal(err)
	}
	freg := obs.NewRegistry()
	fl.EnableMetrics(freg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go fl.Run(ctx)
	waitLSN(t, fstore, primary.AppliedLSN())

	// Kill the primary's listener: the stream breaks and the follower
	// retries against a dead endpoint.
	srv.CloseClientConnections()
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for fl.reconnects.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no reconnect counted after primary went away")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var buf bytes.Buffer
	if err := freg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bestring_repl_connected 0") {
		t.Fatalf("follower still reports connected:\n%s", buf.String())
	}
}
